//===- bench/bench_threads.cpp - Thread-scaling benchmark -----*- C++ -*-===//
///
/// \file
/// Scaling of the parallel runtime on the symmetric kernels: SSYMV on
/// the largest suite matrix and SSYRK at the largest seed config, for
/// Threads in {1, 2, 4, 8} under every schedule policy. Prints a
/// speedup-vs-one-thread table (the acceptance trajectory: >= 3x at 8
/// threads on multicore hardware, with triangle-balanced beating
/// static blocks on the triangular nests) and appends machine-readable
/// BENCH_threads.json with kernel / threads / schedule / GFLOP/s.
///
/// The GFLOP/s figures use the runtime's own operation counters
/// (ScalarOps + Reductions of one instrumented run), so they measure
/// useful algorithmic work — the symmetry savings are visible as
/// fewer flops, not inflated rates.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Compiler.h"
#include "kernels/Kernels.h"

using namespace systec;
using namespace systec::bench;

namespace {

struct Variant {
  unsigned Threads;
  SchedulePolicy Policy;
};

std::vector<Variant> variants() {
  std::vector<Variant> Out{{1, SchedulePolicy::Auto}};
  for (unsigned T : {2u, 4u, 8u})
    for (SchedulePolicy P :
         {SchedulePolicy::Static, SchedulePolicy::Dynamic,
          SchedulePolicy::TriangleBalanced})
      Out.push_back({T, P});
  return Out;
}

std::string variantName(const Variant &V) {
  return "t" + std::to_string(V.Threads) + "_" +
         schedulePolicyName(V.Policy);
}

/// The single source of truth for a variant's execution options: used
/// to build the Executor *and* to attribute its BENCH_* record.
ExecOptions variantOptions(const Variant &V) {
  ExecOptions O;
  O.Threads = V.Threads;
  O.Schedule = V.Policy;
  return O;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  Rng R(20260731);

  struct Workload {
    std::string Kernel;
    std::string Label;
    CompileResult Compiled;
    std::unique_ptr<Holder> H;
    Tensor *Out = nullptr;
    double Flops = 0;
  };
  std::vector<Workload> Workloads;

  {
    // SSYMV on the largest matrix of the benchmark suite.
    MatrixSpec Largest{"", 0, 0};
    for (const MatrixSpec &S : suiteForBench())
      if (S.Dimension > Largest.Dimension)
        Largest = S;
    Workload W;
    W.Kernel = "ssymv";
    W.Label = Largest.Name;
    W.Compiled = compileEinsum(makeSsymv());
    W.H = std::make_unique<Holder>();
    W.H->Tensors.emplace("A", buildSuiteMatrix(Largest, R));
    W.H->Tensors.emplace("x", generateDenseVector(Largest.Dimension, R));
    W.H->Tensors.emplace("y", Tensor::dense({Largest.Dimension}));
    W.Out = &W.H->tensor("y");
    Workloads.push_back(std::move(W));
  }
  {
    // SSYRK at the largest seed benchmark config (n=2000, 32 nnz/col).
    const int64_t N = 2000, NnzPerCol = 32;
    Workload W;
    W.Kernel = "ssyrk";
    W.Label = "n2000_c32";
    W.Compiled = compileEinsum(makeSsyrk());
    W.H = std::make_unique<Holder>();
    W.H->Tensors.emplace("A", generateSparseMatrix(N, N, N * NnzPerCol, R,
                                                   TensorFormat::csf(2)));
    W.H->Tensors.emplace("C", Tensor::dense({N, N}));
    W.Out = &W.H->tensor("C");
    Workloads.push_back(std::move(W));
  }

  for (Workload &W : Workloads) {
    for (const Variant &V : variants()) {
      ExecOptions O = variantOptions(V);
      Executor &E = *W.H->Executors
                         .emplace_back(std::make_unique<Executor>(
                             W.Compiled.Optimized, O))
                         .get();
      for (auto &[Name, T] : W.H->Tensors)
        E.bind(Name, &T);
      E.prepare();
      if (W.Flops == 0) {
        // Count useful work once (any variant performs the same ops).
        counters().reset();
        setCountersEnabled(true);
        W.Out->setAllValues(0.0);
        E.runBody();
        W.Flops = static_cast<double>(counters().ScalarOps +
                                      counters().Reductions);
      }
      Tensor *Out = W.Out;
      registerRun("threads/" + W.Kernel + "/" + W.Label + "/" +
                      variantName(V),
                  [Out] { Out->setAllValues(0.0); },
                  [&E] { E.runBody(); });
    }
  }

  CaptureReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);

  std::vector<BenchRecord> Records;
  for (Workload &W : Workloads) {
    std::string Base = "threads/" + W.Kernel + "/" + W.Label + "/";
    double T1 = Rep.millis(Base + variantName({1, SchedulePolicy::Auto}));
    std::printf("\n=== %s/%s thread scaling (one-thread: %.3f ms) ===\n",
                W.Kernel.c_str(), W.Label.c_str(), T1);
    std::printf("%-10s %12s %12s %12s\n", "threads", "ms", "speedup",
                "GFLOP/s");
    const std::vector<Variant> Vars = variants();
    for (size_t VI = 0; VI < Vars.size(); ++VI) {
      const Variant &V = Vars[VI];
      double Ms = Rep.millis(Base + variantName(V));
      if (Ms <= 0)
        continue;
      double GFlops = W.Flops / (Ms * 1e6);
      std::printf("%-10s %12.3f %12.2f %12.3f\n", variantName(V).c_str(),
                  Ms, T1 / Ms, GFlops);
      BenchRecord Rec{W.Kernel, W.Label, "systec", V.Threads,
                      schedulePolicyName(V.Policy), Ms, GFlops,
                      execOptionsSummary(variantOptions(V)), "", ""};
      // Executors were appended in variants() order per workload.
      Tensor *Out = W.Out;
      annotateRecord(Rec, *W.H->Executors[VI],
                     [Out] { Out->setAllValues(0.0); });
      Records.push_back(std::move(Rec));
    }
    // The acceptance comparison: triangle-balanced vs static blocks.
    double Tri = Rep.millis(
        Base + variantName({8, SchedulePolicy::TriangleBalanced}));
    double Sta = Rep.millis(Base + variantName({8, SchedulePolicy::Static}));
    if (Tri > 0 && Sta > 0)
      std::printf("triangle vs static at 8 threads: %.2fx\n", Sta / Tri);
  }
  writeBenchJson("BENCH_threads.json", Records);
  return 0;
}
