//===- bench/bench_service.cpp - Kernel-service benchmark -----*- C++ -*-===//
///
/// \file
/// Serving-layer benchmark for the long-running kernel service, in two
/// phases:
///
///  1. Cold vs warm per kernel: the first request for a structure pays
///     the full front end (parse, lower, plan-compile, specialize);
///     every following request hits the plan cache and only pays the
///     rebind repatch plus the run. The cold-over-warm latency ratio is
///     the cache-hit speedup — a single-process ratio, so it transfers
///     across machines and is what tools/bench_check.py --service
///     gates against bench/baselines/service.json.
///
///  2. Open-loop arrival: a fixed-seed schedule of mixed kernels
///     (ssymv / syprd / ssyrk / mttkrp3, threads 1 and 4) submitted at
///     their scheduled times regardless of completions (open loop, so
///     queueing delay is visible), measured for throughput and exact
///     p50/p99 end-to-end latency. p99 is recorded for the gate as an
///     absolute guard with a wide tolerance (wall-clock transfers
///     poorly; the ratio gate above is the strict one).
///
/// Writes BENCH_service.json next to the binary.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Compiler.h"
#include "kernels/Kernels.h"
#include "runtime/KernelService.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace systec;
using namespace systec::bench;

namespace {

using Clock = std::chrono::steady_clock;

double toMs(Clock::duration D) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             D)
      .count();
}

/// One benchable kernel: the einsum plus persistent inputs; each
/// request gets a fresh output tensor.
struct ServiceWorkload {
  std::string Name;
  Einsum E;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
};

ServiceWorkload makeServiceWorkload(const std::string &Kernel, uint64_t Seed,
                                    int64_t Scale) {
  Rng R(Seed);
  ServiceWorkload W;
  W.Name = Kernel;
  if (Kernel == "ssymv") {
    W.E = makeSsymv();
    int64_t N = 60 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 8 * N, R,
                                                  TensorFormat::csf(2)));
    W.Inputs.emplace("x", generateDenseVector(N, R));
    W.OutDims = {N};
  } else if (Kernel == "syprd") {
    W.E = makeSyprd();
    int64_t N = 60 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 8 * N, R,
                                                  TensorFormat::csf(2)));
    W.Inputs.emplace("x", generateDenseVector(N, R));
    W.OutDims = {1};
  } else if (Kernel == "ssyrk") {
    W.E = makeSsyrk();
    int64_t N = 40 * Scale;
    W.Inputs.emplace("A", generateSparseMatrix(N, N, 6 * N, R,
                                               TensorFormat::csf(2)));
    W.OutDims = {N, N};
  } else if (Kernel == "mttkrp3") {
    W.E = makeMttkrp(3);
    int64_t N = 10 * Scale, Rank = 8;
    W.Inputs.emplace("A", generateSymmetricTensor(3, N, 10 * N, R,
                                                  TensorFormat::csf(3)));
    W.Inputs.emplace("B", generateDenseMatrix(N, Rank, R));
    W.OutDims = {N, Rank};
  } else {
    std::fprintf(stderr, "unknown kernel %s\n", Kernel.c_str());
    std::abort();
  }
  return W;
}

KernelRequest makeRequest(ServiceWorkload &W, Tensor &Out,
                          const ExecOptions &O, const std::string &Label) {
  KernelRequest R;
  R.Label = Label;
  R.E = W.E;
  for (auto &[Name, T] : W.Inputs)
    R.Bindings[Name] = &T;
  R.Bindings[W.E.Output->tensorName()] = &Out;
  R.Options = O;
  return R;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return -1.0;
  const size_t Idx = std::min(
      Sorted.size() - 1, size_t(double(Sorted.size() - 1) * P + 0.5));
  return Sorted[Idx];
}

/// Phase 1: first request (cold, full front end) vs steady-state
/// cache hits (warm, rebind only), one kernel at a time, one service
/// worker so requests serialize and latencies are clean.
void benchColdVsWarm(std::vector<BenchRecord> &Records) {
  std::printf("\n=== cold vs warm (plan-cache hit speedup) ===\n");
  std::printf("%-10s %12s %12s %10s %8s\n", "kernel", "cold(ms)",
              "warm(ms)", "speedup", "hits");
  for (const char *Kernel : {"ssymv", "syprd", "ssyrk", "mttkrp3"}) {
    ServiceWorkload W = makeServiceWorkload(Kernel, 1, 2);
    ServiceOptions SO;
    SO.Workers = 1;
    KernelService Svc(SO);

    auto oneRequest = [&](int I) -> std::pair<double, RequestResult> {
      Tensor Out = Tensor::dense(W.OutDims, 0.0);
      const Clock::time_point T0 = Clock::now();
      auto H = Svc.submit(makeRequest(W, Out, ExecOptions(),
                                      std::string(Kernel) + "-" +
                                          std::to_string(I)));
      if (!H.ok()) {
        std::fprintf(stderr, "submit failed: %s\n", H.status().str().c_str());
        std::abort();
      }
      const RequestResult &Res = H->wait();
      const double Ms = toMs(Clock::now() - T0);
      if (!Res.St.ok()) {
        std::fprintf(stderr, "request failed: %s\n", Res.St.str().c_str());
        std::abort();
      }
      RequestResult Copy;
      Copy.CacheHit = Res.CacheHit;
      Copy.Report = Res.Report;
      return {Ms, std::move(Copy)};
    };

    auto [ColdMs, ColdRes] = oneRequest(0);
    std::vector<double> WarmMs;
    RequestResult WarmRes;
    const int Warm = 30;
    for (int I = 1; I <= Warm; ++I) {
      auto [Ms, Res] = oneRequest(I);
      if (!Res.CacheHit) {
        std::fprintf(stderr, "%s request %d unexpectedly missed\n", Kernel,
                     I);
        std::abort();
      }
      WarmMs.push_back(Ms);
      WarmRes = std::move(Res);
    }
    std::sort(WarmMs.begin(), WarmMs.end());
    const double WarmMedian = percentile(WarmMs, 0.5);
    const uint64_t Hits = Svc.stats().Cache.Hits;
    std::printf("%-10s %12.3f %12.3f %9.2fx %8llu\n", Kernel, ColdMs,
                WarmMedian, ColdMs / WarmMedian,
                (unsigned long long)Hits);

    BenchRecord Cold;
    Cold.Kernel = Kernel;
    Cold.Workload = "service";
    Cold.Impl = "cold";
    Cold.Millis = ColdMs;
    Cold.PhasesJson = ColdRes.Report.phasesJson();
    Records.push_back(Cold);
    BenchRecord WarmRec;
    WarmRec.Kernel = Kernel;
    WarmRec.Workload = "service";
    WarmRec.Impl = "warm";
    WarmRec.Millis = WarmMedian;
    WarmRec.PhasesJson = WarmRes.Report.phasesJson();
    Records.push_back(WarmRec);
  }
}

/// Phase 2: open-loop arrival of mixed kernels. The schedule is fixed
/// (kernels round-robin, inter-arrival fixed), submissions happen at
/// their scheduled instants whether or not earlier requests finished,
/// and the report is throughput plus exact-sorted p50/p99 end-to-end
/// latency (submit -> completion).
void benchOpenLoop(std::vector<BenchRecord> &Records) {
  struct Mix {
    ServiceWorkload W;
    ExecOptions O;
  };
  std::vector<Mix> Mixes;
  for (const char *Kernel : {"ssymv", "syprd", "ssyrk", "mttkrp3"})
    for (unsigned T : {1u, 4u}) {
      Mix M{makeServiceWorkload(Kernel, 2, 2), {}};
      M.O.Threads = T;
      Mixes.push_back(std::move(M));
    }

  ServiceOptions SO;
  SO.Workers = 4;
  SO.QueueLimit = 256;
  KernelService Svc(SO);

  // Warm the cache outside the measured window so the open-loop phase
  // measures the serving path, not first-touch compilation.
  for (Mix &M : Mixes) {
    Tensor Out = Tensor::dense(M.W.OutDims, 0.0);
    auto H = Svc.submit(makeRequest(M.W, Out, M.O, "warmup"));
    if (H.ok())
      H->wait();
  }

  // Offered load sits below the sustained service rate (measured in
  // the thousands of req/s on a 4-core box) so percentiles describe
  // serving latency under concurrency, not a saturation queue ramp.
  const int Requests = 240;
  const auto InterArrival = std::chrono::microseconds(500);
  std::vector<Tensor> Outs;
  Outs.reserve(Requests);
  std::vector<RequestHandle> Handles;
  std::vector<Clock::time_point> SubmitAt;
  const Clock::time_point Start = Clock::now();
  unsigned Rejected = 0;
  for (int I = 0; I < Requests; ++I) {
    std::this_thread::sleep_until(Start + I * InterArrival);
    Mix &M = Mixes[I % Mixes.size()];
    Outs.push_back(Tensor::dense(M.W.OutDims, 0.0));
    auto H = Svc.submit(
        makeRequest(M.W, Outs.back(), M.O, "open-" + std::to_string(I)));
    if (!H.ok()) {
      ++Rejected;
      Outs.pop_back();
      continue;
    }
    SubmitAt.push_back(Clock::now());
    Handles.push_back(*H);
  }
  // Completions are near-FIFO (the queue is FIFO and workers drain it
  // in order), so waiting in submission order measures each request's
  // completion within one wait of its true instant.
  std::vector<double> LatMs;
  Clock::time_point LastDone = Start;
  unsigned Failed = 0;
  for (size_t I = 0; I < Handles.size(); ++I) {
    const RequestResult &Res = Handles[I].wait();
    const Clock::time_point Done = Clock::now();
    if (!Res.St.ok()) {
      ++Failed;
      continue;
    }
    LatMs.push_back(toMs(Done - SubmitAt[I]));
    LastDone = std::max(LastDone, Done);
  }
  std::sort(LatMs.begin(), LatMs.end());
  const double WallMs = toMs(LastDone - Start);
  const double Throughput =
      WallMs > 0 ? double(LatMs.size()) / (WallMs / 1000.0) : 0.0;
  const double P50 = percentile(LatMs, 0.5);
  const double P99 = percentile(LatMs, 0.99);
  const KernelService::Stats St = Svc.stats();

  std::printf("\n=== open-loop mixed kernels ===\n");
  std::printf("requests=%zu rejected=%u failed=%u wall=%.1fms\n",
              LatMs.size(), Rejected, Failed, WallMs);
  std::printf("throughput=%.0f req/s  p50=%.3fms  p99=%.3fms\n", Throughput,
              P50, P99);
  std::printf("cache: hits=%llu misses=%llu evictions=%llu rebind-fail=%llu\n",
              (unsigned long long)St.Cache.Hits,
              (unsigned long long)St.Cache.Misses,
              (unsigned long long)St.Cache.Evictions,
              (unsigned long long)St.RebindFailures);

  BenchRecord P50R;
  P50R.Kernel = "service";
  P50R.Workload = "openloop";
  P50R.Impl = "p50";
  P50R.Millis = P50;
  Records.push_back(P50R);
  BenchRecord P99R;
  P99R.Kernel = "service";
  P99R.Workload = "openloop";
  P99R.Impl = "p99";
  P99R.Millis = P99;
  Records.push_back(P99R);
  BenchRecord Thr;
  Thr.Kernel = "service";
  Thr.Workload = "openloop";
  Thr.Impl = "throughput";
  Thr.Millis = Throughput; // req/s, not ms; named for the record schema
  Records.push_back(Thr);
}

} // namespace

int main() {
  setCountersEnabled(false);
  std::vector<BenchRecord> Records;
  benchColdVsWarm(Records);
  benchOpenLoop(Records);
  setCountersEnabled(true);
  writeBenchJson("BENCH_service.json", Records);
  return 0;
}
