//===- bench/bench_ttm.cpp - Figure 10 reproduction -----------*- C++ -*-===//
///
/// \file
/// TTM (C[i,j,l] += A[k,j,l]*B[k,i], A fully symmetric CSF) over a
/// density x rank sweep, like the paper's Figure 10. The optimized
/// kernel reads 1/6 of A and performs 1/2 of the computation; expected
/// speedup >= 2x at high density / low rank, degrading at high rank
/// where dense-output initialization dominates (paper 5.2.5).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baselines/Baselines.h"
#include "core/Compiler.h"
#include "kernels/Kernels.h"

using namespace systec;
using namespace systec::bench;

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  Rng R(20260615);
  CompileResult C = compileEinsum(makeTtm());

  const int64_t N = 50;
  std::vector<double> Densities{0.01, 0.05, 0.2};
  std::vector<int64_t> Ranks{4, 16, 64};

  std::vector<std::unique_ptr<Holder>> Holders;
  std::vector<Row> Rows;
  for (double Density : Densities) {
    // Canonical entries so that the full symmetric tensor has about
    // Density * N^3 stored values.
    int64_t Canonical =
        static_cast<int64_t>(Density * N * N * N / 6.0) + 1;
    for (int64_t Rank : Ranks) {
      auto H = std::make_unique<Holder>();
      H->Tensors.emplace("A", generateSymmetricTensor(
                                  3, N, Canonical, R, TensorFormat::csf(3)));
      H->Tensors.emplace("B", generateDenseMatrix(N, Rank, R));
      H->Tensors.emplace("C", Tensor::dense({Rank, N, N}));
      Tensor *A = &H->tensor("A");
      Tensor *B = &H->tensor("B");
      Tensor *Out = &H->tensor("C");

      Executor &Naive = H->addExecutor(C.Naive);
      Naive.bind("A", A).bind("B", B).bind("C", Out);
      Naive.prepare();
      Executor &Opt = H->addExecutor(C.Optimized);
      Opt.bind("A", A).bind("B", B).bind("C", Out);
      Opt.prepare();

      char LabelBuf[64];
      std::snprintf(LabelBuf, sizeof(LabelBuf), "d%.2f_r%lld", Density,
                    static_cast<long long>(Rank));
      std::string Label = LabelBuf;
      std::string Base = "ttm/" + Label;
      auto Reset = [Out] { Out->setAllValues(0.0); };
      registerRun(Base + "/naive", Reset, [&Naive] { Naive.runBody(); });
      registerRun(Base + "/systec", Reset, [&Opt] { Opt.runBody(); });
      registerRun(Base + "/taco", Reset,
                  [A, B, Out] { tacoTtm(*A, *B, *Out); });

      Row RowEntry;
      RowEntry.Label = Label;
      for (const char *Impl : {"naive", "systec", "taco"})
        RowEntry.Entries.push_back({Impl, Base + "/" + Impl});
      Rows.push_back(RowEntry);
      Holders.push_back(std::move(H));
    }
  }

  CaptureReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);
  printSpeedups(Rep, "Figure 10: TTM speedup over naive (density x rank)",
                {"naive", "systec", "taco"}, Rows,
                /*ExpectedSpeedup=*/2.0);
  return 0;
}
