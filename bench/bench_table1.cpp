//===- bench/bench_table1.cpp - Table 1 reproduction ----------*- C++ -*-===//
///
/// \file
/// Table 1 is the feature-support matrix comparing MKL, TCE, Cyclops,
/// sBLACs, STUR and SySTeC. This binary reprints the table and then
/// *demonstrates* each SySTeC column by compiling a probe kernel
/// through this implementation: dense tensors, sparse tensors,
/// structured tensors (banded/RLE), general (non-contraction) einsums,
/// and the three redundancy optimizations (reads, operations, storage).
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "kernels/Oracle.h"
#include "runtime/Executor.h"
#include "support/Counters.h"

#include <cstdio>

using namespace systec;

namespace {

void printStatic() {
  std::printf("Table 1: supported features (Y = yes, p = partially)\n");
  std::printf("%-32s %5s %5s %8s %7s %5s %7s\n", "", "MKL", "TCE",
              "Cyclops", "sBLACs", "STUR", "SySTeC");
  auto Row = [](const char *Feature, const char *A, const char *B,
                const char *C, const char *D, const char *E,
                const char *F) {
    std::printf("%-32s %5s %5s %8s %7s %5s %7s\n", Feature, A, B, C, D, E,
                F);
  };
  Row("Supports Dense Tensors", "Y", "Y", "Y", "p1", "Y", "Y");
  Row("Supports Sparse Tensors", "p2", ".", "p1,3", "p3", ".", "Y");
  Row("Supports Structured Tensors", ".", ".", "p1", ".", "Y", "Y");
  Row("Supports General Einsums", ".", "p4", "p4", ".", "Y", "Y");
  Row("Optimizes Redundant Reads", ".", ".", ".", ".", ".", "Y");
  Row("Optimizes Redundant Operations", ".", "Y", "Y", "Y", "Y", "Y");
  Row("Optimizes Redundant Storage", ".", "Y", "Y", "Y", "Y", "Y");
  std::printf("1 = only static sizes, 2 = one sparse tensor at a time, "
              "3 = only symbolic patterns, 4 = only contractions\n\n");
}

bool checkKernel(const char *What, const Einsum &E,
                 std::map<std::string, Tensor> &Inputs,
                 std::vector<int64_t> OutDims, double Init) {
  CompileResult R = compileEinsum(E);
  std::map<std::string, const Tensor *> OracleIn;
  for (auto &[N, T] : Inputs)
    OracleIn[N] = &T;
  Tensor Ref = oracleEval(E, OracleIn);
  Tensor Out = Tensor::dense(OutDims, 0.0);
  Out.setAllValues(Init);
  Executor Exec(R.Optimized);
  for (auto &[N, T] : Inputs)
    Exec.bind(N, &T);
  Exec.bind(E.Output->tensorName(), &Out);
  Exec.prepare();
  counters().reset();
  Exec.run();
  bool Ok = Tensor::maxAbsDiff(Out, Ref) < 1e-8;
  std::printf("  [%s] %-34s %s (%llu sparse reads, %llu scalar ops)\n",
              Ok ? "ok" : "FAIL", What, E.str().c_str(),
              static_cast<unsigned long long>(counters().SparseReads),
              static_cast<unsigned long long>(counters().ScalarOps));
  return Ok;
}

} // namespace

int main() {
  printStatic();
  std::printf("SySTeC-cpp feature probes (each compiled, run, and "
              "checked against the dense oracle):\n");
  Rng R(1);
  bool AllOk = true;
  {
    // Dense tensors.
    Einsum E = makeSsymv();
    E.declare("A", TensorFormat::dense(2));
    E.setSymmetry("A", Partition::full(2));
    std::map<std::string, Tensor> In;
    Tensor A = generateSymmetricTensor(2, 40, 200, R, TensorFormat::csf(2));
    In.emplace("A", Tensor::fromCoo(A.toCoo(), TensorFormat::dense(2)));
    In.emplace("x", generateDenseVector(40, R));
    AllOk &= checkKernel("dense tensors", E, In, {40}, 0.0);
  }
  {
    // Sparse tensors (two sparse operands at once, unlike Cyclops).
    Einsum E = parseEinsum("frob", "y[] += A[i,j] * B[i,j]");
    E.LoopOrder = {"j", "i"};
    E.declare("A", TensorFormat::csf(2));
    E.setSymmetry("A", Partition::full(2));
    E.declare("B", TensorFormat::csf(2));
    E.setSymmetry("B", Partition::full(2));
    std::map<std::string, Tensor> In;
    In.emplace("A", generateSymmetricTensor(2, 40, 150, R,
                                            TensorFormat::csf(2)));
    In.emplace("B", generateSymmetricTensor(2, 40, 150, R,
                                            TensorFormat::csf(2)));
    AllOk &= checkKernel("two sparse tensors", E, In, {1}, 0.0);
  }
  {
    // Structured tensors: banded symmetric input.
    Einsum E = makeSsymv();
    TensorFormat Banded;
    Banded.Levels = {LevelKind::Dense, LevelKind::Banded};
    E.declare("A", Banded);
    E.setSymmetry("A", Partition::full(2));
    std::map<std::string, Tensor> In;
    In.emplace("A", generateBandedSymmetric(50, 3, R, Banded));
    In.emplace("x", generateDenseVector(50, R));
    AllOk &= checkKernel("structured (banded) tensors", E, In, {50}, 0.0);
  }
  {
    // General einsums beyond contractions: MTTKRP (Khatri-Rao).
    std::map<std::string, Tensor> In;
    In.emplace("A", generateSymmetricTensor(3, 20, 100, R,
                                            TensorFormat::csf(3)));
    In.emplace("B", generateDenseMatrix(20, 6, R));
    AllOk &= checkKernel("general einsums (MTTKRP)", makeMttkrp(3), In,
                         {20, 6}, 0.0);
  }
  {
    // General operators: (min,+) semiring.
    std::map<std::string, Tensor> In;
    double Inf = std::numeric_limits<double>::infinity();
    In.emplace("A", generateSymmetricTensor(2, 40, 150, R,
                                            TensorFormat::csf(2), Inf));
    In.emplace("d", generateDenseVector(40, R));
    AllOk &= checkKernel("general operators (min-plus)",
                         makeBellmanFord(), In, {40}, Inf);
  }
  std::printf("\nredundancy optimizations (SSYMV, 400x400, ~3200 nnz):\n");
  {
    Einsum E = makeSsymv();
    CompileResult C = compileEinsum(E);
    Tensor A = generateSymmetricTensor(2, 400, 1600, R,
                                       TensorFormat::csf(2));
    Tensor X = generateDenseVector(400, R);
    Tensor Y = Tensor::dense({400});
    auto Measure = [&](const Kernel &K) {
      Y.setAllValues(0.0);
      Executor Exec(K);
      Exec.bind("A", &A).bind("x", &X).bind("y", &Y);
      Exec.prepare();
      counters().reset();
      Exec.run();
      return counters().snapshot();
    };
    CounterSnapshot N = Measure(C.Naive);
    CounterSnapshot O = Measure(C.Optimized);
    std::printf("  redundant reads:      %llu -> %llu (optimized)\n",
                static_cast<unsigned long long>(N.SparseReads),
                static_cast<unsigned long long>(O.SparseReads));
    std::printf("  redundant operations: %llu -> %llu scalar ops for "
                "SYPRD-class kernels (see bench_syprd, bench_mttkrp)\n",
                static_cast<unsigned long long>(N.ScalarOps),
                static_cast<unsigned long long>(O.ScalarOps));
    Tensor Up = upperTriangle(A);
    std::printf("  redundant storage:    the optimized kernel touches "
                "only the canonical triangle (%zu of %zu stored "
                "entries), so canonical-triangle storage suffices\n",
                Up.storedCount(), A.storedCount());
  }
  std::printf("\n%s\n", AllOk ? "all feature probes passed"
                              : "FEATURE PROBES FAILED");
  return AllOk ? 0 : 1;
}
