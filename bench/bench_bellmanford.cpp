//===- bench/bench_bellmanford.cpp - Figure 7 reproduction ----*- C++ -*-===//
///
/// \file
/// Bellman-Ford relaxation (y[i] min= A[i,j] + d[j], A symmetric CSC,
/// fill = inf) over the Table 2 suite. Performance-identical to SSYMV
/// (paper 5.2.2); included to show symmetrization over the (min,+)
/// semiring.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baselines/Baselines.h"
#include "core/Compiler.h"
#include "kernels/Kernels.h"

#include <limits>

using namespace systec;
using namespace systec::bench;

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  const double Inf = std::numeric_limits<double>::infinity();
  Rng R(20260612);
  CompileResult C = compileEinsum(makeBellmanFord());

  std::vector<std::unique_ptr<Holder>> Holders;
  std::vector<Row> Rows;
  for (const MatrixSpec &Spec : suiteForBench()) {
    auto H = std::make_unique<Holder>();
    // Edge weights: reuse the suite matrix values as distances with
    // fill = inf (missing edges).
    Tensor Weights = buildSuiteMatrix(Spec, R);
    H->Tensors.emplace("A", Tensor::fromCoo(Weights.toCoo(),
                                            TensorFormat::csf(2), Inf));
    H->Tensors.emplace("d", generateDenseVector(Spec.Dimension, R));
    H->Tensors.emplace("y", Tensor::dense({Spec.Dimension}, Inf));
    Tensor *A = &H->tensor("A");
    Tensor *D = &H->tensor("d");
    Tensor *Y = &H->tensor("y");

    Executor &Naive = H->addExecutor(C.Naive);
    Naive.bind("A", A).bind("d", D).bind("y", Y);
    Naive.prepare();
    Executor &Opt = H->addExecutor(C.Optimized);
    Opt.bind("A", A).bind("d", D).bind("y", Y);
    Opt.prepare();

    std::string Base = "bellmanford/" + Spec.Name;
    auto Reset = [Y, Inf] { Y->setAllValues(Inf); };
    registerRun(Base + "/naive", Reset, [&Naive] { Naive.runBody(); });
    registerRun(Base + "/systec", Reset, [&Opt] { Opt.runBody(); });
    registerRun(Base + "/taco", Reset,
                [A, D, Y] { tacoBellmanFord(*A, *D, *Y); });

    Row RowEntry;
    RowEntry.Label = Spec.Name;
    for (const char *Impl : {"naive", "systec", "taco"})
      RowEntry.Entries.push_back({Impl, Base + "/" + Impl});
    Rows.push_back(RowEntry);
    Holders.push_back(std::move(H));
  }

  CaptureReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);
  printSpeedups(Rep, "Figure 7: Bellman-Ford step speedup over naive",
                {"naive", "systec", "taco"}, Rows,
                /*ExpectedSpeedup=*/2.0);
  return 0;
}
