//===- bench/bench_mttkrp.cpp - Figure 11 reproduction --------*- C++ -*-===//
///
/// \file
/// 3-, 4-, and 5-dimensional MTTKRP with fully symmetric A over a
/// sparsity x rank sweep (paper Figure 11). Expected speedups grow with
/// the order: ~2x / ~6x / ~24x from the 1/(n-1)! computation saving,
/// with the paper's maxima at 3.38x / 7.35x / 29.8x. SPLATT- and
/// TACO-style native 3-d kernels are included as comparators.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baselines/Baselines.h"
#include "core/Compiler.h"
#include "kernels/Kernels.h"
#include "support/Counters.h"

using namespace systec;
using namespace systec::bench;

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  Rng R(20260616);

  struct Config {
    unsigned Order;
    int64_t N;
    int64_t Canonical;
    int64_t Rank;
  };
  // Dimensions are kept large relative to the order so diagonal edge
  // cases stay rare (the artifact notes that shrinking the tensors
  // "may demonstrate slightly less speedup as more time is spent on
  // diagonal edge cases").
  std::vector<Config> Configs{
      {3, 100, 5000, 10}, {3, 100, 5000, 100}, {3, 100, 50000, 10},
      {3, 100, 50000, 100}, {4, 80, 3000, 10}, {4, 80, 3000, 100},
      {4, 80, 15000, 10},  {5, 60, 1500, 10},  {5, 60, 1500, 100},
      {5, 60, 6000, 10}};

  std::vector<std::unique_ptr<Holder>> Holders;
  std::map<unsigned, std::vector<Row>> RowsByOrder;
  std::map<std::string, std::pair<uint64_t, uint64_t>> ReadCounts;

  for (const Config &Cfg : Configs) {
    CompileResult C = compileEinsum(makeMttkrp(Cfg.Order));
    auto H = std::make_unique<Holder>();
    H->Tensors.emplace("A",
                       generateSymmetricTensor(Cfg.Order, Cfg.N,
                                               Cfg.Canonical, R,
                                               TensorFormat::csf(Cfg.Order)));
    H->Tensors.emplace("B", generateDenseMatrix(Cfg.N, Cfg.Rank, R));
    H->Tensors.emplace("C", Tensor::dense({Cfg.N, Cfg.Rank}));
    Tensor *A = &H->tensor("A");
    Tensor *B = &H->tensor("B");
    Tensor *Out = &H->tensor("C");

    Executor &Naive = H->addExecutor(C.Naive);
    Naive.bind("A", A).bind("B", B).bind("C", Out);
    Naive.prepare();
    Executor &Opt = H->addExecutor(C.Optimized);
    Opt.bind("A", A).bind("B", B).bind("C", Out);
    Opt.prepare();

    char LabelBuf[96];
    std::snprintf(LabelBuf, sizeof(LabelBuf), "%ud_nnz%lld_r%lld",
                  Cfg.Order, static_cast<long long>(A->storedCount()),
                  static_cast<long long>(Cfg.Rank));
    std::string Label = LabelBuf;
    std::string Base = "mttkrp/" + Label;

    // Measure the canonical-read saving once (paper: 1/n! of A).
    counters().reset();
    Naive.runBody();
    uint64_t NaiveReads = counters().SparseReads;
    counters().reset();
    Opt.runBody();
    ReadCounts[Label] = {NaiveReads, counters().SparseReads};

    auto Reset = [Out] { Out->setAllValues(0.0); };
    registerRun(Base + "/naive", Reset, [&Naive] { Naive.runBody(); });
    registerRun(Base + "/systec", Reset, [&Opt] { Opt.runBody(); });
    if (Cfg.Order == 3) {
      registerRun(Base + "/taco", Reset,
                  [A, B, Out] { tacoMttkrp3(*A, *B, *Out); });
      registerRun(Base + "/splatt", Reset,
                  [A, B, Out] { splattMttkrp3(*A, *B, *Out); });
    }

    Row RowEntry;
    RowEntry.Label = Label;
    for (const char *Impl : {"naive", "systec", "taco", "splatt"})
      RowEntry.Entries.push_back({Impl, Base + "/" + Impl});
    RowsByOrder[Cfg.Order].push_back(RowEntry);
    Holders.push_back(std::move(H));
  }

  CaptureReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);
  double Expected[] = {0, 0, 0, 2.0, 6.0, 24.0};
  for (auto &[Order, Rows] : RowsByOrder) {
    printSpeedups(Rep,
                  "Figure 11: " + std::to_string(Order) +
                      "-dimensional MTTKRP speedup over naive",
                  {"naive", "systec", "taco", "splatt"}, Rows,
                  Expected[Order]);
  }
  std::printf("\ncanonical-read savings (reads of A, naive vs systec):\n");
  for (const auto &[Label, Counts] : ReadCounts)
    std::printf("  %-24s %12llu -> %10llu  (%.1fx; bound %s)\n",
                Label.c_str(),
                static_cast<unsigned long long>(Counts.first),
                static_cast<unsigned long long>(Counts.second),
                double(Counts.first) / double(Counts.second),
                Label[0] == '3' ? "6" : (Label[0] == '4' ? "24" : "120"));
  return 0;
}
