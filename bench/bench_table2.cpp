//===- bench/bench_table2.cpp - Table 2 reproduction ----------*- C++ -*-===//
///
/// \file
/// Table 2: the Vuduc et al. matrix collection. Prints the paper's
/// dimension/nonzero specification for all 30 matrices and, for the
/// benchmark subset (all 30 under SYSTEC_BENCH_FULL=1), builds the
/// synthetic Erdős–Rényi stand-in and reports the achieved symmetric
/// nonzero count (the substitution documented in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>
#include <set>

using namespace systec;
using namespace systec::bench;

int main() {
  std::printf("Table 2: matrix collection (Vuduc et al.)\n");
  std::printf("%-12s %10s %10s %12s %10s\n", "name", "dimension",
              "nonzeros", "built-nnz", "sym-check");
  Rng R(20260617);
  std::set<std::string> Bench;
  for (const MatrixSpec &S : suiteForBench())
    Bench.insert(S.Name);
  for (const MatrixSpec &Spec : vuducSuite()) {
    if (!Bench.count(Spec.Name)) {
      std::printf("%-12s %10lld %10lld %12s %10s\n", Spec.Name.c_str(),
                  static_cast<long long>(Spec.Dimension),
                  static_cast<long long>(Spec.Nonzeros), "(skipped)", "-");
      continue;
    }
    Tensor A = buildSuiteMatrix(Spec, R);
    // Verify exact symmetry of the synthetic stand-in on a sample.
    bool Symmetric = true;
    unsigned Checked = 0;
    A.forEach([&](const std::vector<int64_t> &C, double V) {
      if (Checked++ % 97 != 0)
        return;
      if (A.at({C[1], C[0]}) != V)
        Symmetric = false;
    });
    std::printf("%-12s %10lld %10lld %12zu %10s\n", Spec.Name.c_str(),
                static_cast<long long>(Spec.Dimension),
                static_cast<long long>(Spec.Nonzeros), A.storedCount(),
                Symmetric ? "ok" : "FAIL");
  }
  std::printf("\n(set SYSTEC_BENCH_FULL=1 to build all 30 matrices)\n");
  return 0;
}
