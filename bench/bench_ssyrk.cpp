//===- bench/bench_ssyrk.cpp - Figure 9 reproduction ----------*- C++ -*-===//
///
/// \file
/// SSYRK (C[i,j] += A[i,k]*A[j,k], A asymmetric) — visible output
/// symmetry halves the computation; expected speedup ~2x (paper
/// measured 2.20x vs naive Finch).
///
/// The paper's artifact excludes SSYRK on the full suite ("takes too
/// much time and memory"); like the artifact we run it on smaller
/// synthetic matrices. C is stored dense here (the engine writes dense
/// outputs), so dimensions are capped to keep C in memory.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baselines/Baselines.h"
#include "core/Compiler.h"
#include "kernels/Kernels.h"

using namespace systec;
using namespace systec::bench;

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  Rng R(20260614);
  CompileResult C = compileEinsum(makeSsyrk());

  struct Config {
    int64_t N;
    int64_t NnzPerCol;
  };
  std::vector<Config> Configs{{500, 8},  {1000, 8},  {2000, 8},
                              {500, 32}, {1000, 32}, {2000, 32}};

  std::vector<std::unique_ptr<Holder>> Holders;
  std::vector<Row> Rows;
  for (const Config &Cfg : Configs) {
    auto H = std::make_unique<Holder>();
    H->Tensors.emplace("A",
                       generateSparseMatrix(Cfg.N, Cfg.N,
                                            Cfg.N * Cfg.NnzPerCol, R,
                                            TensorFormat::csf(2)));
    H->Tensors.emplace("C", Tensor::dense({Cfg.N, Cfg.N}));
    Tensor *A = &H->tensor("A");
    Tensor *Out = &H->tensor("C");

    Executor &Naive = H->addExecutor(C.Naive);
    Naive.bind("A", A).bind("C", Out);
    Naive.prepare();
    Executor &Opt = H->addExecutor(C.Optimized);
    Opt.bind("A", A).bind("C", Out);
    Opt.prepare();

    std::string Label = "n" + std::to_string(Cfg.N) + "_c" +
                        std::to_string(Cfg.NnzPerCol);
    std::string Base = "ssyrk/" + Label;
    auto Reset = [Out] { Out->setAllValues(0.0); };
    registerRun(Base + "/naive", Reset, [&Naive] { Naive.runBody(); });
    // Paper methodology: replication of the canonical triangle is a
    // post-processing step excluded from kernel timing.
    registerRun(Base + "/systec", Reset, [&Opt] { Opt.runBody(); });
    registerRun(Base + "/systec_repl", Reset, [&Opt] {
      Opt.runBody();
      Opt.runEpilogue();
    });
    registerRun(Base + "/taco", Reset, [A, Out] { tacoSsyrk(*A, *Out); });

    Row RowEntry;
    RowEntry.Label = Label;
    for (const char *Impl : {"naive", "systec", "systec_repl", "taco"})
      RowEntry.Entries.push_back({Impl, Base + "/" + Impl});
    Rows.push_back(RowEntry);
    Holders.push_back(std::move(H));
  }

  CaptureReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);
  printSpeedups(Rep, "Figure 9: SSYRK speedup over naive",
                {"naive", "systec", "systec_repl", "taco"}, Rows,
                /*ExpectedSpeedup=*/2.0);
  return 0;
}
