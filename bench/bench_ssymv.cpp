//===- bench/bench_ssymv.cpp - Figure 6 reproduction ----------*- C++ -*-===//
///
/// \file
/// SSYMV (y[i] += A[i,j]*x[j], A symmetric CSC) over the Table 2 suite:
/// naive engine vs SySTeC engine (the paper's red-line normalization),
/// plus native taco-like SpMV and mkl-like symmetric SpMV comparators.
/// Expected speedup approaches 2x (bandwidth bound; paper measured
/// 1.45x average vs naive Finch).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baselines/Baselines.h"
#include "core/Compiler.h"
#include "kernels/Kernels.h"

using namespace systec;
using namespace systec::bench;

// Ahead-of-time compiled compiler output (bench/gen_ssymv.cpp, emitted
// by tools/systec_gen at build time). The generated symmetric kernel
// takes the prepared diagonal splits as parameters.
void ssymv_naive(const Tensor &A, const Tensor &X, Tensor &Y);
void ssymv_systec(const Tensor &A, const Tensor &ADiag,
                  const Tensor &ANondiag, const Tensor &X, Tensor &Y);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  Rng R(20260611);
  CompileResult C = compileEinsum(makeSsymv());

  std::vector<std::unique_ptr<Holder>> Holders;
  std::vector<Row> Rows;
  for (const MatrixSpec &Spec : suiteForBench()) {
    auto H = std::make_unique<Holder>();
    H->Tensors.emplace("A", buildSuiteMatrix(Spec, R));
    H->Tensors.emplace("AU", upperTriangle(H->tensor("A")));
    H->Tensors.emplace("x", generateDenseVector(Spec.Dimension, R));
    H->Tensors.emplace("y", Tensor::dense({Spec.Dimension}));
    auto Split = H->tensor("A").splitDiagonal(Partition::full(2));
    H->Tensors.emplace("A_nondiag", std::move(Split.first));
    H->Tensors.emplace("A_diag", std::move(Split.second));
    Tensor *A = &H->tensor("A");
    Tensor *AU = &H->tensor("AU");
    Tensor *AOff = &H->tensor("A_nondiag");
    Tensor *ADiag = &H->tensor("A_diag");
    Tensor *X = &H->tensor("x");
    Tensor *Y = &H->tensor("y");

    Executor &Naive = H->addExecutor(C.Naive);
    Naive.bind("A", A).bind("x", X).bind("y", Y);
    Naive.prepare();
    Executor &Opt = H->addExecutor(C.Optimized);
    Opt.bind("A", A).bind("x", X).bind("y", Y);
    Opt.prepare();

    std::string Base = "ssymv/" + Spec.Name;
    auto Reset = [Y] { Y->setAllValues(0.0); };
    registerRun(Base + "/naive", Reset, [&Naive] { Naive.runBody(); });
    registerRun(Base + "/systec", Reset, [&Opt] { Opt.runBody(); });
    registerRun(Base + "/taco", Reset, [A, X, Y] { tacoSpmv(*A, *X, *Y); });
    registerRun(Base + "/mkl", Reset,
                [AU, X, Y] { mklSymv(*AU, *X, *Y); });
    // AOT-compiled compiler output (the Finch-JIT analogue).
    registerRun(Base + "/naive_gen", Reset,
                [A, X, Y] { ssymv_naive(*A, *X, *Y); });
    registerRun(Base + "/systec_gen", Reset, [A, ADiag, AOff, X, Y] {
      ssymv_systec(*A, *ADiag, *AOff, *X, *Y);
    });

    Row RowEntry;
    RowEntry.Label = Spec.Name;
    for (const char *Impl :
         {"naive", "systec", "naive_gen", "systec_gen", "taco", "mkl"})
      RowEntry.Entries.push_back({Impl, Base + "/" + Impl});
    Rows.push_back(RowEntry);
    Holders.push_back(std::move(H));
  }

  CaptureReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);
  printSpeedups(Rep, "Figure 6: SSYMV speedup over naive (engine rows; "
                     "see *_gen columns for AOT-compiled output)",
                {"naive", "systec", "naive_gen", "systec_gen", "taco",
                 "mkl"},
                Rows,
                /*ExpectedSpeedup=*/2.0);
  // Native shape: speedup of compiled compiler output.
  std::printf("\nAOT-generated-code speedups (systec_gen vs naive_gen, "
              "the paper's bandwidth-bound comparison):\n");
  double Geo = 0;
  unsigned N = 0;
  for (const Row &RowEntry : Rows) {
    double TN = Rep.millis("ssymv/" + RowEntry.Label + "/naive_gen");
    double TO = Rep.millis("ssymv/" + RowEntry.Label + "/systec_gen");
    if (TN > 0 && TO > 0) {
      std::printf("  %-16s %.2fx\n", RowEntry.Label.c_str(), TN / TO);
      Geo += std::log(TN / TO);
      ++N;
    }
  }
  if (N)
    std::printf("  geometric mean:  %.2fx (paper: 1.45x average)\n",
                std::exp(Geo / N));
  // Machine-readable trajectory log (single-threaded reference rows;
  // bench_threads records the thread-scaling rows).
  std::vector<BenchRecord> Records;
  // The naive/systec rows run through the Executor with its default
  // options; the *_gen/taco/mkl rows are native code with no
  // ExecOptions (empty options field).
  const std::string EngineOpts = execOptionsSummary(ExecOptions());
  for (size_t RI = 0; RI < Rows.size(); ++RI) {
    const Row &RowEntry = Rows[RI];
    for (const auto &[Impl, BenchName] : RowEntry.Entries) {
      double Ms = Rep.millis(BenchName);
      const bool Engine = Impl == "naive" || Impl == "systec";
      if (Ms <= 0)
        continue;
      BenchRecord Rec{"ssymv", RowEntry.Label, Impl, 1, "none", Ms, 0,
                      Engine ? EngineOpts : "", "", ""};
      if (Engine) {
        // addExecutor order per holder: naive first, then systec.
        Executor &E = *Holders[RI]->Executors[Impl == "naive" ? 0 : 1];
        Tensor *Y = &Holders[RI]->tensor("y");
        annotateRecord(Rec, E, [Y] { Y->setAllValues(0.0); });
      }
      Records.push_back(std::move(Rec));
    }
  }
  writeBenchJson("BENCH_ssymv.json", Records);
  return 0;
}
