//===- bench/bench_syprd.cpp - Figure 8 reproduction ----------*- C++ -*-===//
///
/// \file
/// SYPRD (y = x'Ax, A symmetric) over the Table 2 suite. The optimized
/// kernel reads half of A and performs half the multiplications
/// (invisible output symmetry); expected speedup approaches 2x (paper
/// measured 1.79x average vs naive Finch).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baselines/Baselines.h"
#include "core/Compiler.h"
#include "kernels/Kernels.h"

using namespace systec;
using namespace systec::bench;

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  Rng R(20260613);
  CompileResult C = compileEinsum(makeSyprd());

  std::vector<std::unique_ptr<Holder>> Holders;
  std::vector<Row> Rows;
  for (const MatrixSpec &Spec : suiteForBench()) {
    auto H = std::make_unique<Holder>();
    H->Tensors.emplace("A", buildSuiteMatrix(Spec, R));
    H->Tensors.emplace("x", generateDenseVector(Spec.Dimension, R));
    H->Tensors.emplace("y", Tensor::dense({1}));
    Tensor *A = &H->tensor("A");
    Tensor *X = &H->tensor("x");
    Tensor *Y = &H->tensor("y");

    Executor &Naive = H->addExecutor(C.Naive);
    Naive.bind("A", A).bind("x", X).bind("y", Y);
    Naive.prepare();
    Executor &Opt = H->addExecutor(C.Optimized);
    Opt.bind("A", A).bind("x", X).bind("y", Y);
    Opt.prepare();

    std::string Base = "syprd/" + Spec.Name;
    auto Reset = [Y] { Y->setAllValues(0.0); };
    registerRun(Base + "/naive", Reset, [&Naive] { Naive.runBody(); });
    registerRun(Base + "/systec", Reset, [&Opt] { Opt.runBody(); });
    registerRun(Base + "/taco", Reset, [A, X, Y] {
      Y->vals()[0] += tacoSyprd(*A, *X);
      benchmark::DoNotOptimize(Y->vals()[0]);
    });

    Row RowEntry;
    RowEntry.Label = Spec.Name;
    for (const char *Impl : {"naive", "systec", "taco"})
      RowEntry.Entries.push_back({Impl, Base + "/" + Impl});
    Rows.push_back(RowEntry);
    Holders.push_back(std::move(H));
  }

  CaptureReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);
  printSpeedups(Rep, "Figure 8: SYPRD speedup over naive",
                {"naive", "systec", "taco"}, Rows,
                /*ExpectedSpeedup=*/2.0);
  return 0;
}
