//===- bench/BenchUtil.h - Shared benchmark harness -----------*- C++ -*-===//
///
/// \file
/// Shared machinery for the figure/table reproduction binaries: a
/// google-benchmark reporter that captures per-benchmark times so each
/// binary can print a speedup table normalized to naive Finch-style
/// execution (the red line in the paper's Figures 6-11), plus the
/// benchmark-scale matrix suite selection.
///
/// Methodology notes (matching paper Section 5.2): timings are the
/// benchmark library's steady-state averages; the optimized kernels
/// time only the main loop nests — data rearrangement (transposition,
/// diagonal splitting, output replication) is excluded, as in the
/// paper; counters are disabled inside timed regions. Engine rows
/// (naive/systec) share one executor so ratios reflect the symmetry
/// optimizations; native rows (taco/mkl/splatt stand-ins) are compiled
/// C++ and bound absolute performance.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_BENCH_BENCHUTIL_H
#define SYSTEC_BENCH_BENCHUTIL_H

#include "data/Generators.h"
#include "runtime/Executor.h"
#include "support/Counters.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace systec {
namespace bench {

/// Captures adjusted real time (seconds per iteration) for every run.
class CaptureReporter : public benchmark::ConsoleReporter {
public:
  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.run_type != Run::RT_Iteration)
        continue;
      // Strip the "/min_time:..." suffix the library appends.
      std::string Name = R.benchmark_name();
      size_t Cut = Name.find("/min_time");
      if (Cut != std::string::npos)
        Name.resize(Cut);
      Times[Name] = R.GetAdjustedRealTime();
    }
    benchmark::ConsoleReporter::ReportRuns(Runs);
  }

  /// Milliseconds per iteration for \p Name (benchmarks register with
  /// Unit(kMillisecond)); -1 when missing.
  double millis(const std::string &Name) const {
    auto It = Times.find(Name);
    return It == Times.end() ? -1.0 : It->second;
  }

private:
  std::map<std::string, double> Times;
};

/// The benchmark-scale suite: all of Table 2 when SYSTEC_BENCH_FULL is
/// set, otherwise a 12-matrix subset spanning the dimension/nnz range
/// (the artifact similarly reduces problem sizes to keep runtime
/// manageable).
inline std::vector<MatrixSpec> suiteForBench() {
  const std::vector<MatrixSpec> &Full = vuducSuite();
  if (std::getenv("SYSTEC_BENCH_FULL"))
    return Full;
  std::vector<std::string> Pick{
      "bayer02",  "bayer10", "coater2",  "gemat11",  "goodwin",
      "lnsp3937", "memplus", "orani678", "rdist1",   "saylr4",
      "sherman3", "shyy161"};
  std::vector<MatrixSpec> Out;
  for (const MatrixSpec &S : Full)
    for (const std::string &P : Pick)
      if (S.Name == P)
        Out.push_back(S);
  return Out;
}

/// Registers a benchmark that resets the output and reruns the kernel
/// body each iteration.
inline void registerRun(const std::string &Name,
                        const std::function<void()> &Reset,
                        const std::function<void()> &Run) {
  benchmark::RegisterBenchmark(Name.c_str(),
                               [Reset, Run](benchmark::State &St) {
                                 setCountersEnabled(false);
                                 for (auto _ : St) {
                                   Reset();
                                   Run();
                                 }
                                 setCountersEnabled(true);
                               })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.05);
}

/// One row of a speedup table.
struct Row {
  std::string Label;
  std::vector<std::pair<std::string, std::string>> Entries; // col -> bench
};

/// Prints a speedup table normalized to the column named "naive".
inline void printSpeedups(const CaptureReporter &Rep,
                          const std::string &Title,
                          const std::vector<std::string> &Columns,
                          const std::vector<Row> &Rows,
                          double ExpectedSpeedup = 0.0) {
  std::printf("\n=== %s ===\n", Title.c_str());
  std::printf("%-28s", "workload");
  for (const std::string &C : Columns)
    std::printf(" %13s", (C + "(ms)").c_str());
  std::printf(" %13s", "speedup");
  if (ExpectedSpeedup > 0)
    std::printf(" %13s", "expected");
  std::printf("\n");
  double Geo = 0.0;
  unsigned NGeo = 0;
  for (const Row &R : Rows) {
    std::printf("%-28s", R.Label.c_str());
    double Naive = -1, Systec = -1;
    for (const std::string &C : Columns) {
      double Ms = -1;
      for (const auto &[Col, BenchName] : R.Entries)
        if (Col == C)
          Ms = Rep.millis(BenchName);
      if (Ms >= 0)
        std::printf(" %13.3f", Ms);
      else
        std::printf(" %13s", "-");
      if (C == "naive")
        Naive = Ms;
      if (C == "systec")
        Systec = Ms;
    }
    if (Naive > 0 && Systec > 0) {
      double Speedup = Naive / Systec;
      std::printf(" %13.2f", Speedup);
      Geo += std::log(Speedup);
      ++NGeo;
    } else {
      std::printf(" %13s", "-");
    }
    if (ExpectedSpeedup > 0)
      std::printf(" %13.2f", ExpectedSpeedup);
    std::printf("\n");
  }
  if (NGeo)
    std::printf("%-28s geometric-mean speedup (systec vs naive): %.2f\n",
                "", std::exp(Geo / NGeo));
}

//===----------------------------------------------------------------------===//
// Machine-readable results
//===----------------------------------------------------------------------===//

/// One benchmark measurement for the perf-trajectory log.
struct BenchRecord {
  std::string Kernel;   ///< e.g. "ssymv"
  std::string Workload; ///< matrix / config label
  std::string Impl;     ///< "naive", "systec", "taco", ...
  unsigned Threads = 1;
  std::string Schedule = "none";
  double Millis = -1;
  double GFlops = 0;   ///< 0 when the flop count is unknown
  std::string Options; ///< execOptionsSummary() of the run's
                       ///< ExecOptions; empty for native baselines
  /// Observability attachments from one instrumented post-timing run
  /// (annotateRecord): the run's exact counter deltas and the
  /// per-phase timing summary, both as JSON objects. Empty for native
  /// baselines, which have no executor.
  std::string CountersJson;
  std::string PhasesJson;
};

/// Runs \p E once outside the timed region (counters on) and attaches
/// its ExecReport to \p R: counter deltas say *what* the configuration
/// executed, the phase summary says *where* its time goes — next to
/// the ms column, that is what tools/bench_check.py prints when a
/// ratio drifts. \p Reset restores the output, leaving workload state
/// exactly as the timed loop left it.
inline void annotateRecord(BenchRecord &R, Executor &E,
                           const std::function<void()> &Reset) {
  const bool Was = countersEnabled();
  setCountersEnabled(true);
  Reset();
  E.run();
  setCountersEnabled(Was);
  const obs::ExecReport &Rep = E.lastReport();
  R.CountersJson = obs::counterJson(Rep.Counters);
  R.PhasesJson = Rep.phasesJson();
}

/// The git SHA recorded with every benchmark row, so BENCH_*.json
/// entries are attributable across PRs. Resolved from the repository
/// at run time (benchmarks run from the build tree, which lives inside
/// the checkout); the configure-time SYSTEC_GIT_SHA macro is only the
/// fallback, since it goes stale when commits land without a
/// reconfigure.
inline const std::string &benchGitSha() {
  static const std::string Sha = []() -> std::string {
    if (FILE *P = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
      char Buf[64] = {0};
      const bool Got = std::fgets(Buf, sizeof(Buf), P) != nullptr;
      const bool Clean = pclose(P) == 0;
      if (Got && Clean) {
        std::string Out(Buf);
        while (!Out.empty() && (Out.back() == '\n' || Out.back() == '\r'))
          Out.pop_back();
        if (!Out.empty())
          return Out;
      }
    }
#ifdef SYSTEC_GIT_SHA
    return SYSTEC_GIT_SHA;
#else
    return "unknown";
#endif
  }();
  return Sha;
}

inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S)
    if (C == '"' || C == '\\')
      (Out += '\\') += C;
    else
      Out += C;
  return Out;
}

/// Writes records as a JSON array to \p Path (e.g. "BENCH_ssymv.json")
/// so CI can track kernel / threads / schedule / GFLOP-s over time.
/// Every record carries the build's git SHA and the ExecOptions used,
/// so entries from different PRs (or ablation configs) stay
/// attributable when the files are concatenated or diffed.
inline void writeBenchJson(const std::string &Path,
                           const std::vector<BenchRecord> &Records) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  Out << "[\n";
  for (size_t I = 0; I < Records.size(); ++I) {
    const BenchRecord &R = Records[I];
    char Num[96];
    std::string Line = "  {\"git_sha\": \"" + jsonEscape(benchGitSha()) +
                       "\", \"kernel\": \"" + jsonEscape(R.Kernel) +
                       "\", \"workload\": \"" + jsonEscape(R.Workload) +
                       "\", \"impl\": \"" + jsonEscape(R.Impl) + "\"";
    std::snprintf(Num, sizeof(Num),
                  ", \"threads\": %u, \"schedule\": \"%s\", "
                  "\"ms\": %.6f, \"gflops\": %.6f",
                  R.Threads, jsonEscape(R.Schedule).c_str(), R.Millis,
                  R.GFlops);
    Line += Num;
    Line += ", \"options\": \"" + jsonEscape(R.Options) + "\"";
    // Observability attachments are already JSON objects; embed them
    // verbatim when present so bench_check.py can explain deltas.
    if (!R.CountersJson.empty())
      Line += ", \"counters\": " + R.CountersJson;
    if (!R.PhasesJson.empty())
      Line += ", \"phases_ms\": " + R.PhasesJson;
    Line += I + 1 < Records.size() ? "},\n" : "}\n";
    Out << Line;
  }
  Out << "]\n";
  std::printf("wrote %s (%zu records)\n", Path.c_str(), Records.size());
}

/// Heap-allocated workload state kept alive for the benchmark run.
struct Holder {
  std::map<std::string, Tensor> Tensors;
  std::vector<std::unique_ptr<Executor>> Executors;

  Tensor &tensor(const std::string &Name) { return Tensors.at(Name); }

  Executor &addExecutor(const Kernel &K) {
    Executors.push_back(std::make_unique<Executor>(K));
    return *Executors.back();
  }
};

} // namespace bench
} // namespace systec

#endif // SYSTEC_BENCH_BENCHUTIL_H
