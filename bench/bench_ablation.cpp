//===- bench/bench_ablation.cpp - Pass ablation study ---------*- C++ -*-===//
///
/// \file
/// Ablation benchmark for the design choices DESIGN.md calls out: each
/// optimization pass / runtime feature is disabled individually on
/// SSYMV (bandwidth-bound) and 3-d MTTKRP (compute-bound) and timed
/// against the full pipeline. This quantifies the contribution of
/// diagonal splitting (4.2.9), workspaces (4.2.8), concordization
/// (4.2.3), block consolidation + grouping + lookup tables
/// (4.2.4-4.2.6), and the runtime's bound lifting.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Compiler.h"
#include "kernels/Kernels.h"

using namespace systec;
using namespace systec::bench;

namespace {

struct Variant {
  const char *Name;
  PipelineOptions Pipeline;
  ExecOptions Exec;
};

std::vector<Variant> variants() {
  std::vector<Variant> Out;
  Out.push_back({"full", {}, {}});
  {
    Variant V{"no_split", {}, {}};
    V.Pipeline.DiagonalSplit = false;
    Out.push_back(V);
  }
  {
    Variant V{"no_workspace", {}, {}};
    V.Pipeline.Workspace = false;
    Out.push_back(V);
  }
  {
    Variant V{"no_concordize", {}, {}};
    V.Pipeline.Concordize = false;
    Out.push_back(V);
  }
  {
    Variant V{"no_blockmerge", {}, {}};
    V.Pipeline.ConsolidateBlocks = false;
    V.Pipeline.GroupAcrossBranches = false;
    V.Pipeline.SimplicialLut = false;
    Out.push_back(V);
  }
  {
    Variant V{"no_distributive", {}, {}};
    V.Pipeline.DistributiveGrouping = false;
    Out.push_back(V);
  }
  {
    Variant V{"no_cse", {}, {}};
    V.Pipeline.CommonAccessElimination = false;
    Out.push_back(V);
  }
  {
    Variant V{"no_boundlift", {}, {}};
    V.Exec.EnableBoundLifting = false;
    Out.push_back(V);
  }
  {
    Variant V{"no_microkernels", {}, {}};
    V.Exec.EnableMicroKernels = false;
    Out.push_back(V);
  }
  {
    // Legacy string-membership walker check instead of the algebraic
    // annihilation analysis (loses walkers under sparse-topped formats
    // and workspace flushes; identical on the default CSF kernels).
    Variant V{"no_walker_algebra", {}, {}};
    V.Exec.AnnihilationAlgebra = false;
    Out.push_back(V);
  }
  {
    // Fused nests without the register/cache-blocked output engine
    // (per-column fiber walks and rebinds instead of column panels).
    Variant V{"no_blocking", {}, {}};
    V.Exec.EnableBlocking = false;
    Out.push_back(V);
  }
  {
    // The typed engine-preference surface (ExecOptions::Engines): the
    // JIT-compiled whole-body engine first, standard fallback chain
    // behind it. Degrades to fused automatically when no host compiler
    // is available, so the variant always runs.
    Variant V{"engine_native", {}, {}};
    V.Exec.Engines = {Engine::Native, Engine::Fused, Engine::Interp};
    Out.push_back(V);
  }
  {
    // Pure interpreter spelled through the same typed surface (the
    // per-loop engines ablated away wholesale rather than via the
    // deprecated booleans).
    Variant V{"engine_interp", {}, {}};
    V.Exec.Engines = {Engine::Interp};
    Out.push_back(V);
  }
  return Out;
}

/// Prints the plan-specialization outcome for one prepared executor
/// (the micro-kernel ablation's coverage metric: how many loop
/// subtrees run fused vs. interpreted).
void printSpecialization(const char *Workload, const char *Variant,
                         const Executor &E) {
  const MicroKernelStats &S = E.microKernelStats();
  std::printf("  specialization %-10s %-16s fused=%llu (innermost %llu) "
              "generic=%llu walkers=%llu (recovered %llu, rejected "
              "%llu) co=%llu (nway %llu) lut=%llu prebind=%llu "
              "blocked=%llu (accum %llu)\n",
              Workload, Variant,
              static_cast<unsigned long long>(S.SpecializedLoops),
              static_cast<unsigned long long>(S.InnermostFused),
              static_cast<unsigned long long>(S.GenericLoops),
              static_cast<unsigned long long>(S.WalkersRegistered),
              static_cast<unsigned long long>(S.WalkersRecovered),
              static_cast<unsigned long long>(S.WalkersRejected),
              static_cast<unsigned long long>(S.FusedCoWalkers),
              static_cast<unsigned long long>(S.FusedNWalkerLoops),
              static_cast<unsigned long long>(S.FusedLutFactors),
              static_cast<unsigned long long>(S.PrebindSlots),
              static_cast<unsigned long long>(S.BlockedLoops),
              static_cast<unsigned long long>(S.BlockedAccumLoops));
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  Rng R(20260618);

  std::vector<std::unique_ptr<Holder>> Holders;
  std::vector<Row> SsymvRows, MttkrpRows;

  // SSYMV workload: 8000x8000, ~64k nonzeros.
  auto HS = std::make_unique<Holder>();
  HS->Tensors.emplace("A", generateSymmetricTensor(2, 8000, 32000, R,
                                                   TensorFormat::csf(2)));
  HS->Tensors.emplace("x", generateDenseVector(8000, R));
  HS->Tensors.emplace("y", Tensor::dense({8000}));

  // MTTKRP workload: 60^3, ~30k nonzeros, rank 32.
  auto HM = std::make_unique<Holder>();
  HM->Tensors.emplace("A", generateSymmetricTensor(3, 60, 5000, R,
                                                   TensorFormat::csf(3)));
  HM->Tensors.emplace("B", generateDenseMatrix(60, 32, R));
  HM->Tensors.emplace("C", Tensor::dense({60, 32}));

  Einsum SsymvE = makeSsymv();
  Einsum MttkrpE = makeMttkrp(3);

  // Naive references.
  {
    CompileResult C = compileEinsum(SsymvE);
    Executor &N = HS->addExecutor(C.Naive);
    N.bind("A", &HS->tensor("A")).bind("x", &HS->tensor("x"))
        .bind("y", &HS->tensor("y"));
    N.prepare();
    Tensor *Y = &HS->tensor("y");
    registerRun("ablation/ssymv/naive", [Y] { Y->setAllValues(0); },
                [&N] { N.runBody(); });
  }
  {
    CompileResult C = compileEinsum(MttkrpE);
    Executor &N = HM->addExecutor(C.Naive);
    N.bind("A", &HM->tensor("A")).bind("B", &HM->tensor("B"))
        .bind("C", &HM->tensor("C"));
    N.prepare();
    Tensor *Out = &HM->tensor("C");
    registerRun("ablation/mttkrp3/naive", [Out] { Out->setAllValues(0); },
                [&N] { N.runBody(); });
  }

  for (const Variant &V : variants()) {
    {
      CompileResult C = compileEinsum(SsymvE, V.Pipeline);
      Holders.push_back(std::make_unique<Holder>());
      Holder &H = *Holders.back();
      H.Executors.push_back(
          std::make_unique<Executor>(C.Optimized, V.Exec));
      Executor &E = *H.Executors.back();
      E.bind("A", &HS->tensor("A")).bind("x", &HS->tensor("x"))
          .bind("y", &HS->tensor("y"));
      E.prepare();
      printSpecialization("ssymv", V.Name, E);
      Tensor *Y = &HS->tensor("y");
      std::string Name = std::string("ablation/ssymv/") + V.Name;
      registerRun(Name, [Y] { Y->setAllValues(0); },
                  [&E] { E.runBody(); });
      Row RowEntry;
      RowEntry.Label = std::string("ssymv ") + V.Name;
      RowEntry.Entries.push_back({"naive", "ablation/ssymv/naive"});
      RowEntry.Entries.push_back({"systec", Name});
      SsymvRows.push_back(RowEntry);
    }
    {
      CompileResult C = compileEinsum(MttkrpE, V.Pipeline);
      Holders.push_back(std::make_unique<Holder>());
      Holder &H = *Holders.back();
      H.Executors.push_back(
          std::make_unique<Executor>(C.Optimized, V.Exec));
      Executor &E = *H.Executors.back();
      E.bind("A", &HM->tensor("A")).bind("B", &HM->tensor("B"))
          .bind("C", &HM->tensor("C"));
      E.prepare();
      printSpecialization("mttkrp3", V.Name, E);
      Tensor *Out = &HM->tensor("C");
      std::string Name = std::string("ablation/mttkrp3/") + V.Name;
      registerRun(Name, [Out] { Out->setAllValues(0); },
                  [&E] { E.runBody(); });
      Row RowEntry;
      RowEntry.Label = std::string("mttkrp3 ") + V.Name;
      RowEntry.Entries.push_back({"naive", "ablation/mttkrp3/naive"});
      RowEntry.Entries.push_back({"systec", Name});
      MttkrpRows.push_back(RowEntry);
    }
  }
  Holders.push_back(std::move(HS));
  Holders.push_back(std::move(HM));

  CaptureReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);
  printSpeedups(Rep, "Ablation: SSYMV (speedup vs naive per variant)",
                {"naive", "systec"}, SsymvRows);
  printSpeedups(Rep, "Ablation: MTTKRP-3d (speedup vs naive per variant)",
                {"naive", "systec"}, MttkrpRows);
  return 0;
}
