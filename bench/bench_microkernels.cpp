//===- bench/bench_microkernels.cpp - Specialization speedup --*- C++ -*-===//
///
/// \file
/// Single-threaded ablation of the runtime specialization layer: each
/// paper kernel's *optimized* plan is timed with the micro-kernel
/// engines disabled (the generic interpreter) and enabled (fused loops
/// over raw level arrays), at Threads = 1 so the ratio isolates
/// dispatch cost from parallel scaling. Results land in
/// BENCH_microkernels.json; the ≥2x targets on ssymv/ssyrk at n = 2000
/// are the acceptance line for the fused engines (ttm/mttkrp fuse
/// deeper nests and gain more).
///
/// Note: correctness/parity of the two engines is asserted by
/// tests/perf_smoke.cpp and the fuzzer, not here; this binary only
/// times.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Compiler.h"
#include "jit/NativeKernelCache.h"
#include "kernels/Kernels.h"
#include "observability/Trace.h"

using namespace systec;
using namespace systec::bench;

namespace {

struct MicroCase {
  std::string Name;
  Einsum E;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  std::string OutName;
  std::string Workload;
};

std::vector<MicroCase> makeCases(Rng &R) {
  const int64_t N = 2000;   // acceptance size for ssymv / ssyrk
  const int64_t Dim3 = 80;  // 3-d workloads
  const int64_t Rank = 32;
  std::vector<MicroCase> Cases;
  {
    MicroCase C{"ssymv", makeSsymv(), {}, {N}, "y", "n2000_nnz16n"};
    C.Inputs.emplace("A", generateSymmetricTensor(2, N, 16 * N, R,
                                                  TensorFormat::csf(2)));
    C.Inputs.emplace("x", generateDenseVector(N, R));
    Cases.push_back(std::move(C));
  }
  {
    MicroCase C{"syprd", makeSyprd(), {}, {1}, "y", "n2000_nnz16n"};
    C.Inputs.emplace("A", generateSymmetricTensor(2, N, 16 * N, R,
                                                  TensorFormat::csf(2)));
    C.Inputs.emplace("x", generateDenseVector(N, R));
    Cases.push_back(std::move(C));
  }
  {
    // Denser columns than ssymv: ssyrk's inner work grows with
    // nnz-per-column squared, which is where the fused triangle kernel
    // pays off (at very low densities both engines are bound by the
    // scattered writes into the dense C).
    MicroCase C{"ssyrk", makeSsyrk(), {}, {N, N}, "C", "n2000_nnz96n"};
    C.Inputs.emplace("A", generateSymmetricTensor(2, N, 96 * N, R,
                                                  TensorFormat::csf(2)));
    Cases.push_back(std::move(C));
  }
  {
    MicroCase C{"ttm", makeTtm(), {}, {Rank, Dim3, Dim3}, "C", "d80_r32"};
    C.Inputs.emplace("A", generateSymmetricTensor(3, Dim3, 20000, R,
                                                  TensorFormat::csf(3)));
    C.Inputs.emplace("B", generateDenseMatrix(Dim3, Rank, R));
    Cases.push_back(std::move(C));
  }
  {
    MicroCase C{"mttkrp3", makeMttkrp(3), {}, {Dim3, Rank}, "C", "d80_r32"};
    C.Inputs.emplace("A", generateSymmetricTensor(3, Dim3, 20000, R,
                                                  TensorFormat::csf(3)));
    C.Inputs.emplace("B", generateDenseMatrix(Dim3, Rank, R));
    Cases.push_back(std::move(C));
  }
  {
    // SpMM against a dense panel matrix: the workspace-form blocked
    // shape (`C[i,k] += A_row(j) * B[j,k]`) — the blocked engine holds
    // a register panel of workspace cells across each sparse row walk
    // and writes every column back once, where the unblocked nest
    // re-walks the row per column.
    Einsum E = parseEinsum("spmm", "C[i,k] += A[i,j] * B[j,k]");
    E.LoopOrder = {"i", "k", "j"};
    E.declare("A", TensorFormat::csf(2));
    MicroCase C{"spmm", std::move(E), {}, {N, Rank}, "C",
                "n2000_nnz32n_r32"};
    C.Inputs.emplace("A", generateSymmetricTensor(2, N, 32 * N, R,
                                                  TensorFormat::csf(2)));
    C.Inputs.emplace("B", generateDenseMatrix(N, Rank, R));
    Cases.push_back(std::move(C));
  }
  {
    // Three sparse operands intersecting on the inner index: the N-way
    // multi-finger merge (one driver, two sparse co-walkers with
    // galloping catch-up) vs. the interpreter's per-element locate —
    // the shape the specializer declined before the intersection
    // engine generalized past two walkers.
    Einsum E = parseEinsum("trimul", "O[j] += A[i,j] * B[i,j] * C[i,j]");
    E.LoopOrder = {"j", "i"};
    for (const char *T : {"A", "B", "C"})
      E.declare(T, TensorFormat::csf(2));
    MicroCase C{"trimul", std::move(E), {}, {N}, "O", "n2000_nnz16n_x3"};
    for (const char *T : {"A", "B", "C"})
      C.Inputs.emplace(T, generateSymmetricTensor(2, N, 16 * N, R,
                                                  TensorFormat::csf(2)));
    Cases.push_back(std::move(C));
  }
  return Cases;
}

/// The single source of truth for each impl row's execution options:
/// used to build the Executor *and* to attribute its BENCH_* record.
ExecOptions implOptions(const std::string &Impl) {
  ExecOptions O;
  O.Threads = 1;
  if (Impl == "native")
    O.Engines = {Engine::Native, Engine::Fused, Engine::Interp};
  else
    O.EnableMicroKernels = Impl == "fused";
  return O;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  Rng R(20260801);
  std::vector<MicroCase> Cases = makeCases(R);
  std::vector<std::unique_ptr<Holder>> Holders;

  // The native (JIT) column rides along whenever a host compiler is
  // available; otherwise the bench degrades to the two classic columns
  // with a visible note rather than failing.
  std::vector<std::string> Impls{"interp", "fused"};
  {
    std::string Reason;
    if (jit::NativeKernelCache::compilerAvailable(&Reason))
      Impls.push_back("native");
    else
      std::printf("native column skipped: %s\n", Reason.c_str());
  }
  // Per case, the impls whose executors actually registered (the native
  // impl drops out when the build falls back, so a fused run is never
  // mislabeled as native).
  std::vector<std::vector<std::string>> CaseImpls;

  for (MicroCase &C : Cases) {
    CompileResult Compiled = compileEinsum(C.E);
    auto H = std::make_unique<Holder>();
    H->Tensors.emplace("out", Tensor::dense(C.OutDims));
    Tensor *Out = &H->tensor("out");
    CaseImpls.emplace_back();
    for (const std::string &Impl : Impls) {
      ExecOptions O = implOptions(Impl);
      H->Executors.push_back(
          std::make_unique<Executor>(Compiled.Optimized, O));
      Executor &E = *H->Executors.back();
      for (auto &[Name, T] : C.Inputs)
        E.bind(Name, &T);
      E.bind(C.OutName, Out);
      E.prepare();
      if (Impl == "native" && !E.usesNativeEngine()) {
        std::printf("%-8s native build fell back (%s)\n", C.Name.c_str(),
                    E.nativeStatus().str().c_str());
        H->Executors.pop_back();
        continue;
      }
      CaseImpls.back().push_back(Impl);
      registerRun("microkernels/" + C.Name + "/" + Impl,
                  [Out] { Out->setAllValues(0.0); },
                  [&E] { E.runBody(); });
    }
    const MicroKernelStats &S = H->Executors.back()->microKernelStats();
    std::printf("%-8s specialized=%llu (innermost %llu), generic=%llu, "
                "co=%llu (nway %llu, rl %llu, banded %llu), lut=%llu, "
                "prebind=%llu, blocked=%llu (accum %llu)\n",
                C.Name.c_str(),
                static_cast<unsigned long long>(S.SpecializedLoops),
                static_cast<unsigned long long>(S.InnermostFused),
                static_cast<unsigned long long>(S.GenericLoops),
                static_cast<unsigned long long>(S.FusedCoWalkers),
                static_cast<unsigned long long>(S.FusedNWalkerLoops),
                static_cast<unsigned long long>(S.FusedRunLengthCoWalkers),
                static_cast<unsigned long long>(S.FusedBandedCoWalkers),
                static_cast<unsigned long long>(S.FusedLutFactors),
                static_cast<unsigned long long>(S.PrebindSlots),
                static_cast<unsigned long long>(S.BlockedLoops),
                static_cast<unsigned long long>(S.BlockedAccumLoops));
    Holders.push_back(std::move(H));
  }

  CaptureReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);

  std::printf("\n=== Micro-kernel speedup (interpreted plan vs fused vs "
              "native, Threads=1) ===\n");
  std::printf("%-10s %12s %12s %12s %10s %10s %10s\n", "kernel",
              "interp(ms)", "fused(ms)", "native(ms)", "speedup",
              "nat/fused", "target");
  std::vector<BenchRecord> Records;
  for (size_t CI = 0; CI < Cases.size(); ++CI) {
    const MicroCase &C = Cases[CI];
    double TI = Rep.millis("microkernels/" + C.Name + "/interp");
    double TF = Rep.millis("microkernels/" + C.Name + "/fused");
    double TN = Rep.millis("microkernels/" + C.Name + "/native");
    const bool HasTarget = C.Name == "ssymv" || C.Name == "ssyrk";
    if (TI > 0 && TF > 0) {
      char NativeMs[32] = "-", NativeRatio[32] = "-";
      if (TN > 0) {
        std::snprintf(NativeMs, sizeof(NativeMs), "%.3f", TN);
        std::snprintf(NativeRatio, sizeof(NativeRatio), "%.2fx", TF / TN);
      }
      std::printf("%-10s %12.3f %12.3f %12s %9.2fx %10s %10s\n",
                  C.Name.c_str(), TI, TF, NativeMs, TI / TF, NativeRatio,
                  HasTarget ? ">=2.00x" : "-");
    }
    for (size_t Idx = 0; Idx < CaseImpls[CI].size(); ++Idx) {
      const std::string &Impl = CaseImpls[CI][Idx];
      double Ms = Rep.millis("microkernels/" + C.Name + "/" + Impl);
      if (Ms <= 0)
        continue;
      BenchRecord Rec{C.Name, C.Workload, Impl, 1, "none", Ms, 0,
                      execOptionsSummary(implOptions(Impl)),
                      "", ""};
      Tensor *Out = &Holders[CI]->tensor("out");
      annotateRecord(Rec, *Holders[CI]->Executors[Idx],
                     [Out] { Out->setAllValues(0.0); });
      Records.push_back(std::move(Rec));
    }
  }
  writeBenchJson("BENCH_microkernels.json", Records);

  // SYSTEC_TRACE=<path>: rerun every case through fresh executors with
  // tracing on at Threads=2/Dynamic and export one Chrome trace. The
  // traced pass is separate from (and after) the gate records above,
  // so BENCH_microkernels.json stays a tracing-off measurement.
  if (const char *TraceEnv = std::getenv("SYSTEC_TRACE")) {
    obs::setThreadName("main");
    for (size_t CI = 0; CI < Cases.size(); ++CI) {
      MicroCase &C = Cases[CI];
      CompileResult Compiled = compileEinsum(C.E);
      Tensor *Out = &Holders[CI]->tensor("out");
      for (unsigned Idx = 0; Idx < 2; ++Idx) {
        ExecOptions O = implOptions(Idx ? "fused" : "interp");
        O.Threads = 2;
        O.Schedule = SchedulePolicy::Dynamic;
        O.Tracing = true;
        Executor E(Compiled.Optimized, O);
        for (auto &[Name, T] : C.Inputs)
          E.bind(Name, &T);
        E.bind(C.OutName, Out);
        E.prepare();
        for (int Run = 0; Run < 3; ++Run) {
          Out->setAllValues(0.0);
          E.run();
        }
      }
    }
    const std::string Path =
        *TraceEnv ? TraceEnv : "bench_microkernels.trace.json";
    if (obs::writeChromeTrace(Path))
      std::printf("wrote %s (%llu events, %llu dropped)\n", Path.c_str(),
                  static_cast<unsigned long long>(obs::traceEventCount()),
                  static_cast<unsigned long long>(obs::traceDroppedCount()));
    else
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    obs::setTracingEnabled(false);
  }
  return 0;
}
