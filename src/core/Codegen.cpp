//===- core/Codegen.cpp ---------------------------------------*- C++ -*-===//

#include "core/Codegen.h"

#include "runtime/Plan.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace systec {

namespace {

/// Emits one kernel as C++ source. The structure mirrors the plan
/// compiler in runtime/Executor.cpp: loops are driven by the first
/// concordant sparse access, single-conjunction conditions peel into
/// loop bounds, everything else evaluates as residual predicates or
/// random-access reads.
class CppEmitter {
public:
  CppEmitter(const Kernel &K, bool InlinePreparation)
      : K(K), InlinePreparation(InlinePreparation) {}

  std::string emit() {
    collectExtents();
    std::ostringstream Body;
    emitStmt(K.Body, Body, 1);
    if (K.Epilogue) {
      Body << "\n  // epilogue: replicate the canonical triangle\n";
      emitStmt(K.Epilogue, Body, 1);
    }
    return assemble(Body.str());
  }

private:
  const Kernel &K;
  bool InlinePreparation = true;
  std::map<std::string, std::string> ExtentExpr; // index -> dim expr
  std::set<std::string> LevelRefs;               // "T_lN" declarations
  std::vector<std::pair<std::vector<CmpAtom>, std::vector<double>>> Luts;
  std::set<std::string> BoundVars;
  // Per distinct access: how many levels are driven on the current
  // path, and the position variable of the last driven level.
  std::map<std::string, unsigned> Driven;
  std::map<std::string, std::string> PosVar;
  // Lexical scopes of declared scalar temporaries (guarded definitions
  // are predeclared in the enclosing scope and assigned in-branch).
  std::vector<std::set<std::string>> Scopes{{}};

  bool scalarDeclared(const std::string &Name) const {
    for (const std::set<std::string> &S : Scopes)
      if (S.count(Name))
        return true;
    return false;
  }

  void collectDefNames(const StmtPtr &S, std::vector<std::string> &Out) {
    if (S->kind() == StmtKind::DefScalar) {
      Out.push_back(S->scalarName());
    } else if (S->kind() == StmtKind::Block) {
      for (const StmtPtr &C : S->stmts())
        collectDefNames(C, Out);
    } else if (S->kind() == StmtKind::If) {
      collectDefNames(S->body(), Out);
    }
  }

  const TensorDecl &declOf(const std::string &Name) const {
    auto It = K.Decls.find(Name);
    if (It == K.Decls.end())
      fatalError("codegen: unknown tensor " + Name);
    return It->second;
  }

  bool isAlias(const std::string &Name) const {
    for (const TransposeRequest &T : K.Transposes)
      if (T.Alias == Name)
        return true;
    for (const SplitRequest &S : K.Splits)
      if (S.Alias == Name)
        return true;
    return false;
  }

  void collectExtents() {
    auto FromStmt = [this](const StmtPtr &Root) {
      Stmt::walk(Root, [this](const StmtPtr &S) {
        std::vector<ExprPtr> Accesses;
        if (S->kind() == StmtKind::Assign) {
          Expr::collectAccesses(S->rhs(), Accesses);
          if (S->lhs()->kind() == ExprKind::Access)
            Accesses.push_back(S->lhs());
        } else if (S->kind() == StmtKind::DefScalar) {
          Expr::collectAccesses(S->rhs(), Accesses);
        }
        for (const ExprPtr &A : Accesses)
          for (unsigned M = 0; M < A->indices().size(); ++M)
            ExtentExpr.insert({A->indices()[M],
                               A->tensorName() + ".dim(" +
                                   std::to_string(M) + ")"});
      });
    };
    FromStmt(K.Body);
    if (K.Epilogue)
      FromStmt(K.Epilogue);
  }

  std::string cmpExpr(const CmpAtom &A) {
    return A.Lhs + " " + cmpKindName(A.Kind) + " " + A.Rhs;
  }

  std::string condExpr(const Cond &C) {
    std::vector<std::string> Disj;
    for (const Conj &D : C.disjuncts()) {
      std::vector<std::string> Atoms;
      for (const CmpAtom &A : D.Atoms)
        Atoms.push_back(cmpExpr(A));
      Disj.push_back(Atoms.empty() ? "true" : join(Atoms, " && "));
    }
    if (Disj.size() == 1)
      return Disj[0];
    for (std::string &S : Disj)
      S = "(" + S + ")";
    return join(Disj, " || ");
  }

  /// Column-major dense position: i0 + d0*(i1 + d1*(i2 ...)).
  std::string densePos(const std::string &Tensor,
                       const std::vector<std::string> &Indices) {
    std::string Out;
    for (unsigned M = static_cast<unsigned>(Indices.size()); M-- > 0;) {
      if (Out.empty())
        Out = Indices[M];
      else
        Out = Indices[M] + " + " + Tensor + ".dim(" + std::to_string(M) +
              ") * (" + Out + ")";
    }
    return Out.empty() ? "0" : Out;
  }

  std::string valueExpr(const ExprPtr &E) {
    switch (E->kind()) {
    case ExprKind::Literal: {
      double V = E->literalValue();
      if (std::isinf(V))
        return V > 0 ? "std::numeric_limits<double>::infinity()"
                     : "-std::numeric_limits<double>::infinity()";
      return formatDouble(V);
    }
    case ExprKind::Scalar:
      return E->scalarName();
    case ExprKind::Access: {
      const std::string Key = E->str();
      const TensorDecl &D = declOf(E->tensorName());
      auto It = Driven.find(Key);
      if (It != Driven.end() && It->second == D.Order && D.Order > 0)
        return E->tensorName() + ".val(" + PosVar[Key] + ")";
      if (D.Format.isAllDense())
        return E->tensorName() + ".vals()[" +
               densePos(E->tensorName(), E->indices()) + "]";
      // Random access fallback (non-concordant sparse read).
      return E->tensorName() + ".at({" + join(E->indices(), ", ") + "})";
    }
    case ExprKind::Call: {
      const OpInfo &Info = opInfo(E->op());
      std::vector<std::string> Args;
      for (const ExprPtr &A : E->args())
        Args.push_back(valueExpr(A));
      if (E->op() == OpKind::Add || E->op() == OpKind::Mul ||
          E->op() == OpKind::Sub || E->op() == OpKind::Div) {
        for (std::string &A : Args)
          A = "(" + A + ")";
        return join(Args, std::string(" ") + Info.Name + " ");
      }
      // min/max fold left.
      std::string Out = Args[0];
      for (size_t I = 1; I < Args.size(); ++I)
        Out = std::string("std::") + Info.Ident + "(" + Out + ", " +
              Args[I] + ")";
      return Out;
    }
    case ExprKind::Lut: {
      unsigned Id = static_cast<unsigned>(Luts.size());
      Luts.push_back({E->lutBits(), E->lutTable()});
      std::string Idx;
      for (size_t B = 0; B < E->lutBits().size(); ++B) {
        if (B)
          Idx += " + ";
        Idx += "((" + cmpExpr(E->lutBits()[B]) + ") ? " +
               std::to_string(1u << B) + " : 0)";
      }
      return "lut" + std::to_string(Id) + "[" + Idx + "]";
    }
    }
    unreachable("unknown expression kind");
  }

  std::string reduceStmt(const ExprPtr &Lhs, std::optional<OpKind> Op,
                         const std::string &Val, unsigned Mult) {
    std::string Target;
    if (Lhs->kind() == ExprKind::Scalar) {
      Target = Lhs->scalarName();
    } else {
      Target = Lhs->tensorName() + ".vals()[" +
               densePos(Lhs->tensorName(), Lhs->indices()) + "]";
    }
    std::string V = Val;
    if (Mult > 1)
      V = std::to_string(Mult) + " * (" + V + ")";
    if (!Op)
      return Target + " = " + V + ";";
    switch (*Op) {
    case OpKind::Add:
      return Target + " += " + V + ";";
    case OpKind::Mul:
      return Target + " *= " + V + ";";
    default:
      return Target + " = " + std::string("std::") + opInfo(*Op).Ident +
             "(" + Target + ", " + V + ");";
    }
  }

  void emitStmt(const StmtPtr &S, std::ostringstream &OS,
                unsigned Indent) {
    std::string Pad(2 * Indent, ' ');
    switch (S->kind()) {
    case StmtKind::Block:
      for (const StmtPtr &C : S->stmts())
        emitStmt(C, OS, Indent);
      return;
    case StmtKind::If: {
      // Temporaries defined under the condition must survive it in C++
      // scoping: predeclare them here, assign inside the branch.
      std::vector<std::string> Defs;
      collectDefNames(S->body(), Defs);
      for (const std::string &Name : Defs)
        if (!scalarDeclared(Name)) {
          OS << Pad << "double " << Name << " = 0;\n";
          Scopes.back().insert(Name);
        }
      OS << Pad << "if (" << condExpr(S->condition()) << ") {\n";
      Scopes.push_back({});
      emitStmt(S->body(), OS, Indent + 1);
      Scopes.pop_back();
      OS << Pad << "}\n";
      return;
    }
    case StmtKind::DefScalar:
      // Mutable: workspace scalars accumulate after their definition.
      if (scalarDeclared(S->scalarName())) {
        OS << Pad << S->scalarName() << " = " << valueExpr(S->rhs())
           << ";\n";
      } else {
        OS << Pad << "double " << S->scalarName() << " = "
           << valueExpr(S->rhs()) << ";\n";
        Scopes.back().insert(S->scalarName());
      }
      return;
    case StmtKind::Assign:
      OS << Pad
         << reduceStmt(S->lhs(), S->reduceOp(), valueExpr(S->rhs()),
                       S->multiplicity())
         << "\n";
      return;
    case StmtKind::Loop:
      emitLoop(S, OS, Indent);
      return;
    case StmtKind::Replicate:
      OS << Pad << "replicateSymmetric(" << S->tensorName()
         << ", Partition::parse(" << S->outputSymmetry().order() << ", \""
         << S->outputSymmetry().str() << "\"));\n";
      return;
    }
    unreachable("unknown statement kind");
  }

  /// Marker comment showing the ParallelAnalysis decision in golden
  /// reports; the AOT output itself stays sequential C++ (the engine's
  /// thread pool is the parallel path).
  std::string parallelMarker(const StmtPtr &S) {
    const ParallelAnnotation &P = S->parallelInfo();
    if (!P.IsParallel)
      return "";
    if (P.TriangleDepth != 0)
      return "  // parallel (triangle-balanced, depth " +
             std::to_string(P.TriangleDepth) + ")";
    return "  // parallel";
  }

  void emitLoop(const StmtPtr &S, std::ostringstream &OS,
                unsigned Indent) {
    const std::string &Var = S->loopIndex();
    std::string Pad(2 * Indent, ' ');
    const std::string ParMark = parallelMarker(S);
    BoundVars.insert(Var);

    // Peel single-conjunction bounds exactly like the executor.
    StmtPtr Body = S->body();
    std::vector<std::string> LoTerms, HiTerms;
    while (true) {
      if (Body->kind() == StmtKind::Block && Body->stmts().size() == 1) {
        Body = Body->stmts()[0];
        continue;
      }
      if (Body->kind() != StmtKind::If ||
          Body->condition().disjuncts().size() != 1)
        break;
      std::vector<CmpAtom> Residual;
      for (CmpAtom A : Body->condition().disjuncts()[0].Atoms) {
        if (A.Rhs == Var && A.Lhs != Var) {
          std::swap(A.Lhs, A.Rhs);
          A.Kind = swapCmp(A.Kind);
        }
        if (A.Lhs == Var && A.Rhs != Var && BoundVars.count(A.Rhs)) {
          switch (A.Kind) {
          case CmpKind::LE:
            HiTerms.push_back(A.Rhs);
            continue;
          case CmpKind::LT:
            HiTerms.push_back(A.Rhs + " - 1");
            continue;
          case CmpKind::GE:
            LoTerms.push_back(A.Rhs);
            continue;
          case CmpKind::GT:
            LoTerms.push_back(A.Rhs + " + 1");
            continue;
          case CmpKind::EQ:
            LoTerms.push_back(A.Rhs);
            HiTerms.push_back(A.Rhs);
            continue;
          case CmpKind::NE:
            break;
          }
        }
        Residual.push_back(A);
      }
      StmtPtr Inner = Body->body();
      Body = Residual.empty()
                 ? Inner
                 : Stmt::ifThen(Cond::conj(std::move(Residual)), Inner);
      if (!Residual.empty())
        break;
    }

    // Pick a driving access for a sparse tensor, if any (dense levels
    // of CSF tensors also advance the position path).
    std::string WalkKey;
    unsigned WalkLevel = 0;
    LevelKind WalkKind = LevelKind::Dense;
    std::vector<ExprPtr> Accesses;
    collectSubtreeAccesses(Body, Accesses);
    std::set<std::string> Seen;
    for (const ExprPtr &A : Accesses) {
      if (!Seen.insert(A->str()).second)
        continue;
      const TensorDecl &D = declOf(A->tensorName());
      if (D.Format.isAllDense())
        continue;
      unsigned Dr = Driven.count(A->str()) ? Driven[A->str()] : 0;
      if (Dr < D.Order && A->indices()[D.Order - 1 - Dr] == Var &&
          (D.Format.Levels[Dr] == LevelKind::Sparse ||
           D.Format.Levels[Dr] == LevelKind::Dense)) {
        WalkKey = A->str();
        WalkLevel = Dr;
        WalkKind = D.Format.Levels[Dr];
        break;
      }
    }

    std::string Lo = "(int64_t)0";
    for (const std::string &T : LoTerms)
      Lo = "std::max<int64_t>(" + Lo + ", " + T + ")";
    auto ExtIt = ExtentExpr.find(Var);
    std::string Hi = ExtIt == ExtentExpr.end()
                         ? std::string("0")
                         : ExtIt->second + " - 1";
    for (const std::string &T : HiTerms)
      Hi = "std::min<int64_t>(" + Hi + ", " + T + ")";

    if (WalkKey.empty()) {
      OS << Pad << "for (int64_t " << Var << " = " << Lo << "; " << Var
         << " <= " << Hi << "; ++" << Var << ") {" << ParMark << "\n";
      Scopes.push_back({});
      emitStmt(Body, OS, Indent + 1);
      Scopes.pop_back();
      OS << Pad << "}\n";
    } else if (WalkKind == LevelKind::Dense) {
      // Dense level of a sparse tensor: positions are computed, the
      // loop itself is a plain range.
      size_t Bracket = WalkKey.find('[');
      std::string Tensor = WalkKey.substr(0, Bracket);
      const TensorDecl &D = declOf(Tensor);
      unsigned Mode = D.Order - 1 - WalkLevel;
      std::string Parent =
          WalkLevel == 0 ? std::string("0") : PosVar[WalkKey];
      std::string P = "p_" + Tensor + std::to_string(WalkLevel);
      OS << Pad << "for (int64_t " << Var << " = " << Lo << "; " << Var
         << " <= " << Hi << "; ++" << Var << ") {" << ParMark << "\n";
      OS << Pad << "  const int64_t " << P << " = " << Parent << " * "
         << Tensor << ".dim(" << Mode << ") + " << Var << ";\n";
      unsigned OldDriven = Driven.count(WalkKey) ? Driven[WalkKey] : 0;
      std::string OldPos = PosVar.count(WalkKey) ? PosVar[WalkKey] : "";
      Driven[WalkKey] = WalkLevel + 1;
      PosVar[WalkKey] = P;
      Scopes.push_back({});
      emitStmt(Body, OS, Indent + 1);
      Scopes.pop_back();
      Driven[WalkKey] = OldDriven;
      PosVar[WalkKey] = OldPos;
      OS << Pad << "}\n";
    } else {
      // Sparse walker over the access's next level.
      size_t Bracket = WalkKey.find('[');
      std::string Tensor = WalkKey.substr(0, Bracket);
      std::string Lev = Tensor + "_l" + std::to_string(WalkLevel);
      LevelRefs.insert(Tensor + ":" + std::to_string(WalkLevel));
      std::string Parent =
          WalkLevel == 0 ? std::string("0") : PosVar[WalkKey];
      std::string Q = "q_" + Tensor + std::to_string(WalkLevel);
      OS << Pad << "for (int64_t " << Q << " = " << Lev << ".Ptr["
         << Parent << "]; " << Q << " < " << Lev << ".Ptr[" << Parent
         << " + 1]; ++" << Q << ") {" << ParMark << "\n";
      OS << Pad << "  const int64_t " << Var << " = " << Lev << ".Crd["
         << Q << "];\n";
      OS << Pad << "  if (" << Var << " > " << Hi
         << ") break;  // lifted upper bound\n";
      if (!LoTerms.empty())
        OS << Pad << "  if (" << Var << " < " << Lo
           << ") continue;  // lifted lower bound (executor gallops)\n";
      unsigned OldDriven = Driven.count(WalkKey) ? Driven[WalkKey] : 0;
      std::string OldPos = PosVar.count(WalkKey) ? PosVar[WalkKey] : "";
      Driven[WalkKey] = WalkLevel + 1;
      PosVar[WalkKey] = Q;
      Scopes.push_back({});
      emitStmt(Body, OS, Indent + 1);
      Scopes.pop_back();
      Driven[WalkKey] = OldDriven;
      PosVar[WalkKey] = OldPos;
      OS << Pad << "}\n";
    }
    BoundVars.erase(Var);
  }

  void collectSubtreeAccesses(const StmtPtr &S,
                              std::vector<ExprPtr> &Out) {
    Stmt::walk(S, [&Out](const StmtPtr &Node) {
      if (Node->kind() == StmtKind::Assign ||
          Node->kind() == StmtKind::DefScalar)
        Expr::collectAccesses(Node->rhs(), Out);
    });
  }

  std::string formatCtor(const TensorFormat &F) {
    if (F.isAllDense())
      return "TensorFormat::dense(" + std::to_string(F.order()) + ")";
    if (F == TensorFormat::csf(F.order()))
      return "TensorFormat::csf(" + std::to_string(F.order()) + ")";
    return "TensorFormat::csf(" + std::to_string(F.order()) +
           ") /* adjust for custom levels */";
  }

  std::string assemble(const std::string &Body) {
    std::ostringstream OS;
    OS << "// Generated by SySTeC-cpp from kernel '" << K.Name << "'.\n";
    OS << "#include \"tensor/Tensor.h\"\n#include <algorithm>\n#include <cmath>\n#include <limits>\n\n";
    OS << "using namespace systec;\n\n";
    // Signature: sources and the output; aliases are locals when the
    // function prepares them itself, parameters otherwise.
    std::vector<std::string> Params;
    for (const auto &[Name, D] : K.Decls) {
      if (isAlias(Name)) {
        if (!InlinePreparation)
          Params.push_back("const Tensor &" + Name);
        continue;
      }
      if (D.IsOutput || Name == K.OutputName)
        Params.push_back("Tensor &" + Name);
      else
        Params.push_back("const Tensor &" + Name);
    }
    OS << "void " << K.Name << "(" << join(Params, ", ") << ") {\n";
    if (InlinePreparation) {
      // Alias materialization (untimed data preparation in the paper's
      // methodology; hoist it by emitting with InlinePreparation off).
      std::set<std::string> SplitDone;
      for (const SplitRequest &S : K.Splits) {
        if (SplitDone.insert(S.Source).second) {
          const TensorDecl &D = declOf(S.Source);
          OS << "  auto " << S.Source << "_split = " << S.Source
             << ".splitDiagonal(Partition::parse(" << D.Order << ", \""
             << D.Symmetry.str() << "\"));\n";
        }
        OS << "  const Tensor &" << S.Alias << " = " << S.Source
           << "_split." << (S.DiagonalPart ? "second" : "first")
           << ";\n";
      }
      for (const TransposeRequest &T : K.Transposes) {
        std::vector<std::string> Perm;
        for (unsigned M : T.ModePerm)
          Perm.push_back(std::to_string(M));
        OS << "  Tensor " << T.Alias << " = " << T.Source
           << ".transposed({" << join(Perm, ", ") << "}, "
           << formatCtor(declOf(T.Alias).Format) << ");\n";
      }
    }
    // Lookup tables.
    for (size_t I = 0; I < Luts.size(); ++I) {
      std::vector<std::string> Vals;
      for (double V : Luts[I].second)
        Vals.push_back(formatDouble(V));
      OS << "  static const double lut" << I << "[] = {"
         << join(Vals, ", ") << "};\n";
    }
    // Level references for walked tensors.
    for (const std::string &Ref : LevelRefs) {
      size_t Colon = Ref.find(':');
      std::string Tensor = Ref.substr(0, Colon);
      std::string Level = Ref.substr(Colon + 1);
      OS << "  const Level &" << Tensor << "_l" << Level << " = "
         << Tensor << ".level(" << Level << ");\n";
    }
    OS << "\n" << Body << "}\n";
    return OS.str();
  }
};

} // namespace

std::string emitCpp(const Kernel &K, bool InlinePreparation) {
  return CppEmitter(K, InlinePreparation).emit();
}

//===----------------------------------------------------------------------===//
// Native TU emission (the JIT engine's source backend)
//===----------------------------------------------------------------------===//

namespace {

using detail::AccessState;
using detail::CAtom;
using detail::ExecCtx;
using detail::PlanAssign;
using detail::PlanDef;
using detail::PlanIf;
using detail::PlanLoop;
using detail::PlanNode;
using detail::PlanReplicate;
using detail::PlanSeq;
using detail::VInstr;
using detail::VKind;
using detail::VProgram;

/// Exact-round-trip double literal: hexfloat for finite values (the
/// emitted body must reproduce the interpreter's constants bit for
/// bit), INFINITY/NAN macros otherwise (<math.h> is included).
std::string nativeDouble(double V) {
  if (std::isnan(V))
    return "NAN";
  if (std::isinf(V))
    return V > 0 ? "INFINITY" : "-INFINITY";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

/// Emits one compiled plan as a self-contained C++ TU with a C ABI
/// entry point. Every translation rule mirrors the interpreter
/// (runtime/Plan.cpp) statement for statement — bounds, walker drivers,
/// co-walker intersection order, expression fold order, multiplicity
/// handling, and the counter charge points — so the native body is
/// bit-identical with exact counter parity by construction.
class NativeTUEmitter {
public:
  NativeTUEmitter(const PlanNode &Root, const ExecCtx &Ctx,
                  const std::string &KernelName)
      : Root(Root), Ctx(Ctx), KernelName(KernelName) {}

  Expected<NativeEmitResult> emit() {
    std::ostringstream Body;
    emitNode(&Root, Body, 1);
    if (!Err.ok())
      return std::move(Err);
    NativeEmitResult R;
    R.Source = assemble(Body.str());
    R.Args = Args;
    return R;
  }

private:
  const PlanNode &Root;
  const ExecCtx &Ctx;
  std::string KernelName;

  std::vector<Tensor *> Args;
  std::map<const Tensor *, unsigned> ArgIdx;
  std::vector<std::string> LutDefs;
  unsigned TmpCount = 0;
  unsigned ScopeCount = 0;
  Status Err;

  void fail(const std::string &What) {
    if (Err.ok())
      Err = Status::error(ErrCode::InvalidArgument,
                          "native emission: " + What);
  }

  static std::string num(uint64_t V) { return std::to_string(V); }
  static std::string snum(int64_t V) { return std::to_string(V); }
  std::string newTmp() { return "t" + num(TmpCount++); }
  unsigned newScope() { return ScopeCount++; }

  unsigned argOf(Tensor *T) {
    auto It = ArgIdx.find(T);
    if (It != ArgIdx.end())
      return It->second;
    unsigned Id = static_cast<unsigned>(Args.size());
    Args.push_back(T);
    ArgIdx.emplace(T, Id);
    return Id;
  }

  std::string tens(Tensor *T) { return "T[" + num(argOf(T)) + "]"; }
  std::string lev(Tensor *T, unsigned L) {
    return tens(T) + ".levels[" + num(L) + "]";
  }
  static std::string ivar(unsigned Slot) { return "i" + num(Slot); }
  static std::string svar(unsigned Slot) { return "s" + num(Slot); }
  static std::string pvar(unsigned AccessId, unsigned Level) {
    return "p" + num(AccessId) + "_" + num(Level);
  }

  /// evalOp fold step with the interpreter's operand order; the min/max
  /// helpers replicate std::min/std::max tie and NaN behavior exactly.
  static std::string foldOp(OpKind Op, const std::string &A,
                            const std::string &B) {
    switch (Op) {
    case OpKind::Add:
      return "(" + A + " + " + B + ")";
    case OpKind::Mul:
      return "(" + A + " * " + B + ")";
    case OpKind::Sub:
      return "(" + A + " - " + B + ")";
    case OpKind::Div:
      return "(" + A + " / " + B + ")";
    case OpKind::Min:
      return "systec_min(" + A + ", " + B + ")";
    case OpKind::Max:
      return "systec_max(" + A + ", " + B + ")";
    }
    return "0.0";
  }

  static std::string cmpExpr(const CAtom &A) {
    return ivar(A.A) + " " + cmpKindName(A.Kind) + " " + ivar(A.B);
  }

  std::string slotStrideSum(
      const std::vector<std::pair<unsigned, int64_t>> &SlotStride) {
    if (SlotStride.empty())
      return "0";
    std::string Out;
    for (const auto &[Slot, Stride] : SlotStride) {
      if (!Out.empty())
        Out += " + ";
      Out += ivar(Slot) + " * " + snum(Stride);
    }
    return Out;
  }

  /// Random access through \p I's fibertree, mirroring Tensor::locate
  /// level by level (locateHinted's galloping cursor is a perf device
  /// that returns identical positions, so a plain binary search is
  /// emitted). Returns the name of the temp holding the value.
  std::string emitSparseLoad(const VInstr &I, std::ostringstream &OS,
                             const std::string &Pad) {
    const AccessState &A = Ctx.Accesses[I.Id];
    Tensor *T = A.T;
    std::string Tmp = newTmp();
    OS << Pad << "const double " << Tmp << " = [&]() -> double {\n";
    OS << Pad << "  int64_t pos = 0;\n";
    for (unsigned L = 0; L < T->order(); ++L) {
      const std::string C = ivar(I.LevelSlots[L]);
      const std::string LV = lev(T, L);
      switch (T->level(L).Kind) {
      case LevelKind::Dense:
        OS << Pad << "  pos = pos * " << LV << ".dim + " << C << ";\n";
        break;
      case LevelKind::Sparse:
        OS << Pad << "  {\n"
           << Pad << "    const int64_t e = " << LV << ".ptr[pos + 1];\n"
           << Pad << "    const int64_t q = systec_lb(" << LV << ".crd, "
           << LV << ".ptr[pos], e, " << C << ");\n"
           << Pad << "    if (q == e || " << LV << ".crd[q] != " << C
           << ") return " << tens(T) << ".fill;\n"
           << Pad << "    pos = q;\n"
           << Pad << "  }\n";
        break;
      case LevelKind::RunLength:
        OS << Pad << "  {\n"
           << Pad << "    const int64_t e = " << LV << ".ptr[pos + 1];\n"
           << Pad << "    const int64_t q = systec_ub(" << LV
           << ".run_end, " << LV << ".ptr[pos], e, " << C << ");\n"
           << Pad << "    if (q == e) return " << tens(T) << ".fill;\n"
           << Pad << "    pos = q;\n"
           << Pad << "  }\n";
        break;
      case LevelKind::Banded:
        OS << Pad << "  if (" << C << " < " << LV << ".lo[pos] || " << C
           << " >= " << LV << ".hi[pos]) return " << tens(T) << ".fill;\n"
           << Pad << "  pos = " << LV << ".off[pos] + (" << C << " - "
           << LV << ".lo[pos]);\n";
        break;
      }
    }
    OS << Pad << "  return " << tens(T) << ".vals[pos];\n";
    OS << Pad << "}();\n";
    return Tmp;
  }

  /// Decompiles a VProgram into temp statements in program order and
  /// returns the expression for the final stack value. Counter charges
  /// are compile-time constants: every instruction evaluates exactly
  /// once per program evaluation, so one aggregate increment per
  /// counter replaces the VM's per-instruction bookkeeping.
  std::string emitProgram(const VProgram &P, std::ostringstream &OS,
                          unsigned Indent) {
    std::string Pad(2 * Indent, ' ');
    std::vector<std::string> Stack;
    uint64_t SparseReads = 0, ScalarOps = 0;
    for (const VInstr &I : P.Code) {
      switch (I.Kind) {
      case VKind::Lit:
        Stack.push_back(nativeDouble(I.Lit));
        break;
      case VKind::Scalar:
        Stack.push_back(svar(I.Id));
        break;
      case VKind::Walked: {
        const AccessState &A = Ctx.Accesses[I.Id];
        Stack.push_back(tens(A.T) + ".vals[" +
                        pvar(I.Id, A.T->order()) + "]");
        break;
      }
      case VKind::DenseLoad:
        Stack.push_back(tens(I.T) + ".vals[" +
                        slotStrideSum(I.SlotStride) + "]");
        break;
      case VKind::SparseLoad:
        ++SparseReads;
        Stack.push_back(emitSparseLoad(I, OS, Pad));
        break;
      case VKind::Op: {
        if (Stack.size() < I.NArgs || I.NArgs == 0) {
          fail("malformed expression program");
          return "0.0";
        }
        std::string Acc = Stack[Stack.size() - I.NArgs];
        for (unsigned K = 1; K < I.NArgs; ++K)
          Acc = foldOp(I.Op, Acc, Stack[Stack.size() - I.NArgs + K]);
        Stack.resize(Stack.size() - I.NArgs);
        std::string Tmp = newTmp();
        OS << Pad << "const double " << Tmp << " = " << Acc << ";\n";
        Stack.push_back(Tmp);
        ScalarOps += I.NArgs - 1;
        break;
      }
      case VKind::Lut: {
        unsigned LutId = static_cast<unsigned>(LutDefs.size());
        std::vector<std::string> Vals;
        for (double V : I.LutTable)
          Vals.push_back(nativeDouble(V));
        LutDefs.push_back("static const double systec_lut" + num(LutId) +
                          "[] = {" + join(Vals, ", ") + "};");
        std::string Mask;
        for (size_t B = 0; B < I.LutBits.size(); ++B) {
          if (B)
            Mask += " | ";
          Mask += "((" + cmpExpr(I.LutBits[B]) + ") ? " +
                  num(uint64_t(1) << B) + "u : 0u)";
        }
        if (Mask.empty())
          Mask = "0u";
        std::string Tmp = newTmp();
        OS << Pad << "const double " << Tmp << " = systec_lut"
           << num(LutId) << "[" << Mask << "];\n";
        Stack.push_back(Tmp);
        break;
      }
      }
    }
    if (SparseReads)
      OS << Pad << "n_sparse_reads += " << num(SparseReads) << ";\n";
    if (ScalarOps)
      OS << Pad << "n_scalar_ops += " << num(ScalarOps) << ";\n";
    return Stack.empty() ? std::string("0.0") : Stack.back();
  }

  /// Tensor::locate for one co-walker level, by the statically known
  /// level kind; assigns -1 to \p Dst on a miss (Dense never misses).
  void emitLocate(Tensor *T, unsigned Level, const std::string &Parent,
                  const std::string &Coord, const std::string &Dst,
                  std::ostringstream &OS, const std::string &Pad) {
    const std::string LV = lev(T, Level);
    switch (T->level(Level).Kind) {
    case LevelKind::Dense:
      OS << Pad << "const int64_t " << Dst << " = " << Parent << " * "
         << LV << ".dim + " << Coord << ";\n";
      break;
    case LevelKind::Sparse:
      OS << Pad << "int64_t " << Dst << ";\n"
         << Pad << "{\n"
         << Pad << "  const int64_t e = " << LV << ".ptr[" << Parent
         << " + 1];\n"
         << Pad << "  const int64_t q = systec_lb(" << LV << ".crd, "
         << LV << ".ptr[" << Parent << "], e, " << Coord << ");\n"
         << Pad << "  " << Dst << " = (q == e || " << LV << ".crd[q] != "
         << Coord << ") ? -1 : q;\n"
         << Pad << "}\n";
      break;
    case LevelKind::RunLength:
      OS << Pad << "int64_t " << Dst << ";\n"
         << Pad << "{\n"
         << Pad << "  const int64_t e = " << LV << ".ptr[" << Parent
         << " + 1];\n"
         << Pad << "  const int64_t q = systec_ub(" << LV << ".run_end, "
         << LV << ".ptr[" << Parent << "], e, " << Coord << ");\n"
         << Pad << "  " << Dst << " = (q == e) ? -1 : q;\n"
         << Pad << "}\n";
      break;
    case LevelKind::Banded:
      OS << Pad << "const int64_t " << Dst << " = (" << Coord << " < "
         << LV << ".lo[" << Parent << "] || " << Coord << " >= " << LV
         << ".hi[" << Parent << "]) ? -1 : " << LV << ".off[" << Parent
         << "] + (" << Coord << " - " << LV << ".lo[" << Parent
         << "]);\n";
      break;
    }
  }

  /// The interpreter's Step lambda, inlined into the driver loop body:
  /// advance the driver's position path, charge the driver read, match
  /// every co-walker (skipping to the next driver candidate on a
  /// missing intersection — `continue` targets the innermost enclosing
  /// driver loop, exactly like the lambda's early return), set the
  /// index slot, execute the body.
  void emitStep(const PlanLoop &L, const std::string &Coord,
                const std::string &Child, std::ostringstream &OS,
                unsigned Indent) {
    std::string Pad(2 * Indent, ' ');
    const PlanLoop::WalkerRef &W = L.Walkers[0];
    const AccessState &A = Ctx.Accesses[W.AccessId];
    OS << Pad << pvar(W.AccessId, W.Level + 1) << " = " << Child
       << ";\n";
    if (W.Bottom && A.SparseFormat)
      OS << Pad << "++n_sparse_reads;\n";
    for (size_t K = 1; K < L.Walkers.size(); ++K) {
      const PlanLoop::WalkerRef &O = L.Walkers[K];
      const AccessState &OA = Ctx.Accesses[O.AccessId];
      const std::string OPar = pvar(O.AccessId, O.Level);
      if (OA.T == A.T && O.Level == W.Level) {
        // Statically same fiber: the dynamic parent-equality check
        // reuses the driver's child position (identical to a locate,
        // minus the search).
        std::string Dst = "oc" + num(newScope());
        OS << Pad << "int64_t " << Dst << ";\n";
        OS << Pad << "if (" << OPar << " == "
           << pvar(W.AccessId, W.Level) << ") {\n";
        OS << Pad << "  " << Dst << " = " << Child << ";\n";
        OS << Pad << "} else {\n";
        emitLocate(OA.T, O.Level, OPar, Coord, Dst + "_f", OS,
                   Pad + "  ");
        OS << Pad << "  " << Dst << " = " << Dst << "_f;\n";
        OS << Pad << "}\n";
        OS << Pad << "if (" << Dst << " < 0) continue;\n";
        OS << Pad << pvar(O.AccessId, O.Level + 1) << " = " << Dst
           << ";\n";
      } else {
        std::string Dst = "oc" + num(newScope());
        emitLocate(OA.T, O.Level, OPar, Coord, Dst, OS, Pad);
        if (OA.T->level(O.Level).Kind != LevelKind::Dense)
          OS << Pad << "if (" << Dst << " < 0) continue;\n";
        OS << Pad << pvar(O.AccessId, O.Level + 1) << " = " << Dst
           << ";\n";
      }
      if (O.Bottom && OA.SparseFormat)
        OS << Pad << "++n_sparse_reads;\n";
    }
    OS << Pad << ivar(L.Slot) << " = " << Coord << ";\n";
    emitNode(L.Body.get(), OS, Indent);
  }

  void emitLoop(const PlanLoop &L, std::ostringstream &OS,
                unsigned Indent) {
    std::string Pad(2 * Indent, ' ');
    unsigned N = newScope();
    const std::string Lo = "lo" + num(N), Hi = "hi" + num(N);
    OS << Pad << "{ // loop slot " << L.Slot << "\n";
    std::string P1 = Pad + "  ";
    OS << P1 << "int64_t " << Lo << " = 0, " << Hi << " = "
       << snum(L.Extent - 1) << ";\n";
    for (const auto &[S, D] : L.LoTerms)
      OS << P1 << "if (" << ivar(S) << " + (" << snum(D) << ") > " << Lo
         << ") " << Lo << " = " << ivar(S) << " + (" << snum(D)
         << ");\n";
    for (const auto &[S, D] : L.HiTerms)
      OS << P1 << "if (" << ivar(S) << " + (" << snum(D) << ") < " << Hi
         << ") " << Hi << " = " << ivar(S) << " + (" << snum(D)
         << ");\n";
    OS << P1 << "if (" << Lo << " <= " << Hi << ") {\n";
    unsigned BodyIndent = Indent + 2;
    std::string P2 = Pad + "    ";

    if (L.Walkers.empty()) {
      const std::string V = "v" + num(N);
      OS << P2 << "for (int64_t " << V << " = " << Lo << "; " << V
         << " <= " << Hi << "; ++" << V << ") {\n";
      OS << P2 << "  " << ivar(L.Slot) << " = " << V << ";\n";
      emitNode(L.Body.get(), OS, BodyIndent + 1);
      OS << P2 << "}\n";
    } else {
      const PlanLoop::WalkerRef &W = L.Walkers[0];
      const AccessState &A = Ctx.Accesses[W.AccessId];
      const std::string Par = "par" + num(N);
      const std::string LV = lev(A.T, W.Level);
      OS << P2 << "const int64_t " << Par << " = "
         << pvar(W.AccessId, W.Level) << ";\n";
      switch (A.T->level(W.Level).Kind) {
      case LevelKind::Dense: {
        const std::string V = "v" + num(N);
        OS << P2 << "for (int64_t " << V << " = " << Lo << "; " << V
           << " <= " << Hi << "; ++" << V << ") {\n";
        emitStep(L, V, Par + " * " + LV + ".dim + " + V, OS,
                 BodyIndent + 1);
        OS << P2 << "}\n";
        break;
      }
      case LevelKind::Sparse: {
        const std::string B = "b" + num(N), E = "e" + num(N);
        const std::string Q = "q" + num(N), C = "c" + num(N);
        OS << P2 << "int64_t " << B << " = " << LV << ".ptr[" << Par
           << "];\n";
        OS << P2 << "const int64_t " << E << " = " << LV << ".ptr["
           << Par << " + 1];\n";
        OS << P2 << "if (" << Lo << " > 0) " << B << " = systec_lb("
           << LV << ".crd, " << B << ", " << E << ", " << Lo << ");\n";
        OS << P2 << "for (int64_t " << Q << " = " << B << "; " << Q
           << " < " << E << "; ++" << Q << ") {\n";
        OS << P2 << "  const int64_t " << C << " = " << LV << ".crd["
           << Q << "];\n";
        OS << P2 << "  if (" << C << " > " << Hi << ") break;\n";
        emitStep(L, C, Q, OS, BodyIndent + 1);
        OS << P2 << "}\n";
        break;
      }
      case LevelKind::RunLength: {
        const std::string St = "start" + num(N), KP = "k" + num(N);
        const std::string En = "end" + num(N), V = "v" + num(N);
        OS << P2 << "int64_t " << St << " = 0;\n";
        OS << P2 << "for (int64_t " << KP << " = " << LV << ".ptr["
           << Par << "]; " << KP << " < " << LV << ".ptr[" << Par
           << " + 1]; ++" << KP << ") {\n";
        OS << P2 << "  const int64_t " << En << " = " << LV
           << ".run_end[" << KP << "];\n";
        OS << P2 << "  for (int64_t " << V << " = (" << St << " > "
           << Lo << " ? " << St << " : " << Lo << "); " << V << " < "
           << En << "; ++" << V << ") {\n";
        OS << P2 << "    if (" << V << " > " << Hi << ") goto done"
           << N << ";\n";
        emitStep(L, V, KP, OS, BodyIndent + 2);
        OS << P2 << "  }\n";
        OS << P2 << "  " << St << " = " << En << ";\n";
        OS << P2 << "  if (" << St << " > " << Hi << ") goto done" << N
           << ";\n";
        OS << P2 << "}\n";
        OS << P2 << "done" << N << ":;\n";
        break;
      }
      case LevelKind::Banded: {
        const std::string B = "b" + num(N), E = "e" + num(N);
        const std::string V = "v" + num(N);
        OS << P2 << "const int64_t " << B << " = (" << Lo << " > " << LV
           << ".lo[" << Par << "]) ? " << Lo << " : " << LV << ".lo["
           << Par << "];\n";
        OS << P2 << "const int64_t " << E << " = (" << Hi << " < " << LV
           << ".hi[" << Par << "] - 1) ? " << Hi << " : " << LV
           << ".hi[" << Par << "] - 1;\n";
        OS << P2 << "for (int64_t " << V << " = " << B << "; " << V
           << " <= " << E << "; ++" << V << ") {\n";
        emitStep(L, V,
                 LV + ".off[" + Par + "] + (" + V + " - " + LV +
                     ".lo[" + Par + "])",
                 OS, BodyIndent + 1);
        OS << P2 << "}\n";
        break;
      }
      }
    }
    OS << P1 << "}\n";
    OS << Pad << "}\n";
  }

  void emitAssign(const PlanAssign &A, std::ostringstream &OS,
                  unsigned Indent) {
    std::string Pad(2 * Indent, ' ');
    std::string V = emitProgram(A.Rhs, OS, Indent);
    // Multiplicity, mirroring PlanAssign::exec: the plan compiler
    // already folded the Mult>1 additive-reduce case into the Rhs
    // program; what remains at runtime is the uncounted scale of
    // non-reducing assignments and the repeat loop of rare non-add,
    // non-idempotent reductions.
    unsigned Times = 1;
    if (A.Mult > 1) {
      if (A.Reduce && opInfo(*A.Reduce).Idempotent) {
        // Duplicate updates collapse under idempotent reductions.
      } else if (!A.Reduce || *A.Reduce == OpKind::Add) {
        std::string Tmp = newTmp();
        OS << Pad << "const double " << Tmp << " = " << V << " * "
           << nativeDouble(static_cast<double>(A.Mult)) << ";\n";
        V = Tmp;
      } else {
        Times = A.Mult;
      }
    }
    std::string P1 = Pad;
    if (Times > 1) {
      OS << Pad << "for (unsigned rep = 0; rep < " << num(Times)
         << "; ++rep) {\n";
      P1 = Pad + "  ";
    }
    if (A.ScalarTarget) {
      const std::string Dst = svar(A.ScalarSlot);
      OS << P1 << Dst << " = "
         << (A.Reduce ? foldOp(*A.Reduce, Dst, V) : V) << ";\n";
      OS << P1 << "++n_reductions;\n";
    } else {
      unsigned N = newScope();
      const std::string Pos = "pos" + num(N);
      const std::string Dst = "outs[" + num(A.OutId) + "][" + Pos + "]";
      OS << P1 << "const int64_t " << Pos << " = "
         << slotStrideSum(A.SlotStride) << ";\n";
      OS << P1 << Dst << " = "
         << (A.Reduce ? foldOp(*A.Reduce, Dst, V) : V) << ";\n";
      OS << P1 << "++n_reductions;\n";
      OS << P1 << "++n_output_writes;\n";
    }
    if (Times > 1)
      OS << Pad << "}\n";
  }

  void emitNode(const PlanNode *N, std::ostringstream &OS,
                unsigned Indent) {
    if (!Err.ok() || !N)
      return;
    std::string Pad(2 * Indent, ' ');
    if (auto *Seq = dynamic_cast<const PlanSeq *>(N)) {
      for (const detail::PlanPtr &C : Seq->Children)
        emitNode(C.get(), OS, Indent);
      return;
    }
    if (auto *If = dynamic_cast<const PlanIf *>(N)) {
      std::vector<std::string> Disj;
      for (const std::vector<CAtom> &D : If->Cond.Disjuncts) {
        std::vector<std::string> Atoms;
        for (const CAtom &A : D)
          Atoms.push_back(cmpExpr(A));
        Disj.push_back(Atoms.empty() ? std::string("true")
                                     : "(" + join(Atoms, " && ") + ")");
      }
      OS << Pad << "if ("
         << (Disj.empty() ? std::string("false") : join(Disj, " || "))
         << ") {\n";
      emitNode(If->Body.get(), OS, Indent + 1);
      OS << Pad << "}\n";
      return;
    }
    if (auto *Def = dynamic_cast<const PlanDef *>(N)) {
      std::string V = emitProgram(Def->Init, OS, Indent);
      OS << Pad << svar(Def->Slot) << " = " << V << ";\n";
      return;
    }
    if (auto *Assign = dynamic_cast<const PlanAssign *>(N)) {
      emitAssign(*Assign, OS, Indent);
      return;
    }
    if (auto *Loop = dynamic_cast<const PlanLoop *>(N)) {
      emitLoop(*Loop, OS, Indent);
      return;
    }
    if (dynamic_cast<const PlanReplicate *>(N)) {
      fail("replication node in the body plan (epilogues stay "
           "interpreted)");
      return;
    }
    fail("unrecognized plan node");
  }

  std::string assemble(const std::string &Body) {
    std::ostringstream OS;
    OS << "// Native kernel TU for '" << KernelName
       << "', emitted by systec (core/Codegen.cpp).\n";
    OS << "// Self-contained: struct layouts mirror jit/NativeAbi.h; "
          "do not edit.\n";
    OS << "#include <stdint.h>\n#include <math.h>\n\n";
    OS << "struct systec_nlevel {\n"
          "  int32_t kind;\n"
          "  int64_t dim;\n"
          "  const int64_t *ptr;\n"
          "  const int64_t *crd;\n"
          "  const int64_t *run_end;\n"
          "  const int64_t *lo;\n"
          "  const int64_t *hi;\n"
          "  const int64_t *off;\n"
          "};\n"
          "struct systec_ntensor {\n"
          "  int64_t order;\n"
          "  const systec_nlevel *levels;\n"
          "  const double *vals;\n"
          "  double fill;\n"
          "};\n"
          "struct systec_ncounters {\n"
          "  int64_t sparse_reads;\n"
          "  int64_t reductions;\n"
          "  int64_t scalar_ops;\n"
          "  int64_t output_writes;\n"
          "};\n\n";
    OS << "static inline int64_t systec_lb(const int64_t *a, int64_t lo,"
          " int64_t hi, int64_t v) {\n"
          "  while (lo < hi) {\n"
          "    const int64_t m = lo + (hi - lo) / 2;\n"
          "    if (a[m] < v) lo = m + 1; else hi = m;\n"
          "  }\n"
          "  return lo;\n"
          "}\n"
          "static inline int64_t systec_ub(const int64_t *a, int64_t lo,"
          " int64_t hi, int64_t v) {\n"
          "  while (lo < hi) {\n"
          "    const int64_t m = lo + (hi - lo) / 2;\n"
          "    if (a[m] <= v) lo = m + 1; else hi = m;\n"
          "  }\n"
          "  return lo;\n"
          "}\n"
          "// Bit-exact std::min / std::max (tie keeps the first "
          "operand, NaN falls through to it).\n"
          "static inline double systec_min(double a, double b) { return "
          "(b < a) ? b : a; }\n"
          "static inline double systec_max(double a, double b) { return "
          "(a < b) ? b : a; }\n\n";
    for (const std::string &L : LutDefs)
      OS << L << "\n";
    if (!LutDefs.empty())
      OS << "\n";
    OS << "extern \"C\" int64_t systec_native_run(\n"
          "    const systec_ntensor *T, double *const *outs,\n"
          "    systec_ncounters *ctrs) {\n";
    OS << "  (void)T;\n  (void)outs;\n";
    // Flat persistent slots, exactly like the interpreter's ExecCtx:
    // every index, scalar, and fibertree-position variable lives for
    // the whole body; loops assign rather than declare.
    for (size_t I = 0; I < Ctx.IndexVal.size(); ++I)
      OS << "  int64_t " << ivar(static_cast<unsigned>(I)) << " = 0;\n";
    for (size_t S = 0; S < Ctx.ScalarVal.size(); ++S)
      OS << "  double " << svar(static_cast<unsigned>(S)) << " = 0;\n";
    for (size_t A = 0; A < Ctx.Accesses.size(); ++A) {
      const AccessState &St = Ctx.Accesses[A];
      if (!St.T)
        continue;
      for (unsigned L = 0; L <= St.T->order(); ++L)
        OS << "  int64_t " << pvar(static_cast<unsigned>(A), L)
           << " = 0;\n";
    }
    OS << "  int64_t n_sparse_reads = 0, n_reductions = 0;\n";
    OS << "  int64_t n_scalar_ops = 0, n_output_writes = 0;\n\n";
    OS << Body;
    OS << "\n  ctrs->sparse_reads = n_sparse_reads;\n"
          "  ctrs->reductions = n_reductions;\n"
          "  ctrs->scalar_ops = n_scalar_ops;\n"
          "  ctrs->output_writes = n_output_writes;\n"
          "  return 0;\n"
          "}\n";
    return OS.str();
  }
};

} // namespace

Expected<NativeEmitResult> emitNativeTU(const detail::PlanNode &Body,
                                        const detail::ExecCtx &Ctx,
                                        const std::string &KernelName) {
  return NativeTUEmitter(Body, Ctx, KernelName).emit();
}

} // namespace systec
