//===- core/Codegen.cpp ---------------------------------------*- C++ -*-===//

#include "core/Codegen.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

namespace systec {

namespace {

/// Emits one kernel as C++ source. The structure mirrors the plan
/// compiler in runtime/Executor.cpp: loops are driven by the first
/// concordant sparse access, single-conjunction conditions peel into
/// loop bounds, everything else evaluates as residual predicates or
/// random-access reads.
class CppEmitter {
public:
  CppEmitter(const Kernel &K, bool InlinePreparation)
      : K(K), InlinePreparation(InlinePreparation) {}

  std::string emit() {
    collectExtents();
    std::ostringstream Body;
    emitStmt(K.Body, Body, 1);
    if (K.Epilogue) {
      Body << "\n  // epilogue: replicate the canonical triangle\n";
      emitStmt(K.Epilogue, Body, 1);
    }
    return assemble(Body.str());
  }

private:
  const Kernel &K;
  bool InlinePreparation = true;
  std::map<std::string, std::string> ExtentExpr; // index -> dim expr
  std::set<std::string> LevelRefs;               // "T_lN" declarations
  std::vector<std::pair<std::vector<CmpAtom>, std::vector<double>>> Luts;
  std::set<std::string> BoundVars;
  // Per distinct access: how many levels are driven on the current
  // path, and the position variable of the last driven level.
  std::map<std::string, unsigned> Driven;
  std::map<std::string, std::string> PosVar;
  // Lexical scopes of declared scalar temporaries (guarded definitions
  // are predeclared in the enclosing scope and assigned in-branch).
  std::vector<std::set<std::string>> Scopes{{}};

  bool scalarDeclared(const std::string &Name) const {
    for (const std::set<std::string> &S : Scopes)
      if (S.count(Name))
        return true;
    return false;
  }

  void collectDefNames(const StmtPtr &S, std::vector<std::string> &Out) {
    if (S->kind() == StmtKind::DefScalar) {
      Out.push_back(S->scalarName());
    } else if (S->kind() == StmtKind::Block) {
      for (const StmtPtr &C : S->stmts())
        collectDefNames(C, Out);
    } else if (S->kind() == StmtKind::If) {
      collectDefNames(S->body(), Out);
    }
  }

  const TensorDecl &declOf(const std::string &Name) const {
    auto It = K.Decls.find(Name);
    if (It == K.Decls.end())
      fatalError("codegen: unknown tensor " + Name);
    return It->second;
  }

  bool isAlias(const std::string &Name) const {
    for (const TransposeRequest &T : K.Transposes)
      if (T.Alias == Name)
        return true;
    for (const SplitRequest &S : K.Splits)
      if (S.Alias == Name)
        return true;
    return false;
  }

  void collectExtents() {
    auto FromStmt = [this](const StmtPtr &Root) {
      Stmt::walk(Root, [this](const StmtPtr &S) {
        std::vector<ExprPtr> Accesses;
        if (S->kind() == StmtKind::Assign) {
          Expr::collectAccesses(S->rhs(), Accesses);
          if (S->lhs()->kind() == ExprKind::Access)
            Accesses.push_back(S->lhs());
        } else if (S->kind() == StmtKind::DefScalar) {
          Expr::collectAccesses(S->rhs(), Accesses);
        }
        for (const ExprPtr &A : Accesses)
          for (unsigned M = 0; M < A->indices().size(); ++M)
            ExtentExpr.insert({A->indices()[M],
                               A->tensorName() + ".dim(" +
                                   std::to_string(M) + ")"});
      });
    };
    FromStmt(K.Body);
    if (K.Epilogue)
      FromStmt(K.Epilogue);
  }

  std::string cmpExpr(const CmpAtom &A) {
    return A.Lhs + " " + cmpKindName(A.Kind) + " " + A.Rhs;
  }

  std::string condExpr(const Cond &C) {
    std::vector<std::string> Disj;
    for (const Conj &D : C.disjuncts()) {
      std::vector<std::string> Atoms;
      for (const CmpAtom &A : D.Atoms)
        Atoms.push_back(cmpExpr(A));
      Disj.push_back(Atoms.empty() ? "true" : join(Atoms, " && "));
    }
    if (Disj.size() == 1)
      return Disj[0];
    for (std::string &S : Disj)
      S = "(" + S + ")";
    return join(Disj, " || ");
  }

  /// Column-major dense position: i0 + d0*(i1 + d1*(i2 ...)).
  std::string densePos(const std::string &Tensor,
                       const std::vector<std::string> &Indices) {
    std::string Out;
    for (unsigned M = static_cast<unsigned>(Indices.size()); M-- > 0;) {
      if (Out.empty())
        Out = Indices[M];
      else
        Out = Indices[M] + " + " + Tensor + ".dim(" + std::to_string(M) +
              ") * (" + Out + ")";
    }
    return Out.empty() ? "0" : Out;
  }

  std::string valueExpr(const ExprPtr &E) {
    switch (E->kind()) {
    case ExprKind::Literal: {
      double V = E->literalValue();
      if (std::isinf(V))
        return V > 0 ? "std::numeric_limits<double>::infinity()"
                     : "-std::numeric_limits<double>::infinity()";
      return formatDouble(V);
    }
    case ExprKind::Scalar:
      return E->scalarName();
    case ExprKind::Access: {
      const std::string Key = E->str();
      const TensorDecl &D = declOf(E->tensorName());
      auto It = Driven.find(Key);
      if (It != Driven.end() && It->second == D.Order && D.Order > 0)
        return E->tensorName() + ".val(" + PosVar[Key] + ")";
      if (D.Format.isAllDense())
        return E->tensorName() + ".vals()[" +
               densePos(E->tensorName(), E->indices()) + "]";
      // Random access fallback (non-concordant sparse read).
      return E->tensorName() + ".at({" + join(E->indices(), ", ") + "})";
    }
    case ExprKind::Call: {
      const OpInfo &Info = opInfo(E->op());
      std::vector<std::string> Args;
      for (const ExprPtr &A : E->args())
        Args.push_back(valueExpr(A));
      if (E->op() == OpKind::Add || E->op() == OpKind::Mul ||
          E->op() == OpKind::Sub || E->op() == OpKind::Div) {
        for (std::string &A : Args)
          A = "(" + A + ")";
        return join(Args, std::string(" ") + Info.Name + " ");
      }
      // min/max fold left.
      std::string Out = Args[0];
      for (size_t I = 1; I < Args.size(); ++I)
        Out = std::string("std::") + Info.Ident + "(" + Out + ", " +
              Args[I] + ")";
      return Out;
    }
    case ExprKind::Lut: {
      unsigned Id = static_cast<unsigned>(Luts.size());
      Luts.push_back({E->lutBits(), E->lutTable()});
      std::string Idx;
      for (size_t B = 0; B < E->lutBits().size(); ++B) {
        if (B)
          Idx += " + ";
        Idx += "((" + cmpExpr(E->lutBits()[B]) + ") ? " +
               std::to_string(1u << B) + " : 0)";
      }
      return "lut" + std::to_string(Id) + "[" + Idx + "]";
    }
    }
    unreachable("unknown expression kind");
  }

  std::string reduceStmt(const ExprPtr &Lhs, std::optional<OpKind> Op,
                         const std::string &Val, unsigned Mult) {
    std::string Target;
    if (Lhs->kind() == ExprKind::Scalar) {
      Target = Lhs->scalarName();
    } else {
      Target = Lhs->tensorName() + ".vals()[" +
               densePos(Lhs->tensorName(), Lhs->indices()) + "]";
    }
    std::string V = Val;
    if (Mult > 1)
      V = std::to_string(Mult) + " * (" + V + ")";
    if (!Op)
      return Target + " = " + V + ";";
    switch (*Op) {
    case OpKind::Add:
      return Target + " += " + V + ";";
    case OpKind::Mul:
      return Target + " *= " + V + ";";
    default:
      return Target + " = " + std::string("std::") + opInfo(*Op).Ident +
             "(" + Target + ", " + V + ");";
    }
  }

  void emitStmt(const StmtPtr &S, std::ostringstream &OS,
                unsigned Indent) {
    std::string Pad(2 * Indent, ' ');
    switch (S->kind()) {
    case StmtKind::Block:
      for (const StmtPtr &C : S->stmts())
        emitStmt(C, OS, Indent);
      return;
    case StmtKind::If: {
      // Temporaries defined under the condition must survive it in C++
      // scoping: predeclare them here, assign inside the branch.
      std::vector<std::string> Defs;
      collectDefNames(S->body(), Defs);
      for (const std::string &Name : Defs)
        if (!scalarDeclared(Name)) {
          OS << Pad << "double " << Name << " = 0;\n";
          Scopes.back().insert(Name);
        }
      OS << Pad << "if (" << condExpr(S->condition()) << ") {\n";
      Scopes.push_back({});
      emitStmt(S->body(), OS, Indent + 1);
      Scopes.pop_back();
      OS << Pad << "}\n";
      return;
    }
    case StmtKind::DefScalar:
      // Mutable: workspace scalars accumulate after their definition.
      if (scalarDeclared(S->scalarName())) {
        OS << Pad << S->scalarName() << " = " << valueExpr(S->rhs())
           << ";\n";
      } else {
        OS << Pad << "double " << S->scalarName() << " = "
           << valueExpr(S->rhs()) << ";\n";
        Scopes.back().insert(S->scalarName());
      }
      return;
    case StmtKind::Assign:
      OS << Pad
         << reduceStmt(S->lhs(), S->reduceOp(), valueExpr(S->rhs()),
                       S->multiplicity())
         << "\n";
      return;
    case StmtKind::Loop:
      emitLoop(S, OS, Indent);
      return;
    case StmtKind::Replicate:
      OS << Pad << "replicateSymmetric(" << S->tensorName()
         << ", Partition::parse(" << S->outputSymmetry().order() << ", \""
         << S->outputSymmetry().str() << "\"));\n";
      return;
    }
    unreachable("unknown statement kind");
  }

  /// Marker comment showing the ParallelAnalysis decision in golden
  /// reports; the AOT output itself stays sequential C++ (the engine's
  /// thread pool is the parallel path).
  std::string parallelMarker(const StmtPtr &S) {
    const ParallelAnnotation &P = S->parallelInfo();
    if (!P.IsParallel)
      return "";
    if (P.TriangleDepth != 0)
      return "  // parallel (triangle-balanced, depth " +
             std::to_string(P.TriangleDepth) + ")";
    return "  // parallel";
  }

  void emitLoop(const StmtPtr &S, std::ostringstream &OS,
                unsigned Indent) {
    const std::string &Var = S->loopIndex();
    std::string Pad(2 * Indent, ' ');
    const std::string ParMark = parallelMarker(S);
    BoundVars.insert(Var);

    // Peel single-conjunction bounds exactly like the executor.
    StmtPtr Body = S->body();
    std::vector<std::string> LoTerms, HiTerms;
    while (true) {
      if (Body->kind() == StmtKind::Block && Body->stmts().size() == 1) {
        Body = Body->stmts()[0];
        continue;
      }
      if (Body->kind() != StmtKind::If ||
          Body->condition().disjuncts().size() != 1)
        break;
      std::vector<CmpAtom> Residual;
      for (CmpAtom A : Body->condition().disjuncts()[0].Atoms) {
        if (A.Rhs == Var && A.Lhs != Var) {
          std::swap(A.Lhs, A.Rhs);
          A.Kind = swapCmp(A.Kind);
        }
        if (A.Lhs == Var && A.Rhs != Var && BoundVars.count(A.Rhs)) {
          switch (A.Kind) {
          case CmpKind::LE:
            HiTerms.push_back(A.Rhs);
            continue;
          case CmpKind::LT:
            HiTerms.push_back(A.Rhs + " - 1");
            continue;
          case CmpKind::GE:
            LoTerms.push_back(A.Rhs);
            continue;
          case CmpKind::GT:
            LoTerms.push_back(A.Rhs + " + 1");
            continue;
          case CmpKind::EQ:
            LoTerms.push_back(A.Rhs);
            HiTerms.push_back(A.Rhs);
            continue;
          case CmpKind::NE:
            break;
          }
        }
        Residual.push_back(A);
      }
      StmtPtr Inner = Body->body();
      Body = Residual.empty()
                 ? Inner
                 : Stmt::ifThen(Cond::conj(std::move(Residual)), Inner);
      if (!Residual.empty())
        break;
    }

    // Pick a driving access for a sparse tensor, if any (dense levels
    // of CSF tensors also advance the position path).
    std::string WalkKey;
    unsigned WalkLevel = 0;
    LevelKind WalkKind = LevelKind::Dense;
    std::vector<ExprPtr> Accesses;
    collectSubtreeAccesses(Body, Accesses);
    std::set<std::string> Seen;
    for (const ExprPtr &A : Accesses) {
      if (!Seen.insert(A->str()).second)
        continue;
      const TensorDecl &D = declOf(A->tensorName());
      if (D.Format.isAllDense())
        continue;
      unsigned Dr = Driven.count(A->str()) ? Driven[A->str()] : 0;
      if (Dr < D.Order && A->indices()[D.Order - 1 - Dr] == Var &&
          (D.Format.Levels[Dr] == LevelKind::Sparse ||
           D.Format.Levels[Dr] == LevelKind::Dense)) {
        WalkKey = A->str();
        WalkLevel = Dr;
        WalkKind = D.Format.Levels[Dr];
        break;
      }
    }

    std::string Lo = "(int64_t)0";
    for (const std::string &T : LoTerms)
      Lo = "std::max<int64_t>(" + Lo + ", " + T + ")";
    auto ExtIt = ExtentExpr.find(Var);
    std::string Hi = ExtIt == ExtentExpr.end()
                         ? std::string("0")
                         : ExtIt->second + " - 1";
    for (const std::string &T : HiTerms)
      Hi = "std::min<int64_t>(" + Hi + ", " + T + ")";

    if (WalkKey.empty()) {
      OS << Pad << "for (int64_t " << Var << " = " << Lo << "; " << Var
         << " <= " << Hi << "; ++" << Var << ") {" << ParMark << "\n";
      Scopes.push_back({});
      emitStmt(Body, OS, Indent + 1);
      Scopes.pop_back();
      OS << Pad << "}\n";
    } else if (WalkKind == LevelKind::Dense) {
      // Dense level of a sparse tensor: positions are computed, the
      // loop itself is a plain range.
      size_t Bracket = WalkKey.find('[');
      std::string Tensor = WalkKey.substr(0, Bracket);
      const TensorDecl &D = declOf(Tensor);
      unsigned Mode = D.Order - 1 - WalkLevel;
      std::string Parent =
          WalkLevel == 0 ? std::string("0") : PosVar[WalkKey];
      std::string P = "p_" + Tensor + std::to_string(WalkLevel);
      OS << Pad << "for (int64_t " << Var << " = " << Lo << "; " << Var
         << " <= " << Hi << "; ++" << Var << ") {" << ParMark << "\n";
      OS << Pad << "  const int64_t " << P << " = " << Parent << " * "
         << Tensor << ".dim(" << Mode << ") + " << Var << ";\n";
      unsigned OldDriven = Driven.count(WalkKey) ? Driven[WalkKey] : 0;
      std::string OldPos = PosVar.count(WalkKey) ? PosVar[WalkKey] : "";
      Driven[WalkKey] = WalkLevel + 1;
      PosVar[WalkKey] = P;
      Scopes.push_back({});
      emitStmt(Body, OS, Indent + 1);
      Scopes.pop_back();
      Driven[WalkKey] = OldDriven;
      PosVar[WalkKey] = OldPos;
      OS << Pad << "}\n";
    } else {
      // Sparse walker over the access's next level.
      size_t Bracket = WalkKey.find('[');
      std::string Tensor = WalkKey.substr(0, Bracket);
      std::string Lev = Tensor + "_l" + std::to_string(WalkLevel);
      LevelRefs.insert(Tensor + ":" + std::to_string(WalkLevel));
      std::string Parent =
          WalkLevel == 0 ? std::string("0") : PosVar[WalkKey];
      std::string Q = "q_" + Tensor + std::to_string(WalkLevel);
      OS << Pad << "for (int64_t " << Q << " = " << Lev << ".Ptr["
         << Parent << "]; " << Q << " < " << Lev << ".Ptr[" << Parent
         << " + 1]; ++" << Q << ") {" << ParMark << "\n";
      OS << Pad << "  const int64_t " << Var << " = " << Lev << ".Crd["
         << Q << "];\n";
      OS << Pad << "  if (" << Var << " > " << Hi
         << ") break;  // lifted upper bound\n";
      if (!LoTerms.empty())
        OS << Pad << "  if (" << Var << " < " << Lo
           << ") continue;  // lifted lower bound (executor gallops)\n";
      unsigned OldDriven = Driven.count(WalkKey) ? Driven[WalkKey] : 0;
      std::string OldPos = PosVar.count(WalkKey) ? PosVar[WalkKey] : "";
      Driven[WalkKey] = WalkLevel + 1;
      PosVar[WalkKey] = Q;
      Scopes.push_back({});
      emitStmt(Body, OS, Indent + 1);
      Scopes.pop_back();
      Driven[WalkKey] = OldDriven;
      PosVar[WalkKey] = OldPos;
      OS << Pad << "}\n";
    }
    BoundVars.erase(Var);
  }

  void collectSubtreeAccesses(const StmtPtr &S,
                              std::vector<ExprPtr> &Out) {
    Stmt::walk(S, [&Out](const StmtPtr &Node) {
      if (Node->kind() == StmtKind::Assign ||
          Node->kind() == StmtKind::DefScalar)
        Expr::collectAccesses(Node->rhs(), Out);
    });
  }

  std::string formatCtor(const TensorFormat &F) {
    if (F.isAllDense())
      return "TensorFormat::dense(" + std::to_string(F.order()) + ")";
    if (F == TensorFormat::csf(F.order()))
      return "TensorFormat::csf(" + std::to_string(F.order()) + ")";
    return "TensorFormat::csf(" + std::to_string(F.order()) +
           ") /* adjust for custom levels */";
  }

  std::string assemble(const std::string &Body) {
    std::ostringstream OS;
    OS << "// Generated by SySTeC-cpp from kernel '" << K.Name << "'.\n";
    OS << "#include \"tensor/Tensor.h\"\n#include <algorithm>\n#include <cmath>\n#include <limits>\n\n";
    OS << "using namespace systec;\n\n";
    // Signature: sources and the output; aliases are locals when the
    // function prepares them itself, parameters otherwise.
    std::vector<std::string> Params;
    for (const auto &[Name, D] : K.Decls) {
      if (isAlias(Name)) {
        if (!InlinePreparation)
          Params.push_back("const Tensor &" + Name);
        continue;
      }
      if (D.IsOutput || Name == K.OutputName)
        Params.push_back("Tensor &" + Name);
      else
        Params.push_back("const Tensor &" + Name);
    }
    OS << "void " << K.Name << "(" << join(Params, ", ") << ") {\n";
    if (InlinePreparation) {
      // Alias materialization (untimed data preparation in the paper's
      // methodology; hoist it by emitting with InlinePreparation off).
      std::set<std::string> SplitDone;
      for (const SplitRequest &S : K.Splits) {
        if (SplitDone.insert(S.Source).second) {
          const TensorDecl &D = declOf(S.Source);
          OS << "  auto " << S.Source << "_split = " << S.Source
             << ".splitDiagonal(Partition::parse(" << D.Order << ", \""
             << D.Symmetry.str() << "\"));\n";
        }
        OS << "  const Tensor &" << S.Alias << " = " << S.Source
           << "_split." << (S.DiagonalPart ? "second" : "first")
           << ";\n";
      }
      for (const TransposeRequest &T : K.Transposes) {
        std::vector<std::string> Perm;
        for (unsigned M : T.ModePerm)
          Perm.push_back(std::to_string(M));
        OS << "  Tensor " << T.Alias << " = " << T.Source
           << ".transposed({" << join(Perm, ", ") << "}, "
           << formatCtor(declOf(T.Alias).Format) << ");\n";
      }
    }
    // Lookup tables.
    for (size_t I = 0; I < Luts.size(); ++I) {
      std::vector<std::string> Vals;
      for (double V : Luts[I].second)
        Vals.push_back(formatDouble(V));
      OS << "  static const double lut" << I << "[] = {"
         << join(Vals, ", ") << "};\n";
    }
    // Level references for walked tensors.
    for (const std::string &Ref : LevelRefs) {
      size_t Colon = Ref.find(':');
      std::string Tensor = Ref.substr(0, Colon);
      std::string Level = Ref.substr(Colon + 1);
      OS << "  const Level &" << Tensor << "_l" << Level << " = "
         << Tensor << ".level(" << Level << ");\n";
    }
    OS << "\n" << Body << "}\n";
    return OS.str();
  }
};

} // namespace

std::string emitCpp(const Kernel &K, bool InlinePreparation) {
  return CppEmitter(K, InlinePreparation).emit();
}

} // namespace systec
