//===- core/Normalize.cpp -------------------------------------*- C++ -*-===//

#include "core/Normalize.h"

#include "support/Error.h"

#include <algorithm>
#include <sstream>

namespace systec {

Normalizer::Normalizer(const Einsum &EIn,
                       std::map<std::string, int> IndexRankIn)
    : E(EIn), IndexRank(std::move(IndexRankIn)) {}

int Normalizer::rankOf(const std::string &Index) const {
  auto It = IndexRank.find(Index);
  return It == IndexRank.end() ? 1 << 20 : It->second;
}

ExprPtr Normalizer::normalizeAccess(const ExprPtr &Access) const {
  auto DeclIt = E.Decls.find(Access->tensorName());
  if (DeclIt == E.Decls.end() || !DeclIt->second.Symmetry.hasSymmetry())
    return Access;
  const Partition &Sym = DeclIt->second.Symmetry;
  std::vector<std::string> Indices = Access->indices();
  for (const std::vector<unsigned> &Part : Sym.parts()) {
    if (Part.size() < 2)
      continue;
    std::vector<std::string> Names;
    for (unsigned M : Part)
      Names.push_back(Indices[M]);
    std::sort(Names.begin(), Names.end(),
              [this](const std::string &A, const std::string &B) {
                if (rankOf(A) != rankOf(B))
                  return rankOf(A) < rankOf(B);
                return A < B;
              });
    for (size_t I = 0; I < Part.size(); ++I)
      Indices[Part[I]] = Names[I];
  }
  return Expr::access(Access->tensorName(), std::move(Indices));
}

ExprPtr Normalizer::normalizeExpr(const ExprPtr &Ex) const {
  switch (Ex->kind()) {
  case ExprKind::Literal:
  case ExprKind::Scalar:
  case ExprKind::Lut:
    return Ex;
  case ExprKind::Access:
    return normalizeAccess(Ex);
  case ExprKind::Call: {
    std::vector<ExprPtr> Args;
    Args.reserve(Ex->args().size());
    for (const ExprPtr &A : Ex->args())
      Args.push_back(normalizeExpr(A));
    if (opInfo(Ex->op()).Commutative) {
      std::stable_sort(Args.begin(), Args.end(),
                       [this](const ExprPtr &A, const ExprPtr &B) {
                         return sortKey(A) < sortKey(B);
                       });
    }
    return Expr::call(Ex->op(), std::move(Args));
  }
  }
  unreachable("unknown expression kind");
}

std::string Normalizer::sortKey(const ExprPtr &Ex) const {
  std::ostringstream OS;
  switch (Ex->kind()) {
  case ExprKind::Literal:
    OS << "0:" << Ex->literalValue();
    break;
  case ExprKind::Scalar:
    OS << "1:" << Ex->scalarName();
    break;
  case ExprKind::Access: {
    OS << "2:" << Ex->tensorName();
    for (const std::string &I : Ex->indices())
      OS << ":" << rankOf(I) << "." << I;
    break;
  }
  case ExprKind::Call: {
    OS << "3:" << opInfo(Ex->op()).Ident;
    for (const ExprPtr &A : Ex->args())
      OS << "(" << sortKey(A) << ")";
    break;
  }
  case ExprKind::Lut:
    OS << "4:" << Ex->str();
    break;
  }
  return OS.str();
}

std::string Normalizer::assignKey(const ExprPtr &Output,
                                  const ExprPtr &Rhs) const {
  return Output->str() + " <- " + Rhs->str();
}

} // namespace systec
