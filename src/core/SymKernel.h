//===- core/SymKernel.h - Structured symmetrized kernel -------*- C++ -*-===//
///
/// \file
/// The structured intermediate the optimization passes (paper Section
/// 4.2) operate on: a guarded list of *blocks*, one per equivalence
/// group (Definition 4.1), each holding the normalized triangular
/// assignments to perform when that group's equality pattern holds. The
/// final lowering assembles the loop nest(s), placing the canonical
/// chain conditions at their binding loops and emitting the replication
/// epilogue, workspaces, transposes and diagonal splits.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_CORE_SYMKERNEL_H
#define SYSTEC_CORE_SYMKERNEL_H

#include "core/Analysis.h"
#include "ir/Kernel.h"

#include <optional>
#include <string>
#include <vector>

namespace systec {

/// One triangular assignment inside a block.
struct FormStmt {
  ExprPtr Out;          ///< output access (normalized)
  ExprPtr Rhs;          ///< normalized right-hand side
  unsigned Mult = 1;    ///< duplicate count (invisible symmetry)
  ExprPtr Factor;       ///< optional runtime factor (lookup table)

  std::string key() const { return Out->str() + " <- " + Rhs->str(); }
};

/// One conditional block: the exact equality/inequality pattern over
/// the canonical chains, plus its assignments and hoisted temporaries.
struct SymBlock {
  /// Exact condition distinguishing this diagonal (DNF after
  /// consolidation).
  Cond Exact;
  /// The equivalence-group run pattern per chain (empty after blocks
  /// with different patterns are consolidated).
  std::vector<std::vector<unsigned>> Runs;
  /// Hoisted scalar temporaries (common tensor access elimination).
  std::vector<StmtPtr> Defs;
  /// Triangular assignments.
  std::vector<FormStmt> Forms;

  /// Whether no chain index equals another (the pure-triangle block).
  /// Stored at construction because consolidation erases Runs.
  bool OffDiag = false;

  bool isOffDiagonal() const { return OffDiag; }
};

/// The symmetrized kernel prior to lowering.
struct SymKernel {
  Einsum Source;
  SymmetryAnalysis Analysis;

  /// Canonical chain atoms p1 <= p2, p2 <= p3, ... across all chains.
  std::vector<CmpAtom> ChainAtoms;
  std::vector<SymBlock> Blocks;

  /// Output restriction state (visible output symmetry, paper 4.2.2).
  bool RestrictedOutput = false;

  /// Workspace insertion decisions (paper 4.2.8): block/form positions
  /// are resolved during lowering.
  bool UseWorkspaces = false;

  /// Diagonal splitting (paper 4.2.9): lower off-diagonal and diagonal
  /// blocks as separate loop nests over split tensors.
  bool SplitDiagonal = false;

  /// Concordization (paper 4.2.3): transpose inputs so accesses iterate
  /// in loop order.
  bool Concordize = false;

  /// Parallelism analysis (runtime extension): annotate loops the
  /// parallel executor may distribute across threads.
  bool Parallelize = false;

  std::string str() const;
};

} // namespace systec

#endif // SYSTEC_CORE_SYMKERNEL_H
