//===- core/Lower.cpp -----------------------------------------*- C++ -*-===//

#include "core/Lower.h"

#include "parallel/ParallelAnalysis.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>

namespace systec {

namespace {

/// One pending workspace accumulator (paper 4.2.8).
struct Workspace {
  unsigned Depth;   ///< loop depth at which to init/flush
  std::string Name;
  ExprPtr Out;      ///< original output access
  OpKind Reduce;
};

std::map<std::string, int> loopDepths(const std::vector<std::string> &Order) {
  std::map<std::string, int> Depth;
  for (size_t D = 0; D < Order.size(); ++D)
    Depth[Order[D]] = static_cast<int>(D);
  return Depth;
}

/// Applies a tensor rename to an expression (identity when absent).
ExprPtr renameTensorsIn(const ExprPtr &E,
                        const std::map<std::string, std::string> &Map) {
  if (Map.empty())
    return E;
  return Expr::renameTensors(E, [&Map](const std::string &N) {
    auto It = Map.find(N);
    return It == Map.end() ? N : It->second;
  });
}

/// Builds one loop nest over \p Blocks.
///
/// \p Strict emits the chain conditions as strict inequalities and
/// omits block conditions equal to the full strict chain (the
/// off-diagonal nest after splitting).
StmtPtr buildNest(const SymKernel &SK,
                  const std::vector<const SymBlock *> &Blocks, bool Strict,
                  const std::map<std::string, std::string> &TensorRename,
                  unsigned &WsCounter) {
  const std::vector<std::string> &Order = SK.Source.LoopOrder;
  std::map<std::string, int> Depth = loopDepths(Order);
  const unsigned NLoops = static_cast<unsigned>(Order.size());

  // Chain atoms with this nest's strictness, indexed by the depth at
  // which both sides are bound.
  std::map<unsigned, std::vector<CmpAtom>> ReadyAt;
  std::vector<CmpAtom> AllChain;
  for (const CmpAtom &A : SK.ChainAtoms) {
    CmpAtom Atom = A;
    if (Strict)
      Atom.Kind = CmpKind::LT;
    auto DL = Depth.find(Atom.Lhs), DR = Depth.find(Atom.Rhs);
    if (DL == Depth.end() || DR == Depth.end())
      fatalError("chain index missing from loop order");
    ReadyAt[static_cast<unsigned>(std::max(DL->second, DR->second))]
        .push_back(Atom);
    AllChain.push_back(Atom);
  }
  const Cond FullStrict =
      AllChain.empty() ? Cond::always() : Cond::conj(AllChain);

  // Innermost statements: per-block guarded temporaries + assignments,
  // with workspace redirection. Temporaries whose indices are bound
  // before the innermost loops hoist out of them (Listing 7 reads
  // A_nondiag once per stored element, not once per rank column).
  std::vector<Workspace> Pending;
  std::map<unsigned, std::vector<StmtPtr>> PreAt;
  std::vector<StmtPtr> Inner;
  for (const SymBlock *B : Blocks) {
    const bool BlockCondOmitted =
        B->Exact.isAlways() || (Strict && B->Exact == FullStrict);
    std::vector<StmtPtr> Stmts;
    for (const StmtPtr &D : B->Defs) {
      StmtPtr Def = Stmt::renameTensors(D, [&](const std::string &N) {
        auto It = TensorRename.find(N);
        return It == TensorRename.end() ? N : It->second;
      });
      // Depth at which the init's indices and the guarding condition's
      // variables are all bound.
      unsigned DefDepth = 0;
      std::vector<std::string> Used;
      Expr::collectIndices(Def->init(), Used);
      if (!BlockCondOmitted)
        for (const Conj &Dj : B->Exact.disjuncts())
          for (const CmpAtom &A : Dj.Atoms) {
            Used.push_back(A.Lhs);
            Used.push_back(A.Rhs);
          }
      for (const std::string &I : Used) {
        auto It = Depth.find(I);
        if (It != Depth.end())
          DefDepth = std::max(DefDepth,
                              static_cast<unsigned>(It->second) + 1);
      }
      if (DefDepth < NLoops) {
        PreAt[DefDepth].push_back(
            BlockCondOmitted ? Def : Stmt::ifThen(B->Exact, Def));
      } else {
        Stmts.push_back(Def);
      }
    }
    for (const FormStmt &F : B->Forms) {
      ExprPtr Rhs = renameTensorsIn(F.Rhs, TensorRename);
      if (F.Factor)
        Rhs = Expr::call(OpKind::Mul, {F.Factor, Rhs});
      // Workspace decision: accumulate in a register when some loop
      // deeper than every output index exists.
      unsigned D = 0;
      for (const std::string &I : F.Out->indices()) {
        auto It = Depth.find(I);
        if (It != Depth.end())
          D = std::max(D, static_cast<unsigned>(It->second) + 1);
      }
      ExprPtr Target = F.Out;
      if (SK.UseWorkspaces && D < NLoops) {
        std::string Ws = "w_" + std::to_string(WsCounter++);
        Pending.push_back(Workspace{D, Ws, F.Out, SK.Source.ReduceOp});
        Target = Expr::scalar(Ws);
      }
      Stmts.push_back(
          Stmt::assign(Target, SK.Source.ReduceOp, Rhs, F.Mult));
    }
    StmtPtr Body = Stmt::block(std::move(Stmts));
    Inner.push_back(BlockCondOmitted ? Body
                                     : Stmt::ifThen(B->Exact, Body));
  }

  // Assemble loops outside-in.
  std::function<StmtPtr(unsigned)> Build = [&](unsigned D) -> StmtPtr {
    if (D == NLoops)
      return Stmt::block(Inner);
    StmtPtr Content = Build(D + 1);
    auto It = ReadyAt.find(D);
    if (It != ReadyAt.end())
      Content = Stmt::ifThen(Cond::conj(It->second), Content);
    StmtPtr LoopStmt = Stmt::loop(Order[D], Content);
    // Wrap with workspace init/flush and hoisted temporaries scheduled
    // at this depth.
    std::vector<StmtPtr> Wrapped;
    for (const Workspace &W : Pending)
      if (W.Depth == D)
        Wrapped.push_back(Stmt::defScalar(
            W.Name, Expr::lit(opInfo(W.Reduce).Identity)));
    auto PreIt = PreAt.find(D);
    if (PreIt != PreAt.end())
      for (const StmtPtr &S : PreIt->second)
        Wrapped.push_back(S);
    Wrapped.push_back(LoopStmt);
    for (const Workspace &W : Pending)
      if (W.Depth == D)
        Wrapped.push_back(
            Stmt::assign(W.Out, W.Reduce, Expr::scalar(W.Name)));
    return Wrapped.size() == 1 ? LoopStmt : Stmt::block(std::move(Wrapped));
  };
  return Build(0);
}

} // namespace

void concordizeKernel(Kernel &K) {
  std::map<std::string, int> Depth = loopDepths(K.LoopOrder);
  std::map<std::string, ExprPtr> Replacement; // access key -> new access
  std::set<std::string> AliasMade;

  auto FixAccess = [&](const ExprPtr &A) -> ExprPtr {
    const std::vector<std::string> &Idx = A->indices();
    const unsigned N = static_cast<unsigned>(Idx.size());
    if (N < 2)
      return A;
    auto Known = Replacement.find(A->str());
    if (Known != Replacement.end())
      return Known->second;
    // Concordant when depth decreases from mode 0 to mode n-1 (the last
    // mode is the top level and must bind outermost).
    std::set<std::string> Distinct(Idx.begin(), Idx.end());
    if (Distinct.size() != N)
      return A; // repeated index; cannot fix by transposition
    bool Concordant = true;
    for (unsigned M = 0; M + 1 < N; ++M) {
      auto DA = Depth.find(Idx[M]), DB = Depth.find(Idx[M + 1]);
      if (DA == Depth.end() || DB == Depth.end())
        return A; // free index (epilogue etc.); leave alone
      if (DA->second < DB->second)
        Concordant = false;
    }
    if (Concordant)
      return A;
    // Modes sorted by loop depth descending become the new mode order.
    std::vector<unsigned> Perm(N);
    for (unsigned M = 0; M < N; ++M)
      Perm[M] = M;
    std::sort(Perm.begin(), Perm.end(), [&](unsigned X, unsigned Y) {
      return Depth[Idx[X]] > Depth[Idx[Y]];
    });
    std::string Alias = A->tensorName() + "_T";
    if (N > 2 || Perm != std::vector<unsigned>{1, 0}) {
      Alias = A->tensorName() + "_p";
      for (unsigned M : Perm)
        Alias += std::to_string(M);
    }
    std::vector<std::string> NewIdx(N);
    for (unsigned M = 0; M < N; ++M)
      NewIdx[M] = Idx[Perm[M]];
    ExprPtr NewAccess = Expr::access(Alias, NewIdx);
    Replacement[A->str()] = NewAccess;
    if (AliasMade.insert(Alias).second) {
      K.Transposes.push_back(TransposeRequest{Alias, A->tensorName(), Perm});
      auto SrcDecl = K.Decls.find(A->tensorName());
      if (SrcDecl != K.Decls.end()) {
        TensorDecl D = SrcDecl->second;
        D.Name = Alias;
        D.Symmetry = Partition::none(N);
        D.IsOutput = false;
        K.Decls[Alias] = D;
      }
    }
    return NewAccess;
  };

  std::function<ExprPtr(const ExprPtr &)> FixExpr =
      [&](const ExprPtr &E) -> ExprPtr {
    if (E->kind() == ExprKind::Access)
      return FixAccess(E);
    if (E->kind() == ExprKind::Call) {
      std::vector<ExprPtr> Args;
      for (const ExprPtr &A : E->args())
        Args.push_back(FixExpr(A));
      return Expr::call(E->op(), std::move(Args));
    }
    return E;
  };

  std::function<StmtPtr(const StmtPtr &)> FixStmt =
      [&](const StmtPtr &S) -> StmtPtr {
    switch (S->kind()) {
    case StmtKind::Block: {
      std::vector<StmtPtr> Stmts;
      for (const StmtPtr &C : S->stmts())
        Stmts.push_back(FixStmt(C));
      return Stmt::block(std::move(Stmts));
    }
    case StmtKind::Loop:
      return Stmt::loop(S->loopIndex(), FixStmt(S->body()));
    case StmtKind::If:
      return Stmt::ifThen(S->condition(), FixStmt(S->body()));
    case StmtKind::Assign:
      return Stmt::assign(S->lhs(), S->reduceOp(), FixExpr(S->rhs()),
                          S->multiplicity());
    case StmtKind::DefScalar:
      return Stmt::defScalar(S->scalarName(), FixExpr(S->rhs()));
    case StmtKind::Replicate:
      return S;
    }
    unreachable("unknown statement kind");
  };

  K.Body = FixStmt(K.Body);
}

Kernel lowerNaive(const Einsum &E, bool Concordize, bool Workspace,
                  bool Parallelize) {
  Kernel K;
  K.Name = E.Name + "_naive";
  K.Decls = E.Decls;
  K.LoopOrder = E.LoopOrder;
  K.ReduceOp = E.ReduceOp;
  K.OutputName = E.Output->tensorName();

  std::map<std::string, int> Depth = loopDepths(E.LoopOrder);
  unsigned D = 0;
  for (const std::string &I : E.Output->indices()) {
    auto It = Depth.find(I);
    if (It != Depth.end())
      D = std::max(D, static_cast<unsigned>(It->second) + 1);
  }
  const unsigned NLoops = static_cast<unsigned>(E.LoopOrder.size());
  if (Workspace && D < NLoops) {
    // Accumulate in a register across the loops the output does not
    // index (e.g. the scalar output of SYPRD).
    std::vector<std::string> InnerLoops(E.LoopOrder.begin() + D,
                                        E.LoopOrder.end());
    std::vector<std::string> OuterLoops(E.LoopOrder.begin(),
                                        E.LoopOrder.begin() + D);
    StmtPtr Acc = Stmt::assign(Expr::scalar("w_0"), E.ReduceOp, E.Rhs);
    StmtPtr Nest = Stmt::block(
        {Stmt::defScalar("w_0", Expr::lit(opInfo(E.ReduceOp).Identity)),
         Stmt::loops(InnerLoops, Acc),
         Stmt::assign(E.Output, E.ReduceOp, Expr::scalar("w_0"))});
    K.Body = Stmt::loops(OuterLoops, Nest);
  } else {
    K.Body = Stmt::loops(E.LoopOrder,
                         Stmt::assign(E.Output, E.ReduceOp, E.Rhs));
  }
  if (Concordize)
    concordizeKernel(K);
  // Annotate after concordization: the alias rewrite rebuilds loop
  // nodes and would drop earlier annotations.
  if (Parallelize)
    K.Body = annotateParallelLoops(K.Body);
  return K;
}

Kernel lowerSymmetric(const SymKernel &SK) {
  Kernel K;
  K.Name = SK.Source.Name + "_systec";
  K.Decls = SK.Source.Decls;
  K.LoopOrder = SK.Source.LoopOrder;
  K.ReduceOp = SK.Source.ReduceOp;
  K.OutputName = SK.Source.Output->tensorName();

  std::vector<const SymBlock *> Off, Diag;
  for (const SymBlock &B : SK.Blocks)
    (B.isOffDiagonal() ? Off : Diag).push_back(&B);

  const bool Split =
      SK.SplitDiagonal && SK.Analysis.hasSymmetry() && !Diag.empty();

  unsigned WsCounter = 0;
  std::vector<StmtPtr> Nests;
  if (!Split) {
    std::vector<const SymBlock *> All;
    for (const SymBlock &B : SK.Blocks)
      All.push_back(&B);
    Nests.push_back(buildNest(SK, All, /*Strict=*/false, {}, WsCounter));
  } else {
    // Split each symmetric sparse input into off-diagonal and diagonal
    // parts (Listing 7's A_nondiag / A_diag).
    std::map<std::string, std::string> RenameOff, RenameDiag;
    for (const auto &[Name, Decl] : SK.Source.Decls) {
      if (Decl.IsOutput || !Decl.Symmetry.hasSymmetry() ||
          Decl.Format.isAllDense())
        continue;
      std::string OffName = Name + "_nondiag";
      std::string DiagName = Name + "_diag";
      RenameOff[Name] = OffName;
      RenameDiag[Name] = DiagName;
      K.Splits.push_back(SplitRequest{OffName, Name, false});
      K.Splits.push_back(SplitRequest{DiagName, Name, true});
      TensorDecl DOff = Decl;
      DOff.Name = OffName;
      DOff.IsOutput = false;
      K.Decls[OffName] = DOff;
      TensorDecl DDiag = Decl;
      DDiag.Name = DiagName;
      DDiag.IsOutput = false;
      K.Decls[DiagName] = DDiag;
    }
    if (!Off.empty())
      Nests.push_back(
          buildNest(SK, Off, /*Strict=*/true, RenameOff, WsCounter));
    Nests.push_back(
        buildNest(SK, Diag, /*Strict=*/false, RenameDiag, WsCounter));
  }
  K.Body = Stmt::block(std::move(Nests));

  if (SK.RestrictedOutput)
    K.Epilogue =
        Stmt::replicate(K.OutputName, SK.Analysis.OutputSymmetry);
  if (SK.Concordize)
    concordizeKernel(K);
  if (SK.Parallelize)
    K.Body = annotateParallelLoops(K.Body);
  return K;
}

} // namespace systec
