//===- core/Symmetrize.cpp ------------------------------------*- C++ -*-===//

#include "core/Symmetrize.h"

#include "core/Normalize.h"
#include "support/Error.h"
#include "symmetry/EquivalenceGroup.h"
#include "symmetry/Permutation.h"

#include <cassert>
#include <map>
#include <numeric>
#include <sstream>

namespace systec {

namespace {

/// Odometer over the cartesian product of per-chain choice counts.
class ProductCounter {
public:
  explicit ProductCounter(std::vector<size_t> Sizes)
      : Sizes(std::move(Sizes)), Digits(this->Sizes.size(), 0) {
    Done = this->Sizes.empty() ? false : false;
    for (size_t S : this->Sizes)
      if (S == 0)
        Done = true;
  }

  bool done() const { return Done; }
  const std::vector<size_t> &digits() const { return Digits; }

  void advance() {
    for (size_t C = 0; C < Digits.size(); ++C) {
      if (++Digits[C] < Sizes[C])
        return;
      Digits[C] = 0;
    }
    Done = true;
  }

private:
  std::vector<size_t> Sizes;
  std::vector<size_t> Digits;
  bool Done = false;
};

/// A raw normalized form with its permutation count.
struct RawForm {
  ExprPtr Out;
  ExprPtr Rhs;
  unsigned Count = 0;
};

} // namespace

std::string SymKernel::str() const {
  std::ostringstream OS;
  OS << "symmetrized " << Source.Name << " (" << Analysis.str() << ")\n";
  OS << "chain condition: ";
  if (ChainAtoms.empty())
    OS << "true";
  for (size_t I = 0; I < ChainAtoms.size(); ++I) {
    if (I)
      OS << " && ";
    OS << ChainAtoms[I].str();
  }
  OS << "\n";
  for (const SymBlock &B : Blocks) {
    OS << "block if " << B.Exact.str() << "\n";
    for (const StmtPtr &D : B.Defs)
      OS << "  " << D->str(0);
    for (const FormStmt &F : B.Forms) {
      OS << "  " << F.Out->str() << " "
         << (Source.ReduceOp == OpKind::Add
                 ? "+="
                 : std::string(opInfo(Source.ReduceOp).Name) + "=")
         << " ";
      if (F.Mult != 1)
        OS << F.Mult << " * ";
      if (F.Factor)
        OS << F.Factor->str() << " * ";
      OS << F.Rhs->str() << "\n";
    }
  }
  return OS.str();
}

SymKernel symmetrize(const Einsum &E, const SymmetryAnalysis &Analysis) {
  SymKernel SK;
  SK.Source = E;
  SK.Analysis = Analysis;
  Normalizer Norm(E, Analysis.IndexRank);

  auto Normalize = [&Norm](const ExprPtr &Ex) {
    return Norm.normalizeExpr(Ex);
  };

  // Canonical chain conditions p1 <= ... <= pn.
  for (const Chain &C : Analysis.Chains)
    for (size_t T = 0; T + 1 < C.Names.size(); ++T)
      SK.ChainAtoms.push_back(
          CmpAtom{CmpKind::LE, C.Names[T], C.Names[T + 1]});

  if (Analysis.Chains.empty()) {
    SymBlock B;
    B.Exact = Cond::always();
    B.OffDiag = true;
    B.Forms.push_back(FormStmt{Normalize(E.Output), Normalize(E.Rhs), 1,
                               nullptr});
    SK.Blocks.push_back(std::move(B));
    return SK;
  }

  // Enumerate all products of chain permutations, apply them to the
  // assignment, and bucket the normal forms with counts.
  std::vector<std::vector<Permutation>> ChainPerms;
  std::vector<size_t> PermCounts;
  for (const Chain &C : Analysis.Chains) {
    ChainPerms.push_back(
        allPermutations(static_cast<unsigned>(C.Names.size())));
    PermCounts.push_back(ChainPerms.back().size());
  }

  std::vector<RawForm> Raw;
  std::map<std::string, size_t> RawIdx;
  for (ProductCounter PC(PermCounts); !PC.done(); PC.advance()) {
    std::map<std::string, std::string> Rename;
    for (size_t CI = 0; CI < Analysis.Chains.size(); ++CI) {
      const Chain &C = Analysis.Chains[CI];
      const Permutation &Sigma = ChainPerms[CI][PC.digits()[CI]];
      // Paper Figure 5: the loop tuple becomes sigma applied to the
      // names; index at chain position T is renamed to the name at
      // position Sigma[T].
      for (unsigned T = 0; T < C.Names.size(); ++T)
        Rename[C.Names[T]] = C.Names[Sigma[T]];
    }
    auto Map = [&Rename](const std::string &N) {
      auto It = Rename.find(N);
      return It == Rename.end() ? N : It->second;
    };
    ExprPtr Out = Normalize(Expr::renameIndices(E.Output, Map));
    ExprPtr Rhs = Normalize(Expr::renameIndices(E.Rhs, Map));
    std::string Key = Norm.assignKey(Out, Rhs);
    auto It = RawIdx.find(Key);
    if (It == RawIdx.end()) {
      RawIdx[Key] = Raw.size();
      Raw.push_back(RawForm{Out, Rhs, 1});
    } else {
      ++Raw[It->second].Count;
    }
  }

  // One block per combination of per-chain equivalence groups.
  std::vector<std::vector<EquivalenceGroup>> ChainGroups;
  std::vector<size_t> GroupCounts;
  for (const Chain &C : Analysis.Chains) {
    ChainGroups.push_back(
        EquivalenceGroup::enumerate(static_cast<unsigned>(C.Names.size())));
    GroupCounts.push_back(ChainGroups.back().size());
  }

  for (ProductCounter GC(GroupCounts); !GC.done(); GC.advance()) {
    std::vector<const EquivalenceGroup *> Groups;
    for (size_t CI = 0; CI < Analysis.Chains.size(); ++CI)
      Groups.push_back(&ChainGroups[CI][GC.digits()[CI]]);

    // Stabilizer size: product of run factorials across chains.
    uint64_t Stab = 1;
    for (const EquivalenceGroup *G : Groups)
      for (unsigned Len : G->runs())
        for (uint64_t K = 2; K <= Len; ++K)
          Stab *= K;

    // Equality-collapse rename: each run's names map to the run's first
    // (representative) name.
    std::map<std::string, std::string> Collapse;
    for (size_t CI = 0; CI < Analysis.Chains.size(); ++CI) {
      const Chain &C = Analysis.Chains[CI];
      const EquivalenceGroup *G = Groups[CI];
      for (unsigned R = 0; R < G->runs().size(); ++R) {
        auto [B, End] = G->runRange(R);
        for (unsigned P = B; P < End; ++P)
          Collapse[C.Names[P]] = C.Names[B];
      }
    }
    auto CollapseMap = [&Collapse](const std::string &N) {
      auto It = Collapse.find(N);
      return It == Collapse.end() ? N : It->second;
    };

    // Group raw forms into equality classes under the collapse.
    std::map<std::string, size_t> ClassIdx;
    struct EqClass {
      std::vector<size_t> Members; // raw indices, in order
      uint64_t Total = 0;
    };
    std::vector<EqClass> Classes;
    for (size_t RI = 0; RI < Raw.size(); ++RI) {
      ExprPtr Out = Normalize(Expr::renameIndices(Raw[RI].Out, CollapseMap));
      ExprPtr Rhs = Normalize(Expr::renameIndices(Raw[RI].Rhs, CollapseMap));
      std::string Key = Norm.assignKey(Out, Rhs);
      auto It = ClassIdx.find(Key);
      if (It == ClassIdx.end()) {
        ClassIdx[Key] = Classes.size();
        Classes.push_back(EqClass());
        It = ClassIdx.find(Key);
      }
      Classes[It->second].Members.push_back(RI);
      Classes[It->second].Total += Raw[RI].Count;
    }

    // Each class contributes Total / Stab assignments, distributed
    // round-robin over its distinct members (diversification).
    std::map<size_t, unsigned> Emit;
    for (const EqClass &Cls : Classes) {
      if (Cls.Total % Stab != 0)
        fatalError("symmetrization: class count " +
                   std::to_string(Cls.Total) +
                   " not divisible by stabilizer " + std::to_string(Stab));
      uint64_t Need = Cls.Total / Stab;
      for (uint64_t K = 0; K < Need; ++K)
        ++Emit[Cls.Members[K % Cls.Members.size()]];
    }

    SymBlock Block;
    Block.OffDiag = true;
    for (size_t CI = 0; CI < Analysis.Chains.size(); ++CI) {
      Block.Runs.push_back(Groups[CI]->runs());
      if (!Groups[CI]->isOffDiagonal())
        Block.OffDiag = false;
    }
    // Exact condition: adjacent chain indices equal within runs,
    // strictly increasing across run boundaries.
    std::vector<CmpAtom> Atoms;
    for (size_t CI = 0; CI < Analysis.Chains.size(); ++CI) {
      const Chain &C = Analysis.Chains[CI];
      const EquivalenceGroup *G = Groups[CI];
      for (unsigned T = 0; T + 1 < C.Names.size(); ++T)
        Atoms.push_back(CmpAtom{G->sameRun(T, T + 1) ? CmpKind::EQ
                                                     : CmpKind::LT,
                                C.Names[T], C.Names[T + 1]});
    }
    Block.Exact = Atoms.empty() ? Cond::always() : Cond::conj(Atoms);

    for (size_t RI = 0; RI < Raw.size(); ++RI) {
      auto It = Emit.find(RI);
      if (It == Emit.end())
        continue;
      Block.Forms.push_back(
          FormStmt{Raw[RI].Out, Raw[RI].Rhs, It->second, nullptr});
    }
    SK.Blocks.push_back(std::move(Block));
  }
  return SK;
}

} // namespace systec
