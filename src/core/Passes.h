//===- core/Passes.h - Symmetry optimization passes -----------*- C++ -*-===//
///
/// \file
/// The transforms of paper Section 4.2, each as a standalone pass over
/// the structured SymKernel so they can be tested and ablated
/// individually:
///
///   4.2.1 Common tensor access elimination   passCommonAccessElimination
///   4.2.2 Restrict output to canonical       passVisibleOutputRestriction
///   4.2.3 Concordize tensors                 (lowering; SymKernel flag)
///   4.2.4 Consolidate conditional blocks     passConsolidateBlocks
///   4.2.5 Simplicial lookup table            passSimplicialLut
///   4.2.6 Group assignments across branches  passGroupAcrossBranches
///   4.2.7 Distributive assignment grouping   passDistributiveGrouping
///   4.2.8 Workspace transformation           (lowering; SymKernel flag)
///   4.2.9 Diagonal splitting                 (lowering; SymKernel flag)
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_CORE_PASSES_H
#define SYSTEC_CORE_PASSES_H

#include "core/SymKernel.h"

namespace systec {

/// Pipeline configuration; each switch disables one transform for
/// ablation studies.
struct PipelineOptions {
  bool VisibleOutputRestriction = true;
  bool DistributiveGrouping = true;
  bool CommonAccessElimination = true;
  bool ConsolidateBlocks = true;
  bool GroupAcrossBranches = true;
  bool SimplicialLut = true;
  bool DiagonalSplit = true;
  bool Concordize = true;
  bool Workspace = true;
  /// Annotate parallelizable loops (ParallelAnalysis) so the executor
  /// can distribute them; off disables multi-threading per kernel.
  bool Parallelize = true;
};

/// Keeps only assignments writing the canonical triangle of a
/// symmetric output and schedules the replication epilogue
/// (paper 4.2.2 / Listing 3).
void passVisibleOutputRestriction(SymKernel &SK);

/// Merges duplicate assignments within each block into one assignment
/// with a multiplicity (paper 4.2.7 / Listing 5).
void passDistributiveGrouping(SymKernel &SK);

/// Hoists repeated tensor reads into scalar temporaries
/// (paper 4.2.1; also Listing 7's `A = A_nondiag[i,k,l]`).
void passCommonAccessElimination(SymKernel &SK);

/// Merges blocks with identical assignments by unioning their
/// conditions (paper 4.2.4).
void passConsolidateBlocks(SymKernel &SK);

/// Extracts assignments shared by several blocks into a block guarded
/// by the union of the conditions (paper 4.2.6). When
/// \p AcrossDiagonal is false, only blocks on the same side of the
/// diagonal split participate (so the split lowering can still separate
/// the nests).
void passGroupAcrossBranches(SymKernel &SK, bool AcrossDiagonal = false);

/// Merges blocks whose assignments differ only in constant factors,
/// selecting the factor at runtime from a lookup table indexed by the
/// equality pattern (paper 4.2.5).
void passSimplicialLut(SymKernel &SK);

/// Runs the configured passes in the standard order and records the
/// lowering flags (concordize / workspace / diagonal split).
void runPasses(SymKernel &SK, const PipelineOptions &Options);

} // namespace systec

#endif // SYSTEC_CORE_PASSES_H
