//===- core/Analysis.cpp --------------------------------------*- C++ -*-===//

#include "core/Analysis.h"

#include "core/Normalize.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>
#include <sstream>

namespace systec {

namespace {

/// Plain union-find over index names.
class NameUnion {
public:
  void ensure(const std::string &Name) {
    Parent.insert({Name, Name});
  }

  std::string find(const std::string &Name) {
    ensure(Name);
    std::string Cur = Name;
    while (Parent[Cur] != Cur)
      Cur = Parent[Cur];
    Parent[Name] = Cur;
    return Cur;
  }

  void unite(const std::string &A, const std::string &B) {
    Parent[find(A)] = find(B);
  }

  std::map<std::string, std::vector<std::string>> components() {
    std::map<std::string, std::vector<std::string>> Out;
    for (const auto &[Name, _] : Parent)
      Out[find(Name)].push_back(Name);
    return Out;
  }

private:
  std::map<std::string, std::string> Parent;
};

} // namespace

std::string SymmetryAnalysis::str() const {
  std::ostringstream OS;
  OS << "chains:";
  if (Chains.empty())
    OS << " (none)";
  for (const Chain &C : Chains)
    OS << " [" << join(C.Names, " <= ") << "]";
  OS << "; output symmetry: " << OutputSymmetry.str();
  return OS.str();
}

SymmetryAnalysis analyzeSymmetry(const Einsum &E) {
  SymmetryAnalysis Result;

  std::map<std::string, int> Depth;
  for (size_t D = 0; D < E.LoopOrder.size(); ++D)
    Depth[E.LoopOrder[D]] = static_cast<int>(D);

  NameUnion Union;
  std::set<std::string> FromInputs;

  // Stage 1 (paper 4.1): indices in symmetric parts of input tensors.
  std::vector<ExprPtr> Accesses;
  Expr::collectAccesses(E.Rhs, Accesses);
  for (const ExprPtr &A : Accesses) {
    auto DeclIt = E.Decls.find(A->tensorName());
    if (DeclIt == E.Decls.end())
      continue;
    const Partition &Sym = DeclIt->second.Symmetry;
    if (!Sym.hasSymmetry())
      continue;
    for (const std::vector<unsigned> &Part : Sym.parts()) {
      if (Part.size() < 2)
        continue;
      std::vector<std::string> Names;
      for (unsigned M : Part)
        Names.push_back(A->indices()[M]);
      std::set<std::string> Distinct(Names.begin(), Names.end());
      if (Distinct.size() != Names.size())
        continue; // degenerate diagonal access; nothing to permute
      for (size_t I = 1; I < Names.size(); ++I)
        Union.unite(Names[0], Names[I]);
      FromInputs.insert(Names.begin(), Names.end());
    }
  }

  // Rhs-invariance chains: index pairs under which the normalized rhs
  // is unchanged (visible output symmetry like SSYRK, and invisible
  // contraction symmetry with asymmetric inputs).
  Normalizer Pre(E, {});
  const std::string RhsKey = Pre.sortKey(Pre.normalizeExpr(E.Rhs));
  std::vector<std::string> All = E.allIndices();
  for (size_t I = 0; I < All.size(); ++I) {
    for (size_t J = I + 1; J < All.size(); ++J) {
      const std::string &A = All[I], &B = All[J];
      if (FromInputs.count(A) || FromInputs.count(B))
        continue; // already covered by an input symmetry chain
      auto Swap = [&](const std::string &N) {
        if (N == A)
          return B;
        if (N == B)
          return A;
        return N;
      };
      ExprPtr Swapped = Expr::renameIndices(E.Rhs, Swap);
      if (Pre.sortKey(Pre.normalizeExpr(Swapped)) == RhsKey)
        Union.unite(A, B);
    }
  }

  // Build chains: one per component of size >= 2, ordered innermost
  // loop first (so p1 <= ... <= pn nests concordantly).
  for (auto &[Root, Names] : Union.components()) {
    (void)Root;
    if (Names.size() < 2)
      continue;
    for (const std::string &N : Names)
      if (!Depth.count(N))
        fatalError("permutable index " + N + " missing from loop order");
    std::sort(Names.begin(), Names.end(),
              [&Depth](const std::string &X, const std::string &Y) {
                return Depth[X] > Depth[Y];
              });
    Chain C;
    C.Names = Names;
    Result.Chains.push_back(std::move(C));
  }
  // Deterministic chain order: by first name's loop depth.
  std::sort(Result.Chains.begin(), Result.Chains.end(),
            [&Depth](const Chain &X, const Chain &Y) {
              return Depth[X.Names[0]] < Depth[Y.Names[0]];
            });

  for (unsigned CI = 0; CI < Result.Chains.size(); ++CI) {
    const Chain &C = Result.Chains[CI];
    for (unsigned P = 0; P < C.Names.size(); ++P) {
      Result.IndexRank[C.Names[P]] = static_cast<int>(P);
      Result.ChainOf[C.Names[P]] = CI;
    }
  }

  // Visible output symmetry: output positions are symmetric when their
  // names share a chain (so the canonical order is derivable) AND the
  // rhs is invariant under swapping them. Chain co-membership alone is
  // not enough: in O[d,c,b] += A[d,c,b] * B[b] all three names share
  // A's chain, but swapping b with c changes B's operand, so only the
  // first two output positions are symmetric.
  const std::vector<std::string> &Outs = E.outputIndices();
  Normalizer Post(E, Result.IndexRank);
  const std::string PostRhsKey = Post.sortKey(Post.normalizeExpr(E.Rhs));
  std::vector<unsigned> PartOf(Outs.size());
  for (unsigned P = 0; P < Outs.size(); ++P)
    PartOf[P] = P;
  for (unsigned P = 0; P < Outs.size(); ++P) {
    for (unsigned Q = P + 1; Q < Outs.size(); ++Q) {
      const std::string &A = Outs[P], &B = Outs[Q];
      auto CA = Result.ChainOf.find(A), CB = Result.ChainOf.find(B);
      if (CA == Result.ChainOf.end() || CB == Result.ChainOf.end() ||
          CA->second != CB->second)
        continue;
      auto Swap = [&](const std::string &N) {
        if (N == A)
          return B;
        if (N == B)
          return A;
        return N;
      };
      ExprPtr Swapped = Expr::renameIndices(E.Rhs, Swap);
      if (Post.sortKey(Post.normalizeExpr(Swapped)) != PostRhsKey)
        continue;
      // Union the two positions' groups.
      unsigned Root = PartOf[P];
      for (unsigned K = 0; K < Outs.size(); ++K)
        if (PartOf[K] == PartOf[Q])
          PartOf[K] = Root;
    }
  }
  std::map<unsigned, std::vector<unsigned>> Groups;
  for (unsigned P = 0; P < Outs.size(); ++P)
    Groups[PartOf[P]].push_back(P);
  std::vector<std::vector<unsigned>> Parts;
  for (auto &[Root, Positions] : Groups) {
    (void)Root;
    Parts.push_back(Positions);
  }
  Result.OutputSymmetry =
      Partition(static_cast<unsigned>(Outs.size()), std::move(Parts));
  return Result;
}

} // namespace systec
