//===- core/Passes.cpp ----------------------------------------*- C++ -*-===//

#include "core/Passes.h"

#include "core/Normalize.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>

namespace systec {

namespace {

/// Signature of a block's contents (temporaries + assignments).
std::string blockSignature(const SymBlock &B) {
  std::ostringstream OS;
  OS << (B.OffDiag ? "off;" : "diag;");
  for (const StmtPtr &D : B.Defs)
    OS << D->str(0) << ";";
  for (const FormStmt &F : B.Forms) {
    OS << F.key() << " x" << F.Mult;
    if (F.Factor)
      OS << " f:" << F.Factor->str();
    OS << ";";
  }
  return OS.str();
}

std::string formSignature(const FormStmt &F) {
  std::ostringstream OS;
  OS << F.key() << " x" << F.Mult;
  if (F.Factor)
    OS << " f:" << F.Factor->str();
  return OS.str();
}

/// Whether two chained names are provably equal inside a block (same
/// run of the block's equivalence group).
bool sameRunInBlock(const SymKernel &SK, const SymBlock &B,
                    const std::string &A, const std::string &C) {
  auto ChA = SK.Analysis.ChainOf.find(A);
  auto ChC = SK.Analysis.ChainOf.find(C);
  if (ChA == SK.Analysis.ChainOf.end() || ChC == SK.Analysis.ChainOf.end())
    return false;
  if (ChA->second != ChC->second)
    return false;
  if (B.Runs.empty())
    return false;
  const std::vector<unsigned> &Runs = B.Runs[ChA->second];
  int PA = SK.Analysis.IndexRank.at(A);
  int PC = SK.Analysis.IndexRank.at(C);
  unsigned Pos = 0;
  for (unsigned Len : Runs) {
    bool HasA = PA >= static_cast<int>(Pos) &&
                PA < static_cast<int>(Pos + Len);
    bool HasC = PC >= static_cast<int>(Pos) &&
                PC < static_cast<int>(Pos + Len);
    if (HasA && HasC)
      return true;
    if (HasA || HasC)
      return false;
    Pos += Len;
  }
  return false;
}

/// Scalar names referenced by an expression.
void collectScalarRefs(const ExprPtr &E, std::set<std::string> &Out) {
  if (E->kind() == ExprKind::Scalar) {
    Out.insert(E->scalarName());
    return;
  }
  if (E->kind() == ExprKind::Call)
    for (const ExprPtr &A : E->args())
      collectScalarRefs(A, Out);
}

/// Drops temporaries no longer referenced by any form in the block.
void pruneUnusedDefs(SymBlock &B) {
  std::set<std::string> Used;
  for (const FormStmt &F : B.Forms)
    collectScalarRefs(F.Rhs, Used);
  // Defs may reference earlier defs.
  for (auto It = B.Defs.rbegin(); It != B.Defs.rend(); ++It)
    if (Used.count((*It)->scalarName()))
      collectScalarRefs((*It)->init(), Used);
  std::vector<StmtPtr> Kept;
  for (const StmtPtr &D : B.Defs)
    if (Used.count(D->scalarName()))
      Kept.push_back(D);
  B.Defs = std::move(Kept);
}

} // namespace

void passVisibleOutputRestriction(SymKernel &SK) {
  const Partition &OutSym = SK.Analysis.OutputSymmetry;
  if (!OutSym.hasSymmetry())
    return;
  for (SymBlock &B : SK.Blocks) {
    std::vector<FormStmt> Kept;
    for (const FormStmt &F : B.Forms) {
      bool Canonical = true;
      const std::vector<std::string> &Outs = F.Out->indices();
      for (const std::vector<unsigned> &Part : OutSym.parts()) {
        if (Part.size() < 2)
          continue;
        for (size_t I = 0; I + 1 < Part.size() && Canonical; ++I) {
          for (size_t J = I + 1; J < Part.size() && Canonical; ++J) {
            const std::string &NA = Outs[Part[I]];
            const std::string &NB = Outs[Part[J]];
            int RA = SK.Analysis.IndexRank.count(NA)
                         ? SK.Analysis.IndexRank.at(NA)
                         : -1;
            int RB = SK.Analysis.IndexRank.count(NB)
                         ? SK.Analysis.IndexRank.at(NB)
                         : -1;
            // Non-canonical when provably strictly descending: higher
            // chain rank first and not equal under this block's
            // equivalence pattern.
            if (RA > RB && !sameRunInBlock(SK, B, NA, NB))
              Canonical = false;
          }
        }
      }
      if (Canonical)
        Kept.push_back(F);
    }
    B.Forms = std::move(Kept);
  }
  SK.RestrictedOutput = true;
}

void passDistributiveGrouping(SymKernel &SK) {
  for (SymBlock &B : SK.Blocks) {
    std::vector<FormStmt> Merged;
    std::map<std::string, size_t> Index;
    for (const FormStmt &F : B.Forms) {
      std::string Key = F.key();
      auto It = Index.find(Key);
      if (It == Index.end()) {
        Index[Key] = Merged.size();
        Merged.push_back(F);
      } else {
        Merged[It->second].Mult += F.Mult;
      }
    }
    B.Forms = std::move(Merged);
  }
}

void passCommonAccessElimination(SymKernel &SK) {
  for (SymBlock &B : SK.Blocks) {
    // Count access occurrences across the block's assignments.
    std::vector<ExprPtr> Order;
    std::map<std::string, unsigned> Counts;
    for (const FormStmt &F : B.Forms) {
      std::vector<ExprPtr> Accesses;
      Expr::collectAccesses(F.Rhs, Accesses);
      for (const ExprPtr &A : Accesses) {
        if (++Counts[A->str()] == 1)
          Order.push_back(A);
      }
    }
    for (const ExprPtr &A : Order) {
      if (Counts[A->str()] < 2)
        continue;
      std::string Temp = "t_" + A->tensorName();
      for (const std::string &I : A->indices())
        Temp += "_" + I;
      B.Defs.push_back(Stmt::defScalar(Temp, A));
      ExprPtr Ref = Expr::scalar(Temp);
      for (FormStmt &F : B.Forms)
        F.Rhs = Expr::replace(F.Rhs, A, Ref);
    }
  }
}

void passSimplicialLut(SymKernel &SK) {
  // Factor scaling is only meaningful for additive reductions.
  if (SK.Source.ReduceOp != OpKind::Add)
    return;
  // The lookup index bits: one equality test per chain adjacency.
  std::vector<CmpAtom> Bits;
  for (const Chain &C : SK.Analysis.Chains)
    for (size_t T = 0; T + 1 < C.Names.size(); ++T)
      Bits.push_back(CmpAtom{CmpKind::EQ, C.Names[T], C.Names[T + 1]});
  if (Bits.empty() || Bits.size() > 16)
    return;

  auto BlockMask = [&](const SymBlock &B) -> unsigned {
    unsigned Mask = 0;
    unsigned BitIdx = 0;
    for (size_t CI = 0; CI < SK.Analysis.Chains.size(); ++CI) {
      const std::vector<unsigned> &Runs = B.Runs[CI];
      unsigned Pos = 0;
      std::vector<bool> Eq;
      for (size_t R = 0; R < Runs.size(); ++R) {
        for (unsigned I = 0; I + 1 < Runs[R]; ++I)
          Eq.push_back(true);
        if (R + 1 < Runs.size())
          Eq.push_back(false);
        Pos += Runs[R];
      }
      for (bool E : Eq) {
        if (E)
          Mask |= 1u << BitIdx;
        ++BitIdx;
      }
    }
    return Mask;
  };

  // Group diagonal blocks by (defs, form-key support) signature.
  auto SupportSig = [](const SymBlock &B) {
    std::ostringstream OS;
    for (const StmtPtr &D : B.Defs)
      OS << D->str(0) << ";";
    std::vector<std::string> Keys;
    for (const FormStmt &F : B.Forms)
      Keys.push_back(F.key());
    std::sort(Keys.begin(), Keys.end());
    for (const std::string &K : Keys)
      OS << K << ";";
    return OS.str();
  };

  std::map<std::string, std::vector<size_t>> Groups;
  for (size_t I = 0; I < SK.Blocks.size(); ++I) {
    const SymBlock &B = SK.Blocks[I];
    if (B.OffDiag || B.Runs.empty())
      continue;
    bool HasFactor = false;
    for (const FormStmt &F : B.Forms)
      HasFactor |= F.Factor != nullptr;
    if (HasFactor)
      continue;
    Groups[SupportSig(B)].push_back(I);
  }

  std::set<size_t> Remove;
  std::vector<SymBlock> NewBlocks;
  for (const auto &[Sig, Members] : Groups) {
    (void)Sig;
    if (Members.size() < 2)
      continue;
    SymBlock Merged;
    Merged.OffDiag = false;
    Merged.Defs = SK.Blocks[Members[0]].Defs;
    Merged.Exact = Cond::never();
    // Per-form factor tables.
    std::vector<FormStmt> Forms = SK.Blocks[Members[0]].Forms;
    std::vector<std::vector<double>> Tables(
        Forms.size(), std::vector<double>(1ull << Bits.size(), 0.0));
    bool AllEqual = true;
    double FirstVal = -1;
    for (size_t MI : Members) {
      const SymBlock &B = SK.Blocks[MI];
      unsigned Mask = BlockMask(B);
      Merged.Exact = Cond::unionOf(Merged.Exact, B.Exact);
      for (const FormStmt &F : B.Forms) {
        bool Found = false;
        for (size_t FI = 0; FI < Forms.size(); ++FI) {
          if (Forms[FI].key() == F.key()) {
            Tables[FI][Mask] = F.Mult;
            if (FirstVal < 0)
              FirstVal = F.Mult;
            AllEqual &= F.Mult == FirstVal;
            Found = true;
            break;
          }
        }
        assert(Found && "support signature mismatch");
        (void)Found;
      }
    }
    Merged.Exact = simplifyCond(Merged.Exact);
    for (size_t FI = 0; FI < Forms.size(); ++FI) {
      Forms[FI].Mult = 1;
      if (AllEqual)
        Forms[FI].Mult = static_cast<unsigned>(FirstVal);
      else
        Forms[FI].Factor = Expr::lut(Bits, Tables[FI]);
    }
    Merged.Forms = std::move(Forms);
    NewBlocks.push_back(std::move(Merged));
    Remove.insert(Members.begin(), Members.end());
  }
  if (NewBlocks.empty())
    return;
  std::vector<SymBlock> Result;
  for (size_t I = 0; I < SK.Blocks.size(); ++I)
    if (!Remove.count(I))
      Result.push_back(std::move(SK.Blocks[I]));
  for (SymBlock &B : NewBlocks)
    Result.push_back(std::move(B));
  SK.Blocks = std::move(Result);
}

void passConsolidateBlocks(SymKernel &SK) {
  std::vector<SymBlock> Result;
  std::map<std::string, size_t> Index;
  for (SymBlock &B : SK.Blocks) {
    std::string Sig = blockSignature(B);
    auto It = Index.find(Sig);
    if (It == Index.end()) {
      Index[Sig] = Result.size();
      Result.push_back(std::move(B));
    } else {
      SymBlock &Target = Result[It->second];
      Target.Exact = simplifyCond(Cond::unionOf(Target.Exact, B.Exact));
      if (!(Target.Runs == B.Runs))
        Target.Runs.clear();
    }
  }
  SK.Blocks = std::move(Result);
}

void passGroupAcrossBranches(SymKernel &SK, bool AcrossDiagonal) {
  // Count (form signature, defs needed) across blocks.
  struct Occurrence {
    std::vector<size_t> BlockIdx;
    FormStmt Form;
    bool OffDiag;
  };
  auto SideTag = [&](const SymBlock &B) {
    if (AcrossDiagonal)
      return std::string("any;");
    return std::string(B.OffDiag ? "off;" : "diag;");
  };
  std::map<std::string, Occurrence> Shared;
  for (size_t BI = 0; BI < SK.Blocks.size(); ++BI) {
    const SymBlock &B = SK.Blocks[BI];
    for (const FormStmt &F : B.Forms) {
      // Forms referencing block temporaries carry the defining
      // statements in the signature so only identical contexts merge.
      std::set<std::string> Refs;
      collectScalarRefs(F.Rhs, Refs);
      std::ostringstream Sig;
      Sig << SideTag(B) << formSignature(F) << ";";
      for (const StmtPtr &D : B.Defs)
        if (Refs.count(D->scalarName()))
          Sig << D->str(0) << ";";
      auto &Occ = Shared[Sig.str()];
      if (Occ.BlockIdx.empty()) {
        Occ.Form = F;
        Occ.OffDiag = B.OffDiag;
      }
      Occ.BlockIdx.push_back(BI);
    }
  }

  std::vector<SymBlock> NewBlocks;
  std::set<std::string> Extracted;
  for (const auto &[Sig, Occ] : Shared) {
    if (Occ.BlockIdx.size() < 2)
      continue;
    Extracted.insert(Sig);
    SymBlock NB;
    NB.OffDiag = Occ.OffDiag;
    NB.Exact = Cond::never();
    for (size_t BI : Occ.BlockIdx)
      NB.Exact = Cond::unionOf(NB.Exact, SK.Blocks[BI].Exact);
    NB.Exact = simplifyCond(NB.Exact);
    std::set<std::string> Refs;
    collectScalarRefs(Occ.Form.Rhs, Refs);
    for (const StmtPtr &D : SK.Blocks[Occ.BlockIdx[0]].Defs)
      if (Refs.count(D->scalarName()))
        NB.Defs.push_back(D);
    NB.Forms.push_back(Occ.Form);
    NewBlocks.push_back(std::move(NB));
  }
  if (NewBlocks.empty())
    return;

  // Remove extracted forms from their original blocks.
  for (size_t BI = 0; BI < SK.Blocks.size(); ++BI) {
    SymBlock &B = SK.Blocks[BI];
    std::vector<FormStmt> Kept;
    for (const FormStmt &F : B.Forms) {
      std::set<std::string> Refs;
      collectScalarRefs(F.Rhs, Refs);
      std::ostringstream Sig;
      Sig << SideTag(B) << formSignature(F) << ";";
      for (const StmtPtr &D : B.Defs)
        if (Refs.count(D->scalarName()))
          Sig << D->str(0) << ";";
      if (!Extracted.count(Sig.str()))
        Kept.push_back(F);
    }
    B.Forms = std::move(Kept);
    pruneUnusedDefs(B);
  }
  std::vector<SymBlock> Result;
  // Grouped blocks first (they typically carry the union condition that
  // simplifies, e.g. i <= j), then surviving originals.
  for (SymBlock &B : NewBlocks)
    Result.push_back(std::move(B));
  for (SymBlock &B : SK.Blocks)
    if (!B.Forms.empty())
      Result.push_back(std::move(B));
  SK.Blocks = std::move(Result);
}

void runPasses(SymKernel &SK, const PipelineOptions &Options) {
  if (Options.VisibleOutputRestriction)
    passVisibleOutputRestriction(SK);
  if (Options.DistributiveGrouping)
    passDistributiveGrouping(SK);
  if (Options.SimplicialLut)
    passSimplicialLut(SK);
  if (Options.ConsolidateBlocks)
    passConsolidateBlocks(SK);
  if (Options.GroupAcrossBranches)
    passGroupAcrossBranches(SK, /*AcrossDiagonal=*/!Options.DiagonalSplit);
  // Hoist repeated reads last so earlier passes compare raw forms.
  if (Options.CommonAccessElimination)
    passCommonAccessElimination(SK);
  SK.SplitDiagonal = Options.DiagonalSplit;
  SK.Concordize = Options.Concordize;
  SK.UseWorkspaces = Options.Workspace;
  SK.Parallelize = Options.Parallelize;
}

} // namespace systec
