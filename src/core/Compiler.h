//===- core/Compiler.h - SySTeC compiler driver ---------------*- C++ -*-===//
///
/// \file
/// The public compiler entry point: given an einsum with symmetry
/// annotations, produce both the naive kernel (the paper's baseline)
/// and the symmetry-optimized kernel (Sections 4.1-4.2), together with
/// the intermediate artifacts for inspection and testing.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_CORE_COMPILER_H
#define SYSTEC_CORE_COMPILER_H

#include "core/Analysis.h"
#include "core/Lower.h"
#include "core/Passes.h"
#include "core/SymKernel.h"
#include "core/Symmetrize.h"

#include <string>

namespace systec {

/// Everything the compiler produced for one einsum.
struct CompileResult {
  Einsum Source;
  SymmetryAnalysis Analysis;
  SymKernel Sym;      ///< after all enabled passes
  Kernel Naive;       ///< baseline loop nest
  Kernel Optimized;   ///< symmetry-exploiting kernel

  /// Multi-section textual report (analysis, symmetrized blocks, final
  /// kernels) for the CLI and golden tests.
  std::string report() const;
};

/// Runs the full pipeline over \p E.
CompileResult compileEinsum(const Einsum &E,
                            const PipelineOptions &Options = {});

} // namespace systec

#endif // SYSTEC_CORE_COMPILER_H
