//===- core/Symmetrize.h - Symmetrization stage ---------------*- C++ -*-===//
///
/// \file
/// The symmetrization stage (paper Section 4.1, Figures 3 and 5):
/// restrict iteration to the canonical triangle of every chain and, for
/// each equivalence group E, emit the unique triangular assignments that
/// reconstruct the full iteration space.
///
/// The enumeration works on normal forms: all products of chain
/// permutations are applied to the assignment and normalized; for each
/// equivalence group the forms are grouped into equality classes (forms
/// identical once equal indices are collapsed), each class receives
/// (sum of its member counts) / (stabilizer size) assignments, and those
/// are distributed round-robin over the class's distinct members. The
/// round-robin diversification is what turns the duplicated diagonal
/// assignments of Listing 6 into the shared-pattern diagonal blocks of
/// Listing 7 ("we may need to swap around a few indices in the blocks
/// accounting for the diagonals", Section 3.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_CORE_SYMMETRIZE_H
#define SYSTEC_CORE_SYMMETRIZE_H

#include "core/SymKernel.h"

namespace systec {

/// Builds the symmetrized kernel for \p E under \p Analysis. The result
/// has one block per combination of per-chain equivalence groups,
/// guarded by exact equality patterns, with all assignments normalized.
SymKernel symmetrize(const Einsum &E, const SymmetryAnalysis &Analysis);

} // namespace systec

#endif // SYSTEC_CORE_SYMMETRIZE_H
