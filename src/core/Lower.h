//===- core/Lower.h - Kernel lowering -------------------------*- C++ -*-===//
///
/// \file
/// Assembles executable Kernels:
///
///  - lowerNaive builds the plain concordant loop nest for an einsum
///    (the "naive Finch" baseline of the paper's evaluation).
///  - lowerSymmetric builds the symmetry-optimized kernel from a
///    SymKernel: the loop nest(s) with canonical chain conditions placed
///    at their binding loops (so the runtime lifts them into bounds),
///    diagonal splitting into separate nests over split tensors
///    (paper 4.2.9 / Listing 7), workspace accumulators (4.2.8),
///    concordization transposes (4.2.3), and the replication epilogue
///    (4.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_CORE_LOWER_H
#define SYSTEC_CORE_LOWER_H

#include "core/SymKernel.h"
#include "ir/Kernel.h"

namespace systec {

/// Lowers the einsum without symmetry exploitation. \p Concordize
/// transposes inputs to iterate in loop order (on by default so the
/// baseline is fair). \p Parallelize runs the parallelism analysis and
/// annotates distributable loops.
Kernel lowerNaive(const Einsum &E, bool Concordize = true,
                  bool Workspace = true, bool Parallelize = true);

/// Lowers a symmetrized and optimized kernel.
Kernel lowerSymmetric(const SymKernel &SK);

/// Rewrites non-concordant input accesses in \p K to transposed
/// aliases, recording TransposeRequests (exposed for testing).
void concordizeKernel(Kernel &K);

} // namespace systec

#endif // SYSTEC_CORE_LOWER_H
