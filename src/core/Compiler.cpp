//===- core/Compiler.cpp --------------------------------------*- C++ -*-===//

#include "core/Compiler.h"

#include "observability/Trace.h"

#include <sstream>

namespace systec {

std::string CompileResult::report() const {
  std::ostringstream OS;
  OS << "=== einsum ===\n" << Source.str() << "\n";
  for (const auto &[Name, D] : Source.Decls) {
    OS << "  " << Name << ": " << D.Format.str() << ", fill "
       << D.Fill;
    if (D.Symmetry.hasSymmetry())
      OS << ", symmetry " << D.Symmetry.str();
    if (D.IsOutput)
      OS << " (output)";
    OS << "\n";
  }
  OS << "=== analysis ===\n" << Analysis.str() << "\n";
  OS << "=== symmetrized ===\n" << Sym.str();
  OS << "=== naive kernel ===\n" << Naive.str();
  OS << "=== optimized kernel ===\n" << Optimized.str();
  if (!Optimized.Transposes.empty()) {
    OS << "transposes:";
    for (const TransposeRequest &T : Optimized.Transposes)
      OS << " " << T.Alias << "<-" << T.Source;
    OS << "\n";
  }
  if (!Optimized.Splits.empty()) {
    OS << "splits:";
    for (const SplitRequest &S : Optimized.Splits)
      OS << " " << S.Alias;
    OS << "\n";
  }
  return OS.str();
}

CompileResult compileEinsum(const Einsum &E,
                            const PipelineOptions &Options) {
  // Trace-only span for the whole front-end lowering (analysis,
  // symmetrization, passes, both lowerings). Not an ExecReport phase:
  // lowering happens before any Executor exists.
  obs::TraceScope Lower("lower", "compile");
  CompileResult R;
  R.Source = E;
  R.Analysis = analyzeSymmetry(E);
  R.Sym = symmetrize(E, R.Analysis);
  runPasses(R.Sym, Options);
  R.Naive = lowerNaive(E, /*Concordize=*/true, /*Workspace=*/true,
                       Options.Parallelize);
  R.Optimized = lowerSymmetric(R.Sym);
  return R;
}

} // namespace systec
