//===- core/Codegen.h - C++ source backend --------------------*- C++ -*-===//
///
/// \file
/// Emits a compiled kernel as standalone C++ source over the library's
/// Tensor API. Where the original SySTeC emits Finch IR that Finch
/// lowers to Julia, this backend prints the loop nests the plan
/// executor would run — sparse level walkers with lifted triangle
/// bounds, residual conditions, hoisted temporaries, workspaces, lookup
/// tables, and the replication epilogue — as human-readable C++. The
/// output is used for inspection and golden tests; execution in-process
/// goes through runtime/Executor.
///
/// Supported formats: Dense and Sparse levels (the kernels of the
/// paper's evaluation). Structured levels execute through the
/// interpreter but are not printed by this backend.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_CORE_CODEGEN_H
#define SYSTEC_CORE_CODEGEN_H

#include "ir/Kernel.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace systec {

class Tensor;
namespace detail {
class PlanNode;
struct ExecCtx;
} // namespace detail

/// Renders \p K as a C++ function `void <name>(...)` taking the input
/// tensors by const reference and the dense output by reference.
///
/// With \p InlinePreparation (the default) the function materializes
/// its own transposed/split aliases on entry; with it off, the aliases
/// become extra const parameters so callers can prepare once and time
/// only the kernel (the paper excludes data rearrangement from
/// timings).
std::string emitCpp(const Kernel &K, bool InlinePreparation = true);

/// One emitted native translation unit (see emitNativeTU).
struct NativeEmitResult {
  /// Self-contained C++ source exporting the C ABI entry point
  /// `extern "C" int64_t systec_native_run(const systec_ntensor *,
  /// double *const *, systec_ncounters *)` — the struct layouts mirror
  /// jit/NativeAbi.h. No systec headers are included: the TU compiles
  /// against nothing but <stdint.h>/<math.h>, so cached .so files are
  /// independent of the library version (the content hash covers any
  /// ABI change, which necessarily changes the emitted structs).
  std::string Source;
  /// The distinct operand tensors of the plan in the emitter's
  /// discovery order: the runtime passes one systec_ntensor per entry,
  /// in this order, on every call. Pointers are the plan's current
  /// bindings; jit::PlanNative repatches them on Executor::rebind.
  std::vector<Tensor *> Args;
};

/// Emits the compiled execution plan \p Body as a self-contained C++
/// translation unit with a C ABI entry point taking raw Ptr/Crd/vals
/// level arrays plus extents — the source the JIT engine
/// (jit/NativeKernelCache.h) compiles into a cached .so. The emission
/// is plan-driven: loop bounds, walker drivers, co-walker
/// intersections, expression fold order, and counter accounting are
/// read off the same compiled plan the interpreter executes, so the
/// native body is bit-identical to the interpreter (sequential fold
/// order; parallel decomposition is intentionally not replicated) with
/// exact counter parity. \p Ctx supplies slot counts and access states.
///
/// Fails with a typed Status (never aborts) on plan shapes outside the
/// emitter's coverage — e.g. a replication epilogue inside the body
/// plan; callers fall back to the interpreted/fused engines.
Expected<NativeEmitResult> emitNativeTU(const detail::PlanNode &Body,
                                        const detail::ExecCtx &Ctx,
                                        const std::string &KernelName);

} // namespace systec

#endif // SYSTEC_CORE_CODEGEN_H
