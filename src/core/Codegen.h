//===- core/Codegen.h - C++ source backend --------------------*- C++ -*-===//
///
/// \file
/// Emits a compiled kernel as standalone C++ source over the library's
/// Tensor API. Where the original SySTeC emits Finch IR that Finch
/// lowers to Julia, this backend prints the loop nests the plan
/// executor would run — sparse level walkers with lifted triangle
/// bounds, residual conditions, hoisted temporaries, workspaces, lookup
/// tables, and the replication epilogue — as human-readable C++. The
/// output is used for inspection and golden tests; execution in-process
/// goes through runtime/Executor.
///
/// Supported formats: Dense and Sparse levels (the kernels of the
/// paper's evaluation). Structured levels execute through the
/// interpreter but are not printed by this backend.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_CORE_CODEGEN_H
#define SYSTEC_CORE_CODEGEN_H

#include "ir/Kernel.h"

#include <string>

namespace systec {

/// Renders \p K as a C++ function `void <name>(...)` taking the input
/// tensors by const reference and the dense output by reference.
///
/// With \p InlinePreparation (the default) the function materializes
/// its own transposed/split aliases on entry; with it off, the aliases
/// become extra const parameters so callers can prepare once and time
/// only the kernel (the paper excludes data rearrangement from
/// timings).
std::string emitCpp(const Kernel &K, bool InlinePreparation = true);

} // namespace systec

#endif // SYSTEC_CORE_CODEGEN_H
