//===- core/Analysis.h - Symmetry analysis --------------------*- C++ -*-===//
///
/// \file
/// Identifies the permutable index structure of an einsum (paper Section
/// 4.1 stage 1-2 and the visible/invisible output symmetry taxonomy of
/// Section 3):
///
///  - Every symmetric part (size >= 2) of an input tensor's partition
///    contributes a *chain* of permutable indices, ordered so that the
///    monotone condition p1 <= ... <= pn restricts iteration to the
///    canonical triangle and nests concordantly (innermost loop first).
///  - Index groups under which the right-hand side is invariant (after
///    normalization) also form chains even when no input is symmetric:
///    this is how SSYRK's visible output symmetry and pure contraction
///    invariances are discovered.
///  - Output modes whose indices share a chain carry *visible output
///    symmetry*; the detected output partition drives canonical-output
///    restriction and replication (paper 4.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_CORE_ANALYSIS_H
#define SYSTEC_CORE_ANALYSIS_H

#include "ir/Einsum.h"
#include "symmetry/Partition.h"

#include <map>
#include <string>
#include <vector>

namespace systec {

/// One canonical chain of permutable indices, ascending: the first name
/// is the provably-smallest inside the restricted space and belongs to
/// the innermost loop among them.
struct Chain {
  std::vector<std::string> Names;
};

/// Result of symmetry analysis over one einsum.
struct SymmetryAnalysis {
  std::vector<Chain> Chains;

  /// Partition over the *output access positions* describing visible
  /// output symmetry; Partition::none when the output is not symmetric.
  Partition OutputSymmetry;

  /// Ranking: chain position of each chained index (used by the
  /// normalizer); indices outside chains are absent.
  std::map<std::string, int> IndexRank;

  /// Chain id per index (absent if unchained).
  std::map<std::string, unsigned> ChainOf;

  bool hasSymmetry() const { return !Chains.empty(); }

  /// Human-readable summary for reports and tests.
  std::string str() const;
};

/// Runs the analysis. Loop order comes from the einsum (inner loops
/// earlier in chains). Aborts when two distinct symmetric parts overlap
/// on an index (unsupported joint symmetry).
SymmetryAnalysis analyzeSymmetry(const Einsum &E);

} // namespace systec

#endif // SYSTEC_CORE_ANALYSIS_H
