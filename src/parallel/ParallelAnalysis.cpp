//===- parallel/ParallelAnalysis.cpp --------------------------*- C++ -*-===//

#include "parallel/ParallelAnalysis.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace systec {

namespace {

/// Everything the classifier needs about one loop body.
struct BodyFacts {
  std::string Var;
  /// Tensor name -> one record per assignment.
  struct TensorWrite {
    bool IndexedByVar;
    std::optional<OpKind> Reduce;
  };
  std::map<std::string, std::vector<TensorWrite>> TensorWrites;
  std::map<std::string, std::vector<std::optional<OpKind>>> ScalarWrites;
  std::set<std::string> ScalarDefs;   ///< DefScalar inside the body
  std::set<std::string> TensorReads;  ///< names read on any RHS
  std::set<std::string> ScalarReads;  ///< names read on any RHS
  std::set<std::string> InnerLoopVars;
  std::vector<CmpAtom> OrderAtoms;    ///< a <= b atoms from conditions
  bool SawReplicate = false;
};

void collectScalarReads(const ExprPtr &E, std::set<std::string> &Out) {
  switch (E->kind()) {
  case ExprKind::Scalar:
    Out.insert(E->scalarName());
    return;
  case ExprKind::Call:
    for (const ExprPtr &A : E->args())
      collectScalarReads(A, Out);
    return;
  default:
    return;
  }
}

void collectRhs(const ExprPtr &Rhs, BodyFacts &F) {
  std::vector<ExprPtr> Accesses;
  Expr::collectAccesses(Rhs, Accesses);
  for (const ExprPtr &A : Accesses)
    F.TensorReads.insert(A->tensorName());
  collectScalarReads(Rhs, F.ScalarReads);
}

void collectAtoms(const Cond &C, BodyFacts &F) {
  for (const Conj &D : C.disjuncts())
    for (const CmpAtom &A : D.Atoms) {
      CmpAtom Norm = A;
      if (Norm.Kind == CmpKind::GT || Norm.Kind == CmpKind::GE) {
        std::swap(Norm.Lhs, Norm.Rhs);
        Norm.Kind = Norm.Kind == CmpKind::GT ? CmpKind::LT : CmpKind::LE;
      }
      if (Norm.Kind == CmpKind::LT || Norm.Kind == CmpKind::LE)
        F.OrderAtoms.push_back(Norm);
    }
}

void collectBody(const StmtPtr &S, BodyFacts &F) {
  switch (S->kind()) {
  case StmtKind::Block:
    for (const StmtPtr &C : S->stmts())
      collectBody(C, F);
    return;
  case StmtKind::Loop:
    F.InnerLoopVars.insert(S->loopIndex());
    collectBody(S->body(), F);
    return;
  case StmtKind::If:
    collectAtoms(S->condition(), F);
    collectBody(S->body(), F);
    return;
  case StmtKind::DefScalar:
    F.ScalarDefs.insert(S->scalarName());
    collectRhs(S->rhs(), F);
    return;
  case StmtKind::Assign: {
    collectRhs(S->rhs(), F);
    const ExprPtr &Lhs = S->lhs();
    if (Lhs->kind() == ExprKind::Scalar) {
      F.ScalarWrites[Lhs->scalarName()].push_back(S->reduceOp());
    } else {
      const std::vector<std::string> &Idx = Lhs->indices();
      bool Indexed =
          std::find(Idx.begin(), Idx.end(), F.Var) != Idx.end();
      F.TensorWrites[Lhs->tensorName()].push_back(
          BodyFacts::TensorWrite{Indexed, S->reduceOp()});
    }
    return;
  }
  case StmtKind::Replicate:
    F.SawReplicate = true;
    return;
  }
}

/// Distinct variables transitively ordered below/above \p Var through
/// the collected a <= b atoms, restricted to \p Allowed.
unsigned reachCount(const std::vector<CmpAtom> &Atoms,
                    const std::string &Var,
                    const std::set<std::string> &Allowed, bool Below) {
  std::set<std::string> Seen{Var};
  std::vector<std::string> Work{Var};
  while (!Work.empty()) {
    std::string Cur = Work.back();
    Work.pop_back();
    for (const CmpAtom &A : Atoms) {
      const std::string &From = Below ? A.Rhs : A.Lhs;
      const std::string &To = Below ? A.Lhs : A.Rhs;
      if (From == Cur && Seen.insert(To).second)
        Work.push_back(To);
    }
  }
  unsigned N = 0;
  for (const std::string &V : Seen)
    if (V != Var && Allowed.count(V))
      ++N;
  return N;
}

} // namespace

LoopParallelism analyzeLoopParallelism(const StmtPtr &Loop) {
  assert(Loop->kind() == StmtKind::Loop && "expects a loop");
  LoopParallelism LP;
  BodyFacts F;
  F.Var = Loop->loopIndex();
  collectBody(Loop->body(), F);

  if (F.SawReplicate)
    return LP; // replication touches the whole output; keep sequential

  // Tensor targets.
  for (const auto &[Name, Writes] : F.TensorWrites) {
    bool AllIndexed = true, AllReduce = true;
    std::optional<OpKind> Op;
    bool OpConsistent = true;
    for (const BodyFacts::TensorWrite &W : Writes) {
      AllIndexed &= W.IndexedByVar;
      if (!W.Reduce) {
        AllReduce = false;
      } else if (!Op) {
        Op = W.Reduce;
      } else if (*Op != *W.Reduce) {
        OpConsistent = false;
      }
    }
    if (F.TensorReads.count(Name))
      return LP; // cross-iteration read/write dependence possible
    if (AllIndexed) {
      LP.Tensors[Name] = WriteClass::Disjoint;
    } else if (AllReduce && OpConsistent && Op &&
               opInfo(*Op).Associative) {
      LP.Tensors[Name] = WriteClass::Reduction;
      LP.TensorMergeOps[Name] = *Op;
    } else {
      return LP; // shared overwrite or mixed-operator reduction
    }
  }

  // Scalar targets not defined in the body.
  for (const auto &[Name, Writes] : F.ScalarWrites) {
    if (F.ScalarDefs.count(Name))
      continue; // iteration-private temporary
    std::optional<OpKind> Op;
    for (const std::optional<OpKind> &W : Writes) {
      if (!W)
        return LP; // overwrite of a loop-carried scalar
      if (Op && *Op != *W)
        return LP;
      Op = W;
    }
    if (!Op || !opInfo(*Op).Associative)
      return LP;
    if (F.ScalarReads.count(Name))
      return LP; // partial sums must not be observed mid-loop
    LP.ScalarMergeOps[Name] = *Op;
  }

  // Workload shape: canonical-triangle chains below/above this loop.
  unsigned Below = reachCount(F.OrderAtoms, F.Var, F.InnerLoopVars,
                              /*Below=*/true);
  unsigned Above = reachCount(F.OrderAtoms, F.Var, F.InnerLoopVars,
                              /*Below=*/false);
  if (Below > 0 && Above == 0)
    LP.TriangleDepth = static_cast<int>(Below);
  else if (Above > 0 && Below == 0)
    LP.TriangleDepth = -static_cast<int>(Above);

  LP.Safe = true;
  return LP;
}

StmtPtr annotateParallelLoops(const StmtPtr &Root) {
  switch (Root->kind()) {
  case StmtKind::Block: {
    std::vector<StmtPtr> Stmts;
    for (const StmtPtr &C : Root->stmts())
      Stmts.push_back(annotateParallelLoops(C));
    return Stmt::block(std::move(Stmts));
  }
  case StmtKind::If:
    return Stmt::ifThen(Root->condition(),
                        annotateParallelLoops(Root->body()));
  case StmtKind::Loop: {
    LoopParallelism LP = analyzeLoopParallelism(Root);
    StmtPtr L =
        Stmt::loop(Root->loopIndex(), annotateParallelLoops(Root->body()));
    if (LP.Safe)
      L = L->withParallel(
          ParallelAnnotation{true, LP.TriangleDepth});
    return L;
  }
  default:
    return Root;
  }
}

} // namespace systec
