//===- parallel/ThreadPool.cpp --------------------------------*- C++ -*-===//

#include "parallel/ThreadPool.h"

#include "observability/Trace.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace systec {

namespace {
/// Set while a thread is executing pool tasks; nested parallelFor calls
/// from such a thread run inline instead of deadlocking on the batch
/// they are part of.
thread_local bool InPoolTask = false;

/// Pool identities for the thread-local caller-slot cache. Strictly
/// increasing, so a pool constructed at a freed pool's address never
/// matches a cache entry left by its predecessor.
std::atomic<uint64_t> NextPoolEpoch{1};

/// One thread's cached caller registration (pool + epoch validate it;
/// Slot/Id are only meaningful when they match).
struct CallerCache {
  const void *Pool = nullptr;
  uint64_t Epoch = 0;
  void *Slot = nullptr;
  unsigned Id = 0;
};
thread_local CallerCache TlsCaller;
} // namespace

void ThreadPool::ActivitySlot::recordTask(uint64_t DurNs) {
  ExecNs.fetch_add(DurNs, std::memory_order_relaxed);
  Tasks.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(HistMu);
  Hist.add(DurNs);
}

ThreadPool::ActivityCounters ThreadPool::ActivitySlot::read() const {
  ActivityCounters Out;
  Out.WaitNs = WaitNs.load(std::memory_order_relaxed);
  Out.ExecNs = ExecNs.load(std::memory_order_relaxed);
  Out.Tasks = Tasks.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(HistMu);
  Out.TaskNs = Hist;
  return Out;
}

ThreadPool::ActivityCounters
ThreadPool::ActivitySnapshot::callersTotal() const {
  ActivityCounters Out;
  for (const ActivityCounters &C : Callers) {
    Out.WaitNs += C.WaitNs;
    Out.ExecNs += C.ExecNs;
    Out.Tasks += C.Tasks;
    Out.TaskNs.merge(C.TaskNs);
  }
  return Out;
}

ThreadPool::ThreadPool(unsigned WorkerCount)
    : Epoch(NextPoolEpoch.fetch_add(1, std::memory_order_relaxed)) {
  Workers.reserve(WorkerCount);
  for (unsigned W = 0; W < WorkerCount; ++W) {
    Slots.push_back(std::make_unique<ActivitySlot>());
    ActivitySlot *Slot = Slots.back().get();
    Workers.emplace_back([this, W, Slot] { workerLoop(W, *Slot); });
  }
  NumWorkers.store(WorkerCount, std::memory_order_release);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::workerLoop(unsigned Id, ActivitySlot &Slot) {
  obs::setThreadName("worker-" + std::to_string(Id));
  uint64_t SeenGeneration = 0;
  uint64_t IdleFrom = obs::nowNs();
  while (true) {
    std::shared_ptr<Batch> B;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WakeCv.wait(Lock, [&] {
        return Stopping || (Generation != SeenGeneration && Cur);
      });
      if (Stopping)
        return;
      SeenGeneration = Generation;
      B = Cur;
    }
    // WAIT scope: only the stretch after the batch opened counts
    // (idling between batches is not starvation).
    const uint64_t Woke = obs::nowNs();
    const uint64_t WaitFrom = std::max(IdleFrom, B->OpenNs);
    if (Woke > WaitFrom) {
      Slot.WaitNs.fetch_add(Woke - WaitFrom, std::memory_order_relaxed);
      if (obs::tracingEnabled())
        obs::emitSpan("wait", "pool", WaitFrom, Woke - WaitFrom);
    }
    // EXECUTE scope, per claimed task.
    InPoolTask = true;
    unsigned Finished = 0;
    for (unsigned T = B->Next.fetch_add(1, std::memory_order_relaxed);
         T < B->Tasks;
         T = B->Next.fetch_add(1, std::memory_order_relaxed)) {
      // A tripped stop predicate drains the index without running the
      // body; it still counts as finished below (Pending accounting
      // requires every claimed index reported exactly once).
      if (B->Stop && (*B->Stop)()) {
        ++Finished;
        continue;
      }
      const uint64_t T0 = obs::nowNs();
      (*B->Fn)(T);
      const uint64_t T1 = obs::nowNs();
      Slot.recordTask(T1 - T0);
      if (obs::tracingEnabled())
        obs::emitSpan("task", "pool", T0, T1 - T0,
                      static_cast<int64_t>(T),
                      static_cast<int64_t>(B->Tasks));
      ++Finished;
    }
    InPoolTask = false;
    IdleFrom = obs::nowNs();
    if (Finished) {
      std::lock_guard<std::mutex> Lock(Mu);
      Pending -= Finished;
      if (Pending == 0)
        DoneCv.notify_all();
    }
  }
}

ThreadPool::ActivitySlot &ThreadPool::callerSlot() {
  if (TlsCaller.Pool == this && TlsCaller.Epoch == Epoch)
    return *static_cast<ActivitySlot *>(TlsCaller.Slot);
  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, New] = CallerIds.insert(
      {std::this_thread::get_id(), static_cast<unsigned>(CallerSlots.size())});
  if (New)
    CallerSlots.push_back(std::make_unique<ActivitySlot>());
  ActivitySlot *Slot = CallerSlots[It->second].get();
  TlsCaller = CallerCache{this, Epoch, Slot, It->second};
  return *Slot;
}

unsigned ThreadPool::currentCallerId() {
  callerSlot();
  return TlsCaller.Id;
}

unsigned ThreadPool::runTasks(Batch &B,
                              const std::function<void(unsigned)> &Fn,
                              ActivitySlot &Caller) {
  unsigned Finished = 0;
  for (unsigned T = B.Next.fetch_add(1, std::memory_order_relaxed);
       T < B.Tasks; T = B.Next.fetch_add(1, std::memory_order_relaxed)) {
    if (B.Stop && (*B.Stop)()) {
      ++Finished;
      continue;
    }
    const uint64_t T0 = obs::nowNs();
    Fn(T);
    const uint64_t T1 = obs::nowNs();
    Caller.recordTask(T1 - T0);
    if (obs::tracingEnabled())
      obs::emitSpan("task", "pool", T0, T1 - T0, static_cast<int64_t>(T),
                    static_cast<int64_t>(B.Tasks));
    ++Finished;
  }
  return Finished;
}

void ThreadPool::parallelFor(unsigned Tasks,
                             const std::function<void(unsigned)> &Fn,
                             const std::function<bool()> *Stop) {
  if (Tasks == 0)
    return;
  if (Tasks == 1 || workerCount() == 0 || InPoolTask) {
    // Inline: trivial batch, no workers, or nested call from a task.
    // Nested calls keep their time out of the caller slot — it is
    // already inside an accounted task of the enclosing batch.
    if (InPoolTask) {
      for (unsigned T = 0; T < Tasks; ++T) {
        if (Stop && (*Stop)())
          break;
        Fn(T);
      }
      return;
    }
    Batch B;
    B.Fn = &Fn;
    B.Stop = Stop;
    B.Tasks = Tasks;
    runTasks(B, Fn, callerSlot());
    return;
  }
  ActivitySlot &Caller = callerSlot();
  auto B = std::make_shared<Batch>();
  B->Fn = &Fn;
  B->Stop = Stop;
  B->Tasks = Tasks;
  // FIFO admission: draw a ticket, publish when served. The queue wait
  // (arrival -> publication) is caller WAIT — under concurrent
  // submitters it is exactly the time this request spent waiting for
  // other requests' batches, which the per-caller slots keep truthful.
  const uint64_t Q0 = obs::nowNs();
  {
    std::unique_lock<std::mutex> Lock(Mu);
    const uint64_t MyTicket = TicketNext++;
    TicketCv.wait(Lock, [&] { return TicketServing == MyTicket; });
    assert(Pending == 0 && "overlapping parallelFor batches");
    B->OpenNs = obs::nowNs();
    Cur = B;
    Pending = Tasks;
    ++Generation;
  }
  if (B->OpenNs > Q0)
    Caller.WaitNs.fetch_add(B->OpenNs - Q0, std::memory_order_relaxed);
  WakeCv.notify_all();

  // The caller participates too.
  InPoolTask = true;
  unsigned Finished = runTasks(*B, Fn, Caller);
  InPoolTask = false;

  // The caller's completion wait is its WAIT scope.
  const uint64_t W0 = obs::nowNs();
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Pending -= Finished;
    if (Pending == 0)
      DoneCv.notify_all();
    DoneCv.wait(Lock, [&] { return Pending == 0; });
    Cur.reset();
    ++TicketServing;
  }
  TicketCv.notify_all();
  const uint64_t W1 = obs::nowNs();
  if (W1 > W0)
    Caller.WaitNs.fetch_add(W1 - W0, std::memory_order_relaxed);
  if (obs::tracingEnabled()) {
    obs::emitSpan("wait", "pool", W0, W1 - W0);
    obs::emitSpan("batch", "pool", B->OpenNs, W1 - B->OpenNs,
                  static_cast<int64_t>(Tasks));
  }
}

ThreadPool::ActivitySnapshot ThreadPool::activitySnapshot() const {
  ActivitySnapshot Out;
  std::lock_guard<std::mutex> Lock(Mu);
  Out.Workers.reserve(Slots.size());
  for (const std::unique_ptr<ActivitySlot> &S : Slots)
    Out.Workers.push_back(S->read());
  Out.Callers.reserve(CallerSlots.size());
  for (const std::unique_ptr<ActivitySlot> &S : CallerSlots)
    Out.Callers.push_back(S->read());
  return Out;
}

void ThreadPool::ensureWorkers(unsigned Want) {
  std::lock_guard<std::mutex> Lock(Mu);
  while (Workers.size() < Want) {
    Slots.push_back(std::make_unique<ActivitySlot>());
    ActivitySlot *Slot = Slots.back().get();
    const unsigned Id = static_cast<unsigned>(Workers.size());
    Workers.emplace_back([this, Id, Slot] { workerLoop(Id, *Slot); });
  }
  NumWorkers.store(static_cast<unsigned>(Workers.size()),
                   std::memory_order_release);
}

ThreadPool &ThreadPool::global() {
  // Leaked on purpose: worker threads may outlive static destruction
  // order, and the pool is idle at exit anyway.
  static ThreadPool *Pool = [] {
    unsigned HW = std::thread::hardware_concurrency();
    return new ThreadPool(HW > 1 ? HW - 1 : 0);
  }();
  return *Pool;
}

void ThreadPool::ensureGlobalThreads(unsigned Threads) {
  global().ensureWorkers(Threads > 0 ? Threads - 1 : 0);
}

} // namespace systec
