//===- parallel/ThreadPool.cpp --------------------------------*- C++ -*-===//

#include "parallel/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace systec {

namespace {
/// Set while a thread is executing pool tasks; nested parallelFor calls
/// from such a thread run inline instead of deadlocking on the batch
/// they are part of.
thread_local bool InPoolTask = false;
} // namespace

ThreadPool::ThreadPool(unsigned WorkerCount) {
  Workers.reserve(WorkerCount);
  for (unsigned W = 0; W < WorkerCount; ++W)
    Workers.emplace_back([this] { workerLoop(); });
  NumWorkers.store(WorkerCount, std::memory_order_release);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  while (true) {
    std::shared_ptr<Batch> B;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WakeCv.wait(Lock, [&] {
        return Stopping || (Generation != SeenGeneration && Cur);
      });
      if (Stopping)
        return;
      SeenGeneration = Generation;
      B = Cur;
    }
    InPoolTask = true;
    unsigned Finished = 0;
    for (unsigned T = B->Next.fetch_add(1, std::memory_order_relaxed);
         T < B->Tasks;
         T = B->Next.fetch_add(1, std::memory_order_relaxed)) {
      (*B->Fn)(T);
      ++Finished;
    }
    InPoolTask = false;
    if (Finished) {
      std::lock_guard<std::mutex> Lock(Mu);
      Pending -= Finished;
      if (Pending == 0)
        DoneCv.notify_all();
    }
  }
}

void ThreadPool::parallelFor(unsigned Tasks,
                             const std::function<void(unsigned)> &Fn) {
  if (Tasks == 0)
    return;
  if (Tasks == 1 || workerCount() == 0 || InPoolTask) {
    // Inline: trivial batch, no workers, or nested call from a task.
    for (unsigned T = 0; T < Tasks; ++T)
      Fn(T);
    return;
  }
  std::lock_guard<std::mutex> SubmitLock(SubmitMu);
  auto B = std::make_shared<Batch>();
  B->Fn = &Fn;
  B->Tasks = Tasks;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Pending == 0 && "overlapping parallelFor batches");
    Cur = B;
    Pending = Tasks;
    ++Generation;
  }
  WakeCv.notify_all();

  // The caller participates too.
  InPoolTask = true;
  unsigned Finished = 0;
  for (unsigned T = B->Next.fetch_add(1, std::memory_order_relaxed);
       T < Tasks; T = B->Next.fetch_add(1, std::memory_order_relaxed)) {
    Fn(T);
    ++Finished;
  }
  InPoolTask = false;

  std::unique_lock<std::mutex> Lock(Mu);
  Pending -= Finished;
  if (Pending == 0)
    DoneCv.notify_all();
  DoneCv.wait(Lock, [&] { return Pending == 0; });
  Cur.reset();
}

void ThreadPool::ensureWorkers(unsigned Want) {
  std::lock_guard<std::mutex> Lock(Mu);
  while (Workers.size() < Want)
    Workers.emplace_back([this] { workerLoop(); });
  NumWorkers.store(static_cast<unsigned>(Workers.size()),
                   std::memory_order_release);
}

ThreadPool &ThreadPool::global() {
  // Leaked on purpose: worker threads may outlive static destruction
  // order, and the pool is idle at exit anyway.
  static ThreadPool *Pool = [] {
    unsigned HW = std::thread::hardware_concurrency();
    return new ThreadPool(HW > 1 ? HW - 1 : 0);
  }();
  return *Pool;
}

void ThreadPool::ensureGlobalThreads(unsigned Threads) {
  global().ensureWorkers(Threads > 0 ? Threads - 1 : 0);
}

} // namespace systec
