//===- parallel/Schedule.cpp ----------------------------------*- C++ -*-===//

#include "parallel/Schedule.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace systec {

const char *schedulePolicyName(SchedulePolicy P) {
  switch (P) {
  case SchedulePolicy::Auto:
    return "auto";
  case SchedulePolicy::Static:
    return "static";
  case SchedulePolicy::Dynamic:
    return "dynamic";
  case SchedulePolicy::TriangleBalanced:
    return "triangle";
  }
  return "?";
}

std::vector<ChunkRange> staticBlocks(int64_t Lo, int64_t Hi,
                                     unsigned Chunks) {
  std::vector<ChunkRange> Out;
  if (Lo > Hi || Chunks == 0)
    return Out;
  const int64_t N = Hi - Lo + 1;
  const int64_t C = std::min<int64_t>(Chunks, N);
  Out.reserve(C);
  for (int64_t K = 0; K < C; ++K) {
    // Boundaries by rounded proportion; consecutive and exhaustive.
    int64_t B = Lo + (N * K) / C;
    int64_t E = Lo + (N * (K + 1)) / C - 1;
    Out.push_back({B, E});
  }
  return Out;
}

std::vector<ChunkRange> dynamicChunks(int64_t Lo, int64_t Hi,
                                      unsigned Threads,
                                      unsigned Oversubscribe) {
  return staticBlocks(Lo, Hi,
                      std::max(1u, Threads) * std::max(1u, Oversubscribe));
}

double triangleWeight(const ChunkRange &C, int64_t Lo, int64_t Hi,
                      int TriDepth) {
  double W = 0;
  for (int64_t V = C.Lo; V <= C.Hi; ++V) {
    double Base = TriDepth >= 0 ? static_cast<double>(V - Lo + 1)
                                : static_cast<double>(Hi - V + 1);
    W += std::pow(Base, std::abs(TriDepth));
  }
  return W;
}

std::vector<ChunkRange> triangleBalanced(int64_t Lo, int64_t Hi,
                                         unsigned Chunks, int TriDepth) {
  if (TriDepth == 0)
    return staticBlocks(Lo, Hi, Chunks);
  std::vector<ChunkRange> Out;
  if (Lo > Hi || Chunks == 0)
    return Out;
  const int64_t N = Hi - Lo + 1;
  const int64_t C = std::min<int64_t>(Chunks, N);
  const int D = std::abs(TriDepth);

  // Equal-weight boundaries via the continuous model: the cumulative
  // weight of the first x coordinates is ~ x^(d+1)/(d+1), so the k-th
  // boundary sits at N * (k/C)^(1/(d+1)) from the light end. Exact
  // enough for balancing (tests assert <= ~15% spread) and O(C).
  std::vector<int64_t> Sizes(C);
  int64_t Prev = 0;
  for (int64_t K = 1; K <= C; ++K) {
    double Frac = std::pow(static_cast<double>(K) / C,
                           1.0 / (D + 1));
    // Clamp so every chunk (including the ones still to come) keeps at
    // least one coordinate.
    int64_t At = K == C ? N
                        : std::clamp<int64_t>(std::llround(Frac * N),
                                              Prev + 1, N - (C - K));
    Sizes[K - 1] = At - Prev;
    Prev = At;
  }
  // Ascending work: light chunks (large spans) come first. Descending:
  // mirror so the wide chunks cover the light tail.
  if (TriDepth < 0)
    std::reverse(Sizes.begin(), Sizes.end());
  int64_t B = Lo;
  for (int64_t K = 0; K < C; ++K) {
    Out.push_back({B, B + Sizes[K] - 1});
    B += Sizes[K];
  }
  assert(B == Hi + 1 && "triangle chunks must tile the range");
  return Out;
}

} // namespace systec
