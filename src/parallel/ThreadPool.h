//===- parallel/ThreadPool.h - Persistent worker pool ---------*- C++ -*-===//
///
/// \file
/// A persistent pool of worker threads shared by every Executor in the
/// process. Work is submitted as a batch of identically-shaped tasks
/// (parallelFor); workers and the calling thread claim task indices
/// from a shared atomic counter, which gives dynamic load balancing
/// ("stealing" from the common queue) without per-task allocation.
///
/// Determinism contract: task *indices* fully determine the work and
/// any privatized accumulator a task uses. Which OS thread executes a
/// task is scheduling-dependent and intentionally carries no semantic
/// weight, so results are reproducible for a fixed task decomposition
/// even under dynamic scheduling.
///
/// parallelFor is not reentrant: a call from inside a worker task runs
/// the nested batch inline on the calling thread (nested kernel
/// parallelism is statically disabled by the plan compiler; this is the
/// runtime backstop).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_PARALLEL_THREADPOOL_H
#define SYSTEC_PARALLEL_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace systec {

class ThreadPool {
public:
  /// Creates \p Workers background threads (0 is valid: every batch
  /// then runs inline on the caller).
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const {
    return NumWorkers.load(std::memory_order_acquire);
  }

  /// Grows the pool to at least \p Want workers (never shrinks). Safe
  /// to call between batches; the singleton is never replaced, so
  /// references held by compiled plans stay valid.
  void ensureWorkers(unsigned Want);

  /// Runs Fn(0), ..., Fn(Tasks-1) across the workers and the calling
  /// thread; returns when every task has finished. Task order is
  /// unspecified; each index runs exactly once. Concurrent calls from
  /// different threads serialize on a submission lock.
  void parallelFor(unsigned Tasks, const std::function<void(unsigned)> &Fn);

  /// The process-wide pool, created on first use with
  /// hardware_concurrency() - 1 workers.
  static ThreadPool &global();

  /// Grows the global pool so batches can use \p Threads participants
  /// (Threads - 1 workers plus the caller). Never shrinks.
  static void ensureGlobalThreads(unsigned Threads);

private:
  /// One submitted batch. The claim counter lives here, not in the
  /// pool, so a worker that wakes late drains an exhausted counter from
  /// the batch it saw instead of misinterpreting a newer batch's state.
  struct Batch {
    const std::function<void(unsigned)> *Fn = nullptr;
    unsigned Tasks = 0;
    std::atomic<unsigned> Next{0};
  };

  void workerLoop();

  std::vector<std::thread> Workers; ///< guarded by Mu
  /// Mirror of Workers.size() readable without Mu (parallelFor checks
  /// it while ensureWorkers may be appending threads).
  std::atomic<unsigned> NumWorkers{0};

  std::mutex SubmitMu; ///< serializes whole batches across callers
  mutable std::mutex Mu;
  std::condition_variable WakeCv;  ///< workers wait for a new batch
  std::condition_variable DoneCv;  ///< caller waits for batch completion
  uint64_t Generation = 0;         ///< bumped per batch
  bool Stopping = false;
  std::shared_ptr<Batch> Cur;      ///< batch being executed, if any
  unsigned Pending = 0; ///< unfinished tasks of Cur (guarded by Mu)
};

} // namespace systec

#endif // SYSTEC_PARALLEL_THREADPOOL_H
