//===- parallel/ThreadPool.h - Persistent worker pool ---------*- C++ -*-===//
///
/// \file
/// A persistent pool of worker threads shared by every Executor in the
/// process. Work is submitted as a batch of identically-shaped tasks
/// (parallelFor); workers and the calling thread claim task indices
/// from a shared atomic counter, which gives dynamic load balancing
/// ("stealing" from the common queue) without per-task allocation.
///
/// Determinism contract: task *indices* fully determine the work and
/// any privatized accumulator a task uses. Which OS thread executes a
/// task is scheduling-dependent and intentionally carries no semantic
/// weight, so results are reproducible for a fixed task decomposition
/// even under dynamic scheduling.
///
/// parallelFor is not reentrant: a call from inside a worker task runs
/// the nested batch inline on the calling thread (nested kernel
/// parallelism is statically disabled by the plan compiler; this is the
/// runtime backstop).
///
/// Observability: every participant keeps always-on WAIT/EXECUTE
/// activity counters in the style of the NBS executor — per-worker
/// busy time, in-batch wait time, task counts, and a log-bucketed
/// histogram of task durations — snapshotted by activitySnapshot() and
/// windowed per run by the Executor's report. Wait is attributed only
/// from the instant a batch opens (an idle pool waiting between
/// batches is not "starved"). Each submitting thread gets its own
/// caller slot (registered on first submission, id returned by
/// currentCallerId()), so concurrent requests see their own task
/// execution, submission-queue wait, and completion wait instead of
/// one pooled bucket. When tracing is enabled (observability/Trace.h),
/// workers additionally emit wait/task spans and the caller emits one
/// batch span.
///
/// Fairness: batches from different submitting threads are serialized
/// in strict arrival order (a ticket queue), so many concurrent
/// requests interleave at batch granularity instead of one caller
/// winning a mutex convoy. The fairness unit is one batch: a request
/// that decomposes its loops into batches shares the pool
/// round-robin-by-arrival with every other in-flight request.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_PARALLEL_THREADPOOL_H
#define SYSTEC_PARALLEL_THREADPOOL_H

#include "observability/Histogram.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace systec {

class ThreadPool {
public:
  /// Plain-value activity of one pool participant since process start
  /// (window two snapshots to measure a run).
  struct ActivityCounters {
    uint64_t WaitNs = 0; ///< in-batch wait (batch open -> first claim,
                         ///< and the caller's completion wait)
    uint64_t ExecNs = 0; ///< time inside task bodies
    uint64_t Tasks = 0;
    obs::LogHistogram TaskNs; ///< log2-bucketed task durations
  };
  struct ActivitySnapshot {
    std::vector<ActivityCounters> Workers; ///< index = worker id
    /// One entry per submitting thread, indexed by the caller id
    /// returned by currentCallerId(). A thread that never submitted
    /// has no entry; entries never move once assigned, so windowing
    /// two snapshots by index is exact.
    std::vector<ActivityCounters> Callers;

    /// All caller slots pooled (the pre-per-caller aggregate view).
    ActivityCounters callersTotal() const;
  };

  /// Creates \p Workers background threads (0 is valid: every batch
  /// then runs inline on the caller).
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const {
    return NumWorkers.load(std::memory_order_acquire);
  }

  /// Grows the pool to at least \p Want workers (never shrinks). Safe
  /// to call between batches; the singleton is never replaced, so
  /// references held by compiled plans stay valid.
  void ensureWorkers(unsigned Want);

  /// Runs Fn(0), ..., Fn(Tasks-1) across the workers and the calling
  /// thread; returns when every task has finished. Task order is
  /// unspecified; each index runs exactly once. Concurrent calls from
  /// different threads serialize on a submission lock.
  void parallelFor(unsigned Tasks, const std::function<void(unsigned)> &Fn) {
    parallelFor(Tasks, Fn, nullptr);
  }

  /// parallelFor with a cooperative stop predicate, polled at every
  /// task-claim boundary: once \p Stop returns true, remaining
  /// unclaimed indices are drained without invoking Fn (tasks already
  /// inside Fn run to completion — cancellation never interrupts a
  /// body mid-flight). Drained indices still count toward batch
  /// completion, so the call returns normally. \p Stop must stay valid
  /// until the call returns and be safe to invoke from any participant
  /// thread; null behaves exactly like the two-argument overload.
  void parallelFor(unsigned Tasks, const std::function<void(unsigned)> &Fn,
                   const std::function<bool()> *Stop);

  /// Copies every participant's activity counters. Safe to call while
  /// batches run (counters are atomics; histograms are read under
  /// their per-slot mutex), so a concurrent executor's report sees a
  /// consistent-enough window for timing purposes.
  ActivitySnapshot activitySnapshot() const;

  /// The calling thread's caller-slot index in ActivitySnapshot::
  /// Callers, registering the thread on first use. Stable for the
  /// thread's lifetime; an executor windows exactly its own slot, so
  /// concurrent submitters never pollute each other's wait/execute
  /// split.
  unsigned currentCallerId();

  /// The process-wide pool, created on first use with
  /// hardware_concurrency() - 1 workers.
  static ThreadPool &global();

  /// Grows the global pool so batches can use \p Threads participants
  /// (Threads - 1 workers plus the caller). Never shrinks.
  static void ensureGlobalThreads(unsigned Threads);

private:
  /// One submitted batch. The claim counter lives here, not in the
  /// pool, so a worker that wakes late drains an exhausted counter from
  /// the batch it saw instead of misinterpreting a newer batch's state.
  struct Batch {
    const std::function<void(unsigned)> *Fn = nullptr;
    /// Optional cancellation predicate; claimed indices are drained
    /// (counted finished, Fn skipped) once it fires.
    const std::function<bool()> *Stop = nullptr;
    unsigned Tasks = 0;
    std::atomic<unsigned> Next{0};
    uint64_t OpenNs = 0; ///< obs::nowNs() at submission (wait anchor)
  };

  /// One participant's accounting. The owner updates the atomics with
  /// relaxed stores; the histogram is guarded by its own mutex (locked
  /// once per task by the owner, and by snapshot readers), so the hot
  /// claim loop never contends.
  struct ActivitySlot {
    std::atomic<uint64_t> WaitNs{0};
    std::atomic<uint64_t> ExecNs{0};
    std::atomic<uint64_t> Tasks{0};
    mutable std::mutex HistMu;
    obs::LogHistogram Hist; ///< guarded by HistMu

    void recordTask(uint64_t DurNs);
    ActivityCounters read() const;
  };

  void workerLoop(unsigned Id, ActivitySlot &Slot);
  /// The caller's claim loop plus its activity/trace accounting;
  /// shared by the inline and pooled paths of parallelFor. Charges
  /// \p Caller, the submitting thread's own slot.
  unsigned runTasks(Batch &B, const std::function<void(unsigned)> &Fn,
                    ActivitySlot &Caller);
  /// The calling thread's caller slot, registering it on first use.
  /// Cached thread-locally (validated against the pool's epoch, so a
  /// reused pool address never resurrects a stale slot); the slow path
  /// takes Mu once per (thread, pool).
  ActivitySlot &callerSlot();

  std::vector<std::thread> Workers; ///< guarded by Mu
  /// Per-worker activity; parallel to Workers. Slots are heap-stable
  /// (workers hold direct references), only the vector itself is
  /// guarded by Mu.
  std::vector<std::unique_ptr<ActivitySlot>> Slots;
  /// Per-submitting-thread activity, indexed by caller id; heap-stable
  /// like Slots, vector + id map guarded by Mu.
  std::vector<std::unique_ptr<ActivitySlot>> CallerSlots;
  std::map<std::thread::id, unsigned> CallerIds; ///< guarded by Mu
  /// Process-unique pool identity for the thread-local caller cache
  /// (distinguishes a new pool constructed at a freed pool's address).
  const uint64_t Epoch;
  /// Mirror of Workers.size() readable without Mu (parallelFor checks
  /// it while ensureWorkers may be appending threads).
  std::atomic<unsigned> NumWorkers{0};

  mutable std::mutex Mu;
  std::condition_variable WakeCv;  ///< workers wait for a new batch
  std::condition_variable DoneCv;  ///< caller waits for batch completion
  /// FIFO submission tickets (guarded by Mu): a submitter draws
  /// TicketNext and publishes its batch when TicketServing reaches it,
  /// so concurrent callers interleave batches in arrival order.
  std::condition_variable TicketCv;
  uint64_t TicketNext = 0;
  uint64_t TicketServing = 0;
  uint64_t Generation = 0;         ///< bumped per batch
  bool Stopping = false;
  std::shared_ptr<Batch> Cur;      ///< batch being executed, if any
  unsigned Pending = 0; ///< unfinished tasks of Cur (guarded by Mu)
};

} // namespace systec

#endif // SYSTEC_PARALLEL_THREADPOOL_H
