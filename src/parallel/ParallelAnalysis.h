//===- parallel/ParallelAnalysis.h - Loop parallelism analysis *- C++ -*-===//
///
/// \file
/// Decides, per loop of a lowered kernel, whether its iterations can
/// run concurrently and how. A loop over x is parallelizable when every
/// write in its body falls into one of two classes:
///
///  - Disjoint: a tensor whose every assignment in the body carries x
///    in the target index set — different iterations touch different
///    elements, so threads write the shared output directly.
///  - Reduction: a tensor or scalar accumulated with one associative
///    reduction operator whose definition (for scalars) lies outside
///    the body — the runtime gives each task a privatized accumulator
///    initialized to the operator's identity and merges task results
///    in task order ("reduction privatization", cf. Bik et al.,
///    Compiler Support for Sparse Tensor Computations in MLIR).
///
/// Anything else — overwrites of shared elements, reads of a written
/// tensor, replication statements — blocks parallelization of that
/// loop (inner loops are still considered).
///
/// The analysis also classifies the workload shape: canonical-triangle
/// conditions (inner <= x chains produced by the symmetry passes) make
/// the work under x grow polynomially, which the annotation records so
/// the scheduler can pick triangle-balanced partitioning.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_PARALLEL_PARALLELANALYSIS_H
#define SYSTEC_PARALLEL_PARALLELANALYSIS_H

#include "ir/Stmt.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace systec {

/// How one write target behaves under parallelization of a given loop.
enum class WriteClass {
  Disjoint,  ///< every write indexed by the loop variable
  Reduction, ///< privatize and merge with the recorded operator
};

/// The parallelization contract for one loop.
struct LoopParallelism {
  bool Safe = false;
  /// Tensor targets written in the body: name -> class; Reduction
  /// entries also appear in MergeOps.
  std::map<std::string, WriteClass> Tensors;
  /// Merge operator per privatized tensor target.
  std::map<std::string, OpKind> TensorMergeOps;
  /// Scalar slots accumulated in the body but defined outside it:
  /// name -> merge operator. (Scalars defined inside the body are
  /// iteration-private and need no treatment.)
  std::map<std::string, OpKind> ScalarMergeOps;
  /// Workload shape (see ParallelAnnotation::TriangleDepth).
  int TriangleDepth = 0;

  bool needsPrivatization() const {
    return !TensorMergeOps.empty() || !ScalarMergeOps.empty();
  }
};

/// Analyzes one Loop statement (kind must be Loop) in isolation.
LoopParallelism analyzeLoopParallelism(const StmtPtr &Loop);

/// Rewrites \p Root, attaching a ParallelAnnotation to every loop that
/// analyzeLoopParallelism accepts. Marks every feasible loop along each
/// nest spine (outer ones included) so the runtime can pick the
/// outermost level whose privatization footprint fits memory; once a
/// loop with no feasible ancestor requirement is found the walk still
/// descends, but the executor only ever activates one level per nest.
StmtPtr annotateParallelLoops(const StmtPtr &Root);

} // namespace systec

#endif // SYSTEC_PARALLEL_PARALLELANALYSIS_H
