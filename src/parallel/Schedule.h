//===- parallel/Schedule.h - Iteration-space partitioning -----*- C++ -*-===//
///
/// \file
/// Chunking policies for parallel loops. A parallel loop's coordinate
/// range [Lo, Hi] is split into contiguous chunks; the thread pool then
/// assigns chunk indices to threads dynamically. Three partitioners:
///
///  - Static block: equal coordinate counts, one chunk per thread.
///  - Dynamic chunk: oversubscribed equal blocks (several per thread)
///    so stragglers rebalance through the pool's shared task counter.
///  - Triangle-balanced: equal *work* for triangular nests. The
///    symmetry passes restrict iteration to the canonical triangle
///    (i1 <= i2 <= ... <= x), so the inner work under outer coordinate
///    x grows like x^d where d is the chain depth; equal coordinate
///    blocks would give the last thread ~d+1 times the mean load.
///    Chunk bounds equalize the cumulative weight sum instead.
///
/// All partitioners are pure functions of (range, chunk count, shape):
/// results never depend on measured time or thread identity, which
/// keeps parallel execution reproducible run to run.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_PARALLEL_SCHEDULE_H
#define SYSTEC_PARALLEL_SCHEDULE_H

#include <cstdint>
#include <string>
#include <vector>

namespace systec {

/// Loop scheduling policy (ExecOptions ablation switch).
enum class SchedulePolicy {
  Auto,    ///< triangle-balanced when the loop is annotated triangular,
           ///< static blocks otherwise
  Static,  ///< equal coordinate blocks, one per thread
  Dynamic, ///< oversubscribed blocks, pool rebalances
  TriangleBalanced, ///< equal-work blocks for triangular nests
};

const char *schedulePolicyName(SchedulePolicy P);

/// One contiguous coordinate chunk (inclusive bounds).
struct ChunkRange {
  int64_t Lo;
  int64_t Hi;
};

/// Splits [Lo, Hi] into at most \p Chunks non-empty equal blocks.
std::vector<ChunkRange> staticBlocks(int64_t Lo, int64_t Hi,
                                     unsigned Chunks);

/// Splits [Lo, Hi] into at most \p Threads * \p Oversubscribe equal
/// blocks for dynamic assignment.
std::vector<ChunkRange> dynamicChunks(int64_t Lo, int64_t Hi,
                                      unsigned Threads,
                                      unsigned Oversubscribe = 4);

/// Splits [Lo, Hi] into at most \p Chunks blocks with equal cumulative
/// weight, where coordinate v weighs (v - Lo + 1)^d for \p TriDepth
/// d > 0 (work grows toward Hi) or (Hi - v + 1)^|d| for d < 0 (work
/// shrinks). d == 0 degenerates to static blocks.
std::vector<ChunkRange> triangleBalanced(int64_t Lo, int64_t Hi,
                                         unsigned Chunks, int TriDepth);

/// The weight of chunk [C.Lo, C.Hi] under the triangle model (used by
/// tests to assert balance).
double triangleWeight(const ChunkRange &C, int64_t Lo, int64_t Hi,
                      int TriDepth);

} // namespace systec

#endif // SYSTEC_PARALLEL_SCHEDULE_H
