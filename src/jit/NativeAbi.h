//===- jit/NativeAbi.h - C ABI between runtime and JIT'd code -*- C++ -*-===//
///
/// \file
/// The C ABI contract between the runtime and a JIT-compiled kernel
/// .so. The emitted translation unit (core/Codegen.h: emitNativeTU) is
/// self-contained — it defines byte-identical copies of these structs
/// rather than including this header, so a cached .so never depends on
/// the library's include tree or version. The duplication is the
/// contract: any layout change here must bump the struct definitions in
/// the emitter too, which changes the emitted source and therefore the
/// content hash — stale cached objects simply miss.
///
/// Layout notes: plain C layout, fixed-width fields, levels top-first
/// (level L of an order-n tensor holds access mode n-1-L, matching
/// tensor/Tensor.h). Pointers borrow the bound tensors' arrays for the
/// duration of one call; the kernel never allocates or frees.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_JIT_NATIVEABI_H
#define SYSTEC_JIT_NATIVEABI_H

#include <cstdint>

namespace systec {
namespace jit {

/// Mirror of tensor/Tensor.h LevelKind, pinned to stable values for the
/// ABI (the emitted code bakes level kinds statically and never reads
/// Kind at runtime; it is carried for debuggability and future probes).
enum NativeLevelKind : int32_t {
  NativeDense = 0,
  NativeSparse = 1,
  NativeRunLength = 2,
  NativeBanded = 3,
};

/// One storage level of one operand (mirrors `systec_nlevel` in the
/// emitted TU). Unused arrays for a kind are null.
struct NativeLevel {
  int32_t Kind = NativeDense;
  int64_t Dim = 0;
  const int64_t *Ptr = nullptr;
  const int64_t *Crd = nullptr;
  const int64_t *RunEnd = nullptr;
  const int64_t *Lo = nullptr;
  const int64_t *Hi = nullptr;
  const int64_t *Off = nullptr;
};

/// One operand tensor (mirrors `systec_ntensor`).
struct NativeTensor {
  int64_t Order = 0;
  const NativeLevel *Levels = nullptr; ///< top-first, Order entries
  const double *Vals = nullptr;
  double Fill = 0.0;
};

/// Counter deltas of one call (mirrors `systec_ncounters`): the four
/// execution counters the native body contributes, matching the
/// interpreter's accounting exactly (support/Counters.h). The caller
/// folds them into its ExecCtx delta block when counters are enabled.
struct NativeCounters {
  int64_t SparseReads = 0;
  int64_t Reductions = 0;
  int64_t ScalarOps = 0;
  int64_t OutputWrites = 0;
};

/// The entry point every emitted TU exports as
/// `extern "C" systec_native_run`. \p Tensors holds one NativeTensor
/// per kernel argument in the emitter's discovery order; \p Outs is the
/// executor's OutPtr table (output id -> value array); \p Counters
/// receives the call's deltas. Returns 0 on success (nonzero reserved).
using NativeKernelFn = int64_t (*)(const NativeTensor *Tensors,
                                   double *const *Outs,
                                   NativeCounters *Counters);

/// The exported symbol name.
inline const char *nativeEntrySymbol() { return "systec_native_run"; }

} // namespace jit
} // namespace systec

#endif // SYSTEC_JIT_NATIVEABI_H
