//===- jit/NativeKernelCache.cpp - Compiled-.so on-disk cache -----------===//

#include "jit/NativeKernelCache.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <dlfcn.h>
#include <unistd.h>

namespace systec {
namespace jit {

namespace {

namespace fs = std::filesystem;

/// Flags the cache compiles with; part of the content hash. No
/// fast-math: the native body must stay bit-identical to the
/// interpreter. -w because the emitted flat-slot style leaves unused
/// variables by design.
const char *compileFlags() { return "-std=c++17 -O2 -fPIC -shared -w"; }

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string fnv1aHex(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// The compiler command: $SYSTEC_JIT_CXX, else the compiler that built
/// the library (baked by CMake), else `c++`.
std::string compilerCommand() {
  if (const char *Env = std::getenv("SYSTEC_JIT_CXX"); Env && *Env)
    return Env;
#ifdef SYSTEC_HOST_CXX
  return SYSTEC_HOST_CXX;
#else
  return "c++";
#endif
}

std::string defaultCacheDir() {
  const char *Tmp = std::getenv("TMPDIR");
  std::string Base = Tmp && *Tmp ? Tmp : "/tmp";
  return Base + "/systec-jit-cache-" + std::to_string(getuid());
}

std::string readFirstLine(const std::string &Path) {
  std::ifstream In(Path);
  std::string Line;
  std::getline(In, Line);
  return Line;
}

std::string readTail(const std::string &Path, size_t MaxBytes = 2000) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string All = SS.str();
  if (All.size() > MaxBytes)
    All = "..." + All.substr(All.size() - MaxBytes);
  return All;
}

/// One-time probe of the host compiler: runs `--version`, remembers
/// availability and the identification line. Cached per process (the
/// compiler does not come and go); the SYSTEC_JIT_DISABLE escape hatch
/// is checked dynamically by callers so tests can flip it per case.
struct ToolchainProbe {
  bool Available = false;
  std::string Command;
  std::string Id;
  std::string Reason;
};

const ToolchainProbe &probeToolchain() {
  static const ToolchainProbe P = [] {
    ToolchainProbe T;
    T.Command = compilerCommand();
    std::string Out =
        defaultCacheDir() + "/probe-" + std::to_string(getpid()) + ".txt";
    std::error_code EC;
    fs::create_directories(fs::path(Out).parent_path(), EC);
    std::string Cmd =
        "\"" + T.Command + "\" --version > \"" + Out + "\" 2>&1";
    int Rc = std::system(Cmd.c_str());
    if (Rc != 0) {
      T.Reason = "host compiler '" + T.Command +
                 "' not runnable (--version exited " + std::to_string(Rc) +
                 ")";
    } else {
      T.Id = readFirstLine(Out);
      T.Available = !T.Id.empty();
      if (!T.Available)
        T.Reason = "host compiler '" + T.Command +
                   "' produced no version banner";
    }
    fs::remove(Out, EC);
    return T;
  }();
  return P;
}

bool jitDisabled() {
  const char *Env = std::getenv("SYSTEC_JIT_DISABLE");
  return Env && *Env && std::string(Env) != "0";
}

} // namespace

NativeKernelCache &NativeKernelCache::instance() {
  static NativeKernelCache C;
  return C;
}

bool NativeKernelCache::compilerAvailable(std::string *Reason) {
  if (jitDisabled()) {
    if (Reason)
      *Reason = "JIT disabled by SYSTEC_JIT_DISABLE";
    return false;
  }
  const ToolchainProbe &P = probeToolchain();
  if (!P.Available && Reason)
    *Reason = P.Reason;
  return P.Available;
}

std::string NativeKernelCache::compilerId() {
  const ToolchainProbe &P = probeToolchain();
  return P.Available ? P.Id : std::string();
}

void NativeKernelCache::dropHandles() {
  std::lock_guard<std::mutex> Lock(Mu);
  Handles.clear();
}

Expected<NativeKernelCache::Loaded>
NativeKernelCache::load(const std::string &Source,
                        const std::string &CacheDir) {
  std::string Reason;
  if (!compilerAvailable(&Reason))
    return Status::error(ErrCode::ResourceExhausted, Reason)
        .withContext("native kernel cache");

  const ToolchainProbe &P = probeToolchain();
  const std::string Hash =
      fnv1aHex(Source + '\0' + P.Id + '\0' + compileFlags());

  std::lock_guard<std::mutex> Lock(Mu);
  if (auto It = Handles.find(Hash); It != Handles.end()) {
    Loaded L = It->second;
    L.CompileNs = 0; // registry hit: nothing compiled for this load
    return L;
  }

  std::string Dir = CacheDir;
  if (Dir.empty())
    if (const char *Env = std::getenv("SYSTEC_JIT_CACHE_DIR"); Env && *Env)
      Dir = Env;
  if (Dir.empty())
    Dir = defaultCacheDir();
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return Status::error(ErrCode::ResourceExhausted,
                         "cannot create cache dir '" + Dir +
                             "': " + EC.message())
        .withContext("native kernel cache");

  const std::string Base = Dir + "/" + Hash;
  const std::string So = Base + ".so";
  uint64_t CompileNs = 0;

  if (!fs::exists(So, EC)) {
    // Cold: persist the source next to the object (debuggability and
    // the compile input), then build to a temp name and rename — the
    // atomic publish that makes concurrent same-key compiles safe.
    const std::string Pid = std::to_string(getpid());
    const std::string CppTmp = Base + ".cpp.tmp." + Pid;
    const std::string Cpp = Base + ".cpp";
    {
      std::ofstream Out(CppTmp);
      Out << Source;
      if (!Out)
        return Status::error(ErrCode::ResourceExhausted,
                             "cannot write source '" + CppTmp + "'")
            .withContext("native kernel cache");
    }
    fs::rename(CppTmp, Cpp, EC);
    if (EC)
      return Status::error(ErrCode::ResourceExhausted,
                           "cannot publish source '" + Cpp +
                               "': " + EC.message())
          .withContext("native kernel cache");

    const std::string SoTmp = So + ".tmp." + Pid;
    const std::string Log = Base + ".log." + Pid;
    std::string Cmd = "\"" + P.Command + "\" " + compileFlags() +
                      " -o \"" + SoTmp + "\" \"" + Cpp + "\" 2> \"" +
                      Log + "\"";
    const uint64_t T0 = nowNs();
    int Rc = std::system(Cmd.c_str());
    CompileNs = nowNs() - T0;
    if (Rc != 0) {
      std::string Tail = readTail(Log);
      fs::remove(Log, EC);
      fs::remove(SoTmp, EC);
      return Status::error(ErrCode::Internal,
                           "compilation failed (exit " +
                               std::to_string(Rc) + "): " + Tail)
          .withContext("native kernel cache")
          .withContext(Cpp);
    }
    fs::remove(Log, EC);
    fs::rename(SoTmp, So, EC);
    if (EC)
      return Status::error(ErrCode::ResourceExhausted,
                           "cannot publish object '" + So +
                               "': " + EC.message())
          .withContext("native kernel cache");
  }

  void *Handle = dlopen(So.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *E = dlerror();
    return Status::error(ErrCode::Internal,
                         "dlopen failed: " + std::string(E ? E : "?"))
        .withContext("native kernel cache")
        .withContext(So);
  }
  std::shared_ptr<void> Shared(Handle, [](void *H) { dlclose(H); });
  void *Sym = dlsym(Handle, nativeEntrySymbol());
  if (!Sym)
    return Status::error(ErrCode::Internal,
                         std::string("entry symbol '") +
                             nativeEntrySymbol() + "' not found")
        .withContext("native kernel cache")
        .withContext(So);

  Loaded L;
  L.Fn = reinterpret_cast<NativeKernelFn>(Sym);
  L.Handle = std::move(Shared);
  L.CompileNs = CompileNs;
  L.SoPath = So;
  Handles.emplace(Hash, L);
  return L;
}

} // namespace jit
} // namespace systec
