//===- jit/NativeEngine.h - JIT'd whole-body plan node --------*- C++ -*-===//
///
/// \file
/// PlanNative: the plan node that dispatches an entire compiled body to
/// a JIT-compiled .so (jit/NativeKernelCache.h) through the C ABI
/// (jit/NativeAbi.h). It honors the same contracts as the interpreted
/// plan tree it replaces:
///
///  - Determinism: the emitted body replicates the interpreter's
///    sequential fold order, so outputs are bit-identical to a
///    Threads=1 interpreted run (the native engine does not replicate
///    the parallel task decomposition; under Threads>1 options it still
///    produces the sequential — not the task-merged — fold order).
///  - Counters: the kernel returns its SparseReads / Reductions /
///    ScalarOps / OutputWrites deltas, accounted at the interpreter's
///    exact charge points; they fold into ExecCtx::Local under the
///    standard once-per-run flush discipline.
///  - Rebind: operand pointers are re-read from the bound tensors on
///    every call and the argument table repatches through the standard
///    RebindCtx map, so plan-cache hits work unchanged.
///  - Cancellation: polled at body entry only — a native body is one
///    cancellation region (documented in docs/CODEGEN.md); runs that
///    need per-iteration responsiveness use the interpreted engines.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_JIT_NATIVEENGINE_H
#define SYSTEC_JIT_NATIVEENGINE_H

#include "jit/NativeAbi.h"
#include "runtime/Plan.h"

#include <memory>
#include <vector>

namespace systec {
namespace jit {

class PlanNative final : public detail::PlanNode {
public:
  /// Entry point resolved from the cached .so; Handle keeps the
  /// mapping alive for the life of this node.
  NativeKernelFn Fn = nullptr;
  std::shared_ptr<void> Handle;
  /// Operand tensors in the emitter's discovery order (one
  /// systec_ntensor each, marshalled per call from the tensors'
  /// current level arrays — which is what makes rebind work).
  std::vector<Tensor *> Args;

  void exec(detail::ExecCtx &C) override;
  void rebind(const detail::RebindCtx &R) override;

private:
  /// Marshalling scratch, sized on first exec and reused (orders and
  /// level counts are fixed for a compiled plan).
  std::vector<NativeLevel> Levels;
  std::vector<NativeTensor> Tensors;
};

} // namespace jit
} // namespace systec

#endif // SYSTEC_JIT_NATIVEENGINE_H
