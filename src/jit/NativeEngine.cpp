//===- jit/NativeEngine.cpp - JIT'd whole-body plan node ----------------===//

#include "jit/NativeEngine.h"

namespace systec {
namespace jit {

namespace {

int32_t nativeKind(LevelKind K) {
  switch (K) {
  case LevelKind::Dense:
    return NativeDense;
  case LevelKind::Sparse:
    return NativeSparse;
  case LevelKind::RunLength:
    return NativeRunLength;
  case LevelKind::Banded:
    return NativeBanded;
  }
  return NativeDense;
}

} // namespace

void PlanNative::exec(detail::ExecCtx &C) {
  // Cancellation checkpoint at body entry: a tripped run skips the
  // whole native body (one cancellation region; see the header).
  if (C.Ctrl && C.Ctrl->stopped())
    return;

  if (Tensors.empty()) {
    size_t NLevels = 0;
    for (const Tensor *T : Args)
      NLevels += T->order();
    Levels.resize(NLevels);
    Tensors.resize(Args.size());
  }
  size_t LevelAt = 0;
  for (size_t I = 0; I < Args.size(); ++I) {
    const Tensor *T = Args[I];
    NativeTensor &NT = Tensors[I];
    NT.Order = T->order();
    NT.Levels = Levels.data() + LevelAt;
    NT.Vals = T->valsData();
    NT.Fill = T->fill();
    for (unsigned L = 0; L < T->order(); ++L) {
      const Level &Lev = T->level(L);
      NativeLevel &NL = Levels[LevelAt++];
      NL.Kind = nativeKind(Lev.Kind);
      NL.Dim = Lev.Dim;
      NL.Ptr = Lev.Ptr.data();
      NL.Crd = Lev.Crd.data();
      NL.RunEnd = Lev.RunEnd.data();
      NL.Lo = Lev.Lo.data();
      NL.Hi = Lev.Hi.data();
      NL.Off = Lev.Off.data();
    }
  }

  NativeCounters NC;
  Fn(Tensors.data(), C.OutPtr.data(), &NC);
  if (C.CountersOn) {
    C.Local.SparseReads += static_cast<uint64_t>(NC.SparseReads);
    C.Local.Reductions += static_cast<uint64_t>(NC.Reductions);
    C.Local.ScalarOps += static_cast<uint64_t>(NC.ScalarOps);
    C.Local.OutputWrites += static_cast<uint64_t>(NC.OutputWrites);
  }
}

void PlanNative::rebind(const detail::RebindCtx &R) {
  for (Tensor *&T : Args) {
    auto It = R.Map.find(T);
    if (It != R.Map.end())
      T = It->second;
  }
}

} // namespace jit
} // namespace systec
