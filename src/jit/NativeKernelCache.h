//===- jit/NativeKernelCache.h - Compiled-.so on-disk cache ---*- C++ -*-===//
///
/// \file
/// Content-hash-keyed cache of JIT-compiled kernel shared objects. The
/// key is FNV-1a over (emitted source, compiler identification line,
/// compile flags), so a cached `.so` is valid for exactly the code it
/// was built from: any change to the emitter, the ABI structs (embedded
/// in the source), the compiler, or the flags produces a different hash
/// and simply misses. Entries live on disk as `<dir>/<hash>.{cpp,so}`
/// and are reused across processes and KernelService restarts — a warm
/// start performs no compiler invocation at all (Loaded::CompileNs
/// pinned at 0), making the cache the natural persistence layer under
/// the in-memory PlanCache.
///
/// Concurrency: compilation writes to `<hash>.so.tmp.<pid>` and
/// atomically renames into place, so concurrent processes racing on the
/// same key each produce a valid object and the last rename wins;
/// dlopened handles are shared process-wide through an internal
/// registry, so N executors of one kernel hold one mapping.
///
/// Fallback contract: every failure path — no host compiler on PATH,
/// compilation error, dlopen/dlsym failure — returns a typed Status
/// (never aborts). `SYSTEC_JIT_DISABLE=1` forces the unavailable path
/// (for testing degraded environments); `SYSTEC_JIT_CXX` overrides the
/// compiler (default: the compiler that built the library, then `c++`).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_JIT_NATIVEKERNELCACHE_H
#define SYSTEC_JIT_NATIVEKERNELCACHE_H

#include "jit/NativeAbi.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace systec {
namespace jit {

class NativeKernelCache {
public:
  /// One loaded kernel: the resolved entry point plus a shared
  /// ownership stake in the dlopened object (the mapping stays valid
  /// while any copy of Handle lives).
  struct Loaded {
    NativeKernelFn Fn = nullptr;
    std::shared_ptr<void> Handle;
    /// Nanoseconds spent inside the compiler invocation for this load;
    /// 0 when the .so came from disk or the in-process handle registry
    /// (the acceptance signal that a warm start recompiled nothing).
    uint64_t CompileNs = 0;
    std::string SoPath;
  };

  /// The process-wide cache (shared dlopen registry).
  static NativeKernelCache &instance();

  /// Compiles (or reuses) \p Source and returns its entry point.
  /// \p CacheDir names the on-disk cache directory; empty resolves to
  /// $SYSTEC_JIT_CACHE_DIR, then a per-user temp default.
  Expected<Loaded> load(const std::string &Source,
                        const std::string &CacheDir);

  /// Whether a host compiler is available right now (probes once;
  /// SYSTEC_JIT_DISABLE is re-read per call). On false, \p Reason (if
  /// non-null) receives the explanation load() would return.
  static bool compilerAvailable(std::string *Reason = nullptr);

  /// The compiler identification line mixed into cache keys (first
  /// line of `--version`); empty when unavailable.
  static std::string compilerId();

  /// Testing hook: drops the in-process dlopen registry so the next
  /// load() must go to disk — simulates a fresh process over a warm
  /// cache directory. Existing Loaded handles stay valid (shared
  /// ownership); only future loads re-open.
  void dropHandles();

private:
  std::mutex Mu;
  std::map<std::string, Loaded> Handles; ///< content hash -> loaded
};

} // namespace jit
} // namespace systec

#endif // SYSTEC_JIT_NATIVEKERNELCACHE_H
