//===- rewrite/Rewrite.cpp ------------------------------------*- C++ -*-===//

#include "rewrite/Rewrite.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace systec {

const ExprPtr &MatchBindings::operator[](const std::string &Slot) const {
  auto It = Slots.find(Slot);
  if (It == Slots.end())
    fatalError("unbound slot " + Slot);
  return It->second;
}

bool isSlotName(const std::string &Name) {
  return !Name.empty() && Name[0] == '$';
}

static bool matchArgsInOrder(const std::vector<ExprPtr> &PatArgs,
                             const std::vector<ExprPtr> &SubArgs,
                             MatchBindings &Bindings) {
  for (size_t I = 0; I < PatArgs.size(); ++I)
    if (!matchExpr(PatArgs[I], SubArgs[I], Bindings))
      return false;
  return true;
}

bool matchExpr(const ExprPtr &Pattern, const ExprPtr &Subject,
               MatchBindings &Bindings) {
  if (Pattern->kind() == ExprKind::Scalar &&
      isSlotName(Pattern->scalarName())) {
    const std::string &Slot = Pattern->scalarName();
    auto It = Bindings.Slots.find(Slot);
    if (It != Bindings.Slots.end())
      return Expr::equal(It->second, Subject);
    Bindings.Slots[Slot] = Subject;
    return true;
  }
  if (Pattern->kind() != Subject->kind())
    return false;
  switch (Pattern->kind()) {
  case ExprKind::Literal:
    return Pattern->literalValue() == Subject->literalValue();
  case ExprKind::Scalar:
    return Pattern->scalarName() == Subject->scalarName();
  case ExprKind::Access:
    return Pattern->tensorName() == Subject->tensorName() &&
           Pattern->indices() == Subject->indices();
  case ExprKind::Lut:
    return Pattern->lutBits() == Subject->lutBits() &&
           Pattern->lutTable() == Subject->lutTable();
  case ExprKind::Call: {
    if (Pattern->op() != Subject->op() ||
        Pattern->args().size() != Subject->args().size())
      return false;
    const OpInfo &Info = opInfo(Pattern->op());
    if (!Info.Commutative || Pattern->args().size() > 4)
      return matchArgsInOrder(Pattern->args(), Subject->args(), Bindings);
    // Commutative small-arity match: try permutations of subject args.
    std::vector<size_t> Order(Subject->args().size());
    std::iota(Order.begin(), Order.end(), 0);
    do {
      MatchBindings Trial = Bindings;
      bool Ok = true;
      for (size_t I = 0; I < Order.size() && Ok; ++I)
        Ok = matchExpr(Pattern->args()[I], Subject->args()[Order[I]], Trial);
      if (Ok) {
        Bindings = std::move(Trial);
        return true;
      }
    } while (std::next_permutation(Order.begin(), Order.end()));
    return false;
  }
  }
  unreachable("unknown expression kind");
}

std::optional<ExprPtr> Rule::apply(const ExprPtr &E) const {
  MatchBindings Bindings;
  if (!matchExpr(Pattern, E, Bindings))
    return std::nullopt;
  return Build(Bindings);
}

RuleSet &RuleSet::add(ExprPtr Pattern,
                      std::function<ExprPtr(const MatchBindings &)> Build) {
  Rules.push_back(Rule{std::move(Pattern), std::move(Build)});
  return *this;
}

std::optional<ExprPtr> RuleSet::apply(const ExprPtr &E) const {
  for (const Rule &R : Rules)
    if (std::optional<ExprPtr> Out = R.apply(E))
      return Out;
  return std::nullopt;
}

Rewriter RuleSet::rewriter() const {
  return [this](const ExprPtr &E) { return apply(E); };
}

ExprPtr postwalk(const ExprPtr &E, const Rewriter &Fn) {
  ExprPtr Cur = E;
  if (Cur->kind() == ExprKind::Call) {
    std::vector<ExprPtr> NewArgs;
    NewArgs.reserve(Cur->args().size());
    bool Changed = false;
    for (const ExprPtr &A : Cur->args()) {
      ExprPtr NewA = postwalk(A, Fn);
      Changed |= NewA.get() != A.get();
      NewArgs.push_back(std::move(NewA));
    }
    if (Changed)
      Cur = Expr::call(Cur->op(), std::move(NewArgs));
  }
  if (std::optional<ExprPtr> Out = Fn(Cur))
    return *Out;
  return Cur;
}

ExprPtr prewalk(const ExprPtr &E, const Rewriter &Fn) {
  ExprPtr Cur = E;
  for (unsigned Guard = 0; Guard < 64; ++Guard) {
    std::optional<ExprPtr> Out = Fn(Cur);
    if (!Out || Expr::equal(*Out, Cur))
      break;
    Cur = *Out;
  }
  if (Cur->kind() == ExprKind::Call) {
    std::vector<ExprPtr> NewArgs;
    NewArgs.reserve(Cur->args().size());
    bool Changed = false;
    for (const ExprPtr &A : Cur->args()) {
      ExprPtr NewA = prewalk(A, Fn);
      Changed |= NewA.get() != A.get();
      NewArgs.push_back(std::move(NewA));
    }
    if (Changed)
      Cur = Expr::call(Cur->op(), std::move(NewArgs));
  }
  return Cur;
}

ExprPtr rewriteFixpoint(const ExprPtr &E, const Rewriter &Fn,
                        unsigned MaxIters) {
  ExprPtr Cur = E;
  for (unsigned I = 0; I < MaxIters; ++I) {
    ExprPtr Next = postwalk(Cur, Fn);
    if (Expr::equal(Next, Cur))
      return Cur;
    Cur = Next;
  }
  return Cur;
}

ExprPtr simplifyExpr(const ExprPtr &E) {
  Rewriter Fn = [](const ExprPtr &Node) -> std::optional<ExprPtr> {
    if (Node->kind() != ExprKind::Call)
      return std::nullopt;
    OpKind Op = Node->op();
    const OpInfo &Info = opInfo(Op);
    if (!Info.Associative || !Info.Commutative)
      return std::nullopt;
    // Fold literal arguments together; drop identities; detect
    // annihilators.
    std::vector<ExprPtr> Others;
    bool HaveLit = false;
    double Lit = Info.Identity;
    for (const ExprPtr &A : Node->args()) {
      if (A->kind() == ExprKind::Literal) {
        Lit = HaveLit ? evalOp(Op, Lit, A->literalValue())
                      : A->literalValue();
        HaveLit = true;
      } else {
        Others.push_back(A);
      }
    }
    if (!HaveLit)
      return std::nullopt;
    if (Info.Annihilator && Lit == *Info.Annihilator)
      return Expr::lit(Lit);
    bool LitIsIdentity = Lit == Info.Identity;
    if (LitIsIdentity && Others.empty())
      return Expr::lit(Lit);
    if (LitIsIdentity && Others.size() == Node->args().size() - 1 &&
        Node->args().back()->kind() != ExprKind::Literal &&
        Node->args().front()->kind() != ExprKind::Literal) {
      // Only literal(s) in the middle were folded away; still rebuild.
      return Expr::call(Op, std::move(Others));
    }
    if (LitIsIdentity)
      return Others.size() == 1 ? Others[0]
                                : Expr::call(Op, std::move(Others));
    if (Others.empty())
      return Expr::lit(Lit);
    // Canonical position: literal first.
    std::vector<ExprPtr> NewArgs;
    NewArgs.push_back(Expr::lit(Lit));
    NewArgs.insert(NewArgs.end(), Others.begin(), Others.end());
    if (NewArgs.size() == Node->args().size()) {
      // Avoid infinite loops when already canonical.
      bool Same = true;
      for (size_t I = 0; I < NewArgs.size(); ++I)
        Same &= Expr::equal(NewArgs[I], Node->args()[I]);
      if (Same)
        return std::nullopt;
    }
    return Expr::call(Op, std::move(NewArgs));
  };
  return rewriteFixpoint(E, Fn);
}

} // namespace systec
