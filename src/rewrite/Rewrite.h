//===- rewrite/Rewrite.h - Term rewriting over expressions ----*- C++ -*-===//
///
/// \file
/// A small term-rewriting framework mirroring the role RewriteTools.jl
/// plays in the original SySTeC ("SySTeC uses RewriteTools, the same
/// rewriting package used by Finch, to define a set of simplification
/// rules", paper Section 5.1). Patterns are ordinary Expr trees in
/// which Scalar nodes whose names begin with '$' act as slot variables;
/// a slot binds consistently across the pattern. Rules pair a pattern
/// with a builder over the bindings. Traversal combinators apply
/// rewriters bottom-up (postwalk), top-down (prewalk), or to fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_REWRITE_REWRITE_H
#define SYSTEC_REWRITE_REWRITE_H

#include "ir/Expr.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace systec {

/// Slot bindings produced by a successful match.
struct MatchBindings {
  std::map<std::string, ExprPtr> Slots;

  const ExprPtr &operator[](const std::string &Slot) const;
};

/// True if \p Name designates a slot variable ("$x").
bool isSlotName(const std::string &Name);

/// Attempts to match \p Pattern against \p Subject, extending
/// \p Bindings. Commutative operators are matched against all argument
/// permutations when the argument count is small (<= 4), otherwise in
/// order.
bool matchExpr(const ExprPtr &Pattern, const ExprPtr &Subject,
               MatchBindings &Bindings);

/// A rewriter maps an expression to a replacement, or nullopt to leave
/// it unchanged.
using Rewriter = std::function<std::optional<ExprPtr>(const ExprPtr &)>;

/// One rewrite rule: pattern plus builder.
struct Rule {
  ExprPtr Pattern;
  std::function<ExprPtr(const MatchBindings &)> Build;

  /// Applies the rule at the root only.
  std::optional<ExprPtr> apply(const ExprPtr &E) const;
};

/// An ordered collection of rules; the first matching rule fires.
class RuleSet {
public:
  RuleSet &add(ExprPtr Pattern,
               std::function<ExprPtr(const MatchBindings &)> Build);

  std::optional<ExprPtr> apply(const ExprPtr &E) const;

  /// Adapts the rule set into a Rewriter.
  Rewriter rewriter() const;

  size_t size() const { return Rules.size(); }

private:
  std::vector<Rule> Rules;
};

/// Applies \p Fn once to every node bottom-up, rebuilding the tree.
ExprPtr postwalk(const ExprPtr &E, const Rewriter &Fn);

/// Applies \p Fn top-down: if it rewrites a node the result is
/// revisited, then children are traversed.
ExprPtr prewalk(const ExprPtr &E, const Rewriter &Fn);

/// Repeats postwalk until no change or \p MaxIters.
ExprPtr rewriteFixpoint(const ExprPtr &E, const Rewriter &Fn,
                        unsigned MaxIters = 64);

/// Algebraic simplification: folds literal subterms, removes operation
/// identities (x*1, x+0, min(x,inf)), collapses annihilators (x*0),
/// flattens associative calls, and canonicalizes literal position
/// (leading literal factor) for commutative operators.
ExprPtr simplifyExpr(const ExprPtr &E);

} // namespace systec

#endif // SYSTEC_REWRITE_REWRITE_H
