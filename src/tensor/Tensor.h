//===- tensor/Tensor.h - Fibertree level-format tensors -------*- C++ -*-===//
///
/// \file
/// Sparse and structured tensors stored as a stack of per-mode levels
/// (the fibertree abstraction of Finch/TACO; paper Section 2.2). Like
/// Finch, storage is column-major: the *last* access mode is the top
/// level, so CSC is Dense(Sparse(Element)) for A[i,j] and 3-d CSF is
/// Dense(Sparse(Sparse(Element))).
///
/// Supported level kinds:
///  - Dense:     all coordinates present, positions computed.
///  - Sparse:    compressed coordinates (ptr/crd).
///  - RunLength: runs of equal values covering the full extent
///               (structured; bottom level only).
///  - Banded:    one contiguous coordinate interval per parent position
///               (covers banded and triangular structure).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_TENSOR_TENSOR_H
#define SYSTEC_TENSOR_TENSOR_H

#include "ir/Einsum.h"
#include "support/Status.h"
#include "symmetry/Partition.h"
#include "tensor/Coo.h"

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace systec {

/// Storage for one fibertree level. Level L of an order-n tensor holds
/// access mode n-1-L. Child positions index the next level down (or the
/// value array at the bottom).
struct Level {
  LevelKind Kind = LevelKind::Dense;
  int64_t Dim = 0;

  // Sparse: child k in [Ptr[p], Ptr[p+1]) has coordinate Crd[k].
  std::vector<int64_t> Ptr;
  std::vector<int64_t> Crd;

  // RunLength: runs k in [Ptr[p], Ptr[p+1]); run k covers coordinates
  // [RunEnd[k-1] (or 0), RunEnd[k]). Runs tile [0, Dim).
  std::vector<int64_t> RunEnd;

  // Banded: coordinates [Lo[p], Hi[p]); child position Off[p]+(c-Lo[p]).
  std::vector<int64_t> Lo, Hi, Off;
};

/// How much of a tensor's structural integrity to check (see
/// Tensor::validate and docs/ROBUSTNESS.md for the exact invariants and
/// costs).
enum class ValidationLevel {
  None,    ///< no checks (the hot-path default)
  Shallow, ///< O(levels): array sizes and endpoint agreement
  Deep,    ///< O(nnz): full per-fiber scans plus NaN rejection
};

/// An immutable-shape, mutable-value tensor in a fibertree format.
class Tensor {
public:
  Tensor() = default;

  /// Builds from coordinate data (sorted/combined internally).
  /// \p Combine resolves duplicate coordinates. Aborts on malformed
  /// input (format/order mismatch, out-of-range coordinates); use
  /// tryFromCoo for the recoverable path.
  static Tensor fromCoo(Coo Entries, TensorFormat Format, double Fill = 0.0,
                        OpKind Combine = OpKind::Add);

  /// Status-returning construction: rejects a format whose order does
  /// not match the coordinate order, RunLength levels above the bottom,
  /// and entries with coordinates outside the declared dims — with
  /// ErrCode::InvalidArgument — instead of aborting, then self-checks
  /// the built structure with validate(Shallow).
  static Expected<Tensor> tryFromCoo(Coo Entries, TensorFormat Format,
                                     double Fill = 0.0,
                                     OpKind Combine = OpKind::Add);

  /// An all-dense tensor filled with \p Fill (used for outputs,
  /// vectors, and oracle references).
  static Tensor dense(std::vector<int64_t> Dims, double Fill = 0.0);

  unsigned order() const { return static_cast<unsigned>(Dims.size()); }
  const std::vector<int64_t> &dims() const { return Dims; }
  int64_t dim(unsigned Mode) const { return Dims[Mode]; }
  const TensorFormat &format() const { return Format; }
  double fill() const { return Fill; }

  /// Level index holding access mode \p Mode.
  unsigned levelOfMode(unsigned Mode) const { return order() - 1 - Mode; }
  /// Access mode held by level \p L.
  unsigned modeOfLevel(unsigned L) const { return order() - 1 - L; }
  const Level &level(unsigned L) const { return Levels[L]; }

  /// Mutable level access. Exists for test harnesses (fault injection
  /// deliberately breaks the structural invariants that validate()
  /// checks); production code treats level structure as immutable.
  Level &mutableLevel(unsigned L) { return Levels[L]; }

  /// Checks the structural invariants of every level against the
  /// declared dims and format: Ptr monotone and in-bounds, Crd sorted
  /// and deduplicated per fiber and < the mode extent, RunLength runs
  /// tiling [0, Dim), Banded Lo/Hi/Off interval sanity, and the value
  /// array agreeing with the bottom level's position count. Shallow
  /// checks sizes and endpoints in O(levels); Deep scans every fiber in
  /// O(nnz) and additionally rejects NaN values (the semiring fold
  /// order is not NaN-clean). Returns ErrCode::InvalidTensor with a
  /// message naming the offending level.
  [[nodiscard]] Status validate(ValidationLevel VL) const;

  /// Number of stored values (explicit entries / positions at bottom).
  size_t storedCount() const { return Vals.size(); }
  double val(int64_t Pos) const { return Vals[Pos]; }
  void setVal(int64_t Pos, double V) { Vals[Pos] = V; }
  const std::vector<double> &vals() const { return Vals; }
  std::vector<double> &vals() { return Vals; }

  /// Raw value-array base for fused micro-kernels. Stable after
  /// construction: level structure and value count never change for a
  /// live tensor, only the stored values themselves.
  const double *valsData() const { return Vals.data(); }
  double *valsData() { return Vals.data(); }

  /// Random access (walks the levels; missing coordinates yield fill).
  double at(const std::vector<int64_t> &Coords) const;

  /// Mutable access for all-dense tensors.
  double &denseRef(const std::vector<int64_t> &Coords);

  /// Resets every stored value to \p V.
  void setAllValues(double V);

  /// Descends one level: child position of coordinate \p C under parent
  /// position \p Pos, or -1 when the coordinate is not stored.
  int64_t locate(unsigned L, int64_t Pos, int64_t C) const;

  /// locate() for a Sparse or RunLength level with a movable cursor.
  /// \p CachedParent and \p CachedIdx persist between calls (initialize
  /// to -1/0): when the parent position repeats and coordinates arrive
  /// in ascending order — the common pattern under sorted loop nests —
  /// the search gallops forward from the previous result instead of
  /// bisecting the whole fiber (for RunLength, re-hitting the cached
  /// run is O(1)). Falls back to a full binary search on any other
  /// pattern, so results are always identical to locate().
  int64_t locateHinted(unsigned L, int64_t Pos, int64_t C,
                       int64_t &CachedParent, int64_t &CachedIdx) const;

  /// Iterates stored entries in coordinate order (RunLength levels are
  /// expanded per coordinate).
  void forEach(
      const std::function<void(const std::vector<int64_t> &, double)> &Fn)
      const;

  /// Explicit entries as COO (access-mode coordinate order).
  Coo toCoo() const;

  /// Tensor with modes permuted (result mode m = source mode
  /// ModePerm[m]), in format \p NewFormat.
  Tensor transposed(const std::vector<unsigned> &ModePerm,
                    const TensorFormat &NewFormat) const;

  /// Splits into (off-diagonal, diagonal) parts relative to \p Sym
  /// (paper 4.2.9 / Listing 7's A_nondiag and A_diag).
  std::pair<Tensor, Tensor> splitDiagonal(const Partition &Sym) const;

  /// Maximum absolute difference over the union of explicit entries of
  /// two same-shaped tensors (fill-extended).
  static double maxAbsDiff(const Tensor &A, const Tensor &B);

  /// One-line summary "2-d 100x100, 512 stored, Dense(Sparse(...))".
  std::string summary() const;

  /// Copies the canonical triangle of an all-dense tensor to every
  /// non-canonical coordinate under \p Sym (the replication
  /// post-processing step of paper 4.2.2). Returns the number of
  /// copies performed. \p Threads > 1 splits the outer mode across the
  /// shared thread pool; every non-canonical coordinate is written by
  /// exactly one task and canonical sources are never written, so the
  /// result is bit-identical for any thread count.
  friend uint64_t replicateSymmetric(Tensor &T, const Partition &Sym,
                                     unsigned Threads);

private:
  std::vector<int64_t> Dims; // per access mode
  TensorFormat Format;       // per level, top first
  double Fill = 0.0;
  std::vector<Level> Levels; // top first
  std::vector<double> Vals;  // bottom positions
};

uint64_t replicateSymmetric(Tensor &T, const Partition &Sym,
                            unsigned Threads = 1);

} // namespace systec

#endif // SYSTEC_TENSOR_TENSOR_H
