//===- tensor/Coo.cpp -----------------------------------------*- C++ -*-===//

#include "tensor/Coo.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace systec {

Coo::Coo(std::vector<int64_t> DimsIn) : Dims(std::move(DimsIn)) {
  assert(!Dims.empty() && "tensors need at least one mode");
}

void Coo::addRaw(const int64_t *CoordsIn, double Val) {
  for (unsigned M = 0; M < order(); ++M) {
    assert(CoordsIn[M] >= 0 && CoordsIn[M] < Dims[M] &&
           "coordinate out of bounds");
    Coords.push_back(CoordsIn[M]);
  }
  Vals.push_back(Val);
}

void Coo::add(const std::vector<int64_t> &CoordsIn, double Val) {
  assert(CoordsIn.size() == order() && "coordinate arity mismatch");
  addRaw(CoordsIn.data(), Val);
}

void Coo::sortAndCombine(OpKind Combine) {
  const unsigned N = order();
  std::vector<size_t> Perm(size());
  std::iota(Perm.begin(), Perm.end(), 0);
  auto Less = [&](size_t A, size_t B) {
    for (unsigned M = N; M-- > 0;) {
      int64_t CA = Coords[A * N + M], CB = Coords[B * N + M];
      if (CA != CB)
        return CA < CB;
    }
    return false;
  };
  std::sort(Perm.begin(), Perm.end(), Less);

  std::vector<int64_t> NewCoords;
  std::vector<double> NewVals;
  NewCoords.reserve(Coords.size());
  NewVals.reserve(Vals.size());
  for (size_t K = 0; K < Perm.size(); ++K) {
    size_t I = Perm[K];
    bool SameAsPrev = !NewVals.empty();
    if (SameAsPrev) {
      size_t Prev = NewVals.size() - 1;
      for (unsigned M = 0; M < N; ++M)
        if (NewCoords[Prev * N + M] != Coords[I * N + M]) {
          SameAsPrev = false;
          break;
        }
    }
    if (SameAsPrev) {
      NewVals.back() = evalOp(Combine, NewVals.back(), Vals[I]);
    } else {
      for (unsigned M = 0; M < N; ++M)
        NewCoords.push_back(Coords[I * N + M]);
      NewVals.push_back(Vals[I]);
    }
  }
  Coords = std::move(NewCoords);
  Vals = std::move(NewVals);
}

void Coo::append(const Coo &Other) {
  assert(Dims == Other.Dims && "appending mismatched tensors");
  Coords.insert(Coords.end(), Other.Coords.begin(), Other.Coords.end());
  Vals.insert(Vals.end(), Other.Vals.begin(), Other.Vals.end());
}

Coo Coo::transposed(const std::vector<unsigned> &ModePerm) const {
  const unsigned N = order();
  assert(ModePerm.size() == N && "mode permutation arity mismatch");
  std::vector<int64_t> NewDims(N);
  for (unsigned M = 0; M < N; ++M)
    NewDims[M] = Dims[ModePerm[M]];
  Coo Out(std::move(NewDims));
  std::vector<int64_t> Tmp(N);
  for (size_t I = 0; I < size(); ++I) {
    for (unsigned M = 0; M < N; ++M)
      Tmp[M] = Coords[I * N + ModePerm[M]];
    Out.addRaw(Tmp.data(), Vals[I]);
  }
  return Out;
}

} // namespace systec
