//===- tensor/Coo.h - Coordinate-format tensor builder --------*- C++ -*-===//
///
/// \file
/// A flat coordinate-list (COO) staging buffer used to build the level
/// formats. Coordinates are stored structure-of-arrays to keep million-
/// entry 5-dimensional tensors cheap to sort.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_TENSOR_COO_H
#define SYSTEC_TENSOR_COO_H

#include "ir/Ops.h"

#include <cstdint>
#include <vector>

namespace systec {

/// Coordinate-format staging storage for one tensor.
class Coo {
public:
  Coo(std::vector<int64_t> Dims);

  unsigned order() const { return static_cast<unsigned>(Dims.size()); }
  const std::vector<int64_t> &dims() const { return Dims; }
  size_t size() const { return Vals.size(); }

  /// Appends one entry; \p Coords has order() elements.
  void add(const std::vector<int64_t> &Coords, double Val);
  /// Pointer variant for hot loops (named distinctly so brace-initialized
  /// coordinate lists never bind to a null pointer).
  void addRaw(const int64_t *Coords, double Val);

  /// Coordinate \p Mode of entry \p I.
  int64_t coord(size_t I, unsigned Mode) const {
    return Coords[I * order() + Mode];
  }
  double value(size_t I) const { return Vals[I]; }
  void setValue(size_t I, double Val) { Vals[I] = Val; }

  /// Sorts entries lexicographically with the *last* mode most
  /// significant (column-major / fibertree order) and combines
  /// duplicate coordinates with \p Combine.
  void sortAndCombine(OpKind Combine = OpKind::Add);

  /// Appends all entries of \p Other (dims must match).
  void append(const Coo &Other);

  /// Returns a new Coo with modes permuted: result mode m holds source
  /// mode ModePerm[m].
  Coo transposed(const std::vector<unsigned> &ModePerm) const;

private:
  std::vector<int64_t> Dims;
  std::vector<int64_t> Coords; // order() coordinates per entry
  std::vector<double> Vals;
};

} // namespace systec

#endif // SYSTEC_TENSOR_COO_H
