//===- tensor/Tensor.cpp --------------------------------------*- C++ -*-===//

#include "tensor/Tensor.h"

#include "parallel/Schedule.h"
#include "parallel/ThreadPool.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <sstream>

namespace systec {

namespace {

/// A contiguous range of sorted COO entries sharing all coordinates
/// above the current level, tagged with the parent position it belongs
/// to.
struct Segment {
  int64_t ParentPos;
  size_t Begin, End;
};

} // namespace

Tensor Tensor::fromCoo(Coo Entries, TensorFormat Format, double Fill,
                       OpKind Combine) {
  Expected<Tensor> T =
      tryFromCoo(std::move(Entries), std::move(Format), Fill, Combine);
  if (!T)
    fatalError(T.status().str());
  return std::move(*T);
}

Expected<Tensor> Tensor::tryFromCoo(Coo Entries, TensorFormat Format,
                                    double Fill, OpKind Combine) {
  const unsigned N = Entries.order();
  if (Format.order() != N)
    return Status::error(ErrCode::InvalidArgument,
                         "format order " + std::to_string(Format.order()) +
                             " does not match coordinate order " +
                             std::to_string(N));
  for (unsigned L = 0; L + 1 < N; ++L)
    if (Format.Levels[L] == LevelKind::RunLength)
      return Status::error(ErrCode::InvalidArgument,
                           "RunLength levels are only supported at the "
                           "bottom");
  // Entries outside the declared box would silently corrupt the level
  // build (positions computed from coordinates index past the arrays).
  for (size_t I = 0; I < Entries.size(); ++I)
    for (unsigned M = 0; M < N; ++M) {
      const int64_t C = Entries.coord(I, M);
      if (C < 0 || C >= Entries.dims()[M])
        return Status::error(
            ErrCode::InvalidArgument,
            "entry " + std::to_string(I) + " coordinate " +
                std::to_string(C) + " outside mode " + std::to_string(M) +
                " extent " + std::to_string(Entries.dims()[M]));
    }
  Entries.sortAndCombine(Combine);

  Tensor T;
  T.Dims = Entries.dims();
  T.Format = Format;
  T.Fill = Fill;
  T.Levels.resize(N);

  // No root segment for an empty tensor: every level then builds its
  // all-empty structure (the Banded branch in particular reads a
  // segment's last entry, which an empty segment does not have).
  std::vector<Segment> Segments;
  if (Entries.size() > 0)
    Segments.push_back({0, 0, Entries.size()});
  int64_t PosCount = 1;

  for (unsigned L = 0; L < N; ++L) {
    const unsigned Mode = N - 1 - L;
    const int64_t Dim = T.Dims[Mode];
    Level &Lev = T.Levels[L];
    Lev.Kind = Format.Levels[L];
    Lev.Dim = Dim;
    const bool Bottom = (L == N - 1);
    std::vector<Segment> NewSegments;

    // Groups a segment's entries by this level's coordinate and invokes
    // \p Fn(coord, begin, end) in ascending coordinate order.
    auto ForEachGroup = [&](const Segment &Seg, auto &&Fn) {
      size_t I = Seg.Begin;
      while (I < Seg.End) {
        int64_t C = Entries.coord(I, Mode);
        size_t J = I;
        while (J < Seg.End && Entries.coord(J, Mode) == C)
          ++J;
        Fn(C, I, J);
        I = J;
      }
    };

    switch (Lev.Kind) {
    case LevelKind::Dense: {
      for (const Segment &Seg : Segments)
        ForEachGroup(Seg, [&](int64_t C, size_t B, size_t E) {
          NewSegments.push_back({Seg.ParentPos * Dim + C, B, E});
        });
      PosCount *= Dim;
      if (Bottom) {
        T.Vals.assign(static_cast<size_t>(PosCount), Fill);
        for (const Segment &Seg : NewSegments) {
          assert(Seg.End - Seg.Begin == 1 && "uncombined duplicate entry");
          T.Vals[Seg.ParentPos] = Entries.value(Seg.Begin);
        }
      }
      break;
    }
    case LevelKind::Sparse: {
      Lev.Ptr.assign(static_cast<size_t>(PosCount) + 1, 0);
      size_t SegIdx = 0;
      for (int64_t P = 0; P < PosCount; ++P) {
        Lev.Ptr[P] = static_cast<int64_t>(Lev.Crd.size());
        if (SegIdx < Segments.size() && Segments[SegIdx].ParentPos == P) {
          ForEachGroup(Segments[SegIdx], [&](int64_t C, size_t B, size_t E) {
            NewSegments.push_back(
                {static_cast<int64_t>(Lev.Crd.size()), B, E});
            Lev.Crd.push_back(C);
          });
          ++SegIdx;
        }
      }
      Lev.Ptr[PosCount] = static_cast<int64_t>(Lev.Crd.size());
      PosCount = static_cast<int64_t>(Lev.Crd.size());
      if (Bottom) {
        T.Vals.resize(static_cast<size_t>(PosCount));
        for (const Segment &Seg : NewSegments)
          T.Vals[Seg.ParentPos] = Entries.value(Seg.Begin);
      }
      break;
    }
    case LevelKind::RunLength: {
      assert(Bottom && "non-bottom RunLength rejected above");
      Lev.Ptr.assign(static_cast<size_t>(PosCount) + 1, 0);
      size_t SegIdx = 0;
      for (int64_t P = 0; P < PosCount; ++P) {
        Lev.Ptr[P] = static_cast<int64_t>(Lev.RunEnd.size());
        auto PushRun = [&](int64_t EndC, double V) {
          // Merge with the previous run of this parent when values match.
          if (static_cast<int64_t>(Lev.RunEnd.size()) > Lev.Ptr[P] &&
              T.Vals.back() == V) {
            Lev.RunEnd.back() = EndC;
            return;
          }
          Lev.RunEnd.push_back(EndC);
          T.Vals.push_back(V);
        };
        int64_t NextC = 0;
        if (SegIdx < Segments.size() && Segments[SegIdx].ParentPos == P) {
          ForEachGroup(Segments[SegIdx], [&](int64_t C, size_t B, size_t E) {
            (void)E; // asserted only; optimized builds define NDEBUG
            assert(E - B == 1 && "uncombined duplicate entry");
            if (C > NextC)
              PushRun(C, Fill);
            PushRun(C + 1, Entries.value(B));
            NextC = C + 1;
          });
          ++SegIdx;
        }
        if (NextC < Dim)
          PushRun(Dim, Fill);
      }
      Lev.Ptr[PosCount] = static_cast<int64_t>(Lev.RunEnd.size());
      PosCount = static_cast<int64_t>(Lev.RunEnd.size());
      break;
    }
    case LevelKind::Banded: {
      Lev.Lo.assign(static_cast<size_t>(PosCount), 0);
      Lev.Hi.assign(static_cast<size_t>(PosCount), 0);
      Lev.Off.assign(static_cast<size_t>(PosCount) + 1, 0);
      size_t SegIdx = 0;
      int64_t Total = 0;
      for (int64_t P = 0; P < PosCount; ++P) {
        Lev.Off[P] = Total;
        if (SegIdx < Segments.size() && Segments[SegIdx].ParentPos == P) {
          const Segment &Seg = Segments[SegIdx];
          int64_t LoC = Entries.coord(Seg.Begin, Mode);
          int64_t HiC = Entries.coord(Seg.End - 1, Mode) + 1;
          Lev.Lo[P] = LoC;
          Lev.Hi[P] = HiC;
          ForEachGroup(Seg, [&](int64_t C, size_t B, size_t E) {
            NewSegments.push_back({Total + (C - LoC), B, E});
          });
          Total += HiC - LoC;
          ++SegIdx;
        }
      }
      Lev.Off[PosCount] = Total;
      PosCount = Total;
      if (Bottom) {
        T.Vals.assign(static_cast<size_t>(PosCount), Fill);
        for (const Segment &Seg : NewSegments)
          T.Vals[Seg.ParentPos] = Entries.value(Seg.Begin);
      }
      break;
    }
    }
    Segments = std::move(NewSegments);
  }
  // Self-check: a shallow failure here is a builder bug, but surfacing
  // it as a status keeps the recoverable entry point abort-free.
  if (Status S = T.validate(ValidationLevel::Shallow); !S.ok())
    return std::move(S).withContext("fromCoo self-check");
  return T;
}

Tensor Tensor::dense(std::vector<int64_t> Dims, double Fill) {
  Tensor T;
  T.Dims = std::move(Dims);
  const unsigned N = T.order();
  T.Format = TensorFormat::dense(N);
  T.Fill = Fill;
  T.Levels.resize(N);
  size_t Total = 1;
  for (unsigned L = 0; L < N; ++L) {
    T.Levels[L].Kind = LevelKind::Dense;
    T.Levels[L].Dim = T.Dims[N - 1 - L];
    Total *= static_cast<size_t>(T.Levels[L].Dim);
  }
  T.Vals.assign(Total, Fill);
  return T;
}

namespace {

/// Error helper naming the offending level, so a failed validation
/// localizes without a debugger: "level 1 (Sparse): ...".
Status levelError(unsigned L, LevelKind K, const std::string &Message) {
  const char *Name = K == LevelKind::Dense       ? "Dense"
                     : K == LevelKind::Sparse    ? "Sparse"
                     : K == LevelKind::RunLength ? "RunLength"
                                                 : "Banded";
  return Status::error(ErrCode::InvalidTensor,
                       "level " + std::to_string(L) + " (" + Name +
                           "): " + Message);
}

} // namespace

Status Tensor::validate(ValidationLevel VL) const {
  if (VL == ValidationLevel::None)
    return Status::success();
  const unsigned N = order();
  if (Levels.size() != N || Format.order() != N)
    return Status::error(ErrCode::InvalidTensor,
                         "level count disagrees with tensor order");
  const bool Deep = VL == ValidationLevel::Deep;
  // Walk top-down tracking the position count the next level must
  // cover; every per-level array size is a function of it.
  int64_t PosCount = 1;
  for (unsigned L = 0; L < N; ++L) {
    const Level &Lev = Levels[L];
    const int64_t Dim = Dims[N - 1 - L];
    if (Lev.Kind != Format.Levels[L])
      return levelError(L, Lev.Kind, "kind disagrees with the format");
    if (Lev.Dim != Dim)
      return levelError(L, Lev.Kind,
                        "extent " + std::to_string(Lev.Dim) +
                            " disagrees with mode extent " +
                            std::to_string(Dim));
    switch (Lev.Kind) {
    case LevelKind::Dense: {
      if (Dim < 0)
        return levelError(L, Lev.Kind, "negative extent");
      PosCount *= Dim;
      break;
    }
    case LevelKind::Sparse: {
      if (Lev.Ptr.size() != static_cast<size_t>(PosCount) + 1)
        return levelError(L, Lev.Kind,
                          "Ptr size " + std::to_string(Lev.Ptr.size()) +
                              ", expected " + std::to_string(PosCount + 1));
      const int64_t Total = static_cast<int64_t>(Lev.Crd.size());
      if (Lev.Ptr.front() != 0 || Lev.Ptr.back() != Total)
        return levelError(L, Lev.Kind,
                          "Ptr endpoints do not cover the Crd array");
      if (Deep) {
        for (int64_t P = 0; P < PosCount; ++P) {
          // Range before monotonicity: the fiber scan below indexes Crd
          // with Ptr values, so an interior Ptr past the array must be
          // rejected before it is ever used as a bound.
          if (Lev.Ptr[P + 1] < 0 || Lev.Ptr[P + 1] > Total)
            return levelError(L, Lev.Kind,
                              "Ptr value " + std::to_string(Lev.Ptr[P + 1]) +
                                  " outside [0, " + std::to_string(Total) +
                                  "] at position " + std::to_string(P + 1));
          if (Lev.Ptr[P] > Lev.Ptr[P + 1])
            return levelError(L, Lev.Kind,
                              "Ptr not monotone at position " +
                                  std::to_string(P));
          for (int64_t K = Lev.Ptr[P]; K < Lev.Ptr[P + 1]; ++K) {
            if (Lev.Crd[K] < 0 || Lev.Crd[K] >= Dim)
              return levelError(L, Lev.Kind,
                                "coordinate " + std::to_string(Lev.Crd[K]) +
                                    " outside [0, " + std::to_string(Dim) +
                                    ")");
            if (K > Lev.Ptr[P] && Lev.Crd[K] <= Lev.Crd[K - 1])
              return levelError(L, Lev.Kind,
                                "coordinates not strictly increasing in "
                                "the fiber of position " +
                                    std::to_string(P));
          }
        }
      }
      PosCount = Total;
      break;
    }
    case LevelKind::RunLength: {
      if (L + 1 != N)
        return levelError(L, Lev.Kind, "only supported at the bottom");
      if (Lev.Ptr.size() != static_cast<size_t>(PosCount) + 1)
        return levelError(L, Lev.Kind,
                          "Ptr size " + std::to_string(Lev.Ptr.size()) +
                              ", expected " + std::to_string(PosCount + 1));
      const int64_t Total = static_cast<int64_t>(Lev.RunEnd.size());
      if (Lev.Ptr.front() != 0 || Lev.Ptr.back() != Total)
        return levelError(L, Lev.Kind,
                          "Ptr endpoints do not cover the RunEnd array");
      if (Deep) {
        for (int64_t P = 0; P < PosCount; ++P) {
          if (Lev.Ptr[P + 1] < 0 || Lev.Ptr[P + 1] > Total)
            return levelError(L, Lev.Kind,
                              "Ptr value " + std::to_string(Lev.Ptr[P + 1]) +
                                  " outside [0, " + std::to_string(Total) +
                                  "] at position " + std::to_string(P + 1));
          if (Lev.Ptr[P] > Lev.Ptr[P + 1])
            return levelError(L, Lev.Kind,
                              "Ptr not monotone at position " +
                                  std::to_string(P));
          const int64_t Begin = Lev.Ptr[P], End = Lev.Ptr[P + 1];
          if (Dim > 0 && Begin == End)
            return levelError(L, Lev.Kind,
                              "no runs cover the fiber of position " +
                                  std::to_string(P));
          int64_t Prev = 0;
          for (int64_t K = Begin; K < End; ++K) {
            if (Lev.RunEnd[K] <= Prev || Lev.RunEnd[K] > Dim)
              return levelError(
                  L, Lev.Kind,
                  "run ends not strictly increasing within (0, " +
                      std::to_string(Dim) + "] in the fiber of position " +
                      std::to_string(P));
            Prev = Lev.RunEnd[K];
          }
          if (End > Begin && Lev.RunEnd[End - 1] != Dim)
            return levelError(L, Lev.Kind,
                              "runs do not tile [0, " + std::to_string(Dim) +
                                  ") in the fiber of position " +
                                  std::to_string(P));
        }
      }
      PosCount = Total;
      break;
    }
    case LevelKind::Banded: {
      if (Lev.Lo.size() != static_cast<size_t>(PosCount) ||
          Lev.Hi.size() != static_cast<size_t>(PosCount) ||
          Lev.Off.size() != static_cast<size_t>(PosCount) + 1)
        return levelError(L, Lev.Kind, "Lo/Hi/Off sizes disagree with the "
                                       "parent position count");
      if (PosCount > 0 && Lev.Off.front() != 0)
        return levelError(L, Lev.Kind, "Off does not start at 0");
      if (Deep) {
        for (int64_t P = 0; P < PosCount; ++P) {
          const int64_t Lo = Lev.Lo[P], Hi = Lev.Hi[P];
          if (Lo > Hi)
            return levelError(L, Lev.Kind,
                              "inverted interval [" + std::to_string(Lo) +
                                  ", " + std::to_string(Hi) +
                                  ") at position " + std::to_string(P));
          if (Lo < 0 || Hi > Dim)
            return levelError(L, Lev.Kind,
                              "interval [" + std::to_string(Lo) + ", " +
                                  std::to_string(Hi) + ") outside [0, " +
                                  std::to_string(Dim) + ") at position " +
                                  std::to_string(P));
          if (Lev.Off[P + 1] - Lev.Off[P] != Hi - Lo)
            return levelError(L, Lev.Kind,
                              "Off delta disagrees with the band width "
                              "at position " +
                                  std::to_string(P));
        }
      }
      PosCount = Lev.Off[static_cast<size_t>(PosCount)];
      if (PosCount < 0)
        return levelError(L, Lev.Kind, "negative Off endpoint");
      break;
    }
    }
  }
  if (Vals.size() != static_cast<size_t>(PosCount))
    return Status::error(ErrCode::InvalidTensor,
                         "value array holds " + std::to_string(Vals.size()) +
                             " entries, bottom level expects " +
                             std::to_string(PosCount));
  if (Deep)
    for (size_t I = 0; I < Vals.size(); ++I)
      if (std::isnan(Vals[I]))
        return Status::error(ErrCode::InvalidTensor,
                             "NaN value at position " + std::to_string(I) +
                                 " (semiring folds are not NaN-clean)");
  return Status::success();
}

int64_t Tensor::locate(unsigned L, int64_t Pos, int64_t C) const {
  const Level &Lev = Levels[L];
  switch (Lev.Kind) {
  case LevelKind::Dense:
    return Pos * Lev.Dim + C;
  case LevelKind::Sparse: {
    auto Begin = Lev.Crd.begin() + Lev.Ptr[Pos];
    auto End = Lev.Crd.begin() + Lev.Ptr[Pos + 1];
    auto It = std::lower_bound(Begin, End, C);
    if (It == End || *It != C)
      return -1;
    return It - Lev.Crd.begin();
  }
  case LevelKind::RunLength: {
    auto Begin = Lev.RunEnd.begin() + Lev.Ptr[Pos];
    auto End = Lev.RunEnd.begin() + Lev.Ptr[Pos + 1];
    auto It = std::upper_bound(Begin, End, C);
    assert(It != End || C < Lev.Dim ? It != End : true);
    if (It == End)
      return -1;
    return It - Lev.RunEnd.begin();
  }
  case LevelKind::Banded: {
    if (C < Lev.Lo[Pos] || C >= Lev.Hi[Pos])
      return -1;
    return Lev.Off[Pos] + (C - Lev.Lo[Pos]);
  }
  }
  unreachable("unknown level kind");
}

int64_t Tensor::locateHinted(unsigned L, int64_t Pos, int64_t C,
                             int64_t &CachedParent, int64_t &CachedIdx) const {
  const Level &Lev = Levels[L];
  assert((Lev.Kind == LevelKind::Sparse ||
          Lev.Kind == LevelKind::RunLength) &&
         "hinted locate needs a compressed level");
  if (Lev.Kind == LevelKind::RunLength) {
    // Result: the first run k in [B, E) with RunEnd[k] > C (runs tile
    // the extent, so coordinates inside the extent always resolve).
    const int64_t B = Lev.Ptr[Pos], E = Lev.Ptr[Pos + 1];
    const int64_t *RunEnd = Lev.RunEnd.data();
    int64_t Idx;
    if (CachedParent == Pos && CachedIdx >= B && CachedIdx < E &&
        RunEnd[CachedIdx] <= C) {
      // Ascending lookup: gallop forward from the cached run.
      int64_t Step = 1, Lo = CachedIdx + 1;
      while (Lo + Step < E && RunEnd[Lo + Step] <= C)
        Step <<= 1;
      const int64_t HiB = std::min(Lo + Step, E);
      Idx = std::upper_bound(RunEnd + Lo, RunEnd + HiB, C) - RunEnd;
    } else if (CachedParent == Pos && CachedIdx >= B && CachedIdx < E &&
               (CachedIdx == B || RunEnd[CachedIdx - 1] <= C)) {
      Idx = CachedIdx; // still inside the cached run
    } else {
      Idx = std::upper_bound(RunEnd + B, RunEnd + E, C) - RunEnd;
    }
    CachedParent = Pos;
    CachedIdx = Idx;
    return Idx < E ? Idx : -1;
  }
  const int64_t B = Lev.Ptr[Pos], E = Lev.Ptr[Pos + 1];
  const int64_t *Crd = Lev.Crd.data();
  int64_t Start = B;
  if (CachedParent == Pos && CachedIdx >= B && CachedIdx <= E) {
    if (CachedIdx == E || Crd[CachedIdx] >= C) {
      // Coordinate moved backward (or repeated): bisect the prefix,
      // with a fast path for an exact repeat.
      if (CachedIdx < E && Crd[CachedIdx] == C)
        return CachedIdx;
      Start = B;
    } else {
      // Ascending lookup: gallop forward from the previous result.
      int64_t Step = 1, LoB = CachedIdx + 1;
      while (LoB + Step < E && Crd[LoB + Step] < C)
        Step <<= 1;
      int64_t HiB = std::min(LoB + Step, E);
      int64_t Idx = std::lower_bound(Crd + LoB, Crd + HiB, C) - Crd;
      CachedParent = Pos;
      CachedIdx = Idx;
      return (Idx < E && Crd[Idx] == C) ? Idx : -1;
    }
  }
  int64_t Idx = std::lower_bound(Crd + Start, Crd + E, C) - Crd;
  CachedParent = Pos;
  CachedIdx = Idx;
  return (Idx < E && Crd[Idx] == C) ? Idx : -1;
}

double Tensor::at(const std::vector<int64_t> &Coords) const {
  assert(Coords.size() == order() && "coordinate arity mismatch");
  int64_t Pos = 0;
  for (unsigned L = 0; L < order(); ++L) {
    Pos = locate(L, Pos, Coords[modeOfLevel(L)]);
    if (Pos < 0)
      return Fill;
  }
  return Vals[Pos];
}

double &Tensor::denseRef(const std::vector<int64_t> &Coords) {
  assert(Format.isAllDense() && "denseRef requires an all-dense tensor");
  int64_t Pos = 0;
  for (unsigned L = 0; L < order(); ++L)
    Pos = Pos * Levels[L].Dim + Coords[modeOfLevel(L)];
  return Vals[Pos];
}

void Tensor::setAllValues(double V) {
  std::fill(Vals.begin(), Vals.end(), V);
}

void Tensor::forEach(
    const std::function<void(const std::vector<int64_t> &, double)> &Fn)
    const {
  std::vector<int64_t> Coords(order());
  // Recursive descent over levels.
  std::function<void(unsigned, int64_t)> Walk = [&](unsigned L,
                                                    int64_t Pos) {
    const Level &Lev = Levels[L];
    const unsigned Mode = modeOfLevel(L);
    auto Visit = [&](int64_t C, int64_t Child) {
      Coords[Mode] = C;
      if (L + 1 == order())
        Fn(Coords, Vals[Child]);
      else
        Walk(L + 1, Child);
    };
    switch (Lev.Kind) {
    case LevelKind::Dense:
      for (int64_t C = 0; C < Lev.Dim; ++C)
        Visit(C, Pos * Lev.Dim + C);
      return;
    case LevelKind::Sparse:
      for (int64_t K = Lev.Ptr[Pos]; K < Lev.Ptr[Pos + 1]; ++K)
        Visit(Lev.Crd[K], K);
      return;
    case LevelKind::RunLength: {
      int64_t Start = 0;
      for (int64_t K = Lev.Ptr[Pos]; K < Lev.Ptr[Pos + 1]; ++K) {
        for (int64_t C = Start; C < Lev.RunEnd[K]; ++C)
          Visit(C, K);
        Start = Lev.RunEnd[K];
      }
      return;
    }
    case LevelKind::Banded:
      for (int64_t C = Lev.Lo[Pos]; C < Lev.Hi[Pos]; ++C)
        Visit(C, Lev.Off[Pos] + (C - Lev.Lo[Pos]));
      return;
    }
    unreachable("unknown level kind");
  };
  Walk(0, 0);
}

Coo Tensor::toCoo() const {
  Coo Out(Dims);
  forEach([&Out](const std::vector<int64_t> &Coords, double V) {
    Out.add(Coords, V);
  });
  return Out;
}

Tensor Tensor::transposed(const std::vector<unsigned> &ModePerm,
                          const TensorFormat &NewFormat) const {
  return fromCoo(toCoo().transposed(ModePerm), NewFormat, Fill);
}

std::pair<Tensor, Tensor> Tensor::splitDiagonal(const Partition &Sym) const {
  assert(Sym.order() == order() && "partition order mismatch");
  Coo OffDiag(Dims), Diag(Dims);
  forEach([&](const std::vector<int64_t> &Coords, double V) {
    if (Sym.isOnDiagonal(Coords))
      Diag.add(Coords, V);
    else
      OffDiag.add(Coords, V);
  });
  return {fromCoo(std::move(OffDiag), Format, Fill),
          fromCoo(std::move(Diag), Format, Fill)};
}

double Tensor::maxAbsDiff(const Tensor &A, const Tensor &B) {
  assert(A.dims() == B.dims() && "shape mismatch");
  double Max = 0;
  A.forEach([&](const std::vector<int64_t> &Coords, double V) {
    Max = std::max(Max, std::fabs(V - B.at(Coords)));
  });
  B.forEach([&](const std::vector<int64_t> &Coords, double V) {
    Max = std::max(Max, std::fabs(V - A.at(Coords)));
  });
  return Max;
}

namespace {

/// Replicates the canonical triangle into every non-canonical
/// coordinate whose outer-mode value lies in [Lo, Hi]. Returns the
/// number of copies. Writes touch only non-canonical coordinates and
/// reads touch only canonical ones, so disjoint outer ranges never
/// conflict.
uint64_t replicateRange(Tensor &T, const Partition &Sym, int64_t Lo,
                        int64_t Hi) {
  const unsigned N = T.order();
  uint64_t Copies = 0;
  std::vector<int64_t> Coords(N, 0);
  std::function<void(unsigned)> Walk = [&](unsigned M) {
    if (M == N) {
      if (!Sym.isCanonical(Coords)) {
        T.denseRef(Coords) = T.at(Sym.canonicalize(Coords));
        ++Copies;
      }
      return;
    }
    for (Coords[M] = 0; Coords[M] < T.dim(M); ++Coords[M])
      Walk(M + 1);
  };
  for (Coords[0] = Lo; Coords[0] <= Hi; ++Coords[0])
    Walk(1);
  return Copies;
}

} // namespace

uint64_t replicateSymmetric(Tensor &T, const Partition &Sym,
                            unsigned Threads) {
  assert(T.format().isAllDense() && "replication needs a dense tensor");
  assert(Sym.order() == T.order() && "partition order mismatch");
  if (T.order() == 0)
    return 0;
  const int64_t Dim0 = T.dim(0);
  if (Threads <= 1 || Dim0 < 2)
    return replicateRange(T, Sym, 0, Dim0 - 1);
  // Outer-mode chunks run on the shared pool. Each non-canonical
  // coordinate is written by exactly one chunk and sources are
  // canonical (never written), so the result is independent of the
  // decomposition; per-chunk copy counts sum to the same total.
  std::vector<ChunkRange> Chunks = staticBlocks(0, Dim0 - 1, Threads);
  std::vector<uint64_t> Counts(Chunks.size(), 0);
  ThreadPool::global().parallelFor(
      static_cast<unsigned>(Chunks.size()), [&](unsigned I) {
        Counts[I] = replicateRange(T, Sym, Chunks[I].Lo, Chunks[I].Hi);
      });
  uint64_t Copies = 0;
  for (uint64_t C : Counts)
    Copies += C;
  return Copies;
}

std::string Tensor::summary() const {
  std::ostringstream OS;
  OS << order() << "-d ";
  for (unsigned M = 0; M < order(); ++M) {
    if (M)
      OS << "x";
    OS << Dims[M];
  }
  OS << ", " << Vals.size() << " stored, " << Format.str();
  return OS.str();
}

} // namespace systec
