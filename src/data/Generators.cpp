//===- data/Generators.cpp ------------------------------------*- C++ -*-===//

#include "data/Generators.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace systec {

Tensor generateSymmetricTensor(unsigned Order, int64_t Dim,
                               int64_t CanonicalNnz, Rng &R,
                               const TensorFormat &Format, double Fill) {
  assert(Order >= 2 && "symmetric tensors need order >= 2");
  Coo Entries(std::vector<int64_t>(Order, Dim));
  std::set<std::vector<int64_t>> Seen;
  // Sample canonical (sorted) coordinates, then write the full orbit so
  // the tensor is exactly symmetric.
  for (int64_t K = 0; K < CanonicalNnz; ++K) {
    std::vector<int64_t> C(Order);
    for (unsigned M = 0; M < Order; ++M)
      C[M] = R.nextIndex(Dim);
    std::sort(C.begin(), C.end());
    if (!Seen.insert(C).second)
      continue;
    double V = R.nextDouble();
    std::vector<int64_t> Perm = C;
    std::sort(Perm.begin(), Perm.end());
    do {
      Entries.add(Perm, V);
    } while (std::next_permutation(Perm.begin(), Perm.end()));
  }
  // Duplicate orbit coordinates cannot occur (orbits are disjoint), so
  // the combine op is irrelevant; Add keeps values intact.
  return Tensor::fromCoo(std::move(Entries), Format, Fill);
}

Tensor generateSparseMatrix(int64_t Rows, int64_t Cols, int64_t Nnz, Rng &R,
                            const TensorFormat &Format) {
  Coo Entries({Rows, Cols});
  std::set<std::pair<int64_t, int64_t>> Seen;
  for (int64_t K = 0; K < Nnz; ++K) {
    int64_t I = R.nextIndex(Rows), J = R.nextIndex(Cols);
    if (!Seen.insert({I, J}).second)
      continue;
    Entries.add({I, J}, R.nextDouble());
  }
  return Tensor::fromCoo(std::move(Entries), Format);
}

Tensor symmetrizeMatrix(const Tensor &A) {
  assert(A.order() == 2 && A.dim(0) == A.dim(1) &&
         "symmetrize needs a square matrix");
  Coo Entries(A.dims());
  A.forEach([&Entries](const std::vector<int64_t> &C, double V) {
    Entries.add(C, V);
    Entries.add({C[1], C[0]}, V);
  });
  return Tensor::fromCoo(std::move(Entries), A.format(), A.fill());
}

Tensor generateBandedSymmetric(int64_t Dim, int64_t Bandwidth, Rng &R,
                               const TensorFormat &Format, double Fill) {
  Coo Entries({Dim, Dim});
  for (int64_t I = 0; I < Dim; ++I) {
    for (int64_t J = I; J < std::min(Dim, I + Bandwidth + 1); ++J) {
      double V = R.nextDouble();
      Entries.add({I, J}, V);
      if (I != J)
        Entries.add({J, I}, V);
    }
  }
  return Tensor::fromCoo(std::move(Entries), Format, Fill);
}

Tensor generateDenseMatrix(int64_t Rows, int64_t Cols, Rng &R) {
  Tensor T = Tensor::dense({Rows, Cols});
  for (double &V : T.vals())
    V = R.nextDouble();
  return T;
}

Tensor generateDenseVector(int64_t N, Rng &R) {
  Tensor T = Tensor::dense({N});
  for (double &V : T.vals())
    V = R.nextDouble();
  return T;
}

const std::vector<MatrixSpec> &vuducSuite() {
  // Table 2 of the paper (Vuduc et al. collection).
  static const std::vector<MatrixSpec> Suite = {
      {"bayer02", 13935, 63679},    {"bayer10", 13436, 94926},
      {"bcsstk35", 30237, 1450163}, {"coater2", 9540, 207308},
      {"crystk02", 13965, 968583},  {"crystk03", 24696, 1751178},
      {"ct20stif", 52329, 2698463}, {"ex11", 16614, 1096948},
      {"finan512", 74752, 596992},  {"gemat11", 4929, 33185},
      {"goodwin", 7320, 324784},    {"lhr10", 10672, 232633},
      {"lnsp3937", 3937, 25407},    {"memplus", 17758, 126150},
      {"nasasrb", 54870, 2677324},  {"olafu", 16146, 1015156},
      {"onetone2", 36057, 227628},  {"orani678", 2529, 90185},
      {"raefsky3", 21200, 1488768}, {"raefsky4", 19779, 1328611},
      {"rdist1", 4134, 94408},      {"rim", 22560, 1014951},
      {"saylr4", 3564, 22316},      {"sherman3", 5005, 20033},
      {"sherman5", 3312, 20793},    {"shyy161", 76480, 329762},
      {"venkat01", 62424, 1717792}, {"vibrobox", 12328, 342828},
      {"wang3", 26064, 177168},     {"wang4", 26068, 177196},
  };
  return Suite;
}

Tensor buildSuiteMatrix(const MatrixSpec &Spec, Rng &R) {
  // A + Aᵀ roughly doubles the entry count; target half so the
  // symmetrized matrix matches the spec's nnz.
  Tensor A = generateSparseMatrix(Spec.Dimension, Spec.Dimension,
                                  std::max<int64_t>(1, Spec.Nonzeros / 2),
                                  R, TensorFormat::csf(2));
  return symmetrizeMatrix(A);
}

} // namespace systec
