//===- data/Generators.h - Workload generation ----------------*- C++ -*-===//
///
/// \file
/// Workload generators for the paper's evaluation (Section 5.2):
/// uniformly distributed symmetric random sparse tensors via an
/// Erdős–Rényi distribution, random dense factor matrices, and the
/// Vuduc et al. matrix collection (Table 2). The SuiteSparse downloads
/// the paper uses are substituted with synthetic Erdős–Rényi matrices
/// matching each matrix's dimension and nonzero count, symmetrized as
/// A + Aᵀ exactly like the paper symmetrizes the asymmetric members of
/// the suite (see DESIGN.md for the substitution rationale).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_DATA_GENERATORS_H
#define SYSTEC_DATA_GENERATORS_H

#include "support/Random.h"
#include "tensor/Tensor.h"

#include <string>
#include <vector>

namespace systec {

/// A fully symmetric order-\p Order tensor with extent \p Dim per mode.
/// Approximately \p CanonicalNnz canonical (sorted-coordinate) entries
/// are sampled uniformly; each is replicated to its full orbit so the
/// stored tensor is exactly symmetric. Values are uniform in [0, 1).
Tensor generateSymmetricTensor(unsigned Order, int64_t Dim,
                               int64_t CanonicalNnz, Rng &R,
                               const TensorFormat &Format,
                               double Fill = 0.0);

/// An asymmetric Erdős–Rényi sparse matrix with ~Nnz entries.
Tensor generateSparseMatrix(int64_t Rows, int64_t Cols, int64_t Nnz, Rng &R,
                            const TensorFormat &Format);

/// Symmetrizes a square matrix as A + Aᵀ (the paper's treatment of the
/// asymmetric suite members).
Tensor symmetrizeMatrix(const Tensor &A);

/// A banded symmetric matrix (structured-tensor workloads): entries
/// within \p Bandwidth of the diagonal. \p Fill is the out-of-band
/// value (inf for min-plus workloads).
Tensor generateBandedSymmetric(int64_t Dim, int64_t Bandwidth, Rng &R,
                               const TensorFormat &Format,
                               double Fill = 0.0);

/// A dense matrix with uniform [0,1) values.
Tensor generateDenseMatrix(int64_t Rows, int64_t Cols, Rng &R);

/// A dense vector with uniform [0,1) values.
Tensor generateDenseVector(int64_t N, Rng &R);

/// One row of Table 2 (the Vuduc et al. suite).
struct MatrixSpec {
  std::string Name;
  int64_t Dimension;
  int64_t Nonzeros;
};

/// The 29 matrices of Table 2 with the paper's dimensions and nonzero
/// counts.
const std::vector<MatrixSpec> &vuducSuite();

/// Builds the synthetic stand-in for one suite matrix: Erdős–Rényi with
/// the spec's dimension/nnz, symmetrized A + Aᵀ, in CSC.
Tensor buildSuiteMatrix(const MatrixSpec &Spec, Rng &R);

} // namespace systec

#endif // SYSTEC_DATA_GENERATORS_H
