//===- symmetry/Partition.h - Index-set partitions ------------*- C++ -*-===//
///
/// \file
/// A partition of a tensor's mode names describing its (partial) symmetry
/// (paper Definition 2.2). A tensor T with partition Pi is invariant
/// under any permutation of modes that stays within a part of Pi.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_SYMMETRY_PARTITION_H
#define SYSTEC_SYMMETRY_PARTITION_H

#include <cstdint>
#include <string>
#include <vector>

namespace systec {

/// A partition of mode positions {0, ..., order-1}. Parts of size one
/// denote modes that do not participate in any symmetry; parts of size
/// >= 2 are symmetry groups (Definition 2.2).
class Partition {
public:
  Partition() = default;

  /// Builds a partition from explicit parts; validates disjointness and
  /// coverage of {0..Order-1}.
  Partition(unsigned Order, std::vector<std::vector<unsigned>> Parts);

  /// The trivial partition: every mode in its own part (no symmetry).
  static Partition none(unsigned Order);

  /// The full partition: all modes in one part (full symmetry,
  /// Definition 2.1).
  static Partition full(unsigned Order);

  /// Parses compact notation like "{0,1}{2}" or "{1,2,3}" over \p Order
  /// modes; unmentioned modes become singleton parts.
  static Partition parse(unsigned Order, const std::string &Text);

  unsigned order() const { return Order; }
  const std::vector<std::vector<unsigned>> &parts() const { return Parts; }

  /// Whether modes \p A and \p B are in the same part.
  bool samePart(unsigned A, unsigned B) const;

  /// The part index containing mode \p M.
  unsigned partOf(unsigned M) const;

  /// True if some part has size >= 2.
  bool hasSymmetry() const;

  /// True if there is exactly one part covering every mode.
  bool isFull() const;

  /// The modes that belong to parts of size >= 2, in ascending order.
  /// This is the tensor's contribution to the permutable set P
  /// (Section 4.1 stage 1).
  std::vector<unsigned> permutableModes() const;

  /// Number of permutations that fix the tensor: prod over parts of
  /// |part|!.
  uint64_t symmetryOrder() const;

  /// Canonicality of a coordinate tuple (Definition 2.3): within every
  /// part, coordinates must be non-decreasing in mode order.
  bool isCanonical(const std::vector<int64_t> &Coords) const;

  /// Sorts coordinates within each part to produce the canonical
  /// representative of \p Coords under this symmetry.
  std::vector<int64_t> canonicalize(const std::vector<int64_t> &Coords) const;

  /// True if any two modes in one part hold equal coordinates
  /// (Definition 2.4: the tuple lies on a diagonal of the symmetry).
  bool isOnDiagonal(const std::vector<int64_t> &Coords) const;

  /// Number of distinct tuples in the orbit of \p Coords under this
  /// symmetry (n!/m! accounting in Section 3.1).
  uint64_t orbitSize(const std::vector<int64_t> &Coords) const;

  std::string str() const;

  bool operator==(const Partition &Other) const {
    return Order == Other.Order && Parts == Other.Parts;
  }

private:
  unsigned Order = 0;
  std::vector<std::vector<unsigned>> Parts;
  std::vector<unsigned> PartIndex; // mode -> part
};

} // namespace systec

#endif // SYSTEC_SYMMETRY_PARTITION_H
