//===- symmetry/Partition.cpp ---------------------------------*- C++ -*-===//

#include "symmetry/Partition.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

namespace systec {

Partition::Partition(unsigned OrderIn,
                     std::vector<std::vector<unsigned>> PartsIn)
    : Order(OrderIn), Parts(std::move(PartsIn)) {
  // Normalize: sort modes within parts, sort parts by first mode, then
  // validate coverage.
  for (auto &Part : Parts) {
    assert(!Part.empty() && "empty part in partition");
    std::sort(Part.begin(), Part.end());
  }
  std::sort(Parts.begin(), Parts.end(),
            [](const auto &A, const auto &B) { return A[0] < B[0]; });
  PartIndex.assign(Order, ~0u);
  for (unsigned P = 0; P < Parts.size(); ++P) {
    for (unsigned M : Parts[P]) {
      if (M >= Order)
        fatalError("partition mentions mode out of range");
      if (PartIndex[M] != ~0u)
        fatalError("partition parts are not disjoint");
      PartIndex[M] = P;
    }
  }
  for (unsigned M = 0; M < Order; ++M)
    if (PartIndex[M] == ~0u)
      fatalError("partition does not cover every mode");
}

Partition Partition::none(unsigned Order) {
  std::vector<std::vector<unsigned>> Parts;
  for (unsigned M = 0; M < Order; ++M)
    Parts.push_back({M});
  return Partition(Order, std::move(Parts));
}

Partition Partition::full(unsigned Order) {
  std::vector<unsigned> All;
  for (unsigned M = 0; M < Order; ++M)
    All.push_back(M);
  return Partition(Order, {All});
}

Partition Partition::parse(unsigned Order, const std::string &Text) {
  std::vector<std::vector<unsigned>> Parts;
  std::vector<bool> Mentioned(Order, false);
  size_t I = 0;
  while (I < Text.size()) {
    if (std::isspace(static_cast<unsigned char>(Text[I]))) {
      ++I;
      continue;
    }
    if (Text[I] != '{')
      fatalError("partition syntax: expected '{' in \"" + Text + "\"");
    size_t Close = Text.find('}', I);
    if (Close == std::string::npos)
      fatalError("partition syntax: missing '}' in \"" + Text + "\"");
    std::vector<unsigned> Part;
    for (const std::string &Piece :
         splitAndTrim(Text.substr(I + 1, Close - I - 1), ',')) {
      if (Piece.empty())
        continue;
      unsigned M = static_cast<unsigned>(std::stoul(Piece));
      if (M >= Order)
        fatalError("partition mode " + Piece + " out of range");
      Part.push_back(M);
      Mentioned[M] = true;
    }
    if (!Part.empty())
      Parts.push_back(std::move(Part));
    I = Close + 1;
  }
  for (unsigned M = 0; M < Order; ++M)
    if (!Mentioned[M])
      Parts.push_back({M});
  return Partition(Order, std::move(Parts));
}

bool Partition::samePart(unsigned A, unsigned B) const {
  assert(A < Order && B < Order && "mode out of range");
  return PartIndex[A] == PartIndex[B];
}

unsigned Partition::partOf(unsigned M) const {
  assert(M < Order && "mode out of range");
  return PartIndex[M];
}

bool Partition::hasSymmetry() const {
  for (const auto &Part : Parts)
    if (Part.size() >= 2)
      return true;
  return false;
}

bool Partition::isFull() const {
  return Parts.size() == 1 && Parts[0].size() == Order;
}

std::vector<unsigned> Partition::permutableModes() const {
  std::vector<unsigned> Modes;
  for (const auto &Part : Parts)
    if (Part.size() >= 2)
      Modes.insert(Modes.end(), Part.begin(), Part.end());
  std::sort(Modes.begin(), Modes.end());
  return Modes;
}

uint64_t Partition::symmetryOrder() const {
  uint64_t Result = 1;
  for (const auto &Part : Parts)
    for (uint64_t K = 2; K <= Part.size(); ++K)
      Result *= K;
  return Result;
}

bool Partition::isCanonical(const std::vector<int64_t> &Coords) const {
  assert(Coords.size() == Order && "coordinate arity mismatch");
  for (const auto &Part : Parts)
    for (size_t I = 0; I + 1 < Part.size(); ++I)
      if (Coords[Part[I]] > Coords[Part[I + 1]])
        return false;
  return true;
}

std::vector<int64_t>
Partition::canonicalize(const std::vector<int64_t> &Coords) const {
  assert(Coords.size() == Order && "coordinate arity mismatch");
  std::vector<int64_t> Out = Coords;
  for (const auto &Part : Parts) {
    std::vector<int64_t> Vals;
    for (unsigned M : Part)
      Vals.push_back(Out[M]);
    std::sort(Vals.begin(), Vals.end());
    for (size_t I = 0; I < Part.size(); ++I)
      Out[Part[I]] = Vals[I];
  }
  return Out;
}

bool Partition::isOnDiagonal(const std::vector<int64_t> &Coords) const {
  assert(Coords.size() == Order && "coordinate arity mismatch");
  for (const auto &Part : Parts)
    for (size_t I = 0; I < Part.size(); ++I)
      for (size_t J = I + 1; J < Part.size(); ++J)
        if (Coords[Part[I]] == Coords[Part[J]])
          return true;
  return false;
}

uint64_t Partition::orbitSize(const std::vector<int64_t> &Coords) const {
  assert(Coords.size() == Order && "coordinate arity mismatch");
  uint64_t Result = 1;
  for (const auto &Part : Parts) {
    // Distinct arrangements of the multiset of coordinates in this part:
    // |part|! / prod(multiplicity!).
    std::map<int64_t, uint64_t> Mult;
    for (unsigned M : Part)
      ++Mult[Coords[M]];
    uint64_t Numer = 1;
    for (uint64_t K = 2; K <= Part.size(); ++K)
      Numer *= K;
    uint64_t Denom = 1;
    for (const auto &[Val, Count] : Mult)
      for (uint64_t K = 2; K <= Count; ++K)
        Denom *= K;
    Result *= Numer / Denom;
  }
  return Result;
}

std::string Partition::str() const {
  std::ostringstream OS;
  for (const auto &Part : Parts) {
    OS << "{";
    for (size_t I = 0; I < Part.size(); ++I) {
      if (I)
        OS << ",";
      OS << Part[I];
    }
    OS << "}";
  }
  return OS.str();
}

} // namespace systec
