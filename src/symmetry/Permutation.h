//===- symmetry/Permutation.h - Permutations of index tuples --*- C++ -*-===//
///
/// \file
/// Permutations in one-line notation and generation of (constrained)
/// symmetric groups. The symmetrization stage (paper Section 4.1) applies
/// every permutation in a *unique symmetry group* S_P|E (Definition 4.2)
/// to the original assignment.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_SYMMETRY_PERMUTATION_H
#define SYSTEC_SYMMETRY_PERMUTATION_H

#include <cstddef>
#include <string>
#include <vector>

namespace systec {

/// A permutation of {0, ..., n-1} in one-line notation: position \c T of
/// the permuted tuple holds element \c Image[T] of the original, i.e.
/// apply(X)[T] = X[Image[T]]. This matches the paper's convention in
/// Figure 5 where sigma = (3,1,2) maps (i,k,l) to (l,i,k).
class Permutation {
public:
  Permutation() = default;
  explicit Permutation(std::vector<unsigned> Image);

  /// The identity permutation on \p N elements.
  static Permutation identity(unsigned N);

  unsigned size() const { return static_cast<unsigned>(Image.size()); }
  unsigned operator[](unsigned T) const { return Image[T]; }

  /// Applies this permutation to a tuple: result[T] = X[Image[T]].
  template <typename T>
  std::vector<T> apply(const std::vector<T> &X) const {
    std::vector<T> Out(Image.size());
    for (size_t I = 0; I < Image.size(); ++I)
      Out[I] = X[Image[I]];
    return Out;
  }

  /// Composition: (this * Other).apply(X) == this.apply(Other.apply(X)).
  Permutation compose(const Permutation &Other) const;

  /// The inverse permutation.
  Permutation inverse() const;

  bool isIdentity() const;
  bool operator==(const Permutation &Other) const {
    return Image == Other.Image;
  }

  /// One-line notation string, e.g. "(2,0,1)".
  std::string str() const;

  const std::vector<unsigned> &image() const { return Image; }

private:
  std::vector<unsigned> Image;
};

/// All n! permutations of {0,...,N-1}, in lexicographic order of their
/// one-line notation. Deterministic order keeps generated code stable.
std::vector<Permutation> allPermutations(unsigned N);

} // namespace systec

#endif // SYSTEC_SYMMETRY_PERMUTATION_H
