//===- symmetry/EquivalenceGroup.cpp --------------------------*- C++ -*-===//

#include "symmetry/EquivalenceGroup.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

namespace systec {

EquivalenceGroup::EquivalenceGroup(std::vector<unsigned> RunLengthsIn)
    : RunLengths(std::move(RunLengthsIn)) {
  N = 0;
  for (unsigned Len : RunLengths) {
    assert(Len >= 1 && "zero-length run");
    N += Len;
  }
  RunOfPos.resize(N);
  RunBegin.resize(RunLengths.size());
  unsigned Pos = 0;
  for (unsigned R = 0; R < RunLengths.size(); ++R) {
    RunBegin[R] = Pos;
    for (unsigned I = 0; I < RunLengths[R]; ++I)
      RunOfPos[Pos++] = R;
  }
}

EquivalenceGroup EquivalenceGroup::distinct(unsigned N) {
  return EquivalenceGroup(std::vector<unsigned>(N, 1u));
}

bool EquivalenceGroup::isOffDiagonal() const {
  for (unsigned Len : RunLengths)
    if (Len > 1)
      return false;
  return true;
}

std::pair<unsigned, unsigned> EquivalenceGroup::runRange(unsigned R) const {
  assert(R < RunLengths.size() && "run out of range");
  return {RunBegin[R], RunBegin[R] + RunLengths[R]};
}

bool EquivalenceGroup::sameRun(unsigned A, unsigned B) const {
  assert(A < N && B < N && "position out of range");
  return RunOfPos[A] == RunOfPos[B];
}

unsigned EquivalenceGroup::representative(unsigned A) const {
  assert(A < N && "position out of range");
  return RunBegin[RunOfPos[A]];
}

uint64_t EquivalenceGroup::uniquePermutationCount() const {
  uint64_t Numer = 1;
  for (uint64_t K = 2; K <= N; ++K)
    Numer *= K;
  uint64_t Denom = 1;
  for (unsigned Len : RunLengths)
    for (uint64_t K = 2; K <= Len; ++K)
      Denom *= K;
  return Numer / Denom;
}

std::vector<Permutation> EquivalenceGroup::uniquePermutations() const {
  std::vector<Permutation> Result;
  for (const Permutation &Sigma : allPermutations(N)) {
    // Definition 4.2 (stated over sigma's positions): for positions I<J
    // in the same run of E, require sigma placing I before J. With our
    // one-line convention result[T] = X[Sigma[T]], element I appears at
    // output position Sigma^-1(I); order preservation of same-run
    // elements means Inv[I] < Inv[J].
    Permutation Inv = Sigma.inverse();
    bool Ok = true;
    for (unsigned I = 0; I < N && Ok; ++I)
      for (unsigned J = I + 1; J < N && Ok; ++J)
        if (sameRun(I, J) && Inv[I] > Inv[J])
          Ok = false;
    if (Ok)
      Result.push_back(Sigma);
  }
  assert(Result.size() == uniquePermutationCount() &&
         "unique symmetry group size mismatch");
  return Result;
}

std::vector<EquivalenceGroup> EquivalenceGroup::enumerate(unsigned N) {
  assert(N >= 1 && "enumerating groups over empty index set");
  // Compositions of N via the 2^(N-1) cut masks. We order with the
  // off-diagonal (all cuts) case first — that matches the paper's
  // listings which handle the pure-triangle block before diagonals.
  std::vector<EquivalenceGroup> Result;
  std::vector<std::vector<unsigned>> Compositions;
  for (uint64_t Mask = 0; Mask < (1ull << (N - 1)); ++Mask) {
    std::vector<unsigned> Runs;
    unsigned Len = 1;
    for (unsigned I = 0; I + 1 < N; ++I) {
      if (Mask & (1ull << I)) {
        Runs.push_back(Len);
        Len = 1;
      } else {
        ++Len;
      }
    }
    Runs.push_back(Len);
    Compositions.push_back(std::move(Runs));
  }
  std::sort(Compositions.begin(), Compositions.end(),
            [](const std::vector<unsigned> &A, const std::vector<unsigned> &B) {
              if (A.size() != B.size())
                return A.size() > B.size(); // more runs = fewer equalities
              return A < B;
            });
  for (auto &Runs : Compositions)
    Result.push_back(EquivalenceGroup(std::move(Runs)));
  return Result;
}

EquivalenceGroup
EquivalenceGroup::classify(const std::vector<int64_t> &Sorted) {
  assert(!Sorted.empty() && "classifying empty coordinates");
  assert(std::is_sorted(Sorted.begin(), Sorted.end()) &&
         "classify requires canonical (sorted) coordinates");
  std::vector<unsigned> Runs;
  unsigned Len = 1;
  for (size_t I = 1; I < Sorted.size(); ++I) {
    if (Sorted[I] == Sorted[I - 1]) {
      ++Len;
    } else {
      Runs.push_back(Len);
      Len = 1;
    }
  }
  Runs.push_back(Len);
  return EquivalenceGroup(std::move(Runs));
}

std::string
EquivalenceGroup::str(const std::vector<std::string> &Names) const {
  assert(Names.size() == N && "name count mismatch");
  std::ostringstream OS;
  OS << "{";
  unsigned Pos = 0;
  for (unsigned R = 0; R < RunLengths.size(); ++R) {
    if (R)
      OS << ",";
    OS << "(";
    for (unsigned I = 0; I < RunLengths[R]; ++I) {
      if (I)
        OS << "=";
      OS << Names[Pos++];
    }
    OS << ")";
  }
  OS << "}";
  return OS.str();
}

} // namespace systec
