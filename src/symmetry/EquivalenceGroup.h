//===- symmetry/EquivalenceGroup.h - Diagonal classification --*- C++ -*-===//
///
/// \file
/// Equivalence groups (paper Definition 4.1) generalize diagonals: an
/// equivalence group over an *ordered* permutable index list P states
/// which adjacent indices in the canonical chain p1 <= ... <= pn are
/// equal. Under the monotone canonical condition, equal indices must
/// form contiguous runs, so the equivalence groups compatible with the
/// chain are exactly the 2^(n-1) compositions of n.
///
/// The unique symmetry group S_P|E (Definition 4.2) is the set of
/// permutations that are order-preserving within every run of E; its
/// size is n! / prod(run!), the number of distinct assignments to emit
/// for coordinates on that diagonal (Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_SYMMETRY_EQUIVALENCEGROUP_H
#define SYSTEC_SYMMETRY_EQUIVALENCEGROUP_H

#include "symmetry/Permutation.h"

#include <cstdint>
#include <string>
#include <vector>

namespace systec {

/// An equivalence group over an ordered permutable index list of size N,
/// represented as a composition (ordered list of run lengths summing to
/// N). Run lengths > 1 mark maximal groups of equal indices.
class EquivalenceGroup {
public:
  explicit EquivalenceGroup(std::vector<unsigned> RunLengths);

  /// The finest group: no indices equal (all runs of length 1). This is
  /// the off-diagonal case.
  static EquivalenceGroup distinct(unsigned N);

  unsigned size() const { return N; }
  const std::vector<unsigned> &runs() const { return RunLengths; }

  /// True if every run has length 1 (no equalities).
  bool isOffDiagonal() const;

  /// Position range [Begin, End) of run \p R in the ordered index list.
  std::pair<unsigned, unsigned> runRange(unsigned R) const;

  /// Whether ordered positions \p A and \p B lie in the same run.
  bool sameRun(unsigned A, unsigned B) const;

  /// The representative (first) position of the run containing \p A.
  unsigned representative(unsigned A) const;

  /// |S_P|E| = n! / prod(run!).
  uint64_t uniquePermutationCount() const;

  /// The unique symmetry group S_P|E: permutations sigma (one-line,
  /// paper convention result[T] = X[sigma[T]]) such that positions in
  /// the same run keep their relative order. Deterministic
  /// lexicographic order.
  std::vector<Permutation> uniquePermutations() const;

  /// All equivalence groups over N ordered indices that are compatible
  /// with the monotone canonical chain: the 2^(N-1) compositions of N,
  /// finest (off-diagonal) first, then by lexicographic run pattern.
  static std::vector<EquivalenceGroup> enumerate(unsigned N);

  /// Classifies a concrete coordinate tuple (already canonical, i.e.
  /// non-decreasing) into its equivalence group.
  static EquivalenceGroup classify(const std::vector<int64_t> &Sorted);

  /// Human-readable form over index names, e.g. "{(i=k),(l)}".
  std::string str(const std::vector<std::string> &Names) const;

  bool operator==(const EquivalenceGroup &Other) const {
    return RunLengths == Other.RunLengths;
  }

private:
  unsigned N = 0;
  std::vector<unsigned> RunLengths;
  std::vector<unsigned> RunOfPos; // position -> run id
  std::vector<unsigned> RunBegin; // run id -> first position
};

} // namespace systec

#endif // SYSTEC_SYMMETRY_EQUIVALENCEGROUP_H
