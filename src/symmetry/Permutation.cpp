//===- symmetry/Permutation.cpp -------------------------------*- C++ -*-===//

#include "symmetry/Permutation.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

namespace systec {

Permutation::Permutation(std::vector<unsigned> ImageIn)
    : Image(std::move(ImageIn)) {
  std::vector<bool> Seen(Image.size(), false);
  for (unsigned V : Image) {
    assert(V < Image.size() && "permutation image out of range");
    assert(!Seen[V] && "permutation image has duplicates");
    Seen[V] = true;
  }
}

Permutation Permutation::identity(unsigned N) {
  std::vector<unsigned> Image(N);
  std::iota(Image.begin(), Image.end(), 0u);
  return Permutation(std::move(Image));
}

Permutation Permutation::compose(const Permutation &Other) const {
  assert(size() == Other.size() && "composing mismatched permutations");
  std::vector<unsigned> Out(size());
  // (this ∘ Other).apply(X)[T] = Other.apply(X)[Image[T]]
  //                            = X[Other.Image[Image[T]]].
  for (unsigned T = 0; T < size(); ++T)
    Out[T] = Other.Image[Image[T]];
  return Permutation(std::move(Out));
}

Permutation Permutation::inverse() const {
  std::vector<unsigned> Out(size());
  for (unsigned T = 0; T < size(); ++T)
    Out[Image[T]] = T;
  return Permutation(std::move(Out));
}

bool Permutation::isIdentity() const {
  for (unsigned T = 0; T < size(); ++T)
    if (Image[T] != T)
      return false;
  return true;
}

std::string Permutation::str() const {
  std::ostringstream OS;
  OS << "(";
  for (unsigned T = 0; T < size(); ++T) {
    if (T)
      OS << ",";
    OS << Image[T];
  }
  OS << ")";
  return OS.str();
}

std::vector<Permutation> allPermutations(unsigned N) {
  std::vector<unsigned> Image(N);
  std::iota(Image.begin(), Image.end(), 0u);
  std::vector<Permutation> Result;
  do {
    Result.push_back(Permutation(Image));
  } while (std::next_permutation(Image.begin(), Image.end()));
  return Result;
}

} // namespace systec
