//===- ir/Cond.h - Index comparison conditions -----------------*- C++ -*-===//
///
/// \file
/// Conditions over index variables in disjunctive normal form. The
/// symmetrization stage guards each equivalence-group block with a
/// conjunction of comparisons between permutable indices (e.g.
/// `i < k && k == l`), and the consolidation transform (paper 4.2.4)
/// replaces blocks with the *union* of their conditions — which DNF
/// makes a concatenation. The runtime lifts conjunction atoms into loop
/// bounds, mirroring Finch's behaviour (paper Section 2.2).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_IR_COND_H
#define SYSTEC_IR_COND_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace systec {

/// Comparison kinds between two index variables.
enum class CmpKind { LT, LE, EQ, NE, GT, GE };

/// Surface syntax for \p Kind, e.g. "<=".
const char *cmpKindName(CmpKind Kind);

/// Evaluates \p Kind on concrete coordinates.
bool evalCmp(CmpKind Kind, int64_t A, int64_t B);

/// The comparison with swapped operands: A cmp B == B cmp' A.
CmpKind swapCmp(CmpKind Kind);

/// The logical negation of the comparison.
CmpKind negateCmp(CmpKind Kind);

/// An atomic comparison between two index variables.
struct CmpAtom {
  CmpKind Kind;
  std::string Lhs;
  std::string Rhs;

  bool operator==(const CmpAtom &Other) const {
    return Kind == Other.Kind && Lhs == Other.Lhs && Rhs == Other.Rhs;
  }
  std::string str() const;
};

/// A conjunction of atoms; empty means `true`.
struct Conj {
  std::vector<CmpAtom> Atoms;

  bool operator==(const Conj &Other) const { return Atoms == Other.Atoms; }
  std::string str() const;
};

class Cond;

/// Simplifies a DNF condition: deduplicates disjuncts and merges
/// single-atom disjuncts over the same variable pair (e.g.
/// `(i < j) || (i == j)` becomes `i <= j`, which the runtime can lift
/// into a loop bound).
Cond simplifyCond(const Cond &C);

/// A condition in disjunctive normal form; no disjuncts means `false`,
/// a single empty disjunct means `true`.
class Cond {
public:
  Cond() = default;

  static Cond always();
  static Cond never() { return Cond(); }
  static Cond atom(CmpKind Kind, std::string Lhs, std::string Rhs);
  static Cond conj(std::vector<CmpAtom> Atoms);

  bool isAlways() const;
  bool isNever() const { return Disjuncts.empty(); }

  const std::vector<Conj> &disjuncts() const { return Disjuncts; }

  /// Conjunction with an extra atom (distributed over disjuncts).
  Cond withAtom(CmpKind Kind, const std::string &Lhs,
                const std::string &Rhs) const;

  /// Union of conditions (paper 4.2.4 consolidation): concatenates
  /// disjunct lists, deduplicating identical conjunctions.
  static Cond unionOf(const Cond &A, const Cond &B);

  /// Evaluates against an environment resolving index names.
  bool eval(const std::function<int64_t(const std::string &)> &Env) const;

  /// Renames index variables via simultaneous substitution.
  Cond renamed(
      const std::function<std::string(const std::string &)> &Map) const;

  std::string str() const;

  bool operator==(const Cond &Other) const {
    return Disjuncts == Other.Disjuncts;
  }

private:
  std::vector<Conj> Disjuncts;
};

} // namespace systec

#endif // SYSTEC_IR_COND_H
