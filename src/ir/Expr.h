//===- ir/Expr.h - Expression trees ---------------------------*- C++ -*-===//
///
/// \file
/// Immutable expression trees for the right-hand sides of tensor
/// assignments. The tree is deliberately small: literals, index
/// variables, scalar temporaries, tensor accesses, operator calls, and
/// the lookup-table node introduced by the simplicial lookup table
/// transform (paper 4.2.5). Nodes are shared via shared_ptr and never
/// mutated; all transforms build new trees.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_IR_EXPR_H
#define SYSTEC_IR_EXPR_H

#include "ir/Cond.h"
#include "ir/Ops.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace systec {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Expression node kinds.
enum class ExprKind {
  Literal, ///< double constant
  Scalar,  ///< named scalar temporary (from DefScalar)
  Access,  ///< Tensor[i1, ..., in]; empty index list = 0-d tensor
  Call,    ///< Op(args...)
  Lut,     ///< lookup table over equality-pattern bits (paper 4.2.5)
};

/// An immutable expression node.
class Expr {
public:
  /// Creates a literal constant.
  static ExprPtr lit(double Value);
  /// Creates a reference to a scalar temporary or index value.
  static ExprPtr scalar(std::string Name);
  /// Creates a tensor access A[i, j, ...].
  static ExprPtr access(std::string Tensor, std::vector<std::string> Indices);
  /// Creates an operator call; flattens nested calls of the same
  /// associative operator.
  static ExprPtr call(OpKind Op, std::vector<ExprPtr> Args);
  /// Creates a lookup-table node: the value is Table[idx] where idx is
  /// the bitmask of which equality atoms hold.
  static ExprPtr lut(std::vector<CmpAtom> Bits, std::vector<double> Table);

  ExprKind kind() const { return Kind; }

  // Literal.
  double literalValue() const;
  // Scalar.
  const std::string &scalarName() const;
  // Access.
  const std::string &tensorName() const;
  const std::vector<std::string> &indices() const;
  // Call.
  OpKind op() const;
  const std::vector<ExprPtr> &args() const;
  // Lut.
  const std::vector<CmpAtom> &lutBits() const;
  const std::vector<double> &lutTable() const;

  /// Renders the expression, e.g. "A[i, k, l] * B[k, j]".
  std::string str() const;

  /// Structural equality.
  static bool equal(const ExprPtr &A, const ExprPtr &B);

  /// Rewrites index names via simultaneous substitution; applies to
  /// Access indices and Lut bits.
  static ExprPtr renameIndices(
      const ExprPtr &E,
      const std::function<std::string(const std::string &)> &Map);

  /// Renames tensors (used by concordization and diagonal splitting).
  static ExprPtr renameTensors(
      const ExprPtr &E,
      const std::function<std::string(const std::string &)> &Map);

  /// Collects tensor accesses in preorder.
  static void collectAccesses(const ExprPtr &E, std::vector<ExprPtr> &Out);

  /// Collects all index names used by accesses/luts.
  static void collectIndices(const ExprPtr &E,
                             std::vector<std::string> &Out);

  /// Replaces every subexpression structurally equal to \p From with
  /// \p To.
  static ExprPtr replace(const ExprPtr &E, const ExprPtr &From,
                         const ExprPtr &To);

private:
  Expr() = default;

  ExprKind Kind = ExprKind::Literal;
  double Value = 0;
  std::string Name;                 // Scalar name or Access tensor name
  std::vector<std::string> Indices; // Access
  OpKind Op = OpKind::Add;          // Call
  std::vector<ExprPtr> Args;        // Call
  std::vector<CmpAtom> Bits;        // Lut
  std::vector<double> Table;        // Lut
};

} // namespace systec

#endif // SYSTEC_IR_EXPR_H
