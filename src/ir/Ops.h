//===- ir/Ops.h - Operator algebra ----------------------------*- C++ -*-===//
///
/// \file
/// Scalar operators with the algebraic properties the compiler reasons
/// about. SySTeC is "easily extensible to general operators beyond + and
/// *" (paper contribution 3); the Bellman-Ford update uses the (min,+)
/// semiring. Each operator records commutativity, associativity,
/// idempotence, its identity element, and its annihilator if any. The
/// identity drives workspace initialization and sparse-fill soundness;
/// idempotence drives distributive assignment grouping (duplicate
/// updates collapse without a scale factor).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_IR_OPS_H
#define SYSTEC_IR_OPS_H

#include "support/Error.h"

#include <algorithm>
#include <optional>
#include <string>

namespace systec {

/// Scalar operator kinds usable in expressions and reductions.
enum class OpKind {
  Add,
  Mul,
  Sub,
  Div,
  Min,
  Max,
};

/// Algebraic metadata for an operator.
struct OpInfo {
  const char *Name;       ///< surface syntax, e.g. "+"
  const char *Ident;      ///< identifier-safe name, e.g. "add"
  bool Commutative;
  bool Associative;
  bool Idempotent;        ///< op(x, x) == x
  double Identity;        ///< op(x, Identity) == x (for reductions)
  std::optional<double> Annihilator; ///< op(x, A) == A for all x
};

/// Metadata lookup for \p Op.
const OpInfo &opInfo(OpKind Op);

/// Evaluates the binary operator. Inline: this is the innermost
/// arithmetic of both the plan interpreter and the fused micro-kernel
/// engines, and keeping one definition guarantees the two paths share
/// operand order and NaN/tie behavior bit for bit.
inline double evalOp(OpKind Op, double A, double B) {
  switch (Op) {
  case OpKind::Add:
    return A + B;
  case OpKind::Mul:
    return A * B;
  case OpKind::Sub:
    return A - B;
  case OpKind::Div:
    return A / B;
  case OpKind::Min:
    return std::min(A, B);
  case OpKind::Max:
    return std::max(A, B);
  }
  unreachable("unknown operator kind");
}

/// True if \p Op may be used as a reduction operator (associative and
/// commutative with an identity).
bool isReductionOp(OpKind Op);

/// The constant the operator is forced to produce when one operand is
/// known to equal \p Operand, regardless of the other operands — the
/// per-operand annihilation fact the algebraic walker analysis
/// propagates through expression trees. Covers the OpInfo annihilator
/// of commutative operators (x * 0, min(x, -inf), max(x, inf)) and the
/// semiring-level absorption of +-inf under addition (x + inf == inf),
/// which is what makes (min, +) fills skippable. Returns std::nullopt
/// when the operand forces nothing.
///
/// The facts hold at the semiring level the paper reasons at, not in
/// full IEEE arithmetic: 0 * inf and inf + (-inf) are NaN. The runtime
/// already leans on the same convention — a sparse walker skips
/// coordinates assuming fill * x == fill (Executor.h) — so the analysis
/// assumes co-operands are finite, matching the data model of every
/// kernel and generator in the repo.
std::optional<double> opAbsorbingResult(OpKind Op, double Operand);

/// Parses "+", "*", "min", "max", "-", "/". Returns std::nullopt on
/// unknown text.
std::optional<OpKind> parseOp(const std::string &Text);

} // namespace systec

#endif // SYSTEC_IR_OPS_H
