//===- ir/Einsum.cpp ------------------------------------------*- C++ -*-===//

#include "ir/Einsum.h"

#include "support/Error.h"
#include "support/Status.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <sstream>

namespace systec {

TensorFormat TensorFormat::dense(unsigned Order) {
  TensorFormat F;
  F.Levels.assign(Order, LevelKind::Dense);
  return F;
}

TensorFormat TensorFormat::csf(unsigned Order) {
  assert(Order >= 1 && "csf needs at least one mode");
  TensorFormat F;
  F.Levels.assign(Order, LevelKind::Sparse);
  F.Levels[0] = LevelKind::Dense;
  return F;
}

bool TensorFormat::isAllDense() const {
  for (LevelKind L : Levels)
    if (L != LevelKind::Dense)
      return false;
  return true;
}

bool TensorFormat::hasSparseLevels() const {
  for (LevelKind L : Levels)
    if (L == LevelKind::Sparse || L == LevelKind::RunLength ||
        L == LevelKind::Banded)
      return true;
  return false;
}

std::string TensorFormat::str() const {
  std::string Out;
  const char *Close = "";
  for (LevelKind L : Levels) {
    switch (L) {
    case LevelKind::Dense:
      Out += "Dense(";
      break;
    case LevelKind::Sparse:
      Out += "Sparse(";
      break;
    case LevelKind::RunLength:
      Out += "RunLength(";
      break;
    case LevelKind::Banded:
      Out += "Banded(";
      break;
    }
    Close = ")";
    (void)Close;
  }
  Out += "Element(0.0)";
  for (size_t I = 0; I < Levels.size(); ++I)
    Out += ")";
  return Out;
}

TensorDecl &Einsum::declare(const std::string &Tensor, TensorFormat Format,
                            double Fill) {
  TensorDecl &D = Decls[Tensor];
  D.Name = Tensor;
  D.Format = std::move(Format);
  D.Order = D.Format.order();
  D.Fill = Fill;
  if (D.Symmetry.order() != D.Order)
    D.Symmetry = Partition::none(D.Order);
  return D;
}

void Einsum::setSymmetry(const std::string &Tensor, Partition Sym) {
  auto It = Decls.find(Tensor);
  if (It == Decls.end())
    fatalError("setSymmetry: unknown tensor " + Tensor);
  if (Sym.order() != It->second.Order)
    fatalError("setSymmetry: partition order mismatch for " + Tensor);
  It->second.Symmetry = std::move(Sym);
}

const TensorDecl &Einsum::decl(const std::string &Tensor) const {
  auto It = Decls.find(Tensor);
  if (It == Decls.end())
    fatalError("unknown tensor " + Tensor);
  return It->second;
}

const std::vector<std::string> &Einsum::outputIndices() const {
  return Output->indices();
}

std::vector<std::string> Einsum::allIndices() const {
  std::vector<std::string> Result;
  auto AddUnique = [&Result](const std::string &Name) {
    if (std::find(Result.begin(), Result.end(), Name) == Result.end())
      Result.push_back(Name);
  };
  for (const std::string &I : Output->indices())
    AddUnique(I);
  std::vector<std::string> RhsIdx;
  Expr::collectIndices(Rhs, RhsIdx);
  for (const std::string &I : RhsIdx)
    AddUnique(I);
  return Result;
}

std::vector<std::string> Einsum::contractionIndices() const {
  std::vector<std::string> Result;
  const std::vector<std::string> &Outs = Output->indices();
  for (const std::string &I : allIndices())
    if (std::find(Outs.begin(), Outs.end(), I) == Outs.end())
      Result.push_back(I);
  return Result;
}

std::string Einsum::str() const {
  std::string OpTok;
  switch (ReduceOp) {
  case OpKind::Add:
    OpTok = "+=";
    break;
  case OpKind::Mul:
    OpTok = "*=";
    break;
  default:
    OpTok = std::string(opInfo(ReduceOp).Name) + "=";
    break;
  }
  return Output->str() + " " + OpTok + " " + Rhs->str();
}

namespace {

/// Minimal recursive-descent parser for einsum text. The first syntax
/// error is recorded in Err and parsing short-circuits to termination
/// (every production bails out when Err is set), so parse() reports it
/// as a Status instead of aborting mid-descent.
class EinsumParser {
public:
  EinsumParser(const std::string &Text) : Text(Text) {}

  Expected<Einsum> parse(const std::string &Name) {
    Einsum E;
    E.Name = Name;
    ExprPtr Out = parseAccess();
    skipSpace();
    E.ReduceOp = parseReduceTok();
    E.Rhs = parseAdditive();
    skipSpace();
    if (Err.ok() && Pos != Text.size())
      fail("einsum syntax: trailing input at '" + Text.substr(Pos) + "'");
    if (!Err.ok())
      return std::move(Err);
    E.Output = Out;
    // Auto-declare tensors densely; clients refine formats afterwards.
    declareFrom(E, Out, /*IsOutput=*/true);
    std::vector<ExprPtr> Accesses;
    Expr::collectAccesses(E.Rhs, Accesses);
    for (const ExprPtr &A : Accesses)
      declareFrom(E, A, /*IsOutput=*/false);
    if (!Err.ok())
      return std::move(Err);
    // Default loop order: contraction indices then output indices,
    // outermost-first in reverse appearance order; clients usually
    // override.
    std::vector<std::string> All = E.allIndices();
    E.LoopOrder.assign(All.rbegin(), All.rend());
    return E;
  }

private:
  /// Records the first error; later failures keep it (the root cause).
  void fail(const std::string &Message) {
    if (Err.ok())
      Err = Status::error(ErrCode::InvalidArgument, Message);
  }

  void declareFrom(Einsum &E, const ExprPtr &A, bool IsOutput) {
    auto It = E.Decls.find(A->tensorName());
    if (It != E.Decls.end()) {
      if (It->second.Order != A->indices().size()) {
        fail("tensor " + A->tensorName() + " used with inconsistent arity");
        return;
      }
      It->second.IsOutput |= IsOutput;
      return;
    }
    TensorDecl &D = E.declare(
        A->tensorName(),
        TensorFormat::dense(static_cast<unsigned>(A->indices().size())));
    D.IsOutput = IsOutput;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(const std::string &Tok) {
    skipSpace();
    if (Text.compare(Pos, Tok.size(), Tok) == 0) {
      Pos += Tok.size();
      return true;
    }
    return false;
  }

  std::string parseIdent() {
    if (!Err.ok())
      return "";
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    if (Pos == Start) {
      fail("einsum syntax: expected identifier at '" + Text.substr(Start) +
           "'");
      return "";
    }
    return Text.substr(Start, Pos - Start);
  }

  ExprPtr parseAccess() {
    std::string Tensor = parseIdent();
    if (!Err.ok())
      return Expr::lit(0);
    if (!consume("[")) {
      fail("einsum syntax: expected '[' after " + Tensor);
      return Expr::lit(0);
    }
    std::vector<std::string> Indices;
    skipSpace();
    if (!consume("]")) {
      while (true) {
        Indices.push_back(parseIdent());
        if (!Err.ok())
          return Expr::lit(0);
        if (consume("]"))
          break;
        if (!consume(",")) {
          fail("einsum syntax: expected ',' or ']' in access");
          return Expr::lit(0);
        }
      }
    }
    return Expr::access(std::move(Tensor), std::move(Indices));
  }

  OpKind parseReduceTok() {
    if (!Err.ok())
      return OpKind::Add;
    if (consume("+="))
      return OpKind::Add;
    if (consume("*="))
      return OpKind::Mul;
    if (consume("min="))
      return OpKind::Min;
    if (consume("max="))
      return OpKind::Max;
    if (consume("="))
      return OpKind::Add; // plain '=' treated as += into a zero output
    fail("einsum syntax: expected an assignment operator");
    return OpKind::Add;
  }

  ExprPtr parseAdditive() {
    ExprPtr Lhs = parseMultiplicative();
    std::vector<ExprPtr> Terms{Lhs};
    while (Err.ok() && consume("+"))
      Terms.push_back(parseMultiplicative());
    if (Terms.size() == 1)
      return Terms[0];
    return Expr::call(OpKind::Add, std::move(Terms));
  }

  ExprPtr parseMultiplicative() {
    ExprPtr Lhs = parsePrimary();
    std::vector<ExprPtr> Factors{Lhs};
    while (Err.ok() && consume("*"))
      Factors.push_back(parsePrimary());
    if (Factors.size() == 1)
      return Factors[0];
    return Expr::call(OpKind::Mul, std::move(Factors));
  }

  ExprPtr parsePrimary() {
    if (!Err.ok())
      return Expr::lit(0);
    skipSpace();
    if (Pos < Text.size() &&
        (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
         Text[Pos] == '.')) {
      size_t End = Pos;
      while (End < Text.size() &&
             (std::isdigit(static_cast<unsigned char>(Text[End])) ||
              Text[End] == '.' || Text[End] == 'e' || Text[End] == '-'))
        ++End;
      // stod throws on tokens the scan accepts but the grammar does not
      // ("1e-", ".e"); the library is exception-free, so translate.
      double Value = 0;
      try {
        Value = std::stod(Text.substr(Pos, End - Pos));
      } catch (...) {
        fail("einsum syntax: invalid numeric literal '" +
             Text.substr(Pos, End - Pos) + "'");
        return Expr::lit(0);
      }
      Pos = End;
      return Expr::lit(Value);
    }
    if (consume("(")) {
      ExprPtr E = parseAdditive();
      if (Err.ok() && !consume(")"))
        fail("einsum syntax: expected ')'");
      return E;
    }
    // "min(" / "max(" calls, else a tensor access.
    size_t Save = Pos;
    std::string Ident = parseIdent();
    if (!Err.ok())
      return Expr::lit(0);
    if ((Ident == "min" || Ident == "max") && consume("(")) {
      std::vector<ExprPtr> Args;
      Args.push_back(parseAdditive());
      while (Err.ok() && consume(","))
        Args.push_back(parseAdditive());
      if (Err.ok() && !consume(")"))
        fail("einsum syntax: expected ')' after " + Ident);
      return Expr::call(Ident == "min" ? OpKind::Min : OpKind::Max,
                        std::move(Args));
    }
    Pos = Save;
    return parseAccess();
  }

  const std::string &Text;
  size_t Pos = 0;
  Status Err = Status::success();
};

} // namespace

Einsum parseEinsum(const std::string &Name, const std::string &Text) {
  Expected<Einsum> E = tryParseEinsum(Name, Text);
  if (!E)
    fatalError(E.status().str());
  return std::move(*E);
}

Expected<Einsum> tryParseEinsum(const std::string &Name,
                                const std::string &Text) {
  Expected<Einsum> E = EinsumParser(Text).parse(Name);
  if (!E)
    return E.takeStatus().withContext("einsum '" + Name + "'");
  return E;
}

std::map<std::string, std::vector<std::pair<std::string, unsigned>>>
indexSites(const Einsum &E) {
  std::map<std::string, std::vector<std::pair<std::string, unsigned>>> Sites;
  auto Record = [&Sites](const ExprPtr &A) {
    for (unsigned M = 0; M < A->indices().size(); ++M)
      Sites[A->indices()[M]].push_back({A->tensorName(), M});
  };
  Record(E.Output);
  std::vector<ExprPtr> Accesses;
  Expr::collectAccesses(E.Rhs, Accesses);
  for (const ExprPtr &A : Accesses)
    Record(A);
  return Sites;
}

} // namespace systec
