//===- ir/Ops.cpp ---------------------------------------------*- C++ -*-===//

#include "ir/Ops.h"

#include "support/Error.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace systec {

static constexpr double Inf = std::numeric_limits<double>::infinity();

const OpInfo &opInfo(OpKind Op) {
  static const OpInfo Infos[] = {
      /*Add*/ {"+", "add", true, true, false, 0.0, std::nullopt},
      /*Mul*/ {"*", "mul", true, true, false, 1.0, 0.0},
      /*Sub*/ {"-", "sub", false, false, false, 0.0, std::nullopt},
      /*Div*/ {"/", "div", false, false, false, 1.0, std::nullopt},
      /*Min*/ {"min", "min", true, true, true, Inf, -Inf},
      /*Max*/ {"max", "max", true, true, true, -Inf, Inf},
  };
  return Infos[static_cast<int>(Op)];
}

bool isReductionOp(OpKind Op) {
  const OpInfo &Info = opInfo(Op);
  return Info.Commutative && Info.Associative;
}

std::optional<double> opAbsorbingResult(OpKind Op, double Operand) {
  const OpInfo &Info = opInfo(Op);
  // Annihilators are stated one-sided (op(x, A) == A); only commutative
  // operators absorb from every operand position.
  if (Info.Commutative && Info.Annihilator && Operand == *Info.Annihilator)
    return Operand;
  // Addition has no finite annihilator, but either infinity absorbs
  // finite co-operands: this is the (min, +) / (max, +) fill rule.
  if (Op == OpKind::Add && std::isinf(Operand))
    return Operand;
  return std::nullopt;
}

std::optional<OpKind> parseOp(const std::string &Text) {
  if (Text == "+")
    return OpKind::Add;
  if (Text == "*")
    return OpKind::Mul;
  if (Text == "-")
    return OpKind::Sub;
  if (Text == "/")
    return OpKind::Div;
  if (Text == "min")
    return OpKind::Min;
  if (Text == "max")
    return OpKind::Max;
  return std::nullopt;
}

} // namespace systec
