//===- ir/Ops.cpp ---------------------------------------------*- C++ -*-===//

#include "ir/Ops.h"

#include "support/Error.h"

#include <algorithm>
#include <limits>

namespace systec {

static constexpr double Inf = std::numeric_limits<double>::infinity();

const OpInfo &opInfo(OpKind Op) {
  static const OpInfo Infos[] = {
      /*Add*/ {"+", "add", true, true, false, 0.0, std::nullopt},
      /*Mul*/ {"*", "mul", true, true, false, 1.0, 0.0},
      /*Sub*/ {"-", "sub", false, false, false, 0.0, std::nullopt},
      /*Div*/ {"/", "div", false, false, false, 1.0, std::nullopt},
      /*Min*/ {"min", "min", true, true, true, Inf, -Inf},
      /*Max*/ {"max", "max", true, true, true, -Inf, Inf},
  };
  return Infos[static_cast<int>(Op)];
}

bool isReductionOp(OpKind Op) {
  const OpInfo &Info = opInfo(Op);
  return Info.Commutative && Info.Associative;
}

std::optional<OpKind> parseOp(const std::string &Text) {
  if (Text == "+")
    return OpKind::Add;
  if (Text == "*")
    return OpKind::Mul;
  if (Text == "-")
    return OpKind::Sub;
  if (Text == "/")
    return OpKind::Div;
  if (Text == "min")
    return OpKind::Min;
  if (Text == "max")
    return OpKind::Max;
  return std::nullopt;
}

} // namespace systec
