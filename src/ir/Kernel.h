//===- ir/Kernel.h - Executable kernel description ------------*- C++ -*-===//
///
/// \file
/// A compiled kernel: the loop-nest IR plus the tensor environment it
/// expects. The compiler (core/) produces Kernels from Einsums; the
/// runtime lowers Kernels into execution plans; the C++ backend prints
/// them as source.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_IR_KERNEL_H
#define SYSTEC_IR_KERNEL_H

#include "ir/Einsum.h"
#include "ir/Stmt.h"

#include <map>
#include <string>
#include <vector>

namespace systec {

/// A request to materialize a transposed alias of an input tensor
/// before running the kernel (concordization, paper 4.2.3). Alias mode
/// m holds source mode ModePerm[m].
struct TransposeRequest {
  std::string Alias;
  std::string Source;
  std::vector<unsigned> ModePerm;
};

/// A request to materialize the diagonal or off-diagonal part of a
/// symmetric input (diagonal splitting, paper 4.2.9 / Listing 7's
/// A_diag and A_nondiag).
struct SplitRequest {
  std::string Alias;
  std::string Source;
  bool DiagonalPart = false; ///< true: keep only diagonal entries
};

/// An executable kernel description.
struct Kernel {
  std::string Name;
  /// Tensor declarations, including aliases created by transforms.
  std::map<std::string, TensorDecl> Decls;
  /// Loop order, outermost first (applies to Body).
  std::vector<std::string> LoopOrder;
  /// The main loop nest (Loop/If/Assign tree).
  StmtPtr Body;
  /// Post-processing statements (output replication); may be null.
  /// Timed separately, matching the paper's methodology which excludes
  /// data rearrangement from kernel timings.
  StmtPtr Epilogue;
  /// Pre-kernel data preparation requests.
  std::vector<TransposeRequest> Transposes;
  std::vector<SplitRequest> Splits;
  /// The reduction operator used into the output.
  OpKind ReduceOp = OpKind::Add;
  /// Output tensor name.
  std::string OutputName;

  /// Full IR rendering (body plus epilogue).
  std::string str() const {
    std::string Out = "kernel " + Name + ":\n" + Body->str(1);
    if (Epilogue) {
      Out += "epilogue:\n";
      Out += Epilogue->str(1);
    }
    return Out;
  }
};

} // namespace systec

#endif // SYSTEC_IR_KERNEL_H
