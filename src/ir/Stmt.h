//===- ir/Stmt.h - Statement trees ----------------------------*- C++ -*-===//
///
/// \file
/// Immutable statement trees for kernels: loop nests, conditional
/// blocks, reductions, scalar temporaries, and the symmetric-output
/// replication epilogue (paper 4.2.2). Statements print in a Finch-like
/// surface syntax (paper Figure 1) so generated kernels can be compared
/// against the paper's listings.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_IR_STMT_H
#define SYSTEC_IR_STMT_H

#include "ir/Expr.h"
#include "symmetry/Partition.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace systec {

class Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

/// Statement node kinds.
enum class StmtKind {
  Block,     ///< sequence of statements
  Loop,      ///< for i = _ : body
  If,        ///< if cond : body
  Assign,    ///< lhs op= rhs (or lhs = rhs)
  DefScalar, ///< scalar temporary definition
  Replicate, ///< copy canonical triangle of an output to all triangles
};

/// Parallel-execution annotation for Loop statements, attached by
/// ParallelAnalysis after lowering. Metadata only: ignored by
/// structural equality and by the surface-syntax printer (the C++
/// backend prints it as a `// parallel` marker, and the executor turns
/// it into a multi-threaded plan).
struct ParallelAnnotation {
  /// The loop's iterations may run concurrently (possibly with
  /// privatized accumulators; the runtime re-derives the privatization
  /// set against its bound tensors).
  bool IsParallel = false;
  /// Workload shape across the iteration space: 0 for uniform, +d when
  /// the inner work grows like v^d toward high coordinates (canonical
  /// triangle with a d-long chain below this loop), -d when it shrinks.
  /// Drives the triangle-balanced schedule.
  int TriangleDepth = 0;
};

/// An immutable statement node.
class Stmt {
public:
  static StmtPtr block(std::vector<StmtPtr> Stmts);
  static StmtPtr loop(std::string Index, StmtPtr Body);
  /// Nested loops, outermost first.
  static StmtPtr loops(const std::vector<std::string> &Indices,
                       StmtPtr Body);
  static StmtPtr ifThen(Cond Condition, StmtPtr Body);
  /// Reduction `Lhs ReduceOp= Multiplicity x Rhs`; Lhs must be an Access
  /// or Scalar expression. A std::nullopt ReduceOp overwrites.
  static StmtPtr assign(ExprPtr Lhs, std::optional<OpKind> ReduceOp,
                        ExprPtr Rhs, unsigned Multiplicity = 1);
  static StmtPtr defScalar(std::string Name, ExprPtr Init);
  static StmtPtr replicate(std::string Tensor, Partition OutputSymmetry);

  StmtKind kind() const { return Kind; }

  // Block.
  const std::vector<StmtPtr> &stmts() const;
  // Loop.
  const std::string &loopIndex() const;
  const StmtPtr &body() const;
  /// The parallel annotation (Loop only; default-constructed when the
  /// loop is sequential).
  const ParallelAnnotation &parallelInfo() const;
  /// Copy of this Loop carrying \p Info.
  StmtPtr withParallel(ParallelAnnotation Info) const;
  // If.
  const Cond &condition() const;
  // Assign.
  const ExprPtr &lhs() const;
  std::optional<OpKind> reduceOp() const;
  const ExprPtr &rhs() const;
  unsigned multiplicity() const;
  /// Copy of this assignment with a different multiplicity.
  StmtPtr withMultiplicity(unsigned NewMult) const;
  // DefScalar.
  const std::string &scalarName() const;
  const ExprPtr &init() const;
  // Replicate.
  const std::string &tensorName() const;
  const Partition &outputSymmetry() const;

  /// Pretty-prints with \p Indent leading double-spaces per level.
  std::string str(unsigned Indent = 0) const;

  /// Structural equality.
  static bool equal(const StmtPtr &A, const StmtPtr &B);

  /// Renames index variables via simultaneous substitution (loop
  /// indices, conditions, accesses).
  static StmtPtr renameIndices(
      const StmtPtr &S,
      const std::function<std::string(const std::string &)> &Map);

  /// Renames tensors everywhere.
  static StmtPtr renameTensors(
      const StmtPtr &S,
      const std::function<std::string(const std::string &)> &Map);

  /// Visits all statements in preorder.
  static void walk(const StmtPtr &S,
                   const std::function<void(const StmtPtr &)> &Fn);

private:
  Stmt() = default;

  StmtKind Kind = StmtKind::Block;
  std::vector<StmtPtr> Stmts;     // Block
  std::string Index;              // Loop index / DefScalar name /
                                  // Replicate tensor
  StmtPtr Body;                   // Loop / If
  ParallelAnnotation Parallel;    // Loop (metadata)
  Cond Condition;                 // If
  ExprPtr Lhs, Rhs;               // Assign (Rhs also DefScalar init)
  std::optional<OpKind> ReduceOp; // Assign
  unsigned Multiplicity = 1;      // Assign
  Partition OutputSym;            // Replicate
};

} // namespace systec

#endif // SYSTEC_IR_STMT_H
