//===- ir/Cond.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Cond.h"

#include "support/Error.h"

#include <algorithm>
#include <sstream>

namespace systec {

const char *cmpKindName(CmpKind Kind) {
  switch (Kind) {
  case CmpKind::LT:
    return "<";
  case CmpKind::LE:
    return "<=";
  case CmpKind::EQ:
    return "==";
  case CmpKind::NE:
    return "!=";
  case CmpKind::GT:
    return ">";
  case CmpKind::GE:
    return ">=";
  }
  unreachable("unknown comparison kind");
}

bool evalCmp(CmpKind Kind, int64_t A, int64_t B) {
  switch (Kind) {
  case CmpKind::LT:
    return A < B;
  case CmpKind::LE:
    return A <= B;
  case CmpKind::EQ:
    return A == B;
  case CmpKind::NE:
    return A != B;
  case CmpKind::GT:
    return A > B;
  case CmpKind::GE:
    return A >= B;
  }
  unreachable("unknown comparison kind");
}

CmpKind swapCmp(CmpKind Kind) {
  switch (Kind) {
  case CmpKind::LT:
    return CmpKind::GT;
  case CmpKind::LE:
    return CmpKind::GE;
  case CmpKind::GT:
    return CmpKind::LT;
  case CmpKind::GE:
    return CmpKind::LE;
  case CmpKind::EQ:
  case CmpKind::NE:
    return Kind;
  }
  unreachable("unknown comparison kind");
}

CmpKind negateCmp(CmpKind Kind) {
  switch (Kind) {
  case CmpKind::LT:
    return CmpKind::GE;
  case CmpKind::LE:
    return CmpKind::GT;
  case CmpKind::EQ:
    return CmpKind::NE;
  case CmpKind::NE:
    return CmpKind::EQ;
  case CmpKind::GT:
    return CmpKind::LE;
  case CmpKind::GE:
    return CmpKind::LT;
  }
  unreachable("unknown comparison kind");
}

std::string CmpAtom::str() const {
  return Lhs + " " + cmpKindName(Kind) + " " + Rhs;
}

std::string Conj::str() const {
  if (Atoms.empty())
    return "true";
  std::ostringstream OS;
  for (size_t I = 0; I < Atoms.size(); ++I) {
    if (I)
      OS << " && ";
    OS << Atoms[I].str();
  }
  return OS.str();
}

Cond Cond::always() {
  Cond C;
  C.Disjuncts.push_back(Conj());
  return C;
}

Cond Cond::atom(CmpKind Kind, std::string Lhs, std::string Rhs) {
  Cond C;
  C.Disjuncts.push_back(Conj{{CmpAtom{Kind, std::move(Lhs), std::move(Rhs)}}});
  return C;
}

Cond Cond::conj(std::vector<CmpAtom> Atoms) {
  Cond C;
  C.Disjuncts.push_back(Conj{std::move(Atoms)});
  return C;
}

bool Cond::isAlways() const {
  for (const Conj &D : Disjuncts)
    if (D.Atoms.empty())
      return true;
  return false;
}

Cond Cond::withAtom(CmpKind Kind, const std::string &Lhs,
                    const std::string &Rhs) const {
  Cond C;
  for (const Conj &D : Disjuncts) {
    Conj NewD = D;
    NewD.Atoms.push_back(CmpAtom{Kind, Lhs, Rhs});
    C.Disjuncts.push_back(std::move(NewD));
  }
  return C;
}

Cond Cond::unionOf(const Cond &A, const Cond &B) {
  Cond C = A;
  for (const Conj &D : B.Disjuncts) {
    if (std::find(C.Disjuncts.begin(), C.Disjuncts.end(), D) ==
        C.Disjuncts.end())
      C.Disjuncts.push_back(D);
  }
  return C;
}

bool Cond::eval(
    const std::function<int64_t(const std::string &)> &Env) const {
  for (const Conj &D : Disjuncts) {
    bool Ok = true;
    for (const CmpAtom &A : D.Atoms) {
      if (!evalCmp(A.Kind, Env(A.Lhs), Env(A.Rhs))) {
        Ok = false;
        break;
      }
    }
    if (Ok)
      return true;
  }
  return false;
}

Cond Cond::renamed(
    const std::function<std::string(const std::string &)> &Map) const {
  Cond C;
  for (const Conj &D : Disjuncts) {
    Conj NewD;
    for (const CmpAtom &A : D.Atoms)
      NewD.Atoms.push_back(CmpAtom{A.Kind, Map(A.Lhs), Map(A.Rhs)});
    C.Disjuncts.push_back(std::move(NewD));
  }
  return C;
}

Cond simplifyCond(const Cond &C) {
  // Deduplicate disjuncts.
  Cond Dedup;
  for (const Conj &D : C.disjuncts())
    Dedup = Cond::unionOf(Dedup, Cond::conj(D.Atoms));
  // Merge only when every disjunct is a single atom over one ordered
  // variable pair.
  if (Dedup.disjuncts().size() < 2)
    return Dedup;
  std::string Lhs, Rhs;
  bool Mergeable = true;
  bool SawLT = false, SawEQ = false, SawGT = false, SawLE = false,
       SawGE = false, SawNE = false;
  for (const Conj &D : Dedup.disjuncts()) {
    if (D.Atoms.size() != 1) {
      Mergeable = false;
      break;
    }
    CmpAtom A = D.Atoms[0];
    if (A.Rhs < A.Lhs) {
      std::swap(A.Lhs, A.Rhs);
      A.Kind = swapCmp(A.Kind);
    }
    if (Lhs.empty()) {
      Lhs = A.Lhs;
      Rhs = A.Rhs;
    } else if (Lhs != A.Lhs || Rhs != A.Rhs) {
      Mergeable = false;
      break;
    }
    switch (A.Kind) {
    case CmpKind::LT:
      SawLT = true;
      break;
    case CmpKind::EQ:
      SawEQ = true;
      break;
    case CmpKind::GT:
      SawGT = true;
      break;
    case CmpKind::LE:
      SawLE = true;
      break;
    case CmpKind::GE:
      SawGE = true;
      break;
    case CmpKind::NE:
      SawNE = true;
      break;
    }
  }
  if (!Mergeable)
    return Dedup;
  bool HasLT = SawLT || SawLE || SawNE;
  bool HasEQ = SawEQ || SawLE || SawGE;
  bool HasGT = SawGT || SawGE || SawNE;
  if (HasLT && HasEQ && HasGT)
    return Cond::always();
  if (HasLT && HasEQ)
    return Cond::atom(CmpKind::LE, Lhs, Rhs);
  if (HasGT && HasEQ)
    return Cond::atom(CmpKind::GE, Lhs, Rhs);
  if (HasLT && HasGT)
    return Cond::atom(CmpKind::NE, Lhs, Rhs);
  return Dedup;
}

std::string Cond::str() const {
  if (Disjuncts.empty())
    return "false";
  if (Disjuncts.size() == 1)
    return Disjuncts[0].str();
  std::ostringstream OS;
  for (size_t I = 0; I < Disjuncts.size(); ++I) {
    if (I)
      OS << " || ";
    OS << "(" << Disjuncts[I].str() << ")";
  }
  return OS.str();
}

} // namespace systec
