//===- ir/Stmt.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Stmt.h"

#include "support/Error.h"

#include <cassert>
#include <sstream>

namespace systec {

StmtPtr Stmt::block(std::vector<StmtPtr> StmtsIn) {
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::Block;
  // Flatten nested blocks for stable printing and comparison.
  for (StmtPtr &Child : StmtsIn) {
    if (Child->kind() == StmtKind::Block)
      S->Stmts.insert(S->Stmts.end(), Child->stmts().begin(),
                      Child->stmts().end());
    else
      S->Stmts.push_back(std::move(Child));
  }
  return S;
}

StmtPtr Stmt::loop(std::string Index, StmtPtr Body) {
  assert(!Index.empty() && "loop needs an index");
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::Loop;
  S->Index = std::move(Index);
  S->Body = std::move(Body);
  return S;
}

StmtPtr Stmt::loops(const std::vector<std::string> &Indices, StmtPtr Body) {
  StmtPtr S = std::move(Body);
  for (auto It = Indices.rbegin(); It != Indices.rend(); ++It)
    S = loop(*It, S);
  return S;
}

StmtPtr Stmt::ifThen(Cond Condition, StmtPtr Body) {
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::If;
  S->Condition = std::move(Condition);
  S->Body = std::move(Body);
  return S;
}

StmtPtr Stmt::assign(ExprPtr Lhs, std::optional<OpKind> ReduceOp, ExprPtr Rhs,
                     unsigned Multiplicity) {
  assert((Lhs->kind() == ExprKind::Access ||
          Lhs->kind() == ExprKind::Scalar) &&
         "assignment target must be an access or scalar");
  assert(Multiplicity >= 1 && "assignments have positive multiplicity");
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::Assign;
  S->Lhs = std::move(Lhs);
  S->ReduceOp = ReduceOp;
  S->Rhs = std::move(Rhs);
  S->Multiplicity = Multiplicity;
  return S;
}

StmtPtr Stmt::defScalar(std::string Name, ExprPtr Init) {
  assert(!Name.empty() && "scalar needs a name");
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::DefScalar;
  S->Index = std::move(Name);
  S->Rhs = std::move(Init);
  return S;
}

StmtPtr Stmt::replicate(std::string Tensor, Partition OutputSymmetry) {
  assert(!Tensor.empty() && "replicate needs a tensor");
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::Replicate;
  S->Index = std::move(Tensor);
  S->OutputSym = std::move(OutputSymmetry);
  return S;
}

const std::vector<StmtPtr> &Stmt::stmts() const {
  assert(Kind == StmtKind::Block && "not a block");
  return Stmts;
}

const std::string &Stmt::loopIndex() const {
  assert(Kind == StmtKind::Loop && "not a loop");
  return Index;
}

const StmtPtr &Stmt::body() const {
  assert((Kind == StmtKind::Loop || Kind == StmtKind::If) &&
         "statement has no body");
  return Body;
}

const ParallelAnnotation &Stmt::parallelInfo() const {
  assert(Kind == StmtKind::Loop && "not a loop");
  return Parallel;
}

StmtPtr Stmt::withParallel(ParallelAnnotation Info) const {
  assert(Kind == StmtKind::Loop && "not a loop");
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::Loop;
  S->Index = Index;
  S->Body = Body;
  S->Parallel = Info;
  return S;
}

const Cond &Stmt::condition() const {
  assert(Kind == StmtKind::If && "not an if");
  return Condition;
}

const ExprPtr &Stmt::lhs() const {
  assert(Kind == StmtKind::Assign && "not an assignment");
  return Lhs;
}

std::optional<OpKind> Stmt::reduceOp() const {
  assert(Kind == StmtKind::Assign && "not an assignment");
  return ReduceOp;
}

const ExprPtr &Stmt::rhs() const {
  assert((Kind == StmtKind::Assign || Kind == StmtKind::DefScalar) &&
         "statement has no rhs");
  return Rhs;
}

unsigned Stmt::multiplicity() const {
  assert(Kind == StmtKind::Assign && "not an assignment");
  return Multiplicity;
}

StmtPtr Stmt::withMultiplicity(unsigned NewMult) const {
  assert(Kind == StmtKind::Assign && "not an assignment");
  return assign(Lhs, ReduceOp, Rhs, NewMult);
}

const std::string &Stmt::scalarName() const {
  assert(Kind == StmtKind::DefScalar && "not a scalar definition");
  return Index;
}

const ExprPtr &Stmt::init() const {
  assert(Kind == StmtKind::DefScalar && "not a scalar definition");
  return Rhs;
}

const std::string &Stmt::tensorName() const {
  assert(Kind == StmtKind::Replicate && "not a replicate");
  return Index;
}

const Partition &Stmt::outputSymmetry() const {
  assert(Kind == StmtKind::Replicate && "not a replicate");
  return OutputSym;
}

std::string Stmt::str(unsigned Indent) const {
  std::string Pad(2 * Indent, ' ');
  std::ostringstream OS;
  switch (Kind) {
  case StmtKind::Block:
    for (const StmtPtr &S : Stmts)
      OS << S->str(Indent);
    return OS.str();
  case StmtKind::Loop: {
    // Collapse consecutive loops into one "for a=_, b=_" header like the
    // paper's listings.
    std::vector<std::string> Chain;
    const Stmt *Cur = this;
    while (Cur->Kind == StmtKind::Loop) {
      Chain.push_back(Cur->Index);
      if (Cur->Body->Kind != StmtKind::Loop)
        break;
      Cur = Cur->Body.get();
    }
    OS << Pad << "for ";
    for (size_t I = 0; I < Chain.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Chain[I] << "=_";
    }
    OS << "\n" << Cur->Body->str(Indent + 1);
    return OS.str();
  }
  case StmtKind::If:
    OS << Pad << "if " << Condition.str() << "\n" << Body->str(Indent + 1);
    return OS.str();
  case StmtKind::Assign: {
    OS << Pad << Lhs->str() << " ";
    if (ReduceOp) {
      const OpInfo &Info = opInfo(*ReduceOp);
      if (*ReduceOp == OpKind::Add)
        OS << "+=";
      else if (*ReduceOp == OpKind::Mul)
        OS << "*=";
      else
        OS << Info.Name << "=";
    } else {
      OS << "=";
    }
    OS << " ";
    if (Multiplicity != 1)
      OS << Multiplicity << " * ";
    OS << Rhs->str() << "\n";
    return OS.str();
  }
  case StmtKind::DefScalar:
    OS << Pad << Index << " = " << Rhs->str() << "\n";
    return OS.str();
  case StmtKind::Replicate:
    OS << Pad << "replicate " << Index << " over " << OutputSym.str()
       << "\n";
    return OS.str();
  }
  unreachable("unknown statement kind");
}

bool Stmt::equal(const StmtPtr &A, const StmtPtr &B) {
  if (A.get() == B.get())
    return true;
  if (A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case StmtKind::Block: {
    if (A->Stmts.size() != B->Stmts.size())
      return false;
    for (size_t I = 0; I < A->Stmts.size(); ++I)
      if (!equal(A->Stmts[I], B->Stmts[I]))
        return false;
    return true;
  }
  case StmtKind::Loop:
    return A->Index == B->Index && equal(A->Body, B->Body);
  case StmtKind::If:
    return A->Condition == B->Condition && equal(A->Body, B->Body);
  case StmtKind::Assign:
    return Expr::equal(A->Lhs, B->Lhs) && A->ReduceOp == B->ReduceOp &&
           A->Multiplicity == B->Multiplicity && Expr::equal(A->Rhs, B->Rhs);
  case StmtKind::DefScalar:
    return A->Index == B->Index && Expr::equal(A->Rhs, B->Rhs);
  case StmtKind::Replicate:
    return A->Index == B->Index && A->OutputSym == B->OutputSym;
  }
  unreachable("unknown statement kind");
}

StmtPtr Stmt::renameIndices(
    const StmtPtr &S,
    const std::function<std::string(const std::string &)> &Map) {
  switch (S->Kind) {
  case StmtKind::Block: {
    std::vector<StmtPtr> NewStmts;
    for (const StmtPtr &Child : S->Stmts)
      NewStmts.push_back(renameIndices(Child, Map));
    return block(std::move(NewStmts));
  }
  case StmtKind::Loop:
    return loop(Map(S->Index), renameIndices(S->Body, Map))
        ->withParallel(S->Parallel);
  case StmtKind::If:
    return ifThen(S->Condition.renamed(Map), renameIndices(S->Body, Map));
  case StmtKind::Assign:
    return assign(Expr::renameIndices(S->Lhs, Map), S->ReduceOp,
                  Expr::renameIndices(S->Rhs, Map), S->Multiplicity);
  case StmtKind::DefScalar:
    return defScalar(S->Index, Expr::renameIndices(S->Rhs, Map));
  case StmtKind::Replicate:
    return S;
  }
  unreachable("unknown statement kind");
}

StmtPtr Stmt::renameTensors(
    const StmtPtr &S,
    const std::function<std::string(const std::string &)> &Map) {
  switch (S->Kind) {
  case StmtKind::Block: {
    std::vector<StmtPtr> NewStmts;
    for (const StmtPtr &Child : S->Stmts)
      NewStmts.push_back(renameTensors(Child, Map));
    return block(std::move(NewStmts));
  }
  case StmtKind::Loop:
    return loop(S->Index, renameTensors(S->Body, Map))
        ->withParallel(S->Parallel);
  case StmtKind::If:
    return ifThen(S->Condition, renameTensors(S->Body, Map));
  case StmtKind::Assign:
    return assign(Expr::renameTensors(S->Lhs, Map), S->ReduceOp,
                  Expr::renameTensors(S->Rhs, Map), S->Multiplicity);
  case StmtKind::DefScalar:
    return defScalar(S->Index, Expr::renameTensors(S->Rhs, Map));
  case StmtKind::Replicate: {
    auto New = std::shared_ptr<Stmt>(new Stmt());
    New->Kind = StmtKind::Replicate;
    New->Index = Map(S->Index);
    New->OutputSym = S->OutputSym;
    return New;
  }
  }
  unreachable("unknown statement kind");
}

void Stmt::walk(const StmtPtr &S,
                const std::function<void(const StmtPtr &)> &Fn) {
  Fn(S);
  switch (S->Kind) {
  case StmtKind::Block:
    for (const StmtPtr &Child : S->Stmts)
      walk(Child, Fn);
    return;
  case StmtKind::Loop:
  case StmtKind::If:
    walk(S->Body, Fn);
    return;
  default:
    return;
  }
}

} // namespace systec
