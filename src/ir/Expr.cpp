//===- ir/Expr.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Expr.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <cassert>
#include <sstream>

namespace systec {

ExprPtr Expr::lit(double Value) {
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Literal;
  E->Value = Value;
  return E;
}

ExprPtr Expr::scalar(std::string Name) {
  assert(!Name.empty() && "scalar needs a name");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Scalar;
  E->Name = std::move(Name);
  return E;
}

ExprPtr Expr::access(std::string Tensor, std::vector<std::string> Indices) {
  assert(!Tensor.empty() && "access needs a tensor name");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Access;
  E->Name = std::move(Tensor);
  E->Indices = std::move(Indices);
  return E;
}

ExprPtr Expr::call(OpKind Op, std::vector<ExprPtr> Args) {
  assert(!Args.empty() && "call needs arguments");
  if (Args.size() == 1)
    return Args[0];
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Call;
  E->Op = Op;
  if (opInfo(Op).Associative) {
    // Flatten nested calls of the same associative operator so operand
    // normalization sees one argument list.
    for (const ExprPtr &A : Args) {
      if (A->kind() == ExprKind::Call && A->op() == Op)
        E->Args.insert(E->Args.end(), A->args().begin(), A->args().end());
      else
        E->Args.push_back(A);
    }
  } else {
    E->Args = std::move(Args);
  }
  return E;
}

ExprPtr Expr::lut(std::vector<CmpAtom> Bits, std::vector<double> Table) {
  assert(Table.size() == (1ull << Bits.size()) &&
         "lookup table must have one entry per bit pattern");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Lut;
  E->Bits = std::move(Bits);
  E->Table = std::move(Table);
  return E;
}

double Expr::literalValue() const {
  assert(Kind == ExprKind::Literal && "not a literal");
  return Value;
}

const std::string &Expr::scalarName() const {
  assert(Kind == ExprKind::Scalar && "not a scalar");
  return Name;
}

const std::string &Expr::tensorName() const {
  assert(Kind == ExprKind::Access && "not an access");
  return Name;
}

const std::vector<std::string> &Expr::indices() const {
  assert(Kind == ExprKind::Access && "not an access");
  return Indices;
}

OpKind Expr::op() const {
  assert(Kind == ExprKind::Call && "not a call");
  return Op;
}

const std::vector<ExprPtr> &Expr::args() const {
  assert(Kind == ExprKind::Call && "not a call");
  return Args;
}

const std::vector<CmpAtom> &Expr::lutBits() const {
  assert(Kind == ExprKind::Lut && "not a lut");
  return Bits;
}

const std::vector<double> &Expr::lutTable() const {
  assert(Kind == ExprKind::Lut && "not a lut");
  return Table;
}

std::string Expr::str() const {
  switch (Kind) {
  case ExprKind::Literal:
    return formatDouble(Value);
  case ExprKind::Scalar:
    return Name;
  case ExprKind::Access:
    return Name + "[" + join(Indices, ", ") + "]";
  case ExprKind::Call: {
    const OpInfo &Info = opInfo(Op);
    std::ostringstream OS;
    bool Infix = Info.Name[0] == '+' || Info.Name[0] == '*' ||
                 Info.Name[0] == '-' || Info.Name[0] == '/';
    if (Infix) {
      for (size_t I = 0; I < Args.size(); ++I) {
        if (I)
          OS << " " << Info.Name << " ";
        bool Paren = Args[I]->kind() == ExprKind::Call;
        if (Paren)
          OS << "(";
        OS << Args[I]->str();
        if (Paren)
          OS << ")";
      }
    } else {
      OS << Info.Name << "(";
      for (size_t I = 0; I < Args.size(); ++I) {
        if (I)
          OS << ", ";
        OS << Args[I]->str();
      }
      OS << ")";
    }
    return OS.str();
  }
  case ExprKind::Lut: {
    std::ostringstream OS;
    OS << "lut[";
    for (size_t I = 0; I < Bits.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Bits[I].str();
    }
    OS << "](";
    for (size_t I = 0; I < Table.size(); ++I) {
      if (I)
        OS << ", ";
      OS << formatDouble(Table[I]);
    }
    OS << ")";
    return OS.str();
  }
  }
  unreachable("unknown expression kind");
}

bool Expr::equal(const ExprPtr &A, const ExprPtr &B) {
  if (A.get() == B.get())
    return true;
  if (A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case ExprKind::Literal:
    return A->Value == B->Value;
  case ExprKind::Scalar:
    return A->Name == B->Name;
  case ExprKind::Access:
    return A->Name == B->Name && A->Indices == B->Indices;
  case ExprKind::Call: {
    if (A->Op != B->Op || A->Args.size() != B->Args.size())
      return false;
    for (size_t I = 0; I < A->Args.size(); ++I)
      if (!equal(A->Args[I], B->Args[I]))
        return false;
    return true;
  }
  case ExprKind::Lut:
    return A->Bits == B->Bits && A->Table == B->Table;
  }
  unreachable("unknown expression kind");
}

ExprPtr Expr::renameIndices(
    const ExprPtr &E,
    const std::function<std::string(const std::string &)> &Map) {
  switch (E->Kind) {
  case ExprKind::Literal:
  case ExprKind::Scalar:
    return E;
  case ExprKind::Access: {
    std::vector<std::string> NewIdx;
    NewIdx.reserve(E->Indices.size());
    for (const std::string &I : E->Indices)
      NewIdx.push_back(Map(I));
    return access(E->Name, std::move(NewIdx));
  }
  case ExprKind::Call: {
    std::vector<ExprPtr> NewArgs;
    NewArgs.reserve(E->Args.size());
    for (const ExprPtr &A : E->Args)
      NewArgs.push_back(renameIndices(A, Map));
    return call(E->Op, std::move(NewArgs));
  }
  case ExprKind::Lut: {
    std::vector<CmpAtom> NewBits;
    for (const CmpAtom &B : E->Bits)
      NewBits.push_back(CmpAtom{B.Kind, Map(B.Lhs), Map(B.Rhs)});
    return lut(std::move(NewBits), E->Table);
  }
  }
  unreachable("unknown expression kind");
}

ExprPtr Expr::renameTensors(
    const ExprPtr &E,
    const std::function<std::string(const std::string &)> &Map) {
  switch (E->Kind) {
  case ExprKind::Literal:
  case ExprKind::Scalar:
  case ExprKind::Lut:
    return E;
  case ExprKind::Access:
    return access(Map(E->Name), E->Indices);
  case ExprKind::Call: {
    std::vector<ExprPtr> NewArgs;
    NewArgs.reserve(E->Args.size());
    for (const ExprPtr &A : E->Args)
      NewArgs.push_back(renameTensors(A, Map));
    return call(E->Op, std::move(NewArgs));
  }
  }
  unreachable("unknown expression kind");
}

void Expr::collectAccesses(const ExprPtr &E, std::vector<ExprPtr> &Out) {
  switch (E->Kind) {
  case ExprKind::Access:
    Out.push_back(E);
    return;
  case ExprKind::Call:
    for (const ExprPtr &A : E->Args)
      collectAccesses(A, Out);
    return;
  default:
    return;
  }
}

void Expr::collectIndices(const ExprPtr &E, std::vector<std::string> &Out) {
  switch (E->Kind) {
  case ExprKind::Access:
    for (const std::string &I : E->Indices)
      Out.push_back(I);
    return;
  case ExprKind::Call:
    for (const ExprPtr &A : E->Args)
      collectIndices(A, Out);
    return;
  case ExprKind::Lut:
    for (const CmpAtom &B : E->Bits) {
      Out.push_back(B.Lhs);
      Out.push_back(B.Rhs);
    }
    return;
  default:
    return;
  }
}

ExprPtr Expr::replace(const ExprPtr &E, const ExprPtr &From,
                      const ExprPtr &To) {
  if (equal(E, From))
    return To;
  if (E->Kind == ExprKind::Call) {
    std::vector<ExprPtr> NewArgs;
    NewArgs.reserve(E->Args.size());
    bool Changed = false;
    for (const ExprPtr &A : E->Args) {
      ExprPtr NewA = replace(A, From, To);
      Changed |= NewA.get() != A.get();
      NewArgs.push_back(std::move(NewA));
    }
    if (!Changed)
      return E;
    return call(E->Op, std::move(NewArgs));
  }
  return E;
}

} // namespace systec
