//===- ir/Einsum.h - Tensor assignment specifications ---------*- C++ -*-===//
///
/// \file
/// The compiler's input language: a single pointwise einsum assignment
/// `O[outs] op= e(T1[..], ..., Tm[..])` together with per-tensor
/// declarations (storage format, fill value, symmetry partition) and a
/// loop order — exactly the contract of the paper's Section 4 ("given an
/// assignment and a map of input tensors that are known to be symmetric
/// and the partitions that represent their symmetries").
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_IR_EINSUM_H
#define SYSTEC_IR_EINSUM_H

#include "ir/Expr.h"
#include "support/Status.h"
#include "symmetry/Partition.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace systec {

/// Storage level kinds, top level first (column-major fibertree: the
/// *last* index of an access is the top level, like Finch).
enum class LevelKind { Dense, Sparse, RunLength, Banded };

/// A tensor storage format: one level per mode, ordered top (last mode)
/// to bottom (first mode).
struct TensorFormat {
  std::vector<LevelKind> Levels;

  /// All-dense format of the given order.
  static TensorFormat dense(unsigned Order);
  /// Dense top level, Sparse below: CSC for matrices (paper:
  /// Dense(Sparse(Element))), CSF for higher orders
  /// (Dense(Sparse(Sparse(...)))).
  static TensorFormat csf(unsigned Order);

  unsigned order() const { return static_cast<unsigned>(Levels.size()); }
  bool isAllDense() const;
  bool hasSparseLevels() const;
  std::string str() const;

  bool operator==(const TensorFormat &Other) const {
    return Levels == Other.Levels;
  }
};

/// Declaration of one tensor appearing in an einsum.
struct TensorDecl {
  std::string Name;
  unsigned Order = 0;
  TensorFormat Format;
  double Fill = 0.0;
  /// Known symmetry (Definition 2.2); Partition::none if asymmetric.
  Partition Symmetry;
  bool IsOutput = false;
};

/// A single tensor assignment plus declarations: the compiler input.
struct Einsum {
  std::string Name;
  ExprPtr Output;                    ///< Access expression (may be 0-d)
  OpKind ReduceOp = OpKind::Add;     ///< reduction into the output
  ExprPtr Rhs;                       ///< pointwise expression
  std::vector<std::string> LoopOrder;///< outermost loop first
  std::map<std::string, TensorDecl> Decls;

  /// Declares or updates a tensor. Returns a reference for chaining.
  TensorDecl &declare(const std::string &Tensor, TensorFormat Format,
                      double Fill = 0.0);

  /// Marks \p Tensor symmetric with \p Sym.
  void setSymmetry(const std::string &Tensor, Partition Sym);

  const TensorDecl &decl(const std::string &Tensor) const;

  /// Output index names in access order.
  const std::vector<std::string> &outputIndices() const;

  /// All distinct index names (output then contraction), in order of
  /// first appearance.
  std::vector<std::string> allIndices() const;

  /// Indices that do not appear in the output (reduction indices).
  std::vector<std::string> contractionIndices() const;

  /// Renders like "C[i, j] += A[i, k, l] * B[k, j] * B[l, j]".
  std::string str() const;
};

/// Parses an einsum from text such as
///   "C[i,j] += A[i,k,l] * B[k,j] * B[l,j]"
///   "y[i] min= A[i,j] + d[j]"
/// Supported reduce tokens: "=", "+=", "*=", "min=", "max=".
/// The rhs supports `+` and `*` with usual precedence, `min(a,b)` /
/// `max(a,b)` calls, numeric literals, and tensor accesses. Tensors are
/// auto-declared with dense formats; callers adjust formats and
/// symmetries afterwards. Aborts on syntax errors (tool input); use
/// tryParseEinsum when the text comes from a client.
Einsum parseEinsum(const std::string &Name, const std::string &Text);

/// Status-returning variant of parseEinsum: syntax errors (including
/// inconsistent tensor arity) come back as ErrCode::InvalidArgument
/// with the offending token in the message, never an abort.
Expected<Einsum> tryParseEinsum(const std::string &Name,
                                const std::string &Text);

/// Infers each index's dimension sites: tensor/mode pairs where the
/// index appears, used by harnesses to check shape agreement.
std::map<std::string, std::vector<std::pair<std::string, unsigned>>>
indexSites(const Einsum &E);

} // namespace systec

#endif // SYSTEC_IR_EINSUM_H
