//===- kernels/Kernels.cpp ------------------------------------*- C++ -*-===//

#include "kernels/Kernels.h"

#include "support/Error.h"

#include <cassert>
#include <limits>

namespace systec {

Einsum makeSsymv() {
  Einsum E = parseEinsum("ssymv", "y[i] += A[i,j] * x[j]");
  E.LoopOrder = {"j", "i"};
  E.declare("A", TensorFormat::csf(2));
  E.setSymmetry("A", Partition::full(2));
  E.declare("x", TensorFormat::dense(1));
  E.declare("y", TensorFormat::dense(1));
  return E;
}

Einsum makeBellmanFord() {
  Einsum E = parseEinsum("bellmanford", "y[i] min= A[i,j] + d[j]");
  E.LoopOrder = {"j", "i"};
  E.declare("A", TensorFormat::csf(2),
            std::numeric_limits<double>::infinity());
  E.setSymmetry("A", Partition::full(2));
  E.declare("d", TensorFormat::dense(1));
  E.declare("y", TensorFormat::dense(1),
            std::numeric_limits<double>::infinity());
  return E;
}

Einsum makeSyprd() {
  Einsum E = parseEinsum("syprd", "y[] += x[i] * A[i,j] * x[j]");
  E.LoopOrder = {"j", "i"};
  E.declare("A", TensorFormat::csf(2));
  E.setSymmetry("A", Partition::full(2));
  E.declare("x", TensorFormat::dense(1));
  return E;
}

Einsum makeSsyrk() {
  Einsum E = parseEinsum("ssyrk", "C[i,j] += A[i,k] * A[j,k]");
  E.LoopOrder = {"k", "j", "i"};
  E.declare("A", TensorFormat::csf(2));
  E.declare("C", TensorFormat::dense(2));
  return E;
}

Einsum makeTtm() {
  Einsum E = parseEinsum("ttm", "C[i,j,l] += A[k,j,l] * B[k,i]");
  E.LoopOrder = {"l", "k", "j", "i"};
  E.declare("A", TensorFormat::csf(3));
  E.setSymmetry("A", Partition::full(3));
  E.declare("B", TensorFormat::dense(2));
  E.declare("C", TensorFormat::dense(3));
  return E;
}

Einsum makeMttkrp(unsigned Order) {
  assert(Order >= 3 && Order <= 5 && "MTTKRP supports orders 3-5");
  static const char *Contraction[] = {"k", "l", "m", "n"};
  std::string Text = "C[i,j] += A[i";
  for (unsigned M = 0; M + 1 < Order; ++M)
    Text += std::string(",") + Contraction[M];
  Text += "]";
  for (unsigned M = 0; M + 1 < Order; ++M)
    Text += std::string(" * B[") + Contraction[M] + ",j]";
  Einsum E = parseEinsum("mttkrp" + std::to_string(Order), Text);
  // Chain i <= k <= l <= ... ascends toward inner loops; j innermost
  // over the dense rank.
  E.LoopOrder.clear();
  for (unsigned M = Order - 1; M >= 1; --M)
    E.LoopOrder.push_back(Contraction[M - 1]);
  E.LoopOrder.push_back("i");
  E.LoopOrder.push_back("j");
  E.declare("A", TensorFormat::csf(Order));
  E.setSymmetry("A", Partition::full(Order));
  E.declare("B", TensorFormat::dense(2));
  E.declare("C", TensorFormat::dense(2));
  return E;
}

} // namespace systec
