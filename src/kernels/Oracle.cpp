//===- kernels/Oracle.cpp -------------------------------------*- C++ -*-===//

#include "kernels/Oracle.h"

#include "support/Error.h"

#include <cassert>
#include <functional>
#include <vector>

namespace systec {

namespace {

double evalExpr(const ExprPtr &E,
                const std::map<std::string, const Tensor *> &Inputs,
                const std::map<std::string, int64_t> &Env) {
  switch (E->kind()) {
  case ExprKind::Literal:
    return E->literalValue();
  case ExprKind::Scalar:
    fatalError("oracle cannot evaluate scalar temporaries");
  case ExprKind::Access: {
    auto It = Inputs.find(E->tensorName());
    if (It == Inputs.end())
      fatalError("oracle: missing input " + E->tensorName());
    std::vector<int64_t> Coords;
    for (const std::string &I : E->indices())
      Coords.push_back(Env.at(I));
    return It->second->at(Coords);
  }
  case ExprKind::Call: {
    double Acc = evalExpr(E->args()[0], Inputs, Env);
    for (size_t A = 1; A < E->args().size(); ++A)
      Acc = evalOp(E->op(), Acc, evalExpr(E->args()[A], Inputs, Env));
    return Acc;
  }
  case ExprKind::Lut:
    fatalError("oracle cannot evaluate lookup tables");
  }
  unreachable("unknown expression kind");
}

} // namespace

Tensor oracleEval(const Einsum &E,
                  const std::map<std::string, const Tensor *> &Inputs) {
  // Infer extents from inputs.
  std::map<std::string, int64_t> Extent;
  std::vector<ExprPtr> Accesses;
  Expr::collectAccesses(E.Rhs, Accesses);
  for (const ExprPtr &A : Accesses) {
    auto It = Inputs.find(A->tensorName());
    if (It == Inputs.end())
      fatalError("oracle: missing input " + A->tensorName());
    for (unsigned M = 0; M < A->indices().size(); ++M) {
      auto [EIt, New] =
          Extent.insert({A->indices()[M], It->second->dim(M)});
      if (!New && EIt->second != It->second->dim(M))
        fatalError("oracle: inconsistent extents for " + A->indices()[M]);
    }
  }

  std::vector<int64_t> OutDims;
  for (const std::string &I : E.Output->indices())
    OutDims.push_back(Extent.at(I));
  if (OutDims.empty())
    OutDims.push_back(1);
  Tensor Out = Tensor::dense(OutDims, opInfo(E.ReduceOp).Identity);

  std::vector<std::string> All = E.allIndices();
  std::map<std::string, int64_t> Env;
  std::vector<int64_t> OutCoords(std::max<size_t>(
      E.Output->indices().size(), 1), 0);

  std::function<void(size_t)> Walk = [&](size_t Depth) {
    if (Depth == All.size()) {
      double V = evalExpr(E.Rhs, Inputs, Env);
      for (size_t M = 0; M < E.Output->indices().size(); ++M)
        OutCoords[M] = Env.at(E.Output->indices()[M]);
      double &Dst = Out.denseRef(OutCoords);
      Dst = evalOp(E.ReduceOp, Dst, V);
      return;
    }
    const std::string &I = All[Depth];
    for (int64_t C = 0; C < Extent.at(I); ++C) {
      Env[I] = C;
      Walk(Depth + 1);
    }
  };
  Walk(0);
  return Out;
}

} // namespace systec
