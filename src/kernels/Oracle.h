//===- kernels/Oracle.h - Reference einsum evaluation ---------*- C++ -*-===//
///
/// \file
/// An independent dense reference evaluator for einsums, used as the
/// correctness oracle in tests: it loops over the full cartesian index
/// space and evaluates the assignment with random-access reads, sharing
/// no code with the compiler or the plan executor.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_KERNELS_ORACLE_H
#define SYSTEC_KERNELS_ORACLE_H

#include "ir/Einsum.h"
#include "tensor/Tensor.h"

#include <map>
#include <string>

namespace systec {

/// Evaluates \p E over \p Inputs by brute force, returning the dense
/// output (a one-element tensor for 0-d outputs). Extents are inferred
/// from the inputs; inconsistent extents abort.
Tensor oracleEval(const Einsum &E,
                  const std::map<std::string, const Tensor *> &Inputs);

} // namespace systec

#endif // SYSTEC_KERNELS_ORACLE_H
