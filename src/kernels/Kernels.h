//===- kernels/Kernels.h - Paper kernel definitions -----------*- C++ -*-===//
///
/// \file
/// Einsum definitions for every kernel in the paper's evaluation
/// (Section 5.2), with the formats, fill values, symmetry annotations
/// and loop orders the paper uses:
///
///   SSYMV        y[i]    += A[i,j] * x[j]          A sym CSC
///   Bellman-Ford y[i]   min= A[i,j] + d[j]          A sym CSC, fill inf
///   SYPRD        y[]     += x[i] * A[i,j] * x[j]    A sym CSC
///   SSYRK        C[i,j]  += A[i,k] * A[j,k]         A unsym CSC, C sym
///   TTM          C[i,j,l]+= A[k,j,l] * B[k,i]       A fully sym CSF
///   MTTKRP-n     C[i,j]  += A[i,k,..] * prod B[.,j] A fully sym CSF
///
/// Loop orders are chosen so the canonical chains ascend toward inner
/// loops and sparse accesses are concordant (column-major).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_KERNELS_KERNELS_H
#define SYSTEC_KERNELS_KERNELS_H

#include "ir/Einsum.h"

namespace systec {

/// Sparse symmetric matrix-vector multiply (paper 5.2.1, Figure 6).
Einsum makeSsymv();

/// Bellman-Ford relaxation step over the (min,+) semiring
/// (paper 5.2.2, Figure 7).
Einsum makeBellmanFord();

/// Symmetric triple product y = x' A x (paper 5.2.3, Figure 8).
Einsum makeSyprd();

/// Symmetric rank-k update C = A A' (paper 5.2.4, Figure 9). A is not
/// symmetric; C carries visible output symmetry.
Einsum makeSsyrk();

/// Mode-1 tensor-times-matrix with fully symmetric A
/// (paper 5.2.5, Figure 10, Listing 1).
Einsum makeTtm();

/// Matricized tensor times Khatri-Rao product with fully symmetric A
/// of the given order (3, 4, or 5; paper 5.2.6, Figure 11).
Einsum makeMttkrp(unsigned Order);

} // namespace systec

#endif // SYSTEC_KERNELS_KERNELS_H
