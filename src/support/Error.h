//===- support/Error.h - Fatal error reporting ----------------*- C++ -*-===//
///
/// \file
/// Fatal error handling for SySTeC. Library code does not use exceptions;
/// violated *internal* invariants abort with a message (LLVM-style
/// programmatic errors). User-facing recoverable conditions — malformed
/// client input, failed tensor validation, cancellation — are reported
/// through `Status`/`Expected<T>` (support/Status.h) at API boundaries;
/// the policy split is documented in docs/ROBUSTNESS.md.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_SUPPORT_ERROR_H
#define SYSTEC_SUPPORT_ERROR_H

#include <string>

namespace systec {

/// Prints \p Message to stderr and aborts. Used for unrecoverable
/// conditions triggered by invalid client input (as opposed to asserts,
/// which guard internal invariants).
[[noreturn]] void fatalError(const std::string &Message);

/// Marks a point in control flow that must be unreachable if the program
/// invariants hold.
[[noreturn]] void unreachable(const char *Message);

} // namespace systec

#endif // SYSTEC_SUPPORT_ERROR_H
