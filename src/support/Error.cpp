//===- support/Error.cpp --------------------------------------*- C++ -*-===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

namespace systec {

void fatalError(const std::string &Message) {
  std::fprintf(stderr, "systec fatal error: %s\n", Message.c_str());
  std::abort();
}

void unreachable(const char *Message) {
  std::fprintf(stderr, "systec unreachable: %s\n", Message);
  std::abort();
}

} // namespace systec
