//===- support/StringUtils.h - Small string helpers -----------*- C++ -*-===//
///
/// \file
/// String joining/formatting helpers shared by the IR printer, the code
/// generator, and the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_SUPPORT_STRINGUTILS_H
#define SYSTEC_SUPPORT_STRINGUTILS_H

#include <sstream>
#include <string>
#include <vector>

namespace systec {

/// Joins the elements of \p Items with \p Sep between consecutive items.
std::string join(const std::vector<std::string> &Items,
                 const std::string &Sep);

/// Joins arbitrary streamable items with \p Sep.
template <typename T>
std::string joinAny(const std::vector<T> &Items, const std::string &Sep) {
  std::ostringstream OS;
  for (size_t I = 0; I < Items.size(); ++I) {
    if (I != 0)
      OS << Sep;
    OS << Items[I];
  }
  return OS.str();
}

/// Formats a double without trailing zero noise ("2" not "2.000000";
/// "0.5" not "0.500000"). Used by the IR printer.
std::string formatDouble(double Value);

/// Splits \p Text on \p Sep, trimming ASCII whitespace from each piece.
/// Empty pieces are preserved.
std::vector<std::string> splitAndTrim(const std::string &Text, char Sep);

/// Trims leading and trailing ASCII whitespace.
std::string trim(const std::string &Text);

} // namespace systec

#endif // SYSTEC_SUPPORT_STRINGUTILS_H
