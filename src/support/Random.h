//===- support/Random.h - Deterministic RNG wrapper -----------*- C++ -*-===//
///
/// \file
/// A small deterministic random number facade used by the workload
/// generators and property tests. Wraps a 64-bit Mersenne twister so all
/// experiments are reproducible from a single seed.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_SUPPORT_RANDOM_H
#define SYSTEC_SUPPORT_RANDOM_H

#include <cstdint>
#include <random>

namespace systec {

/// Deterministic random source. All generators in `data/` take one of
/// these by reference so experiment scripts control every seed.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5357454Eull) : Engine(Seed) {}

  /// Uniform integer in [0, Bound).
  int64_t nextIndex(int64_t Bound) {
    std::uniform_int_distribution<int64_t> Dist(0, Bound - 1);
    return Dist(Engine);
  }

  /// Uniform double in [Lo, Hi).
  double nextDouble(double Lo = 0.0, double Hi = 1.0) {
    std::uniform_real_distribution<double> Dist(Lo, Hi);
    return Dist(Engine);
  }

  /// Bernoulli draw with probability \p P.
  bool nextBool(double P = 0.5) {
    std::bernoulli_distribution Dist(P);
    return Dist(Engine);
  }

  std::mt19937_64 &engine() { return Engine; }

private:
  std::mt19937_64 Engine;
};

} // namespace systec

#endif // SYSTEC_SUPPORT_RANDOM_H
