//===- support/Status.h - Recoverable error reporting ---------*- C++ -*-===//
///
/// \file
/// Exception-free recoverable errors for the API boundary, LLVM-style.
/// Library code never throws; operations that can fail on *client
/// input* (malformed COO data, einsum syntax, an unbound tensor, a
/// corrupted level structure, an expired deadline) return a `Status` or
/// an `Expected<T>` instead of aborting. `fatalError`/`unreachable`
/// (support/Error.h) remain reserved for violated internal invariants.
///
/// `Status` is move-only and `[[nodiscard]]`: a success carries no
/// allocation at all, an error owns a code, a message, and a chain of
/// context frames (`withContext` prepends, so the rendered string reads
/// outermost-first, like a call stack).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_SUPPORT_STATUS_H
#define SYSTEC_SUPPORT_STATUS_H

#include <atomic>
#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace systec {

/// Failure categories of the recoverable API surface. The names are
/// part of the contract: tests assert codes, and
/// `ExecReport::AbortReason` surfaces `errCodeName` strings.
enum class ErrCode : uint8_t {
  Ok = 0,
  InvalidArgument,   ///< malformed client input (COO entries, einsum text)
  UnboundTensor,     ///< a kernel references a tensor that was never bound
  InvalidTensor,     ///< a tensor failed structural integrity validation
  InvalidOptions,    ///< ExecOptions values that cannot be clamped sanely
  Cancelled,         ///< the run's CancelToken was tripped
  DeadlineExceeded,  ///< ExecOptions::DeadlineMs elapsed mid-run
  ResourceExhausted, ///< a hard memory budget refused an allocation
  Internal,          ///< an invariant violation surfaced as a status
};

/// Stable lowercase-hyphen name ("invalid-tensor", "deadline-exceeded").
const char *errCodeName(ErrCode C);

/// A success-or-error result with no payload. Success is a null pointer
/// (free to create, copy elision everywhere); errors heap-allocate once.
class [[nodiscard]] Status {
public:
  /// Success.
  Status() = default;
  Status(Status &&) = default;
  Status &operator=(Status &&) = default;
  Status(const Status &) = delete;
  Status &operator=(const Status &) = delete;

  static Status success() { return Status(); }
  static Status error(ErrCode Code, std::string Message) {
    assert(Code != ErrCode::Ok && "error status needs a non-Ok code");
    Status S;
    S.Payload = std::make_unique<Rep>();
    S.Payload->Code = Code;
    S.Payload->Message = std::move(Message);
    return S;
  }

  bool ok() const { return Payload == nullptr; }
  ErrCode code() const { return Payload ? Payload->Code : ErrCode::Ok; }
  const std::string &message() const {
    static const std::string Empty;
    return Payload ? Payload->Message : Empty;
  }
  /// Context frames, outermost first.
  const std::vector<std::string> &context() const {
    static const std::vector<std::string> Empty;
    return Payload ? Payload->Context : Empty;
  }

  /// Prepends a context frame (e.g. "tensor 'A'") and returns *this so
  /// error paths can chain: `return S.withContext("executor 'k'");`.
  /// No-op on success.
  Status &&withContext(std::string Frame) && {
    if (Payload)
      Payload->Context.insert(Payload->Context.begin(), std::move(Frame));
    return std::move(*this);
  }
  Status &withContext(std::string Frame) & {
    if (Payload)
      Payload->Context.insert(Payload->Context.begin(), std::move(Frame));
    return *this;
  }

  /// Renders "code: frame1: frame2: message" ("ok" on success).
  std::string str() const;

private:
  struct Rep {
    ErrCode Code = ErrCode::Internal;
    std::string Message;
    std::vector<std::string> Context;
  };
  std::unique_ptr<Rep> Payload; ///< null on success
};

/// A value of type T or a Status describing why there is none.
/// Move-only (it owns a Status). Construction from a value or from a
/// non-Ok Status is implicit, so `return Status::error(...)` and
/// `return SomeT` both work from a function returning Expected<T>.
template <typename T> class [[nodiscard]] Expected {
public:
  Expected(T Value) : Val(std::move(Value)) {}
  Expected(Status Error) : Err(std::move(Error)) {
    assert(!Err.ok() && "Expected error must carry a non-Ok status");
  }
  Expected(Expected &&) = default;
  Expected &operator=(Expected &&) = default;
  Expected(const Expected &) = delete;
  Expected &operator=(const Expected &) = delete;

  bool ok() const { return Val.has_value(); }
  explicit operator bool() const { return ok(); }

  T &operator*() {
    assert(ok() && "dereferencing an errored Expected");
    return *Val;
  }
  const T &operator*() const {
    assert(ok() && "dereferencing an errored Expected");
    return *Val;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }
  T &value() { return **this; }
  const T &value() const { return **this; }

  /// The error (must not hold a value). Moves the status out, so the
  /// caller can forward it: `return Result.takeStatus();`.
  Status takeStatus() {
    assert(!ok() && "takeStatus on a valued Expected");
    return std::move(Err);
  }
  const Status &status() const { return Err; }

private:
  std::optional<T> Val;
  Status Err; ///< Ok iff Val holds a value
};

/// Cooperative cancellation flag shared between a client thread and a
/// run. The client calls cancel() (any thread, any time); the runtime
/// polls at loop, chunk, and task-claim boundaries and abandons the run
/// with ErrCode::Cancelled, discarding partial output. Tokens are
/// reusable across runs via reset().
class CancelToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }
  void reset() { Flag.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

} // namespace systec

#endif // SYSTEC_SUPPORT_STATUS_H
