//===- support/Counters.cpp -----------------------------------*- C++ -*-===//

#include "support/Counters.h"

namespace systec {

namespace {
// Atomic so worker threads can poll the gate race-free while the main
// thread toggles it around timed regions.
std::atomic<bool> CountersOn{true};
ExecCounters GlobalCounters;
} // namespace

bool countersEnabled() {
  return CountersOn.load(std::memory_order_relaxed);
}
void setCountersEnabled(bool Enabled) {
  CountersOn.store(Enabled, std::memory_order_relaxed);
}
ExecCounters &counters() { return GlobalCounters; }

} // namespace systec
