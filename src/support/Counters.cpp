//===- support/Counters.cpp -----------------------------------*- C++ -*-===//

#include "support/Counters.h"

namespace systec {

namespace {
bool CountersOn = true;
ExecCounters GlobalCounters;
} // namespace

bool countersEnabled() { return CountersOn; }
void setCountersEnabled(bool Enabled) { CountersOn = Enabled; }
ExecCounters &counters() { return GlobalCounters; }

} // namespace systec
