//===- support/Status.cpp - Recoverable error reporting -------*- C++ -*-===//

#include "support/Status.h"

namespace systec {

const char *errCodeName(ErrCode C) {
  switch (C) {
  case ErrCode::Ok:
    return "ok";
  case ErrCode::InvalidArgument:
    return "invalid-argument";
  case ErrCode::UnboundTensor:
    return "unbound-tensor";
  case ErrCode::InvalidTensor:
    return "invalid-tensor";
  case ErrCode::InvalidOptions:
    return "invalid-options";
  case ErrCode::Cancelled:
    return "cancelled";
  case ErrCode::DeadlineExceeded:
    return "deadline-exceeded";
  case ErrCode::ResourceExhausted:
    return "resource-exhausted";
  case ErrCode::Internal:
    return "internal";
  }
  return "unknown";
}

std::string Status::str() const {
  if (ok())
    return "ok";
  std::string Out = errCodeName(code());
  for (const std::string &Frame : context()) {
    Out += ": ";
    Out += Frame;
  }
  Out += ": ";
  Out += message();
  return Out;
}

} // namespace systec
