//===- support/StringUtils.cpp --------------------------------*- C++ -*-===//

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace systec {

std::string join(const std::vector<std::string> &Items,
                 const std::string &Sep) {
  return joinAny(Items, Sep);
}

std::string formatDouble(double Value) {
  if (std::isinf(Value))
    return Value > 0 ? "inf" : "-inf";
  if (Value == static_cast<long long>(Value) && std::fabs(Value) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(Value));
    return Buf;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%g", Value);
  return Buf;
}

std::string trim(const std::string &Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::vector<std::string> splitAndTrim(const std::string &Text, char Sep) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Pieces.push_back(trim(Text.substr(Start, I - Start)));
      Start = I + 1;
    }
  }
  return Pieces;
}

} // namespace systec
