//===- support/Counters.h - Execution statistics --------------*- C++ -*-===//
///
/// \file
/// Global execution counters used to validate the paper's "reads only
/// 1/n! of the tensor" and "performs 1/m! of the computations" claims.
/// Counting is compiled in unconditionally but gated by a cheap flag so
/// benchmark timings can disable it.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_SUPPORT_COUNTERS_H
#define SYSTEC_SUPPORT_COUNTERS_H

#include <cstdint>

namespace systec {

/// Aggregate counters for one kernel execution.
struct ExecCounters {
  /// Nonzero elements read from sparse/structured input tensors.
  uint64_t SparseReads = 0;
  /// Scalar reductions performed into outputs or workspaces.
  uint64_t Reductions = 0;
  /// Elementwise scalar operations (multiplies/adds inside expressions).
  uint64_t ScalarOps = 0;
  /// Writes to output tensors (including replication copies).
  uint64_t OutputWrites = 0;

  void reset() { *this = ExecCounters(); }
};

/// Whether the runtime updates counters. Defaults to on; benchmarks turn
/// it off around timed regions.
bool countersEnabled();
void setCountersEnabled(bool Enabled);

/// The process-wide counter sink.
ExecCounters &counters();

} // namespace systec

#endif // SYSTEC_SUPPORT_COUNTERS_H
