//===- support/Counters.h - Execution statistics --------------*- C++ -*-===//
///
/// \file
/// Global execution counters used to validate the paper's "reads only
/// 1/n! of the tensor" and "performs 1/m! of the computations" claims.
/// Counting is compiled in unconditionally but gated by a cheap flag so
/// benchmark timings can disable it.
///
/// The fields are atomics so the counts stay exact when the parallel
/// runtime executes plan nodes from several worker threads at once
/// (relaxed ordering would suffice semantically, but the convenience
/// operators ++/+= keep call sites identical to the scalar days and
/// ablation checks compare totals only after the kernel returns).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_SUPPORT_COUNTERS_H
#define SYSTEC_SUPPORT_COUNTERS_H

#include <atomic>
#include <cstdint>

namespace systec {

/// A plain-value copy of the counters (atomics are not copyable). Also
/// used as the per-context delta block the runtime accumulates into and
/// flushes once per kernel run (see runtime/Plan.h).
struct CounterSnapshot {
  uint64_t SparseReads = 0;
  uint64_t Reductions = 0;
  uint64_t ScalarOps = 0;
  uint64_t OutputWrites = 0;
  uint64_t LoopsSpecialized = 0;
  uint64_t LoopsGeneric = 0;
  uint64_t WalkersRecovered = 0;
  uint64_t WalkersRejected = 0;
  uint64_t FusedBlockedPanels = 0;
  uint64_t FusedBlockedStores = 0;
};

/// Aggregate counters for one kernel execution.
struct ExecCounters {
  /// Nonzero elements read from sparse/structured input tensors.
  std::atomic<uint64_t> SparseReads{0};
  /// Scalar reductions performed into outputs or workspaces.
  std::atomic<uint64_t> Reductions{0};
  /// Elementwise scalar operations (multiplies/adds inside expressions).
  std::atomic<uint64_t> ScalarOps{0};
  /// Writes to output tensors (including replication copies).
  std::atomic<uint64_t> OutputWrites{0};
  /// Plan loops specialized into fused micro-kernels at prepare()
  /// (vs. left to the generic interpreter) — the ablation metric for
  /// the runtime specialization layer.
  std::atomic<uint64_t> LoopsSpecialized{0};
  std::atomic<uint64_t> LoopsGeneric{0};
  /// Coordinate-skipping walkers the algebraic annihilation analysis
  /// proves sound where the legacy membership check could not
  /// (vs. vetoes where membership would have unsoundly accepted) —
  /// the ablation metric for the walker algebra.
  std::atomic<uint64_t> WalkersRecovered{0};
  std::atomic<uint64_t> WalkersRejected{0};
  /// Column panels executed by the blocked output engine and the
  /// streaming/writeback stores it actually issued. OutputWrites keeps
  /// the interpreter's per-element accounting (counter parity), so
  /// OutputWrites - FusedBlockedStores is the store traffic blocking
  /// removed on register-accumulated panels.
  std::atomic<uint64_t> FusedBlockedPanels{0};
  std::atomic<uint64_t> FusedBlockedStores{0};

  void reset() {
    SparseReads.store(0, std::memory_order_relaxed);
    Reductions.store(0, std::memory_order_relaxed);
    ScalarOps.store(0, std::memory_order_relaxed);
    OutputWrites.store(0, std::memory_order_relaxed);
    LoopsSpecialized.store(0, std::memory_order_relaxed);
    LoopsGeneric.store(0, std::memory_order_relaxed);
    WalkersRecovered.store(0, std::memory_order_relaxed);
    WalkersRejected.store(0, std::memory_order_relaxed);
    FusedBlockedPanels.store(0, std::memory_order_relaxed);
    FusedBlockedStores.store(0, std::memory_order_relaxed);
  }

  CounterSnapshot snapshot() const {
    return CounterSnapshot{
        SparseReads.load(std::memory_order_relaxed),
        Reductions.load(std::memory_order_relaxed),
        ScalarOps.load(std::memory_order_relaxed),
        OutputWrites.load(std::memory_order_relaxed),
        LoopsSpecialized.load(std::memory_order_relaxed),
        LoopsGeneric.load(std::memory_order_relaxed),
        WalkersRecovered.load(std::memory_order_relaxed),
        WalkersRejected.load(std::memory_order_relaxed),
        FusedBlockedPanels.load(std::memory_order_relaxed),
        FusedBlockedStores.load(std::memory_order_relaxed)};
  }
};

/// Whether the runtime updates counters. Defaults to on; benchmarks turn
/// it off around timed regions.
bool countersEnabled();
void setCountersEnabled(bool Enabled);

/// The process-wide counter sink.
ExecCounters &counters();

} // namespace systec

#endif // SYSTEC_SUPPORT_COUNTERS_H
