//===- observability/Trace.cpp - Execution tracing ------------*- C++ -*-===//

#include "observability/Trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>

namespace systec {
namespace obs {

namespace {

std::atomic<bool> TracingOn{false};

/// Single-writer append-only event buffer. Storage is a fixed table of
/// block pointers: the owner thread allocates a block on first use
/// (release-published), writes the event, then release-publishes the
/// new count. Readers acquire-load the count and the block pointers,
/// so every event at index < count is fully visible. No locks, no
/// reallocation, and a hard capacity cap (drops are counted).
class TraceBuffer {
public:
  static constexpr size_t BlockSize = 4096;
  static constexpr size_t MaxBlocks = 512; // cap: ~2M events per thread

  explicit TraceBuffer(unsigned Tid) : Tid(Tid) {}
  ~TraceBuffer() {
    for (size_t B = 0; B < MaxBlocks; ++B)
      delete[] Blocks[B].load(std::memory_order_relaxed);
  }

  void append(const TraceEvent &E) {
    const size_t N = Count.load(std::memory_order_relaxed);
    const size_t BI = N / BlockSize;
    if (BI >= MaxBlocks) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TraceEvent *Block = Blocks[BI].load(std::memory_order_relaxed);
    if (!Block) {
      Block = new TraceEvent[BlockSize];
      Blocks[BI].store(Block, std::memory_order_release);
    }
    Block[N % BlockSize] = E;
    Count.store(N + 1, std::memory_order_release);
  }

  size_t size() const { return Count.load(std::memory_order_acquire); }

  TraceEvent get(size_t I) const {
    return Blocks[I / BlockSize].load(std::memory_order_acquire)
        [I % BlockSize];
  }

  /// Tests only; the owner thread must be quiescent.
  void reset() {
    Count.store(0, std::memory_order_release);
    Dropped.store(0, std::memory_order_relaxed);
  }

  uint64_t dropped() const {
    return Dropped.load(std::memory_order_relaxed);
  }

  const unsigned Tid;
  std::string Name; ///< guarded by the registry mutex

private:
  std::atomic<size_t> Count{0};
  std::atomic<uint64_t> Dropped{0};
  std::atomic<TraceEvent *> Blocks[MaxBlocks] = {};
};

struct Registry {
  std::mutex Mu;
  std::vector<std::unique_ptr<TraceBuffer>> Buffers;
  std::set<std::string> Names; ///< intern table
};

/// Leaked on purpose (like ThreadPool::global): worker threads may
/// still trace during static destruction.
Registry &registry() {
  static Registry *R = new Registry();
  return *R;
}

TraceBuffer &threadBuffer() {
  thread_local TraceBuffer *Buf = [] {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    R.Buffers.push_back(std::make_unique<TraceBuffer>(
        static_cast<unsigned>(R.Buffers.size())));
    return R.Buffers.back().get();
  }();
  return *Buf;
}

} // namespace

bool tracingEnabled() {
  return TracingOn.load(std::memory_order_relaxed);
}

void setTracingEnabled(bool Enabled) {
  TracingOn.store(Enabled, std::memory_order_relaxed);
}

uint64_t nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Origin = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Origin)
          .count());
}

const char *internName(const std::string &S) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return R.Names.insert(S).first->c_str();
}

void emitSpan(const char *Name, const char *Cat, uint64_t StartNs,
              uint64_t DurNs, int64_t Arg0, int64_t Arg1) {
  threadBuffer().append(TraceEvent{Name, Cat, StartNs, DurNs, Arg0, Arg1});
}

void setThreadName(const std::string &Name) {
  TraceBuffer &B = threadBuffer();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  if (B.Name.empty())
    B.Name = Name;
}

std::vector<ThreadEvents> collectTrace() {
  Registry &R = registry();
  std::vector<TraceBuffer *> Bufs;
  std::vector<ThreadEvents> Out;
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    for (auto &B : R.Buffers) {
      Bufs.push_back(B.get());
      ThreadEvents TE;
      TE.Tid = B->Tid;
      TE.Name = B->Name.empty() ? "thread-" + std::to_string(B->Tid)
                                : B->Name;
      Out.push_back(std::move(TE));
    }
  }
  for (size_t I = 0; I < Bufs.size(); ++I) {
    const size_t N = Bufs[I]->size();
    Out[I].Events.reserve(N);
    for (size_t E = 0; E < N; ++E)
      Out[I].Events.push_back(Bufs[I]->get(E));
  }
  return Out;
}

uint64_t traceEventCount() {
  uint64_t N = 0;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (auto &B : R.Buffers)
    N += B->size();
  return N;
}

uint64_t traceDroppedCount() {
  uint64_t N = 0;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (auto &B : R.Buffers)
    N += B->dropped();
  return N;
}

void clearTrace() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (auto &B : R.Buffers)
    B->reset();
}

namespace {

void appendJsonEscaped(std::string &Out, const char *S) {
  for (; S && *S; ++S) {
    if (*S == '"' || *S == '\\')
      Out += '\\';
    Out += *S;
  }
}

} // namespace

std::string chromeTraceJson() {
  std::vector<ThreadEvents> All = collectTrace();
  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  char Buf[256];
  for (const ThreadEvents &TE : All) {
    // Thread-name metadata event so Perfetto labels the track.
    if (!First)
      Out += ",\n";
    First = false;
    Out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(TE.Tid) + ",\"args\":{\"name\":\"";
    appendJsonEscaped(Out, TE.Name.c_str());
    Out += "\"}}";
    for (const TraceEvent &E : TE.Events) {
      Out += ",\n{\"name\":\"";
      appendJsonEscaped(Out, E.Name);
      Out += "\",\"cat\":\"";
      appendJsonEscaped(Out, E.Cat);
      // Chrome trace timestamps/durations are microseconds.
      std::snprintf(Buf, sizeof(Buf),
                    "\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                    "\"ts\":%.3f,\"dur\":%.3f,"
                    "\"args\":{\"a0\":%lld,\"a1\":%lld}}",
                    TE.Tid, E.StartNs / 1e3, E.DurNs / 1e3,
                    static_cast<long long>(E.Arg0),
                    static_cast<long long>(E.Arg1));
      Out += Buf;
    }
  }
  Out += "\n]}\n";
  return Out;
}

bool writeChromeTrace(const std::string &Path) {
  std::ofstream OutFile(Path);
  if (!OutFile)
    return false;
  OutFile << chromeTraceJson();
  return static_cast<bool>(OutFile);
}

} // namespace obs
} // namespace systec
