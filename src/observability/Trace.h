//===- observability/Trace.h - Execution tracing --------------*- C++ -*-===//
///
/// \file
/// Lock-free per-thread span tracing for the execution stack, modeled
/// on the NBS TExecutorCounters activity-scope idiom: instrumented code
/// opens RAII TraceScopes (or calls emitSpan directly) around phases,
/// plan loops, pool tasks, and wait/execute activity; each thread
/// appends completed spans to its own TraceBuffer; exporters walk all
/// buffers after the fact and produce Chrome `trace_event` JSON
/// (loadable in chrome://tracing or https://ui.perfetto.dev) or raw
/// event snapshots for tests and the ExecReport API.
///
/// Cost discipline: everything is gated on one process-wide flag read
/// with relaxed ordering. When tracing is disabled a TraceScope
/// constructor is a single predictable branch and no clock is read, so
/// the runtime's hot paths stay clean (pinned by the perf_smoke
/// overhead test); per-plan-loop instrumentation additionally hides
/// behind the per-run ExecCtx::TraceOn snapshot exactly like the
/// counter flag.
///
/// Concurrency contract: a TraceBuffer is appended to only by its
/// owning thread. Events become visible to readers through a
/// release-store of the element count (acquire-loaded by readers), and
/// storage grows in fixed blocks published with release stores, so
/// concurrent export while workers keep tracing is race-free (checked
/// under TSan by the tsan_smoke target). Buffers are registered in a
/// process-wide registry and intentionally outlive their threads, like
/// the global ThreadPool.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_OBSERVABILITY_TRACE_H
#define SYSTEC_OBSERVABILITY_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace systec {
namespace obs {

/// Master switch. Off by default; ExecOptions::Tracing turns it on for
/// the process at Executor::prepare (tracing is process-wide because
/// the shared ThreadPool's workers cannot belong to one executor).
bool tracingEnabled();
void setTracingEnabled(bool Enabled);

/// Monotonic nanoseconds since the process's first use of the clock.
uint64_t nowNs();

/// Interns \p S into a process-lifetime string table and returns a
/// stable pointer (events store `const char *` names so the hot append
/// path never allocates). Intended for cold paths: plan compilation,
/// registration. Thread-safe.
const char *internName(const std::string &S);

/// One completed span. Name/Cat must be string literals or interned.
struct TraceEvent {
  const char *Name = nullptr;
  const char *Cat = nullptr;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  int64_t Arg0 = 0;
  int64_t Arg1 = 0;
};

/// Appends a completed span to the calling thread's buffer. The caller
/// must have checked tracingEnabled() (emitSpan does not re-check).
void emitSpan(const char *Name, const char *Cat, uint64_t StartNs,
              uint64_t DurNs, int64_t Arg0 = 0, int64_t Arg1 = 0);

/// Names the calling thread in trace exports ("main", "worker-3").
/// First writer wins; later calls are ignored.
void setThreadName(const std::string &Name);

/// RAII span: records the start time at construction and appends one
/// complete event at destruction. A no-op (no clock read, no buffer
/// touch) when tracing is disabled at construction.
class TraceScope {
public:
  TraceScope(const char *Name, const char *Cat, int64_t Arg0 = 0,
             int64_t Arg1 = 0) {
    if (tracingEnabled()) {
      E.Name = Name;
      E.Cat = Cat;
      E.Arg0 = Arg0;
      E.Arg1 = Arg1;
      E.StartNs = nowNs();
      Active = true;
    }
  }
  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;
  ~TraceScope() {
    if (Active) {
      E.DurNs = nowNs() - E.StartNs;
      emitSpan(E.Name, E.Cat, E.StartNs, E.DurNs, E.Arg0, E.Arg1);
    }
  }

  bool active() const { return Active; }
  /// Nanoseconds elapsed since construction (0 when inactive).
  uint64_t elapsedNs() const { return Active ? nowNs() - E.StartNs : 0; }

private:
  TraceEvent E;
  bool Active = false;
};

/// One thread's events plus its identity, as snapshotted by collect().
struct ThreadEvents {
  unsigned Tid = 0;
  std::string Name;
  std::vector<TraceEvent> Events;
};

/// Snapshots every registered buffer (acquire-reads the published
/// counts; events appended after the snapshot are not included).
std::vector<ThreadEvents> collectTrace();

/// Total events across all buffers, and events dropped because a
/// buffer hit its capacity cap (never blocks or reallocates the hot
/// path; drops are counted instead).
uint64_t traceEventCount();
uint64_t traceDroppedCount();

/// Resets every buffer to empty and zeroes the dropped count. Only
/// safe while no instrumented code is running (tests, between bench
/// configurations).
void clearTrace();

/// Renders the collected events as a Chrome trace_event JSON document
/// ({"traceEvents":[...]}; ph="X" complete events, microsecond
/// timestamps, one tid per registered thread, thread_name metadata).
std::string chromeTraceJson();

/// Writes chromeTraceJson() to \p Path; false on I/O failure.
bool writeChromeTrace(const std::string &Path);

} // namespace obs
} // namespace systec

#endif // SYSTEC_OBSERVABILITY_TRACE_H
