//===- observability/Histogram.h - Log-bucketed histograms ----*- C++ -*-===//
///
/// \file
/// A fixed-size log2-bucketed histogram of nonnegative integer samples
/// (task durations in nanoseconds, task element counts). Bucket B holds
/// samples whose bit width is B, i.e. values in [2^(B-1), 2^B); bucket
/// 0 holds the value 0. The layout is position-independent, so two
/// histograms merge by adding counts — merging is associative and
/// commutative, which is what lets per-worker and per-task histograms
/// roll up into one report in any order (asserted by
/// tests/observability_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_OBSERVABILITY_HISTOGRAM_H
#define SYSTEC_OBSERVABILITY_HISTOGRAM_H

#include <cstdint>
#include <string>

namespace systec {
namespace obs {

class LogHistogram {
public:
  static constexpr unsigned NumBuckets = 64;

  /// The bucket index \p V falls into (its bit width; 0 for 0).
  static unsigned bucketOf(uint64_t V) {
    unsigned B = 0;
    while (V) {
      ++B;
      V >>= 1;
    }
    return B;
  }

  /// Inclusive lower bound of bucket \p B (0, 1, 2, 4, 8, ...).
  static uint64_t bucketLo(unsigned B) {
    return B == 0 ? 0 : uint64_t(1) << (B - 1);
  }

  void add(uint64_t V) {
    ++Buckets[bucketOf(V)];
    ++N;
    Total += V;
    if (V > MaxV)
      MaxV = V;
  }

  /// Adds \p O's samples to this histogram (associative, commutative).
  void merge(const LogHistogram &O) {
    for (unsigned B = 0; B < NumBuckets; ++B)
      Buckets[B] += O.Buckets[B];
    N += O.N;
    Total += O.Total;
    if (O.MaxV > MaxV)
      MaxV = O.MaxV;
  }

  uint64_t count() const { return N; }
  uint64_t total() const { return Total; }
  uint64_t maxValue() const { return MaxV; }
  uint64_t bucketCount(unsigned B) const {
    return B < NumBuckets ? Buckets[B] : 0;
  }
  double mean() const { return N ? double(Total) / double(N) : 0.0; }

  /// The samples \p After accumulated beyond \p Before (bucket-wise
  /// subtraction; valid because counts only grow). Used to window the
  /// pool's since-process-start task histograms to one run. MaxV is
  /// not recoverable for a window, so the result keeps After's
  /// since-start maximum.
  static LogHistogram windowDelta(const LogHistogram &After,
                                  const LogHistogram &Before) {
    LogHistogram Out;
    for (unsigned B = 0; B < NumBuckets; ++B)
      Out.Buckets[B] = After.Buckets[B] >= Before.Buckets[B]
                           ? After.Buckets[B] - Before.Buckets[B]
                           : 0;
    Out.N = After.N >= Before.N ? After.N - Before.N : 0;
    Out.Total = After.Total >= Before.Total ? After.Total - Before.Total : 0;
    Out.MaxV = After.MaxV;
    return Out;
  }

  bool operator==(const LogHistogram &O) const {
    if (N != O.N || Total != O.Total || MaxV != O.MaxV)
      return false;
    for (unsigned B = 0; B < NumBuckets; ++B)
      if (Buckets[B] != O.Buckets[B])
        return false;
    return true;
  }

  /// Compact JSON: {"count":N,"total":T,"max":M,"buckets":{"8":3,...}}
  /// (bucket keys are the inclusive lower bound; empty buckets are
  /// omitted).
  std::string toJson() const {
    std::string Out = "{\"count\":" + std::to_string(N) +
                      ",\"total\":" + std::to_string(Total) +
                      ",\"max\":" + std::to_string(MaxV) + ",\"buckets\":{";
    bool First = true;
    for (unsigned B = 0; B < NumBuckets; ++B) {
      if (!Buckets[B])
        continue;
      if (!First)
        Out += ',';
      First = false;
      Out += '"' + std::to_string(bucketLo(B)) +
             "\":" + std::to_string(Buckets[B]);
    }
    Out += "}}";
    return Out;
  }

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t N = 0;
  uint64_t Total = 0;
  uint64_t MaxV = 0;
};

} // namespace obs
} // namespace systec

#endif // SYSTEC_OBSERVABILITY_HISTOGRAM_H
