//===- observability/Report.h - Structured execution stats ----*- C++ -*-===//
///
/// \file
/// The structured counterpart of the Chrome trace: one ExecReport per
/// Executor run (Executor::lastReport()), carrying the pipeline phase
/// timings, per-plan-loop engine/driver attribution, per-worker
/// wait/execute activity, and the run's exact counter deltas. Benches
/// embed the report in BENCH_*.json so tools/bench_check.py can show
/// *where* a ratio delta came from, and the cross-thread invariance
/// tests compare reports through structureKey(), which strips every
/// timing- and scheduling-dependent field.
///
/// Phase semantics (ns, monotonic clock): materialize, plan-compile
/// and specialize are measured at prepare() and repeated verbatim in
/// every run's report; execute and merge are per-run. Two containment
/// relations matter when summing: specialize is a subset of
/// plan-compile, and merge (privatized-accumulator merging after
/// parallel loops) is a subset of execute.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_OBSERVABILITY_REPORT_H
#define SYSTEC_OBSERVABILITY_REPORT_H

#include "observability/Histogram.h"
#include "support/Counters.h"

#include <cstdint>
#include <string>
#include <vector>

namespace systec {
namespace obs {

/// One pipeline phase timing.
struct PhaseStat {
  std::string Name;
  uint64_t Ns = 0;
};

/// One plan loop's execution aggregate. Labels and engine/driver names
/// are assigned at plan compilation; Calls/Ns are collected per run,
/// and only while tracing is enabled (zero otherwise — the hot path
/// stays untimed). Calls counts execRange dispatches, so it depends on
/// the parallel chunking; structureKey() therefore excludes it.
struct LoopStat {
  std::string Label;  ///< e.g. "loop i [Fused/SparseWalk]"
  std::string Engine; ///< "Interp", "Fused", or "Blocked"
  std::string Driver; ///< "Range", "DenseWalk", "SparseWalk", ...
  uint64_t Calls = 0;
  uint64_t Ns = 0;
};

/// Wait/execute activity of one pool participant over the run (the
/// delta of the ThreadPool's always-on accounting between run start
/// and run end). The "caller" entry is the submitting thread's own
/// per-caller slot, so concurrent requests see their own wait/execute
/// split.
struct WorkerStat {
  std::string Name; ///< "worker-0", ..., or "caller"
  uint64_t WaitNs = 0;
  uint64_t ExecNs = 0;
  uint64_t Tasks = 0;
  LogHistogram TaskNs; ///< log2-bucketed per-task durations
};

struct ExecReport {
  std::vector<PhaseStat> Phases;
  std::vector<LoopStat> Loops;   ///< indexed by plan-loop trace id
  std::vector<WorkerStat> Workers;
  /// Exactly this run's counter deltas (captured from the execution
  /// context before the global flush, so concurrent executors do not
  /// bleed into each other).
  CounterSnapshot Counters;
  std::string Options; ///< execOptionsSummary() of the run's options
  /// Empty on a completed run; the errCodeName() of the stop reason
  /// ("cancelled", "deadline-exceeded") when the run was aborted.
  /// Deliberately excluded from structureKey(): whether a deadline
  /// fired is timing-dependent, and the key must stay invariant across
  /// Threads/Schedule for a fixed plan.
  std::string AbortReason;

  /// Ns of the named phase; 0 when absent.
  uint64_t phaseNs(const std::string &Name) const;

  /// A timing-free fingerprint: phase names, loop labels/engines/
  /// drivers, and the counter deltas — everything that must be
  /// invariant across Threads/Schedule for a fixed plan. Excludes all
  /// Ns fields, loop call counts (chunking-dependent), and worker
  /// activity (pool-size-dependent).
  std::string structureKey() const;

  /// {"materialize":0.012,...} — per-phase milliseconds, for bench
  /// records.
  std::string phasesJson() const;

  /// The full report as one JSON object.
  std::string toJson() const;
};

/// {"sparse_reads":N,...} — the snapshot as a JSON object (shared by
/// toJson and the bench records).
std::string counterJson(const CounterSnapshot &C);

/// C += O, field by field.
void addCounters(CounterSnapshot &C, const CounterSnapshot &O);

} // namespace obs
} // namespace systec

#endif // SYSTEC_OBSERVABILITY_REPORT_H
