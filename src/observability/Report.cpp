//===- observability/Report.cpp - Structured execution stats --*- C++ -*-===//

#include "observability/Report.h"

#include <cstdio>

namespace systec {
namespace obs {

uint64_t ExecReport::phaseNs(const std::string &Name) const {
  for (const PhaseStat &P : Phases)
    if (P.Name == Name)
      return P.Ns;
  return 0;
}

std::string counterJson(const CounterSnapshot &C) {
  auto N = [](uint64_t V) { return std::to_string(V); };
  return "{\"sparse_reads\":" + N(C.SparseReads) +
         ",\"reductions\":" + N(C.Reductions) +
         ",\"scalar_ops\":" + N(C.ScalarOps) +
         ",\"output_writes\":" + N(C.OutputWrites) +
         ",\"fused_blocked_panels\":" + N(C.FusedBlockedPanels) +
         ",\"fused_blocked_stores\":" + N(C.FusedBlockedStores) + "}";
}

void addCounters(CounterSnapshot &C, const CounterSnapshot &O) {
  C.SparseReads += O.SparseReads;
  C.Reductions += O.Reductions;
  C.ScalarOps += O.ScalarOps;
  C.OutputWrites += O.OutputWrites;
  C.LoopsSpecialized += O.LoopsSpecialized;
  C.LoopsGeneric += O.LoopsGeneric;
  C.WalkersRecovered += O.WalkersRecovered;
  C.WalkersRejected += O.WalkersRejected;
  C.FusedBlockedPanels += O.FusedBlockedPanels;
  C.FusedBlockedStores += O.FusedBlockedStores;
}

std::string ExecReport::structureKey() const {
  std::string Out = "phases:";
  for (const PhaseStat &P : Phases)
    (Out += P.Name) += ',';
  Out += ";loops:";
  for (const LoopStat &L : Loops)
    Out += L.Label + "/" + L.Engine + "/" + L.Driver + ",";
  Out += ";counters:" + counterJson(Counters);
  return Out;
}

std::string ExecReport::phasesJson() const {
  std::string Out = "{";
  char Buf[64];
  for (size_t I = 0; I < Phases.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "\"%s\":%.6f",
                  Phases[I].Name.c_str(), Phases[I].Ns / 1e6);
    Out += Buf;
    if (I + 1 < Phases.size())
      Out += ',';
  }
  Out += '}';
  return Out;
}

std::string ExecReport::toJson() const {
  std::string Out = "{\"phases_ms\":" + phasesJson() + ",\"loops\":[";
  for (size_t I = 0; I < Loops.size(); ++I) {
    const LoopStat &L = Loops[I];
    Out += "{\"label\":\"" + L.Label + "\",\"engine\":\"" + L.Engine +
           "\",\"driver\":\"" + L.Driver +
           "\",\"calls\":" + std::to_string(L.Calls) +
           ",\"ns\":" + std::to_string(L.Ns) + "}";
    if (I + 1 < Loops.size())
      Out += ',';
  }
  Out += "],\"workers\":[";
  for (size_t I = 0; I < Workers.size(); ++I) {
    const WorkerStat &W = Workers[I];
    Out += "{\"name\":\"" + W.Name +
           "\",\"wait_ns\":" + std::to_string(W.WaitNs) +
           ",\"exec_ns\":" + std::to_string(W.ExecNs) +
           ",\"tasks\":" + std::to_string(W.Tasks) +
           ",\"task_ns\":" + W.TaskNs.toJson() + "}";
    if (I + 1 < Workers.size())
      Out += ',';
  }
  Out += "],\"counters\":" + counterJson(Counters) + ",\"options\":\"" +
         Options + "\"";
  if (!AbortReason.empty())
    Out += ",\"abort_reason\":\"" + AbortReason + "\"";
  Out += '}';
  return Out;
}

} // namespace obs
} // namespace systec
