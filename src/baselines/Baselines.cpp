//===- baselines/Baselines.cpp --------------------------------*- C++ -*-===//

#include "baselines/Baselines.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace systec {

namespace {

/// Checks the Dense(Sparse(Element)) matrix layout (CSC for A[i,j]).
void assertCsc(const Tensor &A) {
  assert(A.order() == 2 && "matrix kernel on non-matrix");
  assert(A.level(0).Kind == LevelKind::Dense &&
         A.level(1).Kind == LevelKind::Sparse && "expected CSC layout");
  (void)A;
}

} // namespace

void tacoSpmv(const Tensor &A, const Tensor &X, Tensor &Y) {
  assertCsc(A);
  const Level &Rows = A.level(1);
  const double *XV = X.vals().data();
  double *YV = Y.vals().data();
  const int64_t Cols = A.level(0).Dim;
  for (int64_t J = 0; J < Cols; ++J)
    for (int64_t P = Rows.Ptr[J]; P < Rows.Ptr[J + 1]; ++P)
      YV[Rows.Crd[P]] += A.val(P) * XV[J];
}

void mklSymv(const Tensor &AUpper, const Tensor &X, Tensor &Y) {
  assertCsc(AUpper);
  const Level &Rows = AUpper.level(1);
  const double *XV = X.vals().data();
  double *YV = Y.vals().data();
  const int64_t Cols = AUpper.level(0).Dim;
  for (int64_t J = 0; J < Cols; ++J) {
    double Acc = 0;
    for (int64_t P = Rows.Ptr[J]; P < Rows.Ptr[J + 1]; ++P) {
      const int64_t I = Rows.Crd[P];
      const double V = AUpper.val(P);
      YV[I] += V * XV[J];
      if (I != J)
        Acc += V * XV[I];
    }
    YV[J] += Acc;
  }
}

void tacoBellmanFord(const Tensor &A, const Tensor &D, Tensor &Y) {
  assertCsc(A);
  const Level &Rows = A.level(1);
  const double *DV = D.vals().data();
  double *YV = Y.vals().data();
  const int64_t Cols = A.level(0).Dim;
  for (int64_t J = 0; J < Cols; ++J)
    for (int64_t P = Rows.Ptr[J]; P < Rows.Ptr[J + 1]; ++P) {
      const int64_t I = Rows.Crd[P];
      YV[I] = std::min(YV[I], A.val(P) + DV[J]);
    }
}

double tacoSyprd(const Tensor &A, const Tensor &X) {
  assertCsc(A);
  const Level &Rows = A.level(1);
  const double *XV = X.vals().data();
  const int64_t Cols = A.level(0).Dim;
  double Out = 0;
  for (int64_t J = 0; J < Cols; ++J) {
    double Acc = 0;
    for (int64_t P = Rows.Ptr[J]; P < Rows.Ptr[J + 1]; ++P)
      Acc += XV[Rows.Crd[P]] * A.val(P);
    Out += Acc * XV[J];
  }
  return Out;
}

void tacoSsyrk(const Tensor &A, Tensor &C) {
  assertCsc(A);
  assert(C.format().isAllDense() && "SSYRK output must be dense");
  const Level &Rows = A.level(1);
  const int64_t N = C.dim(0);
  double *CV = C.vals().data();
  const int64_t Cols = A.level(0).Dim;
  for (int64_t K = 0; K < Cols; ++K)
    for (int64_t PJ = Rows.Ptr[K]; PJ < Rows.Ptr[K + 1]; ++PJ) {
      const int64_t J = Rows.Crd[PJ];
      const double VJ = A.val(PJ);
      double *Col = CV + J * N; // C[i,j] column-major
      for (int64_t PI = Rows.Ptr[K]; PI < Rows.Ptr[K + 1]; ++PI)
        Col[Rows.Crd[PI]] += A.val(PI) * VJ;
    }
}

void tacoTtm(const Tensor &A, const Tensor &B, Tensor &C) {
  assert(A.order() == 3 && "TTM expects a 3-d tensor");
  assert(A.level(0).Kind == LevelKind::Dense &&
         A.level(1).Kind == LevelKind::Sparse &&
         A.level(2).Kind == LevelKind::Sparse && "expected CSF layout");
  // A[k,j,l]: level 0 = l (dense), level 1 = j, level 2 = k.
  const Level &LJ = A.level(1), &LK = A.level(2);
  const int64_t NI = C.dim(0), NJ = C.dim(1);
  const int64_t BK = B.dim(0);
  const double *BV = B.vals().data(); // B[k,i] column-major: k + i*BK
  double *CV = C.vals().data();       // C[i,j,l]: i + j*NI + l*NI*NJ
  for (int64_t L = 0; L < A.level(0).Dim; ++L)
    for (int64_t PJ = LJ.Ptr[L]; PJ < LJ.Ptr[L + 1]; ++PJ) {
      const int64_t J = LJ.Crd[PJ];
      double *Fiber = CV + J * NI + L * NI * NJ;
      for (int64_t PK = LK.Ptr[PJ]; PK < LK.Ptr[PJ + 1]; ++PK) {
        const int64_t K = LK.Crd[PK];
        const double V = A.val(PK);
        for (int64_t I = 0; I < NI; ++I)
          Fiber[I] += V * BV[K + I * BK];
      }
    }
}

void tacoMttkrp3(const Tensor &A, const Tensor &B, Tensor &C) {
  assert(A.order() == 3 && "MTTKRP expects a 3-d tensor");
  // A[i,k,l]: level 0 = l, level 1 = k, level 2 = i.
  const Level &LK = A.level(1), &LI = A.level(2);
  const int64_t NI = C.dim(0), NR = C.dim(1);
  const int64_t BN = B.dim(0);
  const double *BV = B.vals().data(); // B[k,j]: k + j*BN
  double *CV = C.vals().data();       // C[i,j]: i + j*NI
  for (int64_t L = 0; L < A.level(0).Dim; ++L)
    for (int64_t PK = LK.Ptr[L]; PK < LK.Ptr[L + 1]; ++PK) {
      const int64_t K = LK.Crd[PK];
      for (int64_t PI = LI.Ptr[PK]; PI < LI.Ptr[PK + 1]; ++PI) {
        const int64_t I = LI.Crd[PI];
        const double V = A.val(PI);
        for (int64_t R = 0; R < NR; ++R)
          CV[I + R * NI] += V * BV[K + R * BN] * BV[L + R * BN];
      }
    }
}

void splattMttkrp3(const Tensor &A, const Tensor &B, Tensor &C) {
  assert(A.order() == 3 && "MTTKRP expects a 3-d tensor");
  const Level &LK = A.level(1), &LI = A.level(2);
  const int64_t NI = C.dim(0), NR = C.dim(1);
  const int64_t BN = B.dim(0);
  const double *BV = B.vals().data();
  double *CV = C.vals().data();
  std::vector<double> W(NR);
  for (int64_t L = 0; L < A.level(0).Dim; ++L)
    for (int64_t PK = LK.Ptr[L]; PK < LK.Ptr[L + 1]; ++PK) {
      const int64_t K = LK.Crd[PK];
      // Operand factoring: hoist the Hadamard product of the two factor
      // rows across the leaf fiber.
      for (int64_t R = 0; R < NR; ++R)
        W[R] = BV[K + R * BN] * BV[L + R * BN];
      for (int64_t PI = LI.Ptr[PK]; PI < LI.Ptr[PK + 1]; ++PI) {
        const int64_t I = LI.Crd[PI];
        const double V = A.val(PI);
        for (int64_t R = 0; R < NR; ++R)
          CV[I + R * NI] += V * W[R];
      }
    }
}

Tensor upperTriangle(const Tensor &A) {
  assert(A.order() == 2 && "upperTriangle expects a matrix");
  Coo Entries(A.dims());
  A.forEach([&Entries](const std::vector<int64_t> &C, double V) {
    if (C[0] <= C[1])
      Entries.add(C, V);
  });
  return Tensor::fromCoo(std::move(Entries), A.format(), A.fill());
}

} // namespace systec
