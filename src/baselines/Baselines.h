//===- baselines/Baselines.h - Native comparator kernels ------*- C++ -*-===//
///
/// \file
/// Hand-written native C++ kernels standing in for the systems the
/// paper compares against (Section 5.2): TACO's column-major compressed
/// kernels (no symmetry exploitation), MKL's symmetric sparse SpMV
/// (`mkl_dcsrsymv`-class: canonical-triangle storage, one-pass update
/// of both triangles), and SPLATT's CSF MTTKRP with hoisted partial
/// products. These operate directly on the level storage (CSC/CSF:
/// Dense top level, Sparse below) and are compiled natively, so they
/// bound what a specializing backend would achieve; the paper's figures
/// are reproduced as ratios within one execution engine (see
/// EXPERIMENTS.md).
///
/// All kernels accumulate into the caller's output.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_BASELINES_BASELINES_H
#define SYSTEC_BASELINES_BASELINES_H

#include "tensor/Tensor.h"

namespace systec {

/// TACO-style CSC SpMV: y[i] += A[i,j] * x[j].
void tacoSpmv(const Tensor &A, const Tensor &X, Tensor &Y);

/// MKL-style symmetric SpMV over the canonical (upper) triangle:
/// \p AUpper stores only entries with i <= j; both triangles of the
/// implicit symmetric matrix are applied in one pass.
void mklSymv(const Tensor &AUpper, const Tensor &X, Tensor &Y);

/// TACO-style min-plus relaxation: y[i] min= A[i,j] + d[j].
void tacoBellmanFord(const Tensor &A, const Tensor &D, Tensor &Y);

/// TACO-style triple product: returns sum_ij x[i]*A[i,j]*x[j].
double tacoSyprd(const Tensor &A, const Tensor &X);

/// TACO-style outer-product SSYRK: C[i,j] += A[i,k] * A[j,k] over the
/// full output (no symmetry exploitation). C is dense.
void tacoSsyrk(const Tensor &A, Tensor &C);

/// TACO-style TTM: C[i,j,l] += A[k,j,l] * B[k,i]; A is CSF, B and C
/// dense (C column-major [i,j,l]).
void tacoTtm(const Tensor &A, const Tensor &B, Tensor &C);

/// TACO-style 3-d MTTKRP: C[i,j] += A[i,k,l] * B[k,j] * B[l,j].
void tacoMttkrp3(const Tensor &A, const Tensor &B, Tensor &C);

/// SPLATT-style 3-d MTTKRP: CSF traversal hoisting the B[l,:] partial
/// product across the middle fiber (operand factoring).
void splattMttkrp3(const Tensor &A, const Tensor &B, Tensor &C);

/// Extracts the canonical (upper, i <= j) triangle of a symmetric
/// matrix, for the MKL-style baseline.
Tensor upperTriangle(const Tensor &A);

} // namespace systec

#endif // SYSTEC_BASELINES_BASELINES_H
