//===- runtime/Annihilation.cpp - Walker soundness algebra ----*- C++ -*-===//

#include "runtime/Annihilation.h"

#include "ir/Ops.h"
#include "support/Error.h"

#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace systec {

namespace {

//===----------------------------------------------------------------------===//
// Algebraic analysis
//===----------------------------------------------------------------------===//

/// Abstract scalar value under the hypothesis: a known constant or
/// unknown (std::nullopt).
using AbsVal = std::optional<double>;

/// Joins the state after a conditionally-executed region (\p A, which
/// evolved from \p B) with the fall-through state \p B: scalars whose
/// value changed across the region become unknown. A scalar first
/// defined inside the region keeps its value: the lowering defines
/// every block temporary before its reads and guards the reads with the
/// defining block's condition, so a read never observes the
/// never-defined fall-through path. (The legacy membership check leaned
/// on the same contract — its def-reference map was fully
/// flow-insensitive.)
void joinInto(std::map<std::string, AbsVal> &A,
              const std::map<std::string, AbsVal> &B) {
  for (auto &[Name, V] : A) {
    auto It = B.find(Name);
    if (It == B.end())
      continue; // first definition: adopt the defined value
    if (!V || !It->second || *V != *It->second)
      V = std::nullopt;
  }
}

/// One annihilation query: walks the subtree in program order
/// maintaining abstract scalar state, and records a failure for every
/// assignment that is not provably a no-op under the hypothesis.
class AnnihilationQuery {
public:
  AnnihilationQuery(const std::string &Key, double Fill)
      : Key(Key), Fill(Fill) {}

  bool run(const StmtPtr &Body) {
    walk(Body);
    return !Failed;
  }

private:
  const std::string &Key;
  double Fill;
  bool Failed = false;
  std::map<std::string, AbsVal> Scalars;

  AbsVal eval(const ExprPtr &E) {
    switch (E->kind()) {
    case ExprKind::Literal:
      return E->literalValue();
    case ExprKind::Scalar: {
      auto It = Scalars.find(E->scalarName());
      return It == Scalars.end() ? std::nullopt : It->second;
    }
    case ExprKind::Access:
      // The hypothesis binds exactly this access; any other access —
      // including other accesses of the same tensor — varies freely.
      return E->str() == Key ? AbsVal(Fill) : std::nullopt;
    case ExprKind::Call: {
      std::vector<AbsVal> Args;
      bool AllKnown = true;
      for (const ExprPtr &A : E->args()) {
        Args.push_back(eval(A));
        AllKnown &= Args.back().has_value();
      }
      if (AllKnown) {
        // evalOp folds left-to-right exactly like the expression VM, so
        // the folded constant is the value the runtime would compute.
        double Acc = *Args[0];
        for (size_t I = 1; I < Args.size(); ++I)
          Acc = evalOp(E->op(), Acc, *Args[I]);
        if (std::isnan(Acc))
          return std::nullopt;
        return Acc;
      }
      // Per-operand absorption: a known operand that annihilates the
      // operator forces the whole call regardless of the unknown
      // co-operands. Two known operands forcing different results
      // (inf + -inf) stay unknown.
      AbsVal Forced;
      for (const AbsVal &A : Args) {
        if (!A)
          continue;
        if (std::isnan(*A))
          return std::nullopt;
        if (AbsVal F = opAbsorbingResult(E->op(), *A)) {
          if (Forced && *Forced != *F)
            return std::nullopt;
          Forced = F;
        }
      }
      return Forced;
    }
    case ExprKind::Lut:
      return std::nullopt;
    }
    unreachable("unknown expression kind");
  }

  void walk(const StmtPtr &S) {
    switch (S->kind()) {
    case StmtKind::Block:
      for (const StmtPtr &Child : S->stmts())
        walk(Child);
      return;
    case StmtKind::If: {
      // The branch may or may not execute: statements inside still need
      // to annihilate (guards only shrink the iteration set), and
      // definitions merge with the fall-through state afterwards.
      auto Before = Scalars;
      walk(S->body());
      joinInto(Scalars, Before);
      return;
    }
    case StmtKind::Loop: {
      // Iterate the body to a state fixpoint so loop-carried scalar
      // reads see the widened value. Failure verdicts are sticky and
      // monotone under widening (a constant degrading to unknown can
      // only turn no-ops into failures), so the final, stable pass
      // decides soundly. The lattice has height one per scalar, which
      // bounds the iteration; the cap is sheer paranoia.
      for (unsigned Pass = 0; Pass < 16; ++Pass) {
        auto Before = Scalars;
        walk(S->body());
        joinInto(Scalars, Before);
        if (Scalars == Before)
          break;
      }
      return;
    }
    case StmtKind::DefScalar:
      // Definitions are iteration-local temporaries (the lowering
      // defines every workspace before its reads): their stores are not
      // observable effects, only the value they feed to later reads.
      Scalars[S->scalarName()] = eval(S->rhs());
      return;
    case StmtKind::Assign: {
      AbsVal V = eval(S->rhs());
      // A reduction by the operator's identity is a no-op at any
      // multiplicity; anything else — including plain overwrites, whose
      // effect on the destination is unknowable — fails the query.
      const bool NoOp =
          S->reduceOp() && V && *V == opInfo(*S->reduceOp()).Identity;
      if (!NoOp) {
        Failed = true;
        if (S->lhs()->kind() == ExprKind::Scalar)
          Scalars[S->lhs()->scalarName()] = std::nullopt;
      }
      return;
    }
    case StmtKind::Replicate:
      Failed = true; // whole-tensor effect; never skippable
      return;
    }
    unreachable("unknown statement kind");
  }
};

//===----------------------------------------------------------------------===//
// Legacy membership check
//===----------------------------------------------------------------------===//

/// Accesses an expression's value depends on, transitively through
/// scalar temporaries in \p DefRefs.
void exprRefs(const ExprPtr &Ex,
              const std::map<std::string, std::set<std::string>> &DefRefs,
              std::set<std::string> &Out) {
  switch (Ex->kind()) {
  case ExprKind::Access:
    Out.insert(Ex->str());
    return;
  case ExprKind::Scalar: {
    auto It = DefRefs.find(Ex->scalarName());
    if (It != DefRefs.end())
      Out.insert(It->second.begin(), It->second.end());
    return;
  }
  case ExprKind::Call:
    for (const ExprPtr &A : Ex->args())
      exprRefs(A, DefRefs, Out);
    return;
  case ExprKind::Literal:
  case ExprKind::Lut:
    return;
  }
}

/// Per assignment in \p S (program order), the set of access keys its
/// value transitively depends on, following scalar defs inside the
/// subtree. A scalar defined on several paths keeps the intersection:
/// an access only backs a use if it backs every possible definition.
std::vector<std::set<std::string>> collectAssignRefs(const StmtPtr &S) {
  std::map<std::string, std::set<std::string>> DefRefs;
  std::vector<std::set<std::string>> Out;
  Stmt::walk(S, [&](const StmtPtr &Node) {
    if (Node->kind() == StmtKind::DefScalar) {
      std::set<std::string> Refs;
      exprRefs(Node->rhs(), DefRefs, Refs);
      auto [It, New] = DefRefs.insert({Node->scalarName(), Refs});
      if (!New) {
        std::set<std::string> Inter;
        for (const std::string &R : Refs)
          if (It->second.count(R))
            Inter.insert(R);
        It->second = std::move(Inter);
      }
    } else if (Node->kind() == StmtKind::Assign) {
      std::set<std::string> Refs;
      exprRefs(Node->rhs(), DefRefs, Refs);
      Out.push_back(std::move(Refs));
    }
  });
  return Out;
}

} // namespace

bool accessAnnihilatesSubtree(const StmtPtr &Body,
                              const std::string &AccessKey, double Fill) {
  return AnnihilationQuery(AccessKey, Fill).run(Body);
}

bool accessBacksEveryAssignment(const StmtPtr &Body,
                                const std::string &AccessKey) {
  for (const std::set<std::string> &Refs : collectAssignRefs(Body))
    if (!Refs.count(AccessKey))
      return false;
  return true;
}

} // namespace systec
