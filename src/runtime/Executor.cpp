//===- runtime/Executor.cpp -----------------------------------*- C++ -*-===//

#include "runtime/Executor.h"

#include "core/Codegen.h"
#include "jit/NativeEngine.h"
#include "jit/NativeKernelCache.h"
#include "observability/Trace.h"
#include "parallel/ParallelAnalysis.h"
#include "parallel/ThreadPool.h"
#include "runtime/Annihilation.h"
#include "runtime/MicroKernels.h"
#include "runtime/Plan.h"
#include "support/Counters.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>
#include <thread>

namespace systec {

using namespace detail;

//===----------------------------------------------------------------------===//
// Plan compilation
//===----------------------------------------------------------------------===//

/// Compiles a Kernel's statement tree into plan nodes against bound
/// tensors. Friend of Executor.
class PlanCompiler {
public:
  PlanCompiler(Executor &E) : E(E) {}

  void compileAll() {
    collectExtents(E.K.Body);
    if (E.K.Epilogue)
      collectExtents(E.K.Epilogue);
    E.Ctx = std::make_unique<ExecCtx>();
    E.BodyPlan = compile(E.K.Body);
    if (E.K.Epilogue)
      E.EpiloguePlan = compile(E.K.Epilogue);
    E.Ctx->IndexVal.assign(IndexSlots.size(), 0);
    E.Ctx->ScalarVal.assign(ScalarSlots.size(), 0.0);
    E.Ctx->Accesses = AccessStates;
    E.Ctx->OutPtr.resize(OutTensors.size());
    for (size_t Id = 0; Id < OutTensors.size(); ++Id)
      E.Ctx->OutPtr[Id] = OutTensors[Id]->vals().data();
    E.Outputs = OutTensors;
    E.Ctx->LoopCalls.assign(NextTraceId, 0);
    E.Ctx->LoopNs.assign(NextTraceId, 0);
    E.MKStats = Stats;
    E.SpecializeNs = SpecializeNs;
    E.LoopMeta = std::move(LoopMeta);
    if (countersEnabled()) {
      counters().LoopsSpecialized += Stats.SpecializedLoops;
      counters().LoopsGeneric += Stats.GenericLoops;
      counters().WalkersRecovered += Stats.WalkersRecovered;
      counters().WalkersRejected += Stats.WalkersRejected;
    }
  }

private:
  Executor &E;
  std::map<std::string, unsigned> IndexSlots;
  std::map<std::string, unsigned> ScalarSlots;
  std::map<std::string, int64_t> Extents;
  std::map<std::string, unsigned> AccessIds; // key: printed access
  std::vector<AccessState> AccessStates;
  std::vector<unsigned> Driven; // per access id, along current DFS path
  std::set<std::string> BoundVars;
  std::map<Tensor *, unsigned> OutIds; // written tensors -> OutPtr slot
  std::vector<Tensor *> OutTensors;
  bool InParallel = false; // compiling inside an activated parallel loop
  MicroKernelStats Stats;
  unsigned NextTraceId = 0; // plan-loop observability ids, in-order
  uint64_t SpecializeNs = 0; // time inside specializeLoop calls
  std::vector<obs::LoopStat> LoopMeta; // indexed by trace id

  unsigned indexSlot(const std::string &Name) {
    auto [It, New] = IndexSlots.insert({Name, IndexSlots.size()});
    (void)New;
    return It->second;
  }

  unsigned scalarSlot(const std::string &Name) {
    auto [It, New] = ScalarSlots.insert({Name, ScalarSlots.size()});
    (void)New;
    return It->second;
  }

  unsigned outId(Tensor *T) {
    auto [It, New] = OutIds.insert({T, OutIds.size()});
    if (New)
      OutTensors.push_back(T);
    return It->second;
  }

  Tensor *tensorFor(const std::string &Name) {
    Tensor *T = E.lookup(Name);
    if (!T)
      fatalError("kernel '" + E.K.Name + "' uses unbound tensor " + Name);
    return T;
  }

  unsigned accessId(const ExprPtr &Access) {
    std::string Key = Access->str();
    auto It = AccessIds.find(Key);
    if (It != AccessIds.end())
      return It->second;
    unsigned Id = static_cast<unsigned>(AccessStates.size());
    AccessIds[Key] = Id;
    AccessState S;
    S.T = tensorFor(Access->tensorName());
    S.Indices = Access->indices();
    S.Pos.assign(S.T->order() + 1, 0);
    S.SparseFormat = !S.T->format().isAllDense();
    S.LocParent.assign(S.T->order(), -1);
    S.LocIdx.assign(S.T->order(), 0);
    AccessStates.push_back(std::move(S));
    Driven.push_back(0);
    return Id;
  }

  void collectExtents(const StmtPtr &S) {
    Stmt::walk(S, [this](const StmtPtr &Node) {
      std::vector<ExprPtr> Accesses;
      if (Node->kind() == StmtKind::Assign) {
        Expr::collectAccesses(Node->rhs(), Accesses);
        if (Node->lhs()->kind() == ExprKind::Access)
          Accesses.push_back(Node->lhs());
      } else if (Node->kind() == StmtKind::DefScalar) {
        Expr::collectAccesses(Node->rhs(), Accesses);
      }
      for (const ExprPtr &A : Accesses) {
        Tensor *T = tensorFor(A->tensorName());
        // A 0-d access ("y[]") binds to a one-element dense tensor.
        if (A->indices().empty())
          continue;
        if (T->order() != A->indices().size())
          fatalError("access " + A->str() + " arity mismatch");
        for (unsigned M = 0; M < A->indices().size(); ++M) {
          const std::string &Idx = A->indices()[M];
          auto [It, New] = Extents.insert({Idx, T->dim(M)});
          if (!New && It->second != T->dim(M))
            fatalError("index " + Idx + " has inconsistent extents");
        }
      }
    });
  }

  CAtom compileAtom(const CmpAtom &A) {
    return CAtom{A.Kind, indexSlot(A.Lhs), indexSlot(A.Rhs)};
  }

  CCond compileCond(const Cond &C) {
    CCond Out;
    for (const Conj &D : C.disjuncts()) {
      std::vector<CAtom> Atoms;
      for (const CmpAtom &A : D.Atoms)
        Atoms.push_back(compileAtom(A));
      Out.Disjuncts.push_back(std::move(Atoms));
    }
    return Out;
  }

  VProgram compileExpr(const ExprPtr &Ex) {
    VProgram P;
    emitExpr(Ex, P);
    P.finalize();
    return P;
  }

  void emitExpr(const ExprPtr &Ex, VProgram &P) {
    switch (Ex->kind()) {
    case ExprKind::Literal: {
      VInstr I;
      I.Kind = VKind::Lit;
      I.Lit = Ex->literalValue();
      P.Code.push_back(std::move(I));
      return;
    }
    case ExprKind::Scalar: {
      VInstr I;
      I.Kind = VKind::Scalar;
      I.Id = scalarSlot(Ex->scalarName());
      P.Code.push_back(std::move(I));
      return;
    }
    case ExprKind::Access: {
      unsigned Id = accessId(Ex);
      const AccessState &S = AccessStates[Id];
      VInstr I;
      if (Driven[Id] == S.T->order() && S.T->order() > 0) {
        I.Kind = VKind::Walked;
        I.Id = Id;
      } else if (S.T->format().isAllDense()) {
        I.Kind = VKind::DenseLoad;
        I.T = S.T;
        I.SlotStride = denseStrides(S.T, Ex->indices());
      } else {
        I.Kind = VKind::SparseLoad;
        I.T = S.T;
        I.Id = Id;
        // Per level (top first), the slot providing that level's
        // coordinate, so the locator descends without a scratch
        // buffer.
        for (unsigned L = 0; L < S.T->order(); ++L)
          I.LevelSlots.push_back(
              indexSlot(Ex->indices()[S.T->modeOfLevel(L)]));
      }
      P.Code.push_back(std::move(I));
      return;
    }
    case ExprKind::Call: {
      for (const ExprPtr &A : Ex->args())
        emitExpr(A, P);
      VInstr I;
      I.Kind = VKind::Op;
      I.Op = Ex->op();
      I.NArgs = static_cast<unsigned>(Ex->args().size());
      P.Code.push_back(std::move(I));
      return;
    }
    case ExprKind::Lut: {
      VInstr I;
      I.Kind = VKind::Lut;
      for (const CmpAtom &B : Ex->lutBits())
        I.LutBits.push_back(compileAtom(B));
      I.LutTable = Ex->lutTable();
      P.Code.push_back(std::move(I));
      return;
    }
    }
    unreachable("unknown expression kind");
  }

  std::vector<std::pair<unsigned, int64_t>>
  denseStrides(Tensor *T, const std::vector<std::string> &Indices) {
    // Column-major: mode 0 is contiguous. A 0-d access maps to
    // position 0 of a one-element tensor.
    std::vector<std::pair<unsigned, int64_t>> Out;
    if (Indices.empty())
      return Out;
    assert(Indices.size() == T->order() && "access arity mismatch");
    int64_t Stride = 1;
    for (unsigned M = 0; M < Indices.size(); ++M) {
      Out.push_back({indexSlot(Indices[M]), Stride});
      Stride *= T->dim(M);
    }
    return Out;
  }

  PlanPtr compile(const StmtPtr &S) {
    switch (S->kind()) {
    case StmtKind::Block: {
      auto Seq = std::make_unique<PlanSeq>();
      for (const StmtPtr &Child : S->stmts())
        Seq->Children.push_back(compile(Child));
      return Seq;
    }
    case StmtKind::If: {
      // Conditions referencing unbound indices sink into the body's
      // loops (safety net; the compiler pipeline normally places them
      // correctly).
      if (!allBound(S->condition()))
        return compile(sinkCondition(S->condition(), S->body()));
      auto If = std::make_unique<PlanIf>();
      If->Cond = compileCond(S->condition());
      If->Body = compile(S->body());
      return If;
    }
    case StmtKind::Loop:
      return compileLoop(S);
    case StmtKind::DefScalar: {
      auto Def = std::make_unique<PlanDef>();
      Def->Init = compileExpr(S->rhs());
      Def->Slot = scalarSlot(S->scalarName());
      return Def;
    }
    case StmtKind::Assign: {
      auto As = std::make_unique<PlanAssign>();
      As->Rhs = compileExpr(S->rhs());
      As->Reduce = S->reduceOp();
      As->Mult = S->multiplicity();
      // Fold additive multiplicities into the program (y += k*e) and
      // collapse idempotent duplicates, so the hot path has no
      // multiplicity logic.
      if (As->Mult > 1 && As->Reduce) {
        if (opInfo(*As->Reduce).Idempotent) {
          As->Mult = 1;
        } else if (*As->Reduce == OpKind::Add) {
          VInstr Lit;
          Lit.Kind = VKind::Lit;
          Lit.Lit = As->Mult;
          As->Rhs.Code.push_back(std::move(Lit));
          VInstr Mul;
          Mul.Kind = VKind::Op;
          Mul.Op = OpKind::Mul;
          Mul.NArgs = 2;
          As->Rhs.Code.push_back(std::move(Mul));
          As->Mult = 1;
          As->Rhs.finalize();
        }
      }
      const ExprPtr &Lhs = S->lhs();
      if (Lhs->kind() == ExprKind::Scalar) {
        As->ScalarTarget = true;
        As->ScalarSlot = scalarSlot(Lhs->scalarName());
      } else {
        Tensor *T = tensorFor(Lhs->tensorName());
        if (!T->format().isAllDense())
          fatalError("output tensor " + Lhs->tensorName() +
                     " must be dense for writes");
        As->OutId = outId(T);
        As->SlotStride = denseStrides(T, Lhs->indices());
      }
      return As;
    }
    case StmtKind::Replicate: {
      auto Rep = std::make_unique<PlanReplicate>();
      Rep->T = tensorFor(S->tensorName());
      if (!Rep->T->format().isAllDense())
        fatalError("replicate requires a dense output");
      Rep->Sym = S->outputSymmetry();
      Rep->Threads = E.Options.Threads;
      return Rep;
    }
    }
    unreachable("unknown statement kind");
  }

  bool allBound(const Cond &C) {
    for (const Conj &D : C.disjuncts())
      for (const CmpAtom &A : D.Atoms)
        if (!BoundVars.count(A.Lhs) || !BoundVars.count(A.Rhs))
          return false;
    return true;
  }

  /// Pushes a condition with unbound references inside loops until its
  /// variables are bound: If(c, Loop(x, B)) => Loop(x, If(c, B)).
  StmtPtr sinkCondition(const Cond &C, const StmtPtr &Body) {
    if (Body->kind() == StmtKind::Loop)
      return Stmt::loop(Body->loopIndex(),
                        Stmt::ifThen(C, Body->body()));
    if (Body->kind() == StmtKind::If)
      return Stmt::ifThen(Body->condition(),
                          Stmt::ifThen(C, Body->body()));
    if (Body->kind() == StmtKind::Block) {
      std::vector<StmtPtr> Guarded;
      for (const StmtPtr &Child : Body->stmts())
        Guarded.push_back(Stmt::ifThen(C, Child));
      return Stmt::block(std::move(Guarded));
    }
    fatalError("condition references indices that are never bound");
  }

  /// Activates parallel execution for \p S if it is the outermost
  /// annotated loop of its nest and the privatization footprint fits
  /// the budget. Returns whether the loop was activated (the body then
  /// compiles with nested parallelism suppressed).
  bool setUpParallel(const StmtPtr &S, PlanLoop &Loop) {
    if (InParallel || E.Options.Threads <= 1 ||
        !S->parallelInfo().IsParallel)
      return false;
    LoopParallelism LP = analyzeLoopParallelism(S);
    if (!LP.Safe)
      return false;
    SchedulePolicy Policy = E.Options.Schedule;
    if (Policy == SchedulePolicy::Auto)
      Policy = LP.TriangleDepth != 0 ? SchedulePolicy::TriangleBalanced
                                     : SchedulePolicy::Static;
    const unsigned TaskCount = Policy == SchedulePolicy::Dynamic
                                   ? E.Options.Threads * 4
                                   : E.Options.Threads;
    size_t PrivElems = 0;
    std::vector<PlanLoop::PrivTensor> PrivT;
    for (const auto &[Name, Op] : LP.TensorMergeOps) {
      Tensor *T = tensorFor(Name);
      PrivT.push_back(PlanLoop::PrivTensor{
          outId(T), T->vals().size(), Op, opInfo(Op).Identity});
      PrivElems += T->vals().size();
    }
    if (PrivElems * TaskCount > E.Options.PrivatizationBudget)
      return false; // too much accumulator memory; try an inner loop
    if (E.Options.MemoryBudgetBytes &&
        PrivElems * TaskCount * sizeof(double) > E.Options.MemoryBudgetBytes)
      return false; // hard resource ceiling; degrade to an inner
                    // disjoint-write loop instead of allocating
    std::vector<PlanLoop::PrivScalar> PrivS;
    for (const auto &[Name, Op] : LP.ScalarMergeOps)
      PrivS.push_back(PlanLoop::PrivScalar{scalarSlot(Name), Op,
                                           opInfo(Op).Identity});
    Loop.Par.Enabled = true;
    Loop.Par.Policy = Policy;
    Loop.Par.TriDepth = LP.TriangleDepth;
    Loop.Par.Threads = E.Options.Threads;
    Loop.Par.Pool = &ThreadPool::global();
    Loop.Par.PrivTensors = std::move(PrivT);
    Loop.Par.PrivScalars = std::move(PrivS);
    return true;
  }

  PlanPtr compileLoop(const StmtPtr &S) {
    const std::string &Var = S->loopIndex();
    auto Loop = std::make_unique<PlanLoop>();
    Loop->Slot = indexSlot(Var);
    auto ExtIt = Extents.find(Var);
    if (ExtIt == Extents.end())
      fatalError("loop index " + Var + " has no known extent");
    Loop->Extent = ExtIt->second;
    BoundVars.insert(Var);
    const bool Activated = setUpParallel(S, *Loop);
    if (Activated)
      InParallel = true;

    // Peel liftable bound atoms off leading single-conjunction Ifs
    // (looking through single-statement blocks).
    StmtPtr Body = S->body();
    while (E.Options.EnableBoundLifting) {
      if (Body->kind() == StmtKind::Block && Body->stmts().size() == 1) {
        Body = Body->stmts()[0];
        continue;
      }
      if (Body->kind() != StmtKind::If ||
          Body->condition().disjuncts().size() != 1)
        break;
      std::vector<CmpAtom> Residual;
      for (const CmpAtom &A : Body->condition().disjuncts()[0].Atoms) {
        CmpAtom Atom = A;
        if (Atom.Rhs == Var && Atom.Lhs != Var) {
          std::swap(Atom.Lhs, Atom.Rhs);
          Atom.Kind = swapCmp(Atom.Kind);
        }
        if (Atom.Lhs == Var && Atom.Rhs != Var && BoundVars.count(Atom.Rhs)) {
          unsigned Other = indexSlot(Atom.Rhs);
          switch (Atom.Kind) {
          case CmpKind::LE:
            Loop->HiTerms.push_back({Other, 0});
            continue;
          case CmpKind::LT:
            Loop->HiTerms.push_back({Other, -1});
            continue;
          case CmpKind::GE:
            Loop->LoTerms.push_back({Other, 0});
            continue;
          case CmpKind::GT:
            Loop->LoTerms.push_back({Other, 1});
            continue;
          case CmpKind::EQ:
            Loop->LoTerms.push_back({Other, 0});
            Loop->HiTerms.push_back({Other, 0});
            continue;
          case CmpKind::NE:
            break; // not liftable
          }
        }
        Residual.push_back(A);
      }
      if (Residual.empty()) {
        Body = Body->body();
      } else {
        Body = Stmt::ifThen(Cond::conj(std::move(Residual)), Body->body());
        break;
      }
    }

    // Register walkers: sparse accesses in the subtree whose next
    // undriven level is this loop's index. Dense and RunLength levels
    // cover every coordinate, so walking them skips nothing and needs
    // no justification. Sparse and Banded levels visit only stored
    // coordinates, which is sound exactly when the access evaluating to
    // its fill annihilates every assignment in the subtree — decided by
    // the algebraic analysis (runtime/Annihilation.h), which propagates
    // fill/annihilator facts per operator position and transitively
    // through scalar defs. Grouped symmetric kernels over two sparse
    // operands still reject the second tensor's mismatched accesses
    // (each statement reads a different access, so no single absence
    // annihilates them all); those fall back to SparseLoad. The legacy
    // membership check runs alongside purely for differential
    // accounting (WalkersRecovered / WalkersRejected) and as the
    // AnnihilationAlgebra=false ablation mode.
    std::vector<unsigned> WalkerIds;
    if (E.Options.EnableSparseWalk) {
      std::vector<ExprPtr> Accesses;
      collectSubtreeAccesses(Body, Accesses);
      std::set<std::string> Seen;
      for (const ExprPtr &A : Accesses) {
        if (!Seen.insert(A->str()).second)
          continue;
        unsigned Id = accessId(A);
        AccessState &St = AccessStates[Id];
        if (!St.SparseFormat)
          continue;
        unsigned D = Driven[Id];
        if (D >= St.T->order() ||
            St.Indices[St.T->modeOfLevel(D)] != Var)
          continue;
        const LevelKind LK = St.T->level(D).Kind;
        if (LK != LevelKind::Dense) {
          const bool Member = accessBacksEveryAssignment(Body, A->str());
          bool Sound;
          if (!E.Options.AnnihilationAlgebra) {
            // Legacy behavior, including its conservatism on the
            // non-skipping RunLength kind.
            Sound = Member;
          } else if (LK == LevelKind::RunLength) {
            Sound = true; // runs tile the extent; nothing is skipped
            if (!Member)
              ++Stats.WalkersRecovered;
          } else {
            Sound = accessAnnihilatesSubtree(Body, A->str(),
                                             St.T->fill());
            if (Sound && !Member)
              ++Stats.WalkersRecovered;
            else if (!Sound && Member)
              ++Stats.WalkersRejected;
          }
          if (!Sound)
            continue; // evaluated by SparseLoad instead
        }
        PlanLoop::WalkerRef W;
        W.AccessId = Id;
        W.Level = D;
        W.Bottom = (D + 1 == St.T->order());
        Loop->Walkers.push_back(W);
        WalkerIds.push_back(Id);
        ++Driven[Id];
        ++Stats.WalkersRegistered;
      }
    }

    Loop->Body = compile(Body);

    // The PlanSpecializer pass: inner loops were specialized by the
    // recursive compile above, so matching proceeds bottom-up and a
    // nest can absorb its already-fused children.
    MKSpecializeOptions SpecOpts;
    SpecOpts.EnableBlocking = E.Options.EnableBlocking;
    SpecOpts.BlockWidth = E.Options.BlockWidth;
    SpecOpts.OutputTensors = &OutTensors;
    bool Specialized = false;
    if (E.Options.EnableMicroKernels) {
      const uint64_t S0 = obs::nowNs();
      Specialized = specializeLoop(*Loop, AccessStates, SpecOpts);
      SpecializeNs += obs::nowNs() - S0;
    }
    if (Specialized) {
      ++Stats.SpecializedLoops;
      if (Loop->Fused->Innermost)
        ++Stats.InnermostFused;
      switch (Loop->Fused->D.K) {
      case MKDriver::Kind::Range:
        ++Stats.FusedRangeDrivers;
        break;
      case MKDriver::Kind::DenseWalk:
        ++Stats.FusedDenseDrivers;
        break;
      case MKDriver::Kind::SparseWalk:
        ++Stats.FusedSparseDrivers;
        break;
      case MKDriver::Kind::RunLengthWalk:
        ++Stats.FusedRunLengthDrivers;
        break;
      case MKDriver::Kind::BandedWalk:
        ++Stats.FusedBandedDrivers;
        break;
      }
      if (Loop->Fused->Blocked) {
        ++Stats.BlockedLoops;
        if (Loop->Fused->Blocked->Mode !=
            MKBlockedEngine::BMode::Stream)
          ++Stats.BlockedAccumLoops;
      }
      const MKDriver &FD = Loop->Fused->D;
      Stats.FusedCoWalkers += FD.Cos.size();
      if (FD.Cos.size() >= 2)
        ++Stats.FusedNWalkerLoops;
      for (const MKCoWalker &Co : FD.Cos) {
        if (Co.Kind == LevelKind::RunLength)
          ++Stats.FusedRunLengthCoWalkers;
        else if (Co.Kind == LevelKind::Banded)
          ++Stats.FusedBandedCoWalkers;
      }
      for (const MKItem &Item : Loop->Fused->Items)
        for (const MKOperand &Op : Item.S.Factors) {
          if (Op.K == MKOperand::Kind::SparseLoad) {
            ++Stats.FusedSparseLoadFactors;
            if (Op.PrebindLevels > 0)
              ++Stats.PrebindSlots;
          } else if (Op.K == MKOperand::Kind::Lut) {
            ++Stats.FusedLutFactors;
          }
        }
    } else {
      ++Stats.GenericLoops;
    }

    assignTraceIdentity(*Loop, Var);

    if (Activated)
      InParallel = false;
    for (unsigned Id : WalkerIds)
      --Driven[Id];
    BoundVars.erase(Var);
    return Loop;
  }

  static const char *driverKindName(MKDriver::Kind K) {
    switch (K) {
    case MKDriver::Kind::Range:
      return "Range";
    case MKDriver::Kind::DenseWalk:
      return "DenseWalk";
    case MKDriver::Kind::SparseWalk:
      return "SparseWalk";
    case MKDriver::Kind::RunLengthWalk:
      return "RunLengthWalk";
    case MKDriver::Kind::BandedWalk:
      return "BandedWalk";
    }
    unreachable("unknown driver kind");
  }

  static const char *levelKindName(LevelKind K) {
    switch (K) {
    case LevelKind::Dense:
      return "DenseWalk";
    case LevelKind::Sparse:
      return "SparseWalk";
    case LevelKind::RunLength:
      return "RunLengthWalk";
    case LevelKind::Banded:
      return "BandedWalk";
    }
    unreachable("unknown level kind");
  }

  /// Stamps \p Loop's observability identity (trace id, interned span
  /// label, engine and driver names) and records the report-side
  /// metadata row. Runs after specialization so the engine is known.
  void assignTraceIdentity(PlanLoop &Loop, const std::string &Var) {
    Loop.TraceId = NextTraceId++;
    const char *Engine =
        Loop.Fused ? (Loop.Fused->Blocked ? "Blocked" : "Fused")
                   : "Interp";
    const char *Driver =
        Loop.Fused ? driverKindName(Loop.Fused->D.K)
        : Loop.Walkers.empty()
            ? "Range"
            : levelKindName(AccessStates[Loop.Walkers[0].AccessId]
                                .T->level(Loop.Walkers[0].Level)
                                .Kind);
    Loop.EngineName = Engine;
    Loop.DriverName = Driver;
    const std::string Label =
        "loop " + Var + " [" + Engine + "/" + Driver + "]";
    Loop.TraceLabel = obs::internName(Label);
    obs::LoopStat Meta;
    Meta.Label = Label;
    Meta.Engine = Engine;
    Meta.Driver = Driver;
    LoopMeta.push_back(std::move(Meta));
  }

  void collectSubtreeAccesses(const StmtPtr &S, std::vector<ExprPtr> &Out) {
    Stmt::walk(S, [&Out](const StmtPtr &Node) {
      if (Node->kind() == StmtKind::Assign) {
        Expr::collectAccesses(Node->rhs(), Out);
      } else if (Node->kind() == StmtKind::DefScalar) {
        Expr::collectAccesses(Node->rhs(), Out);
      }
    });
  }
};

//===----------------------------------------------------------------------===//
// Executor
//===----------------------------------------------------------------------===//

std::string execOptionsSummary(const ExecOptions &O) {
  std::string Out = "threads=" + std::to_string(O.Threads);
  Out += std::string(" schedule=") + schedulePolicyName(O.Schedule);
  Out += std::string(" microkernels=") + (O.EnableMicroKernels ? "on" : "off");
  Out += std::string(" blocking=") + (O.EnableBlocking ? "on" : "off");
  Out += " blockwidth=" + std::to_string(O.BlockWidth);
  Out += std::string(" walk=") + (O.EnableSparseWalk ? "on" : "off");
  Out += std::string(" lift=") + (O.EnableBoundLifting ? "on" : "off");
  Out += std::string(" algebra=") + (O.AnnihilationAlgebra ? "on" : "off");
  Out += " privbudget=" + std::to_string(O.PrivatizationBudget);
  Out += std::string(" validate=") +
         (O.ValidateInputs == ValidationLevel::None      ? "none"
          : O.ValidateInputs == ValidationLevel::Shallow ? "shallow"
                                                         : "deep");
  if (O.DeadlineMs > 0)
    Out += " deadline_ms=" + std::to_string(O.DeadlineMs);
  if (O.Cancel)
    Out += " cancel=on";
  if (O.MemoryBudgetBytes)
    Out += " membudget=" + std::to_string(O.MemoryBudgetBytes);
  Out += std::string(" tracing=") + (O.Tracing ? "on" : "off");
  // Appended only when off so default-option strings (and everything
  // keyed on them) are unchanged.
  if (!O.GlobalCounterFlush)
    Out += " globalflush=off";
  // The resolved engine preference list. Resolution (not the raw
  // request) is rendered so equivalent requests — e.g. the legacy
  // boolean shims and their explicit Engines spelling — summarize (and
  // therefore plan-cache-key) identically.
  Out += " engines=" +
         enginesSummary(resolveEngines(O.Engines, O.EnableMicroKernels,
                                       O.EnableBlocking)
                            .Order);
  return Out;
}

Executor::Executor(Kernel KIn, ExecOptions OptionsIn)
    : K(std::move(KIn)), Options(OptionsIn) {}

Executor::~Executor() = default;
Executor::Executor(Executor &&) = default;

Executor &Executor::bind(const std::string &Name, Tensor *T) {
  assert(T && "binding null tensor");
  Bound[Name] = T;
  return *this;
}

Tensor *Executor::lookup(const std::string &Name) const {
  auto It = Bound.find(Name);
  return It == Bound.end() ? nullptr : It->second;
}

void Executor::prepare() {
  if (Status S = tryPrepare(); !S.ok())
    fatalError(S.str());
}

Status Executor::sanitizeOptions() {
  Clamps.clear();
  if (Options.DeadlineMs < 0)
    return Status::error(ErrCode::InvalidOptions,
                         "DeadlineMs must be non-negative (got " +
                             std::to_string(Options.DeadlineMs) + ")");
  if (Options.Threads == 0) {
    Clamps.push_back("threads 0 -> 1 (zero lanes cannot run)");
    Options.Threads = 1;
  }
  unsigned HW = std::thread::hardware_concurrency();
  if (HW == 0)
    HW = 1;
  const unsigned MaxThreads = HW * 4;
  if (Options.Threads > MaxThreads) {
    Clamps.push_back("threads " + std::to_string(Options.Threads) + " -> " +
                     std::to_string(MaxThreads) +
                     " (4x hardware concurrency)");
    Options.Threads = MaxThreads;
  }
  // Widths 1..8 are all supported (the fuzz matrix exercises them);
  // only out-of-engine values clamp. 0 stays: it means "pick at
  // specialization".
  if (Options.BlockWidth > 8) {
    Clamps.push_back("blockwidth " + std::to_string(Options.BlockWidth) +
                     " -> 8 (engine maximum)");
    Options.BlockWidth = 8;
  }
  // Engine resolution: the one place requests (typed list or deprecated
  // booleans) become the normalized preference order everything else
  // reads. The resolved list is written back into Options.Engines and
  // the booleans are re-derived from membership, so deprecated-shim
  // callers and typed callers are indistinguishable downstream.
  EngineResolution R = resolveEngines(Options.Engines,
                                      Options.EnableMicroKernels,
                                      Options.EnableBlocking);
  for (const std::string &Note : R.Notes)
    Clamps.push_back(Note);
  Engines = R.Order;
  Options.Engines = R.Order;
  Options.EnableMicroKernels = R.UseFused;
  Options.EnableBlocking = R.UseBlocked;
  return Status::success();
}

Status Executor::validateKernel() const {
  // Mirrors every malformed-input abort of plan compilation as a
  // Status-returning pre-pass ("validate then trust"): once this pass
  // accepts, the compiler's remaining fatalError sites are genuine
  // internal invariants.
  std::map<std::string, int64_t> Extents;
  Status Err = Status::success();
  auto Fail = [&Err](ErrCode C, const std::string &M) {
    if (Err.ok())
      Err = Status::error(C, M);
  };

  auto CheckAccesses = [&](const StmtPtr &Root) {
    Stmt::walk(Root, [&](const StmtPtr &Node) {
      std::vector<ExprPtr> Accesses;
      if (Node->kind() == StmtKind::Assign) {
        Expr::collectAccesses(Node->rhs(), Accesses);
        if (Node->lhs()->kind() == ExprKind::Access)
          Accesses.push_back(Node->lhs());
      } else if (Node->kind() == StmtKind::DefScalar) {
        Expr::collectAccesses(Node->rhs(), Accesses);
      } else if (Node->kind() == StmtKind::Replicate) {
        Tensor *T = lookup(Node->tensorName());
        if (!T)
          Fail(ErrCode::UnboundTensor, "kernel '" + K.Name +
                                           "' replicates unbound tensor " +
                                           Node->tensorName());
        else if (!T->format().isAllDense())
          Fail(ErrCode::InvalidArgument,
               "replicate requires a dense output (tensor " +
                   Node->tensorName() + " is " + T->format().str() + ")");
      }
      for (const ExprPtr &A : Accesses) {
        Tensor *T = lookup(A->tensorName());
        if (!T) {
          Fail(ErrCode::UnboundTensor, "kernel '" + K.Name +
                                           "' uses unbound tensor " +
                                           A->tensorName());
          continue;
        }
        if (A->indices().empty())
          continue; // 0-d access: one-element dense tensor
        if (T->order() != A->indices().size()) {
          Fail(ErrCode::InvalidArgument,
               "access " + A->str() + " arity mismatch (tensor " +
                   A->tensorName() + " has order " +
                   std::to_string(T->order()) + ")");
          continue;
        }
        for (unsigned M = 0; M < A->indices().size(); ++M) {
          const std::string &Idx = A->indices()[M];
          auto [It, New] = Extents.insert({Idx, T->dim(M)});
          if (!New && It->second != T->dim(M))
            Fail(ErrCode::InvalidArgument,
                 "index " + Idx + " has inconsistent extents (" +
                     std::to_string(It->second) + " vs " +
                     std::to_string(T->dim(M)) + " at " + A->str() + ")");
        }
      }
      if (Node->kind() == StmtKind::Assign &&
          Node->lhs()->kind() == ExprKind::Access) {
        Tensor *T = lookup(Node->lhs()->tensorName());
        if (T && !T->format().isAllDense())
          Fail(ErrCode::InvalidArgument,
               "output tensor " + Node->lhs()->tensorName() +
                   " must be dense for writes");
      }
    });
  };
  CheckAccesses(K.Body);
  if (K.Epilogue)
    CheckAccesses(K.Epilogue);
  if (!Err.ok())
    return Err;

  // Scoped checks: loop extents and condition bindability (a condition
  // referencing indices no enclosing or inner loop ever binds cannot
  // be placed anywhere).
  auto AllBoundIn = [](const Cond &C, const std::set<std::string> &B) {
    for (const Conj &D : C.disjuncts())
      for (const CmpAtom &A : D.Atoms)
        if (!B.count(A.Lhs) || !B.count(A.Rhs))
          return false;
    return true;
  };
  std::function<bool(const Cond &, const StmtPtr &, std::set<std::string> &)>
      CondBindable = [&](const Cond &C, const StmtPtr &Body,
                         std::set<std::string> &B) -> bool {
    if (AllBoundIn(C, B))
      return true;
    switch (Body->kind()) {
    case StmtKind::Loop: {
      const bool New = B.insert(Body->loopIndex()).second;
      const bool Ok = CondBindable(C, Body->body(), B);
      if (New)
        B.erase(Body->loopIndex());
      return Ok;
    }
    case StmtKind::If:
      return CondBindable(C, Body->body(), B);
    case StmtKind::Block:
      for (const StmtPtr &Child : Body->stmts())
        if (!CondBindable(C, Child, B))
          return false;
      return true;
    default:
      return false;
    }
  };
  std::function<void(const StmtPtr &, std::set<std::string> &)>
      CheckStructure = [&](const StmtPtr &S, std::set<std::string> &B) {
        switch (S->kind()) {
        case StmtKind::Block:
          for (const StmtPtr &Child : S->stmts())
            CheckStructure(Child, B);
          return;
        case StmtKind::If:
          if (!CondBindable(S->condition(), S->body(), B))
            Fail(ErrCode::InvalidArgument,
                 "condition references indices that are never bound");
          CheckStructure(S->body(), B);
          return;
        case StmtKind::Loop: {
          if (!Extents.count(S->loopIndex()))
            Fail(ErrCode::InvalidArgument, "loop index " + S->loopIndex() +
                                               " has no known extent");
          const bool New = B.insert(S->loopIndex()).second;
          CheckStructure(S->body(), B);
          if (New)
            B.erase(S->loopIndex());
          return;
        }
        default:
          return;
        }
      };
  std::set<std::string> BoundV;
  CheckStructure(K.Body, BoundV);
  if (K.Epilogue)
    CheckStructure(K.Epilogue, BoundV);
  return Err;
}

Status Executor::tryPrepare() {
  if (Prepared)
    return Status::error(ErrCode::InvalidArgument, "prepare called twice");
  if (Status S = sanitizeOptions(); !S.ok())
    return std::move(S).withContext("kernel '" + K.Name + "'");
  // Client tensors are validated before anything dereferences their
  // level arrays — in particular before split/transpose
  // materialization walks them.
  if (Options.ValidateInputs != ValidationLevel::None) {
    const uint64_t V0 = obs::nowNs();
    for (const auto &[Name, T] : Bound)
      if (Status S = T->validate(Options.ValidateInputs); !S.ok())
        return std::move(S)
            .withContext("tensor '" + Name + "'")
            .withContext("kernel '" + K.Name + "'");
    ValidateNs = obs::nowNs() - V0;
  }
  if (Options.Tracing)
    obs::setTracingEnabled(true);
  if (Options.Threads > 1)
    ThreadPool::ensureGlobalThreads(Options.Threads);
  const uint64_t M0 = obs::nowNs();
  UserBound = Bound;
  UserSig.clear();
  for (const auto &[Name, T] : UserBound)
    UserSig[Name] = BindingSig{T->format(), T->dims(), T->fill()};
  if (Status S = materializeAliases(Bound, Owned); !S.ok())
    return S;
  const uint64_t M1 = obs::nowNs();
  // With aliases materialized every access is resolvable; reject
  // malformed kernels here so plan compilation can trust its input.
  if (Status S = validateKernel(); !S.ok())
    return S;
  PlanCompiler(*this).compileAll();
  const uint64_t M2 = obs::nowNs();
  MaterializeNs = M1 - M0;
  PlanCompileNs = M2 - M1;
  if (obs::tracingEnabled()) {
    obs::emitSpan("materialize", "phase", M0, MaterializeNs);
    obs::emitSpan("plan-compile", "phase", M1, PlanCompileNs);
  }
  // Native engine: emit the compiled body as a C-ABI TU, build it
  // through the on-disk .so cache, and stage the resulting plan node in
  // front of the interpreted tree. Every failure (no host compiler,
  // unsupported plan shape, compile/dlopen error) lands in NativeStatus
  // and falls back to the engines behind it — prepare still succeeds.
  NativePlan.reset();
  NativeStatus = Status::success();
  NativeCompileNs = 0;
  if (!Engines.empty() && Engines.front() == Engine::Native) {
    auto Emitted = emitNativeTU(*BodyPlan, *Ctx, K.Name);
    if (!Emitted) {
      NativeStatus = Emitted.takeStatus().withContext("kernel '" + K.Name +
                                                      "' native engine");
    } else {
      NativeSource = Emitted->Source;
      auto L = jit::NativeKernelCache::instance().load(
          Emitted->Source, Options.NativeCacheDir);
      if (!L) {
        NativeStatus = L.takeStatus().withContext("kernel '" + K.Name +
                                                  "' native engine");
      } else {
        auto NP = std::make_unique<jit::PlanNative>();
        NP->Fn = L->Fn;
        NP->Handle = L->Handle;
        NP->Args = std::move(Emitted->Args);
        NativePlan = std::move(NP);
        NativeCompileNs = L->CompileNs;
        if (obs::tracingEnabled() && NativeCompileNs)
          obs::emitSpan("native-compile", "phase", M2, NativeCompileNs);
      }
    }
  }
  Report.Options = execOptionsSummary(Options);
  Prepared = true;
  return Status::success();
}

Status Executor::materializeAliases(std::map<std::string, Tensor *> &B,
                                    std::vector<std::unique_ptr<Tensor>> &O) {
  auto Find = [&B](const std::string &Name) -> Tensor * {
    auto It = B.find(Name);
    return It == B.end() ? nullptr : It->second;
  };
  // Materialize diagonal splits (both halves from one pass per source).
  std::map<std::string, std::pair<Tensor *, Tensor *>> SplitCache;
  for (const SplitRequest &Req : K.Splits) {
    auto It = SplitCache.find(Req.Source);
    if (It == SplitCache.end()) {
      Tensor *Src = Find(Req.Source);
      if (!Src)
        return Status::error(ErrCode::UnboundTensor,
                             "split source " + Req.Source + " not bound")
            .withContext("kernel '" + K.Name + "'");
      auto DeclIt = K.Decls.find(Req.Source);
      if (DeclIt == K.Decls.end())
        return Status::error(ErrCode::InvalidArgument,
                             "split source " + Req.Source + " not declared")
            .withContext("kernel '" + K.Name + "'");
      auto [OffDiag, Diag] = Src->splitDiagonal(DeclIt->second.Symmetry);
      O.push_back(std::make_unique<Tensor>(std::move(OffDiag)));
      Tensor *OffPtr = O.back().get();
      O.push_back(std::make_unique<Tensor>(std::move(Diag)));
      Tensor *DiagPtr = O.back().get();
      It = SplitCache.insert({Req.Source, {OffPtr, DiagPtr}}).first;
    }
    B[Req.Alias] = Req.DiagonalPart ? It->second.second
                                    : It->second.first;
  }
  // Materialize transposes (possibly of split aliases).
  for (const TransposeRequest &Req : K.Transposes) {
    Tensor *Src = Find(Req.Source);
    if (!Src)
      return Status::error(ErrCode::UnboundTensor,
                           "transpose source " + Req.Source + " not bound")
          .withContext("kernel '" + K.Name + "'");
    TensorFormat Format = TensorFormat::dense(Src->order());
    auto DeclIt = K.Decls.find(Req.Alias);
    if (DeclIt != K.Decls.end())
      Format = DeclIt->second.Format;
    O.push_back(std::make_unique<Tensor>(
        Src->transposed(Req.ModePerm, Format)));
    B[Req.Alias] = O.back().get();
  }
  return Status::success();
}

Status Executor::rebind(const std::map<std::string, Tensor *> &NewBindings,
                        const ExecOptions &RunOptions) {
  if (!Prepared)
    return Status::error(ErrCode::InvalidArgument,
                         "rebind called before prepare");
  if (RunOptions.DeadlineMs < 0)
    return Status::error(ErrCode::InvalidOptions,
                         "deadline must be non-negative, got " +
                             std::to_string(RunOptions.DeadlineMs))
        .withContext("kernel '" + K.Name + "'");
  // Engine agreement: the run's resolved preference order must match
  // what this executor was prepared with — the compiled plans (and the
  // staged native body) embody that choice. A plan-cache keyed on the
  // resolved list guarantees this; direct callers get a typed error
  // rather than a silently different engine.
  {
    EngineResolution RunR = resolveEngines(RunOptions.Engines,
                                           RunOptions.EnableMicroKernels,
                                           RunOptions.EnableBlocking);
    if (RunR.Order != Engines)
      return Status::error(ErrCode::InvalidArgument,
                           "rebind engine mismatch: prepared with " +
                               enginesSummary(Engines) + ", run requests " +
                               enginesSummary(RunR.Order))
          .withContext("kernel '" + K.Name + "'");
  }
  // Structural identity: every originally-bound name needs a
  // replacement whose format, dims, and fill match the tensor the plan
  // was compiled against (the compiled walkers, strides, and fused
  // engines are only valid for that structure). The check runs against
  // the signature captured at prepare, never the previous tensors —
  // those only had to outlive their own run and may be gone.
  for (const auto &[Name, Sig] : UserSig) {
    auto It = NewBindings.find(Name);
    if (It == NewBindings.end() || !It->second)
      return Status::error(ErrCode::UnboundTensor,
                           "rebind missing tensor " + Name)
          .withContext("kernel '" + K.Name + "'");
    const Tensor *New = It->second;
    const bool FillEq = New->fill() == Sig.Fill ||
                        (New->fill() != New->fill() &&
                         Sig.Fill != Sig.Fill); // both NaN
    if (!(New->format() == Sig.Format) || New->dims() != Sig.Dims ||
        !FillEq)
      return Status::error(ErrCode::InvalidArgument,
                           "rebind structure mismatch for tensor " + Name)
          .withContext("kernel '" + K.Name + "'");
  }
  // New client tensors are validated before anything dereferences
  // their level arrays, exactly like tryPrepare.
  uint64_t NewValidateNs = 0;
  if (RunOptions.ValidateInputs != ValidationLevel::None) {
    const uint64_t V0 = obs::nowNs();
    for (const auto &[Name, Old] : UserBound) {
      Tensor *New = NewBindings.at(Name);
      if (Status S = New->validate(RunOptions.ValidateInputs); !S.ok())
        return std::move(S)
            .withContext("tensor '" + Name + "'")
            .withContext("kernel '" + K.Name + "'");
    }
    NewValidateNs = obs::nowNs() - V0;
  }
  const uint64_t R0 = obs::nowNs();
  // Rebuild the name map and materialized aliases over the new
  // tensors; the kernel's split/transpose requests are deterministic,
  // so the alias name set matches the compiled one exactly.
  std::map<std::string, Tensor *> NewUserBound;
  for (const auto &[Name, Old] : UserBound)
    NewUserBound[Name] = NewBindings.at(Name);
  std::map<std::string, Tensor *> NewBound = NewUserBound;
  std::vector<std::unique_ptr<Tensor>> NewOwned;
  if (Status S = materializeAliases(NewBound, NewOwned); !S.ok())
    return S;
  // Old-pointer -> new-pointer map over every name the plan may have
  // baked (user bindings and materialized aliases alike).
  std::map<Tensor *, Tensor *> Map;
  for (const auto &[Name, Old] : Bound) {
    auto NewIt = NewBound.find(Name);
    if (NewIt == NewBound.end())
      return Status::error(ErrCode::Internal,
                           "alias " + Name + " vanished on rebind")
          .withContext("kernel '" + K.Name + "'");
    auto [MIt, Inserted] = Map.insert({Old, NewIt->second});
    if (!Inserted && MIt->second != NewIt->second)
      return Status::error(ErrCode::InvalidArgument,
                           "ambiguous rebind: one tensor was bound under "
                           "multiple names with different replacements")
          .withContext("kernel '" + K.Name + "'");
  }
  // Point of no return: adopt the per-request knobs (every structural
  // option is key-identical by the caller's contract) and repatch.
  Options.Cancel = RunOptions.Cancel;
  Options.DeadlineMs = RunOptions.DeadlineMs;
  Options.Tracing = RunOptions.Tracing;
  Options.ValidateInputs = RunOptions.ValidateInputs;
  Options.GlobalCounterFlush = RunOptions.GlobalCounterFlush;
  if (Options.Tracing)
    obs::setTracingEnabled(true);
  Bound = std::move(NewBound);
  UserBound = std::move(NewUserBound);
  for (AccessState &A : Ctx->Accesses) {
    auto It = Map.find(A.T);
    if (It != Map.end())
      A.T = It->second;
    // Reset run-scoped cursor state exactly as plan compilation
    // initialized it.
    std::fill(A.Pos.begin(), A.Pos.end(), int64_t(0));
    std::fill(A.LocParent.begin(), A.LocParent.end(), int64_t(-1));
    std::fill(A.LocIdx.begin(), A.LocIdx.end(), int64_t(0));
  }
  for (size_t I = 0; I < Outputs.size(); ++I) {
    auto It = Map.find(Outputs[I]);
    if (It != Map.end())
      Outputs[I] = It->second;
    Ctx->OutPtr[I] = Outputs[I]->vals().data();
  }
  RebindCtx RC{Map, Ctx->Accesses};
  BodyPlan->rebind(RC);
  if (EpiloguePlan)
    EpiloguePlan->rebind(RC);
  if (NativePlan)
    NativePlan->rebind(RC);
  Owned = std::move(NewOwned);
  // The repatch is this "run"'s materialization work; plan compilation
  // and specialization were skipped outright — which is the whole
  // point, and what the phase timers pin in reports of rebound runs.
  // The staged native body is reused as-is (it marshals operand
  // pointers per call), so a rebound run compiled nothing either.
  ValidateNs = NewValidateNs;
  MaterializeNs = obs::nowNs() - R0;
  PlanCompileNs = 0;
  SpecializeNs = 0;
  NativeCompileNs = 0;
  Report.Options = execOptionsSummary(Options);
  return Status::success();
}

namespace {

/// Flushes a context's accumulated counter deltas into the global
/// atomics (once per run; see Plan.h for the discipline).
void flushCounters(detail::ExecCtx &C) {
  if (C.Local.SparseReads)
    counters().SparseReads += C.Local.SparseReads;
  if (C.Local.Reductions)
    counters().Reductions += C.Local.Reductions;
  if (C.Local.ScalarOps)
    counters().ScalarOps += C.Local.ScalarOps;
  if (C.Local.OutputWrites)
    counters().OutputWrites += C.Local.OutputWrites;
  if (C.Local.FusedBlockedPanels)
    counters().FusedBlockedPanels += C.Local.FusedBlockedPanels;
  if (C.Local.FusedBlockedStores)
    counters().FusedBlockedStores += C.Local.FusedBlockedStores;
  C.Local = CounterSnapshot{};
}

/// One participant's activity windowed between two snapshots (counters
/// are monotone since process start; subtracting is exact).
obs::WorkerStat windowWorker(const std::string &Name,
                             const ThreadPool::ActivityCounters &After,
                             const ThreadPool::ActivityCounters &Before) {
  obs::WorkerStat W;
  W.Name = Name;
  W.WaitNs = After.WaitNs - Before.WaitNs;
  W.ExecNs = After.ExecNs - Before.ExecNs;
  W.Tasks = After.Tasks - Before.Tasks;
  W.TaskNs = obs::LogHistogram::windowDelta(After.TaskNs, Before.TaskNs);
  return W;
}

} // namespace

void Executor::run() {
  runBody();
  runEpilogue();
}

Status Executor::tryRun(obs::ExecReport *Out) {
  if (Status S = tryRunBody(Out); !S.ok())
    return S;
  return tryRunEpilogue(Out);
}

void Executor::runBody() {
  if (Status S = tryRunBody(); !S.ok())
    fatalError(S.str());
}

Status Executor::tryRunBody(obs::ExecReport *Out) {
  if (!Prepared)
    return Status::error(ErrCode::InvalidArgument,
                         "runBody called before prepare");
  Ctx->CountersOn = countersEnabled();
  Ctx->TraceOn = obs::tracingEnabled();
  std::fill(Ctx->LoopCalls.begin(), Ctx->LoopCalls.end(), uint64_t(0));
  std::fill(Ctx->LoopNs.begin(), Ctx->LoopNs.end(), uint64_t(0));
  Ctx->MergeNs = 0;
  Report.AbortReason.clear();

  // Controlled runs (cancel token or deadline) arm the shared stop
  // state and snapshot the outputs so an abort can discard partial
  // writes; uncontrolled runs skip all of it — Ctx->Ctrl stays null
  // and every checkpoint is a single pointer test.
  const bool Controlled = Options.Cancel != nullptr || Options.DeadlineMs > 0;
  std::vector<std::vector<double>> Snapshots;
  if (Controlled) {
    if (!Ctl)
      Ctl = std::make_unique<RunControl>();
    Ctl->arm(Options.Cancel,
             Options.DeadlineMs > 0
                 ? obs::nowNs() +
                       static_cast<uint64_t>(Options.DeadlineMs) * 1000000
                 : 0);
    // Trip immediately for a pre-cancelled token or an already-expired
    // deadline: the engines' periodic polls (every 64th checkpoint)
    // could otherwise let a short kernel run to completion first.
    Ctl->check();
    Ctx->Ctrl = Ctl.get();
    Ctx->PollTick = 0;
    Snapshots.reserve(Outputs.size());
    for (Tensor *T : Outputs)
      Snapshots.push_back(T->vals());
  } else {
    Ctx->Ctrl = nullptr;
  }

  // The pool's activity counters run since process start; window them
  // to this run. Only the pooled configuration touches the pool at all.
  // The caller windows exactly its own slot (registered here, before
  // the Before snapshot, so the slot exists in both snapshots) —
  // concurrent submitters never pollute each other's wait/execute
  // split.
  const bool Pooled = Options.Threads > 1;
  ThreadPool::ActivitySnapshot Before;
  unsigned CallerId = 0;
  if (Pooled) {
    CallerId = ThreadPool::global().currentCallerId();
    Before = ThreadPool::global().activitySnapshot();
  }

  const uint64_t T0 = obs::nowNs();
  // Engine dispatch: a staged native plan supersedes the interpreted
  // tree (it was compiled from it and honors the same contracts); when
  // the native build fell back, the interpreted tree runs as always.
  (NativePlan ? NativePlan.get() : BodyPlan.get())->exec(*Ctx);
  const uint64_t T1 = obs::nowNs();
  if (Ctx->TraceOn)
    obs::emitSpan("execute", "phase", T0, T1 - T0);

  // Build the report before flushCounters zeroes the context's local
  // deltas: the report carries exactly this run's counters even with
  // concurrent executors flushing into the shared globals.
  Report.Phases.clear();
  Report.Phases.push_back({"materialize", MaterializeNs});
  Report.Phases.push_back({"plan-compile", PlanCompileNs});
  Report.Phases.push_back({"specialize", SpecializeNs});
  // Reported whenever the native engine was requested: the compiler
  // wall time of this prepare, pinned at 0 on a warm .so-cache start
  // and on every rebound run (the warm-start acceptance signal).
  if (!Engines.empty() && Engines.front() == Engine::Native)
    Report.Phases.push_back({"native-compile", NativeCompileNs});
  if (Options.ValidateInputs != ValidationLevel::None)
    Report.Phases.push_back({"validate", ValidateNs});
  Report.Phases.push_back({"execute", T1 - T0});
  Report.Phases.push_back({"merge", Ctx->MergeNs});
  Report.Loops = LoopMeta;
  for (size_t L = 0; L < Report.Loops.size() && L < Ctx->LoopCalls.size();
       ++L) {
    Report.Loops[L].Calls = Ctx->LoopCalls[L];
    Report.Loops[L].Ns = Ctx->LoopNs[L];
  }
  Report.Workers.clear();
  if (Pooled) {
    const ThreadPool::ActivitySnapshot After =
        ThreadPool::global().activitySnapshot();
    for (size_t W = 0; W < After.Workers.size(); ++W) {
      const ThreadPool::ActivityCounters B =
          W < Before.Workers.size() ? Before.Workers[W]
                                    : ThreadPool::ActivityCounters{};
      Report.Workers.push_back(windowWorker(
          "worker-" + std::to_string(W), After.Workers[W], B));
    }
    const ThreadPool::ActivityCounters CallerB =
        CallerId < Before.Callers.size() ? Before.Callers[CallerId]
                                         : ThreadPool::ActivityCounters{};
    const ThreadPool::ActivityCounters CallerA =
        CallerId < After.Callers.size() ? After.Callers[CallerId]
                                        : ThreadPool::ActivityCounters{};
    Report.Workers.push_back(windowWorker("caller", CallerA, CallerB));
  }
  Report.Options = execOptionsSummary(Options);

  if (Controlled && Ctl->stopped()) {
    // Aborted: restore the outputs in place (Ctx->OutPtr aliases the
    // buffers, so copy element-wise rather than swapping storage) and
    // discard this run's counter deltas — an aborted run contributes
    // nothing, locally or to the process-wide counters.
    for (size_t I = 0; I < Outputs.size(); ++I) {
      std::vector<double> &V = Outputs[I]->vals();
      std::copy(Snapshots[I].begin(), Snapshots[I].end(), V.begin());
    }
    Ctx->Local = CounterSnapshot{};
    Report.Counters = CounterSnapshot{};
    const ErrCode Reason = Ctl->reason();
    Report.AbortReason = errCodeName(Reason);
    Ctx->Ctrl = nullptr;
    if (Out)
      *Out = Report;
    return Status::error(
               Reason,
               Reason == ErrCode::DeadlineExceeded
                   ? "deadline of " + std::to_string(Options.DeadlineMs) +
                         " ms expired"
                   : "run cancelled")
        .withContext("kernel '" + K.Name + "'");
  }

  Report.Counters = Ctx->Local;
  // The run's exact deltas live in the report either way; flushing
  // them into the process-global atomics is opt-out for concurrent
  // executors (interleaved flushes make the globals attribute deltas
  // to no one in particular).
  if (Options.GlobalCounterFlush)
    flushCounters(*Ctx);
  else
    Ctx->Local = CounterSnapshot{};
  Ctx->Ctrl = nullptr;
  if (Out)
    *Out = Report;
  return Status::success();
}

Status Executor::tryRunEpilogue(obs::ExecReport *Out) {
  if (!Prepared)
    return Status::error(ErrCode::InvalidArgument,
                         "runEpilogue called before prepare");
  runEpilogue();
  if (Out)
    *Out = Report;
  return Status::success();
}

void Executor::runEpilogue() {
  assert(Prepared && "prepare() must run before run()");
  if (!EpiloguePlan)
    return;
  Ctx->CountersOn = countersEnabled();
  Ctx->TraceOn = obs::tracingEnabled();
  const uint64_t T0 = obs::nowNs();
  EpiloguePlan->exec(*Ctx);
  const uint64_t T1 = obs::nowNs();
  if (Ctx->TraceOn)
    obs::emitSpan("epilogue", "phase", T0, T1 - T0);
  // Extend the body's report: append the epilogue phase, refresh the
  // loop aggregates (epilogue loops kept accumulating into the same
  // vectors), update merge time, and fold in the epilogue's counters.
  Report.Phases.push_back({"epilogue", T1 - T0});
  for (obs::PhaseStat &P : Report.Phases)
    if (P.Name == "merge")
      P.Ns = Ctx->MergeNs;
  for (size_t L = 0; L < Report.Loops.size() && L < Ctx->LoopCalls.size();
       ++L) {
    Report.Loops[L].Calls = Ctx->LoopCalls[L];
    Report.Loops[L].Ns = Ctx->LoopNs[L];
  }
  obs::addCounters(Report.Counters, Ctx->Local);
  if (Options.GlobalCounterFlush)
    flushCounters(*Ctx);
  else
    Ctx->Local = CounterSnapshot{};
}

} // namespace systec
