//===- runtime/Executor.cpp -----------------------------------*- C++ -*-===//

#include "runtime/Executor.h"

#include "parallel/ParallelAnalysis.h"
#include "parallel/ThreadPool.h"
#include "support/Counters.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace systec {
namespace detail {

/// Runtime state of one distinct tensor access: the fibertree position
/// at which each level was entered. Pos[L] is the parent position for
/// level L; Pos[order] is the value position.
struct AccessState {
  Tensor *T = nullptr;
  std::vector<std::string> Indices;
  std::vector<int64_t> Pos;
  bool SparseFormat = false;
};

struct ExecCtx {
  std::vector<int64_t> IndexVal;
  std::vector<double> ScalarVal;
  std::vector<AccessState> Accesses;
  /// Per output id, the value-array base assignments write through.
  /// The main context points at the bound tensors; task contexts of a
  /// parallel loop repoint privatized outputs at per-task accumulators.
  std::vector<double *> OutPtr;
};

/// A compiled comparison between two index slots.
struct CAtom {
  CmpKind Kind;
  unsigned A, B;

  bool eval(const ExecCtx &C) const {
    return evalCmp(Kind, C.IndexVal[A], C.IndexVal[B]);
  }
};

/// A compiled DNF condition.
struct CCond {
  std::vector<std::vector<CAtom>> Disjuncts;

  bool eval(const ExecCtx &C) const {
    for (const std::vector<CAtom> &D : Disjuncts) {
      bool Ok = true;
      for (const CAtom &A : D)
        if (!A.eval(C)) {
          Ok = false;
          break;
        }
      if (Ok)
        return true;
    }
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Expression VM
//===----------------------------------------------------------------------===//

enum class VKind { Lit, Scalar, Walked, DenseLoad, SparseLoad, Op, Lut };

struct VInstr {
  VKind Kind;
  double Lit = 0;
  unsigned Id = 0; // scalar slot or access id
  OpKind Op = OpKind::Add;
  unsigned NArgs = 0;
  Tensor *T = nullptr;
  std::vector<std::pair<unsigned, int64_t>> SlotStride; // DenseLoad
  std::vector<unsigned> CoordSlots;                     // SparseLoad
  std::vector<CAtom> LutBits;
  std::vector<double> LutTable;
};

struct VProgram {
  std::vector<VInstr> Code;
  mutable std::vector<int64_t> Scratch;

  double eval(ExecCtx &C) const {
    double St[32];
    int Top = -1;
    for (const VInstr &I : Code) {
      switch (I.Kind) {
      case VKind::Lit:
        St[++Top] = I.Lit;
        break;
      case VKind::Scalar:
        St[++Top] = C.ScalarVal[I.Id];
        break;
      case VKind::Walked: {
        const AccessState &A = C.Accesses[I.Id];
        St[++Top] = A.T->val(A.Pos[A.T->order()]);
        break;
      }
      case VKind::DenseLoad: {
        int64_t Pos = 0;
        for (const auto &[Slot, Stride] : I.SlotStride)
          Pos += C.IndexVal[Slot] * Stride;
        St[++Top] = I.T->val(Pos);
        break;
      }
      case VKind::SparseLoad: {
        // Reuse a scratch buffer; random access walks the levels.
        Scratch.resize(I.CoordSlots.size());
        for (size_t M = 0; M < Scratch.size(); ++M)
          Scratch[M] = C.IndexVal[I.CoordSlots[M]];
        if (countersEnabled())
          ++counters().SparseReads;
        St[++Top] = I.T->at(Scratch);
        break;
      }
      case VKind::Op: {
        double Acc = St[Top - static_cast<int>(I.NArgs) + 1];
        for (unsigned K = 1; K < I.NArgs; ++K)
          Acc = evalOp(I.Op, Acc, St[Top - static_cast<int>(I.NArgs) + 1 +
                                     static_cast<int>(K)]);
        Top -= static_cast<int>(I.NArgs);
        St[++Top] = Acc;
        if (countersEnabled())
          counters().ScalarOps += I.NArgs - 1;
        break;
      }
      case VKind::Lut: {
        unsigned Mask = 0;
        for (size_t B = 0; B < I.LutBits.size(); ++B)
          if (I.LutBits[B].eval(C))
            Mask |= 1u << B;
        St[++Top] = I.LutTable[Mask];
        break;
      }
      }
    }
    assert(Top == 0 && "VM stack imbalance");
    return St[0];
  }
};

//===----------------------------------------------------------------------===//
// Plan nodes
//===----------------------------------------------------------------------===//

class PlanNode {
public:
  virtual ~PlanNode() = default;
  virtual void exec(ExecCtx &C) = 0;
};

using PlanPtr = std::unique_ptr<PlanNode>;

class PlanSeq final : public PlanNode {
public:
  std::vector<PlanPtr> Children;
  void exec(ExecCtx &C) override {
    for (PlanPtr &Child : Children)
      Child->exec(C);
  }
};

class PlanIf final : public PlanNode {
public:
  CCond Cond;
  PlanPtr Body;
  void exec(ExecCtx &C) override {
    if (Cond.eval(C))
      Body->exec(C);
  }
};

class PlanDef final : public PlanNode {
public:
  unsigned Slot = 0;
  VProgram Init;
  void exec(ExecCtx &C) override { C.ScalarVal[Slot] = Init.eval(C); }
};

class PlanAssign final : public PlanNode {
public:
  VProgram Rhs;
  std::optional<OpKind> Reduce;
  unsigned Mult = 1;
  bool ScalarTarget = false;
  unsigned ScalarSlot = 0;
  unsigned OutId = 0; ///< index into ExecCtx::OutPtr (tensor targets)
  std::vector<std::pair<unsigned, int64_t>> SlotStride;

  void exec(ExecCtx &C) override {
    double V = Rhs.eval(C);
    if (Mult > 1) {
      if (Reduce && opInfo(*Reduce).Idempotent) {
        // Duplicate updates collapse under idempotent reductions.
      } else if (!Reduce || *Reduce == OpKind::Add) {
        V *= Mult;
      } else {
        // Rare general case: apply the reduction Mult times below.
      }
    }
    unsigned Times = 1;
    if (Mult > 1 && Reduce && !opInfo(*Reduce).Idempotent &&
        *Reduce != OpKind::Add)
      Times = Mult;
    for (unsigned Rep = 0; Rep < Times; ++Rep) {
      if (ScalarTarget) {
        double &Dst = C.ScalarVal[ScalarSlot];
        Dst = Reduce ? evalOp(*Reduce, Dst, V) : V;
      } else {
        int64_t Pos = 0;
        for (const auto &[Slot, Stride] : SlotStride)
          Pos += C.IndexVal[Slot] * Stride;
        double &Dst = C.OutPtr[OutId][Pos];
        Dst = Reduce ? evalOp(*Reduce, Dst, V) : V;
      }
      if (countersEnabled()) {
        ++counters().Reductions;
        if (!ScalarTarget)
          ++counters().OutputWrites;
      }
    }
  }
};

class PlanReplicate final : public PlanNode {
public:
  Tensor *T = nullptr;
  Partition Sym;

  void exec(ExecCtx &C) override {
    uint64_t Copies = replicateSymmetric(*T, Sym);
    if (countersEnabled())
      counters().OutputWrites += Copies;
  }
};

class PlanLoop final : public PlanNode {
public:
  unsigned Slot = 0;
  int64_t Extent = 0;

  struct WalkerRef {
    unsigned AccessId;
    unsigned Level;
    bool Bottom;
  };
  std::vector<WalkerRef> Walkers;
  // Bounds: lo = max(0, IndexVal[slot]+delta...), hi analogous
  // (inclusive).
  std::vector<std::pair<unsigned, int64_t>> LoTerms, HiTerms;
  PlanPtr Body;

  /// One privatized output: tasks accumulate into per-task buffers that
  /// merge into the shared array, in task order, after the loop.
  struct PrivTensor {
    unsigned OutId;
    size_t Elems;
    OpKind Op;
    double Identity;
  };
  struct PrivScalar {
    unsigned Slot;
    OpKind Op;
    double Identity;
  };

  /// Parallel execution state (populated by the plan compiler for the
  /// activated loop of each nest).
  struct ParPlan {
    bool Enabled = false;
    SchedulePolicy Policy = SchedulePolicy::Static;
    int TriDepth = 0;
    unsigned Threads = 1;
    ThreadPool *Pool = nullptr;
    std::vector<PrivTensor> PrivTensors;
    std::vector<PrivScalar> PrivScalars;
    /// Accumulators, reused across runs and kept identity-filled
    /// between them (the merge resets as it reads):
    /// [task * PrivTensors.size() + p].
    std::vector<std::vector<double>> Buffers;
    /// Task contexts, reused so inner parallel loops (one dispatch per
    /// outer iteration) do not reallocate per execution.
    std::vector<ExecCtx> TaskCtx;
  };
  ParPlan Par;

  void exec(ExecCtx &C) override {
    int64_t Lo = 0, Hi = Extent - 1;
    for (const auto &[S, D] : LoTerms)
      Lo = std::max(Lo, C.IndexVal[S] + D);
    for (const auto &[S, D] : HiTerms)
      Hi = std::min(Hi, C.IndexVal[S] + D);
    if (Lo > Hi)
      return;
    if (Par.Enabled)
      execParallel(C, Lo, Hi);
    else
      execRange(C, Lo, Hi);
  }

  std::vector<ChunkRange> makeChunks(int64_t Lo, int64_t Hi) const {
    switch (Par.Policy) {
    case SchedulePolicy::Static:
      return staticBlocks(Lo, Hi, Par.Threads);
    case SchedulePolicy::Dynamic:
      return dynamicChunks(Lo, Hi, Par.Threads);
    case SchedulePolicy::TriangleBalanced:
      return triangleBalanced(Lo, Hi, Par.Threads, Par.TriDepth);
    case SchedulePolicy::Auto:
      break; // resolved at plan compilation
    }
    return staticBlocks(Lo, Hi, Par.Threads);
  }

  void execParallel(ExecCtx &C, int64_t Lo, int64_t Hi) {
    std::vector<ChunkRange> Chunks = makeChunks(Lo, Hi);
    if (Chunks.size() <= 1) {
      execRange(C, Lo, Hi);
      return;
    }
    const unsigned NT = static_cast<unsigned>(Chunks.size());
    const size_t NPriv = Par.PrivTensors.size();

    // Task contexts start from the parent state; privatized scalars
    // reset to the merge identity so partial results compose exactly.
    // Contexts and buffers persist across executions (vector copy
    // assignment reuses capacity; buffers stay identity-filled).
    if (Par.TaskCtx.size() < NT)
      Par.TaskCtx.resize(NT);
    for (unsigned T = 0; T < NT; ++T)
      Par.TaskCtx[T] = C;
    for (unsigned T = 0; T < NT; ++T)
      for (const PrivScalar &S : Par.PrivScalars)
        Par.TaskCtx[T].ScalarVal[S.Slot] = S.Identity;
    if (Par.Buffers.size() < size_t(NT) * NPriv)
      Par.Buffers.resize(size_t(NT) * NPriv);

    Par.Pool->parallelFor(NT, [&](unsigned T) {
      ExecCtx &TC = Par.TaskCtx[T];
      // First-use accumulator fill runs inside the task so the
      // identity fill of large buffers is itself parallel.
      for (size_t P = 0; P < NPriv; ++P) {
        const PrivTensor &PT = Par.PrivTensors[P];
        std::vector<double> &B = Par.Buffers[size_t(T) * NPriv + P];
        if (B.size() != PT.Elems)
          B.assign(PT.Elems, PT.Identity);
        TC.OutPtr[PT.OutId] = B.data();
      }
      execRange(TC, Chunks[T].Lo, Chunks[T].Hi);
    });

    // Merge in task order: the decomposition (not the thread schedule)
    // determines the floating-point result. Accumulators reset to the
    // identity in the same sweep, restoring the between-runs invariant
    // without a separate fill pass.
    for (const PrivScalar &S : Par.PrivScalars)
      for (unsigned T = 0; T < NT; ++T)
        C.ScalarVal[S.Slot] = evalOp(S.Op, C.ScalarVal[S.Slot],
                                     Par.TaskCtx[T].ScalarVal[S.Slot]);
    for (size_t P = 0; P < NPriv; ++P) {
      const PrivTensor &PT = Par.PrivTensors[P];
      double *Dst = C.OutPtr[PT.OutId];
      std::vector<ChunkRange> Slabs =
          staticBlocks(0, static_cast<int64_t>(PT.Elems) - 1,
                       Par.Threads);
      Par.Pool->parallelFor(
          static_cast<unsigned>(Slabs.size()), [&](unsigned SI) {
            for (int64_t I = Slabs[SI].Lo; I <= Slabs[SI].Hi; ++I) {
              double Acc = Dst[I];
              for (unsigned T = 0; T < NT; ++T) {
                double *Buf = Par.Buffers[size_t(T) * NPriv + P].data();
                Acc = evalOp(PT.Op, Acc, Buf[I]);
                Buf[I] = PT.Identity;
              }
              Dst[I] = Acc;
            }
          });
    }
  }

  void execRange(ExecCtx &C, int64_t Lo, int64_t Hi) {
    if (Walkers.empty()) {
      for (int64_t V = Lo; V <= Hi; ++V) {
        C.IndexVal[Slot] = V;
        Body->exec(C);
      }
      return;
    }

    // The first walker drives iteration; the others must agree on each
    // candidate coordinate (intersection).
    const WalkerRef &W = Walkers[0];
    AccessState &A = C.Accesses[W.AccessId];
    const Level &Lev = A.T->level(W.Level);
    const int64_t Parent = A.Pos[W.Level];

    auto Step = [&](int64_t Coord, int64_t Child) {
      A.Pos[W.Level + 1] = Child;
      if (countersEnabled() && W.Bottom && A.SparseFormat)
        ++counters().SparseReads;
      for (size_t K = 1; K < Walkers.size(); ++K) {
        const WalkerRef &O = Walkers[K];
        AccessState &OA = C.Accesses[O.AccessId];
        const int64_t OParent = OA.Pos[O.Level];
        if (OA.T == A.T && O.Level == W.Level && OParent == Parent) {
          OA.Pos[O.Level + 1] = Child;
        } else {
          int64_t OChild = OA.T->locate(O.Level, OParent, Coord);
          if (OChild < 0)
            return; // missing in intersection
          OA.Pos[O.Level + 1] = OChild;
        }
        if (countersEnabled() && O.Bottom && OA.SparseFormat)
          ++counters().SparseReads;
      }
      C.IndexVal[Slot] = Coord;
      Body->exec(C);
    };

    switch (Lev.Kind) {
    case LevelKind::Dense: {
      for (int64_t V = Lo; V <= Hi; ++V)
        Step(V, Parent * Lev.Dim + V);
      return;
    }
    case LevelKind::Sparse: {
      int64_t B = Lev.Ptr[Parent], E = Lev.Ptr[Parent + 1];
      if (Lo > 0)
        B = std::lower_bound(Lev.Crd.begin() + B, Lev.Crd.begin() + E, Lo) -
            Lev.Crd.begin();
      for (int64_t KPos = B; KPos < E; ++KPos) {
        int64_t Coord = Lev.Crd[KPos];
        if (Coord > Hi)
          break;
        Step(Coord, KPos);
      }
      return;
    }
    case LevelKind::RunLength: {
      int64_t Start = 0;
      for (int64_t KPos = Lev.Ptr[Parent]; KPos < Lev.Ptr[Parent + 1];
           ++KPos) {
        int64_t End = Lev.RunEnd[KPos];
        for (int64_t V = std::max(Start, Lo); V < End; ++V) {
          if (V > Hi)
            return;
          Step(V, KPos);
        }
        Start = End;
        if (Start > Hi)
          return;
      }
      return;
    }
    case LevelKind::Banded: {
      int64_t B = std::max(Lo, Lev.Lo[Parent]);
      int64_t E = std::min(Hi, Lev.Hi[Parent] - 1);
      for (int64_t V = B; V <= E; ++V)
        Step(V, Lev.Off[Parent] + (V - Lev.Lo[Parent]));
      return;
    }
    }
    unreachable("unknown level kind");
  }
};

} // namespace detail

using namespace detail;

//===----------------------------------------------------------------------===//
// Plan compilation
//===----------------------------------------------------------------------===//

/// Compiles a Kernel's statement tree into plan nodes against bound
/// tensors. Friend of Executor.
class PlanCompiler {
public:
  PlanCompiler(Executor &E) : E(E) {}

  void compileAll() {
    collectExtents(E.K.Body);
    if (E.K.Epilogue)
      collectExtents(E.K.Epilogue);
    E.Ctx = std::make_unique<ExecCtx>();
    E.BodyPlan = compile(E.K.Body);
    if (E.K.Epilogue)
      E.EpiloguePlan = compile(E.K.Epilogue);
    E.Ctx->IndexVal.assign(IndexSlots.size(), 0);
    E.Ctx->ScalarVal.assign(ScalarSlots.size(), 0.0);
    E.Ctx->Accesses = AccessStates;
    E.Ctx->OutPtr.resize(OutTensors.size());
    for (size_t Id = 0; Id < OutTensors.size(); ++Id)
      E.Ctx->OutPtr[Id] = OutTensors[Id]->vals().data();
  }

private:
  Executor &E;
  std::map<std::string, unsigned> IndexSlots;
  std::map<std::string, unsigned> ScalarSlots;
  std::map<std::string, int64_t> Extents;
  std::map<std::string, unsigned> AccessIds; // key: printed access
  std::vector<AccessState> AccessStates;
  std::vector<unsigned> Driven; // per access id, along current DFS path
  std::set<std::string> BoundVars;
  std::map<Tensor *, unsigned> OutIds; // written tensors -> OutPtr slot
  std::vector<Tensor *> OutTensors;
  bool InParallel = false; // compiling inside an activated parallel loop

  unsigned indexSlot(const std::string &Name) {
    auto [It, New] = IndexSlots.insert({Name, IndexSlots.size()});
    (void)New;
    return It->second;
  }

  unsigned scalarSlot(const std::string &Name) {
    auto [It, New] = ScalarSlots.insert({Name, ScalarSlots.size()});
    (void)New;
    return It->second;
  }

  unsigned outId(Tensor *T) {
    auto [It, New] = OutIds.insert({T, OutIds.size()});
    if (New)
      OutTensors.push_back(T);
    return It->second;
  }

  Tensor *tensorFor(const std::string &Name) {
    Tensor *T = E.lookup(Name);
    if (!T)
      fatalError("kernel '" + E.K.Name + "' uses unbound tensor " + Name);
    return T;
  }

  unsigned accessId(const ExprPtr &Access) {
    std::string Key = Access->str();
    auto It = AccessIds.find(Key);
    if (It != AccessIds.end())
      return It->second;
    unsigned Id = static_cast<unsigned>(AccessStates.size());
    AccessIds[Key] = Id;
    AccessState S;
    S.T = tensorFor(Access->tensorName());
    S.Indices = Access->indices();
    S.Pos.assign(S.T->order() + 1, 0);
    S.SparseFormat = !S.T->format().isAllDense();
    AccessStates.push_back(std::move(S));
    Driven.push_back(0);
    return Id;
  }

  void collectExtents(const StmtPtr &S) {
    Stmt::walk(S, [this](const StmtPtr &Node) {
      std::vector<ExprPtr> Accesses;
      if (Node->kind() == StmtKind::Assign) {
        Expr::collectAccesses(Node->rhs(), Accesses);
        if (Node->lhs()->kind() == ExprKind::Access)
          Accesses.push_back(Node->lhs());
      } else if (Node->kind() == StmtKind::DefScalar) {
        Expr::collectAccesses(Node->rhs(), Accesses);
      }
      for (const ExprPtr &A : Accesses) {
        Tensor *T = tensorFor(A->tensorName());
        // A 0-d access ("y[]") binds to a one-element dense tensor.
        if (A->indices().empty())
          continue;
        if (T->order() != A->indices().size())
          fatalError("access " + A->str() + " arity mismatch");
        for (unsigned M = 0; M < A->indices().size(); ++M) {
          const std::string &Idx = A->indices()[M];
          auto [It, New] = Extents.insert({Idx, T->dim(M)});
          if (!New && It->second != T->dim(M))
            fatalError("index " + Idx + " has inconsistent extents");
        }
      }
    });
  }

  CAtom compileAtom(const CmpAtom &A) {
    return CAtom{A.Kind, indexSlot(A.Lhs), indexSlot(A.Rhs)};
  }

  CCond compileCond(const Cond &C) {
    CCond Out;
    for (const Conj &D : C.disjuncts()) {
      std::vector<CAtom> Atoms;
      for (const CmpAtom &A : D.Atoms)
        Atoms.push_back(compileAtom(A));
      Out.Disjuncts.push_back(std::move(Atoms));
    }
    return Out;
  }

  VProgram compileExpr(const ExprPtr &Ex) {
    VProgram P;
    emitExpr(Ex, P);
    return P;
  }

  void emitExpr(const ExprPtr &Ex, VProgram &P) {
    switch (Ex->kind()) {
    case ExprKind::Literal: {
      VInstr I;
      I.Kind = VKind::Lit;
      I.Lit = Ex->literalValue();
      P.Code.push_back(std::move(I));
      return;
    }
    case ExprKind::Scalar: {
      VInstr I;
      I.Kind = VKind::Scalar;
      I.Id = scalarSlot(Ex->scalarName());
      P.Code.push_back(std::move(I));
      return;
    }
    case ExprKind::Access: {
      unsigned Id = accessId(Ex);
      const AccessState &S = AccessStates[Id];
      VInstr I;
      if (Driven[Id] == S.T->order() && S.T->order() > 0) {
        I.Kind = VKind::Walked;
        I.Id = Id;
      } else if (S.T->format().isAllDense()) {
        I.Kind = VKind::DenseLoad;
        I.T = S.T;
        I.SlotStride = denseStrides(S.T, Ex->indices());
      } else {
        I.Kind = VKind::SparseLoad;
        I.T = S.T;
        for (const std::string &Idx : Ex->indices())
          I.CoordSlots.push_back(indexSlot(Idx));
      }
      P.Code.push_back(std::move(I));
      return;
    }
    case ExprKind::Call: {
      for (const ExprPtr &A : Ex->args())
        emitExpr(A, P);
      VInstr I;
      I.Kind = VKind::Op;
      I.Op = Ex->op();
      I.NArgs = static_cast<unsigned>(Ex->args().size());
      P.Code.push_back(std::move(I));
      return;
    }
    case ExprKind::Lut: {
      VInstr I;
      I.Kind = VKind::Lut;
      for (const CmpAtom &B : Ex->lutBits())
        I.LutBits.push_back(compileAtom(B));
      I.LutTable = Ex->lutTable();
      P.Code.push_back(std::move(I));
      return;
    }
    }
    unreachable("unknown expression kind");
  }

  std::vector<std::pair<unsigned, int64_t>>
  denseStrides(Tensor *T, const std::vector<std::string> &Indices) {
    // Column-major: mode 0 is contiguous. A 0-d access maps to
    // position 0 of a one-element tensor.
    std::vector<std::pair<unsigned, int64_t>> Out;
    if (Indices.empty())
      return Out;
    assert(Indices.size() == T->order() && "access arity mismatch");
    int64_t Stride = 1;
    for (unsigned M = 0; M < Indices.size(); ++M) {
      Out.push_back({indexSlot(Indices[M]), Stride});
      Stride *= T->dim(M);
    }
    return Out;
  }

  PlanPtr compile(const StmtPtr &S) {
    switch (S->kind()) {
    case StmtKind::Block: {
      auto Seq = std::make_unique<PlanSeq>();
      for (const StmtPtr &Child : S->stmts())
        Seq->Children.push_back(compile(Child));
      return Seq;
    }
    case StmtKind::If: {
      // Conditions referencing unbound indices sink into the body's
      // loops (safety net; the compiler pipeline normally places them
      // correctly).
      if (!allBound(S->condition()))
        return compile(sinkCondition(S->condition(), S->body()));
      auto If = std::make_unique<PlanIf>();
      If->Cond = compileCond(S->condition());
      If->Body = compile(S->body());
      return If;
    }
    case StmtKind::Loop:
      return compileLoop(S);
    case StmtKind::DefScalar: {
      auto Def = std::make_unique<PlanDef>();
      Def->Init = compileExpr(S->rhs());
      Def->Slot = scalarSlot(S->scalarName());
      return Def;
    }
    case StmtKind::Assign: {
      auto As = std::make_unique<PlanAssign>();
      As->Rhs = compileExpr(S->rhs());
      As->Reduce = S->reduceOp();
      As->Mult = S->multiplicity();
      // Fold additive multiplicities into the program (y += k*e) and
      // collapse idempotent duplicates, so the hot path has no
      // multiplicity logic.
      if (As->Mult > 1 && As->Reduce) {
        if (opInfo(*As->Reduce).Idempotent) {
          As->Mult = 1;
        } else if (*As->Reduce == OpKind::Add) {
          VInstr Lit;
          Lit.Kind = VKind::Lit;
          Lit.Lit = As->Mult;
          As->Rhs.Code.push_back(std::move(Lit));
          VInstr Mul;
          Mul.Kind = VKind::Op;
          Mul.Op = OpKind::Mul;
          Mul.NArgs = 2;
          As->Rhs.Code.push_back(std::move(Mul));
          As->Mult = 1;
        }
      }
      const ExprPtr &Lhs = S->lhs();
      if (Lhs->kind() == ExprKind::Scalar) {
        As->ScalarTarget = true;
        As->ScalarSlot = scalarSlot(Lhs->scalarName());
      } else {
        Tensor *T = tensorFor(Lhs->tensorName());
        if (!T->format().isAllDense())
          fatalError("output tensor " + Lhs->tensorName() +
                     " must be dense for writes");
        As->OutId = outId(T);
        As->SlotStride = denseStrides(T, Lhs->indices());
      }
      return As;
    }
    case StmtKind::Replicate: {
      auto Rep = std::make_unique<PlanReplicate>();
      Rep->T = tensorFor(S->tensorName());
      if (!Rep->T->format().isAllDense())
        fatalError("replicate requires a dense output");
      Rep->Sym = S->outputSymmetry();
      return Rep;
    }
    }
    unreachable("unknown statement kind");
  }

  bool allBound(const Cond &C) {
    for (const Conj &D : C.disjuncts())
      for (const CmpAtom &A : D.Atoms)
        if (!BoundVars.count(A.Lhs) || !BoundVars.count(A.Rhs))
          return false;
    return true;
  }

  /// Pushes a condition with unbound references inside loops until its
  /// variables are bound: If(c, Loop(x, B)) => Loop(x, If(c, B)).
  StmtPtr sinkCondition(const Cond &C, const StmtPtr &Body) {
    if (Body->kind() == StmtKind::Loop)
      return Stmt::loop(Body->loopIndex(),
                        Stmt::ifThen(C, Body->body()));
    if (Body->kind() == StmtKind::If)
      return Stmt::ifThen(Body->condition(),
                          Stmt::ifThen(C, Body->body()));
    if (Body->kind() == StmtKind::Block) {
      std::vector<StmtPtr> Guarded;
      for (const StmtPtr &Child : Body->stmts())
        Guarded.push_back(Stmt::ifThen(C, Child));
      return Stmt::block(std::move(Guarded));
    }
    fatalError("condition references indices that are never bound");
  }

  /// Activates parallel execution for \p S if it is the outermost
  /// annotated loop of its nest and the privatization footprint fits
  /// the budget. Returns whether the loop was activated (the body then
  /// compiles with nested parallelism suppressed).
  bool setUpParallel(const StmtPtr &S, PlanLoop &Loop) {
    if (InParallel || E.Options.Threads <= 1 ||
        !S->parallelInfo().IsParallel)
      return false;
    LoopParallelism LP = analyzeLoopParallelism(S);
    if (!LP.Safe)
      return false;
    SchedulePolicy Policy = E.Options.Schedule;
    if (Policy == SchedulePolicy::Auto)
      Policy = LP.TriangleDepth != 0 ? SchedulePolicy::TriangleBalanced
                                     : SchedulePolicy::Static;
    const unsigned TaskCount = Policy == SchedulePolicy::Dynamic
                                   ? E.Options.Threads * 4
                                   : E.Options.Threads;
    size_t PrivElems = 0;
    std::vector<PlanLoop::PrivTensor> PrivT;
    for (const auto &[Name, Op] : LP.TensorMergeOps) {
      Tensor *T = tensorFor(Name);
      PrivT.push_back(PlanLoop::PrivTensor{
          outId(T), T->vals().size(), Op, opInfo(Op).Identity});
      PrivElems += T->vals().size();
    }
    if (PrivElems * TaskCount > E.Options.PrivatizationBudget)
      return false; // too much accumulator memory; try an inner loop
    std::vector<PlanLoop::PrivScalar> PrivS;
    for (const auto &[Name, Op] : LP.ScalarMergeOps)
      PrivS.push_back(PlanLoop::PrivScalar{scalarSlot(Name), Op,
                                           opInfo(Op).Identity});
    Loop.Par.Enabled = true;
    Loop.Par.Policy = Policy;
    Loop.Par.TriDepth = LP.TriangleDepth;
    Loop.Par.Threads = E.Options.Threads;
    Loop.Par.Pool = &ThreadPool::global();
    Loop.Par.PrivTensors = std::move(PrivT);
    Loop.Par.PrivScalars = std::move(PrivS);
    return true;
  }

  PlanPtr compileLoop(const StmtPtr &S) {
    const std::string &Var = S->loopIndex();
    auto Loop = std::make_unique<PlanLoop>();
    Loop->Slot = indexSlot(Var);
    auto ExtIt = Extents.find(Var);
    if (ExtIt == Extents.end())
      fatalError("loop index " + Var + " has no known extent");
    Loop->Extent = ExtIt->second;
    BoundVars.insert(Var);
    const bool Activated = setUpParallel(S, *Loop);
    if (Activated)
      InParallel = true;

    // Peel liftable bound atoms off leading single-conjunction Ifs
    // (looking through single-statement blocks).
    StmtPtr Body = S->body();
    while (E.Options.EnableBoundLifting) {
      if (Body->kind() == StmtKind::Block && Body->stmts().size() == 1) {
        Body = Body->stmts()[0];
        continue;
      }
      if (Body->kind() != StmtKind::If ||
          Body->condition().disjuncts().size() != 1)
        break;
      std::vector<CmpAtom> Residual;
      for (const CmpAtom &A : Body->condition().disjuncts()[0].Atoms) {
        CmpAtom Atom = A;
        if (Atom.Rhs == Var && Atom.Lhs != Var) {
          std::swap(Atom.Lhs, Atom.Rhs);
          Atom.Kind = swapCmp(Atom.Kind);
        }
        if (Atom.Lhs == Var && Atom.Rhs != Var && BoundVars.count(Atom.Rhs)) {
          unsigned Other = indexSlot(Atom.Rhs);
          switch (Atom.Kind) {
          case CmpKind::LE:
            Loop->HiTerms.push_back({Other, 0});
            continue;
          case CmpKind::LT:
            Loop->HiTerms.push_back({Other, -1});
            continue;
          case CmpKind::GE:
            Loop->LoTerms.push_back({Other, 0});
            continue;
          case CmpKind::GT:
            Loop->LoTerms.push_back({Other, 1});
            continue;
          case CmpKind::EQ:
            Loop->LoTerms.push_back({Other, 0});
            Loop->HiTerms.push_back({Other, 0});
            continue;
          case CmpKind::NE:
            break; // not liftable
          }
        }
        Residual.push_back(A);
      }
      if (Residual.empty()) {
        Body = Body->body();
      } else {
        Body = Stmt::ifThen(Cond::conj(std::move(Residual)), Body->body());
        break;
      }
    }

    // Register walkers: sparse accesses in the subtree whose next
    // undriven level is this loop's index.
    std::vector<unsigned> WalkerIds;
    if (E.Options.EnableSparseWalk) {
      std::vector<ExprPtr> Accesses;
      collectSubtreeAccesses(Body, Accesses);
      std::set<std::string> Seen;
      for (const ExprPtr &A : Accesses) {
        if (!Seen.insert(A->str()).second)
          continue;
        unsigned Id = accessId(A);
        AccessState &St = AccessStates[Id];
        if (!St.SparseFormat)
          continue;
        unsigned D = Driven[Id];
        if (D < St.T->order() &&
            St.Indices[St.T->modeOfLevel(D)] == Var) {
          PlanLoop::WalkerRef W;
          W.AccessId = Id;
          W.Level = D;
          W.Bottom = (D + 1 == St.T->order());
          Loop->Walkers.push_back(W);
          WalkerIds.push_back(Id);
          ++Driven[Id];
        }
      }
    }

    Loop->Body = compile(Body);

    if (Activated)
      InParallel = false;
    for (unsigned Id : WalkerIds)
      --Driven[Id];
    BoundVars.erase(Var);
    return Loop;
  }

  void collectSubtreeAccesses(const StmtPtr &S, std::vector<ExprPtr> &Out) {
    Stmt::walk(S, [&Out](const StmtPtr &Node) {
      if (Node->kind() == StmtKind::Assign) {
        Expr::collectAccesses(Node->rhs(), Out);
      } else if (Node->kind() == StmtKind::DefScalar) {
        Expr::collectAccesses(Node->rhs(), Out);
      }
    });
  }
};

//===----------------------------------------------------------------------===//
// Executor
//===----------------------------------------------------------------------===//

Executor::Executor(Kernel KIn, ExecOptions OptionsIn)
    : K(std::move(KIn)), Options(OptionsIn) {}

Executor::~Executor() = default;
Executor::Executor(Executor &&) = default;

Executor &Executor::bind(const std::string &Name, Tensor *T) {
  assert(T && "binding null tensor");
  Bound[Name] = T;
  return *this;
}

Tensor *Executor::lookup(const std::string &Name) const {
  auto It = Bound.find(Name);
  return It == Bound.end() ? nullptr : It->second;
}

void Executor::prepare() {
  assert(!Prepared && "prepare called twice");
  if (Options.Threads > 1)
    ThreadPool::ensureGlobalThreads(Options.Threads);
  // Materialize diagonal splits (both halves from one pass per source).
  std::map<std::string, std::pair<Tensor *, Tensor *>> SplitCache;
  for (const SplitRequest &Req : K.Splits) {
    auto It = SplitCache.find(Req.Source);
    if (It == SplitCache.end()) {
      Tensor *Src = lookup(Req.Source);
      if (!Src)
        fatalError("split source " + Req.Source + " not bound");
      auto DeclIt = K.Decls.find(Req.Source);
      if (DeclIt == K.Decls.end())
        fatalError("split source " + Req.Source + " not declared");
      auto [OffDiag, Diag] = Src->splitDiagonal(DeclIt->second.Symmetry);
      Owned.push_back(std::make_unique<Tensor>(std::move(OffDiag)));
      Tensor *OffPtr = Owned.back().get();
      Owned.push_back(std::make_unique<Tensor>(std::move(Diag)));
      Tensor *DiagPtr = Owned.back().get();
      It = SplitCache.insert({Req.Source, {OffPtr, DiagPtr}}).first;
    }
    Bound[Req.Alias] = Req.DiagonalPart ? It->second.second
                                        : It->second.first;
  }
  // Materialize transposes (possibly of split aliases).
  for (const TransposeRequest &Req : K.Transposes) {
    Tensor *Src = lookup(Req.Source);
    if (!Src)
      fatalError("transpose source " + Req.Source + " not bound");
    TensorFormat Format = TensorFormat::dense(Src->order());
    auto DeclIt = K.Decls.find(Req.Alias);
    if (DeclIt != K.Decls.end())
      Format = DeclIt->second.Format;
    Owned.push_back(std::make_unique<Tensor>(
        Src->transposed(Req.ModePerm, Format)));
    Bound[Req.Alias] = Owned.back().get();
  }
  PlanCompiler(*this).compileAll();
  Prepared = true;
}

void Executor::run() {
  runBody();
  runEpilogue();
}

void Executor::runBody() {
  assert(Prepared && "prepare() must run before run()");
  BodyPlan->exec(*Ctx);
}

void Executor::runEpilogue() {
  assert(Prepared && "prepare() must run before run()");
  if (EpiloguePlan)
    EpiloguePlan->exec(*Ctx);
}

} // namespace systec
