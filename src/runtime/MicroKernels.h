//===- runtime/MicroKernels.h - Fused plan micro-kernels ------*- C++ -*-===//
///
/// \file
/// Runtime specialization layer for the plan interpreter. The
/// PlanSpecializer pass (specializeLoop) pattern-matches compiled loop
/// subtrees — innermost `PlanLoop` + `PlanAssign` bodies and the
/// dense-over-sparse nests produced by the ssymv/ssyrk/syprd/ttm/mttkrp
/// lowerings — into fused loop bodies that read `Level::Ptr/Crd` and
/// `Tensor::vals()` directly instead of dispatching a virtual plan node
/// and a switch-driven expression VM per element. Covered shapes:
///
///  - sparse-row dot / axpy (one sparse walker, invariant cofactors),
///  - dense axpy / scale-accumulate with strided output (dense range),
///  - N-way walker intersection: one driver plus any number of
///    co-walkers (up to MKDriver::MaxCoWalkers) of any level kind —
///    sparse co-walkers advance by sorted multi-finger merge with
///    galloping catch-up, RunLength co-walkers by run containment,
///    Banded co-walkers by interval containment, matching the
///    interpreter's per-element locate positionally,
///  - run-aware RunLength and interval-aware Banded driver loops over
///    raw Ptr/RunEnd and Lo/Hi/Off arrays (format-general drivers),
///  - SparseLoad operands inside fused bodies, chaining the stateful
///    per-access locator (Tensor::locateHinted) through the context;
///    row-invariant level prefixes are prebound once per loop execution
///    (per row of a nest, per task range under parallel splits) so the
///    inner loop only resolves the levels that actually vary,
///  - Lut operands (lookup tables over index-equality bits, paper
///    4.2.5): bind-time constants when their bits do not mention the
///    loop variable, per-element contextual evaluation when they do,
///  - scalar reads of slots written in the same loop, observed live per
///    element via the contextual statement path (what the interpreter
///    does), instead of rejecting the loop,
///  - multi-level nest fusion: an outer walker loop whose body is
///    scalar defs, once-per-iteration assigns, and already-fused (or
///    generic) child loops, executed without per-iteration virtual
///    dispatch,
///  - register/cache-blocked output panels (MKBlockedEngine below):
///    fused nests whose variable strides a dense output mode while the
///    inner sparse walk is invariant in it tile that mode into
///    fixed-width column panels — one fiber walk per panel, per-lane
///    bound operands, and register-resident accumulators for the
///    workspace/accumulator forms (ExecOptions::EnableBlocking /
///    BlockWidth).
///
/// Correctness contract: a fused loop is *bit-identical* to the generic
/// interpreted path (same factor fold order, same reduction order, same
/// iteration order) and produces *exactly* the same execution counters
/// (deltas are accumulated per loop execution and flushed once). The
/// generic path remains both the fallback — any unmatched shape, level
/// kind, or operand — and the testing oracle.
///
/// Parallel integration: micro-kernels hang off `PlanLoop::Fused` and
/// are invoked from `PlanLoop::execRange` with a task's `[Lo, Hi]`
/// coordinate sub-range and the task context's (possibly repointed)
/// `OutPtr` bases, so privatization and chunk scheduling work
/// unchanged. All bind-time state — including co-walker fingers and
/// per-row prebound locator positions — lives on the stack: one
/// MicroKernel may run concurrently from many task contexts, and a
/// task range re-derives its prebound state at its own bind, keeping
/// split execution bit-reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_RUNTIME_MICROKERNELS_H
#define SYSTEC_RUNTIME_MICROKERNELS_H

#include "runtime/Plan.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace systec {
namespace detail {

/// Compile-time description of one value source in a fused statement.
struct MKOperand {
  enum class Kind : uint8_t {
    Const,      ///< literal
    Scalar,     ///< ScalarVal slot (prebound unless Live)
    Walked,     ///< fully-driven access: T->val(Pos[order])
    Dense,      ///< Arr[sum(IndexVal[Slot] * Stride) + VStride * v]
    Driver,     ///< driving walker's value at the current position
    CoDriver,   ///< co-walker Slot's value at its matched position
    SparseLoad, ///< random access chaining the stateful locator
                ///< (runtime/Plan.h sparseLoadValue), evaluated per
                ///< element through the execution context
    Lut,        ///< lookup table over index-comparison bits; bind-time
                ///< constant unless the bits mention the loop variable
  };
  Kind K = Kind::Const;
  double Lit = 0;
  unsigned Slot = 0;           ///< Scalar slot, access id
                               ///< (Walked / SparseLoad), or co-walker
                               ///< index (CoDriver)
  /// Scalar only: the slot is written by an item of the same loop, so
  /// the read must observe the current ScalarVal per element (exactly
  /// like the interpreter) instead of prebinding at loop entry. Forces
  /// the owning statement through the contextual engine.
  bool Live = false;
  const double *Arr = nullptr; ///< Dense: cached valsData() of the
                               ///< accessed tensor (stable for a live
                               ///< tensor)
  Tensor *ArrT = nullptr;      ///< Dense: the tensor Arr was cached
                               ///< from, so rebind can re-derive Arr
                               ///< for a replacement tensor
  std::vector<std::pair<unsigned, int64_t>> BaseTerms; ///< Dense
  int64_t VStride = 0;                                 ///< Dense
  /// SparseLoad: per level (top first), the index slot providing that
  /// level's coordinate (mirrors VInstr::LevelSlots).
  std::vector<unsigned> LevelSlots;
  /// SparseLoad (innermost loops only): number of leading levels whose
  /// coordinate slots do not mention the loop variable. These are
  /// row-invariant, so the engine resolves them once at bind time
  /// (per-row prebinding) and per-element evaluation continues from the
  /// cached position — or returns Fill outright when the prefix is
  /// absent. 0 disables prebinding for this operand.
  uint8_t PrebindLevels = 0;
  unsigned PrebindIdx = 0; ///< slot in the engine's prebind array
  double Fill = 0;         ///< the accessed tensor's fill value
  /// Lut: compiled equality bits and table (mirrors VInstr). LutDynamic
  /// is true when some bit mentions the loop variable, forcing
  /// per-element contextual evaluation.
  std::vector<CAtom> LutBits;
  std::vector<double> LutTable;
  bool LutDynamic = false;
};

/// One fused statement: Dst Reduce= fold(Combine, Factors...), folded
/// left-to-right exactly as the expression VM evaluates the original
/// program (the specializer only accepts programs whose op tree is a
/// left-deep chain, so the fold order is preserved bit for bit).
struct MKStmt {
  OpKind Combine = OpKind::Mul;
  std::optional<OpKind> Reduce;
  std::vector<MKOperand> Factors;
  bool ScalarDst = false;
  unsigned ScalarSlot = 0;
  unsigned OutId = 0;
  std::vector<std::pair<unsigned, int64_t>> DstBaseTerms;
  int64_t DstVStride = 0;
};

/// One item of a fused loop body, executed in order per iteration.
struct MKItem {
  enum class Kind : uint8_t {
    Def,  ///< scalar definition (no counter contribution, plain store)
    Stmt, ///< assignment (counts Reductions / OutputWrites / ScalarOps)
    Loop, ///< nested plan loop, dispatched once per iteration
  };
  Kind K = Kind::Stmt;
  /// Residual guard (conjunction of the PlanIf conditions wrapping this
  /// item). Evaluated per iteration; guards that do not mention the
  /// loop variable are hoisted to bind time in the innermost engine.
  bool HasGuard = false;
  CCond Guard;
  bool GuardDynamic = false; ///< guard mentions the loop variable
  MKStmt S;                  ///< Def / Stmt payload
  PlanLoop *Child = nullptr; ///< Loop payload
};

/// One non-driving walker of an intersection loop. The driver emits
/// candidate coordinates in ascending order; each co-walker either
/// aliases the driver's position (same fiber, checked per execution
/// like the interpreter) or resolves the candidate positionally by its
/// level kind: sparse fibers keep a forward finger (multi-finger merge
/// with galloping catch-up), RunLength fibers a forward run finger,
/// Dense and Banded fibers compute positions directly. A missing
/// coordinate in any co-walker skips the body — the same intersection
/// the generic interpreter evaluates with per-element locate calls.
struct MKCoWalker {
  LevelKind Kind = LevelKind::Dense;
  bool SameFiber = false; ///< same tensor and level as the driver
  unsigned AccessId = 0, Level = 0;
  bool Bottom = false;
  bool CountReads = false; ///< bottom level of a sparse-format tensor
  const int64_t *Ptr = nullptr, *Crd = nullptr;  ///< Sparse / RunLength
  const int64_t *RunEnd = nullptr;               ///< RunLength
  const int64_t *BLo = nullptr, *BHi = nullptr,  ///< Banded
      *BOff = nullptr;
  const double *Vals = nullptr;
  int64_t Dim = 0;
};

/// Iteration source of a fused loop.
struct MKDriver {
  enum class Kind : uint8_t {
    Range,         ///< plain coordinate range (no walkers)
    DenseWalk,     ///< walker over a dense level (position = parent*dim+v)
    SparseWalk,    ///< walker over a sparse level (Ptr/Crd arrays)
    RunLengthWalk, ///< run-aware walk over a RunLength level
                   ///< (Ptr/RunEnd arrays; every coordinate visited,
                   ///< position = run index)
    BandedWalk,    ///< interval walk over a Banded level
                   ///< (Lo/Hi/Off arrays)
  };
  Kind K = Kind::Range;
  unsigned AccessId = 0, Level = 0;
  bool Bottom = false;
  bool CountReads = false; ///< bottom level of a sparse-format tensor
  /// Raw level arrays, cached at specialization (stable for a live
  /// tensor; only the parent position is resolved per run). Ptr/Crd
  /// for Sparse, Ptr/RunEnd for RunLength, BLo/BHi/BOff for Banded.
  const int64_t *Ptr = nullptr, *Crd = nullptr;
  const int64_t *RunEnd = nullptr;
  const int64_t *BLo = nullptr, *BHi = nullptr, *BOff = nullptr;
  const double *Vals = nullptr;
  int64_t Dim = 0;

  /// Cap on co-walkers so bind-time finger state fits fixed stack
  /// arrays (the interpreter handles any count; wider intersections
  /// stay interpreted).
  static constexpr unsigned MaxCoWalkers = 4;
  /// Non-driving walkers, resolved per candidate in registration order
  /// exactly like the interpreter's walker list.
  std::vector<MKCoWalker> Cos;
};

/// The register/cache-blocked output engine (paper's ssyrk/syprd/ttm
/// memory-wall shape). Installed on a fused *nest* loop when
///
///  - the nest's driver is a plain Range (no walkers, so every access
///    position — in particular the inner fiber — is invariant across
///    the nest variable `u`),
///  - its body is one unguarded child loop, innermost-fused, driven by
///    a sparse walk with no co-walkers — either alone (the *direct*
///    form: the child assignment writes a tensor destination striding
///    `u` by a nonzero PanelStride, lanes provably disjoint via
///    DstVStride * (fiber dim - 1) < PanelStride) or in the workspace
///    triple the pipeline emits for `C[i,u] += A_row(j) * B[j,u]`
///    (`w = <const>; for j: w R= ...; C[i,u] R= w` — the *workspace*
///    form: the panel's workspace cells live in registers and the
///    final store strides `u`), and
///  - every factor is either per-element in the child driver in a
///    prebindable way (the driver's value, dense loads with a value
///    stride) or invariant in it (resolvable once per panel lane:
///    constants, scalars, walked values, SparseLoads and Luts whose
///    slots avoid the child variable).
///
/// Execution tiles `u` into Width-wide panels anchored at absolute
/// multiples of Width: each panel binds its lanes once (per-lane child
/// bounds from the child's Lo/Hi terms, per-lane operand values /
/// dense bases, per-lane destination pointers), then walks the shared
/// fiber ONCE, updating every active lane per element — instead of
/// re-binding and re-walking the fiber once per `u` and re-resolving
/// row-invariant SparseLoads once per *element* as the unblocked nest
/// does. When the destination does not depend on the child driver
/// (DstVStride == 0, the `C[i,k] += A_row(j) * B[j,k]` accumulator
/// shape), the panel's cells live in registers across the whole walk
/// and are written back once per panel.
///
/// Bit-identity: panel lanes write disjoint cells, and within a cell
/// the contribution order is the fiber order — exactly the
/// interpreter's — so results are identical for every Width and every
/// task-range split, including ragged boundary panels. Counter parity
/// is exact: each executed element-lane charges the same SparseReads /
/// ScalarOps / Reductions / OutputWrites the interpreter charges; the
/// blocked engine's own FusedBlockedPanels / FusedBlockedStores
/// counters are additive telemetry on top.
class MKBlockedEngine {
public:
  /// Per-factor binding class, precomputed at specialization.
  enum class FClass : uint8_t {
    LaneImm,  ///< invariant in the child driver: one value per lane
    Driver,   ///< the child driver's value at the current position
    LaneDense ///< dense load: per-lane base pointer, per-element stride
  };

  unsigned USlot = 0;        ///< nest (panel) variable slot
  PlanLoop *Child = nullptr; ///< child loop: Lo/Hi terms and extent
  unsigned ChildSlot = 0;
  /// Nest driver supplying the panel lanes: Range (lanes are
  /// consecutive coordinates, anchored at absolute Width multiples) or
  /// SparseWalk (lanes are consecutive stored coordinates of the nest
  /// fiber; the lane bind updates the nest access's position so walked
  /// factors read the lane's value, and charges the driver's
  /// SparseReads per lane exactly like the generic nest).
  MKDriver Nest;
  MKDriver D; ///< child driver (SparseWalk, no co-walkers)
  OpKind Combine = OpKind::Mul;
  /// Per-element reduction of the child assignment (into the tensor
  /// cell directly for the direct form, into the workspace scalar for
  /// the workspace form). nullopt overwrites.
  std::optional<OpKind> ElemReduce;
  /// Workspace form only: the final `dst R= w` store's reduction.
  std::optional<OpKind> FinalReduce;
  unsigned OutId = 0;
  int64_t PanelStride = 0; ///< dst stride of `u` (nonzero)
  int64_t DstVStride = 0;  ///< dst stride of the child variable (>= 0)
  /// Destination base terms with `u` removed (invariant across a run).
  std::vector<std::pair<unsigned, int64_t>> DstInvTerms;
  std::vector<MKOperand> Factors; ///< child factor list, order kept
  std::vector<FClass> Classes;    ///< per factor
  unsigned SparseLoadFactors = 0; ///< factors charging a SparseRead

  /// How panel lanes reach memory. Stream: the child destination
  /// depends on the child driver — per-element lane stores. Accum: the
  /// destination cell is invariant across the walk — lanes accumulate
  /// in registers and store once per panel. Workspace: like Accum, but
  /// through the pipeline's explicit workspace scalar (register-seeded
  /// from the def's constant, folded into the tensor cell once per
  /// lane by the final store).
  enum class BMode : uint8_t { Stream, Accum, Workspace };
  BMode Mode = BMode::Stream;
  unsigned WsSlot = 0; ///< workspace scalar slot (Workspace mode)
  double WsInit = 0;   ///< the def's constant (Workspace mode)
  unsigned Width = 4;  ///< panel width, resolved at install

  /// Dedicated panel walks for the two-factor Mul-fold / Add-reduce
  /// cores (ssyrk's driver * per-column-scalar and the SpMM-style
  /// driver * dense-row accumulation); every other accepted shape runs
  /// the generic per-lane fold, still one fiber walk per panel.
  enum class Fast : uint8_t { None, Axpy2, Accum2 };
  Fast FastPath = Fast::None;

  static constexpr unsigned MaxWidth = 8;

  void run(ExecCtx &C, int64_t Lo, int64_t Hi);
};

/// A fused loop. Attached to PlanLoop::Fused by the specializer and run
/// from PlanLoop::execRange in place of the generic walker dispatch.
class MicroKernel {
public:
  unsigned Slot = 0;      ///< loop variable slot
  bool Innermost = false; ///< no Loop items: tight prebound engine
  MKDriver D;
  std::vector<MKItem> Items;
  /// Blocked output engine replacing the generic nest dispatch (null
  /// when the shape does not match or blocking is disabled; the nest
  /// path below then runs — both are bit-identical to the interpreter).
  std::unique_ptr<MKBlockedEngine> Blocked;

  void run(ExecCtx &C, int64_t Lo, int64_t Hi);

  /// Re-derives every raw pointer this kernel baked at specialization
  /// (driver/co-walker level arrays, dense operand bases, blocked-engine
  /// state) from the repatched access table and tensor map in \p R.
  /// Does NOT recurse into Loop items' children: those PlanLoops are
  /// owned by the enclosing Body tree, which rebinds them itself.
  void rebind(const RebindCtx &R);

  /// Caps enforced by the specializer so the innermost engine can bind
  /// into fixed-size stack arrays.
  static constexpr unsigned MaxFactors = 8;
  static constexpr unsigned MaxItems = 12;
  /// Cap on per-row prebound SparseLoad operands per loop (excess
  /// operands simply skip prebinding; values are identical either way).
  static constexpr unsigned MaxPrebinds = 8;

private:
  void runInner(ExecCtx &C, int64_t Lo, int64_t Hi);
  void runNest(ExecCtx &C, int64_t Lo, int64_t Hi);
};

/// Specialization-time knobs threaded from ExecOptions, plus the
/// compile context the blocked-shape matcher needs.
struct MKSpecializeOptions {
  bool EnableBlocking = true;
  unsigned BlockWidth = 0; ///< 0 = auto from the panel mode's extent
  /// Output tensors registered so far; a dense factor reading an output
  /// array declines blocking (reordering element visits across lanes
  /// could otherwise observe the loop's own stores differently).
  const std::vector<Tensor *> *OutputTensors = nullptr;
};

/// The PlanSpecializer pass: attempts to fuse \p L (whose body has
/// already been compiled, with inner loops specialized bottom-up). On
/// success installs L.Fused and returns true; on any unmatched shape
/// leaves L untouched (the interpreted path stays authoritative).
bool specializeLoop(PlanLoop &L, const std::vector<AccessState> &Accesses,
                    const MKSpecializeOptions &Opts = MKSpecializeOptions());

} // namespace detail
} // namespace systec

#endif // SYSTEC_RUNTIME_MICROKERNELS_H
