//===- runtime/MicroKernels.h - Fused plan micro-kernels ------*- C++ -*-===//
///
/// \file
/// Runtime specialization layer for the plan interpreter. The
/// PlanSpecializer pass (specializeLoop) pattern-matches compiled loop
/// subtrees — innermost `PlanLoop` + `PlanAssign` bodies and the
/// dense-over-sparse nests produced by the ssymv/ssyrk/syprd/ttm/mttkrp
/// lowerings — into fused loop bodies that read `Level::Ptr/Crd` and
/// `Tensor::vals()` directly instead of dispatching a virtual plan node
/// and a switch-driven expression VM per element. Covered shapes:
///
///  - sparse-row dot / axpy (one sparse walker, invariant cofactors),
///  - dense axpy / scale-accumulate with strided output (dense range),
///  - N-way walker intersection: one driver plus any number of
///    co-walkers (up to MKDriver::MaxCoWalkers) of any level kind —
///    sparse co-walkers advance by sorted multi-finger merge with
///    galloping catch-up, RunLength co-walkers by run containment,
///    Banded co-walkers by interval containment, matching the
///    interpreter's per-element locate positionally,
///  - run-aware RunLength and interval-aware Banded driver loops over
///    raw Ptr/RunEnd and Lo/Hi/Off arrays (format-general drivers),
///  - SparseLoad operands inside fused bodies, chaining the stateful
///    per-access locator (Tensor::locateHinted) through the context;
///    row-invariant level prefixes are prebound once per loop execution
///    (per row of a nest, per task range under parallel splits) so the
///    inner loop only resolves the levels that actually vary,
///  - Lut operands (lookup tables over index-equality bits, paper
///    4.2.5): bind-time constants when their bits do not mention the
///    loop variable, per-element contextual evaluation when they do,
///  - scalar reads of slots written in the same loop, observed live per
///    element via the contextual statement path (what the interpreter
///    does), instead of rejecting the loop,
///  - multi-level nest fusion: an outer walker loop whose body is
///    scalar defs, once-per-iteration assigns, and already-fused (or
///    generic) child loops, executed without per-iteration virtual
///    dispatch.
///
/// Correctness contract: a fused loop is *bit-identical* to the generic
/// interpreted path (same factor fold order, same reduction order, same
/// iteration order) and produces *exactly* the same execution counters
/// (deltas are accumulated per loop execution and flushed once). The
/// generic path remains both the fallback — any unmatched shape, level
/// kind, or operand — and the testing oracle.
///
/// Parallel integration: micro-kernels hang off `PlanLoop::Fused` and
/// are invoked from `PlanLoop::execRange` with a task's `[Lo, Hi]`
/// coordinate sub-range and the task context's (possibly repointed)
/// `OutPtr` bases, so privatization and chunk scheduling work
/// unchanged. All bind-time state — including co-walker fingers and
/// per-row prebound locator positions — lives on the stack: one
/// MicroKernel may run concurrently from many task contexts, and a
/// task range re-derives its prebound state at its own bind, keeping
/// split execution bit-reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_RUNTIME_MICROKERNELS_H
#define SYSTEC_RUNTIME_MICROKERNELS_H

#include "runtime/Plan.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace systec {
namespace detail {

/// Compile-time description of one value source in a fused statement.
struct MKOperand {
  enum class Kind : uint8_t {
    Const,      ///< literal
    Scalar,     ///< ScalarVal slot (prebound unless Live)
    Walked,     ///< fully-driven access: T->val(Pos[order])
    Dense,      ///< Arr[sum(IndexVal[Slot] * Stride) + VStride * v]
    Driver,     ///< driving walker's value at the current position
    CoDriver,   ///< co-walker Slot's value at its matched position
    SparseLoad, ///< random access chaining the stateful locator
                ///< (runtime/Plan.h sparseLoadValue), evaluated per
                ///< element through the execution context
    Lut,        ///< lookup table over index-comparison bits; bind-time
                ///< constant unless the bits mention the loop variable
  };
  Kind K = Kind::Const;
  double Lit = 0;
  unsigned Slot = 0;           ///< Scalar slot, access id
                               ///< (Walked / SparseLoad), or co-walker
                               ///< index (CoDriver)
  /// Scalar only: the slot is written by an item of the same loop, so
  /// the read must observe the current ScalarVal per element (exactly
  /// like the interpreter) instead of prebinding at loop entry. Forces
  /// the owning statement through the contextual engine.
  bool Live = false;
  const double *Arr = nullptr; ///< Dense: cached valsData() of the
                               ///< accessed tensor (stable for a live
                               ///< tensor)
  std::vector<std::pair<unsigned, int64_t>> BaseTerms; ///< Dense
  int64_t VStride = 0;                                 ///< Dense
  /// SparseLoad: per level (top first), the index slot providing that
  /// level's coordinate (mirrors VInstr::LevelSlots).
  std::vector<unsigned> LevelSlots;
  /// SparseLoad (innermost loops only): number of leading levels whose
  /// coordinate slots do not mention the loop variable. These are
  /// row-invariant, so the engine resolves them once at bind time
  /// (per-row prebinding) and per-element evaluation continues from the
  /// cached position — or returns Fill outright when the prefix is
  /// absent. 0 disables prebinding for this operand.
  uint8_t PrebindLevels = 0;
  unsigned PrebindIdx = 0; ///< slot in the engine's prebind array
  double Fill = 0;         ///< the accessed tensor's fill value
  /// Lut: compiled equality bits and table (mirrors VInstr). LutDynamic
  /// is true when some bit mentions the loop variable, forcing
  /// per-element contextual evaluation.
  std::vector<CAtom> LutBits;
  std::vector<double> LutTable;
  bool LutDynamic = false;
};

/// One fused statement: Dst Reduce= fold(Combine, Factors...), folded
/// left-to-right exactly as the expression VM evaluates the original
/// program (the specializer only accepts programs whose op tree is a
/// left-deep chain, so the fold order is preserved bit for bit).
struct MKStmt {
  OpKind Combine = OpKind::Mul;
  std::optional<OpKind> Reduce;
  std::vector<MKOperand> Factors;
  bool ScalarDst = false;
  unsigned ScalarSlot = 0;
  unsigned OutId = 0;
  std::vector<std::pair<unsigned, int64_t>> DstBaseTerms;
  int64_t DstVStride = 0;
};

/// One item of a fused loop body, executed in order per iteration.
struct MKItem {
  enum class Kind : uint8_t {
    Def,  ///< scalar definition (no counter contribution, plain store)
    Stmt, ///< assignment (counts Reductions / OutputWrites / ScalarOps)
    Loop, ///< nested plan loop, dispatched once per iteration
  };
  Kind K = Kind::Stmt;
  /// Residual guard (conjunction of the PlanIf conditions wrapping this
  /// item). Evaluated per iteration; guards that do not mention the
  /// loop variable are hoisted to bind time in the innermost engine.
  bool HasGuard = false;
  CCond Guard;
  bool GuardDynamic = false; ///< guard mentions the loop variable
  MKStmt S;                  ///< Def / Stmt payload
  PlanLoop *Child = nullptr; ///< Loop payload
};

/// One non-driving walker of an intersection loop. The driver emits
/// candidate coordinates in ascending order; each co-walker either
/// aliases the driver's position (same fiber, checked per execution
/// like the interpreter) or resolves the candidate positionally by its
/// level kind: sparse fibers keep a forward finger (multi-finger merge
/// with galloping catch-up), RunLength fibers a forward run finger,
/// Dense and Banded fibers compute positions directly. A missing
/// coordinate in any co-walker skips the body — the same intersection
/// the generic interpreter evaluates with per-element locate calls.
struct MKCoWalker {
  LevelKind Kind = LevelKind::Dense;
  bool SameFiber = false; ///< same tensor and level as the driver
  unsigned AccessId = 0, Level = 0;
  bool Bottom = false;
  bool CountReads = false; ///< bottom level of a sparse-format tensor
  const int64_t *Ptr = nullptr, *Crd = nullptr;  ///< Sparse / RunLength
  const int64_t *RunEnd = nullptr;               ///< RunLength
  const int64_t *BLo = nullptr, *BHi = nullptr,  ///< Banded
      *BOff = nullptr;
  const double *Vals = nullptr;
  int64_t Dim = 0;
};

/// Iteration source of a fused loop.
struct MKDriver {
  enum class Kind : uint8_t {
    Range,         ///< plain coordinate range (no walkers)
    DenseWalk,     ///< walker over a dense level (position = parent*dim+v)
    SparseWalk,    ///< walker over a sparse level (Ptr/Crd arrays)
    RunLengthWalk, ///< run-aware walk over a RunLength level
                   ///< (Ptr/RunEnd arrays; every coordinate visited,
                   ///< position = run index)
    BandedWalk,    ///< interval walk over a Banded level
                   ///< (Lo/Hi/Off arrays)
  };
  Kind K = Kind::Range;
  unsigned AccessId = 0, Level = 0;
  bool Bottom = false;
  bool CountReads = false; ///< bottom level of a sparse-format tensor
  /// Raw level arrays, cached at specialization (stable for a live
  /// tensor; only the parent position is resolved per run). Ptr/Crd
  /// for Sparse, Ptr/RunEnd for RunLength, BLo/BHi/BOff for Banded.
  const int64_t *Ptr = nullptr, *Crd = nullptr;
  const int64_t *RunEnd = nullptr;
  const int64_t *BLo = nullptr, *BHi = nullptr, *BOff = nullptr;
  const double *Vals = nullptr;
  int64_t Dim = 0;

  /// Cap on co-walkers so bind-time finger state fits fixed stack
  /// arrays (the interpreter handles any count; wider intersections
  /// stay interpreted).
  static constexpr unsigned MaxCoWalkers = 4;
  /// Non-driving walkers, resolved per candidate in registration order
  /// exactly like the interpreter's walker list.
  std::vector<MKCoWalker> Cos;
};

/// A fused loop. Attached to PlanLoop::Fused by the specializer and run
/// from PlanLoop::execRange in place of the generic walker dispatch.
class MicroKernel {
public:
  unsigned Slot = 0;      ///< loop variable slot
  bool Innermost = false; ///< no Loop items: tight prebound engine
  MKDriver D;
  std::vector<MKItem> Items;

  void run(ExecCtx &C, int64_t Lo, int64_t Hi);

  /// Caps enforced by the specializer so the innermost engine can bind
  /// into fixed-size stack arrays.
  static constexpr unsigned MaxFactors = 8;
  static constexpr unsigned MaxItems = 12;
  /// Cap on per-row prebound SparseLoad operands per loop (excess
  /// operands simply skip prebinding; values are identical either way).
  static constexpr unsigned MaxPrebinds = 8;

private:
  void runInner(ExecCtx &C, int64_t Lo, int64_t Hi);
  void runNest(ExecCtx &C, int64_t Lo, int64_t Hi);
};

/// The PlanSpecializer pass: attempts to fuse \p L (whose body has
/// already been compiled, with inner loops specialized bottom-up). On
/// success installs L.Fused and returns true; on any unmatched shape
/// leaves L untouched (the interpreted path stays authoritative).
bool specializeLoop(PlanLoop &L, const std::vector<AccessState> &Accesses);

} // namespace detail
} // namespace systec

#endif // SYSTEC_RUNTIME_MICROKERNELS_H
