//===- runtime/EngineRegistry.h - Execution-engine selection --*- C++ -*-===//
///
/// \file
/// The typed engine-selection surface that replaces the accreting
/// per-engine booleans on ExecOptions. An execution request names an
/// ordered preference list of engines; one resolver normalizes it into
/// the effective engine set the plan compiler and the JIT layer consume,
/// and renders the canonical summary string used by both
/// execOptionsSummary and the PlanCache structural key.
///
/// Engine semantics:
///  - Interp   — the plan interpreter (runtime/Plan.cpp). Always
///               available; the implicit last resort of every list.
///  - Fused    — the micro-kernel specializer (runtime/MicroKernels.h):
///               plan subtrees matching known shapes run as fused loops
///               over raw level arrays. Per-loop: listing it makes
///               loops *eligible*; non-matching loops fall through to
///               Interp.
///  - Blocked  — the panel-blocked variant of the fused engines.
///               Requires Fused (the blocked engines are specializations
///               of the fused ones); a list naming Blocked without
///               Fused gets Fused inserted, with a clamp note.
///  - Native   — the JIT-compiled engine (src/jit/): the whole compiled
///               body emitted as one C++ TU, built into a cached .so,
///               and executed through a C ABI entry point. Whole-body:
///               it is consulted only as the *first* preference (there
///               is no per-loop native escalation); listed anywhere
///               else it is dropped with a clamp note. Falls back to
///               the rest of the list when no host compiler is
///               available, the plan contains an unemittable shape, or
///               compilation fails — each a typed Status recorded on
///               the executor, never an abort.
///
/// Order among Blocked/Fused/Interp is immaterial: membership toggles
/// the per-loop specialization (each loop independently runs the most
/// specialized engine whose shape matches), it does not rank them.
/// The list form exists so Native — the only whole-body engine — has a
/// place to be first, and so future engines have a home that is not
/// another boolean.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_RUNTIME_ENGINEREGISTRY_H
#define SYSTEC_RUNTIME_ENGINEREGISTRY_H

#include <cstdint>
#include <string>
#include <vector>

namespace systec {

/// One execution engine tier (see the file comment for semantics).
enum class Engine : uint8_t {
  Native,  ///< JIT-compiled whole-body .so (src/jit/)
  Blocked, ///< panel-blocked fused micro-kernels
  Fused,   ///< fused micro-kernels over raw level arrays
  Interp,  ///< the plan interpreter (always available)
};

/// Stable lowercase name ("native", "blocked", "fused", "interp").
const char *engineName(Engine E);

/// Parses an engineName back; false when \p Name is unknown.
bool parseEngine(const std::string &Name, Engine &Out);

/// The resolved, normalized engine configuration for one executor.
struct EngineResolution {
  /// Normalized preference order: deduplicated, Interp-terminated,
  /// Blocked implies Fused, Native only in front position.
  std::vector<Engine> Order;
  /// Whole-body native JIT requested (Order.front() == Native).
  bool UseNative = false;
  /// Per-loop specialization switches derived from membership — what
  /// the plan compiler consumes (the legacy boolean surface).
  bool UseBlocked = false;
  bool UseFused = false;
  /// Human-readable normalization notes ("engines: blocked without
  /// fused -> fused inserted", ...), appended to Executor clamp notes.
  std::vector<std::string> Notes;
};

/// Normalizes \p Requested into an EngineResolution. An empty request
/// derives the list from the legacy booleans (the deprecated-shim path:
/// EnableBlocking -> Blocked, EnableMicroKernels -> Fused, always
/// Interp; Native is never derived — it needs a host compiler and must
/// be asked for by name). A non-empty request wins over the booleans.
EngineResolution resolveEngines(const std::vector<Engine> &Requested,
                                bool LegacyMicroKernels,
                                bool LegacyBlocking);

/// Canonical rendering of a normalized order ("native>fused>interp").
/// Deterministic for a given resolution, so it is usable in the
/// PlanCache structural key and execOptionsSummary.
std::string enginesSummary(const std::vector<Engine> &Order);

} // namespace systec

#endif // SYSTEC_RUNTIME_ENGINEREGISTRY_H
