//===- runtime/Plan.h - Compiled execution plan internals -----*- C++ -*-===//
///
/// \file
/// Internal representation of a compiled execution plan: the expression
/// VM, the plan-node tree the interpreter walks, and the execution
/// context shared by the generic interpreter and the fused micro-kernel
/// layer (runtime/MicroKernels.h). Not part of the public API; included
/// only by the runtime's own translation units and tests that need to
/// poke at plan internals.
///
/// Counter discipline: plan nodes never touch the process-wide atomic
/// counters directly. Each ExecCtx carries a plain-integer delta block
/// (`Local`) guarded by a per-run copy of the counters-enabled flag
/// (`CountersOn`); the Executor flushes the deltas into the global
/// atomics once per run, and parallel loops sum task-context deltas in
/// task order. This keeps the hot loops free of atomic traffic while
/// preserving exact counter totals.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_RUNTIME_PLAN_H
#define SYSTEC_RUNTIME_PLAN_H

#include "ir/Cond.h"
#include "ir/Ops.h"
#include "observability/Trace.h"
#include "parallel/Schedule.h"
#include "support/Counters.h"
#include "support/Status.h"
#include "symmetry/Partition.h"
#include "tensor/Tensor.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace systec {

class ThreadPool;

namespace detail {

class MicroKernel;

/// Shared cooperative-stop state of one controlled run (cancellation
/// token and/or absolute deadline). One instance per Executor, armed
/// per run and pointed at by every execution context of that run —
/// tasks observe a trip through the relaxed atomic, which is enough:
/// cancellation is best-effort by design and the Executor discards all
/// partial output on abort.
struct RunControl {
  CancelToken *Token = nullptr;
  uint64_t DeadlineNs = 0; ///< absolute obs::nowNs() deadline; 0 = none
  /// First ErrCode that stopped the run (0 while running). Set once by
  /// compare-exchange so the surfaced reason is the actual trigger.
  std::atomic<uint32_t> StopCode{0};

  void arm(CancelToken *Tok, uint64_t Deadline) {
    Token = Tok;
    DeadlineNs = Deadline;
    StopCode.store(0, std::memory_order_relaxed);
  }
  bool stopped() const {
    return StopCode.load(std::memory_order_relaxed) != 0;
  }
  ErrCode reason() const {
    return static_cast<ErrCode>(StopCode.load(std::memory_order_relaxed));
  }
  void trip(ErrCode C) {
    uint32_t Expected = 0;
    StopCode.compare_exchange_strong(Expected, static_cast<uint32_t>(C),
                                     std::memory_order_relaxed);
  }
  /// Full poll: token, then deadline clock. Returns whether to stop.
  bool check() {
    if (stopped())
      return true;
    if (Token && Token->cancelled()) {
      trip(ErrCode::Cancelled);
      return true;
    }
    if (DeadlineNs && obs::nowNs() > DeadlineNs) {
      trip(ErrCode::DeadlineExceeded);
      return true;
    }
    return false;
  }
};

/// Runtime state of one distinct tensor access: the fibertree position
/// at which each level was entered. Pos[L] is the parent position for
/// level L; Pos[order] is the value position.
struct AccessState {
  Tensor *T = nullptr;
  std::vector<std::string> Indices;
  std::vector<int64_t> Pos;
  bool SparseFormat = false;
  /// Stateful locator for random accesses (VKind::SparseLoad): per
  /// level, the parent position the cursor is parked under and the
  /// index of the last lower_bound result, so lookups in ascending
  /// iteration order gallop forward instead of re-bisecting the whole
  /// fiber. Lives in the (per-task-copied) context, never in the shared
  /// plan, so parallel tasks keep independent cursors.
  std::vector<int64_t> LocParent, LocIdx;
};

struct ExecCtx {
  std::vector<int64_t> IndexVal;
  std::vector<double> ScalarVal;
  std::vector<AccessState> Accesses;
  /// Per output id, the value-array base assignments write through.
  /// The main context points at the bound tensors; task contexts of a
  /// parallel loop repoint privatized outputs at per-task accumulators.
  std::vector<double *> OutPtr;
  /// Snapshot of countersEnabled() taken once per run (hoists the
  /// atomic flag load out of every inner loop).
  bool CountersOn = true;
  /// Counter deltas accumulated by this context; flushed into the
  /// global atomics once per run (or summed into the parent context
  /// after a parallel loop).
  CounterSnapshot Local;
  /// Snapshot of obs::tracingEnabled() taken once per run, exactly
  /// like CountersOn: plan-loop instrumentation branches on this plain
  /// bool instead of the process-wide atomic.
  bool TraceOn = false;
  /// Per-plan-loop execution aggregates, indexed by PlanLoop::TraceId
  /// (sized by the plan compiler, written only when TraceOn, merged in
  /// task order after parallel loops like the counters). These cover
  /// inner loops, whose raw trace spans are suppressed to keep event
  /// volume bounded.
  std::vector<uint64_t> LoopCalls, LoopNs;
  /// Nanoseconds spent merging privatized accumulators and task
  /// deltas after parallel loops (always collected; a subset of the
  /// run's execute time).
  uint64_t MergeNs = 0;
  /// Cooperative stop state of the run; null when uncontrolled (no
  /// token, no deadline), so the hot path pays one pointer test per
  /// checkpoint. Copied into task contexts with the rest of the
  /// context, so all tasks share the run's state.
  RunControl *Ctrl = nullptr;
  /// Per-context decimation tick for checkpointStop's clock reads.
  uint32_t PollTick = 0;
};

/// Context for PlanNode::rebind — repatching a compiled plan onto new
/// tensors of identical structure (Executor::rebind, the plan-cache
/// hit path). Map sends every tensor pointer the plan may have baked
/// (user bindings and materialized aliases alike) to its replacement;
/// Accesses is the execution context's access-state table *after* its
/// own tensors were repatched, so fused engines can re-derive raw
/// level-array pointers from it.
struct RebindCtx {
  const std::map<Tensor *, Tensor *> &Map;      ///< old -> new
  const std::vector<AccessState> &Accesses;     ///< already repatched
};

/// Cancellation checkpoint for per-iteration polling: free when the
/// run is uncontrolled; otherwise a relaxed flag test per call with a
/// full token/deadline poll every 64th (decimating the clock reads
/// that a deadline check needs).
inline bool checkpointStop(ExecCtx &C) {
  RunControl *Ctl = C.Ctrl;
  if (!Ctl)
    return false;
  if ((++C.PollTick & 63u) == 0)
    return Ctl->check();
  return Ctl->stopped();
}

/// A compiled comparison between two index slots.
struct CAtom {
  CmpKind Kind;
  unsigned A, B;

  bool eval(const ExecCtx &C) const {
    return evalCmp(Kind, C.IndexVal[A], C.IndexVal[B]);
  }
};

/// A compiled DNF condition.
struct CCond {
  std::vector<std::vector<CAtom>> Disjuncts;

  bool eval(const ExecCtx &C) const {
    for (const std::vector<CAtom> &D : Disjuncts) {
      bool Ok = true;
      for (const CAtom &A : D)
        if (!A.eval(C)) {
          Ok = false;
          break;
        }
      if (Ok)
        return true;
    }
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Expression VM
//===----------------------------------------------------------------------===//

enum class VKind { Lit, Scalar, Walked, DenseLoad, SparseLoad, Op, Lut };

struct VInstr {
  VKind Kind;
  double Lit = 0;
  unsigned Id = 0; // scalar slot or access id (Walked and SparseLoad)
  OpKind Op = OpKind::Add;
  unsigned NArgs = 0;
  Tensor *T = nullptr;
  std::vector<std::pair<unsigned, int64_t>> SlotStride; // DenseLoad
  /// SparseLoad: per level (top first), the index slot providing that
  /// level's coordinate.
  std::vector<unsigned> LevelSlots;
  std::vector<CAtom> LutBits;
  std::vector<double> LutTable;
};

/// Random access through \p AccessId's fibertree at the coordinates in
/// IndexVal[LevelSlots[level]], using the per-context stateful locator
/// (galloping cursors on Sparse and RunLength levels). Shared by the
/// expression VM's SparseLoad instruction and the fused micro-kernels'
/// SparseLoad operands so both paths chain the exact same cursor state
/// and return bit-identical values. Does not touch counters; callers
/// count one SparseRead per evaluation.
double sparseLoadValue(ExecCtx &C, unsigned AccessId,
                       const std::vector<unsigned> &LevelSlots);

/// sparseLoadValue resuming the descent at \p FromLevel with parent
/// position \p FromPos — the per-row prebinding entry point: the fused
/// innermost engine resolves the row-invariant level prefix once per
/// loop execution and evaluates only the remaining levels per element.
/// Values are identical to a full descent (locate results do not depend
/// on cursor state); FromLevel == order returns the value at FromPos.
double sparseLoadValueFrom(ExecCtx &C, unsigned AccessId,
                           const std::vector<unsigned> &LevelSlots,
                           unsigned FromLevel, int64_t FromPos);

struct VProgram {
  std::vector<VInstr> Code;
  /// Maximum operand-stack depth, computed when the program is built.
  /// eval() keeps a fixed-size stack for the common case and falls back
  /// to a heap buffer for pathologically deep expressions.
  unsigned MaxDepth = 0;

  /// Recomputes MaxDepth from Code (call after appending instructions).
  void finalize();

  /// Repatches baked Tensor pointers (DenseLoad/SparseLoad) through
  /// \p Map; instructions whose tensor is not in the map are untouched.
  void rebind(const std::map<Tensor *, Tensor *> &Map);

  double eval(ExecCtx &C) const;
};

//===----------------------------------------------------------------------===//
// Plan nodes
//===----------------------------------------------------------------------===//

class PlanNode {
public:
  virtual ~PlanNode() = default;
  virtual void exec(ExecCtx &C) = 0;
  /// Repatches any Tensor pointers this node (or its children) baked at
  /// plan compilation onto the replacement tensors in \p R — the
  /// plan-cache hit path. Structure (slots, bounds, conditions, fused
  /// engines) is untouched; only data pointers move.
  virtual void rebind(const RebindCtx &R) { (void)R; }
};

using PlanPtr = std::unique_ptr<PlanNode>;

class PlanSeq final : public PlanNode {
public:
  std::vector<PlanPtr> Children;
  void exec(ExecCtx &C) override {
    for (PlanPtr &Child : Children)
      Child->exec(C);
  }
  void rebind(const RebindCtx &R) override {
    for (PlanPtr &Child : Children)
      Child->rebind(R);
  }
};

class PlanIf final : public PlanNode {
public:
  CCond Cond;
  PlanPtr Body;
  void exec(ExecCtx &C) override {
    if (Cond.eval(C))
      Body->exec(C);
  }
  void rebind(const RebindCtx &R) override { Body->rebind(R); }
};

class PlanDef final : public PlanNode {
public:
  unsigned Slot = 0;
  VProgram Init;
  void exec(ExecCtx &C) override { C.ScalarVal[Slot] = Init.eval(C); }
  void rebind(const RebindCtx &R) override { Init.rebind(R.Map); }
};

class PlanAssign final : public PlanNode {
public:
  VProgram Rhs;
  std::optional<OpKind> Reduce;
  unsigned Mult = 1;
  bool ScalarTarget = false;
  unsigned ScalarSlot = 0;
  unsigned OutId = 0; ///< index into ExecCtx::OutPtr (tensor targets)
  std::vector<std::pair<unsigned, int64_t>> SlotStride;

  void exec(ExecCtx &C) override;
  void rebind(const RebindCtx &R) override { Rhs.rebind(R.Map); }
};

class PlanReplicate final : public PlanNode {
public:
  Tensor *T = nullptr;
  Partition Sym;
  unsigned Threads = 1;

  void exec(ExecCtx &C) override;
  void rebind(const RebindCtx &R) override {
    auto It = R.Map.find(T);
    if (It != R.Map.end())
      T = It->second;
  }
};

class PlanLoop final : public PlanNode {
public:
  PlanLoop();
  ~PlanLoop() override;

  unsigned Slot = 0;
  int64_t Extent = 0;

  struct WalkerRef {
    unsigned AccessId;
    unsigned Level;
    bool Bottom;
  };
  std::vector<WalkerRef> Walkers;
  // Bounds: lo = max(0, IndexVal[slot]+delta...), hi analogous
  // (inclusive).
  std::vector<std::pair<unsigned, int64_t>> LoTerms, HiTerms;
  PlanPtr Body;

  /// Fused micro-kernel replacing the generic walker/body dispatch for
  /// this loop (null when the specializer declined; the interpreted
  /// path below is then both the implementation and the oracle).
  std::unique_ptr<MicroKernel> Fused;

  /// Block metadata: the output-panel width when this loop runs the
  /// blocked engine (0 otherwise). Panels anchor at absolute multiples
  /// of this width, so makeChunks aligns parallel task boundaries to it
  /// — tasks then split on whole panels instead of cutting boundary
  /// panels ragged. Purely a performance device: results and counters
  /// are identical for any task decomposition.
  unsigned BlockAlign = 0;

  /// One privatized output: tasks accumulate into per-task buffers that
  /// merge into the shared array, in task order, after the loop.
  struct PrivTensor {
    unsigned OutId;
    size_t Elems;
    OpKind Op;
    double Identity;
  };
  struct PrivScalar {
    unsigned Slot;
    OpKind Op;
    double Identity;
  };

  /// Parallel execution state (populated by the plan compiler for the
  /// activated loop of each nest).
  struct ParPlan {
    bool Enabled = false;
    SchedulePolicy Policy = SchedulePolicy::Static;
    int TriDepth = 0;
    unsigned Threads = 1;
    ThreadPool *Pool = nullptr;
    std::vector<PrivTensor> PrivTensors;
    std::vector<PrivScalar> PrivScalars;
    /// Accumulators, reused across runs and kept identity-filled
    /// between them (the merge resets as it reads):
    /// [task * PrivTensors.size() + p].
    std::vector<std::vector<double>> Buffers;
    /// Task contexts, reused so inner parallel loops (one dispatch per
    /// outer iteration) do not reallocate per execution.
    std::vector<ExecCtx> TaskCtx;
  };
  ParPlan Par;

  /// Observability identity, assigned at plan compilation: TraceId
  /// indexes ExecCtx::LoopCalls/LoopNs; TraceLabel is the interned
  /// span name ("loop i [Fused/SparseWalk]"); EngineName/DriverName
  /// ("Interp"/"Fused"/"Blocked", "Range"/"SparseWalk"/...) surface in
  /// ExecReport.
  unsigned TraceId = 0;
  const char *TraceLabel = nullptr;
  const char *EngineName = nullptr;
  const char *DriverName = nullptr;

  void exec(ExecCtx &C) override;
  /// Forwards to Body, then re-derives the fused engine's baked raw
  /// pointers (implemented in MicroKernels.cpp next to the baking
  /// code it mirrors).
  void rebind(const RebindCtx &R) override;
  void execParallel(ExecCtx &C, int64_t Lo, int64_t Hi);
  /// Dispatch for one contiguous range: forwards to rangeBody, via
  /// tracedRange (span + aggregate accounting) when C.TraceOn.
  void execRange(ExecCtx &C, int64_t Lo, int64_t Hi);
  void tracedRange(ExecCtx &C, int64_t Lo, int64_t Hi);
  /// The actual engine dispatch (fused micro-kernel or walker-driven
  /// interpretation), free of instrumentation.
  void rangeBody(ExecCtx &C, int64_t Lo, int64_t Hi);
  std::vector<ChunkRange> makeChunks(int64_t Lo, int64_t Hi) const;
};

} // namespace detail
} // namespace systec

#endif // SYSTEC_RUNTIME_PLAN_H
