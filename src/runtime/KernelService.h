//===- runtime/KernelService.h - Long-running kernel service --*- C++ -*-===//
///
/// \file
/// The serving layer over the SySTeC runtime: a long-running service
/// that accepts einsum execution requests, compiles each distinct
/// (einsum, operand structure, options) once into a prepared Executor
/// cached in a PlanCache, and runs many in-flight requests concurrently
/// over the shared process ThreadPool.
///
/// Request lifecycle: submit() enqueues the request and returns a
/// future-like RequestHandle (or ErrCode::ResourceExhausted when the
/// admission queue is full — backpressure, not blocking). A service
/// worker dequeues it, checks the plan cache:
///  - hit: the cached executor is rebound onto the request's tensors
///    (Executor::rebind — no parsing, lowering, plan compilation, or
///    specialization; the run's report shows those phases at 0),
///  - miss (or a rebind the structure check rejects): the einsum is
///    compiled through the full pipeline and a fresh executor prepared,
/// then runs with the request's per-request knobs (cancellation token,
/// deadline, input validation, tracing), and the executor returns to
/// the cache. Each request gets its own by-value ExecReport; executors
/// run with GlobalCounterFlush off, so concurrent requests never
/// interleave deltas in the process-global counters — the service
/// aggregates the per-request snapshots itself (stats().Counters).
///
/// Fairness: concurrent request executions share the persistent
/// ThreadPool; batches from different requests interleave in strict
/// arrival order (the pool's submission ticket queue), and each
/// request's report windows its own per-caller activity slot.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_RUNTIME_KERNELSERVICE_H
#define SYSTEC_RUNTIME_KERNELSERVICE_H

#include "ir/Einsum.h"
#include "observability/Histogram.h"
#include "observability/Report.h"
#include "runtime/Executor.h"
#include "runtime/PlanCache.h"
#include "support/Status.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace systec {

struct ServiceOptions {
  /// Service worker threads draining the request queue — the number of
  /// requests in flight at once. Each in-flight request additionally
  /// fans out over the shared ThreadPool when its options ask for
  /// Threads > 1.
  unsigned Workers = 2;
  /// Admission control: submit() rejects with ResourceExhausted once
  /// this many requests are queued (in-flight requests do not count).
  size_t QueueLimit = 64;
  /// Plan-cache capacity (distinct executors kept warm); 0 disables
  /// caching.
  size_t CacheCapacity = 32;
};

/// One execution request: a declared einsum (formats, fills, symmetries
/// set on the declarations), the tensors to run it over, and the
/// execution options. The structural options select/key the compiled
/// plan; Cancel / DeadlineMs / ValidateInputs / Tracing apply to this
/// request only. Bound tensors must outlive the request's completion.
struct KernelRequest {
  std::string Label; ///< for logs/benches; not part of the cache key
  Einsum E;
  std::map<std::string, Tensor *> Bindings;
  ExecOptions Options;
};

/// What one request produced. Move-only (owns a Status).
struct RequestResult {
  Status St = Status::success();
  /// The run's by-value report (phase timings, loops, workers, exact
  /// counter deltas). On an aborted run, AbortReason is set and the
  /// phases describe the aborted attempt; on a front-end failure the
  /// report is empty.
  obs::ExecReport Report;
  bool CacheHit = false;   ///< plan came from the cache (rebind path)
  uint64_t FrontendNs = 0; ///< lowering + plan compile + prepare on a
                           ///< miss; the rebind repatch on a hit
};

/// Future-like handle to one submitted request. Copyable; all copies
/// share the result state, which outlives the service.
class RequestHandle {
public:
  /// Blocks until the request finished; returns the result (valid as
  /// long as any handle copy is alive).
  const RequestResult &wait() const;
  bool done() const;

private:
  friend class KernelService;
  struct State {
    mutable std::mutex Mu;
    mutable std::condition_variable Cv;
    bool Done = false;
    RequestResult Res;
  };
  std::shared_ptr<State> St;
};

class KernelService {
public:
  /// Service-level observability: admission tallies, end-to-end and
  /// queue-wait latency histograms, the plan cache's hit/miss/evict
  /// counters, and the aggregate of every completed request's exact
  /// counter deltas.
  struct Stats {
    uint64_t Submitted = 0;
    uint64_t Rejected = 0;  ///< admission-control rejections
    uint64_t Completed = 0; ///< finished ok
    uint64_t Failed = 0;    ///< finished with an error status
    /// Cache hits whose rebind was refused (structure mismatch under a
    /// colliding key); the request fell back to a fresh compile.
    uint64_t RebindFailures = 0;
    obs::LogHistogram LatencyNs; ///< submit -> completion
    obs::LogHistogram QueueNs;   ///< submit -> dequeue (admission wait)
    CounterSnapshot Counters;    ///< sum of completed requests' deltas
    PlanCache::Stats Cache;
  };

  explicit KernelService(ServiceOptions Options = ServiceOptions());
  /// Fails every still-queued request with ErrCode::Cancelled, waits
  /// for in-flight requests to finish, and joins the workers.
  ~KernelService();

  KernelService(const KernelService &) = delete;
  KernelService &operator=(const KernelService &) = delete;

  /// Enqueues \p R. Fails with ResourceExhausted when the queue is at
  /// QueueLimit (admission control) and InvalidArgument on a request
  /// with no bindings or a null tensor.
  Expected<RequestHandle> submit(KernelRequest R);

  /// Stops workers from dequeuing (in-flight requests finish). With
  /// submissions still accepted, the queue fills deterministically —
  /// how the admission-control tests exercise rejection.
  void pause();
  void resume();

  Stats stats() const;

private:
  void workerLoop();
  /// Compile-or-rebind, run, and release back to the cache.
  RequestResult process(KernelRequest &R);

  const ServiceOptions Options;
  PlanCache Cache;

  mutable std::mutex Mu;
  std::condition_variable WorkCv;
  std::deque<std::pair<KernelRequest,
                       std::shared_ptr<RequestHandle::State>>>
      Queue; ///< each entry also carries its enqueue timestamp below
  std::deque<uint64_t> QueuedAt;
  bool Paused = false;
  bool Stopping = false;
  std::vector<std::thread> Workers;

  // Stats (guarded by StatMu so completion never contends with submit).
  mutable std::mutex StatMu;
  Stats Tallies;
};

} // namespace systec

#endif // SYSTEC_RUNTIME_KERNELSERVICE_H
