//===- runtime/Annihilation.h - Walker soundness algebra ------*- C++ -*-===//
///
/// \file
/// The algebraic analysis behind coordinate-skipping walker
/// registration. A loop driven by a sparse (or banded) access visits
/// only stored coordinates; skipping coordinate c is sound exactly when
/// executing the loop body with that access evaluating to its tensor's
/// fill value would have no observable effect — every assignment in the
/// subtree must reduce to a no-op.
///
/// accessAnnihilatesSubtree() decides this by abstract interpretation
/// over the statement tree under the hypothesis "access == fill":
/// constants propagate through scalar definitions (transitively, with
/// joins at conditional redefinitions and a fixpoint over nested
/// loops), per-operand annihilation facts from the operator algebra
/// (ir/Ops.h: x * 0 == 0, x + inf == inf, min(x, -inf) == -inf) absorb
/// unknown co-operands position by position, and an assignment is a
/// no-op when its right-hand side folds to the identity of its
/// reduction operator (identity applied any multiplicity of times stays
/// a no-op). Scalar definitions are treated as effect-free iteration
/// temporaries — the contract of the lowering, which defines every
/// workspace before its reads — while scalar-target reductions must
/// themselves annihilate, so loop-carried accumulators are handled
/// soundly.
///
/// This subsumes the earlier conservative check,
/// accessBacksEveryAssignment(), which only tested that the access key
/// appears in every assignment's transitive operand set: membership
/// cannot see that a workspace flush (`y[j] += w` where `w` starts at
/// the reduction identity) is annihilated, so kernels with workspaces
/// under sparse-topped formats lost every walker; and membership cannot
/// tell an annihilating fill from a non-annihilating one (min-plus over
/// a fill-0 operand), which was latently unsound. The membership check
/// is kept for differential accounting (Executor's WalkersRecovered /
/// WalkersRejected stats) and as the legacy mode behind
/// ExecOptions::AnnihilationAlgebra.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_RUNTIME_ANNIHILATION_H
#define SYSTEC_RUNTIME_ANNIHILATION_H

#include "ir/Stmt.h"

#include <string>

namespace systec {

/// True when executing \p Body with every occurrence of the access
/// whose printed form is \p AccessKey evaluating to \p Fill is provably
/// a no-op — the algebraic soundness condition for registering a
/// coordinate-skipping walker over that access on a loop with body
/// \p Body.
bool accessAnnihilatesSubtree(const StmtPtr &Body,
                              const std::string &AccessKey, double Fill);

/// The legacy string-level "transitive product membership" condition:
/// every assignment in \p Body transitively references \p AccessKey
/// (through scalar definitions; conditional redefinitions keep the
/// intersection). Sound only under the implicit assumption that
/// membership implies annihilation — true for multiplicative bodies
/// over fill-0 operands, false in general. Retained for differential
/// stats and the AnnihilationAlgebra=false ablation mode.
bool accessBacksEveryAssignment(const StmtPtr &Body,
                                const std::string &AccessKey);

} // namespace systec

#endif // SYSTEC_RUNTIME_ANNIHILATION_H
