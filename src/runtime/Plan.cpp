//===- runtime/Plan.cpp - Plan node execution -----------------*- C++ -*-===//

#include "runtime/Plan.h"

#include "observability/Trace.h"
#include "parallel/ThreadPool.h"
#include "runtime/MicroKernels.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

namespace systec {
namespace detail {

//===----------------------------------------------------------------------===//
// Expression VM
//===----------------------------------------------------------------------===//

void VProgram::finalize() {
  int Depth = 0, Max = 0;
  for (const VInstr &I : Code) {
    switch (I.Kind) {
    case VKind::Op:
      Depth -= static_cast<int>(I.NArgs);
      ++Depth;
      break;
    default:
      ++Depth;
      break;
    }
    Max = std::max(Max, Depth);
  }
  assert(Depth == 1 && "program does not leave one value on the stack");
  MaxDepth = static_cast<unsigned>(Max);
}

void VProgram::rebind(const std::map<Tensor *, Tensor *> &Map) {
  for (VInstr &I : Code) {
    if (!I.T)
      continue;
    auto It = Map.find(I.T);
    if (It != Map.end())
      I.T = It->second;
  }
}

/// Random access through the fibertree with a movable per-level cursor
/// (the SparseLoad locator). Equivalent to Tensor::at but exploits the
/// sorted iteration order of the surrounding loops: repeated lookups
/// under the same parent gallop forward from the previous result
/// instead of bisecting the whole fiber (Sparse and RunLength levels;
/// Dense and Banded locates are O(1) already).
double sparseLoadValue(ExecCtx &C, unsigned AccessId,
                       const std::vector<unsigned> &LevelSlots) {
  return sparseLoadValueFrom(C, AccessId, LevelSlots, 0, 0);
}

double sparseLoadValueFrom(ExecCtx &C, unsigned AccessId,
                           const std::vector<unsigned> &LevelSlots,
                           unsigned FromLevel, int64_t FromPos) {
  AccessState &A = C.Accesses[AccessId];
  const Tensor &T = *A.T;
  int64_t Pos = FromPos;
  for (unsigned L = FromLevel; L < T.order(); ++L) {
    const int64_t Coord = C.IndexVal[LevelSlots[L]];
    const Level &Lev = T.level(L);
    if (Lev.Kind == LevelKind::Sparse || Lev.Kind == LevelKind::RunLength)
      Pos = T.locateHinted(L, Pos, Coord, A.LocParent[L], A.LocIdx[L]);
    else
      Pos = T.locate(L, Pos, Coord);
    if (Pos < 0)
      return T.fill();
  }
  return T.val(Pos);
}

double VProgram::eval(ExecCtx &C) const {
  // Fixed-size operand stack for the common case; programs whose
  // compile-time depth exceeds it evaluate on a heap buffer instead of
  // smashing the stack (deep expressions come from wide flattened
  // operator calls).
  constexpr unsigned FixedDepth = 32;
  double Fixed[FixedDepth];
  Fixed[0] = 0.0; // an empty program leaves the stack empty
  std::vector<double> Big;
  double *St = Fixed;
  if (MaxDepth > FixedDepth) {
    Big.resize(MaxDepth);
    St = Big.data();
  }
  int Top = -1;
  for (const VInstr &I : Code) {
    switch (I.Kind) {
    case VKind::Lit:
      St[++Top] = I.Lit;
      break;
    case VKind::Scalar:
      St[++Top] = C.ScalarVal[I.Id];
      break;
    case VKind::Walked: {
      const AccessState &A = C.Accesses[I.Id];
      St[++Top] = A.T->val(A.Pos[A.T->order()]);
      break;
    }
    case VKind::DenseLoad: {
      int64_t Pos = 0;
      for (const auto &[Slot, Stride] : I.SlotStride)
        Pos += C.IndexVal[Slot] * Stride;
      St[++Top] = I.T->val(Pos);
      break;
    }
    case VKind::SparseLoad: {
      if (C.CountersOn)
        ++C.Local.SparseReads;
      St[++Top] = sparseLoadValue(C, I.Id, I.LevelSlots);
      break;
    }
    case VKind::Op: {
      double Acc = St[Top - static_cast<int>(I.NArgs) + 1];
      for (unsigned K = 1; K < I.NArgs; ++K)
        Acc = evalOp(I.Op, Acc, St[Top - static_cast<int>(I.NArgs) + 1 +
                                   static_cast<int>(K)]);
      Top -= static_cast<int>(I.NArgs);
      St[++Top] = Acc;
      if (C.CountersOn)
        C.Local.ScalarOps += I.NArgs - 1;
      break;
    }
    case VKind::Lut: {
      unsigned Mask = 0;
      for (size_t B = 0; B < I.LutBits.size(); ++B)
        if (I.LutBits[B].eval(C))
          Mask |= 1u << B;
      St[++Top] = I.LutTable[Mask];
      break;
    }
    }
  }
  assert(Top == 0 && "VM stack imbalance");
  return St[0];
}

//===----------------------------------------------------------------------===//
// Plan nodes
//===----------------------------------------------------------------------===//

void PlanAssign::exec(ExecCtx &C) {
  double V = Rhs.eval(C);
  if (Mult > 1) {
    if (Reduce && opInfo(*Reduce).Idempotent) {
      // Duplicate updates collapse under idempotent reductions.
    } else if (!Reduce || *Reduce == OpKind::Add) {
      V *= Mult;
    } else {
      // Rare general case: apply the reduction Mult times below.
    }
  }
  unsigned Times = 1;
  if (Mult > 1 && Reduce && !opInfo(*Reduce).Idempotent &&
      *Reduce != OpKind::Add)
    Times = Mult;
  for (unsigned Rep = 0; Rep < Times; ++Rep) {
    if (ScalarTarget) {
      double &Dst = C.ScalarVal[ScalarSlot];
      Dst = Reduce ? evalOp(*Reduce, Dst, V) : V;
    } else {
      int64_t Pos = 0;
      for (const auto &[Slot, Stride] : SlotStride)
        Pos += C.IndexVal[Slot] * Stride;
      double &Dst = C.OutPtr[OutId][Pos];
      Dst = Reduce ? evalOp(*Reduce, Dst, V) : V;
    }
    if (C.CountersOn) {
      ++C.Local.Reductions;
      if (!ScalarTarget)
        ++C.Local.OutputWrites;
    }
  }
}

void PlanReplicate::exec(ExecCtx &C) {
  uint64_t Copies = replicateSymmetric(*T, Sym, Threads);
  if (C.CountersOn)
    C.Local.OutputWrites += Copies;
}

PlanLoop::PlanLoop() = default;
PlanLoop::~PlanLoop() = default;

void PlanLoop::exec(ExecCtx &C) {
  // Cancellation checkpoint between loops: a tripped run unwinds the
  // whole plan tree without entering another range.
  if (C.Ctrl && C.Ctrl->stopped())
    return;
  int64_t Lo = 0, Hi = Extent - 1;
  for (const auto &[S, D] : LoTerms)
    Lo = std::max(Lo, C.IndexVal[S] + D);
  for (const auto &[S, D] : HiTerms)
    Hi = std::min(Hi, C.IndexVal[S] + D);
  if (Lo > Hi)
    return;
  if (Par.Enabled)
    execParallel(C, Lo, Hi);
  else
    execRange(C, Lo, Hi);
}

namespace {

/// Snaps interior chunk boundaries to multiples of \p W — the blocked
/// engine's absolute panel anchors — so parallel tasks split on whole
/// panels instead of cutting boundary panels ragged. A boundary that
/// cannot move without emptying its chunk is dropped (the two chunks
/// merge); coverage of the full range is preserved exactly. Purely a
/// performance device: the blocked engine is bit-identical for any
/// task decomposition.
void alignChunksToPanels(std::vector<ChunkRange> &Chunks, int64_t W) {
  if (Chunks.size() <= 1)
    return;
  const int64_t Lo = Chunks.front().Lo, Hi = Chunks.back().Hi;
  std::vector<ChunkRange> Out;
  int64_t Prev = Lo;
  for (size_t I = 1; I < Chunks.size(); ++I) {
    int64_t B = Chunks[I].Lo / W * W; // snap down to a panel start
    if (B <= Prev)
      B = (Chunks[I].Lo + W - 1) / W * W; // snap up instead
    if (B <= Prev || B > Hi)
      continue; // boundary vanished: merge into the previous chunk
    Out.push_back({Prev, B - 1});
    Prev = B;
  }
  Out.push_back({Prev, Hi});
  Chunks = std::move(Out);
}

} // namespace

std::vector<ChunkRange> PlanLoop::makeChunks(int64_t Lo, int64_t Hi) const {
  std::vector<ChunkRange> Chunks;
  switch (Par.Policy) {
  case SchedulePolicy::Static:
  case SchedulePolicy::Auto: // resolved at plan compilation
    Chunks = staticBlocks(Lo, Hi, Par.Threads);
    break;
  case SchedulePolicy::Dynamic:
    Chunks = dynamicChunks(Lo, Hi, Par.Threads);
    break;
  case SchedulePolicy::TriangleBalanced:
    Chunks = triangleBalanced(Lo, Hi, Par.Threads, Par.TriDepth);
    break;
  }
  if (BlockAlign > 1)
    alignChunksToPanels(Chunks, BlockAlign);
  return Chunks;
}

void PlanLoop::execParallel(ExecCtx &C, int64_t Lo, int64_t Hi) {
  std::vector<ChunkRange> Chunks = makeChunks(Lo, Hi);
  if (Chunks.size() <= 1) {
    execRange(C, Lo, Hi);
    return;
  }
  const unsigned NT = static_cast<unsigned>(Chunks.size());
  const size_t NPriv = Par.PrivTensors.size();

  // Task contexts start from the parent state; privatized scalars
  // reset to the merge identity so partial results compose exactly.
  // Contexts and buffers persist across executions (vector copy
  // assignment reuses capacity; buffers stay identity-filled).
  if (Par.TaskCtx.size() < NT)
    Par.TaskCtx.resize(NT);
  for (unsigned T = 0; T < NT; ++T) {
    Par.TaskCtx[T] = C;
    // Counter deltas are per task: zero after the copy and sum in task
    // order after the join (the parent keeps its own accumulated
    // deltas). The per-loop trace aggregates follow the same
    // discipline.
    Par.TaskCtx[T].Local = CounterSnapshot{};
    if (C.TraceOn) {
      std::fill(Par.TaskCtx[T].LoopCalls.begin(),
                Par.TaskCtx[T].LoopCalls.end(), uint64_t(0));
      std::fill(Par.TaskCtx[T].LoopNs.begin(),
                Par.TaskCtx[T].LoopNs.end(), uint64_t(0));
      Par.TaskCtx[T].MergeNs = 0;
    }
  }
  for (unsigned T = 0; T < NT; ++T)
    for (const PrivScalar &S : Par.PrivScalars)
      Par.TaskCtx[T].ScalarVal[S.Slot] = S.Identity;
  if (Par.Buffers.size() < size_t(NT) * NPriv)
    Par.Buffers.resize(size_t(NT) * NPriv);

  // Controlled runs poll the token/deadline at every task-claim
  // boundary (the pool drains remaining chunks once tripped) and once
  // more at chunk entry, for chunks claimed before the trip landed.
  std::function<bool()> StopFn;
  const std::function<bool()> *Stop = nullptr;
  if (C.Ctrl) {
    StopFn = [Ctl = C.Ctrl] { return Ctl->check(); };
    Stop = &StopFn;
  }
  Par.Pool->parallelFor(
      NT,
      [&](unsigned T) {
        ExecCtx &TC = Par.TaskCtx[T];
        if (TC.Ctrl && TC.Ctrl->stopped())
          return;
        // First-use accumulator fill runs inside the task so the
        // identity fill of large buffers is itself parallel.
        for (size_t P = 0; P < NPriv; ++P) {
          const PrivTensor &PT = Par.PrivTensors[P];
          std::vector<double> &B = Par.Buffers[size_t(T) * NPriv + P];
          if (B.size() != PT.Elems)
            B.assign(PT.Elems, PT.Identity);
          TC.OutPtr[PT.OutId] = B.data();
        }
        execRange(TC, Chunks[T].Lo, Chunks[T].Hi);
      },
      Stop);

  if (C.Ctrl && C.Ctrl->stopped()) {
    // Abort: discard the partial privatized results instead of merging
    // them. Dropping the buffers (instead of re-filling) keeps the
    // between-runs identity invariant — the next execution re-fills on
    // first use. The Executor discards the shared output arrays.
    for (std::vector<double> &B : Par.Buffers)
      B.clear();
    return;
  }

  // Merge in task order: the decomposition (not the thread schedule)
  // determines the floating-point result. Accumulators reset to the
  // identity in the same sweep, restoring the between-runs invariant
  // without a separate fill pass.
  const uint64_t MergeStart = obs::nowNs();
  for (unsigned T = 0; T < NT; ++T) {
    C.Local.SparseReads += Par.TaskCtx[T].Local.SparseReads;
    C.Local.Reductions += Par.TaskCtx[T].Local.Reductions;
    C.Local.ScalarOps += Par.TaskCtx[T].Local.ScalarOps;
    C.Local.OutputWrites += Par.TaskCtx[T].Local.OutputWrites;
    C.Local.FusedBlockedPanels += Par.TaskCtx[T].Local.FusedBlockedPanels;
    C.Local.FusedBlockedStores += Par.TaskCtx[T].Local.FusedBlockedStores;
  }
  if (C.TraceOn)
    for (unsigned T = 0; T < NT; ++T) {
      const ExecCtx &TC = Par.TaskCtx[T];
      for (size_t L = 0; L < C.LoopCalls.size() &&
                         L < TC.LoopCalls.size(); ++L) {
        C.LoopCalls[L] += TC.LoopCalls[L];
        C.LoopNs[L] += TC.LoopNs[L];
      }
      C.MergeNs += TC.MergeNs;
    }
  for (const PrivScalar &S : Par.PrivScalars)
    for (unsigned T = 0; T < NT; ++T)
      C.ScalarVal[S.Slot] = evalOp(S.Op, C.ScalarVal[S.Slot],
                                   Par.TaskCtx[T].ScalarVal[S.Slot]);
  for (size_t P = 0; P < NPriv; ++P) {
    const PrivTensor &PT = Par.PrivTensors[P];
    double *Dst = C.OutPtr[PT.OutId];
    std::vector<ChunkRange> Slabs =
        staticBlocks(0, static_cast<int64_t>(PT.Elems) - 1,
                     Par.Threads);
    Par.Pool->parallelFor(
        static_cast<unsigned>(Slabs.size()), [&](unsigned SI) {
          for (int64_t I = Slabs[SI].Lo; I <= Slabs[SI].Hi; ++I) {
            double Acc = Dst[I];
            for (unsigned T = 0; T < NT; ++T) {
              double *Buf = Par.Buffers[size_t(T) * NPriv + P].data();
              Acc = evalOp(PT.Op, Acc, Buf[I]);
              Buf[I] = PT.Identity;
            }
            Dst[I] = Acc;
          }
        });
  }
  const uint64_t MergeEnd = obs::nowNs();
  C.MergeNs += MergeEnd - MergeStart;
  if (obs::tracingEnabled())
    obs::emitSpan("merge", "exec", MergeStart, MergeEnd - MergeStart,
                  static_cast<int64_t>(NT), static_cast<int64_t>(NPriv));
}

namespace {
/// Depth of traced plan-loop dispatches on this thread. Raw spans are
/// emitted only at depth 0 (the outermost loop of each dispatch — on a
/// worker thread, the parallel chunk it executes); inner loops are
/// covered by the per-loop Calls/Ns aggregates, which keeps trace
/// volume proportional to chunks rather than iterations.
thread_local unsigned LoopSpanDepth = 0;
} // namespace

void PlanLoop::execRange(ExecCtx &C, int64_t Lo, int64_t Hi) {
  if (C.TraceOn) {
    tracedRange(C, Lo, Hi);
    return;
  }
  rangeBody(C, Lo, Hi);
}

void PlanLoop::tracedRange(ExecCtx &C, int64_t Lo, int64_t Hi) {
  const uint64_t T0 = obs::nowNs();
  const bool Raw = LoopSpanDepth == 0;
  ++LoopSpanDepth;
  rangeBody(C, Lo, Hi);
  --LoopSpanDepth;
  const uint64_t Dur = obs::nowNs() - T0;
  if (Raw && TraceLabel && obs::tracingEnabled())
    obs::emitSpan(TraceLabel, "loop", T0, Dur, Lo, Hi);
  if (TraceId < C.LoopCalls.size()) {
    ++C.LoopCalls[TraceId];
    C.LoopNs[TraceId] += Dur;
  }
}

void PlanLoop::rangeBody(ExecCtx &C, int64_t Lo, int64_t Hi) {
  if (Fused) {
    Fused->run(C, Lo, Hi);
    return;
  }
  if (Walkers.empty()) {
    for (int64_t V = Lo; V <= Hi; ++V) {
      if (checkpointStop(C))
        return;
      C.IndexVal[Slot] = V;
      Body->exec(C);
    }
    return;
  }

  // The first walker drives iteration; the others must agree on each
  // candidate coordinate (intersection).
  const WalkerRef &W = Walkers[0];
  AccessState &A = C.Accesses[W.AccessId];
  const Level &Lev = A.T->level(W.Level);
  const int64_t Parent = A.Pos[W.Level];

  auto Step = [&](int64_t Coord, int64_t Child) {
    A.Pos[W.Level + 1] = Child;
    if (C.CountersOn && W.Bottom && A.SparseFormat)
      ++C.Local.SparseReads;
    for (size_t K = 1; K < Walkers.size(); ++K) {
      const WalkerRef &O = Walkers[K];
      AccessState &OA = C.Accesses[O.AccessId];
      const int64_t OParent = OA.Pos[O.Level];
      if (OA.T == A.T && O.Level == W.Level && OParent == Parent) {
        OA.Pos[O.Level + 1] = Child;
      } else {
        int64_t OChild = OA.T->locate(O.Level, OParent, Coord);
        if (OChild < 0)
          return; // missing in intersection
        OA.Pos[O.Level + 1] = OChild;
      }
      if (C.CountersOn && O.Bottom && OA.SparseFormat)
        ++C.Local.SparseReads;
    }
    C.IndexVal[Slot] = Coord;
    Body->exec(C);
  };

  switch (Lev.Kind) {
  case LevelKind::Dense: {
    for (int64_t V = Lo; V <= Hi; ++V) {
      if (checkpointStop(C))
        return;
      Step(V, Parent * Lev.Dim + V);
    }
    return;
  }
  case LevelKind::Sparse: {
    int64_t B = Lev.Ptr[Parent], E = Lev.Ptr[Parent + 1];
    if (Lo > 0)
      B = std::lower_bound(Lev.Crd.begin() + B, Lev.Crd.begin() + E, Lo) -
          Lev.Crd.begin();
    for (int64_t KPos = B; KPos < E; ++KPos) {
      int64_t Coord = Lev.Crd[KPos];
      if (Coord > Hi || checkpointStop(C))
        break;
      Step(Coord, KPos);
    }
    return;
  }
  case LevelKind::RunLength: {
    int64_t Start = 0;
    for (int64_t KPos = Lev.Ptr[Parent]; KPos < Lev.Ptr[Parent + 1];
         ++KPos) {
      int64_t End = Lev.RunEnd[KPos];
      for (int64_t V = std::max(Start, Lo); V < End; ++V) {
        if (V > Hi || checkpointStop(C))
          return;
        Step(V, KPos);
      }
      Start = End;
      if (Start > Hi)
        return;
    }
    return;
  }
  case LevelKind::Banded: {
    int64_t B = std::max(Lo, Lev.Lo[Parent]);
    int64_t E = std::min(Hi, Lev.Hi[Parent] - 1);
    for (int64_t V = B; V <= E; ++V) {
      if (checkpointStop(C))
        return;
      Step(V, Lev.Off[Parent] + (V - Lev.Lo[Parent]));
    }
    return;
  }
  }
  unreachable("unknown level kind");
}

} // namespace detail
} // namespace systec
