//===- runtime/MicroKernels.cpp - Fused plan micro-kernels ----*- C++ -*-===//
///
/// The PlanSpecializer matcher and the fused execution engines. See
/// MicroKernels.h for the contract: bit-identical values and exact
/// counter parity with the interpreted path, which stays as fallback
/// and oracle.
///
//===----------------------------------------------------------------------===//

#include "runtime/MicroKernels.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>

namespace systec {
namespace detail {

namespace {

//===----------------------------------------------------------------------===//
// Condition helpers
//===----------------------------------------------------------------------===//

bool atomEq(const CAtom &X, const CAtom &Y) {
  return X.Kind == Y.Kind && X.A == Y.A && X.B == Y.B;
}

bool condEq(const CCond &X, const CCond &Y) {
  if (X.Disjuncts.size() != Y.Disjuncts.size())
    return false;
  for (size_t D = 0; D < X.Disjuncts.size(); ++D) {
    if (X.Disjuncts[D].size() != Y.Disjuncts[D].size())
      return false;
    for (size_t A = 0; A < X.Disjuncts[D].size(); ++A)
      if (!atomEq(X.Disjuncts[D][A], Y.Disjuncts[D][A]))
        return false;
  }
  return true;
}

/// Conjunction of two DNF conditions (cross product of disjuncts).
CCond condAnd(const CCond &X, const CCond &Y) {
  if (X.Disjuncts.empty())
    return Y;
  if (Y.Disjuncts.empty())
    return X;
  CCond Out;
  for (const std::vector<CAtom> &DX : X.Disjuncts)
    for (const std::vector<CAtom> &DY : Y.Disjuncts) {
      std::vector<CAtom> D = DX;
      D.insert(D.end(), DY.begin(), DY.end());
      Out.Disjuncts.push_back(std::move(D));
    }
  return Out;
}

bool condMentions(const CCond &C, unsigned Slot) {
  for (const std::vector<CAtom> &D : C.Disjuncts)
    for (const CAtom &A : D)
      if (A.A == Slot || A.B == Slot)
        return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Matcher
//===----------------------------------------------------------------------===//

struct MatchState {
  const PlanLoop &L;
  const std::vector<AccessState> &Accesses;
  MKDriver D;
  bool Nest = false;
  /// Innermost mode only: scalar slots written by items of this loop.
  /// Reads of a written slot must substitute a preceding single-factor
  /// def under a compatible guard; anything else rejects the loop
  /// (bind-time reads would otherwise observe stale values).
  std::set<unsigned> Written;
  std::map<unsigned, std::pair<MKOperand, std::optional<CCond>>> DefMap;
};

bool buildDriver(MatchState &M) {
  const auto &Ws = M.L.Walkers;
  MKDriver &D = M.D;
  if (Ws.empty()) {
    D.K = MKDriver::Kind::Range;
    return true;
  }
  if (Ws.size() > 1 + MKDriver::MaxCoWalkers)
    return false;
  const AccessState &A = M.Accesses[Ws[0].AccessId];
  const Level &Lev = A.T->level(Ws[0].Level);
  switch (Lev.Kind) {
  case LevelKind::Sparse:
    D.K = MKDriver::Kind::SparseWalk;
    break;
  case LevelKind::Dense:
    D.K = MKDriver::Kind::DenseWalk;
    break;
  case LevelKind::RunLength:
    D.K = MKDriver::Kind::RunLengthWalk;
    break;
  case LevelKind::Banded:
    D.K = MKDriver::Kind::BandedWalk;
    break;
  }
  D.AccessId = Ws[0].AccessId;
  D.Level = Ws[0].Level;
  D.Bottom = Ws[0].Bottom;
  D.CountReads = Ws[0].Bottom && A.SparseFormat;
  D.Ptr = Lev.Ptr.data();
  D.Crd = Lev.Crd.data();
  D.RunEnd = Lev.RunEnd.data();
  D.BLo = Lev.Lo.data();
  D.BHi = Lev.Hi.data();
  D.BOff = Lev.Off.data();
  D.Vals = A.T->valsData();
  D.Dim = Lev.Dim;
  for (size_t W = 1; W < Ws.size(); ++W) {
    const AccessState &B = M.Accesses[Ws[W].AccessId];
    const Level &CoLev = B.T->level(Ws[W].Level);
    MKCoWalker Co;
    Co.Kind = CoLev.Kind;
    // Mirrors the interpreter's per-element aliasing test against the
    // *driving* walker (co-walkers never alias each other there
    // either); parent equality resolves at bind time.
    Co.SameFiber = B.T == A.T && Ws[W].Level == Ws[0].Level;
    Co.AccessId = Ws[W].AccessId;
    Co.Level = Ws[W].Level;
    Co.Bottom = Ws[W].Bottom;
    Co.CountReads = Ws[W].Bottom && B.SparseFormat;
    Co.Ptr = CoLev.Ptr.data();
    Co.Crd = CoLev.Crd.data();
    Co.RunEnd = CoLev.RunEnd.data();
    Co.BLo = CoLev.Lo.data();
    Co.BHi = CoLev.Hi.data();
    Co.BOff = CoLev.Off.data();
    Co.Vals = B.T->valsData();
    Co.Dim = CoLev.Dim;
    D.Cos.push_back(std::move(Co));
  }
  return true;
}

/// Classifies one load instruction into an operand, applying the
/// written-scalar substitution rules for innermost loops.
std::optional<MKOperand>
operandFor(const VInstr &I, MatchState &M,
           const std::optional<CCond> &Guard) {
  MKOperand Op;
  switch (I.Kind) {
  case VKind::Lit:
    Op.K = MKOperand::Kind::Const;
    Op.Lit = I.Lit;
    return Op;
  case VKind::Scalar: {
    if (!M.Nest && M.Written.count(I.Id)) {
      // Prefer bind-time substitution of a preceding single-factor def
      // under a compatible guard (keeps the statement on the prebound
      // fast paths); otherwise read the slot live per element through
      // the contextual engine — exactly what the interpreter observes,
      // since the writing item runs earlier in the same iteration.
      auto It = M.DefMap.find(I.Id);
      if (It != M.DefMap.end()) {
        const std::optional<CCond> &DefGuard = It->second.second;
        if (!DefGuard || (Guard && condEq(*DefGuard, *Guard)))
          return It->second.first;
      }
      Op.K = MKOperand::Kind::Scalar;
      Op.Slot = I.Id;
      Op.Live = true;
      return Op;
    }
    Op.K = MKOperand::Kind::Scalar;
    Op.Slot = I.Id;
    return Op;
  }
  case VKind::Walked: {
    const MKDriver &D = M.D;
    if (D.K != MKDriver::Kind::Range && I.Id == D.AccessId) {
      if (!D.Bottom)
        return std::nullopt;
      Op.K = MKOperand::Kind::Driver;
      return Op;
    }
    for (size_t Co = 0; Co < D.Cos.size(); ++Co)
      if (I.Id == D.Cos[Co].AccessId) {
        if (!D.Cos[Co].Bottom)
          return std::nullopt;
        Op.K = MKOperand::Kind::CoDriver;
        Op.Slot = static_cast<unsigned>(Co);
        return Op;
      }
    Op.K = MKOperand::Kind::Walked;
    Op.Slot = I.Id; // access id, driven by an enclosing loop
    return Op;
  }
  case VKind::DenseLoad: {
    Op.K = MKOperand::Kind::Dense;
    Op.Arr = I.T->valsData();
    Op.ArrT = I.T;
    for (const auto &[Slot, Stride] : I.SlotStride) {
      if (Slot == M.L.Slot)
        Op.VStride += Stride;
      else
        Op.BaseTerms.push_back({Slot, Stride});
    }
    return Op;
  }
  case VKind::SparseLoad: {
    Op.K = MKOperand::Kind::SparseLoad;
    Op.Slot = I.Id;
    Op.LevelSlots = I.LevelSlots;
    Op.Fill = M.Accesses[I.Id].T->fill();
    if (!M.Nest) {
      // Per-row prebinding: the leading levels whose coordinate slots
      // are bound by enclosing loops are invariant across this loop's
      // execution, so the engine resolves them once at bind time.
      unsigned P = 0;
      while (P < Op.LevelSlots.size() && Op.LevelSlots[P] != M.L.Slot)
        ++P;
      Op.PrebindLevels = static_cast<uint8_t>(P);
    }
    return Op;
  }
  case VKind::Lut: {
    Op.K = MKOperand::Kind::Lut;
    Op.LutBits = I.LutBits;
    Op.LutTable = I.LutTable;
    for (const CAtom &A : I.LutBits)
      Op.LutDynamic |= A.A == M.L.Slot || A.B == M.L.Slot;
    return Op;
  }
  case VKind::Op:
    return std::nullopt; // Op is handled by the program classifier
  }
  return std::nullopt;
}

/// Whether \p Op must be evaluated through the execution context per
/// element (cannot prebind into a BoundVal).
bool contextualOperand(const MKOperand &Op) {
  return Op.K == MKOperand::Kind::SparseLoad ||
         (Op.K == MKOperand::Kind::Scalar && Op.Live) ||
         (Op.K == MKOperand::Kind::Lut && Op.LutDynamic);
}

/// Classifies a whole program into a factor list folded left-to-right
/// with a single operator. Accepts flat n-ary ops and left-deep chains
/// (every non-first operand of an op must be a single factor), which
/// are exactly the shapes whose fold order equals the factor-list fold.
bool classifyProgram(const VProgram &P, MatchState &M,
                     const std::optional<CCond> &Guard,
                     std::vector<MKOperand> &Factors, OpKind &Combine) {
  std::vector<std::vector<MKOperand>> Stack;
  std::optional<OpKind> Op;
  for (const VInstr &I : P.Code) {
    if (I.Kind == VKind::Op) {
      if (Stack.size() < I.NArgs || I.NArgs == 0)
        return false;
      if (!Op)
        Op = I.Op;
      else if (*Op != I.Op)
        return false;
      std::vector<MKOperand> Merged =
          std::move(Stack[Stack.size() - I.NArgs]);
      for (size_t K = Stack.size() - I.NArgs + 1; K < Stack.size(); ++K) {
        if (Stack[K].size() != 1)
          return false; // right operand of a fold must be a leaf
        Merged.push_back(std::move(Stack[K][0]));
      }
      Stack.resize(Stack.size() - I.NArgs);
      Stack.push_back(std::move(Merged));
      continue;
    }
    std::optional<MKOperand> O = operandFor(I, M, Guard);
    if (!O)
      return false;
    Stack.push_back({std::move(*O)});
  }
  if (Stack.size() != 1)
    return false;
  Factors = std::move(Stack[0]);
  if (Factors.empty() || Factors.size() > MicroKernel::MaxFactors)
    return false;
  Combine = Op.value_or(OpKind::Mul);
  return true;
}

bool containsLoop(const PlanNode *N) {
  if (dynamic_cast<const PlanLoop *>(N))
    return true;
  if (auto *Seq = dynamic_cast<const PlanSeq *>(N)) {
    for (const PlanPtr &Child : Seq->Children)
      if (containsLoop(Child.get()))
        return true;
    return false;
  }
  if (auto *If = dynamic_cast<const PlanIf *>(N))
    return containsLoop(If->Body.get());
  return false;
}

void attachGuard(MKItem &Item, const std::optional<CCond> &Guard,
                 const MatchState &M) {
  if (!Guard)
    return;
  Item.HasGuard = true;
  Item.Guard = *Guard;
  Item.GuardDynamic = condMentions(*Guard, M.L.Slot);
}

/// A write to \p Slot invalidates bind-time substitutions that read it:
/// a def like `t = s` substituted into readers after `s` changes would
/// observe a different value than the interpreter's `t` (computed at
/// def time). Readers of such defs fall back to live reads of the def's
/// own slot, which is always current.
void invalidateDefsReading(MatchState &M, unsigned Slot) {
  for (auto It = M.DefMap.begin(); It != M.DefMap.end();) {
    const MKOperand &F = It->second.first;
    if (F.K == MKOperand::Kind::Scalar && F.Slot == Slot)
      It = M.DefMap.erase(It);
    else
      ++It;
  }
}

bool gatherItems(PlanNode *N, std::optional<CCond> Guard, MatchState &M,
                 std::vector<MKItem> &Out) {
  if (auto *Seq = dynamic_cast<PlanSeq *>(N)) {
    for (PlanPtr &Child : Seq->Children)
      if (!gatherItems(Child.get(), Guard, M, Out))
        return false;
    return true;
  }
  if (auto *If = dynamic_cast<PlanIf *>(N)) {
    std::optional<CCond> Inner =
        Guard ? condAnd(*Guard, If->Cond) : If->Cond;
    return gatherItems(If->Body.get(), std::move(Inner), M, Out);
  }
  if (auto *Def = dynamic_cast<PlanDef *>(N)) {
    MKItem Item;
    Item.K = MKItem::Kind::Def;
    if (!classifyProgram(Def->Init, M, Guard, Item.S.Factors,
                         Item.S.Combine))
      return false;
    Item.S.ScalarDst = true;
    Item.S.ScalarSlot = Def->Slot;
    attachGuard(Item, Guard, M);
    if (!M.Nest) {
      // A per-element dynamic guard makes the def's value
      // data-dependent in a way bind-time substitution cannot express,
      // and contextual factors (SparseLoad, live scalars, dynamic Luts)
      // must not be duplicated into readers — re-evaluating a
      // SparseLoad per use would double its counter and cursor traffic.
      // Later reads of such defs fall back to live scalar reads.
      M.Written.insert(Def->Slot);
      invalidateDefsReading(M, Def->Slot);
      if (Item.S.Factors.size() == 1 && !Item.GuardDynamic &&
          !contextualOperand(Item.S.Factors[0]))
        M.DefMap[Def->Slot] = {Item.S.Factors[0], Guard};
      else
        M.DefMap.erase(Def->Slot);
    }
    Out.push_back(std::move(Item));
    return true;
  }
  if (auto *As = dynamic_cast<PlanAssign *>(N)) {
    if (As->Mult > 1)
      return false; // rare general-multiplicity case stays interpreted
    MKItem Item;
    Item.K = MKItem::Kind::Stmt;
    if (!classifyProgram(As->Rhs, M, Guard, Item.S.Factors,
                         Item.S.Combine))
      return false;
    Item.S.Reduce = As->Reduce;
    if (As->ScalarTarget) {
      Item.S.ScalarDst = true;
      Item.S.ScalarSlot = As->ScalarSlot;
      if (!M.Nest) {
        M.Written.insert(As->ScalarSlot);
        M.DefMap.erase(As->ScalarSlot);
        invalidateDefsReading(M, As->ScalarSlot);
      }
    } else {
      Item.S.OutId = As->OutId;
      for (const auto &[Slot, Stride] : As->SlotStride) {
        if (Slot == M.L.Slot)
          Item.S.DstVStride += Stride;
        else
          Item.S.DstBaseTerms.push_back({Slot, Stride});
      }
    }
    attachGuard(Item, Guard, M);
    Out.push_back(std::move(Item));
    return true;
  }
  if (auto *Loop = dynamic_cast<PlanLoop *>(N)) {
    MKItem Item;
    Item.K = MKItem::Kind::Loop;
    Item.Child = Loop;
    attachGuard(Item, Guard, M);
    Out.push_back(std::move(Item));
    return true;
  }
  return false; // PlanReplicate or unknown nodes stay interpreted
}

//===----------------------------------------------------------------------===//
// Blocked-output-shape matcher
//===----------------------------------------------------------------------===//

/// Attempts to install the register/cache-blocked output engine on the
/// freshly fused nest \p MK of loop \p L (see MKBlockedEngine in the
/// header for the shape contract). Any mismatch simply leaves the nest
/// on the generic dispatch — both paths are bit-identical to the
/// interpreter, so this is purely a performance decision.
void tryInstallBlocked(PlanLoop &L, MicroKernel &MK,
                       const MKSpecializeOptions &Opts) {
  if (MK.Innermost)
    return;
  // The nest driver supplies the panel lanes: a plain Range (ssyrk's
  // dense output columns under bound lifting off) or a single sparse
  // walk with no co-walkers (ssyrk's annihilation-driven column walk —
  // the panel variable then takes stored coordinates and the walked
  // factor reads the lane's fiber value). Either way the panel
  // variable must not advance any state the child's bind depends on
  // beyond what the lane bind re-derives (IndexVal + the nest access's
  // own position).
  if (MK.D.K != MKDriver::Kind::Range &&
      MK.D.K != MKDriver::Kind::SparseWalk)
    return;
  if (!MK.D.Cos.empty())
    return;
  // Two accepted item shapes: the direct nest [Loop] and the workspace
  // triple [Def w = <const>, Loop, dst R= w] the pipeline emits for
  // sparse-row-times-dense-panel kernels (spmm/ttm-style nests).
  const bool Ws = MK.Items.size() == 3;
  if (Ws) {
    if (MK.Items[0].K != MKItem::Kind::Def ||
        MK.Items[1].K != MKItem::Kind::Loop ||
        MK.Items[2].K != MKItem::Kind::Stmt || MK.Items[0].HasGuard ||
        MK.Items[1].HasGuard || MK.Items[2].HasGuard)
      return;
  } else if (MK.Items.size() != 1 ||
             MK.Items[0].K != MKItem::Kind::Loop ||
             MK.Items[0].HasGuard) {
    return;
  }
  PlanLoop *Ch = MK.Items[Ws ? 1 : 0].Child;
  if (!Ch || !Ch->Fused || !Ch->Fused->Innermost || Ch->Par.Enabled)
    return;
  const MicroKernel &CMK = *Ch->Fused;
  if (CMK.D.K != MKDriver::Kind::SparseWalk || !CMK.D.Cos.empty())
    return;
  // The child's fiber must be invariant across the panel variable: the
  // nest walking the same access would re-position the child driver's
  // parent per lane.
  if (MK.D.K == MKDriver::Kind::SparseWalk &&
      MK.D.AccessId == CMK.D.AccessId)
    return;
  if (CMK.Items.size() != 1 || CMK.Items[0].K != MKItem::Kind::Stmt ||
      CMK.Items[0].HasGuard)
    return;
  const MKStmt &S = CMK.Items[0].S;
  auto B = std::make_unique<MKBlockedEngine>();
  int64_t PS = 0;
  std::vector<std::pair<unsigned, int64_t>> InvTerms;
  if (Ws) {
    // Workspace triple: `w` seeded from a literal, reduced by the
    // child per element, folded into a `u`-strided cell once per lane.
    const MKStmt &Def = MK.Items[0].S, &Fin = MK.Items[2].S;
    if (Def.Factors.size() != 1 ||
        Def.Factors[0].K != MKOperand::Kind::Const)
      return;
    if (!S.ScalarDst || S.ScalarSlot != Def.ScalarSlot)
      return;
    if (Fin.ScalarDst || Fin.Factors.size() != 1 ||
        Fin.Factors[0].K != MKOperand::Kind::Scalar ||
        Fin.Factors[0].Slot != Def.ScalarSlot)
      return;
    InvTerms = Fin.DstBaseTerms;
    PS = Fin.DstVStride; // the final store's loop variable is `u`
    if (PS == 0)
      return; // lanes must reach distinct cells
    B->Mode = MKBlockedEngine::BMode::Workspace;
    B->WsSlot = Def.ScalarSlot;
    B->WsInit = Def.Factors[0].Lit;
    B->FinalReduce = Fin.Reduce;
    B->OutId = Fin.OutId;
  } else {
    if (S.ScalarDst)
      return;
    // Destination: the nest variable `u` must stride a dense output
    // mode (the panel stride), and lanes must write provably disjoint
    // cells — the child driver's span under one lane may not reach the
    // next lane — so visiting elements panel-by-panel cannot reorder
    // any per-cell reduction.
    for (const auto &[Slot, Stride] : S.DstBaseTerms) {
      if (Slot == L.Slot)
        PS += Stride;
      else
        InvTerms.push_back({Slot, Stride});
    }
    if (PS <= 0 || S.DstVStride < 0)
      return;
    if (S.DstVStride > 0 && S.DstVStride * (CMK.D.Dim - 1) >= PS)
      return;
    B->Mode = S.DstVStride == 0 ? MKBlockedEngine::BMode::Accum
                                : MKBlockedEngine::BMode::Stream;
    B->OutId = S.OutId;
  }
  for (const MKOperand &Op : S.Factors) {
    MKBlockedEngine::FClass FC = MKBlockedEngine::FClass::LaneImm;
    switch (Op.K) {
    case MKOperand::Kind::Const:
    case MKOperand::Kind::Walked:
      break; // invariant in the child driver: binds once per lane
    case MKOperand::Kind::Scalar:
      if (Op.Live)
        return; // unreachable with one statement; stay conservative
      break;
    case MKOperand::Kind::Driver:
      FC = MKBlockedEngine::FClass::Driver;
      break;
    case MKOperand::Kind::CoDriver:
      return; // the accepted driver has no co-walkers
    case MKOperand::Kind::Dense:
      // A dense factor reading an output array would observe the
      // loop's own stores, and the panel visit order could then change
      // what it reads. Outputs are never inputs in the einsums the
      // pipeline produces, but decline rather than assume.
      if (Opts.OutputTensors)
        for (Tensor *T : *Opts.OutputTensors)
          if (T->valsData() == Op.Arr)
            return;
      if (Op.VStride != 0)
        FC = MKBlockedEngine::FClass::LaneDense;
      break;
    case MKOperand::Kind::SparseLoad:
      // The access must be row-invariant (no level slot names the
      // child variable): it then resolves once per panel lane instead
      // of once per element — the blocked engine's main arithmetic
      // saving on ssyrk, whose A[j,k] factor the unblocked engine
      // re-evaluates for every stored element of every column.
      for (unsigned LvSlot : Op.LevelSlots)
        if (LvSlot == CMK.Slot)
          return;
      ++B->SparseLoadFactors;
      break;
    case MKOperand::Kind::Lut:
      if (Op.LutDynamic)
        return; // bits mention the child variable
      break;
    }
    B->Classes.push_back(FC);
  }
  B->USlot = L.Slot;
  B->Child = Ch;
  B->ChildSlot = CMK.Slot;
  B->Nest = MK.D;
  B->D = CMK.D;
  B->Combine = S.Combine;
  B->ElemReduce = S.Reduce;
  B->PanelStride = PS;
  B->DstVStride = B->Mode == MKBlockedEngine::BMode::Stream
                      ? S.DstVStride
                      : 0;
  B->DstInvTerms = std::move(InvTerms);
  B->Factors = S.Factors;
  // Width: explicit option clamped to the engine's lane arrays, or
  // chosen from the panel mode's extent (narrow modes take 4-wide
  // panels; everything else 8). Values and counters are width-independent.
  const unsigned W =
      Opts.BlockWidth
          ? std::min(Opts.BlockWidth, MKBlockedEngine::MaxWidth)
          : (L.Extent >= 8 ? 8u : 4u);
  B->Width = std::max(1u, W);
  const bool MulAdd =
      (S.Factors.size() == 1 || S.Combine == OpKind::Mul) &&
      S.Reduce == OpKind::Add;
  if (MulAdd && S.Factors.size() == 2 &&
      B->Classes[0] == MKBlockedEngine::FClass::Driver) {
    if (B->Mode == MKBlockedEngine::BMode::Stream &&
        B->Classes[1] == MKBlockedEngine::FClass::LaneImm)
      B->FastPath = MKBlockedEngine::Fast::Axpy2;
    else if (B->Mode != MKBlockedEngine::BMode::Stream &&
             B->Classes[1] == MKBlockedEngine::FClass::LaneDense)
      B->FastPath = MKBlockedEngine::Fast::Accum2;
  }
  // Task-boundary panel alignment only means something when lanes are
  // coordinates (Range nests); a sparse nest's lanes are fiber entries.
  if (MK.D.K == MKDriver::Kind::Range)
    L.BlockAlign = B->Width;
  MK.Blocked = std::move(B);
}

} // namespace

bool specializeLoop(PlanLoop &L, const std::vector<AccessState> &Accesses,
                    const MKSpecializeOptions &Opts) {
  MatchState M{L, Accesses, MKDriver{}, false, {}, {}};
  if (!buildDriver(M))
    return false;
  M.Nest = containsLoop(L.Body.get());
  std::vector<MKItem> Items;
  if (!gatherItems(L.Body.get(), std::nullopt, M, Items))
    return false;
  if (Items.empty() || Items.size() > MicroKernel::MaxItems)
    return false;
  // Innermost loops prebind Scalar factors once per execution, so no
  // prebound Scalar factor may name a slot any item of this loop
  // writes. Reads *after* a write were resolved during gathering
  // (substituted or marked live); this final pass catches reads that
  // precede a later write, where the interpreter observes the previous
  // iteration's value (loop-carried scalar dependence) — those become
  // live reads too, which is exactly the interpreter's semantics.
  if (!M.Nest)
    for (MKItem &I : Items)
      for (MKOperand &Op : I.S.Factors)
        if (Op.K == MKOperand::Kind::Scalar && M.Written.count(Op.Slot))
          Op.Live = true;
  bool HasStmt = false, HasFusedChild = false, HasLoop = false;
  for (const MKItem &I : Items) {
    HasStmt |= I.K == MKItem::Kind::Stmt;
    if (I.K == MKItem::Kind::Loop) {
      HasLoop = true;
      HasFusedChild |= I.Child->Fused != nullptr;
    }
  }
  // Only fuse where it pays: a leaf loop must do real assignments, and
  // a nest must contain at least one already-fused core (otherwise the
  // generic dispatch is just as good and the specialization counter
  // would overstate coverage).
  if (!HasLoop && !HasStmt)
    return false;
  if (HasLoop && !HasFusedChild && !HasStmt)
    return false;
  // Hand out prebind slots for the innermost engine's bind-time array;
  // operands past the cap simply resolve every level per element (same
  // values, same counters).
  if (!HasLoop) {
    unsigned NPre = 0;
    for (MKItem &I : Items)
      for (MKOperand &Op : I.S.Factors)
        if (Op.K == MKOperand::Kind::SparseLoad && Op.PrebindLevels) {
          if (NPre < MicroKernel::MaxPrebinds)
            Op.PrebindIdx = NPre++;
          else
            Op.PrebindLevels = 0;
        }
  } else {
    // The nest engine evaluates operands fresh per element; prebinding
    // is the innermost engine's contract only.
    for (MKItem &I : Items)
      for (MKOperand &Op : I.S.Factors)
        Op.PrebindLevels = 0;
  }
  auto MK = std::make_unique<MicroKernel>();
  MK->Slot = L.Slot;
  MK->Innermost = !HasLoop;
  MK->D = M.D;
  MK->Items = std::move(Items);
  L.Fused = std::move(MK);
  if (Opts.EnableBlocking)
    tryInstallBlocked(L, *L.Fused, Opts);
  return true;
}

//===----------------------------------------------------------------------===//
// Execution: shared driver iteration
//===----------------------------------------------------------------------===//

namespace {

/// Per-run co-walker state: parent position, the per-execution alias
/// decision, and the forward finger for compressed kinds. Plain
/// aggregate with no default initialization — binding runs once per
/// *row* of a nest, and bindDriver writes exactly the entries the
/// driver's co-walker list uses (unused slots are never read).
struct CoBind {
  int64_t Parent;
  bool Aliased;
  int64_t K, E;
};

/// Per-run driver state (the level arrays themselves are cached in the
/// MKDriver at specialization; only positions resolve per run).
struct DriverBind {
  int64_t Parent = 0;
  CoBind Co[MKDriver::MaxCoWalkers];
};

DriverBind bindDriver(ExecCtx &C, const MKDriver &D) {
  DriverBind B;
  if (D.K == MKDriver::Kind::Range)
    return B;
  B.Parent = C.Accesses[D.AccessId].Pos[D.Level];
  for (size_t I = 0; I < D.Cos.size(); ++I) {
    const MKCoWalker &Co = D.Cos[I];
    CoBind &CB = B.Co[I];
    CB.Parent = C.Accesses[Co.AccessId].Pos[Co.Level];
    // Mirror the interpreter's per-execution aliasing test: the same
    // fiber walked twice advances in lockstep instead of re-locating.
    CB.Aliased = Co.SameFiber && CB.Parent == B.Parent;
    if (!CB.Aliased && (Co.Kind == LevelKind::Sparse ||
                        Co.Kind == LevelKind::RunLength)) {
      CB.K = Co.Ptr[CB.Parent];
      CB.E = Co.Ptr[CB.Parent + 1];
    } else {
      CB.K = CB.E = 0;
    }
  }
  return B;
}

/// Per-execution iteration tallies, flushed into the context counters
/// once per loop run. Visited counts driver candidates; CoMatched[i]
/// counts candidates where co-walkers 0..i all matched — exactly the
/// points where the interpreter's Step charges walker i's SparseRead.
struct IterCounts {
  uint64_t Visited = 0;
  uint64_t CoMatched[MKDriver::MaxCoWalkers] = {};
};

/// Iterates the fused loop's elements, invoking Body(v, k1, coPos) for
/// every intersection element, in exactly the interpreter's order.
/// UpdateState additionally maintains IndexVal and walker positions for
/// nested consumers (positions are written as each walker resolves —
/// including for candidates a later co-walker rejects — mirroring the
/// interpreter's Step). Instantiated separately for loops without
/// co-walkers (WithCos = false) so the plain driver walks keep the
/// tight pre-intersection codegen — the resolution machinery folds
/// away entirely.
template <bool WithCos, typename Fn>
void iterateDriverImpl(ExecCtx &C, const MKDriver &D, unsigned Slot,
                       DriverBind &B, int64_t Lo, int64_t Hi,
                       bool UpdateState, IterCounts &N, Fn &&Body) {
  const size_t NCo = WithCos ? D.Cos.size() : 0;
  int64_t CoPos[MKDriver::MaxCoWalkers];
  CoPos[0] = 0; // factors without a co stride index slot 0

  // Resolves every co-walker for candidate (V, K1) in registration
  // order. Coordinates arrive in ascending order, so compressed
  // co-walkers are forward fingers (multi-finger merge): a sparse
  // finger catches up by galloping then bisecting the overshoot
  // window, a RunLength finger steps run by run. Returns false when
  // the candidate is missing from the intersection.
  auto ResolveCos = [&](int64_t V, int64_t K1) -> bool {
    for (size_t I = 0; I < NCo; ++I) {
      const MKCoWalker &Co = D.Cos[I];
      CoBind &CB = B.Co[I];
      int64_t P = 0; // every level kind assigns; init pacifies -Wmaybe-
      if (CB.Aliased) {
        P = K1;
      } else {
        switch (Co.Kind) {
        case LevelKind::Dense:
          P = CB.Parent * Co.Dim + V;
          break;
        case LevelKind::Sparse: {
          int64_t K = CB.K;
          const int64_t *Crd = Co.Crd;
          if (K < CB.E && Crd[K] < V) {
            int64_t Step = 1;
            while (K + Step < CB.E && Crd[K + Step] < V)
              Step <<= 1;
            const int64_t HiB = std::min(K + Step + 1, CB.E);
            K = std::lower_bound(Crd + K + 1, Crd + HiB, V) - Crd;
          }
          CB.K = K;
          if (K >= CB.E || Crd[K] != V)
            return false;
          P = K;
          break;
        }
        case LevelKind::RunLength: {
          int64_t K = CB.K;
          const int64_t *RunEnd = Co.RunEnd;
          while (K < CB.E && RunEnd[K] <= V)
            ++K;
          CB.K = K;
          if (K >= CB.E)
            return false; // past the last run (V outside the extent)
          P = K;
          break;
        }
        case LevelKind::Banded: {
          const int64_t BLo = Co.BLo[CB.Parent];
          if (V < BLo || V >= Co.BHi[CB.Parent])
            return false;
          P = Co.BOff[CB.Parent] + (V - BLo);
          break;
        }
        }
      }
      CoPos[I] = P;
      if (UpdateState)
        C.Accesses[Co.AccessId].Pos[Co.Level + 1] = P;
      ++N.CoMatched[I];
    }
    return true;
  };

  auto Emit = [&](int64_t V, int64_t K1) {
    ++N.Visited;
    if (UpdateState)
      C.Accesses[D.AccessId].Pos[D.Level + 1] = K1;
    if constexpr (WithCos) {
      if (NCo && !ResolveCos(V, K1))
        return;
    }
    if (UpdateState)
      C.IndexVal[Slot] = V;
    // The first co position travels as a scalar so bound loads keep
    // register addressing; without co-walkers it is a literal 0 the
    // compiler folds out of the strides entirely.
    const int64_t K2 = WithCos ? CoPos[0] : 0;
    Body(V, K1, K2, static_cast<const int64_t *>(CoPos));
  };

  switch (D.K) {
  case MKDriver::Kind::Range:
    for (int64_t V = Lo; V <= Hi; ++V) {
      ++N.Visited;
      if (UpdateState)
        C.IndexVal[Slot] = V;
      Body(V, 0, 0, static_cast<const int64_t *>(CoPos));
    }
    return;
  case MKDriver::Kind::DenseWalk: {
    const int64_t Base = B.Parent * D.Dim;
    for (int64_t V = Lo; V <= Hi; ++V)
      Emit(V, Base + V);
    return;
  }
  case MKDriver::Kind::SparseWalk: {
    int64_t K = D.Ptr[B.Parent], E = D.Ptr[B.Parent + 1];
    const int64_t *Crd = D.Crd;
    if (Lo > 0)
      K = std::lower_bound(Crd + K, Crd + E, Lo) - Crd;
    for (; K < E; ++K) {
      const int64_t V = Crd[K];
      if (V > Hi)
        break;
      Emit(V, K);
    }
    return;
  }
  case MKDriver::Kind::RunLengthWalk: {
    // Runs tile [0, Dim): every coordinate in [Lo, Hi] is visited, with
    // the run index as position — the same expansion order as the
    // generic interpreter.
    int64_t Start = 0;
    const int64_t KE = D.Ptr[B.Parent + 1];
    for (int64_t K = D.Ptr[B.Parent]; K < KE; ++K) {
      const int64_t End = D.RunEnd[K];
      for (int64_t V = std::max(Start, Lo); V < End; ++V) {
        if (V > Hi)
          return;
        Emit(V, K);
      }
      Start = End;
      if (Start > Hi)
        return;
    }
    return;
  }
  case MKDriver::Kind::BandedWalk: {
    const int64_t BB = std::max(Lo, D.BLo[B.Parent]);
    const int64_t BE = std::min(Hi, D.BHi[B.Parent] - 1);
    for (int64_t V = BB; V <= BE; ++V)
      Emit(V, D.BOff[B.Parent] + (V - D.BLo[B.Parent]));
    return;
  }
  }
}

/// Dispatches to the co-walker-free or intersecting instantiation.
template <typename Fn>
inline void iterateDriver(ExecCtx &C, const MKDriver &D, unsigned Slot,
                          DriverBind &B, int64_t Lo, int64_t Hi,
                          bool UpdateState, IterCounts &N, Fn &&Body) {
  if (D.Cos.empty())
    iterateDriverImpl<false>(C, D, Slot, B, Lo, Hi, UpdateState, N,
                             std::forward<Fn>(Body));
  else
    iterateDriverImpl<true>(C, D, Slot, B, Lo, Hi, UpdateState, N,
                            std::forward<Fn>(Body));
}

/// Flushes the iteration's SparseRead tallies: the driver charges per
/// candidate, co-walker i per candidate it (and every co before it)
/// matched — exactly the interpreter's Step accounting.
inline void flushIterReads(ExecCtx &C, const MKDriver &D,
                           const IterCounts &N) {
  if (D.CountReads)
    C.Local.SparseReads += N.Visited;
  for (size_t I = 0; I < D.Cos.size(); ++I)
    if (D.Cos[I].CountReads)
      C.Local.SparseReads += N.CoMatched[I];
}

//===----------------------------------------------------------------------===//
// Execution: operand evaluation (nest items and contextual statements)
//===----------------------------------------------------------------------===//

inline double evalOperand(ExecCtx &C, const MKDriver &D,
                          const MKOperand &Op, int64_t V, int64_t K1,
                          const int64_t *CoPos, const int64_t *PreBase) {
  switch (Op.K) {
  case MKOperand::Kind::Const:
    return Op.Lit;
  case MKOperand::Kind::Scalar:
    return C.ScalarVal[Op.Slot];
  case MKOperand::Kind::Walked: {
    const AccessState &A = C.Accesses[Op.Slot];
    return A.T->val(A.Pos[A.T->order()]);
  }
  case MKOperand::Kind::Dense: {
    int64_t Pos = Op.VStride * V;
    for (const auto &[Slot, Stride] : Op.BaseTerms)
      Pos += C.IndexVal[Slot] * Stride;
    return Op.Arr[Pos];
  }
  case MKOperand::Kind::Driver:
    return D.Vals[K1];
  case MKOperand::Kind::CoDriver:
    return D.Cos[Op.Slot].Vals[CoPos[Op.Slot]];
  case MKOperand::Kind::SparseLoad:
    // Same counter and cursor discipline as the expression VM's
    // SparseLoad instruction: one SparseRead per evaluation, locator
    // state chained through the context. A prebound row-invariant
    // prefix resumes from its cached position (or yields the fill
    // outright when the prefix is absent) — same value, same counter.
    if (C.CountersOn)
      ++C.Local.SparseReads;
    if (PreBase && Op.PrebindLevels) {
      const int64_t Base = PreBase[Op.PrebindIdx];
      if (Base < 0)
        return Op.Fill;
      return sparseLoadValueFrom(C, Op.Slot, Op.LevelSlots,
                                 Op.PrebindLevels, Base);
    }
    return sparseLoadValue(C, Op.Slot, Op.LevelSlots);
  case MKOperand::Kind::Lut: {
    // Same mask evaluation as the expression VM's Lut instruction (no
    // counter contribution there either).
    unsigned Mask = 0;
    for (size_t Bit = 0; Bit < Op.LutBits.size(); ++Bit)
      if (Op.LutBits[Bit].eval(C))
        Mask |= 1u << Bit;
    return Op.LutTable[Mask];
  }
  }
  return 0;
}

inline double foldFactors(ExecCtx &C, const MKDriver &D, const MKStmt &S,
                          int64_t V, int64_t K1, const int64_t *CoPos,
                          const int64_t *PreBase) {
  double Acc = evalOperand(C, D, S.Factors[0], V, K1, CoPos, PreBase);
  for (size_t I = 1; I < S.Factors.size(); ++I)
    Acc = evalOp(S.Combine, Acc,
                 evalOperand(C, D, S.Factors[I], V, K1, CoPos, PreBase));
  return Acc;
}

} // namespace

//===----------------------------------------------------------------------===//
// Execution: nest engine
//===----------------------------------------------------------------------===//

void MicroKernel::runNest(ExecCtx &C, int64_t Lo, int64_t Hi) {
  DriverBind B = bindDriver(C, D);
  IterCounts N;
  iterateDriver(
      C, D, Slot, B, Lo, Hi, /*UpdateState=*/true, N,
      [&](int64_t V, int64_t K1, int64_t, const int64_t *CoPos) {
        // Cancellation drains the remaining driver elements without
        // executing them; the aborted run's partial output is discarded
        // by the executor, so skipping is safe.
        if (checkpointStop(C))
          return;
        for (MKItem &Item : Items) {
          if (Item.HasGuard && !Item.Guard.eval(C))
            continue;
          switch (Item.K) {
          case MKItem::Kind::Def:
            C.ScalarVal[Item.S.ScalarSlot] =
                foldFactors(C, D, Item.S, V, K1, CoPos, nullptr);
            if (C.CountersOn)
              C.Local.ScalarOps += Item.S.Factors.size() - 1;
            break;
          case MKItem::Kind::Stmt: {
            const MKStmt &S = Item.S;
            const double Val = foldFactors(C, D, S, V, K1, CoPos, nullptr);
            if (S.ScalarDst) {
              double &Dst = C.ScalarVal[S.ScalarSlot];
              Dst = S.Reduce ? evalOp(*S.Reduce, Dst, Val) : Val;
            } else {
              int64_t Pos = S.DstVStride * V;
              for (const auto &[TSlot, Stride] : S.DstBaseTerms)
                Pos += C.IndexVal[TSlot] * Stride;
              double &Dst = C.OutPtr[S.OutId][Pos];
              Dst = S.Reduce ? evalOp(*S.Reduce, Dst, Val) : Val;
            }
            if (C.CountersOn) {
              C.Local.ScalarOps += S.Factors.size() - 1;
              ++C.Local.Reductions;
              if (!S.ScalarDst)
                ++C.Local.OutputWrites;
            }
            break;
          }
          case MKItem::Kind::Loop:
            Item.Child->exec(C);
            break;
          }
        }
      });
  if (C.CountersOn)
    flushIterReads(C, D, N);
}

//===----------------------------------------------------------------------===//
// Execution: innermost engine (prebound)
//===----------------------------------------------------------------------===//

namespace {

/// One prebound value source, loaded branchlessly as
/// P[SV * v + SK1 * k1 + SK2 * k2]: dense-affine factors set SV,
/// driver/first-co factors set SK1/SK2 with P at the value array, and
/// immediates (literals, bind-time scalar/walked/lut reads) point P at
/// their own Imm slot with all strides zero. k2 is the *first*
/// co-walker's matched position — statements reading a later
/// co-walker's value run through the contextual engine instead, so the
/// hot bound loads keep their three-term register addressing. Plain
/// aggregate with no default initialization: binding runs once per
/// loop execution, often once per *row* of a nest, so constructing
/// this state must cost nothing beyond the fields actually written.
struct BoundVal {
  const double *P;
  int64_t SV, SK1, SK2;
  double Imm;
};

struct BoundStmt {
  BoundVal F[MicroKernel::MaxFactors];
  unsigned NF;
  /// 0: fast tensor (Mul-fold, Add-reduce), 1: fast scalar accumulate
  /// (Mul-fold, Add-reduce), 2: def store, 3: general (any ops, guard),
  /// 4: contextual (factors evaluated through the execution context:
  /// SparseLoad operands, live scalar reads, dynamic Luts).
  uint8_t Kind;
  OpKind Combine;
  int8_t Reduce; // -1: overwrite
  uint8_t Mode;  // 0: def store; 1: scalar dst; 2: tensor dst
  double *Dst;
  int64_t DstS;
  const CCond *Guard;     // dynamic guard, evaluated per element
  const MKStmt *Src;      // contextual: the statement's operand list
  uint64_t Execs;
  unsigned Ops; // ScalarOps contributed per execution
};

inline double loadBound(const BoundVal &F, int64_t V, int64_t K1,
                        int64_t K2) {
  return F.P[F.SV * V + F.SK1 * K1 + F.SK2 * K2];
}

inline double foldBound(const BoundStmt &S, int64_t V, int64_t K1,
                        int64_t K2) {
  double Acc = loadBound(S.F[0], V, K1, K2);
  switch (S.NF) {
  case 1:
    break;
  case 2:
    Acc *= loadBound(S.F[1], V, K1, K2);
    break;
  case 3:
    Acc *= loadBound(S.F[1], V, K1, K2);
    Acc *= loadBound(S.F[2], V, K1, K2);
    break;
  default:
    for (unsigned I = 1; I < S.NF; ++I)
      Acc *= loadBound(S.F[I], V, K1, K2);
    break;
  }
  return Acc;
}

/// Executes one bound statement for one element. Instantiated twice:
/// WithCtx = false omits the contextual engine entirely (no statement
/// of the loop is Kind 4), keeping the common all-prebound loops on
/// the slim pre-PR4 codegen — the extra operand machinery only costs
/// where a contextual statement actually exists.
template <bool WithCtx>
inline void execBound(ExecCtx &C, const MKDriver &D, BoundStmt &S,
                      int64_t V, int64_t K1, int64_t K2,
                      const int64_t *Co, const int64_t *PreBase) {
  switch (S.Kind) {
  case 0: // tensor dst, Mul-fold, Add-reduce (the sparse axpy core)
    S.Dst[S.DstS * V] += foldBound(S, V, K1, K2);
    break;
  case 1: // scalar accumulate, Mul-fold, Add-reduce (the dot core)
    *S.Dst += foldBound(S, V, K1, K2);
    break;
  case 2: // scalar def store
    *S.Dst = foldBound(S, V, K1, K2);
    break;
  case 4: {
    // Contextual: operands evaluated through the context per element
    // (SparseLoad chains the locator from its prebound row prefix;
    // live scalars read current ScalarVal; dynamic Luts test the
    // current IndexVal; CoDriver reads of later co-walkers index the
    // full position array), in the exact factor order of the VM.
    if constexpr (WithCtx) {
      if (S.Guard && !S.Guard->eval(C))
        return;
      const MKStmt &Src = *S.Src;
      double Acc = foldFactors(C, D, Src, V, K1, Co, PreBase);
      if (S.Mode == 0) {
        *S.Dst = Acc;
        ++S.Execs;
        return;
      }
      double &Dst = S.Mode == 1 ? *S.Dst : S.Dst[S.DstS * V];
      Dst = S.Reduce < 0
                ? Acc
                : evalOp(static_cast<OpKind>(S.Reduce), Dst, Acc);
      ++S.Execs;
    }
    return;
  }
  default: {
    if (S.Guard && !S.Guard->eval(C))
      return;
    double Acc = loadBound(S.F[0], V, K1, K2);
    for (unsigned I = 1; I < S.NF; ++I)
      Acc = evalOp(S.Combine, Acc, loadBound(S.F[I], V, K1, K2));
    if (S.Mode == 0) {
      *S.Dst = Acc;
      ++S.Execs;
      return;
    }
    double &Dst = S.Mode == 1 ? *S.Dst : S.Dst[S.DstS * V];
    Dst = S.Reduce < 0
              ? Acc
              : evalOp(static_cast<OpKind>(S.Reduce), Dst, Acc);
    ++S.Execs;
    return;
  }
  }
  ++S.Execs;
}

} // namespace

void MicroKernel::runInner(ExecCtx &C, int64_t Lo, int64_t Hi) {
  DriverBind B = bindDriver(C, D);

  // Bind: resolve invariant guards and operand bases against the
  // current context. All bind state is on the stack so one MicroKernel
  // can run from many task contexts concurrently; the array is left
  // uninitialized and every used field written explicitly, because a
  // nest re-binds its inner loop once per row. Row-invariant SparseLoad
  // prefixes resolve here too (per-row prebinding): each task range
  // re-derives them from its own context, so parallel splits stay
  // bit-reproducible.
  BoundStmt BS[MaxItems];
  int64_t PreBase[MaxPrebinds];
  unsigned NS = 0;
  bool AnyDynamic = false;
  for (MKItem &Item : Items) {
    if (Item.HasGuard && !Item.GuardDynamic && !Item.Guard.eval(C))
      continue; // invariant guard: decided once per loop execution
    BoundStmt &S = BS[NS];
    const MKStmt &Src = Item.S;
    S.NF = static_cast<unsigned>(Src.Factors.size());
    S.Ops = S.NF - 1;
    S.Combine = Src.Combine;
    S.Execs = 0;
    S.Guard = nullptr;
    S.Src = &Item.S;
    S.DstS = 0;
    bool MulFold = S.NF == 1 || Src.Combine == OpKind::Mul;
    // Statements with operands that cannot prebind (SparseLoad, live
    // scalar reads, dynamic Luts) run through the contextual engine,
    // which evaluates factors from the execution context per element.
    // Reads of a co-walker past the first go contextual too: the bound
    // loads keep a single scalar co position (register addressing on
    // the hot paths), and multi-co statements are rare.
    bool Contextual = false;
    for (const MKOperand &Op : Src.Factors)
      Contextual |= contextualOperand(Op) ||
                    (Op.K == MKOperand::Kind::CoDriver && Op.Slot > 0);
    if (Contextual) {
      // Per-row prebinding: resolve each SparseLoad's row-invariant
      // level prefix once for this execution. -1 marks an absent
      // prefix (the whole row reads as fill). Uses plain locate — the
      // hinted cursors are a per-element performance device and never
      // change results.
      for (const MKOperand &Op : Src.Factors)
        if (Op.K == MKOperand::Kind::SparseLoad && Op.PrebindLevels) {
          const AccessState &A = C.Accesses[Op.Slot];
          int64_t Pos = 0;
          for (unsigned L = 0; L < Op.PrebindLevels && Pos >= 0; ++L)
            Pos = A.T->locate(L, Pos, C.IndexVal[Op.LevelSlots[L]]);
          PreBase[Op.PrebindIdx] = Pos;
        }
    }
    for (unsigned I = 0; !Contextual && I < S.NF; ++I) {
      const MKOperand &Op = Src.Factors[I];
      BoundVal &F = S.F[I];
      F.SV = F.SK1 = F.SK2 = 0;
      switch (Op.K) {
      case MKOperand::Kind::Const:
        F.Imm = Op.Lit;
        F.P = &F.Imm;
        break;
      case MKOperand::Kind::Scalar:
        F.Imm = C.ScalarVal[Op.Slot];
        F.P = &F.Imm;
        break;
      case MKOperand::Kind::Walked: {
        const AccessState &A = C.Accesses[Op.Slot];
        F.Imm = A.T->val(A.Pos[A.T->order()]);
        F.P = &F.Imm;
        break;
      }
      case MKOperand::Kind::Dense: {
        int64_t Base = 0;
        for (const auto &[TSlot, Stride] : Op.BaseTerms)
          Base += C.IndexVal[TSlot] * Stride;
        F.P = Op.Arr + Base;
        F.SV = Op.VStride;
        break;
      }
      case MKOperand::Kind::Driver:
        F.P = D.Vals;
        F.SK1 = 1;
        break;
      case MKOperand::Kind::CoDriver:
        // Only the first co-walker binds (Slot > 0 forced contextual
        // above); its position is the K2 every bound load receives.
        F.P = D.Cos[0].Vals;
        F.SK2 = 1;
        break;
      case MKOperand::Kind::Lut: {
        // Bits never mention the loop variable here (dynamic Luts are
        // contextual), so the table entry is a bind-time constant.
        unsigned Mask = 0;
        for (size_t Bit = 0; Bit < Op.LutBits.size(); ++Bit)
          if (Op.LutBits[Bit].eval(C))
            Mask |= 1u << Bit;
        F.Imm = Op.LutTable[Mask];
        F.P = &F.Imm;
        break;
      }
      case MKOperand::Kind::SparseLoad:
        break; // unreachable: Contextual statements skip prebinding
      }
    }
    if (Item.K == MKItem::Kind::Def) {
      S.Mode = 0;
      S.Dst = &C.ScalarVal[Src.ScalarSlot];
      S.Reduce = -1;
    } else if (Src.ScalarDst) {
      S.Mode = 1;
      S.Dst = &C.ScalarVal[Src.ScalarSlot];
      S.Reduce = Src.Reduce ? static_cast<int8_t>(*Src.Reduce) : -1;
    } else {
      S.Mode = 2;
      int64_t Base = 0;
      for (const auto &[TSlot, Stride] : Src.DstBaseTerms)
        Base += C.IndexVal[TSlot] * Stride;
      S.Dst = C.OutPtr[Src.OutId] + Base;
      S.DstS = Src.DstVStride;
      S.Reduce = Src.Reduce ? static_cast<int8_t>(*Src.Reduce) : -1;
    }
    if (Item.HasGuard && Item.GuardDynamic) {
      S.Guard = &Item.Guard;
      AnyDynamic = true;
    }
    // Fast-path selection: the Mul-fold / Add-reduce cores the paper
    // kernels hit; everything else takes the general switch, and
    // context-dependent operands take the contextual engine (which also
    // needs IndexVal maintained for its level-slot and lut-bit
    // lookups).
    const bool AddReduce = S.Reduce == static_cast<int8_t>(OpKind::Add);
    if (Contextual) {
      S.Kind = 4;
      AnyDynamic = true;
    } else if (!S.Guard && MulFold && AddReduce && S.Mode == 2)
      S.Kind = 0;
    else if (!S.Guard && MulFold && AddReduce && S.Mode == 1)
      S.Kind = 1;
    else if (!S.Guard && MulFold && S.Mode == 0)
      S.Kind = 2;
    else
      S.Kind = 3;
    ++NS;
  }

  IterCounts N;

  // Dedicated loops for the single-statement sparse axpy / dot shapes:
  // the driver value times one coordinate-indexed or invariant factor,
  // optionally followed by up to two loop-invariant factors (ssyrk's
  // triangle kernel, plain SpMV rows, and syprd's
  // `w += (A.val * x[i]) * x[j] * 2` chain). Same fold and iteration
  // order as the generic path below — the invariant tails still load
  // per element, in chain position — just with the per-stmt dispatch
  // peeled away.
  if (NS == 1 && !AnyDynamic && D.K == MKDriver::Kind::SparseWalk &&
      D.Cos.empty() && BS[0].NF >= 2 && BS[0].NF <= 4 &&
      (BS[0].Kind == 0 || BS[0].Kind == 1)) {
    const BoundVal &F0 = BS[0].F[0], &F1 = BS[0].F[1];
    bool TailInvariant = true;
    for (unsigned I = 2; I < BS[0].NF; ++I) {
      const BoundVal &FI = BS[0].F[I];
      TailInvariant &= FI.SV == 0 && FI.SK1 == 0 && FI.SK2 == 0;
    }
    if (TailInvariant && F0.SV == 0 && F0.SK1 == 1 && F0.SK2 == 0 &&
        F1.SK1 == 0 && F1.SK2 == 0) {
      const double *DV = D.Vals, *P1 = F1.P;
      const int64_t S1 = F1.SV;
      const int64_t *Crd = D.Crd;
      int64_t K0 = D.Ptr[B.Parent], E = D.Ptr[B.Parent + 1];
      if (Lo > 0)
        K0 = std::lower_bound(Crd + K0, Crd + E, Lo) - Crd;
      uint64_t Cnt = 0;
      auto Drive = [&](auto &&Term) {
        if (BS[0].Kind == 0) {
          double *Dst = BS[0].Dst;
          const int64_t DS = BS[0].DstS;
          for (int64_t K = K0; K < E; ++K) {
            const int64_t V = Crd[K];
            if (V > Hi)
              break;
            Dst[DS * V] += Term(V, K);
            ++Cnt;
          }
        } else {
          double Acc = *BS[0].Dst;
          for (int64_t K = K0; K < E; ++K) {
            const int64_t V = Crd[K];
            if (V > Hi)
              break;
            Acc += Term(V, K);
            ++Cnt;
          }
          *BS[0].Dst = Acc;
        }
      };
      switch (BS[0].NF) {
      case 2:
        Drive([&](int64_t V, int64_t K) { return DV[K] * P1[S1 * V]; });
        break;
      case 3: {
        const double *P2 = BS[0].F[2].P;
        Drive([&](int64_t V, int64_t K) {
          return (DV[K] * P1[S1 * V]) * *P2;
        });
        break;
      }
      default: {
        const double *P2 = BS[0].F[2].P, *P3 = BS[0].F[3].P;
        Drive([&](int64_t V, int64_t K) {
          return ((DV[K] * P1[S1 * V]) * *P2) * *P3;
        });
        break;
      }
      }
      BS[0].Execs = Cnt;
      if (C.CountersOn) {
        if (D.CountReads)
          C.Local.SparseReads += Cnt;
        C.Local.ScalarOps += Cnt * BS[0].Ops;
        C.Local.Reductions += Cnt;
        if (BS[0].Kind == 0)
          C.Local.OutputWrites += Cnt;
      }
      return;
    }
  }

  bool AnyContextual = false;
  for (unsigned I = 0; I < NS; ++I)
    AnyContextual |= BS[I].Kind == 4;
  if (!AnyContextual)
    iterateDriver(C, D, Slot, B, Lo, Hi, /*UpdateState=*/false, N,
                  [&](int64_t V, int64_t K1, int64_t K2,
                      const int64_t *CoPos) {
                    if (AnyDynamic)
                      C.IndexVal[Slot] = V;
                    for (unsigned I = 0; I < NS; ++I)
                      execBound<false>(C, D, BS[I], V, K1, K2, CoPos,
                                       PreBase);
                  });
  else
    iterateDriver(C, D, Slot, B, Lo, Hi, /*UpdateState=*/false, N,
                  [&](int64_t V, int64_t K1, int64_t K2,
                      const int64_t *CoPos) {
                    if (AnyDynamic)
                      C.IndexVal[Slot] = V;
                    for (unsigned I = 0; I < NS; ++I)
                      execBound<true>(C, D, BS[I], V, K1, K2, CoPos,
                                      PreBase);
                  });

  // Flush counter deltas once per loop execution (the whole point: no
  // per-element flag checks or atomic traffic in the loops above).
  if (C.CountersOn) {
    flushIterReads(C, D, N);
    for (unsigned I = 0; I < NS; ++I) {
      const BoundStmt &S = BS[I];
      C.Local.ScalarOps += S.Execs * S.Ops;
      if (S.Mode != 0) {
        C.Local.Reductions += S.Execs;
        if (S.Mode == 2)
          C.Local.OutputWrites += S.Execs;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Execution: blocked output engine
//===----------------------------------------------------------------------===//

namespace {

/// Resolves one child-driver-invariant operand against the current
/// context (the caller sets IndexVal[USlot] to the lane's coordinate
/// first). SparseLoad resolution uses plain locate — cursorless, so
/// lane binds cannot disturb the shared hinted-locator state and the
/// result is independent of any cursor history — and charges nothing
/// here: the engine charges one SparseRead per element-lane execution,
/// exactly like the interpreter's per-element evaluation of the same
/// row-invariant access.
double bindLaneOperand(ExecCtx &C, const MKOperand &Op) {
  switch (Op.K) {
  case MKOperand::Kind::Const:
    return Op.Lit;
  case MKOperand::Kind::Scalar:
    return C.ScalarVal[Op.Slot];
  case MKOperand::Kind::Walked: {
    const AccessState &A = C.Accesses[Op.Slot];
    return A.T->val(A.Pos[A.T->order()]);
  }
  case MKOperand::Kind::Dense: {
    int64_t Pos = 0;
    for (const auto &[Slot, Stride] : Op.BaseTerms)
      Pos += C.IndexVal[Slot] * Stride;
    return Op.Arr[Pos];
  }
  case MKOperand::Kind::SparseLoad: {
    const AccessState &A = C.Accesses[Op.Slot];
    const unsigned Order = A.T->order();
    int64_t Pos = 0;
    for (unsigned Lv = 0; Lv < Order; ++Lv) {
      Pos = A.T->locate(Lv, Pos, C.IndexVal[Op.LevelSlots[Lv]]);
      if (Pos < 0)
        return Op.Fill;
    }
    return A.T->val(Pos);
  }
  case MKOperand::Kind::Lut: {
    unsigned Mask = 0;
    for (size_t Bit = 0; Bit < Op.LutBits.size(); ++Bit)
      if (Op.LutBits[Bit].eval(C))
        Mask |= 1u << Bit;
    return Op.LutTable[Mask];
  }
  default:
    return 0; // Driver / CoDriver never reach lane binding
  }
}

} // namespace

void MKBlockedEngine::run(ExecCtx &C, int64_t Lo, int64_t Hi) {
  const unsigned NF = static_cast<unsigned>(Factors.size());
  const int64_t Parent = C.Accesses[D.AccessId].Pos[D.Level];
  const int64_t KB = D.Ptr[Parent], KE = D.Ptr[Parent + 1];
  const int64_t *Crd = D.Crd;
  const double *DV = D.Vals;
  int64_t DstBase = 0;
  for (const auto &[Slot, Stride] : DstInvTerms)
    DstBase += C.IndexVal[Slot] * Stride;
  double *const OutArr = C.OutPtr[OutId] + DstBase;

  // Panel lane state, rebound per panel. Everything lives on the stack:
  // one engine may run from many task contexts concurrently, and each
  // task range derives its own panels.
  int64_t LaneLo[MaxWidth], LaneHi[MaxWidth];
  double *LaneDst[MaxWidth];
  double LaneVal[MicroKernel::MaxFactors][MaxWidth];
  const double *LanePtr[MicroKernel::MaxFactors][MaxWidth];
  int64_t UnionLo = 0, UnionHi = -1;

  uint64_t Panels = 0, Stores = 0, Execs = 0, Lanes = 0;

  // Binds lane Wi at panel coordinate U: per-lane child bounds (the
  // child's Lo/Hi terms may reference the panel variable — ssyrk's
  // triangle bounds do), the destination pointer, and every
  // child-invariant operand value. This replaces one full child
  // re-bind per column with one per panel, and per-element SparseLoad
  // evaluation with one locate per lane. Mirrors the generic nest's
  // per-iteration state updates (IndexVal; the caller updates the nest
  // access's position for sparse nests before calling) so walked
  // factors of the nest access read the lane's fiber value.
  auto BindLane = [&](unsigned Wi, int64_t U) {
    C.IndexVal[USlot] = U;
    ++Lanes;
    int64_t CLo = 0, CHi = Child->Extent - 1;
    for (const auto &[Slot, Delta] : Child->LoTerms)
      CLo = std::max(CLo, C.IndexVal[Slot] + Delta);
    for (const auto &[Slot, Delta] : Child->HiTerms)
      CHi = std::min(CHi, C.IndexVal[Slot] + Delta);
    LaneLo[Wi] = CLo;
    LaneHi[Wi] = CHi;
    if (CLo <= CHi) {
      UnionLo = std::min(UnionLo, CLo);
      UnionHi = std::max(UnionHi, CHi);
    }
    LaneDst[Wi] = OutArr + PanelStride * U;
    for (unsigned F = 0; F < NF; ++F) {
      switch (Classes[F]) {
      case FClass::LaneImm:
        LaneVal[F][Wi] = bindLaneOperand(C, Factors[F]);
        break;
      case FClass::LaneDense: {
        int64_t Base = 0;
        for (const auto &[Slot, Stride] : Factors[F].BaseTerms)
          Base += C.IndexVal[Slot] * Stride;
        LanePtr[F][Wi] = Factors[F].Arr + Base;
        break;
      }
      case FClass::Driver:
        break;
      }
    }
  };

  // Executes one bound panel: one shared fiber walk over the union of
  // the lane ranges; each element updates exactly the lanes whose
  // range contains it — the same element-lane set the interpreter
  // executes column by column, with each cell's contributions arriving
  // in fiber order.
  auto ExecPanel = [&](unsigned W) {
    ++Panels;
    // An all-empty panel has nothing to walk, but workspace panels
    // still owe the def + final store per lane (`w = 0; dst R= w` runs
    // even when the inner loop is empty — and R= of the identity is
    // not always a bitwise no-op, e.g. -0.0 + 0.0).
    const bool Empty = UnionLo > UnionHi;
    if (Empty && Mode != BMode::Workspace)
      return;
    int64_t K = KB;
    if (!Empty && UnionLo > 0)
      K = std::lower_bound(Crd + KB, Crd + KE, UnionLo) - Crd;

    // Lane-bound structure: identical ranges need no per-element lane
    // test at all; shared lower bounds with ascending upper bounds
    // (ssyrk's canonical triangle) keep the dead lanes a prefix that
    // only grows as the coordinates ascend.
    bool SharedLo = true, SharedHi = true, MonoHi = true;
    for (unsigned Wi = 1; Wi < W; ++Wi) {
      SharedLo &= LaneLo[Wi] == LaneLo[0];
      SharedHi &= LaneHi[Wi] == LaneHi[0];
      MonoHi &= LaneHi[Wi] >= LaneHi[Wi - 1];
    }

    if (FastPath == Fast::Axpy2) {
      // dst[lane][DS * V] += driver * per-lane-value: the ssyrk panel.
      const double *L1 = LaneVal[1];
      const int64_t DS = DstVStride;
      if (SharedLo && MonoHi) {
        unsigned WLo = 0;
        for (; K < KE; ++K) {
          const int64_t V = Crd[K];
          if (V > UnionHi)
            break;
          while (WLo < W && LaneHi[WLo] < V)
            ++WLo;
          if (WLo == W)
            break;
          const double T = DV[K];
          for (unsigned Wi = WLo; Wi < W; ++Wi)
            LaneDst[Wi][DS * V] += T * L1[Wi];
          Execs += W - WLo;
        }
      } else {
        for (; K < KE; ++K) {
          const int64_t V = Crd[K];
          if (V > UnionHi)
            break;
          const double T = DV[K];
          for (unsigned Wi = 0; Wi < W; ++Wi) {
            if (V < LaneLo[Wi] || V > LaneHi[Wi])
              continue;
            LaneDst[Wi][DS * V] += T * L1[Wi];
            ++Execs;
          }
        }
      }
    } else if (FastPath == Fast::Accum2) {
      // acc[lane] += driver * dense[lane][V]: the SpMM-style panel.
      // The accumulators live in registers across the whole walk and
      // write back once per lane — the "streaming panel store".
      double Acc[MaxWidth];
      for (unsigned Wi = 0; Wi < W; ++Wi)
        Acc[Wi] = Mode == BMode::Workspace ? WsInit : LaneDst[Wi][0];
      const double *const *P1 = LanePtr[1];
      const int64_t S1 = Factors[1].VStride;
      if (Empty) {
        // no elements: fall through to the per-lane writeback
      } else if (SharedLo && SharedHi) {
        for (; K < KE; ++K) {
          const int64_t V = Crd[K];
          if (V > UnionHi)
            break;
          const double T = DV[K];
          for (unsigned Wi = 0; Wi < W; ++Wi)
            Acc[Wi] += T * P1[Wi][S1 * V];
          Execs += W;
        }
      } else {
        for (; K < KE; ++K) {
          const int64_t V = Crd[K];
          if (V > UnionHi)
            break;
          const double T = DV[K];
          for (unsigned Wi = 0; Wi < W; ++Wi) {
            if (V < LaneLo[Wi] || V > LaneHi[Wi])
              continue;
            Acc[Wi] += T * P1[Wi][S1 * V];
            ++Execs;
          }
        }
      }
      if (Mode == BMode::Workspace) {
        for (unsigned Wi = 0; Wi < W; ++Wi) {
          double &Ds = *LaneDst[Wi];
          Ds = FinalReduce ? evalOp(*FinalReduce, Ds, Acc[Wi]) : Acc[Wi];
          // Leave the workspace slot exactly as the interpreter would
          // (its last column's accumulated value).
          C.ScalarVal[WsSlot] = Acc[Wi];
        }
      } else {
        for (unsigned Wi = 0; Wi < W; ++Wi)
          LaneDst[Wi][0] = Acc[Wi];
      }
      Stores += W;
    } else {
      // Generic panel: any accepted factor mix / combine / reduce, in
      // the exact VM fold order per element-lane. Accumulating shapes
      // still keep their lanes in registers across the walk.
      const bool Reg = Mode != BMode::Stream;
      double Acc[MaxWidth];
      if (Reg)
        for (unsigned Wi = 0; Wi < W; ++Wi)
          Acc[Wi] = Mode == BMode::Workspace ? WsInit : LaneDst[Wi][0];
      if (!Empty) {
        for (; K < KE; ++K) {
          const int64_t V = Crd[K];
          if (V > UnionHi)
            break;
          for (unsigned Wi = 0; Wi < W; ++Wi) {
            if (V < LaneLo[Wi] || V > LaneHi[Wi])
              continue;
            auto Eval = [&](unsigned F) -> double {
              switch (Classes[F]) {
              case FClass::Driver:
                return DV[K];
              case FClass::LaneDense:
                return LanePtr[F][Wi][Factors[F].VStride * V];
              case FClass::LaneImm:
                return LaneVal[F][Wi];
              }
              return 0;
            };
            double Val = Eval(0);
            for (unsigned F = 1; F < NF; ++F)
              Val = evalOp(Combine, Val, Eval(F));
            if (Reg) {
              Acc[Wi] =
                  ElemReduce ? evalOp(*ElemReduce, Acc[Wi], Val) : Val;
            } else {
              double &Dst = LaneDst[Wi][DstVStride * V];
              Dst = ElemReduce ? evalOp(*ElemReduce, Dst, Val) : Val;
            }
            ++Execs;
          }
        }
      }
      if (Mode == BMode::Workspace) {
        for (unsigned Wi = 0; Wi < W; ++Wi) {
          double &Ds = *LaneDst[Wi];
          Ds = FinalReduce ? evalOp(*FinalReduce, Ds, Acc[Wi]) : Acc[Wi];
          C.ScalarVal[WsSlot] = Acc[Wi];
        }
        Stores += W;
      } else if (Reg) {
        for (unsigned Wi = 0; Wi < W; ++Wi)
          LaneDst[Wi][0] = Acc[Wi];
        Stores += W;
      }
    }
  };

  if (Nest.K == MKDriver::Kind::Range) {
    // Panels anchor at absolute multiples of the width, so a task-range
    // split at a panel boundary reproduces exactly the panels of the
    // unsplit run (and any other split is still bit-identical: lanes
    // write disjoint cells, and each cell's contribution order is the
    // fiber order regardless of the panel partition).
    const int64_t WP = Width;
    for (int64_t P0 = Lo; P0 <= Hi;) {
      if (checkpointStop(C))
        break;
      const int64_t PEnd = std::min(Hi, (P0 / WP + 1) * WP - 1);
      const unsigned W = static_cast<unsigned>(PEnd - P0 + 1);
      UnionLo = std::numeric_limits<int64_t>::max();
      UnionHi = -1;
      for (unsigned Wi = 0; Wi < W; ++Wi)
        BindLane(Wi, P0 + Wi);
      ExecPanel(W);
      P0 = PEnd + 1;
    }
  } else {
    // Sparse nest: lanes are consecutive stored coordinates of the
    // nest fiber within [Lo, Hi]. Each lane updates the nest access's
    // position before binding, so walked factors of the nest access
    // read the lane's fiber value — the state the generic nest
    // maintains per candidate.
    AccessState &NA = C.Accesses[Nest.AccessId];
    const int64_t NParent = NA.Pos[Nest.Level];
    int64_t NK = Nest.Ptr[NParent];
    const int64_t NE = Nest.Ptr[NParent + 1];
    const int64_t *NCrd = Nest.Crd;
    if (Lo > 0)
      NK = std::lower_bound(NCrd + NK, NCrd + NE, Lo) - NCrd;
    while (NK < NE && NCrd[NK] <= Hi) {
      if (checkpointStop(C))
        break;
      unsigned W = 0;
      UnionLo = std::numeric_limits<int64_t>::max();
      UnionHi = -1;
      while (W < Width && NK + W < NE) {
        const int64_t U = NCrd[NK + W];
        if (U > Hi)
          break;
        NA.Pos[Nest.Level + 1] = NK + W;
        BindLane(W, U);
        ++W;
      }
      ExecPanel(W);
      NK += W;
    }
  }

  // Flush once per run: per element-lane charges are exactly the
  // interpreter's (driver read, row-invariant SparseLoad reads, the
  // fold's scalar ops, one reduction and one output write), plus the
  // nest driver's per-candidate read for sparse nests; the panel and
  // store tallies are the blocked engine's own telemetry.
  if (C.CountersOn) {
    C.Local.FusedBlockedPanels += Panels;
    C.Local.FusedBlockedStores +=
        Mode == BMode::Stream ? Execs : Stores;
    C.Local.SparseReads +=
        Execs * ((D.CountReads ? 1 : 0) + SparseLoadFactors);
    if (Nest.CountReads)
      C.Local.SparseReads += Lanes;
    C.Local.ScalarOps += Execs * (NF - 1);
    if (Mode == BMode::Workspace) {
      // Child reductions per element plus the final store per lane —
      // exactly the interpreter's def / loop / store accounting.
      C.Local.Reductions += Execs + Lanes;
      C.Local.OutputWrites += Lanes;
    } else {
      C.Local.Reductions += Execs;
      C.Local.OutputWrites += Execs;
    }
  }
}

void MicroKernel::run(ExecCtx &C, int64_t Lo, int64_t Hi) {
  if (C.Ctrl && C.Ctrl->stopped())
    return;
  if (Blocked) {
    Blocked->run(C, Lo, Hi);
    return;
  }
  if (Innermost)
    runInner(C, Lo, Hi);
  else
    runNest(C, Lo, Hi);
}

//===----------------------------------------------------------------------===//
// Rebind (plan-cache hit path)
//===----------------------------------------------------------------------===//
// Mirrors the baking code above: every raw pointer a kernel cached at
// specialization is re-derived from the repatched access table, so a
// rebound plan reads the replacement tensors' level arrays. Re-derivation
// is idempotent — structure was validated identical before repatching.

namespace {

void rebindCoWalker(MKCoWalker &Co, const std::vector<AccessState> &Accesses) {
  const AccessState &A = Accesses[Co.AccessId];
  const Level &Lev = A.T->level(Co.Level);
  Co.Ptr = Lev.Ptr.data();
  Co.Crd = Lev.Crd.data();
  Co.RunEnd = Lev.RunEnd.data();
  Co.BLo = Lev.Lo.data();
  Co.BHi = Lev.Hi.data();
  Co.BOff = Lev.Off.data();
  Co.Vals = A.T->valsData();
  Co.Dim = Lev.Dim;
}

void rebindDriver(MKDriver &D, const std::vector<AccessState> &Accesses) {
  if (D.K != MKDriver::Kind::Range) {
    const AccessState &A = Accesses[D.AccessId];
    const Level &Lev = A.T->level(D.Level);
    D.Ptr = Lev.Ptr.data();
    D.Crd = Lev.Crd.data();
    D.RunEnd = Lev.RunEnd.data();
    D.BLo = Lev.Lo.data();
    D.BHi = Lev.Hi.data();
    D.BOff = Lev.Off.data();
    D.Vals = A.T->valsData();
    D.Dim = Lev.Dim;
  }
  for (MKCoWalker &Co : D.Cos)
    rebindCoWalker(Co, Accesses);
}

void rebindOperand(MKOperand &Op, const RebindCtx &R) {
  if (Op.K != MKOperand::Kind::Dense || !Op.ArrT)
    return;
  auto It = R.Map.find(Op.ArrT);
  if (It == R.Map.end())
    return;
  Op.ArrT = It->second;
  Op.Arr = Op.ArrT->valsData();
}

} // namespace

void MicroKernel::rebind(const RebindCtx &R) {
  rebindDriver(D, R.Accesses);
  for (MKItem &I : Items) {
    if (I.K == MKItem::Kind::Loop)
      continue; // owned by the enclosing Body tree, which rebinds it
    for (MKOperand &Op : I.S.Factors)
      rebindOperand(Op, R);
  }
  if (Blocked) {
    rebindDriver(Blocked->Nest, R.Accesses);
    rebindDriver(Blocked->D, R.Accesses);
    for (MKOperand &Op : Blocked->Factors)
      rebindOperand(Op, R);
  }
}

void PlanLoop::rebind(const RebindCtx &R) {
  if (Body)
    Body->rebind(R);
  if (Fused)
    Fused->rebind(R);
}

} // namespace detail
} // namespace systec
