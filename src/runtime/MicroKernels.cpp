//===- runtime/MicroKernels.cpp - Fused plan micro-kernels ----*- C++ -*-===//
///
/// The PlanSpecializer matcher and the fused execution engines. See
/// MicroKernels.h for the contract: bit-identical values and exact
/// counter parity with the interpreted path, which stays as fallback
/// and oracle.
///
//===----------------------------------------------------------------------===//

#include "runtime/MicroKernels.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <set>
#include <utility>

namespace systec {
namespace detail {

namespace {

//===----------------------------------------------------------------------===//
// Condition helpers
//===----------------------------------------------------------------------===//

bool atomEq(const CAtom &X, const CAtom &Y) {
  return X.Kind == Y.Kind && X.A == Y.A && X.B == Y.B;
}

bool condEq(const CCond &X, const CCond &Y) {
  if (X.Disjuncts.size() != Y.Disjuncts.size())
    return false;
  for (size_t D = 0; D < X.Disjuncts.size(); ++D) {
    if (X.Disjuncts[D].size() != Y.Disjuncts[D].size())
      return false;
    for (size_t A = 0; A < X.Disjuncts[D].size(); ++A)
      if (!atomEq(X.Disjuncts[D][A], Y.Disjuncts[D][A]))
        return false;
  }
  return true;
}

/// Conjunction of two DNF conditions (cross product of disjuncts).
CCond condAnd(const CCond &X, const CCond &Y) {
  if (X.Disjuncts.empty())
    return Y;
  if (Y.Disjuncts.empty())
    return X;
  CCond Out;
  for (const std::vector<CAtom> &DX : X.Disjuncts)
    for (const std::vector<CAtom> &DY : Y.Disjuncts) {
      std::vector<CAtom> D = DX;
      D.insert(D.end(), DY.begin(), DY.end());
      Out.Disjuncts.push_back(std::move(D));
    }
  return Out;
}

bool condMentions(const CCond &C, unsigned Slot) {
  for (const std::vector<CAtom> &D : C.Disjuncts)
    for (const CAtom &A : D)
      if (A.A == Slot || A.B == Slot)
        return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Matcher
//===----------------------------------------------------------------------===//

struct MatchState {
  const PlanLoop &L;
  const std::vector<AccessState> &Accesses;
  MKDriver D;
  bool Nest = false;
  /// Innermost mode only: scalar slots written by items of this loop.
  /// Reads of a written slot must substitute a preceding single-factor
  /// def under a compatible guard; anything else rejects the loop
  /// (bind-time reads would otherwise observe stale values).
  std::set<unsigned> Written;
  std::map<unsigned, std::pair<MKOperand, std::optional<CCond>>> DefMap;
};

bool buildDriver(MatchState &M) {
  const auto &Ws = M.L.Walkers;
  MKDriver &D = M.D;
  if (Ws.empty()) {
    D.K = MKDriver::Kind::Range;
    return true;
  }
  if (Ws.size() > 1 + MKDriver::MaxCoWalkers)
    return false;
  const AccessState &A = M.Accesses[Ws[0].AccessId];
  const Level &Lev = A.T->level(Ws[0].Level);
  switch (Lev.Kind) {
  case LevelKind::Sparse:
    D.K = MKDriver::Kind::SparseWalk;
    break;
  case LevelKind::Dense:
    D.K = MKDriver::Kind::DenseWalk;
    break;
  case LevelKind::RunLength:
    D.K = MKDriver::Kind::RunLengthWalk;
    break;
  case LevelKind::Banded:
    D.K = MKDriver::Kind::BandedWalk;
    break;
  }
  D.AccessId = Ws[0].AccessId;
  D.Level = Ws[0].Level;
  D.Bottom = Ws[0].Bottom;
  D.CountReads = Ws[0].Bottom && A.SparseFormat;
  D.Ptr = Lev.Ptr.data();
  D.Crd = Lev.Crd.data();
  D.RunEnd = Lev.RunEnd.data();
  D.BLo = Lev.Lo.data();
  D.BHi = Lev.Hi.data();
  D.BOff = Lev.Off.data();
  D.Vals = A.T->valsData();
  D.Dim = Lev.Dim;
  for (size_t W = 1; W < Ws.size(); ++W) {
    const AccessState &B = M.Accesses[Ws[W].AccessId];
    const Level &CoLev = B.T->level(Ws[W].Level);
    MKCoWalker Co;
    Co.Kind = CoLev.Kind;
    // Mirrors the interpreter's per-element aliasing test against the
    // *driving* walker (co-walkers never alias each other there
    // either); parent equality resolves at bind time.
    Co.SameFiber = B.T == A.T && Ws[W].Level == Ws[0].Level;
    Co.AccessId = Ws[W].AccessId;
    Co.Level = Ws[W].Level;
    Co.Bottom = Ws[W].Bottom;
    Co.CountReads = Ws[W].Bottom && B.SparseFormat;
    Co.Ptr = CoLev.Ptr.data();
    Co.Crd = CoLev.Crd.data();
    Co.RunEnd = CoLev.RunEnd.data();
    Co.BLo = CoLev.Lo.data();
    Co.BHi = CoLev.Hi.data();
    Co.BOff = CoLev.Off.data();
    Co.Vals = B.T->valsData();
    Co.Dim = CoLev.Dim;
    D.Cos.push_back(std::move(Co));
  }
  return true;
}

/// Classifies one load instruction into an operand, applying the
/// written-scalar substitution rules for innermost loops.
std::optional<MKOperand>
operandFor(const VInstr &I, MatchState &M,
           const std::optional<CCond> &Guard) {
  MKOperand Op;
  switch (I.Kind) {
  case VKind::Lit:
    Op.K = MKOperand::Kind::Const;
    Op.Lit = I.Lit;
    return Op;
  case VKind::Scalar: {
    if (!M.Nest && M.Written.count(I.Id)) {
      // Prefer bind-time substitution of a preceding single-factor def
      // under a compatible guard (keeps the statement on the prebound
      // fast paths); otherwise read the slot live per element through
      // the contextual engine — exactly what the interpreter observes,
      // since the writing item runs earlier in the same iteration.
      auto It = M.DefMap.find(I.Id);
      if (It != M.DefMap.end()) {
        const std::optional<CCond> &DefGuard = It->second.second;
        if (!DefGuard || (Guard && condEq(*DefGuard, *Guard)))
          return It->second.first;
      }
      Op.K = MKOperand::Kind::Scalar;
      Op.Slot = I.Id;
      Op.Live = true;
      return Op;
    }
    Op.K = MKOperand::Kind::Scalar;
    Op.Slot = I.Id;
    return Op;
  }
  case VKind::Walked: {
    const MKDriver &D = M.D;
    if (D.K != MKDriver::Kind::Range && I.Id == D.AccessId)
      return D.Bottom ? std::optional<MKOperand>(
                            MKOperand{MKOperand::Kind::Driver})
                      : std::nullopt;
    for (size_t Co = 0; Co < D.Cos.size(); ++Co)
      if (I.Id == D.Cos[Co].AccessId) {
        if (!D.Cos[Co].Bottom)
          return std::nullopt;
        Op.K = MKOperand::Kind::CoDriver;
        Op.Slot = static_cast<unsigned>(Co);
        return Op;
      }
    Op.K = MKOperand::Kind::Walked;
    Op.Slot = I.Id; // access id, driven by an enclosing loop
    return Op;
  }
  case VKind::DenseLoad: {
    Op.K = MKOperand::Kind::Dense;
    Op.Arr = I.T->valsData();
    for (const auto &[Slot, Stride] : I.SlotStride) {
      if (Slot == M.L.Slot)
        Op.VStride += Stride;
      else
        Op.BaseTerms.push_back({Slot, Stride});
    }
    return Op;
  }
  case VKind::SparseLoad: {
    Op.K = MKOperand::Kind::SparseLoad;
    Op.Slot = I.Id;
    Op.LevelSlots = I.LevelSlots;
    Op.Fill = M.Accesses[I.Id].T->fill();
    if (!M.Nest) {
      // Per-row prebinding: the leading levels whose coordinate slots
      // are bound by enclosing loops are invariant across this loop's
      // execution, so the engine resolves them once at bind time.
      unsigned P = 0;
      while (P < Op.LevelSlots.size() && Op.LevelSlots[P] != M.L.Slot)
        ++P;
      Op.PrebindLevels = static_cast<uint8_t>(P);
    }
    return Op;
  }
  case VKind::Lut: {
    Op.K = MKOperand::Kind::Lut;
    Op.LutBits = I.LutBits;
    Op.LutTable = I.LutTable;
    for (const CAtom &A : I.LutBits)
      Op.LutDynamic |= A.A == M.L.Slot || A.B == M.L.Slot;
    return Op;
  }
  case VKind::Op:
    return std::nullopt; // Op is handled by the program classifier
  }
  return std::nullopt;
}

/// Whether \p Op must be evaluated through the execution context per
/// element (cannot prebind into a BoundVal).
bool contextualOperand(const MKOperand &Op) {
  return Op.K == MKOperand::Kind::SparseLoad ||
         (Op.K == MKOperand::Kind::Scalar && Op.Live) ||
         (Op.K == MKOperand::Kind::Lut && Op.LutDynamic);
}

/// Classifies a whole program into a factor list folded left-to-right
/// with a single operator. Accepts flat n-ary ops and left-deep chains
/// (every non-first operand of an op must be a single factor), which
/// are exactly the shapes whose fold order equals the factor-list fold.
bool classifyProgram(const VProgram &P, MatchState &M,
                     const std::optional<CCond> &Guard,
                     std::vector<MKOperand> &Factors, OpKind &Combine) {
  std::vector<std::vector<MKOperand>> Stack;
  std::optional<OpKind> Op;
  for (const VInstr &I : P.Code) {
    if (I.Kind == VKind::Op) {
      if (Stack.size() < I.NArgs || I.NArgs == 0)
        return false;
      if (!Op)
        Op = I.Op;
      else if (*Op != I.Op)
        return false;
      std::vector<MKOperand> Merged =
          std::move(Stack[Stack.size() - I.NArgs]);
      for (size_t K = Stack.size() - I.NArgs + 1; K < Stack.size(); ++K) {
        if (Stack[K].size() != 1)
          return false; // right operand of a fold must be a leaf
        Merged.push_back(std::move(Stack[K][0]));
      }
      Stack.resize(Stack.size() - I.NArgs);
      Stack.push_back(std::move(Merged));
      continue;
    }
    std::optional<MKOperand> O = operandFor(I, M, Guard);
    if (!O)
      return false;
    Stack.push_back({std::move(*O)});
  }
  if (Stack.size() != 1)
    return false;
  Factors = std::move(Stack[0]);
  if (Factors.empty() || Factors.size() > MicroKernel::MaxFactors)
    return false;
  Combine = Op.value_or(OpKind::Mul);
  return true;
}

bool containsLoop(const PlanNode *N) {
  if (dynamic_cast<const PlanLoop *>(N))
    return true;
  if (auto *Seq = dynamic_cast<const PlanSeq *>(N)) {
    for (const PlanPtr &Child : Seq->Children)
      if (containsLoop(Child.get()))
        return true;
    return false;
  }
  if (auto *If = dynamic_cast<const PlanIf *>(N))
    return containsLoop(If->Body.get());
  return false;
}

void attachGuard(MKItem &Item, const std::optional<CCond> &Guard,
                 const MatchState &M) {
  if (!Guard)
    return;
  Item.HasGuard = true;
  Item.Guard = *Guard;
  Item.GuardDynamic = condMentions(*Guard, M.L.Slot);
}

/// A write to \p Slot invalidates bind-time substitutions that read it:
/// a def like `t = s` substituted into readers after `s` changes would
/// observe a different value than the interpreter's `t` (computed at
/// def time). Readers of such defs fall back to live reads of the def's
/// own slot, which is always current.
void invalidateDefsReading(MatchState &M, unsigned Slot) {
  for (auto It = M.DefMap.begin(); It != M.DefMap.end();) {
    const MKOperand &F = It->second.first;
    if (F.K == MKOperand::Kind::Scalar && F.Slot == Slot)
      It = M.DefMap.erase(It);
    else
      ++It;
  }
}

bool gatherItems(PlanNode *N, std::optional<CCond> Guard, MatchState &M,
                 std::vector<MKItem> &Out) {
  if (auto *Seq = dynamic_cast<PlanSeq *>(N)) {
    for (PlanPtr &Child : Seq->Children)
      if (!gatherItems(Child.get(), Guard, M, Out))
        return false;
    return true;
  }
  if (auto *If = dynamic_cast<PlanIf *>(N)) {
    std::optional<CCond> Inner =
        Guard ? condAnd(*Guard, If->Cond) : If->Cond;
    return gatherItems(If->Body.get(), std::move(Inner), M, Out);
  }
  if (auto *Def = dynamic_cast<PlanDef *>(N)) {
    MKItem Item;
    Item.K = MKItem::Kind::Def;
    if (!classifyProgram(Def->Init, M, Guard, Item.S.Factors,
                         Item.S.Combine))
      return false;
    Item.S.ScalarDst = true;
    Item.S.ScalarSlot = Def->Slot;
    attachGuard(Item, Guard, M);
    if (!M.Nest) {
      // A per-element dynamic guard makes the def's value
      // data-dependent in a way bind-time substitution cannot express,
      // and contextual factors (SparseLoad, live scalars, dynamic Luts)
      // must not be duplicated into readers — re-evaluating a
      // SparseLoad per use would double its counter and cursor traffic.
      // Later reads of such defs fall back to live scalar reads.
      M.Written.insert(Def->Slot);
      invalidateDefsReading(M, Def->Slot);
      if (Item.S.Factors.size() == 1 && !Item.GuardDynamic &&
          !contextualOperand(Item.S.Factors[0]))
        M.DefMap[Def->Slot] = {Item.S.Factors[0], Guard};
      else
        M.DefMap.erase(Def->Slot);
    }
    Out.push_back(std::move(Item));
    return true;
  }
  if (auto *As = dynamic_cast<PlanAssign *>(N)) {
    if (As->Mult > 1)
      return false; // rare general-multiplicity case stays interpreted
    MKItem Item;
    Item.K = MKItem::Kind::Stmt;
    if (!classifyProgram(As->Rhs, M, Guard, Item.S.Factors,
                         Item.S.Combine))
      return false;
    Item.S.Reduce = As->Reduce;
    if (As->ScalarTarget) {
      Item.S.ScalarDst = true;
      Item.S.ScalarSlot = As->ScalarSlot;
      if (!M.Nest) {
        M.Written.insert(As->ScalarSlot);
        M.DefMap.erase(As->ScalarSlot);
        invalidateDefsReading(M, As->ScalarSlot);
      }
    } else {
      Item.S.OutId = As->OutId;
      for (const auto &[Slot, Stride] : As->SlotStride) {
        if (Slot == M.L.Slot)
          Item.S.DstVStride += Stride;
        else
          Item.S.DstBaseTerms.push_back({Slot, Stride});
      }
    }
    attachGuard(Item, Guard, M);
    Out.push_back(std::move(Item));
    return true;
  }
  if (auto *Loop = dynamic_cast<PlanLoop *>(N)) {
    MKItem Item;
    Item.K = MKItem::Kind::Loop;
    Item.Child = Loop;
    attachGuard(Item, Guard, M);
    Out.push_back(std::move(Item));
    return true;
  }
  return false; // PlanReplicate or unknown nodes stay interpreted
}

} // namespace

bool specializeLoop(PlanLoop &L, const std::vector<AccessState> &Accesses) {
  MatchState M{L, Accesses, MKDriver{}, false, {}, {}};
  if (!buildDriver(M))
    return false;
  M.Nest = containsLoop(L.Body.get());
  std::vector<MKItem> Items;
  if (!gatherItems(L.Body.get(), std::nullopt, M, Items))
    return false;
  if (Items.empty() || Items.size() > MicroKernel::MaxItems)
    return false;
  // Innermost loops prebind Scalar factors once per execution, so no
  // prebound Scalar factor may name a slot any item of this loop
  // writes. Reads *after* a write were resolved during gathering
  // (substituted or marked live); this final pass catches reads that
  // precede a later write, where the interpreter observes the previous
  // iteration's value (loop-carried scalar dependence) — those become
  // live reads too, which is exactly the interpreter's semantics.
  if (!M.Nest)
    for (MKItem &I : Items)
      for (MKOperand &Op : I.S.Factors)
        if (Op.K == MKOperand::Kind::Scalar && M.Written.count(Op.Slot))
          Op.Live = true;
  bool HasStmt = false, HasFusedChild = false, HasLoop = false;
  for (const MKItem &I : Items) {
    HasStmt |= I.K == MKItem::Kind::Stmt;
    if (I.K == MKItem::Kind::Loop) {
      HasLoop = true;
      HasFusedChild |= I.Child->Fused != nullptr;
    }
  }
  // Only fuse where it pays: a leaf loop must do real assignments, and
  // a nest must contain at least one already-fused core (otherwise the
  // generic dispatch is just as good and the specialization counter
  // would overstate coverage).
  if (!HasLoop && !HasStmt)
    return false;
  if (HasLoop && !HasFusedChild && !HasStmt)
    return false;
  // Hand out prebind slots for the innermost engine's bind-time array;
  // operands past the cap simply resolve every level per element (same
  // values, same counters).
  if (!HasLoop) {
    unsigned NPre = 0;
    for (MKItem &I : Items)
      for (MKOperand &Op : I.S.Factors)
        if (Op.K == MKOperand::Kind::SparseLoad && Op.PrebindLevels) {
          if (NPre < MicroKernel::MaxPrebinds)
            Op.PrebindIdx = NPre++;
          else
            Op.PrebindLevels = 0;
        }
  } else {
    // The nest engine evaluates operands fresh per element; prebinding
    // is the innermost engine's contract only.
    for (MKItem &I : Items)
      for (MKOperand &Op : I.S.Factors)
        Op.PrebindLevels = 0;
  }
  auto MK = std::make_unique<MicroKernel>();
  MK->Slot = L.Slot;
  MK->Innermost = !HasLoop;
  MK->D = M.D;
  MK->Items = std::move(Items);
  L.Fused = std::move(MK);
  return true;
}

//===----------------------------------------------------------------------===//
// Execution: shared driver iteration
//===----------------------------------------------------------------------===//

namespace {

/// Per-run co-walker state: parent position, the per-execution alias
/// decision, and the forward finger for compressed kinds. Plain
/// aggregate with no default initialization — binding runs once per
/// *row* of a nest, and bindDriver writes exactly the entries the
/// driver's co-walker list uses (unused slots are never read).
struct CoBind {
  int64_t Parent;
  bool Aliased;
  int64_t K, E;
};

/// Per-run driver state (the level arrays themselves are cached in the
/// MKDriver at specialization; only positions resolve per run).
struct DriverBind {
  int64_t Parent = 0;
  CoBind Co[MKDriver::MaxCoWalkers];
};

DriverBind bindDriver(ExecCtx &C, const MKDriver &D) {
  DriverBind B;
  if (D.K == MKDriver::Kind::Range)
    return B;
  B.Parent = C.Accesses[D.AccessId].Pos[D.Level];
  for (size_t I = 0; I < D.Cos.size(); ++I) {
    const MKCoWalker &Co = D.Cos[I];
    CoBind &CB = B.Co[I];
    CB.Parent = C.Accesses[Co.AccessId].Pos[Co.Level];
    // Mirror the interpreter's per-execution aliasing test: the same
    // fiber walked twice advances in lockstep instead of re-locating.
    CB.Aliased = Co.SameFiber && CB.Parent == B.Parent;
    if (!CB.Aliased && (Co.Kind == LevelKind::Sparse ||
                        Co.Kind == LevelKind::RunLength)) {
      CB.K = Co.Ptr[CB.Parent];
      CB.E = Co.Ptr[CB.Parent + 1];
    } else {
      CB.K = CB.E = 0;
    }
  }
  return B;
}

/// Per-execution iteration tallies, flushed into the context counters
/// once per loop run. Visited counts driver candidates; CoMatched[i]
/// counts candidates where co-walkers 0..i all matched — exactly the
/// points where the interpreter's Step charges walker i's SparseRead.
struct IterCounts {
  uint64_t Visited = 0;
  uint64_t CoMatched[MKDriver::MaxCoWalkers] = {};
};

/// Iterates the fused loop's elements, invoking Body(v, k1, coPos) for
/// every intersection element, in exactly the interpreter's order.
/// UpdateState additionally maintains IndexVal and walker positions for
/// nested consumers (positions are written as each walker resolves —
/// including for candidates a later co-walker rejects — mirroring the
/// interpreter's Step). Instantiated separately for loops without
/// co-walkers (WithCos = false) so the plain driver walks keep the
/// tight pre-intersection codegen — the resolution machinery folds
/// away entirely.
template <bool WithCos, typename Fn>
void iterateDriverImpl(ExecCtx &C, const MKDriver &D, unsigned Slot,
                       DriverBind &B, int64_t Lo, int64_t Hi,
                       bool UpdateState, IterCounts &N, Fn &&Body) {
  const size_t NCo = WithCos ? D.Cos.size() : 0;
  int64_t CoPos[MKDriver::MaxCoWalkers];
  CoPos[0] = 0; // factors without a co stride index slot 0

  // Resolves every co-walker for candidate (V, K1) in registration
  // order. Coordinates arrive in ascending order, so compressed
  // co-walkers are forward fingers (multi-finger merge): a sparse
  // finger catches up by galloping then bisecting the overshoot
  // window, a RunLength finger steps run by run. Returns false when
  // the candidate is missing from the intersection.
  auto ResolveCos = [&](int64_t V, int64_t K1) -> bool {
    for (size_t I = 0; I < NCo; ++I) {
      const MKCoWalker &Co = D.Cos[I];
      CoBind &CB = B.Co[I];
      int64_t P;
      if (CB.Aliased) {
        P = K1;
      } else {
        switch (Co.Kind) {
        case LevelKind::Dense:
          P = CB.Parent * Co.Dim + V;
          break;
        case LevelKind::Sparse: {
          int64_t K = CB.K;
          const int64_t *Crd = Co.Crd;
          if (K < CB.E && Crd[K] < V) {
            int64_t Step = 1;
            while (K + Step < CB.E && Crd[K + Step] < V)
              Step <<= 1;
            const int64_t HiB = std::min(K + Step + 1, CB.E);
            K = std::lower_bound(Crd + K + 1, Crd + HiB, V) - Crd;
          }
          CB.K = K;
          if (K >= CB.E || Crd[K] != V)
            return false;
          P = K;
          break;
        }
        case LevelKind::RunLength: {
          int64_t K = CB.K;
          const int64_t *RunEnd = Co.RunEnd;
          while (K < CB.E && RunEnd[K] <= V)
            ++K;
          CB.K = K;
          if (K >= CB.E)
            return false; // past the last run (V outside the extent)
          P = K;
          break;
        }
        case LevelKind::Banded: {
          const int64_t BLo = Co.BLo[CB.Parent];
          if (V < BLo || V >= Co.BHi[CB.Parent])
            return false;
          P = Co.BOff[CB.Parent] + (V - BLo);
          break;
        }
        }
      }
      CoPos[I] = P;
      if (UpdateState)
        C.Accesses[Co.AccessId].Pos[Co.Level + 1] = P;
      ++N.CoMatched[I];
    }
    return true;
  };

  auto Emit = [&](int64_t V, int64_t K1) {
    ++N.Visited;
    if (UpdateState)
      C.Accesses[D.AccessId].Pos[D.Level + 1] = K1;
    if constexpr (WithCos) {
      if (NCo && !ResolveCos(V, K1))
        return;
    }
    if (UpdateState)
      C.IndexVal[Slot] = V;
    // The first co position travels as a scalar so bound loads keep
    // register addressing; without co-walkers it is a literal 0 the
    // compiler folds out of the strides entirely.
    const int64_t K2 = WithCos ? CoPos[0] : 0;
    Body(V, K1, K2, static_cast<const int64_t *>(CoPos));
  };

  switch (D.K) {
  case MKDriver::Kind::Range:
    for (int64_t V = Lo; V <= Hi; ++V) {
      ++N.Visited;
      if (UpdateState)
        C.IndexVal[Slot] = V;
      Body(V, 0, 0, static_cast<const int64_t *>(CoPos));
    }
    return;
  case MKDriver::Kind::DenseWalk: {
    const int64_t Base = B.Parent * D.Dim;
    for (int64_t V = Lo; V <= Hi; ++V)
      Emit(V, Base + V);
    return;
  }
  case MKDriver::Kind::SparseWalk: {
    int64_t K = D.Ptr[B.Parent], E = D.Ptr[B.Parent + 1];
    const int64_t *Crd = D.Crd;
    if (Lo > 0)
      K = std::lower_bound(Crd + K, Crd + E, Lo) - Crd;
    for (; K < E; ++K) {
      const int64_t V = Crd[K];
      if (V > Hi)
        break;
      Emit(V, K);
    }
    return;
  }
  case MKDriver::Kind::RunLengthWalk: {
    // Runs tile [0, Dim): every coordinate in [Lo, Hi] is visited, with
    // the run index as position — the same expansion order as the
    // generic interpreter.
    int64_t Start = 0;
    const int64_t KE = D.Ptr[B.Parent + 1];
    for (int64_t K = D.Ptr[B.Parent]; K < KE; ++K) {
      const int64_t End = D.RunEnd[K];
      for (int64_t V = std::max(Start, Lo); V < End; ++V) {
        if (V > Hi)
          return;
        Emit(V, K);
      }
      Start = End;
      if (Start > Hi)
        return;
    }
    return;
  }
  case MKDriver::Kind::BandedWalk: {
    const int64_t BB = std::max(Lo, D.BLo[B.Parent]);
    const int64_t BE = std::min(Hi, D.BHi[B.Parent] - 1);
    for (int64_t V = BB; V <= BE; ++V)
      Emit(V, D.BOff[B.Parent] + (V - D.BLo[B.Parent]));
    return;
  }
  }
}

/// Dispatches to the co-walker-free or intersecting instantiation.
template <typename Fn>
inline void iterateDriver(ExecCtx &C, const MKDriver &D, unsigned Slot,
                          DriverBind &B, int64_t Lo, int64_t Hi,
                          bool UpdateState, IterCounts &N, Fn &&Body) {
  if (D.Cos.empty())
    iterateDriverImpl<false>(C, D, Slot, B, Lo, Hi, UpdateState, N,
                             std::forward<Fn>(Body));
  else
    iterateDriverImpl<true>(C, D, Slot, B, Lo, Hi, UpdateState, N,
                            std::forward<Fn>(Body));
}

/// Flushes the iteration's SparseRead tallies: the driver charges per
/// candidate, co-walker i per candidate it (and every co before it)
/// matched — exactly the interpreter's Step accounting.
inline void flushIterReads(ExecCtx &C, const MKDriver &D,
                           const IterCounts &N) {
  if (D.CountReads)
    C.Local.SparseReads += N.Visited;
  for (size_t I = 0; I < D.Cos.size(); ++I)
    if (D.Cos[I].CountReads)
      C.Local.SparseReads += N.CoMatched[I];
}

//===----------------------------------------------------------------------===//
// Execution: operand evaluation (nest items and contextual statements)
//===----------------------------------------------------------------------===//

inline double evalOperand(ExecCtx &C, const MKDriver &D,
                          const MKOperand &Op, int64_t V, int64_t K1,
                          const int64_t *CoPos, const int64_t *PreBase) {
  switch (Op.K) {
  case MKOperand::Kind::Const:
    return Op.Lit;
  case MKOperand::Kind::Scalar:
    return C.ScalarVal[Op.Slot];
  case MKOperand::Kind::Walked: {
    const AccessState &A = C.Accesses[Op.Slot];
    return A.T->val(A.Pos[A.T->order()]);
  }
  case MKOperand::Kind::Dense: {
    int64_t Pos = Op.VStride * V;
    for (const auto &[Slot, Stride] : Op.BaseTerms)
      Pos += C.IndexVal[Slot] * Stride;
    return Op.Arr[Pos];
  }
  case MKOperand::Kind::Driver:
    return D.Vals[K1];
  case MKOperand::Kind::CoDriver:
    return D.Cos[Op.Slot].Vals[CoPos[Op.Slot]];
  case MKOperand::Kind::SparseLoad:
    // Same counter and cursor discipline as the expression VM's
    // SparseLoad instruction: one SparseRead per evaluation, locator
    // state chained through the context. A prebound row-invariant
    // prefix resumes from its cached position (or yields the fill
    // outright when the prefix is absent) — same value, same counter.
    if (C.CountersOn)
      ++C.Local.SparseReads;
    if (PreBase && Op.PrebindLevels) {
      const int64_t Base = PreBase[Op.PrebindIdx];
      if (Base < 0)
        return Op.Fill;
      return sparseLoadValueFrom(C, Op.Slot, Op.LevelSlots,
                                 Op.PrebindLevels, Base);
    }
    return sparseLoadValue(C, Op.Slot, Op.LevelSlots);
  case MKOperand::Kind::Lut: {
    // Same mask evaluation as the expression VM's Lut instruction (no
    // counter contribution there either).
    unsigned Mask = 0;
    for (size_t Bit = 0; Bit < Op.LutBits.size(); ++Bit)
      if (Op.LutBits[Bit].eval(C))
        Mask |= 1u << Bit;
    return Op.LutTable[Mask];
  }
  }
  return 0;
}

inline double foldFactors(ExecCtx &C, const MKDriver &D, const MKStmt &S,
                          int64_t V, int64_t K1, const int64_t *CoPos,
                          const int64_t *PreBase) {
  double Acc = evalOperand(C, D, S.Factors[0], V, K1, CoPos, PreBase);
  for (size_t I = 1; I < S.Factors.size(); ++I)
    Acc = evalOp(S.Combine, Acc,
                 evalOperand(C, D, S.Factors[I], V, K1, CoPos, PreBase));
  return Acc;
}

} // namespace

//===----------------------------------------------------------------------===//
// Execution: nest engine
//===----------------------------------------------------------------------===//

void MicroKernel::runNest(ExecCtx &C, int64_t Lo, int64_t Hi) {
  DriverBind B = bindDriver(C, D);
  IterCounts N;
  iterateDriver(
      C, D, Slot, B, Lo, Hi, /*UpdateState=*/true, N,
      [&](int64_t V, int64_t K1, int64_t, const int64_t *CoPos) {
        for (MKItem &Item : Items) {
          if (Item.HasGuard && !Item.Guard.eval(C))
            continue;
          switch (Item.K) {
          case MKItem::Kind::Def:
            C.ScalarVal[Item.S.ScalarSlot] =
                foldFactors(C, D, Item.S, V, K1, CoPos, nullptr);
            if (C.CountersOn)
              C.Local.ScalarOps += Item.S.Factors.size() - 1;
            break;
          case MKItem::Kind::Stmt: {
            const MKStmt &S = Item.S;
            const double Val = foldFactors(C, D, S, V, K1, CoPos, nullptr);
            if (S.ScalarDst) {
              double &Dst = C.ScalarVal[S.ScalarSlot];
              Dst = S.Reduce ? evalOp(*S.Reduce, Dst, Val) : Val;
            } else {
              int64_t Pos = S.DstVStride * V;
              for (const auto &[TSlot, Stride] : S.DstBaseTerms)
                Pos += C.IndexVal[TSlot] * Stride;
              double &Dst = C.OutPtr[S.OutId][Pos];
              Dst = S.Reduce ? evalOp(*S.Reduce, Dst, Val) : Val;
            }
            if (C.CountersOn) {
              C.Local.ScalarOps += S.Factors.size() - 1;
              ++C.Local.Reductions;
              if (!S.ScalarDst)
                ++C.Local.OutputWrites;
            }
            break;
          }
          case MKItem::Kind::Loop:
            Item.Child->exec(C);
            break;
          }
        }
      });
  if (C.CountersOn)
    flushIterReads(C, D, N);
}

//===----------------------------------------------------------------------===//
// Execution: innermost engine (prebound)
//===----------------------------------------------------------------------===//

namespace {

/// One prebound value source, loaded branchlessly as
/// P[SV * v + SK1 * k1 + SK2 * k2]: dense-affine factors set SV,
/// driver/first-co factors set SK1/SK2 with P at the value array, and
/// immediates (literals, bind-time scalar/walked/lut reads) point P at
/// their own Imm slot with all strides zero. k2 is the *first*
/// co-walker's matched position — statements reading a later
/// co-walker's value run through the contextual engine instead, so the
/// hot bound loads keep their three-term register addressing. Plain
/// aggregate with no default initialization: binding runs once per
/// loop execution, often once per *row* of a nest, so constructing
/// this state must cost nothing beyond the fields actually written.
struct BoundVal {
  const double *P;
  int64_t SV, SK1, SK2;
  double Imm;
};

struct BoundStmt {
  BoundVal F[MicroKernel::MaxFactors];
  unsigned NF;
  /// 0: fast tensor (Mul-fold, Add-reduce), 1: fast scalar accumulate
  /// (Mul-fold, Add-reduce), 2: def store, 3: general (any ops, guard),
  /// 4: contextual (factors evaluated through the execution context:
  /// SparseLoad operands, live scalar reads, dynamic Luts).
  uint8_t Kind;
  OpKind Combine;
  int8_t Reduce; // -1: overwrite
  uint8_t Mode;  // 0: def store; 1: scalar dst; 2: tensor dst
  double *Dst;
  int64_t DstS;
  const CCond *Guard;     // dynamic guard, evaluated per element
  const MKStmt *Src;      // contextual: the statement's operand list
  uint64_t Execs;
  unsigned Ops; // ScalarOps contributed per execution
};

inline double loadBound(const BoundVal &F, int64_t V, int64_t K1,
                        int64_t K2) {
  return F.P[F.SV * V + F.SK1 * K1 + F.SK2 * K2];
}

inline double foldBound(const BoundStmt &S, int64_t V, int64_t K1,
                        int64_t K2) {
  double Acc = loadBound(S.F[0], V, K1, K2);
  switch (S.NF) {
  case 1:
    break;
  case 2:
    Acc *= loadBound(S.F[1], V, K1, K2);
    break;
  case 3:
    Acc *= loadBound(S.F[1], V, K1, K2);
    Acc *= loadBound(S.F[2], V, K1, K2);
    break;
  default:
    for (unsigned I = 1; I < S.NF; ++I)
      Acc *= loadBound(S.F[I], V, K1, K2);
    break;
  }
  return Acc;
}

/// Executes one bound statement for one element. Instantiated twice:
/// WithCtx = false omits the contextual engine entirely (no statement
/// of the loop is Kind 4), keeping the common all-prebound loops on
/// the slim pre-PR4 codegen — the extra operand machinery only costs
/// where a contextual statement actually exists.
template <bool WithCtx>
inline void execBound(ExecCtx &C, const MKDriver &D, BoundStmt &S,
                      int64_t V, int64_t K1, int64_t K2,
                      const int64_t *Co, const int64_t *PreBase) {
  switch (S.Kind) {
  case 0: // tensor dst, Mul-fold, Add-reduce (the sparse axpy core)
    S.Dst[S.DstS * V] += foldBound(S, V, K1, K2);
    break;
  case 1: // scalar accumulate, Mul-fold, Add-reduce (the dot core)
    *S.Dst += foldBound(S, V, K1, K2);
    break;
  case 2: // scalar def store
    *S.Dst = foldBound(S, V, K1, K2);
    break;
  case 4: {
    // Contextual: operands evaluated through the context per element
    // (SparseLoad chains the locator from its prebound row prefix;
    // live scalars read current ScalarVal; dynamic Luts test the
    // current IndexVal; CoDriver reads of later co-walkers index the
    // full position array), in the exact factor order of the VM.
    if constexpr (WithCtx) {
      if (S.Guard && !S.Guard->eval(C))
        return;
      const MKStmt &Src = *S.Src;
      double Acc = foldFactors(C, D, Src, V, K1, Co, PreBase);
      if (S.Mode == 0) {
        *S.Dst = Acc;
        ++S.Execs;
        return;
      }
      double &Dst = S.Mode == 1 ? *S.Dst : S.Dst[S.DstS * V];
      Dst = S.Reduce < 0
                ? Acc
                : evalOp(static_cast<OpKind>(S.Reduce), Dst, Acc);
      ++S.Execs;
    }
    return;
  }
  default: {
    if (S.Guard && !S.Guard->eval(C))
      return;
    double Acc = loadBound(S.F[0], V, K1, K2);
    for (unsigned I = 1; I < S.NF; ++I)
      Acc = evalOp(S.Combine, Acc, loadBound(S.F[I], V, K1, K2));
    if (S.Mode == 0) {
      *S.Dst = Acc;
      ++S.Execs;
      return;
    }
    double &Dst = S.Mode == 1 ? *S.Dst : S.Dst[S.DstS * V];
    Dst = S.Reduce < 0
              ? Acc
              : evalOp(static_cast<OpKind>(S.Reduce), Dst, Acc);
    ++S.Execs;
    return;
  }
  }
  ++S.Execs;
}

} // namespace

void MicroKernel::runInner(ExecCtx &C, int64_t Lo, int64_t Hi) {
  DriverBind B = bindDriver(C, D);

  // Bind: resolve invariant guards and operand bases against the
  // current context. All bind state is on the stack so one MicroKernel
  // can run from many task contexts concurrently; the array is left
  // uninitialized and every used field written explicitly, because a
  // nest re-binds its inner loop once per row. Row-invariant SparseLoad
  // prefixes resolve here too (per-row prebinding): each task range
  // re-derives them from its own context, so parallel splits stay
  // bit-reproducible.
  BoundStmt BS[MaxItems];
  int64_t PreBase[MaxPrebinds];
  unsigned NS = 0;
  bool AnyDynamic = false;
  for (MKItem &Item : Items) {
    if (Item.HasGuard && !Item.GuardDynamic && !Item.Guard.eval(C))
      continue; // invariant guard: decided once per loop execution
    BoundStmt &S = BS[NS];
    const MKStmt &Src = Item.S;
    S.NF = static_cast<unsigned>(Src.Factors.size());
    S.Ops = S.NF - 1;
    S.Combine = Src.Combine;
    S.Execs = 0;
    S.Guard = nullptr;
    S.Src = &Item.S;
    S.DstS = 0;
    bool MulFold = S.NF == 1 || Src.Combine == OpKind::Mul;
    // Statements with operands that cannot prebind (SparseLoad, live
    // scalar reads, dynamic Luts) run through the contextual engine,
    // which evaluates factors from the execution context per element.
    // Reads of a co-walker past the first go contextual too: the bound
    // loads keep a single scalar co position (register addressing on
    // the hot paths), and multi-co statements are rare.
    bool Contextual = false;
    for (const MKOperand &Op : Src.Factors)
      Contextual |= contextualOperand(Op) ||
                    (Op.K == MKOperand::Kind::CoDriver && Op.Slot > 0);
    if (Contextual) {
      // Per-row prebinding: resolve each SparseLoad's row-invariant
      // level prefix once for this execution. -1 marks an absent
      // prefix (the whole row reads as fill). Uses plain locate — the
      // hinted cursors are a per-element performance device and never
      // change results.
      for (const MKOperand &Op : Src.Factors)
        if (Op.K == MKOperand::Kind::SparseLoad && Op.PrebindLevels) {
          const AccessState &A = C.Accesses[Op.Slot];
          int64_t Pos = 0;
          for (unsigned L = 0; L < Op.PrebindLevels && Pos >= 0; ++L)
            Pos = A.T->locate(L, Pos, C.IndexVal[Op.LevelSlots[L]]);
          PreBase[Op.PrebindIdx] = Pos;
        }
    }
    for (unsigned I = 0; !Contextual && I < S.NF; ++I) {
      const MKOperand &Op = Src.Factors[I];
      BoundVal &F = S.F[I];
      F.SV = F.SK1 = F.SK2 = 0;
      switch (Op.K) {
      case MKOperand::Kind::Const:
        F.Imm = Op.Lit;
        F.P = &F.Imm;
        break;
      case MKOperand::Kind::Scalar:
        F.Imm = C.ScalarVal[Op.Slot];
        F.P = &F.Imm;
        break;
      case MKOperand::Kind::Walked: {
        const AccessState &A = C.Accesses[Op.Slot];
        F.Imm = A.T->val(A.Pos[A.T->order()]);
        F.P = &F.Imm;
        break;
      }
      case MKOperand::Kind::Dense: {
        int64_t Base = 0;
        for (const auto &[TSlot, Stride] : Op.BaseTerms)
          Base += C.IndexVal[TSlot] * Stride;
        F.P = Op.Arr + Base;
        F.SV = Op.VStride;
        break;
      }
      case MKOperand::Kind::Driver:
        F.P = D.Vals;
        F.SK1 = 1;
        break;
      case MKOperand::Kind::CoDriver:
        // Only the first co-walker binds (Slot > 0 forced contextual
        // above); its position is the K2 every bound load receives.
        F.P = D.Cos[0].Vals;
        F.SK2 = 1;
        break;
      case MKOperand::Kind::Lut: {
        // Bits never mention the loop variable here (dynamic Luts are
        // contextual), so the table entry is a bind-time constant.
        unsigned Mask = 0;
        for (size_t Bit = 0; Bit < Op.LutBits.size(); ++Bit)
          if (Op.LutBits[Bit].eval(C))
            Mask |= 1u << Bit;
        F.Imm = Op.LutTable[Mask];
        F.P = &F.Imm;
        break;
      }
      case MKOperand::Kind::SparseLoad:
        break; // unreachable: Contextual statements skip prebinding
      }
    }
    if (Item.K == MKItem::Kind::Def) {
      S.Mode = 0;
      S.Dst = &C.ScalarVal[Src.ScalarSlot];
      S.Reduce = -1;
    } else if (Src.ScalarDst) {
      S.Mode = 1;
      S.Dst = &C.ScalarVal[Src.ScalarSlot];
      S.Reduce = Src.Reduce ? static_cast<int8_t>(*Src.Reduce) : -1;
    } else {
      S.Mode = 2;
      int64_t Base = 0;
      for (const auto &[TSlot, Stride] : Src.DstBaseTerms)
        Base += C.IndexVal[TSlot] * Stride;
      S.Dst = C.OutPtr[Src.OutId] + Base;
      S.DstS = Src.DstVStride;
      S.Reduce = Src.Reduce ? static_cast<int8_t>(*Src.Reduce) : -1;
    }
    if (Item.HasGuard && Item.GuardDynamic) {
      S.Guard = &Item.Guard;
      AnyDynamic = true;
    }
    // Fast-path selection: the Mul-fold / Add-reduce cores the paper
    // kernels hit; everything else takes the general switch, and
    // context-dependent operands take the contextual engine (which also
    // needs IndexVal maintained for its level-slot and lut-bit
    // lookups).
    const bool AddReduce = S.Reduce == static_cast<int8_t>(OpKind::Add);
    if (Contextual) {
      S.Kind = 4;
      AnyDynamic = true;
    } else if (!S.Guard && MulFold && AddReduce && S.Mode == 2)
      S.Kind = 0;
    else if (!S.Guard && MulFold && AddReduce && S.Mode == 1)
      S.Kind = 1;
    else if (!S.Guard && MulFold && S.Mode == 0)
      S.Kind = 2;
    else
      S.Kind = 3;
    ++NS;
  }

  IterCounts N;

  // Dedicated loops for the single-statement sparse axpy / dot shapes
  // (driver value times one coordinate-indexed or invariant factor —
  // ssyrk's triangle kernel and plain SpMV rows). Same fold and
  // iteration order as the generic path below, just with the per-stmt
  // dispatch peeled away.
  if (NS == 1 && !AnyDynamic && D.K == MKDriver::Kind::SparseWalk &&
      D.Cos.empty() && BS[0].NF == 2 &&
      (BS[0].Kind == 0 || BS[0].Kind == 1)) {
    const BoundVal &F0 = BS[0].F[0], &F1 = BS[0].F[1];
    if (F0.SV == 0 && F0.SK1 == 1 && F0.SK2 == 0 && F1.SK1 == 0 &&
        F1.SK2 == 0) {
      const double *DV = D.Vals, *P1 = F1.P;
      const int64_t S1 = F1.SV;
      const int64_t *Crd = D.Crd;
      int64_t K = D.Ptr[B.Parent], E = D.Ptr[B.Parent + 1];
      if (Lo > 0)
        K = std::lower_bound(Crd + K, Crd + E, Lo) - Crd;
      uint64_t Cnt = 0;
      if (BS[0].Kind == 0) {
        double *Dst = BS[0].Dst;
        const int64_t DS = BS[0].DstS;
        for (; K < E; ++K) {
          const int64_t V = Crd[K];
          if (V > Hi)
            break;
          Dst[DS * V] += DV[K] * P1[S1 * V];
          ++Cnt;
        }
      } else {
        double Acc = *BS[0].Dst;
        for (; K < E; ++K) {
          const int64_t V = Crd[K];
          if (V > Hi)
            break;
          Acc += DV[K] * P1[S1 * V];
          ++Cnt;
        }
        *BS[0].Dst = Acc;
      }
      BS[0].Execs = Cnt;
      if (C.CountersOn) {
        if (D.CountReads)
          C.Local.SparseReads += Cnt;
        C.Local.ScalarOps += Cnt;
        C.Local.Reductions += Cnt;
        if (BS[0].Kind == 0)
          C.Local.OutputWrites += Cnt;
      }
      return;
    }
  }

  bool AnyContextual = false;
  for (unsigned I = 0; I < NS; ++I)
    AnyContextual |= BS[I].Kind == 4;
  if (!AnyContextual)
    iterateDriver(C, D, Slot, B, Lo, Hi, /*UpdateState=*/false, N,
                  [&](int64_t V, int64_t K1, int64_t K2,
                      const int64_t *CoPos) {
                    if (AnyDynamic)
                      C.IndexVal[Slot] = V;
                    for (unsigned I = 0; I < NS; ++I)
                      execBound<false>(C, D, BS[I], V, K1, K2, CoPos,
                                       PreBase);
                  });
  else
    iterateDriver(C, D, Slot, B, Lo, Hi, /*UpdateState=*/false, N,
                  [&](int64_t V, int64_t K1, int64_t K2,
                      const int64_t *CoPos) {
                    if (AnyDynamic)
                      C.IndexVal[Slot] = V;
                    for (unsigned I = 0; I < NS; ++I)
                      execBound<true>(C, D, BS[I], V, K1, K2, CoPos,
                                      PreBase);
                  });

  // Flush counter deltas once per loop execution (the whole point: no
  // per-element flag checks or atomic traffic in the loops above).
  if (C.CountersOn) {
    flushIterReads(C, D, N);
    for (unsigned I = 0; I < NS; ++I) {
      const BoundStmt &S = BS[I];
      C.Local.ScalarOps += S.Execs * S.Ops;
      if (S.Mode != 0) {
        C.Local.Reductions += S.Execs;
        if (S.Mode == 2)
          C.Local.OutputWrites += S.Execs;
      }
    }
  }
}

void MicroKernel::run(ExecCtx &C, int64_t Lo, int64_t Hi) {
  if (Innermost)
    runInner(C, Lo, Hi);
  else
    runNest(C, Lo, Hi);
}

} // namespace detail
} // namespace systec
