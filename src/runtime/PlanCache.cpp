//===- runtime/PlanCache.cpp ----------------------------------*- C++ -*-===//

#include "runtime/PlanCache.h"

#include "parallel/Schedule.h"

namespace systec {

std::string PlanCache::makeKey(const Einsum &E,
                               const std::map<std::string, Tensor *> &Bindings,
                               const ExecOptions &O) {
  std::string Key = E.str();
  // Declarations: format / fill / symmetry drive the symmetry pipeline
  // and the lowering, independent of what ends up bound.
  for (const auto &[Name, D] : E.Decls) {
    Key += ";decl " + Name + ":" + D.Format.str() + ":" +
           std::to_string(D.Fill) + ":" + D.Symmetry.str();
    if (D.IsOutput)
      Key += ":out";
  }
  // Operand structure: the compiled plan is specialized to each bound
  // tensor's format, dims, and fill (values are free to differ).
  for (const auto &[Name, T] : Bindings) {
    Key += ";bind " + Name + ":" + T->format().str() + ":[";
    for (int64_t D : T->dims())
      Key += std::to_string(D) + ",";
    Key += "]:" + std::to_string(T->fill());
  }
  // Structural options only — the per-request knobs (cancel, deadline,
  // tracing, validation, global flush) are adopted at rebind.
  Key += ";opts threads=" + std::to_string(O.Threads);
  Key += std::string(" schedule=") + schedulePolicyName(O.Schedule);
  Key += std::string(" microkernels=") + (O.EnableMicroKernels ? "on" : "off");
  Key += std::string(" blocking=") + (O.EnableBlocking ? "on" : "off");
  Key += " blockwidth=" + std::to_string(O.BlockWidth);
  Key += std::string(" walk=") + (O.EnableSparseWalk ? "on" : "off");
  Key += std::string(" lift=") + (O.EnableBoundLifting ? "on" : "off");
  Key += std::string(" algebra=") + (O.AnnihilationAlgebra ? "on" : "off");
  Key += " privbudget=" + std::to_string(O.PrivatizationBudget);
  Key += " membudget=" + std::to_string(O.MemoryBudgetBytes);
  // The RESOLVED engine preference list, so the typed Engines request
  // and its legacy-boolean equivalent share one entry, and distinct
  // orders (native-first vs not) never collide. The booleans above stay
  // in the key for back-compat; NativeCacheDir is deliberately absent —
  // the .so cache is content-hash keyed, so the directory choice never
  // changes the compiled plan.
  Key += " engines=" +
         enginesSummary(resolveEngines(O.Engines, O.EnableMicroKernels,
                                       O.EnableBlocking)
                            .Order);
  return Key;
}

std::unique_ptr<Executor> PlanCache::acquire(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return nullptr;
  }
  ++Hits;
  std::unique_ptr<Executor> E = std::move(It->second->second);
  Lru.erase(It->second);
  Index.erase(It);
  return E;
}

void PlanCache::release(const std::string &Key, std::unique_ptr<Executor> E) {
  if (!E)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Capacity == 0)
    return; // caching disabled; E is destroyed on scope exit
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // A concurrent request compiled the same plan fresh; keep the one
    // released now (most recently exercised).
    Lru.erase(It->second);
    Index.erase(It);
  }
  Lru.emplace_front(Key, std::move(E));
  Index[Key] = Lru.begin();
  while (Lru.size() > Capacity) {
    Index.erase(Lru.back().first);
    Lru.pop_back();
    ++Evictions;
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Entries = Lru.size();
  return S;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Lru.clear();
  Index.clear();
}

} // namespace systec
