//===- runtime/KernelService.cpp ------------------------------*- C++ -*-===//

#include "runtime/KernelService.h"

#include "core/Compiler.h"
#include "observability/Trace.h"

#include <cassert>

namespace systec {

const RequestResult &RequestHandle::wait() const {
  assert(St && "waiting on a default-constructed handle");
  std::unique_lock<std::mutex> Lock(St->Mu);
  St->Cv.wait(Lock, [&] { return St->Done; });
  return St->Res;
}

bool RequestHandle::done() const {
  assert(St && "polling a default-constructed handle");
  std::lock_guard<std::mutex> Lock(St->Mu);
  return St->Done;
}

KernelService::KernelService(ServiceOptions OptionsIn)
    : Options(OptionsIn), Cache(OptionsIn.CacheCapacity) {
  const unsigned N = Options.Workers ? Options.Workers : 1;
  Workers.reserve(N);
  for (unsigned W = 0; W < N; ++W)
    Workers.emplace_back([this, W] {
      obs::setThreadName("svc-" + std::to_string(W));
      workerLoop();
    });
}

KernelService::~KernelService() {
  std::deque<std::pair<KernelRequest, std::shared_ptr<RequestHandle::State>>>
      Remaining;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
    Paused = false;
    Remaining.swap(Queue);
    QueuedAt.clear();
  }
  WorkCv.notify_all();
  for (auto &[R, St] : Remaining) {
    {
      std::lock_guard<std::mutex> Lock(St->Mu);
      St->Res.St = Status::error(ErrCode::Cancelled,
                                 "service shut down before request '" +
                                     R.Label + "' ran");
      St->Done = true;
    }
    St->Cv.notify_all();
  }
  for (std::thread &T : Workers)
    T.join();
}

Expected<RequestHandle> KernelService::submit(KernelRequest R) {
  if (R.Bindings.empty())
    return Status::error(ErrCode::InvalidArgument,
                         "request '" + R.Label + "' binds no tensors");
  for (const auto &[Name, T] : R.Bindings)
    if (!T)
      return Status::error(ErrCode::InvalidArgument,
                           "request '" + R.Label +
                               "' binds null tensor under " + Name);
  RequestHandle H;
  H.St = std::make_shared<RequestHandle::State>();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopping)
      return Status::error(ErrCode::Cancelled, "service shutting down");
    if (Queue.size() >= Options.QueueLimit) {
      std::lock_guard<std::mutex> SLock(StatMu);
      ++Tallies.Rejected;
      return Status::error(ErrCode::ResourceExhausted,
                           "request queue full (limit " +
                               std::to_string(Options.QueueLimit) + ")");
    }
    Queue.emplace_back(std::move(R), H.St);
    QueuedAt.push_back(obs::nowNs());
  }
  {
    std::lock_guard<std::mutex> SLock(StatMu);
    ++Tallies.Submitted;
  }
  WorkCv.notify_one();
  return H;
}

void KernelService::pause() {
  std::lock_guard<std::mutex> Lock(Mu);
  Paused = true;
}

void KernelService::resume() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Paused = false;
  }
  WorkCv.notify_all();
}

void KernelService::workerLoop() {
  while (true) {
    KernelRequest R;
    std::shared_ptr<RequestHandle::State> St;
    uint64_t EnqueuedNs = 0;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WorkCv.wait(Lock,
                  [&] { return Stopping || (!Paused && !Queue.empty()); });
      if (Stopping)
        return;
      R = std::move(Queue.front().first);
      St = std::move(Queue.front().second);
      Queue.pop_front();
      EnqueuedNs = QueuedAt.front();
      QueuedAt.pop_front();
    }
    const uint64_t Dequeued = obs::nowNs();
    RequestResult Res = process(R);
    const uint64_t Finished = obs::nowNs();
    {
      std::lock_guard<std::mutex> SLock(StatMu);
      Tallies.QueueNs.add(Dequeued - EnqueuedNs);
      Tallies.LatencyNs.add(Finished - EnqueuedNs);
      if (Res.St.ok()) {
        ++Tallies.Completed;
        obs::addCounters(Tallies.Counters, Res.Report.Counters);
      } else {
        ++Tallies.Failed;
      }
    }
    {
      std::lock_guard<std::mutex> Lock(St->Mu);
      St->Res = std::move(Res);
      St->Done = true;
    }
    St->Cv.notify_all();
  }
}

RequestResult KernelService::process(KernelRequest &R) {
  RequestResult Out;
  const std::string Key = PlanCache::makeKey(R.E, R.Bindings, R.Options);
  // Per-request counter discipline: each run's exact deltas are in its
  // report; the process-global flush stays off so concurrent requests
  // never interleave deltas in the shared atomics. The service's own
  // aggregate (stats().Counters) sums the per-request snapshots.
  ExecOptions RunOpts = R.Options;
  RunOpts.GlobalCounterFlush = false;

  const uint64_t F0 = obs::nowNs();
  std::unique_ptr<Executor> Ex = Cache.acquire(Key);
  if (Ex) {
    if (Status S = Ex->rebind(R.Bindings, RunOpts); S.ok()) {
      Out.CacheHit = true;
    } else {
      // A colliding key whose structure check refused the repatch;
      // drop the entry and compile fresh (correctness never depends on
      // the cache).
      std::lock_guard<std::mutex> SLock(StatMu);
      ++Tallies.RebindFailures;
      Ex.reset();
    }
  }
  if (!Ex) {
    CompileResult CR = compileEinsum(R.E);
    Ex = std::make_unique<Executor>(std::move(CR.Optimized), RunOpts);
    for (const auto &[Name, T] : R.Bindings)
      Ex->bind(Name, T);
    if (Status S = Ex->tryPrepare(); !S.ok()) {
      Out.St = std::move(S).withContext("request '" + R.Label + "'");
      Out.FrontendNs = obs::nowNs() - F0;
      return Out; // never prepared; nothing worth caching
    }
  }
  Out.FrontendNs = obs::nowNs() - F0;

  Out.St = Ex->tryRun(&Out.Report);
  if (!Out.St.ok())
    Out.St = std::move(Out.St).withContext("request '" + R.Label + "'");
  // The plan survives completed runs and clean aborts alike (an
  // aborted run restores its outputs); keep it warm either way.
  Cache.release(Key, std::move(Ex));
  return Out;
}

KernelService::Stats KernelService::stats() const {
  Stats Out;
  {
    std::lock_guard<std::mutex> SLock(StatMu);
    Out = Tallies;
  }
  Out.Cache = Cache.stats();
  return Out;
}

} // namespace systec
