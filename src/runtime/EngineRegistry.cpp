//===- runtime/EngineRegistry.cpp - Engine-list resolution ----*- C++ -*-===//

#include "runtime/EngineRegistry.h"

#include <algorithm>

namespace systec {

const char *engineName(Engine E) {
  switch (E) {
  case Engine::Native:
    return "native";
  case Engine::Blocked:
    return "blocked";
  case Engine::Fused:
    return "fused";
  case Engine::Interp:
    return "interp";
  }
  return "unknown";
}

bool parseEngine(const std::string &Name, Engine &Out) {
  for (Engine E : {Engine::Native, Engine::Blocked, Engine::Fused,
                   Engine::Interp})
    if (Name == engineName(E)) {
      Out = E;
      return true;
    }
  return false;
}

EngineResolution resolveEngines(const std::vector<Engine> &Requested,
                                bool LegacyMicroKernels,
                                bool LegacyBlocking) {
  EngineResolution R;
  if (Requested.empty()) {
    // Deprecated-shim path: the booleans define the list. Blocking
    // implies the fused tier (the plan compiler has always treated
    // EnableBlocking as a refinement of EnableMicroKernels).
    if (LegacyBlocking && LegacyMicroKernels)
      R.Order.push_back(Engine::Blocked);
    if (LegacyMicroKernels)
      R.Order.push_back(Engine::Fused);
    R.Order.push_back(Engine::Interp);
  } else {
    for (size_t I = 0; I < Requested.size(); ++I) {
      Engine E = Requested[I];
      if (std::find(R.Order.begin(), R.Order.end(), E) != R.Order.end())
        continue; // duplicate
      if (E == Engine::Native && !R.Order.empty()) {
        R.Notes.push_back("engines: native is whole-body and only "
                          "effective as the first preference -> dropped");
        continue;
      }
      R.Order.push_back(E);
    }
    if (std::find(R.Order.begin(), R.Order.end(), Engine::Blocked) !=
            R.Order.end() &&
        std::find(R.Order.begin(), R.Order.end(), Engine::Fused) ==
            R.Order.end()) {
      // Blocked engines are specializations of the fused ones; insert
      // the prerequisite right after Blocked.
      auto It = std::find(R.Order.begin(), R.Order.end(), Engine::Blocked);
      R.Order.insert(It + 1, Engine::Fused);
      R.Notes.push_back("engines: blocked without fused -> fused inserted");
    }
    if (std::find(R.Order.begin(), R.Order.end(), Engine::Interp) ==
        R.Order.end())
      R.Order.push_back(Engine::Interp);
  }
  R.UseNative = R.Order.front() == Engine::Native;
  R.UseFused = std::find(R.Order.begin(), R.Order.end(), Engine::Fused) !=
               R.Order.end();
  R.UseBlocked = std::find(R.Order.begin(), R.Order.end(),
                           Engine::Blocked) != R.Order.end();
  return R;
}

std::string enginesSummary(const std::vector<Engine> &Order) {
  std::string S;
  for (Engine E : Order) {
    if (!S.empty())
      S += '>';
    S += engineName(E);
  }
  return S;
}

} // namespace systec
