//===- runtime/PlanCache.h - Compiled-plan cache --------------*- C++ -*-===//
///
/// \file
/// LRU cache of prepared Executors for the long-running kernel service:
/// repeated requests for the same (einsum, operand structure, execution
/// options) skip einsum parsing, lowering, plan compilation, and
/// specialization — the cached executor is checked out, rebound onto
/// the request's tensors (Executor::rebind), run, and returned.
///
/// Key contract (makeKey): two requests share a plan exactly when all
/// of the following match —
///  - the einsum text and every declaration's format / fill / symmetry
///    (these drive the symmetry pipeline and lowering),
///  - every bound operand's name, storage format, dimensions, and fill
///    value (the compiled walkers, strides, and fused engines are
///    specialized to this structure — values are free to differ),
///  - the structural ExecOptions: threads, schedule, privatization and
///    memory budgets, and the engine switches (micro-kernels, blocking,
///    block width, sparse walk, bound lifting, annihilation algebra).
/// Per-request knobs — cancellation token, deadline, tracing, input
/// validation, global counter flush — are deliberately NOT part of the
/// key; Executor::rebind adopts them per request.
///
/// Checkout semantics: acquire() *removes* the entry, so one cached
/// executor never runs two requests concurrently. Concurrent requests
/// for the same key simply miss and compile fresh; release() re-inserts
/// the most recently finished executor (dropping any duplicate already
/// present) and evicts least-recently-used entries beyond capacity.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_RUNTIME_PLANCACHE_H
#define SYSTEC_RUNTIME_PLANCACHE_H

#include "ir/Einsum.h"
#include "runtime/Executor.h"

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace systec {

class PlanCache {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t Entries = 0; ///< currently cached (checked-out excluded)
  };

  /// \p Capacity of 0 disables caching: every acquire misses and
  /// release destroys the executor.
  explicit PlanCache(size_t Capacity) : Capacity(Capacity) {}

  /// The cache key for one request (see the key contract above).
  /// \p Bindings supplies the operand structure; tensors the einsum
  /// does not mention are ignored by the executor, so including them
  /// in the key is harmless (callers normally bind exactly the
  /// declared tensors).
  static std::string makeKey(const Einsum &E,
                             const std::map<std::string, Tensor *> &Bindings,
                             const ExecOptions &O);

  /// Checks out the executor cached under \p Key, removing it from the
  /// cache (exclusive use). Null on a miss. Counts one hit or miss.
  std::unique_ptr<Executor> acquire(const std::string &Key);

  /// Returns a (still valid) executor to the cache under \p Key,
  /// making it the most recently used entry. A duplicate entry under
  /// the same key (a concurrent request that compiled fresh) is
  /// replaced; entries beyond capacity evict least-recently-used.
  void release(const std::string &Key, std::unique_ptr<Executor> E);

  Stats stats() const;

  /// Drops every cached entry (stats keep their tallies).
  void clear();

private:
  using Entry = std::pair<std::string, std::unique_ptr<Executor>>;

  const size_t Capacity;
  mutable std::mutex Mu;
  /// MRU-first; the map indexes into the list for O(log n) lookup.
  std::list<Entry> Lru;
  std::map<std::string, std::list<Entry>::iterator> Index;
  uint64_t Hits = 0, Misses = 0, Evictions = 0;
};

} // namespace systec

#endif // SYSTEC_RUNTIME_PLANCACHE_H
