//===- runtime/Executor.h - Kernel execution engine -----------*- C++ -*-===//
///
/// \file
/// Lowers a Kernel's loop-nest IR into an executable plan and runs it
/// over bound tensors. This plays the role Finch's compiler plays in the
/// original SySTeC: accesses to sparse tensors act as iterators over
/// stored coordinates, and comparisons between index variables are
/// lifted into loop bounds (paper Section 2.2), which is what makes the
/// canonical-triangle restriction cheap.
///
/// Semantics note: when a loop is driven by a sparse access ("walker"),
/// iteration visits only stored coordinates. This is sound when missing
/// coordinates annihilate every reduction in the loop body (fill = 0
/// under (+,*), fill = inf under (min,+)); every kernel produced by the
/// SySTeC pipeline and the naive lowering satisfies this. For oracle
/// testing the executor can disable walkers and bound lifting.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_RUNTIME_EXECUTOR_H
#define SYSTEC_RUNTIME_EXECUTOR_H

#include "ir/Kernel.h"
#include "observability/Report.h"
#include "parallel/Schedule.h"
#include "runtime/EngineRegistry.h"
#include "support/Status.h"
#include "tensor/Tensor.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace systec {

namespace detail {
class PlanNode;
struct ExecCtx;
struct RunControl;
} // namespace detail

/// Execution options (ablation switches).
struct ExecOptions {
  /// Ordered engine-preference list (runtime/EngineRegistry.h) — the
  /// typed replacement for the per-engine booleans below. Empty (the
  /// default) derives the list from the deprecated EnableMicroKernels /
  /// EnableBlocking shims, preserving their historical behavior and
  /// plan-cache keys exactly; a non-empty list wins over the booleans.
  /// tryPrepare() normalizes the list (EngineResolution) and writes the
  /// derived membership back into the booleans so downstream consumers
  /// see one consistent surface either way. {Engine::Native, ...} asks
  /// for the JIT-compiled whole-body engine with graceful typed
  /// fallback to the rest of the list (nativeStatus() records why).
  std::vector<Engine> Engines;
  /// On-disk directory for the native engine's compiled-.so cache
  /// (src/jit/NativeKernelCache.h). Empty resolves to the
  /// SYSTEC_JIT_CACHE_DIR environment variable, then a per-user temp
  /// default. Per-request (NOT part of the PlanCache structural key):
  /// the cache is content-hash keyed, so any directory yields identical
  /// plans — only cold-compile time differs.
  std::string NativeCacheDir;
  /// Drive loops from sparse accesses; disabling iterates dense extents
  /// (oracle mode).
  bool EnableSparseWalk = true;
  /// Lift comparisons into loop bounds; disabling evaluates them as
  /// residual predicates.
  bool EnableBoundLifting = true;
  /// Parallel lanes for loops the parallelism analysis marked safe.
  /// 1 keeps the plan fully sequential. N > 1 decomposes each parallel
  /// loop into tasks run on the shared thread pool; outputs not indexed
  /// by the loop variable get per-task privatized accumulators merged
  /// in task order, so results are reproducible for a fixed (Threads,
  /// Schedule) pair.
  unsigned Threads = 1;
  /// Chunking policy for parallel loops (see parallel/Schedule.h).
  /// Auto resolves to triangle-balanced for loops the analysis marked
  /// triangular and static blocks otherwise.
  SchedulePolicy Schedule = SchedulePolicy::Auto;
  /// Ceiling on privatized accumulator storage, in elements summed
  /// over all tasks of one loop. A loop whose privatization would
  /// exceed this is left sequential at that level; an inner annotated
  /// loop (typically with disjoint writes) runs parallel instead.
  size_t PrivatizationBudget = size_t(1) << 24;
  /// DEPRECATED shim for Engines (one release): equivalent to listing
  /// Engine::Fused. Run the plan-specialization pass
  /// (runtime/MicroKernels.h): loop subtrees matching a known shape
  /// execute as fused loops over raw level arrays instead of the
  /// interpreted plan. Disabling is the ablation switch; outputs and
  /// counters are identical either way. Ignored when Engines is
  /// non-empty (and overwritten with the resolved membership).
  bool EnableMicroKernels = true;
  /// DEPRECATED shim for Engines (one release): equivalent to listing
  /// Engine::Blocked. Panel-block the dense output mode of fused nests (the
  /// ssyrk/syprd/ttm shape: an outer loop whose variable strides a
  /// dense output dimension while the inner sparse walk it re-runs is
  /// invariant in it). The blocked engine walks the fiber once per
  /// fixed-width column panel instead of once per column, hoisting the
  /// per-column operand values — and, when the output cell is invariant
  /// across the walk, the accumulators themselves — into registers.
  /// Bit-identical to the interpreter (panel lanes write disjoint cells,
  /// per-cell fold order is preserved) with exact counter parity;
  /// disabling is the ablation switch.
  bool EnableBlocking = true;
  /// Output-panel width for the blocked engine. 0 picks the width at
  /// specialization from the panel mode's extent (8, or 4 for narrow
  /// modes); explicit values are clamped to [1, 8]. Results and the
  /// runtime counters are identical for every width.
  unsigned BlockWidth = 0;
  /// Decide coordinate-skipping walker soundness with the algebraic
  /// annihilation analysis (runtime/Annihilation.h): fill/annihilator
  /// facts propagate per operator position and transitively through
  /// scalar definitions, so walkers are registered exactly when the
  /// level's fill provably annihilates every assignment it backs.
  /// Disabling falls back to the legacy string-level membership check —
  /// strictly for ablation: the legacy check both loses walkers
  /// (workspace flushes under sparse-topped formats) and accepts
  /// unsound ones (additive bodies over non-annihilating fills).
  bool AnnihilationAlgebra = true;
  /// Structural integrity checks run by prepare() on every bound
  /// tensor before anything dereferences its level arrays (Shallow:
  /// O(levels) size/endpoint agreement; Deep: O(nnz) fiber scans; see
  /// Tensor::validate). None keeps the hot path untouched — no check,
  /// no extra report phase. A failing tensor surfaces as
  /// ErrCode::InvalidTensor from tryPrepare(), naming the tensor.
  ValidationLevel ValidateInputs = ValidationLevel::None;
  /// Wall-clock budget for one runBody() in milliseconds; 0 = none.
  /// The deadline is polled cooperatively (task-claim boundaries and
  /// every iteration of plan/kernel driver loops, with clock reads
  /// decimated), so overshoot is bounded by one loop-body execution.
  /// An expired run aborts with ErrCode::DeadlineExceeded: outputs are
  /// restored to their pre-run values, the run's counters are
  /// discarded, and lastReport().AbortReason records the reason.
  int64_t DeadlineMs = 0;
  /// Optional cooperative cancellation token, polled at the same
  /// checkpoints as the deadline. The caller keeps ownership (the
  /// token must outlive every run that uses it) and may cancel() from
  /// any thread; a cancelled run aborts with ErrCode::Cancelled under
  /// the same discard-partial-results contract as deadlines.
  CancelToken *Cancel = nullptr;
  /// Hard ceiling, in bytes, on privatized-accumulator storage for one
  /// parallel loop (all tasks summed); 0 = unlimited. Distinct from
  /// PrivatizationBudget (elements, a performance heuristic): this is
  /// a resource bound — a loop that would exceed it degrades to the
  /// inner disjoint-write parallelization instead of allocating.
  size_t MemoryBudgetBytes = 0;
  /// Emit execution trace spans (observability/Trace.h): prepare()
  /// turns the process-wide tracing flag on, after which this executor
  /// (and anything else running) records phase, plan-loop, and pool
  /// wait/execute spans exportable as Chrome trace JSON. Orthogonal to
  /// lastReport(), which is populated on every run regardless — with
  /// tracing off only the per-loop call/time aggregates stay zero.
  bool Tracing = false;
  /// Flush the run's counter deltas into the process-global
  /// support/Counters atomics after each run (the historical behavior,
  /// kept as the default for tools and tests that read the globals).
  /// Concurrent executors interleave their flushes, so an aggregate
  /// read mid-traffic attributes deltas to no one in particular; the
  /// kernel service turns this off — every run's exact deltas are in
  /// its ExecReport::Counters regardless, and the service aggregates
  /// those per-request snapshots itself.
  bool GlobalCounterFlush = true;
};

/// Result of the plan-specialization pass for one prepared executor
/// (surfaced by bench_ablation and the perf_smoke/annihilation tests).
struct MicroKernelStats {
  uint64_t SpecializedLoops = 0; ///< loops running fused micro-kernels
  uint64_t InnermostFused = 0;   ///< of which leaf (tight-engine) loops
  uint64_t GenericLoops = 0;     ///< loops left to the interpreter

  /// Walker registration outcomes (plan compilation).
  uint64_t WalkersRegistered = 0; ///< walkers bound to plan loops
  /// Coordinate-skipping walkers the annihilation algebra proves sound
  /// where the legacy membership check rejects (typically workspace
  /// flushes: `y[j] += w` with `w` defined from the reduction
  /// identity).
  uint64_t WalkersRecovered = 0;
  /// Candidates the algebra vetoes although membership would accept —
  /// each one a latent wrong-results shape under the legacy check
  /// (e.g. min-plus over a fill-0 operand).
  uint64_t WalkersRejected = 0;

  /// Specialized loops by driver shape (which fused engine iterates).
  uint64_t FusedRangeDrivers = 0;
  uint64_t FusedDenseDrivers = 0;
  uint64_t FusedSparseDrivers = 0;
  uint64_t FusedRunLengthDrivers = 0;
  uint64_t FusedBandedDrivers = 0;
  /// SparseLoad operands bound inside fused bodies (chained stateful
  /// locator instead of falling back to the interpreter).
  uint64_t FusedSparseLoadFactors = 0;

  /// Intersection shapes (per-shape coverage of the formerly-declined
  /// specializer gaps; each is assertable in tests/perf_smoke.cpp).
  /// Total non-driving walkers bound into fused intersection loops.
  uint64_t FusedCoWalkers = 0;
  /// Fused loops intersecting more than two walkers (one driver plus
  /// two or more co-walkers — the N-way multi-finger merge).
  uint64_t FusedNWalkerLoops = 0;
  /// Co-walkers matched positionally on structured levels (run
  /// containment / interval containment instead of a crd merge).
  uint64_t FusedRunLengthCoWalkers = 0;
  uint64_t FusedBandedCoWalkers = 0;
  /// Lut operands bound inside fused bodies (bind-time constants or
  /// per-element contextual evaluation).
  uint64_t FusedLutFactors = 0;
  /// SparseLoad operands with a row-invariant level prefix hoisted to
  /// bind time (per-row prebinding slots installed by the specializer).
  uint64_t PrebindSlots = 0;

  /// Fused nests running the register/cache-blocked output engine
  /// (column panels over the dense output mode), and the subset whose
  /// panel accumulators live in registers across the whole sparse walk
  /// (output cell invariant in the inner driver — one writeback per
  /// panel lane per row). The runtime panel/store counts are the
  /// FusedBlockedPanels / FusedBlockedStores global counters.
  uint64_t BlockedLoops = 0;
  uint64_t BlockedAccumLoops = 0;
};

/// One-line rendering of \p O ("threads=4 schedule=auto ..."), recorded
/// with benchmark JSON so BENCH_* entries are attributable across PRs.
std::string execOptionsSummary(const ExecOptions &O);

/// Compiles and runs one Kernel over bound tensors.
///
/// Usage:
///   Executor Exec(Kernel);
///   Exec.bind("A", &A).bind("x", &X).bind("y", &Y);
///   Exec.prepare();            // materializes aliases, compiles plan
///   Exec.run();                // body + epilogue
class Executor {
public:
  explicit Executor(Kernel K, ExecOptions Options = ExecOptions());
  ~Executor();
  Executor(Executor &&);
  Executor &operator=(Executor &&) = delete;

  /// Binds a tensor by declaration name. The tensor must outlive the
  /// executor and match the declaration's order.
  Executor &bind(const std::string &Name, Tensor *T);

  /// Materializes transposes/splits requested by the kernel and compiles
  /// the execution plan. Call after all binds. Aborts on client-input
  /// errors (legacy entry point — tool/test call sites where malformed
  /// input is a bug); use tryPrepare when the kernel or tensors come
  /// from a client.
  void prepare();

  /// Runs the main loop nest followed by the epilogue.
  void run();
  /// Runs only the main loop nest (what the paper times).
  void runBody();
  /// Runs only the replication epilogue.
  void runEpilogue();

  /// Status-returning variant of prepare(). Sanitizes the options
  /// (recoverable absurdities — Threads=0, oversubscription beyond
  /// 4x the hardware, BlockWidth>8 — are clamped and recorded in
  /// optionClamps(); a negative deadline is ErrCode::InvalidOptions),
  /// validates the kernel against the bound tensors (unbound accesses,
  /// arity mismatches, inconsistent extents, non-dense write targets —
  /// every malformed-input abort of plan compilation surfaces here as
  /// a typed Status instead), and, when ValidateInputs != None, runs
  /// Tensor::validate on every bound tensor before any level array is
  /// dereferenced. On error the executor stays unprepared.
  [[nodiscard]] Status tryPrepare();

  /// Status-returning variants of run()/runBody(): complete normally,
  /// or abort with ErrCode::Cancelled / DeadlineExceeded when the
  /// run's Cancel token fires or DeadlineMs expires. Aborted runs
  /// restore every output tensor to its pre-run values and discard the
  /// run's counter deltas; lastReport().AbortReason records the
  /// reason. With no token and no deadline these never fail and add
  /// zero per-iteration cost.
  ///
  /// When \p Out is non-null it receives this run's report by value —
  /// a snapshot the caller owns outright, valid forever (including an
  /// aborted run's report, with AbortReason set). Concurrent callers
  /// and anyone holding a report across runs must use these overloads;
  /// lastReport() below is a reference into executor state the next
  /// run overwrites.
  [[nodiscard]] Status tryRun(obs::ExecReport *Out);
  [[nodiscard]] Status tryRunBody(obs::ExecReport *Out);
  /// The epilogue (symmetric replication) is not cancellable: it is a
  /// cheap deterministic copy pass, and interrupting it would leave
  /// half-replicated outputs. Always returns ok after running.
  [[nodiscard]] Status tryRunEpilogue(obs::ExecReport *Out);
  [[nodiscard]] Status tryRun() { return tryRun(nullptr); }
  [[nodiscard]] Status tryRunBody() { return tryRunBody(nullptr); }
  [[nodiscard]] Status tryRunEpilogue() { return tryRunEpilogue(nullptr); }

  /// Repatches this prepared executor onto fresh tensors of identical
  /// structure — the plan-cache hit path, skipping einsum parsing,
  /// lowering, plan compilation, and specialization entirely (the
  /// rebound run's report shows plan-compile and specialize phases at
  /// 0). Every originally-bound name must appear in \p NewBindings
  /// with the same format descriptor, dims, and fill value as the
  /// tensor the plan was compiled against; \p RunOptions must agree
  /// with the compiled options on every structural knob (threads,
  /// schedule, engines — the plan-cache key guarantees this) and
  /// supplies the per-request knobs the plan adopts: Cancel,
  /// DeadlineMs, Tracing, ValidateInputs, GlobalCounterFlush.
  /// Materialized aliases (diagonal splits, transposes) are rebuilt
  /// from the new tensors. On error the executor keeps its previous
  /// bindings and stays runnable. Fails with InvalidArgument when two
  /// originally-distinct names were bound to one tensor and the new
  /// bindings disagree (the rebind would be ambiguous; compile fresh).
  [[nodiscard]] Status rebind(const std::map<std::string, Tensor *> &NewBindings,
                              const ExecOptions &RunOptions);

  /// Human-readable notes for every option value tryPrepare() clamped
  /// ("threads 0 -> 1", ...). Empty when the options were sane.
  const std::vector<std::string> &optionClamps() const { return Clamps; }

  const Kernel &kernel() const { return K; }

  /// The tensor bound (or materialized) under \p Name; null if unknown.
  Tensor *lookup(const std::string &Name) const;

  /// Specialization outcome of prepare(): how many plan loops run as
  /// fused micro-kernels vs. the generic interpreter.
  const MicroKernelStats &microKernelStats() const { return MKStats; }

  /// The normalized engine preference order tryPrepare() resolved from
  /// Options.Engines / the deprecated booleans (empty before prepare).
  const std::vector<Engine> &engines() const { return Engines; }

  /// Outcome of the native (JIT) engine build when Engine::Native led
  /// the preference list: ok() when the body runs natively; otherwise a
  /// typed Status saying why the executor fell back to the rest of the
  /// list (ErrCode::ResourceExhausted when no host compiler is
  /// available, Internal for a compile/emission failure — the run
  /// itself still succeeds either way). Ok-and-meaningless when Native
  /// was never requested.
  const Status &nativeStatus() const { return NativeStatus; }

  /// True when runBody() dispatches to the JIT-compiled native body.
  bool usesNativeEngine() const { return NativePlan != nullptr; }

  /// The C-ABI translation unit emitted for the native engine (empty
  /// unless Native led the preference list and emission succeeded —
  /// populated even if the subsequent compile/dlopen failed, for
  /// diagnostics and compile-check tests).
  const std::string &nativeSource() const { return NativeSource; }

  /// The structured report of the most recent runBody() (extended by a
  /// following runEpilogue()): phase timings, per-loop engine/driver
  /// aggregates, per-worker wait/execute activity, and the run's exact
  /// counter deltas. Single-caller convenience ONLY: this is a
  /// reference into executor state the next run overwrites in place —
  /// holding it across runs (or reading it while another request runs
  /// this executor) reads torn data. Callers that outlive the next run
  /// take a by-value snapshot via tryRun(&Report) instead.
  const obs::ExecReport &lastReport() const { return Report; }

private:
  friend class PlanCompiler;

  Kernel K;
  ExecOptions Options;
  std::map<std::string, Tensor *> Bound;
  /// The caller's bindings as of tryPrepare() entry, before alias
  /// materialization replaced split/transposed names in Bound. The
  /// pointer values feed rebind()'s old->new repatch map; they are
  /// never dereferenced after the run (bound tensors only have to
  /// outlive their own run, not the executor's stay in a plan cache).
  std::map<std::string, Tensor *> UserBound;
  /// Structural signature of one user binding, captured while the
  /// tensor was alive — what rebind() checks replacements against.
  struct BindingSig {
    TensorFormat Format;
    std::vector<int64_t> Dims;
    double Fill = 0.0;
  };
  std::map<std::string, BindingSig> UserSig;
  std::vector<std::unique_ptr<Tensor>> Owned;

  std::unique_ptr<detail::PlanNode> BodyPlan;
  std::unique_ptr<detail::PlanNode> EpiloguePlan;
  std::unique_ptr<detail::ExecCtx> Ctx;
  MicroKernelStats MKStats;
  bool Prepared = false;

  /// Engine preference order resolved by sanitizeOptions().
  std::vector<Engine> Engines;
  /// JIT-compiled whole-body plan (null unless Native resolved first
  /// AND the build succeeded); runBody() dispatches to it over
  /// BodyPlan. Holds the dlopened .so alive via a shared handle.
  std::unique_ptr<detail::PlanNode> NativePlan;
  /// Why NativePlan is null although Native was requested (see
  /// nativeStatus()).
  Status NativeStatus;
  /// Emitted native TU (see nativeSource()).
  std::string NativeSource;
  /// Wall time of the native source emission + compiler invocation at
  /// prepare; 0 on a warm .so-cache hit (the acceptance signal for
  /// cross-process cache reuse) and on rebind. Reported as the
  /// "native-compile" phase whenever Native was requested.
  uint64_t NativeCompileNs = 0;

  /// Option values tryPrepare() clamped (see optionClamps()).
  std::vector<std::string> Clamps;
  /// Output tensors in OutPtr-slot order (from plan compilation);
  /// snapshotted/restored around controlled runs so an aborted run
  /// leaves no partial writes behind.
  std::vector<Tensor *> Outputs;
  /// Shared stop state for controlled runs (cancel token + deadline),
  /// lazily created; the plan's execution contexts point at it.
  std::unique_ptr<detail::RunControl> Ctl;

  [[nodiscard]] Status sanitizeOptions();
  [[nodiscard]] Status validateKernel() const;
  /// Materializes the kernel's diagonal splits and transposes over the
  /// bindings in \p B, replacing split/transposed names and appending
  /// the materialized tensors to \p O. Shared by tryPrepare() and
  /// rebind() so both paths build aliases identically.
  [[nodiscard]] Status materializeAliases(std::map<std::string, Tensor *> &B,
                                          std::vector<std::unique_ptr<Tensor>> &O);

  /// Report of the most recent run (see lastReport()).
  obs::ExecReport Report;
  /// Prepare-phase timings, repeated into every run's report.
  uint64_t MaterializeNs = 0;
  uint64_t PlanCompileNs = 0;
  uint64_t SpecializeNs = 0;
  /// Input-validation time; the "validate" phase is reported only when
  /// ValidateInputs != None, so default runs keep their structureKey.
  uint64_t ValidateNs = 0;
  /// Per plan-loop (indexed by trace id) label/engine/driver metadata
  /// recorded at plan compilation; cloned into each report with the
  /// run's call/time aggregates filled in.
  std::vector<obs::LoopStat> LoopMeta;
};

} // namespace systec

#endif // SYSTEC_RUNTIME_EXECUTOR_H
