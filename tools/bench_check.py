#!/usr/bin/env python3
"""Bench-regression gate over BENCH_microkernels.json / BENCH_service.json.

Compares a freshly produced benchmark record file against the
checked-in baseline (bench/baselines/*.json). The gated
quantity is the
*fused-over-interpreted speedup ratio* per (kernel, workload) — a pure
single-process ratio, so it transfers across machines far better than
wall-clock milliseconds — with a relative tolerance band for machine
noise. Exits nonzero when any kernel's fresh ratio falls below
baseline * (1 - tolerance).

When the record files carry a "native" column (bench_microkernels adds
one whenever a host compiler is available for the JIT engine), the
*native-over-fused ratio* is gated the same way with its own wider
band: native bodies finish in tens of microseconds on the small
kernels, so timer noise is a larger relative fraction. A fresh run
with no native records (compiler-less machine) skips that gate with a
note rather than failing — the JIT column is capability-dependent by
design.

With --service the gated records come from bench_service instead: the
ratio is the *cold-over-warm latency ratio* per kernel (the plan-cache
hit speedup — first request pays the full front end, warm requests only
the rebind repatch), and the open-loop p99 latency is additionally
checked as an absolute guard with its own wide tolerance (wall-clock
transfers poorly across machines; the ratio gate is the strict one).

Intended uses:

  # after running bench_microkernels in the build tree
  python3 tools/bench_check.py --fresh build/BENCH_microkernels.json

  # after running bench_service
  python3 tools/bench_check.py --service --fresh build/BENCH_service.json

  # or via the build system
  cmake --build build --target check_bench
  cmake --build build --target check_service

CI runs this as a non-blocking report job (the reference container is
1-core, so wall-time-derived gating stays advisory there); locally it
is the pre-merge check that a perf PR actually moved the needle and a
refactor did not silently give the fused engines back.
"""

import argparse
import json
import os
import sys

DEFAULT_TOLERANCE = 0.30  # allow a 30% relative drop before failing
# Native-over-fused bounces more than fused-over-interp: the native
# bodies run in tens of microseconds on the small kernels, so a fixed
# timer-noise floor is a bigger relative slice of the measurement.
NATIVE_TOLERANCE = 0.45
# The service mode's defaults: the hit-speedup ratio bounces more than
# the fused-vs-interp ratio (the warm path is sub-millisecond, so timer
# and scheduler noise is a larger fraction), and p99 is wall-clock on a
# 1-core CI runner, so its band is deliberately wide.
SERVICE_TOLERANCE = 0.45
SERVICE_P99_TOLERANCE = 2.0  # p99 may grow up to 3x baseline


def load_records(path):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    for idx, rec in enumerate(data):
        if not isinstance(rec, dict):
            raise ValueError(
                f"{path}: record {idx} is {type(rec).__name__}, "
                "expected an object"
            )
    return data


def _numeric(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def speedup_table(records, skipped=None, impls=("interp", "fused")):
    """(kernel, workload) -> slow-over-fast speedup ratio, where
    ``impls`` names the (slow, fast) implementation pair — by default
    interp/fused (the micro-kernel gate), cold/warm in --service mode
    (the plan-cache hit speedup).

    Records with a missing or non-numeric "ms" are skipped (and
    reported via ``skipped`` when given) rather than crashing the
    gate: a truncated benchmark run should produce a readable verdict,
    not a traceback."""
    slow, fast = impls
    ms = {}
    for idx, rec in enumerate(records):
        impl = rec.get("impl")
        if impl not in (slow, fast):
            continue
        value = rec.get("ms")
        if not _numeric(value) or value <= 0:
            if skipped is not None:
                skipped.append(
                    f"record {idx} ({rec.get('kernel')}/"
                    f"{rec.get('workload')}/{impl}): "
                    f"missing or non-positive ms: {value!r}"
                )
            continue
        key = (rec.get("kernel"), rec.get("workload"))
        ms.setdefault(key, {})[impl] = value
    table = {}
    for key, found in ms.items():
        if slow in found and fast in found:
            table[key] = found[slow] / found[fast]
    return table


def p99_ms(records):
    """The open-loop p99 latency from a bench_service record file, or
    None when absent."""
    for rec in records:
        if rec.get("kernel") == "service" and rec.get("impl") == "p99":
            value = rec.get("ms")
            if _numeric(value) and value > 0:
                return value
    return None


def phase_table(records):
    """(kernel, workload, impl) -> phases_ms dict, when records carry
    the observability attachment (records written before the tracing
    layer simply have no breakdown)."""
    table = {}
    for rec in records:
        phases = rec.get("phases_ms")
        if isinstance(phases, dict):
            key = (rec.get("kernel"), rec.get("workload"), rec.get("impl"))
            table[key] = phases
    return table


def print_phase_breakdown(fresh_records, keys, impls=("interp", "fused")):
    """Per-phase timing summary next to the ratio table: where each
    configuration's time goes (one instrumented run, not the timed
    average), so a ratio delta points at a phase instead of a rerun."""
    phases = phase_table(fresh_records)
    if not phases:
        return
    names = []
    for p in phases.values():
        for name in p:
            if name not in names:
                names.append(name)
    header = f"{'kernel':<10} {'workload':<18} {'impl':<7}" + "".join(
        f" {n:>12}" for n in names
    )
    print(f"\nper-phase breakdown (ms, one instrumented run):")
    print(header)
    print("-" * len(header))
    for kernel, workload in keys:
        for impl in impls:
            p = phases.get((kernel, workload, impl))
            if p is None:
                continue
            cells = "".join(
                f" {p[n]:>12.4f}" if n in p else f" {'---':>12}"
                for n in names
            )
            print(f"{kernel:<10} {workload:<18} {impl:<7}{cells}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument(
        "--service",
        action="store_true",
        help="gate bench_service records instead: cold-over-warm "
        "plan-cache hit speedup per kernel, plus the open-loop p99 "
        "latency as a wide-band absolute guard",
    )
    parser.add_argument(
        "--fresh",
        default=None,
        help="freshly generated record file (default: "
        "./BENCH_microkernels.json, or ./BENCH_service.json with --service)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="checked-in baseline record file (default: "
        "bench/baselines/microkernels.json, or service.json with --service)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=f"relative speedup-ratio drop allowed (default "
        f"{DEFAULT_TOLERANCE}, or {SERVICE_TOLERANCE} with --service)",
    )
    parser.add_argument(
        "--native-tolerance",
        type=float,
        default=NATIVE_TOLERANCE,
        help="relative native-over-fused ratio drop allowed when both "
        f"files carry native records (default {NATIVE_TOLERANCE})",
    )
    parser.add_argument(
        "--p99-tolerance",
        type=float,
        default=SERVICE_P99_TOLERANCE,
        help="--service only: relative p99 growth allowed "
        f"(default {SERVICE_P99_TOLERANCE})",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="CI mode: also fail on skipped (malformed-ms) records and "
        "on kernels present in the fresh run but absent from the "
        "baseline (a new kernel must land with its baseline entry)",
    )
    args = parser.parse_args()

    default_name = "service" if args.service else "microkernels"
    if args.fresh is None:
        args.fresh = f"BENCH_{default_name}.json"
    if args.baseline is None:
        args.baseline = os.path.join(repo_root, "bench", "baselines",
                                     f"{default_name}.json")
    if args.tolerance is None:
        args.tolerance = SERVICE_TOLERANCE if args.service else DEFAULT_TOLERANCE
    impls = ("cold", "warm") if args.service else ("interp", "fused")

    skipped = []
    try:
        fresh_records = load_records(args.fresh)
        base_records = load_records(args.baseline)
        fresh = speedup_table(fresh_records, skipped, impls)
        base = speedup_table(base_records, skipped, impls)
    except OSError as err:
        print(
            f"bench_check: cannot read record file: {err}\n"
            f"  (run bench_{default_name} first, or pass --fresh/--baseline "
            "explicitly)",
            file=sys.stderr,
        )
        return 2
    except (ValueError, json.JSONDecodeError) as err:
        print(f"bench_check: malformed record file: {err}", file=sys.stderr)
        return 2

    if not fresh:
        print(f"bench_check: no {impls[0]}/{impls[1]} pairs in {args.fresh}",
              file=sys.stderr)
        for note in skipped:
            print(f"  {note}", file=sys.stderr)
        return 2

    header = f"{'kernel':<10} {'workload':<18} {'baseline':>9} {'fresh':>9} {'delta':>8}  status"
    print(header)
    print("-" * len(header))
    regressions = []
    for key in sorted(base):
        kernel, workload = key
        if key not in fresh:
            print(f"{kernel:<10} {workload:<18} {base[key]:>8.2f}x {'---':>9} {'---':>8}  MISSING")
            regressions.append(f"{kernel}/{workload}: missing from fresh run")
            continue
        b, f = base[key], fresh[key]
        delta = (f - b) / b
        ok = f >= b * (1.0 - args.tolerance)
        status = "ok" if ok else "REGRESSED"
        print(f"{kernel:<10} {workload:<18} {b:>8.2f}x {f:>8.2f}x {delta:>+7.1%}  {status}")
        if not ok:
            what = ("cold-vs-warm cache-hit" if args.service
                    else "fused-vs-interpreted")
            regressions.append(
                f"{kernel}/{workload}: {what} speedup {f:.2f}x "
                f"< baseline {b:.2f}x - {args.tolerance:.0%}"
            )
    for key in sorted(set(fresh) - set(base)):
        kernel, workload = key
        print(f"{kernel:<10} {workload:<18} {'---':>9} {fresh[key]:>8.2f}x {'---':>8}  new")
        if args.strict:
            regressions.append(
                f"{kernel}/{workload}: present in fresh run but not in the "
                "baseline (--strict: add it to bench/baselines)"
            )

    if not args.service:
        # Native (JIT) gate: fused-over-native ratio, present only when
        # the producing machine had a host compiler. A fresh run without
        # native records skips the gate (capability, not regression); a
        # kernel missing from an otherwise-native fresh run means the
        # engine silently fell back, which IS gated.
        nat_fresh = speedup_table(fresh_records, None, ("fused", "native"))
        nat_base = speedup_table(base_records, None, ("fused", "native"))
        if not nat_base:
            print("\nnative-vs-fused: no native records in baseline; "
                  "gate skipped")
        elif not nat_fresh:
            print("\nnative-vs-fused: no native records in fresh run "
                  "(no host compiler for the JIT engine); gate skipped")
        else:
            print(f"\nnative-vs-fused ratios "
                  f"(tolerance {args.native_tolerance:.0%}):")
            print(header)
            print("-" * len(header))
            for key in sorted(nat_base):
                kernel, workload = key
                if key not in nat_fresh:
                    print(f"{kernel:<10} {workload:<18} "
                          f"{nat_base[key]:>8.2f}x {'---':>9} {'---':>8}  "
                          "MISSING")
                    regressions.append(
                        f"{kernel}/{workload}: native column present in "
                        "the fresh run but this kernel fell back"
                    )
                    continue
                b, f = nat_base[key], nat_fresh[key]
                delta = (f - b) / b
                ok = f >= b * (1.0 - args.native_tolerance)
                status = "ok" if ok else "REGRESSED"
                print(f"{kernel:<10} {workload:<18} {b:>8.2f}x "
                      f"{f:>8.2f}x {delta:>+7.1%}  {status}")
                if not ok:
                    regressions.append(
                        f"{kernel}/{workload}: native-vs-fused speedup "
                        f"{f:.2f}x < baseline {b:.2f}x "
                        f"- {args.native_tolerance:.0%}"
                    )
            for key in sorted(set(nat_fresh) - set(nat_base)):
                kernel, workload = key
                print(f"{kernel:<10} {workload:<18} {'---':>9} "
                      f"{nat_fresh[key]:>8.2f}x {'---':>8}  new")
                if args.strict:
                    regressions.append(
                        f"{kernel}/{workload}: native pair present in "
                        "fresh run but not in the baseline (--strict: "
                        "add it to bench/baselines)"
                    )

    if args.service:
        fresh_p99 = p99_ms(fresh_records)
        base_p99 = p99_ms(base_records)
        if fresh_p99 is None:
            regressions.append(
                "service/openloop: no p99 record in the fresh run")
        elif base_p99 is not None:
            limit = base_p99 * (1.0 + args.p99_tolerance)
            ok = fresh_p99 <= limit
            print(
                f"\nopen-loop p99: baseline {base_p99:.3f}ms  "
                f"fresh {fresh_p99:.3f}ms  limit {limit:.3f}ms  "
                f"{'ok' if ok else 'REGRESSED'}"
            )
            if not ok:
                regressions.append(
                    f"service/openloop: p99 {fresh_p99:.3f}ms > baseline "
                    f"{base_p99:.3f}ms + {args.p99_tolerance:.0%}"
                )

    if skipped:
        print("\nbench_check: skipped records:", file=sys.stderr)
        for note in skipped:
            print(f"  {note}", file=sys.stderr)
        if args.strict:
            regressions.extend(skipped)

    print_phase_breakdown(
        fresh_records, sorted(set(base) | set(fresh)),
        impls if args.service else ("interp", "fused", "native"))

    if regressions:
        print("\nbench_check: FAIL", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    what = ("cache-hit ratios and p99" if args.service
            else "fused-vs-interpreted and native-vs-fused ratios")
    print(f"\nbench_check: OK (all {what} within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
