#!/usr/bin/env python3
"""Bench-regression gate over BENCH_microkernels.json.

Compares a freshly produced benchmark record file against the
checked-in baseline (bench/baselines/microkernels.json). The gated
quantity is the
*fused-over-interpreted speedup ratio* per (kernel, workload) — a pure
single-process ratio, so it transfers across machines far better than
wall-clock milliseconds — with a relative tolerance band for machine
noise. Exits nonzero when any kernel's fresh ratio falls below
baseline * (1 - tolerance).

Intended uses:

  # after running bench_microkernels in the build tree
  python3 tools/bench_check.py --fresh build/BENCH_microkernels.json

  # or via the build system
  cmake --build build --target check_bench

CI runs this as a non-blocking report job (the reference container is
1-core, so wall-time-derived gating stays advisory there); locally it
is the pre-merge check that a perf PR actually moved the needle and a
refactor did not silently give the fused engines back.
"""

import argparse
import json
import os
import sys

DEFAULT_TOLERANCE = 0.30  # allow a 30% relative drop before failing


def load_records(path):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    for idx, rec in enumerate(data):
        if not isinstance(rec, dict):
            raise ValueError(
                f"{path}: record {idx} is {type(rec).__name__}, "
                "expected an object"
            )
    return data


def _numeric(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def speedup_table(records, skipped=None):
    """(kernel, workload) -> fused-over-interpreted speedup.

    Records with a missing or non-numeric "ms" are skipped (and
    reported via ``skipped`` when given) rather than crashing the
    gate: a truncated benchmark run should produce a readable verdict,
    not a traceback."""
    ms = {}
    for idx, rec in enumerate(records):
        impl = rec.get("impl")
        if impl not in ("interp", "fused"):
            continue
        value = rec.get("ms")
        if not _numeric(value) or value <= 0:
            if skipped is not None:
                skipped.append(
                    f"record {idx} ({rec.get('kernel')}/"
                    f"{rec.get('workload')}/{impl}): "
                    f"missing or non-positive ms: {value!r}"
                )
            continue
        key = (rec.get("kernel"), rec.get("workload"))
        ms.setdefault(key, {})[impl] = value
    table = {}
    for key, impls in ms.items():
        if "interp" in impls and "fused" in impls:
            table[key] = impls["interp"] / impls["fused"]
    return table


def phase_table(records):
    """(kernel, workload, impl) -> phases_ms dict, when records carry
    the observability attachment (records written before the tracing
    layer simply have no breakdown)."""
    table = {}
    for rec in records:
        phases = rec.get("phases_ms")
        if isinstance(phases, dict):
            key = (rec.get("kernel"), rec.get("workload"), rec.get("impl"))
            table[key] = phases
    return table


def print_phase_breakdown(fresh_records, keys):
    """Per-phase timing summary next to the ratio table: where each
    configuration's time goes (one instrumented run, not the timed
    average), so a ratio delta points at a phase instead of a rerun."""
    phases = phase_table(fresh_records)
    if not phases:
        return
    names = []
    for p in phases.values():
        for name in p:
            if name not in names:
                names.append(name)
    header = f"{'kernel':<10} {'workload':<18} {'impl':<7}" + "".join(
        f" {n:>12}" for n in names
    )
    print(f"\nper-phase breakdown (ms, one instrumented run):")
    print(header)
    print("-" * len(header))
    for kernel, workload in keys:
        for impl in ("interp", "fused"):
            p = phases.get((kernel, workload, impl))
            if p is None:
                continue
            cells = "".join(
                f" {p[n]:>12.4f}" if n in p else f" {'---':>12}"
                for n in names
            )
            print(f"{kernel:<10} {workload:<18} {impl:<7}{cells}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument(
        "--fresh",
        default="BENCH_microkernels.json",
        help="freshly generated record file (default: ./BENCH_microkernels.json)",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(repo_root, "bench", "baselines",
                             "microkernels.json"),
        help="checked-in baseline record file "
        "(default: bench/baselines/microkernels.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative speedup-ratio drop allowed (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="CI mode: also fail on skipped (malformed-ms) records and "
        "on kernels present in the fresh run but absent from the "
        "baseline (a new kernel must land with its baseline entry)",
    )
    args = parser.parse_args()

    skipped = []
    try:
        fresh_records = load_records(args.fresh)
        fresh = speedup_table(fresh_records, skipped)
        base = speedup_table(load_records(args.baseline), skipped)
    except OSError as err:
        print(
            f"bench_check: cannot read record file: {err}\n"
            "  (run bench_microkernels first, or pass --fresh/--baseline "
            "explicitly)",
            file=sys.stderr,
        )
        return 2
    except (ValueError, json.JSONDecodeError) as err:
        print(f"bench_check: malformed record file: {err}", file=sys.stderr)
        return 2

    if not fresh:
        print(f"bench_check: no interp/fused pairs in {args.fresh}", file=sys.stderr)
        for note in skipped:
            print(f"  {note}", file=sys.stderr)
        return 2

    header = f"{'kernel':<10} {'workload':<18} {'baseline':>9} {'fresh':>9} {'delta':>8}  status"
    print(header)
    print("-" * len(header))
    regressions = []
    for key in sorted(base):
        kernel, workload = key
        if key not in fresh:
            print(f"{kernel:<10} {workload:<18} {base[key]:>8.2f}x {'---':>9} {'---':>8}  MISSING")
            regressions.append(f"{kernel}/{workload}: missing from fresh run")
            continue
        b, f = base[key], fresh[key]
        delta = (f - b) / b
        ok = f >= b * (1.0 - args.tolerance)
        status = "ok" if ok else "REGRESSED"
        print(f"{kernel:<10} {workload:<18} {b:>8.2f}x {f:>8.2f}x {delta:>+7.1%}  {status}")
        if not ok:
            regressions.append(
                f"{kernel}/{workload}: fused-vs-interpreted speedup {f:.2f}x "
                f"< baseline {b:.2f}x - {args.tolerance:.0%}"
            )
    for key in sorted(set(fresh) - set(base)):
        kernel, workload = key
        print(f"{kernel:<10} {workload:<18} {'---':>9} {fresh[key]:>8.2f}x {'---':>8}  new")
        if args.strict:
            regressions.append(
                f"{kernel}/{workload}: present in fresh run but not in the "
                "baseline (--strict: add it to bench/baselines)"
            )

    if skipped:
        print("\nbench_check: skipped records:", file=sys.stderr)
        for note in skipped:
            print(f"  {note}", file=sys.stderr)
        if args.strict:
            regressions.extend(skipped)

    print_phase_breakdown(fresh_records, sorted(set(base) | set(fresh)))

    if regressions:
        print("\nbench_check: FAIL", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print("\nbench_check: OK (all fused-vs-interpreted ratios within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
