//===- tools/systec_gen.cpp - Build-time kernel generation ----*- C++ -*-===//
///
/// \file
/// Emits the compiler's C++ output for the SSYMV kernels into a source
/// file that is compiled into the benchmark build. This is the
/// ahead-of-time analogue of the original SySTeC emitting Finch IR that
/// Julia JIT-compiles: the benchmarks then time real machine code
/// produced from the compiler's output (see bench_ssymv's
/// naive_gen/systec_gen columns). Aliases (splits/transposes) are
/// parameters so data preparation stays outside the timed kernel.
///
//===----------------------------------------------------------------------===//

#include "core/Codegen.h"
#include "core/Compiler.h"
#include "kernels/Kernels.h"

#include <cstdio>
#include <fstream>
#include <string>

using namespace systec;

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "usage: systec_gen <output-dir>\n");
    return 1;
  }
  CompileResult R = compileEinsum(makeSsymv());
  std::string Path = std::string(Argv[1]) + "/gen_ssymv.cpp";
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return 1;
  }
  Out << emitCpp(R.Naive, /*InlinePreparation=*/false) << "\n"
      << emitCpp(R.Optimized, /*InlinePreparation=*/false) << "\n";
  std::printf("wrote %s\n", Path.c_str());
  return 0;
}
