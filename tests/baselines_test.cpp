//===- tests/baselines_test.cpp -------------------------------*- C++ -*-===//
///
/// The native comparator kernels (TACO/MKL/SPLATT stand-ins) against
/// the independent dense oracle.
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "kernels/Oracle.h"

#include <gtest/gtest.h>

using namespace systec;

namespace {

constexpr double Tol = 1e-10;

} // namespace

TEST(Baselines, TacoSpmv) {
  Rng R(3);
  Tensor A = generateSparseMatrix(50, 50, 200, R, TensorFormat::csf(2));
  Tensor X = generateDenseVector(50, R);
  Tensor Y = Tensor::dense({50});
  tacoSpmv(A, X, Y);
  Einsum E = parseEinsum("spmv", "y[i] += A[i,j] * x[j]");
  Tensor Ref = oracleEval(E, {{"A", &A}, {"x", &X}});
  EXPECT_LT(Tensor::maxAbsDiff(Y, Ref), Tol);
}

TEST(Baselines, MklSymvMatchesFullSpmv) {
  Rng R(4);
  Tensor A = generateSymmetricTensor(2, 60, 250, R, TensorFormat::csf(2));
  Tensor Up = upperTriangle(A);
  Tensor X = generateDenseVector(60, R);
  Tensor YFull = Tensor::dense({60}), YSym = Tensor::dense({60});
  tacoSpmv(A, X, YFull);
  mklSymv(Up, X, YSym);
  EXPECT_LT(Tensor::maxAbsDiff(YFull, YSym), Tol);
}

TEST(Baselines, UpperTriangleKeepsCanonicalOnly) {
  Rng R(5);
  Tensor A = generateSymmetricTensor(2, 20, 40, R, TensorFormat::csf(2));
  Tensor Up = upperTriangle(A);
  Up.forEach([](const std::vector<int64_t> &C, double) {
    EXPECT_LE(C[0], C[1]);
  });
  // Canonical entry count: (nnz + diag) / 2.
  EXPECT_LT(Up.storedCount(), A.storedCount());
}

TEST(Baselines, TacoBellmanFord) {
  Rng R(6);
  double Inf = std::numeric_limits<double>::infinity();
  Tensor A =
      generateSymmetricTensor(2, 40, 100, R, TensorFormat::csf(2), Inf);
  Tensor D = generateDenseVector(40, R);
  Tensor Y = Tensor::dense({40}, 0.0);
  Y.setAllValues(Inf);
  tacoBellmanFord(A, D, Y);
  Einsum E = parseEinsum("bf", "y[i] min= A[i,j] + d[j]");
  Tensor Ref = oracleEval(E, {{"A", &A}, {"d", &D}});
  EXPECT_LT(Tensor::maxAbsDiff(Y, Ref), Tol);
}

TEST(Baselines, TacoSyprd) {
  Rng R(7);
  Tensor A = generateSymmetricTensor(2, 40, 150, R, TensorFormat::csf(2));
  Tensor X = generateDenseVector(40, R);
  double Out = tacoSyprd(A, X);
  Einsum E = parseEinsum("syprd", "y[] += x[i] * A[i,j] * x[j]");
  Tensor Ref = oracleEval(E, {{"A", &A}, {"x", &X}});
  EXPECT_NEAR(Out, Ref.at({0}), Tol);
}

TEST(Baselines, TacoSsyrk) {
  Rng R(8);
  Tensor A = generateSparseMatrix(30, 30, 120, R, TensorFormat::csf(2));
  Tensor C = Tensor::dense({30, 30});
  tacoSsyrk(A, C);
  Einsum E = parseEinsum("ssyrk", "C[i,j] += A[i,k] * A[j,k]");
  Tensor Ref = oracleEval(E, {{"A", &A}});
  EXPECT_LT(Tensor::maxAbsDiff(C, Ref), Tol);
}

TEST(Baselines, TacoTtm) {
  Rng R(9);
  Tensor A = generateSymmetricTensor(3, 15, 80, R, TensorFormat::csf(3));
  Tensor B = generateDenseMatrix(15, 6, R);
  Tensor C = Tensor::dense({6, 15, 15});
  tacoTtm(A, B, C);
  Einsum E = parseEinsum("ttm", "C[i,j,l] += A[k,j,l] * B[k,i]");
  Tensor Ref = oracleEval(E, {{"A", &A}, {"B", &B}});
  EXPECT_LT(Tensor::maxAbsDiff(C, Ref), Tol);
}

TEST(Baselines, TacoMttkrp3) {
  Rng R(10);
  Tensor A = generateSymmetricTensor(3, 15, 80, R, TensorFormat::csf(3));
  Tensor B = generateDenseMatrix(15, 5, R);
  Tensor C = Tensor::dense({15, 5});
  tacoMttkrp3(A, B, C);
  Einsum E = parseEinsum("mttkrp",
                         "C[i,j] += A[i,k,l] * B[k,j] * B[l,j]");
  Tensor Ref = oracleEval(E, {{"A", &A}, {"B", &B}});
  EXPECT_LT(Tensor::maxAbsDiff(C, Ref), Tol);
}

TEST(Baselines, SplattMatchesTaco) {
  Rng R(11);
  Tensor A = generateSymmetricTensor(3, 18, 120, R, TensorFormat::csf(3));
  Tensor B = generateDenseMatrix(18, 7, R);
  Tensor C1 = Tensor::dense({18, 7}), C2 = Tensor::dense({18, 7});
  tacoMttkrp3(A, B, C1);
  splattMttkrp3(A, B, C2);
  EXPECT_LT(Tensor::maxAbsDiff(C1, C2), Tol);
}

TEST(Baselines, AccumulateSemantics) {
  // Baselines add into the output rather than overwriting.
  Rng R(12);
  Tensor A = generateSparseMatrix(10, 10, 20, R, TensorFormat::csf(2));
  Tensor X = generateDenseVector(10, R);
  Tensor Y = Tensor::dense({10});
  tacoSpmv(A, X, Y);
  Tensor YTwice = Tensor::dense({10});
  tacoSpmv(A, X, YTwice);
  tacoSpmv(A, X, YTwice);
  for (int64_t I = 0; I < 10; ++I)
    EXPECT_NEAR(YTwice.at({I}), 2 * Y.at({I}), Tol);
}
