//===- tests/observability_test.cpp ---------------------------*- C++ -*-===//
///
/// Tests for the execution tracing and metrics layer: span nesting and
/// the Chrome trace_event export, the thread pool's wait/execute
/// activity accounting, log-histogram merge algebra, and the
/// structured ExecReport API — including its two contracts that the
/// rest of the repo leans on: the disabled path emits zero events with
/// exact counter parity, and reports are identical across thread
/// counts modulo timing fields (structureKey()).
///
/// Global-state discipline: tracing is process-wide, so every test
/// that flips it restores the previous value, and clearTrace() runs
/// only while no instrumented code is executing. Timing assertions are
/// deliberately loose — CI containers can be 1-core, where workers of
/// a pool may barely run.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "observability/Histogram.h"
#include "observability/Report.h"
#include "observability/Trace.h"
#include "parallel/ThreadPool.h"
#include "runtime/Executor.h"
#include "support/Counters.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace systec;

namespace {

/// RAII guard: sets the process-wide tracing flag and restores the
/// previous value on scope exit.
class TracingGuard {
public:
  explicit TracingGuard(bool On) : Was(obs::tracingEnabled()) {
    obs::setTracingEnabled(On);
  }
  ~TracingGuard() { obs::setTracingEnabled(Was); }

private:
  bool Was;
};

/// A small prepared ssymv executor over owned data.
struct SsymvFixture {
  Tensor A, X, Y;
  Executor E;

  explicit SsymvFixture(ExecOptions O, int64_t N = 200, uint64_t Seed = 7)
      : A(Tensor::dense({1})), X(Tensor::dense({1})),
        Y(Tensor::dense({N})),
        E(compileEinsum(makeSsymv()).Optimized, O) {
    Rng R(Seed);
    A = generateSymmetricTensor(2, N, 8 * N, R, TensorFormat::csf(2));
    X = generateDenseVector(N, R);
    E.bind("A", &A).bind("x", &X).bind("y", &Y);
    E.prepare();
  }

  void run() {
    Y.setAllValues(0.0);
    E.run();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// LogHistogram
//===----------------------------------------------------------------------===//

TEST(LogHistogram, BucketsByBitWidth) {
  EXPECT_EQ(obs::LogHistogram::bucketOf(0), 0u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(1), 1u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(2), 2u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(3), 2u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(4), 3u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(1023), 10u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(1024), 11u);
  EXPECT_EQ(obs::LogHistogram::bucketLo(0), 0u);
  EXPECT_EQ(obs::LogHistogram::bucketLo(1), 1u);
  EXPECT_EQ(obs::LogHistogram::bucketLo(11), 1024u);

  obs::LogHistogram H;
  H.add(0);
  H.add(5);
  H.add(6);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.total(), 11u);
  EXPECT_EQ(H.maxValue(), 6u);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(3), 2u); // 5 and 6 both in [4, 8)
  EXPECT_NEAR(H.mean(), 11.0 / 3.0, 1e-12);
}

TEST(LogHistogram, MergeIsAssociativeAndCommutative) {
  Rng R(42);
  auto Fill = [&R](unsigned N) {
    obs::LogHistogram H;
    for (unsigned I = 0; I < N; ++I)
      H.add(static_cast<uint64_t>(R.nextIndex(100000)));
    return H;
  };
  obs::LogHistogram A = Fill(37), B = Fill(11), C = Fill(53);

  obs::LogHistogram AB = A;
  AB.merge(B);
  obs::LogHistogram AB_C = AB;
  AB_C.merge(C);

  obs::LogHistogram BC = B;
  BC.merge(C);
  obs::LogHistogram A_BC = A;
  A_BC.merge(BC);

  EXPECT_TRUE(AB_C == A_BC); // associative

  obs::LogHistogram BA = B;
  BA.merge(A);
  EXPECT_TRUE(AB == BA); // commutative
  EXPECT_EQ(AB_C.count(), 37u + 11u + 53u);
}

TEST(LogHistogram, WindowDeltaRecoversTheSuffix) {
  obs::LogHistogram Before;
  Before.add(3);
  Before.add(100);
  obs::LogHistogram After = Before;
  After.add(7);
  After.add(900);

  obs::LogHistogram D = obs::LogHistogram::windowDelta(After, Before);
  EXPECT_EQ(D.count(), 2u);
  EXPECT_EQ(D.total(), 907u);
  EXPECT_EQ(D.bucketCount(obs::LogHistogram::bucketOf(7)), 1u);
  EXPECT_EQ(D.bucketCount(obs::LogHistogram::bucketOf(900)), 1u);
  EXPECT_EQ(D.bucketCount(obs::LogHistogram::bucketOf(3)), 0u);
}

TEST(LogHistogram, JsonOmitsEmptyBuckets) {
  obs::LogHistogram H;
  H.add(4);
  H.add(5);
  EXPECT_EQ(H.toJson(),
            "{\"count\":2,\"total\":9,\"max\":5,\"buckets\":{\"4\":2}}");
}

//===----------------------------------------------------------------------===//
// Trace buffers and spans
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledScopesEmitNothing) {
  TracingGuard G(false);
  const uint64_t Before = obs::traceEventCount();
  {
    obs::TraceScope S("noop", "test");
    EXPECT_FALSE(S.active());
    EXPECT_EQ(S.elapsedNs(), 0u);
  }
  EXPECT_EQ(obs::traceEventCount(), Before);
}

TEST(Trace, ScopesNestCorrectly) {
  TracingGuard G(true);
  obs::clearTrace();
  {
    obs::TraceScope Outer("outer", "test");
    EXPECT_TRUE(Outer.active());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      obs::TraceScope Inner("inner", "test", 42, 43);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  obs::setTracingEnabled(false);

  const std::vector<obs::ThreadEvents> Collected = obs::collectTrace();
  const obs::TraceEvent *Outer = nullptr, *Inner = nullptr;
  for (const obs::ThreadEvents &T : Collected)
    for (const obs::TraceEvent &E : T.Events) {
      if (std::string(E.Name) == "outer")
        Outer = &E;
      if (std::string(E.Name) == "inner")
        Inner = &E;
    }
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  // The inner span's interval is contained in the outer's.
  EXPECT_GE(Inner->StartNs, Outer->StartNs);
  EXPECT_LE(Inner->StartNs + Inner->DurNs, Outer->StartNs + Outer->DurNs);
  EXPECT_GT(Outer->DurNs, Inner->DurNs);
  EXPECT_EQ(Inner->Arg0, 42);
  EXPECT_EQ(Inner->Arg1, 43);
}

TEST(Trace, InternedNamesAreStableAndDeduplicated) {
  const char *A = obs::internName("observability-test-name");
  const char *B = obs::internName("observability-test-name");
  EXPECT_EQ(A, B);
  EXPECT_STREQ(A, "observability-test-name");
}

TEST(Trace, ChromeExportIsWellFormed) {
  TracingGuard G(true);
  obs::clearTrace();
  obs::setThreadName("obs-test-main");
  {
    obs::TraceScope S("chrome\"span\\", "test"); // name needs escaping
  }
  obs::setTracingEnabled(false);

  const std::string Json = obs::chromeTraceJson();
  EXPECT_NE(Json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"M\""), std::string::npos); // thread_name
  EXPECT_NE(Json.find("obs-test-main"), std::string::npos);
  EXPECT_NE(Json.find("chrome\\\"span\\\\"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy; the CI step
  // additionally json.loads the exported file).
  int64_t Depth = 0;
  bool InString = false, Escaped = false;
  for (char C : Json) {
    if (Escaped) {
      Escaped = false;
      continue;
    }
    if (C == '\\') {
      Escaped = true;
      continue;
    }
    if (C == '"') {
      InString = !InString;
      continue;
    }
    if (InString)
      continue;
    if (C == '{' || C == '[')
      ++Depth;
    if (C == '}' || C == ']')
      --Depth;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
  EXPECT_FALSE(InString);
}

//===----------------------------------------------------------------------===//
// ThreadPool activity accounting
//===----------------------------------------------------------------------===//

TEST(PoolActivity, TasksAndBusyTimeAreAccounted) {
  ThreadPool Pool(2);
  const auto Before = Pool.activitySnapshot();
  ASSERT_EQ(Before.Workers.size(), 2u);

  const unsigned NTasks = 12;
  const uint64_t W0 = obs::nowNs();
  Pool.parallelFor(NTasks, [](unsigned) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  const uint64_t Wall = obs::nowNs() - W0;

  const auto After = Pool.activitySnapshot();
  const auto CallersB = Before.callersTotal();
  const auto CallersA = After.callersTotal();
  uint64_t Tasks = CallersA.Tasks - CallersB.Tasks;
  uint64_t Exec = CallersA.ExecNs - CallersB.ExecNs;
  obs::LogHistogram Rolled =
      obs::LogHistogram::windowDelta(CallersA.TaskNs, CallersB.TaskNs);
  for (size_t W = 0; W < After.Workers.size(); ++W) {
    const uint64_t WTasks =
        After.Workers[W].Tasks - Before.Workers[W].Tasks;
    const uint64_t WExec =
        After.Workers[W].ExecNs - Before.Workers[W].ExecNs;
    const uint64_t WWait =
        After.Workers[W].WaitNs - Before.Workers[W].WaitNs;
    Tasks += WTasks;
    Exec += WExec;
    Rolled.merge(obs::LogHistogram::windowDelta(
        After.Workers[W].TaskNs, Before.Workers[W].TaskNs));
    // A worker's in-batch wait + execute cannot exceed the batch wall
    // time (generously padded: 1-core CI makes scheduling coarse).
    EXPECT_LE(WWait + WExec, Wall * 3 + 10000000u);
  }
  // Every task ran exactly once, each takes >= 2ms of execute time,
  // and the histograms roll up to one sample per task.
  EXPECT_EQ(Tasks, NTasks);
  EXPECT_GE(Exec, uint64_t(NTasks) * 1500000u); // 2ms sleeps, lenient
  EXPECT_EQ(Rolled.count(), NTasks);
  EXPECT_GE(Rolled.maxValue(), 1500000u);
}

TEST(PoolActivity, InlinePoolAccountsTheCaller) {
  ThreadPool Pool(0); // everything runs inline on the caller
  const auto Before = Pool.activitySnapshot();
  Pool.parallelFor(5, [](unsigned) {});
  const auto After = Pool.activitySnapshot();
  EXPECT_EQ(After.callersTotal().Tasks - Before.callersTotal().Tasks, 5u);
  EXPECT_TRUE(After.Workers.empty());
}

TEST(PoolActivity, TracedBatchEmitsPoolSpans) {
  TracingGuard G(true);
  obs::clearTrace();
  ThreadPool Pool(2);
  Pool.parallelFor(8, [](unsigned) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  obs::setTracingEnabled(false);

  unsigned TaskSpans = 0, BatchSpans = 0, WaitSpans = 0;
  for (const obs::ThreadEvents &T : obs::collectTrace())
    for (const obs::TraceEvent &E : T.Events) {
      if (std::string(E.Cat) != "pool")
        continue;
      const std::string Name = E.Name;
      TaskSpans += Name == "task";
      BatchSpans += Name == "batch";
      WaitSpans += Name == "wait";
    }
  EXPECT_EQ(TaskSpans, 8u); // one per task, wherever it ran
  EXPECT_EQ(BatchSpans, 1u);
  // The caller's completion wait always emits one span; workers add
  // theirs only if they woke while the batch was still open.
  EXPECT_GE(WaitSpans, 1u);
}

//===----------------------------------------------------------------------===//
// ExecReport
//===----------------------------------------------------------------------===//

TEST(ExecReport, CarriesPhasesLoopsAndCounters) {
  TracingGuard G(true); // loop aggregates populate only when tracing
  SsymvFixture F(ExecOptions{});
  F.run();
  obs::setTracingEnabled(false);

  const obs::ExecReport &R = F.E.lastReport();
  for (const char *Phase :
       {"materialize", "plan-compile", "specialize", "execute", "merge"})
    EXPECT_TRUE([&] {
      for (const obs::PhaseStat &P : R.Phases)
        if (P.Name == Phase)
          return true;
      return false;
    }()) << "missing phase " << Phase;
  EXPECT_GT(R.phaseNs("execute"), 0u);
  EXPECT_GE(R.phaseNs("plan-compile"), R.phaseNs("specialize"));
  EXPECT_GE(R.phaseNs("execute"), R.phaseNs("merge"));

  ASSERT_FALSE(R.Loops.empty());
  uint64_t Calls = 0;
  for (const obs::LoopStat &L : R.Loops) {
    EXPECT_FALSE(L.Label.empty());
    EXPECT_TRUE(L.Engine == "Interp" || L.Engine == "Fused" ||
                L.Engine == "Blocked")
        << L.Engine;
    EXPECT_FALSE(L.Driver.empty());
    Calls += L.Calls;
  }
  EXPECT_GT(Calls, 0u); // tracing was on, aggregates collected

  // The report's counters are exactly this run's deltas.
  EXPECT_GT(R.Counters.SparseReads + R.Counters.ScalarOps, 0u);
  EXPECT_NE(R.Options.find("tracing=off"), std::string::npos)
      << "fixture options are default except the process flag";

  // toJson mentions every section.
  const std::string Json = R.toJson();
  for (const char *Key :
       {"\"phases_ms\"", "\"loops\"", "\"workers\"", "\"counters\"",
        "\"options\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key;
}

TEST(ExecReport, DisabledTracingZeroEventsAndCounterParity) {
  // Baseline run with tracing on: collect the counter deltas.
  CounterSnapshot TracedCounters;
  {
    TracingGuard G(true);
    SsymvFixture F(ExecOptions{}, /*N=*/150, /*Seed=*/3);
    F.run();
    TracedCounters = F.E.lastReport().Counters;
  }
  // Identical run with tracing off: no new events, same counters.
  {
    TracingGuard G(false);
    const uint64_t Events = obs::traceEventCount();
    SsymvFixture F(ExecOptions{}, /*N=*/150, /*Seed=*/3);
    F.run();
    EXPECT_EQ(obs::traceEventCount(), Events)
        << "disabled tracing must not emit events";
    const obs::ExecReport &R = F.E.lastReport();
    EXPECT_EQ(R.Counters.SparseReads, TracedCounters.SparseReads);
    EXPECT_EQ(R.Counters.Reductions, TracedCounters.Reductions);
    EXPECT_EQ(R.Counters.ScalarOps, TracedCounters.ScalarOps);
    EXPECT_EQ(R.Counters.OutputWrites, TracedCounters.OutputWrites);
    // Loop aggregates stay zero on the disabled path (hot loops
    // untimed).
    for (const obs::LoopStat &L : R.Loops) {
      EXPECT_EQ(L.Calls, 0u);
      EXPECT_EQ(L.Ns, 0u);
    }
  }
}

TEST(ExecReport, StructureKeyInvariantAcrossThreads) {
  TracingGuard G(false);
  std::vector<std::string> Keys;
  for (unsigned Threads : {1u, 2u, 4u}) {
    ExecOptions O;
    O.Threads = Threads;
    SsymvFixture F(O, /*N=*/300, /*Seed=*/11);
    F.run();
    const obs::ExecReport &R = F.E.lastReport();
    Keys.push_back(R.structureKey());
    if (Threads > 1) {
      // Pooled runs carry per-worker activity; the run's tasks all
      // landed somewhere.
      uint64_t Tasks = 0;
      for (const obs::WorkerStat &W : R.Workers)
        Tasks += W.Tasks;
      EXPECT_GT(Tasks, 0u);
    } else {
      EXPECT_TRUE(R.Workers.empty());
    }
  }
  ASSERT_EQ(Keys.size(), 3u);
  EXPECT_EQ(Keys[0], Keys[1]);
  EXPECT_EQ(Keys[1], Keys[2]);
}

TEST(ExecReport, TracingOptionTurnsTheProcessFlagOn) {
  TracingGuard G(false);
  obs::clearTrace();
  ExecOptions O;
  O.Tracing = true;
  SsymvFixture F(O, /*N=*/100, /*Seed=*/5);
  EXPECT_TRUE(obs::tracingEnabled()) << "prepare() flips the flag";
  F.run();
  obs::setTracingEnabled(false);

  // The trace contains the phase spans and at least one labeled,
  // engine-attributed loop span.
  bool SawExecute = false, SawLoop = false;
  for (const obs::ThreadEvents &T : obs::collectTrace())
    for (const obs::TraceEvent &E : T.Events) {
      const std::string Name = E.Name, Cat = E.Cat;
      SawExecute |= Cat == "phase" && Name == "execute";
      SawLoop |= Cat == "loop" && Name.find("loop ") == 0 &&
                 Name.find('[') != std::string::npos;
    }
  EXPECT_TRUE(SawExecute);
  EXPECT_TRUE(SawLoop);
  EXPECT_NE(F.E.lastReport().Options.find("tracing=on"),
            std::string::npos);
}
