//===- tests/FuzzHarness.h - Differential fuzz case machinery -*- C++ -*-===//
///
/// \file
/// The shared core of the randomized differential-testing matrix, used
/// by two binaries:
///
///  - `fuzz_test` draws fresh seeds every run (parameterized over
///    [1, SYSTEC_FUZZ_ITERS]); any failing seed is persisted to
///    `tests/seeds/` so it becomes a permanent regression input,
///  - `fuzz_replay` re-runs every checked-in seed file deterministically
///    as part of the fast `unit` label.
///
/// Every case is a pure function of its seed: the einsum (symmetric A,
/// a second operand B, and occasionally a third operand C — three-plus
/// sparse operands exercise the N-way walker intersections), the level
/// formats per mode (Dense/Sparse/RunLength/Banded, so non-driving
/// walkers land on structured co-walker levels too), the semiring, the
/// loop order, and the data. The Lut harness additionally injects a
/// lookup-table factor (paper 4.2.5's operand shape) into the naive
/// kernel's assignments and uses the walker-free executor as the dense
/// oracle. Checks assert bit-identical values and exactly equal
/// counters across {interpreter, micro-kernels} x {Threads 1, 4}
/// against the oracle (integer-quantized data makes every reduction
/// exact, so results are decomposition-independent).
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_TESTS_FUZZHARNESS_H
#define SYSTEC_TESTS_FUZZHARNESS_H

#include "core/Compiler.h"
#include "data/Generators.h"
#include "ir/Expr.h"
#include "ir/Stmt.h"
#include "jit/NativeKernelCache.h"
#include "kernels/Oracle.h"
#include "runtime/Executor.h"
#include "support/Counters.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace systec {
namespace fuzzharness {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Panel widths the blocking differentials draw from (0 = auto-select
/// at specialization). One definition so every harness entry point
/// samples the same policy space.
constexpr unsigned BlockWidthSamples[] = {0, 1, 2, 3, 5, 8};
constexpr size_t NumBlockWidthSamples =
    sizeof(BlockWidthSamples) / sizeof(BlockWidthSamples[0]);

/// The semiring axis of the differential matrix.
enum class Semiring { Arith, MinPlus, MaxTimes, Boolean };

struct SemiringSpec {
  Semiring S;
  const char *Name;
  OpKind Reduce;
  OpKind Combine;
  const char *ReduceTok;
  const char *CombineTok; ///< infix, or null for call syntax
  const char *CombineCall;
  double Fill;      ///< annihilating fill for the sparse operands
  double WeirdFill; ///< non-annihilating fill (walker must be vetoed)
};

inline const SemiringSpec &semiring(Semiring S) {
  static const SemiringSpec Specs[] = {
      {Semiring::Arith, "arith", OpKind::Add, OpKind::Mul, "+= ", "*",
       nullptr, 0.0, 1.0},
      {Semiring::MinPlus, "minplus", OpKind::Min, OpKind::Add, "min= ",
       "+", nullptr, Inf, 0.0},
      {Semiring::MaxTimes, "maxtimes", OpKind::Max, OpKind::Mul, "max= ",
       "*", nullptr, 0.0, 2.0},
      {Semiring::Boolean, "boolean", OpKind::Max, OpKind::Min, "max= ",
       nullptr, "min", 0.0, 1.0},
  };
  return Specs[static_cast<int>(S)];
}

/// A random per-mode format: any level kind, RunLength bottom-only.
inline TensorFormat randomFormat(unsigned Order, Rng &R) {
  TensorFormat F;
  F.Levels.resize(Order);
  for (unsigned L = 0; L < Order; ++L) {
    const bool Bottom = (L + 1 == Order);
    switch (R.nextIndex(Bottom ? 4 : 3)) {
    case 0:
      F.Levels[L] = LevelKind::Dense;
      break;
    case 1:
      F.Levels[L] = LevelKind::Sparse;
      break;
    case 2:
      F.Levels[L] = LevelKind::Banded;
      break;
    default:
      F.Levels[L] = LevelKind::RunLength;
      break;
    }
  }
  return F;
}

/// Quantizes stored values to small integers (exact under any
/// reduction order). Entries equal to the fill stay put: RunLength fill
/// runs and Banded in-band holes store the fill explicitly, and scaling
/// them would diverge from the implicit out-of-band fill (breaking both
/// symmetry and fill semantics). Boolean kernels get 0/1 data.
inline void quantize(Tensor &T, bool Boolean) {
  const double Fill = T.fill();
  for (double &V : T.vals()) {
    if (std::isinf(V) || V == Fill)
      continue;
    V = Boolean ? (V < 0.5 ? 0.0 : 1.0) : std::floor(V * 8);
  }
}

inline Tensor randomSparseVector(int64_t Dim, Rng &R, const TensorFormat &F,
                                 double Fill) {
  Coo C({Dim});
  for (int64_t K = 0; K < Dim; ++K)
    if (R.nextBool(0.5))
      C.add({K}, R.nextDouble());
  return Tensor::fromCoo(std::move(C), F, Fill);
}

struct FuzzCase {
  Einsum E;
  SemiringSpec Spec{Semiring::Arith, "", OpKind::Add, OpKind::Mul,
                    "",              "", nullptr,     0.0,
                    0.0};
  bool WeirdFill = false;
  bool ThirdOperand = false;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  double OutInit = 0.0;
};

/// Builds a random einsum: a symmetric tensor A combined with a second
/// operand B (dense or sparse, any format) and — about a third of the
/// time — a third operand C, so products of three-plus sparse operands
/// (N-way walker intersections) and structured co-walker placements
/// appear; random output indices, random loop order, random semiring.
inline FuzzCase makeCase(uint64_t Seed) {
  Rng R(Seed);
  const int64_t Dim = 5 + R.nextIndex(3);
  const std::vector<std::string> Pool{"a", "b", "c", "d"};

  FuzzCase F;
  F.Spec = semiring(static_cast<Semiring>(R.nextIndex(4)));
  // Occasionally use a fill that does NOT annihilate the body: the
  // walker algebra must fall back to full iteration (via the locator)
  // and still match the dense oracle exactly.
  F.WeirdFill = R.nextBool(0.15);
  const double FillA = F.WeirdFill ? F.Spec.WeirdFill : F.Spec.Fill;
  const bool SparseB = R.nextBool(0.35);
  F.ThirdOperand = R.nextBool(0.35);
  const bool SparseC = F.ThirdOperand && R.nextBool(0.6);
  const unsigned OrderA = 2 + static_cast<unsigned>(R.nextIndex(2));

  // A's indices: distinct names from the pool.
  std::vector<std::string> Names = Pool;
  std::shuffle(Names.begin(), Names.end(), R.engine());
  std::vector<std::string> AIdx(Names.begin(), Names.begin() + OrderA);

  // Extra operands over 1-2 indices overlapping A or fresh.
  auto drawOperandIndices = [&]() {
    unsigned Order = 1 + static_cast<unsigned>(R.nextIndex(2));
    std::vector<std::string> Idx;
    for (unsigned M = 0; M < Order; ++M)
      Idx.push_back(Pool[R.nextIndex(Pool.size())]);
    std::set<std::string> S(Idx.begin(), Idx.end());
    Idx.assign(S.begin(), S.end()); // distinct modes
    return Idx;
  };
  std::vector<std::string> BIdx = drawOperandIndices();
  std::vector<std::string> CIdx =
      F.ThirdOperand ? drawOperandIndices() : std::vector<std::string>();

  // Output: random subset of the used indices (possibly scalar).
  std::vector<std::string> Used = AIdx;
  for (const std::string &I : BIdx)
    if (std::find(Used.begin(), Used.end(), I) == Used.end())
      Used.push_back(I);
  for (const std::string &I : CIdx)
    if (std::find(Used.begin(), Used.end(), I) == Used.end())
      Used.push_back(I);
  std::vector<std::string> OutIdx;
  for (const std::string &I : Used)
    if (R.nextBool(0.4))
      OutIdx.push_back(I);

  auto Access = [](const std::string &T,
                   const std::vector<std::string> &Idx) {
    std::string Out = T + "[";
    for (size_t I = 0; I < Idx.size(); ++I)
      Out += (I ? "," : "") + Idx[I];
    return Out + "]";
  };
  std::ostringstream Text;
  Text << "O[";
  for (size_t I = 0; I < OutIdx.size(); ++I)
    Text << (I ? "," : "") << OutIdx[I];
  Text << "] " << F.Spec.ReduceTok;
  if (F.Spec.CombineTok) {
    Text << Access("A", AIdx) << " " << F.Spec.CombineTok << " "
         << Access("B", BIdx);
    if (F.ThirdOperand)
      Text << " " << F.Spec.CombineTok << " " << Access("C", CIdx);
  } else if (F.ThirdOperand) {
    Text << F.Spec.CombineCall << "(" << F.Spec.CombineCall << "("
         << Access("A", AIdx) << ", " << Access("B", BIdx) << "), "
         << Access("C", CIdx) << ")";
  } else {
    Text << F.Spec.CombineCall << "(" << Access("A", AIdx) << ", "
         << Access("B", BIdx) << ")";
  }

  F.E = parseEinsum("fuzz" + std::to_string(Seed), Text.str());
  // Random loop order over every index.
  std::vector<std::string> Loops = F.E.allIndices();
  std::shuffle(Loops.begin(), Loops.end(), R.engine());
  F.E.LoopOrder = Loops;

  const bool Boolean = F.Spec.S == Semiring::Boolean;
  const unsigned NB = static_cast<unsigned>(BIdx.size());
  const TensorFormat FmtA = randomFormat(OrderA, R);
  const TensorFormat FmtB =
      SparseB ? randomFormat(NB, R) : TensorFormat::dense(NB);
  const double FillB = FmtB.isAllDense() ? 0.0 : FillA;
  F.E.declare("A", FmtA, FillA);
  F.E.setSymmetry("A", Partition::full(OrderA));
  F.E.declare("B", FmtB, FillB);

  Tensor A = generateSymmetricTensor(OrderA, Dim, 3 * Dim, R, FmtA, FillA);
  quantize(A, Boolean);
  F.Inputs.emplace("A", std::move(A));
  auto makeOperand = [&](unsigned N, const TensorFormat &Fmt,
                         double Fill) {
    Tensor T;
    if (!Fmt.isAllDense()) {
      T = N >= 2 ? generateSymmetricTensor(N, Dim, 2 * Dim, R, Fmt, Fill)
                 : randomSparseVector(Dim, R, Fmt, Fill);
    } else {
      std::vector<int64_t> TDims(N, Dim); // N >= 1 by construction
      T = Tensor::dense(TDims);
      for (double &V : T.vals())
        V = R.nextDouble();
    }
    quantize(T, Boolean);
    return T;
  };
  F.Inputs.emplace("B", makeOperand(NB, FmtB, FillB));
  if (F.ThirdOperand) {
    const unsigned NC = static_cast<unsigned>(CIdx.size());
    const TensorFormat FmtC =
        SparseC ? randomFormat(NC, R) : TensorFormat::dense(NC);
    const double FillC = FmtC.isAllDense() ? 0.0 : FillA;
    F.E.declare("C", FmtC, FillC);
    F.Inputs.emplace("C", makeOperand(NC, FmtC, FillC));
  }

  F.OutDims.assign(std::max<size_t>(OutIdx.size(), 1), Dim);
  if (OutIdx.empty())
    F.OutDims = {1};
  F.OutInit = opInfo(F.Spec.Reduce).Identity;
  return F;
}

inline std::string caseTrace(const FuzzCase &F) {
  std::string Out = F.E.str() + "  loops: " + joinAny(F.E.LoopOrder, ",") +
                    "  semiring: " + F.Spec.Name +
                    "  A: " + F.E.decl("A").Format.str() +
                    "  B: " + F.E.decl("B").Format.str();
  if (F.ThirdOperand)
    Out += "  C: " + F.E.decl("C").Format.str();
  if (F.WeirdFill)
    Out += "  (non-annihilating fill)";
  return Out;
}

/// Validation tier requested via the SYSTEC_VALIDATE env var ("deep" /
/// "shallow"; anything else means none). CI's sanitizer replay sets
/// "deep" so every checked-in seed also exercises Tensor::validate on
/// the way in; read once, applied at the single run() choke point.
inline ValidationLevel envValidationLevel() {
  static const ValidationLevel V = [] {
    const char *E = std::getenv("SYSTEC_VALIDATE");
    if (!E)
      return ValidationLevel::None;
    const std::string S(E);
    if (S == "deep")
      return ValidationLevel::Deep;
    if (S == "shallow")
      return ValidationLevel::Shallow;
    return ValidationLevel::None;
  }();
  return V;
}

inline Tensor run(const Kernel &K, FuzzCase &F,
                  const ExecOptions &O = ExecOptions()) {
  Tensor Out = Tensor::dense(F.OutDims, 0.0);
  Out.setAllValues(F.OutInit);
  ExecOptions Opts = O;
  if (Opts.ValidateInputs == ValidationLevel::None)
    Opts.ValidateInputs = envValidationLevel();
  Executor E(K, Opts);
  for (auto &[Name, T] : F.Inputs)
    E.bind(Name, &T);
  E.bind("O", &Out);
  E.prepare();
  E.run();
  return Out;
}

/// Seed-derived parallel execution options: random thread count,
/// schedule policy, and micro-kernel toggle (the parallel-runtime and
/// specialization-layer fuzz pass).
inline ExecOptions parallelOptions(uint64_t Seed) {
  Rng R(Seed ^ 0x9E3779B97F4A7C15ull);
  ExecOptions O;
  const unsigned Threads[] = {2, 3, 4, 8};
  O.Threads = Threads[R.nextIndex(4)];
  const SchedulePolicy Policies[] = {
      SchedulePolicy::Auto, SchedulePolicy::Static, SchedulePolicy::Dynamic,
      SchedulePolicy::TriangleBalanced};
  O.Schedule = Policies[R.nextIndex(4)];
  if (R.nextBool(0.25))
    O.PrivatizationBudget = 64; // exercise the inner-loop fallback
  O.EnableMicroKernels = R.nextBool(0.5);
  O.EnableBlocking = R.nextBool(0.5);
  O.BlockWidth = BlockWidthSamples[R.nextIndex(NumBlockWidthSamples)];
  return O;
}

/// Runs \p K with counters on and snapshots them.
inline Tensor runCounted(const Kernel &K, FuzzCase &F, const ExecOptions &O,
                         CounterSnapshot &Snap) {
  counters().reset();
  setCountersEnabled(true);
  Tensor Out = run(K, F, O);
  Snap = counters().snapshot();
  return Out;
}

//===----------------------------------------------------------------------===//
// Checks (shared by fuzz_test and fuzz_replay)
//===----------------------------------------------------------------------===//

inline void checkCompiledKernelsMatchOracle(uint64_t Seed) {
  FuzzCase F = makeCase(Seed);
  SCOPED_TRACE(caseTrace(F));
  CompileResult R = compileEinsum(F.E);
  std::map<std::string, const Tensor *> In;
  for (auto &[Name, T] : F.Inputs)
    In[Name] = &T;
  Tensor Ref = oracleEval(F.E, In);
  Tensor Naive = run(R.Naive, F);
  Tensor Opt = run(R.Optimized, F);
  EXPECT_LT(Tensor::maxAbsDiff(Naive, Ref), 1e-8) << "naive";
  EXPECT_LT(Tensor::maxAbsDiff(Opt, Ref), 1e-8) << "optimized";
  // Parallel runtime fuzz: a random thread count and schedule must
  // reproduce the oracle too.
  ExecOptions Par = parallelOptions(Seed);
  SCOPED_TRACE(std::string("threads ") + std::to_string(Par.Threads) +
               " schedule " + schedulePolicyName(Par.Schedule) +
               (Par.EnableMicroKernels ? " fused" : " interp"));
  Tensor NaivePar = run(R.Naive, F, Par);
  Tensor OptPar = run(R.Optimized, F, Par);
  EXPECT_LT(Tensor::maxAbsDiff(NaivePar, Ref), 1e-8) << "naive-parallel";
  EXPECT_LT(Tensor::maxAbsDiff(OptPar, Ref), 1e-8) << "optimized-parallel";
}

/// Exact equality of the four runtime counters (the per-cell parity
/// contract shared by every differential harness).
inline void expectCountersEqual(const CounterSnapshot &A,
                                const CounterSnapshot &B) {
  EXPECT_EQ(A.SparseReads, B.SparseReads);
  EXPECT_EQ(A.Reductions, B.Reductions);
  EXPECT_EQ(A.ScalarOps, B.ScalarOps);
  EXPECT_EQ(A.OutputWrites, B.OutputWrites);
}

/// Whether the JIT cell of the matrix can run at all; logs the reason
/// once when it cannot (no host compiler / SYSTEC_JIT_DISABLE), so a
/// degraded environment skips the cell visibly instead of silently.
inline bool nativeCellEnabled() {
  static const bool Enabled = [] {
    std::string Reason;
    if (jit::NativeKernelCache::compilerAvailable(&Reason))
      return true;
    std::fprintf(stderr,
                 "[fuzz] native cells disabled (%s); the JIT cell of "
                 "the matrix is skipped\n",
                 Reason.c_str());
    return false;
  }();
  return Enabled;
}

/// Runs \p K across the {interpreter, micro-kernels} x {Threads 1, 4}
/// cell matrix: every cell must match \p Ref element for element
/// (which also makes the cells bit-identical to each other) and the
/// first cell counter for counter. \p BlockSeed randomizes the blocked
/// output engine across the fused cells — a seed-derived toggle and
/// panel width, plus one extra Threads=1 cell with the toggle flipped —
/// so every case differentially pins that blocking changes neither a
/// value bit nor a runtime counter.
///
/// \p NativeCell additionally runs native-1 and native-4 cells through
/// the JIT engine (Engine::Native first; a failed emission or build
/// falls back to fused per the engine contract, which must still match
/// the oracle). Callers subsample this cell — every fresh case is a
/// distinct TU, so each native cell costs one host-compiler invocation.
inline void checkCellMatrix(const Kernel &K, FuzzCase &F,
                            const Tensor &Ref, uint64_t BlockSeed = 0,
                            bool NativeCell = false) {
  Rng BR(BlockSeed ^ 0xB10C6ED5EEDull);
  const bool Blk = BR.nextBool(0.5);
  const unsigned Wd = BlockWidthSamples[BR.nextIndex(NumBlockWidthSamples)];
  const unsigned WdAlt =
      BlockWidthSamples[BR.nextIndex(NumBlockWidthSamples)];
  struct Cell {
    const char *Name;
    bool Fused;
    unsigned Threads;
    bool Blocking;
    unsigned Width;
  };
  const Cell Cells[] = {{"interp-1", false, 1, true, 0},
                        {"fused-1", true, 1, Blk, Wd},
                        {"interp-4", false, 4, true, 0},
                        {"fused-4", true, 4, Blk, Wd},
                        {"fused-1-altblock", true, 1, !Blk, WdAlt}};
  CounterSnapshot FirstSnap;
  for (const Cell &C : Cells) {
    SCOPED_TRACE(std::string(C.Name) +
                 (C.Fused ? (C.Blocking ? " blocking width=" +
                                              std::to_string(C.Width)
                                        : std::string(" noblocking"))
                          : std::string()));
    ExecOptions O;
    O.EnableMicroKernels = C.Fused;
    O.Threads = C.Threads;
    O.EnableBlocking = C.Blocking;
    O.BlockWidth = C.Width;
    CounterSnapshot Snap;
    Tensor Out = runCounted(K, F, O, Snap);
    ASSERT_EQ(Out.vals().size(), Ref.vals().size());
    for (size_t I = 0; I < Out.vals().size(); ++I)
      EXPECT_EQ(Out.vals()[I], Ref.vals()[I]) << "element " << I;
    if (&C == &Cells[0]) {
      FirstSnap = Snap;
      continue;
    }
    expectCountersEqual(Snap, FirstSnap);
  }
  // The JIT cells: the native engine is sequential by contract (it
  // reproduces the Threads=1 fold order at any thread count), so both
  // cells must be bit-identical to the oracle and counter-identical to
  // interp-1.
  if (NativeCell && nativeCellEnabled()) {
    for (unsigned Threads : {1u, 4u}) {
      SCOPED_TRACE("native-" + std::to_string(Threads));
      ExecOptions O;
      O.Engines = {Engine::Native, Engine::Fused, Engine::Interp};
      O.Threads = Threads;
      CounterSnapshot Snap;
      Tensor Out = runCounted(K, F, O, Snap);
      ASSERT_EQ(Out.vals().size(), Ref.vals().size());
      for (size_t I = 0; I < Out.vals().size(); ++I)
        EXPECT_EQ(Out.vals()[I], Ref.vals()[I]) << "element " << I;
      expectCountersEqual(Snap, FirstSnap);
    }
  }
}

inline void checkMicroKernelsBitIdentical(uint64_t Seed) {
  // The specialization-layer oracle: with micro-kernels on vs. off, the
  // same plan must produce bit-identical outputs and exactly equal
  // execution counters on both compiled kernels.
  FuzzCase F = makeCase(Seed);
  SCOPED_TRACE(caseTrace(F));
  CompileResult R = compileEinsum(F.E);
  ExecOptions Interp, Fused;
  Interp.EnableMicroKernels = false;
  Fused.EnableMicroKernels = true;
  // Blocking must be invisible to this differential too: randomize the
  // toggle and panel width from the seed.
  Rng BR(Seed ^ 0xB10C6ED5EEDull);
  Fused.EnableBlocking = BR.nextBool(0.5);
  Fused.BlockWidth =
      BlockWidthSamples[BR.nextIndex(NumBlockWidthSamples)];
  for (const Kernel *K : {&R.Naive, &R.Optimized}) {
    SCOPED_TRACE(K == &R.Naive ? "naive" : "optimized");
    CounterSnapshot SI, SF;
    Tensor OutI = runCounted(*K, F, Interp, SI);
    Tensor OutF = runCounted(*K, F, Fused, SF);
    ASSERT_EQ(OutI.vals().size(), OutF.vals().size());
    for (size_t I = 0; I < OutI.vals().size(); ++I)
      EXPECT_EQ(OutI.vals()[I], OutF.vals()[I]) << "element " << I;
    expectCountersEqual(SI, SF);
  }
}

inline void checkDifferentialMatrix(uint64_t Seed) {
  // The semiring x format matrix: {interpreter, micro-kernels} x
  // {Threads 1, 4} must agree bit for bit with each other and exactly
  // with the dense oracle (integer data makes every reduction exact,
  // so results are decomposition-independent), and the four runtime
  // counters must be identical in every cell.
  FuzzCase F = makeCase(Seed);
  SCOPED_TRACE(caseTrace(F));
  CompileResult R = compileEinsum(F.E);
  std::map<std::string, const Tensor *> In;
  for (auto &[Name, T] : F.Inputs)
    In[Name] = &T;
  Tensor Ref = oracleEval(F.E, In);
  // The JIT cells are subsampled (one seed in eight): every fresh case
  // is a new TU, so each costs a host-compiler invocation; the sample
  // still sweeps the full semiring x format space over a long run, and
  // any failing seed replays with its native cells intact.
  const bool NativeCell = (Seed % 8) == 0;
  for (const Kernel *K : {&R.Naive, &R.Optimized}) {
    SCOPED_TRACE(K == &R.Naive ? "naive" : "optimized");
    checkCellMatrix(*K, F, Ref, Seed, NativeCell);
  }
}

//===----------------------------------------------------------------------===//
// Lut-operand harness
//===----------------------------------------------------------------------===//

/// Rebuilds \p S with \p OnAssign applied to every Assign, preserving
/// loop parallel annotations (so the Threads axis stays meaningful).
/// OnAssign additionally receives the loop indices bound at the
/// assignment's position, outermost first — a lookup table may only
/// compare indices that are actually in scope there.
inline StmtPtr mapAssigns(
    const StmtPtr &S, std::vector<std::string> &Bound,
    const std::function<StmtPtr(const StmtPtr &,
                                const std::vector<std::string> &)>
        &OnAssign) {
  switch (S->kind()) {
  case StmtKind::Block: {
    std::vector<StmtPtr> Children;
    for (const StmtPtr &Child : S->stmts())
      Children.push_back(mapAssigns(Child, Bound, OnAssign));
    return Stmt::block(std::move(Children));
  }
  case StmtKind::Loop: {
    Bound.push_back(S->loopIndex());
    StmtPtr Body = mapAssigns(S->body(), Bound, OnAssign);
    Bound.pop_back();
    return Stmt::loop(S->loopIndex(), std::move(Body))
        ->withParallel(S->parallelInfo());
  }
  case StmtKind::If:
    return Stmt::ifThen(S->condition(),
                        mapAssigns(S->body(), Bound, OnAssign));
  case StmtKind::Assign:
    return OnAssign(S, Bound);
  default:
    return S; // DefScalar / Replicate: shared untouched
  }
}

/// Injects a random lookup-table factor into every assignment of \p K
/// (combined with the semiring's combine operator, so the program stays
/// a left-deep chain the specializer can fold). Each assignment's bits
/// compare only the loop indices bound at its position — bits over the
/// innermost index become per-element contextual Lut operands, bits
/// over outer indices bind-time constants. The table holds small
/// integers, keeping reductions exact.
inline Kernel injectLut(const Kernel &K, const SemiringSpec &Spec,
                        Rng &R) {
  const bool Boolean = Spec.S == Semiring::Boolean;
  const CmpKind Kinds[] = {CmpKind::EQ, CmpKind::NE, CmpKind::LE,
                           CmpKind::LT, CmpKind::GE, CmpKind::GT};
  Kernel Out = K;
  std::vector<std::string> Bound;
  Out.Body = mapAssigns(
      K.Body, Bound,
      [&](const StmtPtr &As, const std::vector<std::string> &InScope) {
        if (InScope.empty())
          return As;
        const unsigned NBits = 1 + static_cast<unsigned>(R.nextIndex(2));
        std::vector<CmpAtom> Bits;
        for (unsigned B = 0; B < NBits; ++B) {
          const std::string &L = InScope[R.nextIndex(InScope.size())];
          const std::string &Rhs = InScope[R.nextIndex(InScope.size())];
          Bits.push_back(CmpAtom{Kinds[R.nextIndex(6)], L, Rhs});
        }
        std::vector<double> Table(size_t(1) << Bits.size());
        for (double &V : Table)
          V = Boolean ? static_cast<double>(R.nextIndex(2))
                      : static_cast<double>(1 + R.nextIndex(4));
        return Stmt::assign(
            As->lhs(), As->reduceOp(),
            Expr::call(Spec.Combine,
                       {As->rhs(), Expr::lut(std::move(Bits),
                                             std::move(Table))}),
            As->multiplicity());
      });
  return Out;
}

inline void checkLutDifferential(uint64_t Seed) {
  // Lut operands through the fused engines: the naive kernel (every
  // loop index bound at its assignments) gains a random lookup-table
  // factor; {interpreter, micro-kernels} x {Threads 1, 4} must agree
  // bit for bit and counter for counter, and all four cells must match
  // the walker-free executor — the dense-iteration oracle, which
  // evaluates the exact same kernel semantics over the full index
  // space.
  FuzzCase F = makeCase(Seed);
  Rng LutR(Seed ^ 0xA5A5A5A55A5A5A5Aull);
  CompileResult R = compileEinsum(F.E);
  Kernel K = injectLut(R.Naive, F.Spec, LutR);
  SCOPED_TRACE(caseTrace(F));
  SCOPED_TRACE("lut-injected: " + K.Body->str(0));
  ExecOptions OracleOpts;
  OracleOpts.EnableSparseWalk = false;
  OracleOpts.EnableMicroKernels = false;
  Tensor Ref = run(K, F, OracleOpts);
  checkCellMatrix(K, F, Ref, Seed, (Seed % 8) == 0);
}

//===----------------------------------------------------------------------===//
// Seed persistence and replay
//===----------------------------------------------------------------------===//

/// Dispatches one harness by name (the `harness=` key of a seed file).
inline bool runHarness(const std::string &Harness, uint64_t Seed) {
  if (Harness == "oracle") {
    checkCompiledKernelsMatchOracle(Seed);
  } else if (Harness == "bitident") {
    checkMicroKernelsBitIdentical(Seed);
  } else if (Harness == "matrix") {
    checkDifferentialMatrix(Seed);
  } else if (Harness == "lut") {
    checkLutDifferential(Seed);
  } else {
    return false;
  }
  return true;
}

/// Writes `tests/seeds/<harness>-<seed>.seed` when the current test has
/// recorded a failure, so the failing input replays forever under the
/// `fuzz_replay` unit target. Requires SYSTEC_SEED_DIR (set by CMake
/// for the fuzz binaries).
inline void persistSeedIfFailed(const std::string &Harness, uint64_t Seed) {
#ifdef SYSTEC_SEED_DIR
  if (!::testing::Test::HasFailure())
    return;
  std::error_code Ec;
  std::filesystem::create_directories(SYSTEC_SEED_DIR, Ec);
  const std::string Path = std::string(SYSTEC_SEED_DIR) + "/" + Harness +
                           "-" + std::to_string(Seed) + ".seed";
  std::ofstream Out(Path);
  if (!Out)
    return;
  Out << "harness=" << Harness << "\n";
  Out << "seed=" << Seed << "\n";
  Out << "trace=" << caseTrace(makeCase(Seed)) << "\n";
  std::fprintf(stderr, "[fuzz] persisted failing seed to %s\n",
               Path.c_str());
#endif
}

/// One parsed seed file. Valid is false when the file is malformed (no
/// parseable `seed=` line) — replay reports that instead of crashing
/// or silently replaying seed 0. Trace, when recorded, pins the case
/// the seed stood for: makeCase's draw order may change across PRs
/// (this PR's third operand did exactly that), and a drifted corpus
/// would otherwise keep passing while guarding nothing.
struct SeedFile {
  std::string Harness;
  uint64_t Seed = 0;
  std::string Trace;
  bool Valid = false;
};

inline std::vector<std::pair<std::string, SeedFile>>
loadSeedFiles(const std::string &Dir) {
  std::vector<std::pair<std::string, SeedFile>> Out;
  std::error_code Ec;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Dir, Ec)) {
    if (Entry.path().extension() != ".seed")
      continue;
    std::ifstream In(Entry.path());
    SeedFile S;
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.rfind("harness=", 0) == 0) {
        S.Harness = Line.substr(8);
      } else if (Line.rfind("seed=", 0) == 0) {
        const std::string Value = Line.substr(5);
        char *End = nullptr;
        const unsigned long long Parsed =
            std::strtoull(Value.c_str(), &End, 10);
        if (End != Value.c_str() && *End == '\0') {
          S.Seed = Parsed;
          S.Valid = true;
        }
      } else if (Line.rfind("trace=", 0) == 0) {
        S.Trace = Line.substr(6);
      }
    }
    Out.push_back({Entry.path().filename().string(), S});
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Out;
}

} // namespace fuzzharness
} // namespace systec

#endif // SYSTEC_TESTS_FUZZHARNESS_H
