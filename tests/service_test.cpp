//===- tests/service_test.cpp ---------------------------------*- C++ -*-===//
///
/// The serving layer: PlanCache key/LRU/checkout semantics, the
/// Executor rebind fast path (cache hits skip plan compilation and
/// specialization, pinned by phase timers), KernelService request
/// lifecycle (hit/miss counters, admission control, per-request
/// cancellation), and a multi-executor concurrency stress suite
/// asserting per-request results bit-identical to solo runs under a
/// shared pool, mixed kernels, and random cancel injection. The stress
/// suite runs under TSan via the tsan_smoke target.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "parallel/ThreadPool.h"
#include "runtime/KernelService.h"
#include "runtime/PlanCache.h"
#include "support/Counters.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

using namespace systec;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// One workload: inputs plus output shape/initial value (mirrors the
/// end-to-end harness, smaller sizes — these run under TSan too).
struct Workload {
  Einsum E;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  double OutInit = 0.0;
};

Workload makeWorkload(const std::string &Kernel, uint64_t Seed,
                      int64_t Scale = 1) {
  Rng R(Seed);
  Workload W;
  if (Kernel == "ssymv") {
    W.E = makeSsymv();
    int64_t N = 20 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2)));
    W.Inputs.emplace("x", generateDenseVector(N, R));
    W.OutDims = {N};
  } else if (Kernel == "bellmanford") {
    W.E = makeBellmanFord();
    int64_t N = 20 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2),
                                                  Inf));
    W.Inputs.emplace("d", generateDenseVector(N, R));
    W.OutDims = {N};
    W.OutInit = Inf;
  } else if (Kernel == "syprd") {
    W.E = makeSyprd();
    int64_t N = 20 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2)));
    W.Inputs.emplace("x", generateDenseVector(N, R));
    W.OutDims = {1};
  } else if (Kernel == "ssyrk") {
    W.E = makeSsyrk();
    int64_t N = 15 * Scale;
    W.Inputs.emplace("A", generateSparseMatrix(N, N, 5 * N, R,
                                               TensorFormat::csf(2)));
    W.OutDims = {N, N};
  } else if (Kernel == "mttkrp3") {
    W.E = makeMttkrp(3);
    int64_t N = 7 + 2 * Scale, Rank = 4;
    W.Inputs.emplace("A", generateSymmetricTensor(3, N, 8 * N, R,
                                                  TensorFormat::csf(3)));
    W.Inputs.emplace("B", generateDenseMatrix(N, Rank, R));
    W.OutDims = {N, Rank};
  } else {
    ADD_FAILURE() << "unknown kernel " << Kernel;
  }
  return W;
}

std::map<std::string, Tensor *> bindings(Workload &W, Tensor &Out) {
  std::map<std::string, Tensor *> B;
  for (auto &[Name, T] : W.Inputs)
    B[Name] = &T;
  B[W.E.Output->tensorName()] = &Out;
  return B;
}

Tensor freshOutput(const Workload &W) {
  Tensor Out = Tensor::dense(W.OutDims, 0.0);
  Out.setAllValues(W.OutInit);
  return Out;
}

/// Solo reference run: fresh compile + prepare + run, no service.
Tensor soloRun(Workload &W, ExecOptions Options = ExecOptions()) {
  CompileResult R = compileEinsum(W.E);
  Tensor Out = freshOutput(W);
  Executor E(R.Optimized, Options);
  for (auto &[Name, T] : W.Inputs)
    E.bind(Name, &T);
  E.bind(W.E.Output->tensorName(), &Out);
  E.prepare();
  E.run();
  return Out;
}

/// Bit-identical comparison (== on every element; Inf compares equal
/// to Inf, and any drift — even 1 ulp — fails).
void expectBitIdentical(const Tensor &A, const Tensor &B,
                        const std::string &What) {
  ASSERT_EQ(A.vals().size(), B.vals().size()) << What;
  for (size_t I = 0; I < A.vals().size(); ++I)
    ASSERT_EQ(A.vals()[I], B.vals()[I]) << What << " element " << I;
}

} // namespace

//===----------------------------------------------------------------------===//
// PlanCache semantics
//===----------------------------------------------------------------------===//

TEST(PlanCache, KeyIsSensitiveToStructureNotValues) {
  Workload W1 = makeWorkload("ssymv", 1);
  Workload W2 = makeWorkload("ssymv", 2); // same structure, new values
  Tensor O1 = freshOutput(W1), O2 = freshOutput(W2);
  ExecOptions O;
  const std::string K1 = PlanCache::makeKey(W1.E, bindings(W1, O1), O);
  const std::string K2 = PlanCache::makeKey(W2.E, bindings(W2, O2), O);
  EXPECT_EQ(K1, K2) << "values must not affect the key";

  // A different operand dimension changes the key.
  Workload W3 = makeWorkload("ssymv", 1, 2);
  Tensor O3 = freshOutput(W3);
  EXPECT_NE(K1, PlanCache::makeKey(W3.E, bindings(W3, O3), O));

  // A structural option changes the key...
  ExecOptions Threaded;
  Threaded.Threads = 4;
  EXPECT_NE(K1, PlanCache::makeKey(W1.E, bindings(W1, O1), Threaded));
  ExecOptions NoMk;
  NoMk.EnableMicroKernels = false;
  EXPECT_NE(K1, PlanCache::makeKey(W1.E, bindings(W1, O1), NoMk));

  // ...but the per-request knobs do not.
  ExecOptions PerRequest;
  CancelToken Tok;
  PerRequest.Cancel = &Tok;
  PerRequest.DeadlineMs = 50;
  PerRequest.ValidateInputs = ValidationLevel::Shallow;
  PerRequest.GlobalCounterFlush = false;
  EXPECT_EQ(K1, PlanCache::makeKey(W1.E, bindings(W1, O1), PerRequest));

  // A different einsum is a different key.
  Workload W4 = makeWorkload("syprd", 1);
  Tensor O4 = freshOutput(W4);
  EXPECT_NE(K1, PlanCache::makeKey(W4.E, bindings(W4, O4), O));
}

TEST(PlanCache, CheckoutIsExclusiveAndLruEvicts) {
  Workload W = makeWorkload("ssymv", 1);
  CompileResult R = compileEinsum(W.E);

  PlanCache C(2);
  C.release("k1", std::make_unique<Executor>(R.Optimized, ExecOptions()));
  C.release("k2", std::make_unique<Executor>(R.Optimized, ExecOptions()));
  EXPECT_EQ(C.stats().Entries, 2u);

  // Checkout removes: a second acquire of the same key misses.
  std::unique_ptr<Executor> E1 = C.acquire("k1");
  EXPECT_NE(E1, nullptr);
  EXPECT_EQ(C.acquire("k1"), nullptr);
  EXPECT_EQ(C.stats().Hits, 1u);
  EXPECT_EQ(C.stats().Misses, 1u);

  // Release back, then exceed capacity: k2 is now least recently used.
  C.release("k1", std::move(E1));
  C.release("k3", std::make_unique<Executor>(R.Optimized, ExecOptions()));
  EXPECT_EQ(C.stats().Entries, 2u);
  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_EQ(C.acquire("k2"), nullptr) << "k2 should have been evicted";
  EXPECT_NE(C.acquire("k3"), nullptr);

  // Capacity 0 disables caching entirely.
  PlanCache Off(0);
  Off.release("k", std::make_unique<Executor>(R.Optimized, ExecOptions()));
  EXPECT_EQ(Off.stats().Entries, 0u);
  EXPECT_EQ(Off.acquire("k"), nullptr);
}

//===----------------------------------------------------------------------===//
// Executor::rebind — the cache-hit fast path
//===----------------------------------------------------------------------===//

struct RebindParam {
  std::string Kernel;
  unsigned Threads;
};

class RebindSweep : public ::testing::TestWithParam<RebindParam> {};

TEST_P(RebindSweep, ReboundRunIsBitIdenticalAndSkipsCompilation) {
  const RebindParam &P = GetParam();
  ExecOptions Options;
  Options.Threads = P.Threads;

  Workload W1 = makeWorkload(P.Kernel, 1);
  Workload W2 = makeWorkload(P.Kernel, 2); // same structure, new values

  CompileResult R = compileEinsum(W1.E);
  Tensor Out1 = freshOutput(W1);
  Executor E(R.Optimized, Options);
  for (auto &[Name, T] : W1.Inputs)
    E.bind(Name, &T);
  E.bind(W1.E.Output->tensorName(), &Out1);
  ASSERT_TRUE(E.tryPrepare().ok());
  obs::ExecReport First;
  ASSERT_TRUE(E.tryRun(&First).ok());
  EXPECT_GT(First.phaseNs("plan-compile"), 0u);

  // Rebind onto the second workload's tensors and re-run.
  Tensor Out2 = freshOutput(W2);
  ASSERT_TRUE(E.rebind(bindings(W2, Out2), Options).ok());
  obs::ExecReport Second;
  ASSERT_TRUE(E.tryRun(&Second).ok());

  // The hit path must skip plan compilation and specialization
  // outright — pinned at exactly zero, not "small".
  EXPECT_EQ(Second.phaseNs("plan-compile"), 0u);
  EXPECT_EQ(Second.phaseNs("specialize"), 0u);

  // Results and counters are bit-identical to a fresh solo run over
  // the same tensors, and the structure key matches (same phases, same
  // loops, same counter deltas).
  Tensor Solo = soloRun(W2, Options);
  expectBitIdentical(Out2, Solo, P.Kernel + " rebound vs solo");
  CompileResult R2 = compileEinsum(W2.E);
  Tensor SoloOut = freshOutput(W2);
  Executor SoloE(R2.Optimized, Options);
  for (auto &[Name, T] : W2.Inputs)
    SoloE.bind(Name, &T);
  SoloE.bind(W2.E.Output->tensorName(), &SoloOut);
  ASSERT_TRUE(SoloE.tryPrepare().ok());
  obs::ExecReport SoloReport;
  ASSERT_TRUE(SoloE.tryRun(&SoloReport).ok());
  EXPECT_EQ(Second.structureKey(), SoloReport.structureKey());
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, RebindSweep,
    ::testing::Values(RebindParam{"ssymv", 1}, RebindParam{"ssymv", 4},
                      RebindParam{"bellmanford", 1},
                      RebindParam{"syprd", 4}, RebindParam{"ssyrk", 1},
                      RebindParam{"ssyrk", 4}, RebindParam{"mttkrp3", 4}),
    [](const ::testing::TestParamInfo<RebindParam> &I) {
      return I.param.Kernel + "_t" + std::to_string(I.param.Threads);
    });

TEST(Rebind, RejectsStructureMismatch) {
  Workload W = makeWorkload("ssymv", 1);
  CompileResult R = compileEinsum(W.E);
  Tensor Out = freshOutput(W);
  Executor E(R.Optimized, ExecOptions());
  for (auto &[Name, T] : W.Inputs)
    E.bind(Name, &T);
  E.bind(W.E.Output->tensorName(), &Out);
  ASSERT_TRUE(E.tryPrepare().ok());

  // Different dims.
  Workload Big = makeWorkload("ssymv", 1, 2);
  Tensor BigOut = freshOutput(Big);
  Status S = E.rebind(bindings(Big, BigOut), ExecOptions());
  EXPECT_EQ(S.code(), ErrCode::InvalidArgument);

  // Missing tensor.
  std::map<std::string, Tensor *> Partial;
  Partial["A"] = &W.Inputs.at("A");
  EXPECT_EQ(E.rebind(Partial, ExecOptions()).code(),
            ErrCode::UnboundTensor);

  // The executor stays runnable on its previous bindings after a
  // refused rebind.
  EXPECT_TRUE(E.tryRun().ok());
}

//===----------------------------------------------------------------------===//
// KernelService lifecycle
//===----------------------------------------------------------------------===//

TEST(KernelService, SecondRequestHitsTheCache) {
  ServiceOptions SO;
  SO.Workers = 1; // deterministic ordering
  KernelService Svc(SO);

  Workload W1 = makeWorkload("ssymv", 1);
  Workload W2 = makeWorkload("ssymv", 2);
  Tensor O1 = freshOutput(W1), O2 = freshOutput(W2);

  KernelRequest R1{"first", W1.E, bindings(W1, O1), ExecOptions()};
  auto H1 = Svc.submit(std::move(R1));
  ASSERT_TRUE(H1.ok());
  const RequestResult &Res1 = H1->wait();
  ASSERT_TRUE(Res1.St.ok()) << Res1.St.str();
  EXPECT_FALSE(Res1.CacheHit);
  EXPECT_GT(Res1.Report.phaseNs("plan-compile"), 0u);

  KernelRequest R2{"second", W2.E, bindings(W2, O2), ExecOptions()};
  auto H2 = Svc.submit(std::move(R2));
  ASSERT_TRUE(H2.ok());
  const RequestResult &Res2 = H2->wait();
  ASSERT_TRUE(Res2.St.ok()) << Res2.St.str();
  EXPECT_TRUE(Res2.CacheHit);
  // The pinned contract: a hit skips plan-compile and specialize.
  EXPECT_EQ(Res2.Report.phaseNs("plan-compile"), 0u);
  EXPECT_EQ(Res2.Report.phaseNs("specialize"), 0u);

  const KernelService::Stats St = Svc.stats();
  EXPECT_EQ(St.Cache.Hits, 1u);
  EXPECT_EQ(St.Cache.Misses, 1u);
  EXPECT_EQ(St.Completed, 2u);
  EXPECT_EQ(St.LatencyNs.count(), 2u);

  // Both results bit-identical to solo runs.
  Tensor Solo1 = soloRun(W1), Solo2 = soloRun(W2);
  expectBitIdentical(O1, Solo1, "first request");
  expectBitIdentical(O2, Solo2, "second request");
}

TEST(KernelService, PerRequestCountersDoNotFlushGlobally) {
  setCountersEnabled(true);
  Workload W = makeWorkload("ssymv", 1);
  Tensor Out = freshOutput(W);
  const CounterSnapshot Before = counters().snapshot();
  {
    ServiceOptions SO;
    SO.Workers = 1;
    KernelService Svc(SO);
    auto H = Svc.submit({"req", W.E, bindings(W, Out), ExecOptions()});
    ASSERT_TRUE(H.ok());
    const RequestResult &Res = H->wait();
    ASSERT_TRUE(Res.St.ok()) << Res.St.str();
    // The run did real work and its deltas are in the report...
    EXPECT_GT(Res.Report.Counters.SparseReads, 0u);
    // ...and in the service aggregate.
    EXPECT_EQ(Svc.stats().Counters.SparseReads,
              Res.Report.Counters.SparseReads);
  }
  // ...but not in the process-global counters.
  const CounterSnapshot After = counters().snapshot();
  EXPECT_EQ(After.SparseReads, Before.SparseReads);
  EXPECT_EQ(After.Reductions, Before.Reductions);
}

TEST(KernelService, PreCancelledRequestAbortsCleanly) {
  ServiceOptions SO;
  SO.Workers = 1;
  KernelService Svc(SO);

  Workload W = makeWorkload("ssymv", 1);
  Tensor Out = freshOutput(W);
  const std::vector<double> InitVals = Out.vals();

  CancelToken Tok;
  Tok.cancel();
  ExecOptions O;
  O.Cancel = &Tok;
  auto H = Svc.submit({"cancelled", W.E, bindings(W, Out), O});
  ASSERT_TRUE(H.ok());
  const RequestResult &Res = H->wait();
  EXPECT_EQ(Res.St.code(), ErrCode::Cancelled);
  EXPECT_EQ(Res.Report.AbortReason, "cancelled");
  // Outputs untouched, and the aborted run's executor went back to the
  // cache (the plan survives a clean abort).
  EXPECT_EQ(Out.vals(), InitVals);
  EXPECT_EQ(Svc.stats().Failed, 1u);
  EXPECT_EQ(Svc.stats().Cache.Entries, 1u);

  // A fresh uncancelled request reuses the cached plan and completes.
  Tensor Out2 = freshOutput(W);
  auto H2 = Svc.submit({"retry", W.E, bindings(W, Out2), ExecOptions()});
  ASSERT_TRUE(H2.ok());
  const RequestResult &Res2 = H2->wait();
  ASSERT_TRUE(Res2.St.ok()) << Res2.St.str();
  EXPECT_TRUE(Res2.CacheHit);
  expectBitIdentical(Out2, soloRun(W), "post-cancel retry");
}

TEST(KernelService, AdmissionControlRejectsWhenQueueIsFull) {
  ServiceOptions SO;
  SO.Workers = 1;
  SO.QueueLimit = 3;
  KernelService Svc(SO);
  Svc.pause(); // nothing dequeues: the queue fills deterministically

  Workload W = makeWorkload("ssymv", 1);
  std::vector<Tensor> Outs;
  Outs.reserve(4);
  std::vector<RequestHandle> Handles;
  for (int I = 0; I < 3; ++I) {
    Outs.push_back(freshOutput(W));
    auto H = Svc.submit({"q" + std::to_string(I), W.E,
                         bindings(W, Outs.back()), ExecOptions()});
    ASSERT_TRUE(H.ok()) << "request " << I << " should be admitted";
    Handles.push_back(*H);
  }
  Outs.push_back(freshOutput(W));
  auto Rejected = Svc.submit(
      {"overflow", W.E, bindings(W, Outs.back()), ExecOptions()});
  ASSERT_FALSE(Rejected.ok());
  EXPECT_EQ(Rejected.status().code(), ErrCode::ResourceExhausted);

  Svc.resume();
  for (auto &H : Handles)
    EXPECT_TRUE(H.wait().St.ok());
  const KernelService::Stats St = Svc.stats();
  EXPECT_EQ(St.Submitted, 3u);
  EXPECT_EQ(St.Rejected, 1u);
  EXPECT_EQ(St.Completed, 3u);
}

TEST(KernelService, InvalidRequestsAreRejectedAtSubmit) {
  KernelService Svc;
  Workload W = makeWorkload("ssymv", 1);
  auto NoBindings = Svc.submit({"none", W.E, {}, ExecOptions()});
  ASSERT_FALSE(NoBindings.ok());
  EXPECT_EQ(NoBindings.status().code(), ErrCode::InvalidArgument);

  std::map<std::string, Tensor *> Null;
  Null["A"] = nullptr;
  auto NullBinding = Svc.submit({"null", W.E, Null, ExecOptions()});
  ASSERT_FALSE(NullBinding.ok());
  EXPECT_EQ(NullBinding.status().code(), ErrCode::InvalidArgument);
}

//===----------------------------------------------------------------------===//
// Concurrency stress: shared pool, mixed kernels, cancel injection
//===----------------------------------------------------------------------===//

TEST(ServiceStress, ConcurrentMixedKernelsMatchSoloBitForBit) {
  const std::vector<std::string> Kernels = {"ssymv", "syprd", "ssyrk",
                                            "mttkrp3"};
  const std::vector<unsigned> ThreadsSweep = {1, 4};

  // Solo references (and workload storage) first, single-threaded.
  struct Case {
    Workload W;
    Tensor Solo;
    ExecOptions Options;
  };
  std::vector<Case> Cases;
  for (const std::string &K : Kernels)
    for (unsigned T : ThreadsSweep)
      for (uint64_t Seed : {7u, 8u}) {
        Case C{makeWorkload(K, Seed), Tensor::dense({1}, 0.0), {}};
        C.Options.Threads = T;
        C.Solo = soloRun(C.W, C.Options);
        Cases.push_back(std::move(C));
      }

  // Two rounds through the service: round 0 populates the cache, round
  // 1 is all hits; both must match solo bit for bit.
  ServiceOptions SO;
  SO.Workers = 4;
  KernelService Svc(SO);
  for (int Round = 0; Round < 2; ++Round) {
    std::vector<Tensor> Outs;
    Outs.reserve(Cases.size());
    std::vector<RequestHandle> Handles;
    for (size_t I = 0; I < Cases.size(); ++I) {
      Outs.push_back(freshOutput(Cases[I].W));
      auto H = Svc.submit({"r" + std::to_string(Round) + "-" +
                               std::to_string(I),
                           Cases[I].W.E, bindings(Cases[I].W, Outs.back()),
                           Cases[I].Options});
      ASSERT_TRUE(H.ok());
      Handles.push_back(*H);
    }
    for (size_t I = 0; I < Handles.size(); ++I) {
      const RequestResult &Res = Handles[I].wait();
      ASSERT_TRUE(Res.St.ok()) << Res.St.str();
      ASSERT_TRUE(Res.Report.AbortReason.empty());
      expectBitIdentical(Outs[I], Cases[I].Solo,
                         "round " + std::to_string(Round) + " case " +
                             std::to_string(I));
    }
  }
  const KernelService::Stats St = Svc.stats();
  EXPECT_EQ(St.Completed, 2 * Cases.size());
  EXPECT_EQ(St.Failed, 0u);
  // The two seeds of each (kernel, threads) pair share a cache key, so
  // there are Cases/2 distinct keys. Round 1 guarantees one hit per
  // key (checkout is exclusive, so a same-key pair racing through
  // concurrent workers scores hit + miss); serialized pairs and round
  // 0 can add more.
  EXPECT_GE(St.Cache.Hits, Cases.size() / 2);
  EXPECT_EQ(St.RebindFailures, 0u);
}

TEST(ServiceStress, RandomCancelInjectionNeverCorruptsResults) {
  const std::vector<std::string> Kernels = {"ssymv", "ssyrk"};
  struct Case {
    Workload W;
    Tensor Solo;
    ExecOptions Options;
  };
  std::vector<Case> Cases;
  for (const std::string &K : Kernels)
    for (unsigned T : {1u, 4u}) {
      Case C{makeWorkload(K, 11, 2), Tensor::dense({1}, 0.0), {}};
      C.Options.Threads = T;
      C.Solo = soloRun(C.W, C.Options);
      Cases.push_back(std::move(C));
    }

  ServiceOptions SO;
  SO.Workers = 4;
  KernelService Svc(SO);

  const int Waves = 6;
  std::vector<Tensor> Outs;
  std::vector<std::vector<double>> Inits;
  std::vector<RequestHandle> Handles;
  std::vector<std::unique_ptr<CancelToken>> Tokens;
  std::vector<size_t> CaseOf;
  Outs.reserve(Waves * Cases.size());
  for (int Wv = 0; Wv < Waves; ++Wv)
    for (size_t I = 0; I < Cases.size(); ++I) {
      Outs.push_back(freshOutput(Cases[I].W));
      Inits.push_back(Outs.back().vals());
      Tokens.push_back(std::make_unique<CancelToken>());
      ExecOptions O = Cases[I].Options;
      // Every third request races a cancel; a mix of deadlines rides
      // along (generous enough to usually pass, tight enough to
      // occasionally fire under TSan).
      const size_t Idx = Outs.size() - 1;
      if (Idx % 3 == 0)
        O.Cancel = Tokens.back().get();
      if (Idx % 5 == 0)
        O.DeadlineMs = 200;
      auto H = Svc.submit({"inj" + std::to_string(Idx), Cases[I].W.E,
                           bindings(Cases[I].W, Outs.back()), O});
      ASSERT_TRUE(H.ok());
      Handles.push_back(*H);
      CaseOf.push_back(I);
    }

  // Cancel from a separate thread at staggered points mid-traffic.
  std::thread Canceller([&] {
    for (size_t Idx = 0; Idx < Tokens.size(); Idx += 3) {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * (Idx % 7)));
      Tokens[Idx]->cancel();
    }
  });
  Canceller.join();

  size_t Ok = 0, Aborted = 0;
  for (size_t Idx = 0; Idx < Handles.size(); ++Idx) {
    const RequestResult &Res = Handles[Idx].wait();
    if (Res.St.ok()) {
      ++Ok;
      // Completed requests are bit-identical to solo, reports clean.
      expectBitIdentical(Outs[Idx], Cases[CaseOf[Idx]].Solo,
                         "request " + std::to_string(Idx));
      EXPECT_TRUE(Res.Report.AbortReason.empty());
      if (Res.CacheHit)
        EXPECT_EQ(Res.Report.phaseNs("plan-compile"), 0u);
    } else {
      ++Aborted;
      // Aborted requests surface a real reason and leave the output
      // exactly as initialized.
      ASSERT_TRUE(Res.St.code() == ErrCode::Cancelled ||
                  Res.St.code() == ErrCode::DeadlineExceeded)
          << Res.St.str();
      EXPECT_FALSE(Res.Report.AbortReason.empty());
      EXPECT_EQ(Outs[Idx].vals(), Inits[Idx]) << "partial writes leaked";
    }
  }
  EXPECT_EQ(Ok + Aborted, Handles.size());
  const KernelService::Stats St = Svc.stats();
  EXPECT_EQ(St.Completed, Ok);
  EXPECT_EQ(St.Failed, Aborted);
}

//===----------------------------------------------------------------------===//
// Per-caller pool accounting under concurrent submitters
//===----------------------------------------------------------------------===//

TEST(ServiceStress, ConcurrentSubmittersGetSeparateCallerSlots) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Id1{0}, Id2{0};
  auto Spin = [] {
    volatile double X = 1.0;
    for (int I = 0; I < 20000; ++I)
      X = X * 1.0000001;
    (void)X;
  };
  std::thread T1([&] {
    for (int I = 0; I < 4; ++I)
      Pool.parallelFor(6, [&](unsigned) { Spin(); });
    Id1 = Pool.currentCallerId();
  });
  std::thread T2([&] {
    for (int I = 0; I < 4; ++I)
      Pool.parallelFor(6, [&](unsigned) { Spin(); });
    Id2 = Pool.currentCallerId();
  });
  T1.join();
  T2.join();
  EXPECT_NE(Id1.load(), Id2.load())
      << "each submitting thread gets its own caller slot";

  const auto Snap = Pool.activitySnapshot();
  ASSERT_GT(Snap.Callers.size(), std::max(Id1.load(), Id2.load()));
  // Every task of every batch is accounted exactly once, across the
  // two caller slots and the workers.
  uint64_t Total = Snap.callersTotal().Tasks;
  for (const auto &W : Snap.Workers)
    Total += W.Tasks;
  EXPECT_EQ(Total, 2u * 4u * 6u);
  // Both submitters accumulated wait or exec time in their own slots
  // (ticket-FIFO submission always charges the queue wait to the
  // submitter that paid it).
  const auto &C1 = Snap.Callers[Id1.load()];
  const auto &C2 = Snap.Callers[Id2.load()];
  EXPECT_GT(C1.WaitNs + C1.ExecNs + C1.Tasks, 0u);
  EXPECT_GT(C2.WaitNs + C2.ExecNs + C2.Tasks, 0u);
}
