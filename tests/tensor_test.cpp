//===- tests/tensor_test.cpp ----------------------------------*- C++ -*-===//
///
/// Tests for COO staging and the fibertree level formats (Dense,
/// Sparse, RunLength, Banded), including property sweeps that build the
/// same random tensor in every format and compare element-wise.
///
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "tensor/Tensor.h"

#include <gtest/gtest.h>

#include <set>

using namespace systec;

//===----------------------------------------------------------------------===//
// Coo
//===----------------------------------------------------------------------===//

TEST(Coo, AddAndQuery) {
  Coo C({4, 5});
  C.add({1, 2}, 3.0);
  C.add({0, 4}, 1.5);
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(C.coord(0, 0), 1);
  EXPECT_EQ(C.coord(0, 1), 2);
  EXPECT_EQ(C.value(1), 1.5);
}

TEST(Coo, SortOrderIsColumnMajor) {
  Coo C({4, 4});
  C.add({3, 0}, 1);
  C.add({0, 2}, 2);
  C.add({1, 0}, 3);
  C.sortAndCombine();
  // Sorted by last mode first: (1,0), (3,0), (0,2).
  EXPECT_EQ(C.coord(0, 0), 1);
  EXPECT_EQ(C.coord(1, 0), 3);
  EXPECT_EQ(C.coord(2, 1), 2);
}

TEST(Coo, CombineDuplicatesWithAdd) {
  Coo C({3, 3});
  C.add({1, 1}, 2.0);
  C.add({1, 1}, 3.0);
  C.sortAndCombine(OpKind::Add);
  EXPECT_EQ(C.size(), 1u);
  EXPECT_EQ(C.value(0), 5.0);
}

TEST(Coo, CombineDuplicatesWithMin) {
  Coo C({3, 3});
  C.add({1, 1}, 2.0);
  C.add({1, 1}, 3.0);
  C.sortAndCombine(OpKind::Min);
  EXPECT_EQ(C.value(0), 2.0);
}

TEST(Coo, Transposed) {
  Coo C({2, 3});
  C.add({1, 2}, 7.0);
  Coo T = C.transposed({1, 0});
  EXPECT_EQ(T.dims()[0], 3);
  EXPECT_EQ(T.dims()[1], 2);
  EXPECT_EQ(T.coord(0, 0), 2);
  EXPECT_EQ(T.coord(0, 1), 1);
}

TEST(Coo, Append) {
  Coo A({3}), B({3});
  A.add({0}, 1);
  B.add({2}, 2);
  A.append(B);
  EXPECT_EQ(A.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Dense tensors
//===----------------------------------------------------------------------===//

TEST(TensorDense, ZerosAndRef) {
  Tensor T = Tensor::dense({3, 4});
  EXPECT_EQ(T.storedCount(), 12u);
  T.denseRef({2, 3}) = 5.0;
  EXPECT_EQ(T.at({2, 3}), 5.0);
  EXPECT_EQ(T.at({0, 0}), 0.0);
}

TEST(TensorDense, ColumnMajorLayout) {
  // Mode 0 is contiguous (Fortran order), like Finch.
  Tensor T = Tensor::dense({2, 2});
  T.denseRef({1, 0}) = 1.0;
  EXPECT_EQ(T.vals()[1], 1.0);
  T.denseRef({0, 1}) = 2.0;
  EXPECT_EQ(T.vals()[2], 2.0);
}

TEST(TensorDense, FillValue) {
  Tensor T = Tensor::dense({2}, 9.0);
  EXPECT_EQ(T.at({1}), 9.0);
}

//===----------------------------------------------------------------------===//
// Sparse formats
//===----------------------------------------------------------------------===//

TEST(TensorSparse, CscBuild) {
  // A[i,j] in Dense(Sparse(Element)): top level j.
  Coo C({4, 3});
  C.add({2, 0}, 1.0);
  C.add({0, 1}, 2.0);
  C.add({3, 1}, 3.0);
  Tensor T = Tensor::fromCoo(std::move(C), TensorFormat::csf(2));
  EXPECT_EQ(T.storedCount(), 3u);
  const Level &Rows = T.level(1);
  // Column pointers over 3 columns.
  ASSERT_EQ(T.level(0).Kind, LevelKind::Dense);
  ASSERT_EQ(Rows.Kind, LevelKind::Sparse);
  EXPECT_EQ(Rows.Ptr[0], 0);
  EXPECT_EQ(Rows.Ptr[1], 1);
  EXPECT_EQ(Rows.Ptr[2], 3);
  EXPECT_EQ(Rows.Ptr[3], 3);
  EXPECT_EQ(T.at({2, 0}), 1.0);
  EXPECT_EQ(T.at({0, 1}), 2.0);
  EXPECT_EQ(T.at({1, 1}), 0.0);
}

TEST(TensorSparse, Csf3Build) {
  Coo C({3, 3, 3});
  C.add({0, 1, 2}, 1.0);
  C.add({1, 1, 2}, 2.0);
  C.add({0, 0, 1}, 3.0);
  Tensor T = Tensor::fromCoo(std::move(C), TensorFormat::csf(3));
  EXPECT_EQ(T.at({0, 1, 2}), 1.0);
  EXPECT_EQ(T.at({1, 1, 2}), 2.0);
  EXPECT_EQ(T.at({0, 0, 1}), 3.0);
  EXPECT_EQ(T.at({2, 2, 2}), 0.0);
  EXPECT_EQ(T.storedCount(), 3u);
}

TEST(TensorSparse, FillPropagates) {
  Coo C({3, 3});
  C.add({0, 0}, 5.0);
  double Inf = std::numeric_limits<double>::infinity();
  Tensor T = Tensor::fromCoo(std::move(C), TensorFormat::csf(2), Inf);
  EXPECT_EQ(T.at({1, 1}), Inf);
  EXPECT_EQ(T.at({0, 0}), 5.0);
}

TEST(TensorSparse, LocateOnLevels) {
  Coo C({4, 4});
  C.add({1, 2}, 1.0);
  C.add({3, 2}, 2.0);
  Tensor T = Tensor::fromCoo(std::move(C), TensorFormat::csf(2));
  // Level 0 dense: position = coordinate.
  EXPECT_EQ(T.locate(0, 0, 2), 2);
  // Level 1 sparse under column 2.
  int64_t P1 = T.locate(1, 2, 1);
  ASSERT_GE(P1, 0);
  EXPECT_EQ(T.val(P1), 1.0);
  EXPECT_EQ(T.locate(1, 2, 0), -1);
}

TEST(TensorSparse, ForEachVisitsInOrder) {
  Coo C({3, 3});
  C.add({2, 1}, 1.0);
  C.add({0, 0}, 2.0);
  C.add({1, 1}, 3.0);
  Tensor T = Tensor::fromCoo(std::move(C), TensorFormat::csf(2));
  std::vector<double> Vals;
  T.forEach([&Vals](const std::vector<int64_t> &, double V) {
    Vals.push_back(V);
  });
  std::vector<double> Expect{2.0, 3.0, 1.0}; // column-major order
  EXPECT_EQ(Vals, Expect);
}

TEST(TensorSparse, RoundTripThroughCoo) {
  Rng R(5);
  Coo C({10, 10});
  std::set<std::pair<int64_t, int64_t>> Seen;
  for (int K = 0; K < 30; ++K) {
    int64_t I = R.nextIndex(10), J = R.nextIndex(10);
    if (Seen.insert({I, J}).second)
      C.add({I, J}, R.nextDouble());
  }
  Tensor T = Tensor::fromCoo(C, TensorFormat::csf(2));
  Tensor U = Tensor::fromCoo(T.toCoo(), TensorFormat::csf(2));
  EXPECT_EQ(Tensor::maxAbsDiff(T, U), 0.0);
}

TEST(TensorSparse, Transpose) {
  Coo C({3, 4});
  C.add({2, 3}, 7.0);
  C.add({0, 1}, 1.0);
  Tensor T = Tensor::fromCoo(std::move(C), TensorFormat::csf(2));
  Tensor U = T.transposed({1, 0}, TensorFormat::csf(2));
  EXPECT_EQ(U.dim(0), 4);
  EXPECT_EQ(U.dim(1), 3);
  EXPECT_EQ(U.at({3, 2}), 7.0);
  EXPECT_EQ(U.at({1, 0}), 1.0);
}

TEST(TensorSparse, SplitDiagonal) {
  Coo C({3, 3});
  C.add({0, 0}, 1.0);
  C.add({1, 2}, 2.0);
  C.add({2, 1}, 2.0);
  C.add({2, 2}, 3.0);
  Tensor T = Tensor::fromCoo(std::move(C), TensorFormat::csf(2));
  auto [Off, Diag] = T.splitDiagonal(Partition::full(2));
  EXPECT_EQ(Off.storedCount(), 2u);
  EXPECT_EQ(Diag.storedCount(), 2u);
  EXPECT_EQ(Diag.at({0, 0}), 1.0);
  EXPECT_EQ(Off.at({0, 0}), 0.0);
  EXPECT_EQ(Off.at({1, 2}), 2.0);
}

TEST(TensorSparse, SplitDiagonalPartial) {
  // Only equalities within a part count as diagonal.
  Coo C({3, 3, 3});
  C.add({1, 1, 2}, 1.0); // modes 0,1 equal
  C.add({1, 2, 2}, 2.0); // modes 1,2 equal (different parts)
  Tensor T = Tensor::fromCoo(std::move(C), TensorFormat::csf(3));
  auto [Off, Diag] = T.splitDiagonal(Partition::parse(3, "{0,1}"));
  EXPECT_EQ(Diag.storedCount(), 1u);
  EXPECT_EQ(Off.storedCount(), 1u);
  EXPECT_EQ(Diag.at({1, 1, 2}), 1.0);
}

//===----------------------------------------------------------------------===//
// Structured formats
//===----------------------------------------------------------------------===//

TEST(TensorRle, RunsCompress) {
  // Vector 0 0 5 5 5 0: three runs.
  Coo C({6});
  C.add({2}, 5.0);
  C.add({3}, 5.0);
  C.add({4}, 5.0);
  TensorFormat F;
  F.Levels = {LevelKind::RunLength};
  Tensor T = Tensor::fromCoo(std::move(C), F);
  EXPECT_EQ(T.storedCount(), 3u); // [0,2) fill, [2,5) 5s, [5,6) fill
  EXPECT_EQ(T.at({0}), 0.0);
  EXPECT_EQ(T.at({3}), 5.0);
  EXPECT_EQ(T.at({5}), 0.0);
}

TEST(TensorRle, MatrixRleRows) {
  // Dense(RunLength): each column stored as runs.
  Coo C({4, 2});
  for (int64_t I = 0; I < 4; ++I)
    C.add({I, 0}, 2.0);
  C.add({1, 1}, 3.0);
  TensorFormat F;
  F.Levels = {LevelKind::Dense, LevelKind::RunLength};
  Tensor T = Tensor::fromCoo(std::move(C), F);
  // Column 0 is one run; column 1 is three.
  EXPECT_EQ(T.storedCount(), 4u);
  EXPECT_EQ(T.at({2, 0}), 2.0);
  EXPECT_EQ(T.at({1, 1}), 3.0);
  EXPECT_EQ(T.at({2, 1}), 0.0);
}

TEST(TensorRle, ForEachExpandsRuns) {
  Coo C({5});
  C.add({1}, 4.0);
  C.add({2}, 4.0);
  TensorFormat F;
  F.Levels = {LevelKind::RunLength};
  Tensor T = Tensor::fromCoo(std::move(C), F);
  int Count = 0;
  T.forEach([&Count](const std::vector<int64_t> &, double) { ++Count; });
  EXPECT_EQ(Count, 5); // RLE covers the full extent
}

TEST(TensorBanded, BandStorage) {
  // Tridiagonal 5x5: banded rows under dense columns.
  Coo C({5, 5});
  for (int64_t I = 0; I < 5; ++I)
    for (int64_t J = std::max<int64_t>(0, I - 1);
         J <= std::min<int64_t>(4, I + 1); ++J)
      C.add({I, J}, 1.0 + I + J);
  TensorFormat F;
  F.Levels = {LevelKind::Dense, LevelKind::Banded};
  Tensor T = Tensor::fromCoo(std::move(C), F);
  EXPECT_EQ(T.at({2, 3}), 6.0);
  EXPECT_EQ(T.at({0, 4}), 0.0); // outside the band
  EXPECT_EQ(T.level(1).Lo[2], 1);
  EXPECT_EQ(T.level(1).Hi[2], 4);
}

TEST(TensorBanded, EmptyColumns) {
  Coo C({4, 4});
  C.add({1, 2}, 5.0);
  TensorFormat F;
  F.Levels = {LevelKind::Dense, LevelKind::Banded};
  Tensor T = Tensor::fromCoo(std::move(C), F);
  EXPECT_EQ(T.at({0, 0}), 0.0);
  EXPECT_EQ(T.at({1, 2}), 5.0);
}

//===----------------------------------------------------------------------===//
// Cross-format property sweep
//===----------------------------------------------------------------------===//

struct FormatCase {
  const char *Name;
  std::vector<LevelKind> Levels;
};

class FormatEquivalence : public ::testing::TestWithParam<FormatCase> {};

TEST_P(FormatEquivalence, MatchesDenseReference) {
  Rng R(11);
  const int64_t N = 12;
  Coo C({N, N});
  Tensor Ref = Tensor::dense({N, N});
  std::set<std::pair<int64_t, int64_t>> Seen;
  for (int K = 0; K < 40; ++K) {
    int64_t I = R.nextIndex(N), J = R.nextIndex(N);
    if (!Seen.insert({I, J}).second)
      continue;
    double V = R.nextDouble();
    C.add({I, J}, V);
    Ref.denseRef({I, J}) = V;
  }
  TensorFormat F;
  F.Levels = GetParam().Levels;
  Tensor T = Tensor::fromCoo(std::move(C), F);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J)
      EXPECT_EQ(T.at({I, J}), Ref.at({I, J}))
          << GetParam().Name << " at (" << I << "," << J << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatEquivalence,
    ::testing::Values(
        FormatCase{"DenseDense", {LevelKind::Dense, LevelKind::Dense}},
        FormatCase{"Csc", {LevelKind::Dense, LevelKind::Sparse}},
        FormatCase{"Dcsc", {LevelKind::Sparse, LevelKind::Sparse}},
        FormatCase{"SparseDense", {LevelKind::Sparse, LevelKind::Dense}},
        FormatCase{"DenseRle", {LevelKind::Dense, LevelKind::RunLength}},
        FormatCase{"DenseBanded", {LevelKind::Dense, LevelKind::Banded}},
        FormatCase{"SparseBanded", {LevelKind::Sparse, LevelKind::Banded}}),
    [](const ::testing::TestParamInfo<FormatCase> &Info) {
      return Info.param.Name;
    });

TEST(TensorMisc, MaxAbsDiffSeesBothSides) {
  Coo A({3}), B({3});
  A.add({0}, 1.0);
  B.add({2}, 4.0);
  Tensor TA = Tensor::fromCoo(std::move(A), TensorFormat::csf(1));
  Tensor TB = Tensor::fromCoo(std::move(B), TensorFormat::csf(1));
  EXPECT_EQ(Tensor::maxAbsDiff(TA, TB), 4.0);
}

TEST(TensorMisc, Summary) {
  Tensor T = Tensor::dense({2, 3});
  EXPECT_EQ(T.summary(), "2-d 2x3, 6 stored, Dense(Dense(Element(0.0)))");
}
