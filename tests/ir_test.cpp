//===- tests/ir_test.cpp --------------------------------------*- C++ -*-===//
///
/// Tests for operators, conditions, expressions, statements, and the
/// einsum parser.
///
//===----------------------------------------------------------------------===//

#include "ir/Cond.h"
#include "ir/Einsum.h"
#include "ir/Expr.h"
#include "ir/Ops.h"
#include "ir/Stmt.h"

#include <gtest/gtest.h>

#include <limits>

using namespace systec;

//===----------------------------------------------------------------------===//
// Ops
//===----------------------------------------------------------------------===//

TEST(Ops, AddProperties) {
  const OpInfo &I = opInfo(OpKind::Add);
  EXPECT_TRUE(I.Commutative);
  EXPECT_TRUE(I.Associative);
  EXPECT_FALSE(I.Idempotent);
  EXPECT_EQ(I.Identity, 0.0);
  EXPECT_FALSE(I.Annihilator.has_value());
}

TEST(Ops, MulAnnihilator) {
  const OpInfo &I = opInfo(OpKind::Mul);
  ASSERT_TRUE(I.Annihilator.has_value());
  EXPECT_EQ(*I.Annihilator, 0.0);
  EXPECT_EQ(I.Identity, 1.0);
}

TEST(Ops, MinIsIdempotentWithInfIdentity) {
  const OpInfo &I = opInfo(OpKind::Min);
  EXPECT_TRUE(I.Idempotent);
  EXPECT_EQ(I.Identity, std::numeric_limits<double>::infinity());
}

TEST(Ops, EvalAll) {
  EXPECT_EQ(evalOp(OpKind::Add, 2, 3), 5);
  EXPECT_EQ(evalOp(OpKind::Mul, 2, 3), 6);
  EXPECT_EQ(evalOp(OpKind::Sub, 2, 3), -1);
  EXPECT_EQ(evalOp(OpKind::Div, 6, 3), 2);
  EXPECT_EQ(evalOp(OpKind::Min, 2, 3), 2);
  EXPECT_EQ(evalOp(OpKind::Max, 2, 3), 3);
}

TEST(Ops, ReductionOps) {
  EXPECT_TRUE(isReductionOp(OpKind::Add));
  EXPECT_TRUE(isReductionOp(OpKind::Min));
  EXPECT_FALSE(isReductionOp(OpKind::Sub));
  EXPECT_FALSE(isReductionOp(OpKind::Div));
}

TEST(Ops, Parse) {
  EXPECT_EQ(parseOp("+"), OpKind::Add);
  EXPECT_EQ(parseOp("min"), OpKind::Min);
  EXPECT_FALSE(parseOp("??").has_value());
}

//===----------------------------------------------------------------------===//
// Cond
//===----------------------------------------------------------------------===//

TEST(Cond, EvalCmpAll) {
  EXPECT_TRUE(evalCmp(CmpKind::LT, 1, 2));
  EXPECT_FALSE(evalCmp(CmpKind::LT, 2, 2));
  EXPECT_TRUE(evalCmp(CmpKind::LE, 2, 2));
  EXPECT_TRUE(evalCmp(CmpKind::EQ, 3, 3));
  EXPECT_TRUE(evalCmp(CmpKind::NE, 3, 4));
  EXPECT_TRUE(evalCmp(CmpKind::GT, 5, 4));
  EXPECT_TRUE(evalCmp(CmpKind::GE, 4, 4));
}

TEST(Cond, SwapAndNegate) {
  EXPECT_EQ(swapCmp(CmpKind::LT), CmpKind::GT);
  EXPECT_EQ(swapCmp(CmpKind::LE), CmpKind::GE);
  EXPECT_EQ(swapCmp(CmpKind::EQ), CmpKind::EQ);
  EXPECT_EQ(negateCmp(CmpKind::LT), CmpKind::GE);
  EXPECT_EQ(negateCmp(CmpKind::EQ), CmpKind::NE);
}

TEST(Cond, AlwaysNever) {
  EXPECT_TRUE(Cond::always().isAlways());
  EXPECT_FALSE(Cond::always().isNever());
  EXPECT_TRUE(Cond::never().isNever());
}

TEST(Cond, EvalConjunction) {
  Cond C = Cond::conj({CmpAtom{CmpKind::LE, "i", "j"},
                       CmpAtom{CmpKind::LT, "j", "k"}});
  auto Env = [](const std::string &N) -> int64_t {
    if (N == "i")
      return 1;
    if (N == "j")
      return 1;
    return 5;
  };
  EXPECT_TRUE(C.eval(Env));
  Cond C2 = Cond::conj({CmpAtom{CmpKind::LT, "i", "j"}});
  EXPECT_FALSE(C2.eval(Env));
}

TEST(Cond, UnionDeduplicates) {
  Cond A = Cond::atom(CmpKind::LT, "i", "j");
  Cond U = Cond::unionOf(A, A);
  EXPECT_EQ(U.disjuncts().size(), 1u);
}

TEST(Cond, WithAtomDistributes) {
  Cond A = Cond::unionOf(Cond::atom(CmpKind::LT, "i", "j"),
                         Cond::atom(CmpKind::EQ, "i", "j"));
  Cond B = A.withAtom(CmpKind::LT, "j", "k");
  ASSERT_EQ(B.disjuncts().size(), 2u);
  EXPECT_EQ(B.disjuncts()[0].Atoms.size(), 2u);
}

TEST(Cond, Renamed) {
  Cond A = Cond::atom(CmpKind::LT, "i", "j");
  Cond B = A.renamed([](const std::string &N) {
    return N == "i" ? std::string("x") : N;
  });
  EXPECT_EQ(B.str(), "x < j");
}

TEST(Cond, StrFormats) {
  EXPECT_EQ(Cond::never().str(), "false");
  EXPECT_EQ(Cond::always().str(), "true");
  Cond C = Cond::unionOf(
      Cond::conj({CmpAtom{CmpKind::EQ, "i", "k"},
                  CmpAtom{CmpKind::NE, "k", "l"}}),
      Cond::conj({CmpAtom{CmpKind::NE, "i", "k"},
                  CmpAtom{CmpKind::EQ, "k", "l"}}));
  EXPECT_EQ(C.str(), "(i == k && k != l) || (i != k && k == l)");
}

TEST(Cond, SimplifyLtOrEq) {
  // Paper 4.2.4: (i == j) || (i < j)  =>  i <= j.
  Cond C = Cond::unionOf(Cond::atom(CmpKind::EQ, "i", "j"),
                         Cond::atom(CmpKind::LT, "i", "j"));
  EXPECT_EQ(simplifyCond(C).str(), "i <= j");
}

TEST(Cond, SimplifyHandlesSwappedOperands) {
  Cond C = Cond::unionOf(Cond::atom(CmpKind::GT, "j", "i"),
                         Cond::atom(CmpKind::EQ, "i", "j"));
  EXPECT_EQ(simplifyCond(C).str(), "i <= j");
}

TEST(Cond, SimplifyToAlways) {
  Cond C = Cond::unionOf(Cond::atom(CmpKind::LE, "i", "j"),
                         Cond::atom(CmpKind::GT, "i", "j"));
  EXPECT_TRUE(simplifyCond(C).isAlways());
}

TEST(Cond, SimplifyToNe) {
  Cond C = Cond::unionOf(Cond::atom(CmpKind::LT, "i", "j"),
                         Cond::atom(CmpKind::GT, "i", "j"));
  EXPECT_EQ(simplifyCond(C).str(), "i != j");
}

TEST(Cond, SimplifyLeavesMultiAtomDisjunctsAlone) {
  Cond C = Cond::unionOf(
      Cond::conj({CmpAtom{CmpKind::EQ, "i", "k"},
                  CmpAtom{CmpKind::NE, "k", "l"}}),
      Cond::conj({CmpAtom{CmpKind::NE, "i", "k"},
                  CmpAtom{CmpKind::EQ, "k", "l"}}));
  EXPECT_EQ(simplifyCond(C).disjuncts().size(), 2u);
}

//===----------------------------------------------------------------------===//
// Expr
//===----------------------------------------------------------------------===//

TEST(Expr, LiteralPrinting) {
  EXPECT_EQ(Expr::lit(2.0)->str(), "2");
  EXPECT_EQ(Expr::lit(0.5)->str(), "0.5");
}

TEST(Expr, AccessPrinting) {
  EXPECT_EQ(Expr::access("A", {"i", "j"})->str(), "A[i, j]");
  EXPECT_EQ(Expr::access("y", {})->str(), "y[]");
}

TEST(Expr, CallPrintingInfix) {
  ExprPtr E = Expr::call(OpKind::Mul, {Expr::access("A", {"i", "j"}),
                                       Expr::access("x", {"j"})});
  EXPECT_EQ(E->str(), "A[i, j] * x[j]");
}

TEST(Expr, CallPrintingPrefix) {
  ExprPtr E = Expr::call(OpKind::Min, {Expr::scalar("a"),
                                       Expr::scalar("b")});
  EXPECT_EQ(E->str(), "min(a, b)");
}

TEST(Expr, AssociativeFlattening) {
  ExprPtr AB = Expr::call(OpKind::Mul, {Expr::scalar("a"),
                                        Expr::scalar("b")});
  ExprPtr ABC = Expr::call(OpKind::Mul, {AB, Expr::scalar("c")});
  EXPECT_EQ(ABC->args().size(), 3u);
}

TEST(Expr, NonAssociativeNotFlattened) {
  ExprPtr AB = Expr::call(OpKind::Sub, {Expr::scalar("a"),
                                        Expr::scalar("b")});
  ExprPtr ABC = Expr::call(OpKind::Sub, {AB, Expr::scalar("c")});
  EXPECT_EQ(ABC->args().size(), 2u);
}

TEST(Expr, SingleArgCallCollapses) {
  ExprPtr E = Expr::call(OpKind::Add, {Expr::scalar("a")});
  EXPECT_EQ(E->kind(), ExprKind::Scalar);
}

TEST(Expr, StructuralEquality) {
  ExprPtr A = Expr::call(OpKind::Mul, {Expr::access("A", {"i", "j"}),
                                       Expr::access("x", {"j"})});
  ExprPtr B = Expr::call(OpKind::Mul, {Expr::access("A", {"i", "j"}),
                                       Expr::access("x", {"j"})});
  ExprPtr C = Expr::call(OpKind::Mul, {Expr::access("A", {"j", "i"}),
                                       Expr::access("x", {"j"})});
  EXPECT_TRUE(Expr::equal(A, B));
  EXPECT_FALSE(Expr::equal(A, C));
}

TEST(Expr, RenameIndicesSimultaneous) {
  // Swapping i and j must be simultaneous, not sequential.
  ExprPtr E = Expr::access("A", {"i", "j"});
  ExprPtr Swapped = Expr::renameIndices(E, [](const std::string &N) {
    return N == "i" ? "j" : (N == "j" ? "i" : N);
  });
  EXPECT_EQ(Swapped->str(), "A[j, i]");
}

TEST(Expr, RenameTensors) {
  ExprPtr E = Expr::call(OpKind::Mul, {Expr::access("A", {"i"}),
                                       Expr::access("B", {"i"})});
  ExprPtr R = Expr::renameTensors(E, [](const std::string &N) {
    return N == "A" ? std::string("A_nondiag") : N;
  });
  EXPECT_EQ(R->str(), "A_nondiag[i] * B[i]");
}

TEST(Expr, CollectAccesses) {
  ExprPtr E = Expr::call(
      OpKind::Mul,
      {Expr::access("A", {"i", "k"}), Expr::access("B", {"k", "j"}),
       Expr::lit(2.0)});
  std::vector<ExprPtr> Out;
  Expr::collectAccesses(E, Out);
  EXPECT_EQ(Out.size(), 2u);
}

TEST(Expr, ReplaceSubexpression) {
  ExprPtr A = Expr::access("A", {"i", "j"});
  ExprPtr E = Expr::call(OpKind::Mul, {A, Expr::access("x", {"j"})});
  ExprPtr R = Expr::replace(E, A, Expr::scalar("t"));
  EXPECT_EQ(R->str(), "t * x[j]");
}

TEST(Expr, LutConstructionAndPrint) {
  ExprPtr L = Expr::lut({CmpAtom{CmpKind::EQ, "i", "k"}}, {2.0, 1.0});
  EXPECT_EQ(L->lutTable().size(), 2u);
  EXPECT_EQ(L->str(), "lut[i == k](2, 1)");
}

//===----------------------------------------------------------------------===//
// Stmt
//===----------------------------------------------------------------------===//

TEST(Stmt, LoopHeaderCollapsing) {
  StmtPtr S = Stmt::loops({"j", "i"},
                          Stmt::assign(Expr::access("y", {"i"}), OpKind::Add,
                                       Expr::access("x", {"i"})));
  EXPECT_EQ(S->str(), "for j=_, i=_\n  y[i] += x[i]\n");
}

TEST(Stmt, IfPrinting) {
  StmtPtr S = Stmt::ifThen(Cond::atom(CmpKind::LT, "i", "j"),
                           Stmt::defScalar("t", Expr::lit(0)));
  EXPECT_EQ(S->str(), "if i < j\n  t = 0\n");
}

TEST(Stmt, AssignWithMultiplicity) {
  StmtPtr S = Stmt::assign(Expr::access("y", {"i"}), OpKind::Add,
                           Expr::scalar("t"), 2);
  EXPECT_EQ(S->str(), "y[i] += 2 * t\n");
}

TEST(Stmt, AssignMinReduce) {
  StmtPtr S = Stmt::assign(Expr::access("y", {"i"}), OpKind::Min,
                           Expr::scalar("t"));
  EXPECT_EQ(S->str(), "y[i] min= t\n");
}

TEST(Stmt, OverwriteAssign) {
  StmtPtr S = Stmt::assign(Expr::access("y", {"i"}), std::nullopt,
                           Expr::scalar("t"));
  EXPECT_EQ(S->str(), "y[i] = t\n");
}

TEST(Stmt, BlockFlattening) {
  StmtPtr A = Stmt::defScalar("a", Expr::lit(1));
  StmtPtr Inner = Stmt::block({A, A});
  StmtPtr Outer = Stmt::block({Inner, A});
  EXPECT_EQ(Outer->stmts().size(), 3u);
}

TEST(Stmt, StructuralEquality) {
  auto Mk = [] {
    return Stmt::loop("i", Stmt::assign(Expr::access("y", {"i"}),
                                        OpKind::Add, Expr::lit(1)));
  };
  EXPECT_TRUE(Stmt::equal(Mk(), Mk()));
  StmtPtr Other = Stmt::loop("j", Stmt::assign(Expr::access("y", {"j"}),
                                               OpKind::Add, Expr::lit(1)));
  EXPECT_FALSE(Stmt::equal(Mk(), Other));
}

TEST(Stmt, RenameIndices) {
  StmtPtr S = Stmt::loop(
      "i", Stmt::ifThen(Cond::atom(CmpKind::LT, "i", "j"),
                        Stmt::assign(Expr::access("y", {"i"}), OpKind::Add,
                                     Expr::access("x", {"j"}))));
  StmtPtr R = Stmt::renameIndices(S, [](const std::string &N) {
    return N == "i" ? std::string("p") : N;
  });
  EXPECT_EQ(R->str(), "for p=_\n  if p < j\n    y[p] += x[j]\n");
}

TEST(Stmt, WalkVisitsAll) {
  StmtPtr S = Stmt::loop(
      "i", Stmt::block({Stmt::defScalar("t", Expr::lit(0)),
                        Stmt::assign(Expr::access("y", {"i"}), OpKind::Add,
                                     Expr::scalar("t"))}));
  int Count = 0;
  Stmt::walk(S, [&Count](const StmtPtr &) { ++Count; });
  EXPECT_EQ(Count, 4); // loop, block, def, assign
}

TEST(Stmt, ReplicatePrinting) {
  StmtPtr S = Stmt::replicate("C", Partition::parse(2, "{0,1}"));
  EXPECT_EQ(S->str(), "replicate C over {0,1}\n");
}

//===----------------------------------------------------------------------===//
// Einsum parser
//===----------------------------------------------------------------------===//

TEST(Einsum, ParseMttkrp) {
  Einsum E = parseEinsum("mttkrp",
                         "C[i,j] += A[i,k,l] * B[k,j] * B[l,j]");
  EXPECT_EQ(E.str(), "C[i, j] += A[i, k, l] * B[k, j] * B[l, j]");
  EXPECT_EQ(E.ReduceOp, OpKind::Add);
  EXPECT_EQ(E.Decls.size(), 3u);
  EXPECT_TRUE(E.decl("C").IsOutput);
  EXPECT_FALSE(E.decl("A").IsOutput);
  EXPECT_EQ(E.decl("A").Order, 3u);
}

TEST(Einsum, ParseMinReduce) {
  Einsum E = parseEinsum("bf", "y[i] min= A[i,j] + d[j]");
  EXPECT_EQ(E.ReduceOp, OpKind::Min);
  EXPECT_EQ(E.Rhs->op(), OpKind::Add);
}

TEST(Einsum, ParseScalarOutput) {
  Einsum E = parseEinsum("syprd", "y[] += x[i] * A[i,j] * x[j]");
  EXPECT_TRUE(E.outputIndices().empty());
  EXPECT_EQ(E.contractionIndices().size(), 2u);
}

TEST(Einsum, ParseLiteralFactor) {
  Einsum E = parseEinsum("scale", "y[i] += 2 * x[i]");
  EXPECT_EQ(E.Rhs->str(), "2 * x[i]");
}

TEST(Einsum, ParsePrecedence) {
  Einsum E = parseEinsum("p", "y[i] += A[i,j] * x[j] + z[i]");
  EXPECT_EQ(E.Rhs->op(), OpKind::Add);
  EXPECT_EQ(E.Rhs->args().size(), 2u);
}

TEST(Einsum, ParseMinCall) {
  Einsum E = parseEinsum("m", "y[i] += min(a[i], b[i])");
  EXPECT_EQ(E.Rhs->op(), OpKind::Min);
}

TEST(Einsum, AllIndicesOrder) {
  Einsum E = parseEinsum("mttkrp",
                         "C[i,j] += A[i,k,l] * B[k,j] * B[l,j]");
  std::vector<std::string> Expect{"i", "j", "k", "l"};
  EXPECT_EQ(E.allIndices(), Expect);
}

TEST(Einsum, ContractionIndices) {
  Einsum E = parseEinsum("mttkrp",
                         "C[i,j] += A[i,k,l] * B[k,j] * B[l,j]");
  std::vector<std::string> Expect{"k", "l"};
  EXPECT_EQ(E.contractionIndices(), Expect);
}

TEST(Einsum, DeclareAndSymmetry) {
  Einsum E = parseEinsum("s", "y[i] += A[i,j] * x[j]");
  E.declare("A", TensorFormat::csf(2));
  E.setSymmetry("A", Partition::full(2));
  EXPECT_TRUE(E.decl("A").Symmetry.isFull());
  EXPECT_EQ(E.decl("A").Format.Levels[0], LevelKind::Dense);
  EXPECT_EQ(E.decl("A").Format.Levels[1], LevelKind::Sparse);
}

TEST(Einsum, IndexSites) {
  Einsum E = parseEinsum("s", "y[i] += A[i,j] * x[j]");
  auto Sites = indexSites(E);
  EXPECT_EQ(Sites["j"].size(), 2u);
  EXPECT_EQ(Sites["i"].size(), 2u); // y and A
}

TEST(TensorFormatTest, Str) {
  EXPECT_EQ(TensorFormat::csf(2).str(),
            "Dense(Sparse(Element(0.0)))");
  EXPECT_EQ(TensorFormat::csf(3).str(),
            "Dense(Sparse(Sparse(Element(0.0))))");
  EXPECT_EQ(TensorFormat::dense(1).str(), "Dense(Element(0.0))");
}

TEST(TensorFormatTest, Predicates) {
  EXPECT_TRUE(TensorFormat::dense(3).isAllDense());
  EXPECT_FALSE(TensorFormat::csf(3).isAllDense());
  EXPECT_TRUE(TensorFormat::csf(3).hasSparseLevels());
}
