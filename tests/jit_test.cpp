//===- tests/jit_test.cpp -------------------------------------*- C++ -*-===//
///
/// The JIT-compiled native engine and the engine-selection API:
///
///  - EngineRegistry resolution (typed lists, deprecated-boolean shims,
///    normalization notes, summaries).
///  - Native-vs-interpreter bit-identity and counter parity for every
///    paper kernel (the differential contract of docs/CODEGEN.md).
///  - On-disk .so cache reuse: a fresh "process" (simulated by dropping
///    the in-memory handle registry) over a warm cache directory
///    compiles nothing (native-compile phase pinned at 0).
///  - Graceful typed fallback when no host compiler is available
///    (forced via SYSTEC_JIT_DISABLE).
///  - PlanCache keying on the resolved engine list, and rebind's
///    engine-agreement check.
///
/// Tests that need the host compiler skip with a reason when it is not
/// runnable, so the suite stays green in degraded environments.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "jit/NativeKernelCache.h"
#include "kernels/Kernels.h"
#include "kernels/Oracle.h"
#include "runtime/EngineRegistry.h"
#include "runtime/Executor.h"
#include "runtime/PlanCache.h"
#include "support/Counters.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <limits>

#include <unistd.h>

using namespace systec;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// The ordered list that asks for the native engine with the standard
/// fallback chain behind it.
std::vector<Engine> nativeFirst() {
  return {Engine::Native, Engine::Fused, Engine::Interp};
}

bool haveCompiler(std::string *Reason = nullptr) {
  return jit::NativeKernelCache::compilerAvailable(Reason);
}

#define SKIP_WITHOUT_COMPILER()                                          \
  do {                                                                   \
    std::string Reason_;                                                 \
    if (!haveCompiler(&Reason_))                                         \
      GTEST_SKIP() << "no JIT toolchain: " << Reason_;                   \
  } while (0)

/// One workload: inputs plus output shape/initial value (mirrors the
/// end-to-end suite's generator).
struct Workload {
  Einsum E;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  double OutInit = 0.0;
};

Workload makeWorkload(const std::string &Kernel, uint64_t Seed,
                      int64_t Scale) {
  Rng R(Seed);
  Workload W;
  if (Kernel == "ssymv") {
    W.E = makeSsymv();
    int64_t N = 20 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2)));
    W.Inputs.emplace("x", generateDenseVector(N, R));
    W.OutDims = {N};
  } else if (Kernel == "bellmanford") {
    W.E = makeBellmanFord();
    int64_t N = 20 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2),
                                                  Inf));
    W.Inputs.emplace("d", generateDenseVector(N, R));
    W.OutDims = {N};
    W.OutInit = Inf;
  } else if (Kernel == "syprd") {
    W.E = makeSyprd();
    int64_t N = 20 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2)));
    W.Inputs.emplace("x", generateDenseVector(N, R));
    W.OutDims = {1};
  } else if (Kernel == "ssyrk") {
    W.E = makeSsyrk();
    int64_t N = 15 * Scale;
    W.Inputs.emplace("A", generateSparseMatrix(N, N, 5 * N, R,
                                               TensorFormat::csf(2)));
    W.OutDims = {N, N};
  } else if (Kernel == "ttm") {
    W.E = makeTtm();
    int64_t N = 8 * Scale, Rank = 5;
    W.Inputs.emplace("A", generateSymmetricTensor(3, N, 6 * N, R,
                                                  TensorFormat::csf(3)));
    W.Inputs.emplace("B", generateDenseMatrix(N, Rank, R));
    W.OutDims = {Rank, N, N};
  } else if (Kernel == "mttkrp3") {
    W.E = makeMttkrp(3);
    int64_t N = 7 + 2 * Scale, Rank = 4;
    W.Inputs.emplace("A", generateSymmetricTensor(3, N, 8 * N, R,
                                                  TensorFormat::csf(3)));
    W.Inputs.emplace("B", generateDenseMatrix(N, Rank, R));
    W.OutDims = {N, Rank};
  } else {
    ADD_FAILURE() << "unknown kernel " << Kernel;
  }
  return W;
}

struct RunResult {
  Tensor Out = Tensor::dense({1}, 0.0);
  obs::ExecReport Report;
  bool Native = false;
  Status NativeStatus = Status::success();
};

RunResult runKernel(const Kernel &K, Workload &W, ExecOptions Options) {
  RunResult R;
  R.Out = Tensor::dense(W.OutDims, 0.0);
  R.Out.setAllValues(W.OutInit);
  Executor E(K, Options);
  for (auto &[Name, T] : W.Inputs)
    E.bind(Name, &T);
  E.bind(W.E.Output->tensorName(), &R.Out);
  Status P = E.tryPrepare();
  EXPECT_TRUE(P.ok()) << P.str();
  R.Native = E.usesNativeEngine();
  if (!E.nativeStatus().ok())
    R.NativeStatus = Status::error(E.nativeStatus().code(),
                                   E.nativeStatus().str());
  Status S = E.tryRun(&R.Report);
  EXPECT_TRUE(S.ok()) << S.str();
  return R;
}

uint64_t phaseNs(const obs::ExecReport &R, const std::string &Name,
                 bool *Found = nullptr) {
  for (const obs::PhaseStat &P : R.Phases)
    if (P.Name == Name) {
      if (Found)
        *Found = true;
      return P.Ns;
    }
  if (Found)
    *Found = false;
  return 0;
}

/// A per-test scratch cache directory (removed on destruction).
struct ScratchCacheDir {
  std::string Path;
  ScratchCacheDir(const std::string &Tag) {
    Path = ::testing::TempDir() + "systec-jit-test-" + Tag + "-" +
           std::to_string(getpid());
    std::filesystem::remove_all(Path);
  }
  ~ScratchCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// EngineRegistry resolution
//===----------------------------------------------------------------------===//

TEST(EngineRegistry, LegacyBooleansDerive) {
  // microkernels on, blocking off: the historical default.
  EngineResolution R = resolveEngines({}, true, false);
  EXPECT_EQ(R.Order, (std::vector<Engine>{Engine::Fused, Engine::Interp}));
  EXPECT_TRUE(R.UseFused);
  EXPECT_FALSE(R.UseBlocked);
  EXPECT_FALSE(R.UseNative);
  EXPECT_TRUE(R.Notes.empty());

  // Both on.
  R = resolveEngines({}, true, true);
  EXPECT_EQ(R.Order, (std::vector<Engine>{Engine::Blocked, Engine::Fused,
                                          Engine::Interp}));
  EXPECT_TRUE(R.UseBlocked);

  // Everything off: pure interpreter.
  R = resolveEngines({}, false, false);
  EXPECT_EQ(R.Order, (std::vector<Engine>{Engine::Interp}));
  EXPECT_FALSE(R.UseFused);

  // Blocking without microkernels was historically inert.
  R = resolveEngines({}, false, true);
  EXPECT_EQ(R.Order, (std::vector<Engine>{Engine::Interp}));
  EXPECT_FALSE(R.UseBlocked);
}

TEST(EngineRegistry, ExplicitListNormalizes) {
  // Interp is appended when missing; duplicates collapse.
  EngineResolution R =
      resolveEngines({Engine::Fused, Engine::Fused}, false, false);
  EXPECT_EQ(R.Order, (std::vector<Engine>{Engine::Fused, Engine::Interp}));

  // Native anywhere but first is dropped with a note.
  R = resolveEngines({Engine::Fused, Engine::Native}, true, false);
  EXPECT_EQ(R.Order, (std::vector<Engine>{Engine::Fused, Engine::Interp}));
  EXPECT_FALSE(R.UseNative);
  ASSERT_EQ(R.Notes.size(), 1u);

  // Blocked without Fused gets Fused inserted (with a note).
  R = resolveEngines({Engine::Blocked}, false, false);
  EXPECT_EQ(R.Order, (std::vector<Engine>{Engine::Blocked, Engine::Fused,
                                          Engine::Interp}));
  EXPECT_TRUE(R.UseFused);
  EXPECT_FALSE(R.Notes.empty());

  // Native-first is honored; booleans are ignored for non-empty lists.
  R = resolveEngines(nativeFirst(), false, false);
  EXPECT_EQ(R.Order, (std::vector<Engine>{Engine::Native, Engine::Fused,
                                          Engine::Interp}));
  EXPECT_TRUE(R.UseNative);
  EXPECT_TRUE(R.UseFused);
}

TEST(EngineRegistry, SummaryAndNames) {
  EXPECT_STREQ(engineName(Engine::Native), "native");
  EXPECT_EQ(enginesSummary(nativeFirst()), "native>fused>interp");
  Engine E;
  EXPECT_TRUE(parseEngine("blocked", E));
  EXPECT_EQ(E, Engine::Blocked);
  EXPECT_FALSE(parseEngine("turbo", E));
}

//===----------------------------------------------------------------------===//
// Differential: native engine vs interpreter, all paper kernels
//===----------------------------------------------------------------------===//

class NativeKernelSweep : public ::testing::TestWithParam<const char *> {};

TEST_P(NativeKernelSweep, BitIdenticalWithCounterParity) {
  SKIP_WITHOUT_COMPILER();
  setCountersEnabled(true);
  for (uint64_t Seed : {11u, 12u}) {
    Workload WI = makeWorkload(GetParam(), Seed, 2);
    Workload WN = makeWorkload(GetParam(), Seed, 2);
    CompileResult C = compileEinsum(WI.E);

    ExecOptions Interp;
    Interp.Engines = {Engine::Interp};
    RunResult RI = runKernel(C.Optimized, WI, Interp);
    EXPECT_FALSE(RI.Native);

    ExecOptions Native;
    Native.Engines = nativeFirst();
    RunResult RN = runKernel(C.Optimized, WN, Native);
    ASSERT_TRUE(RN.Native) << RN.NativeStatus.str();

    // Bit identity: the emitted body replicates the interpreter's
    // sequential fold order, so outputs match exactly — not to a
    // tolerance.
    EXPECT_EQ(Tensor::maxAbsDiff(RN.Out, RI.Out), 0.0)
        << GetParam() << " seed " << Seed;

    // Counter parity at the interpreter's exact charge points.
    EXPECT_EQ(RN.Report.Counters.SparseReads, RI.Report.Counters.SparseReads);
    EXPECT_EQ(RN.Report.Counters.Reductions, RI.Report.Counters.Reductions);
    EXPECT_EQ(RN.Report.Counters.ScalarOps, RI.Report.Counters.ScalarOps);
    EXPECT_EQ(RN.Report.Counters.OutputWrites,
              RI.Report.Counters.OutputWrites);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperKernels, NativeKernelSweep,
                         ::testing::Values("ssymv", "bellmanford", "syprd",
                                           "ssyrk", "ttm", "mttkrp3"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

//===----------------------------------------------------------------------===//
// On-disk cache reuse across (simulated) processes
//===----------------------------------------------------------------------===//

TEST(NativeCache, WarmStartCompilesNothing) {
  SKIP_WITHOUT_COMPILER();
  ScratchCacheDir Dir("warm");

  Workload W1 = makeWorkload("ssymv", 5, 1);
  CompileResult C = compileEinsum(W1.E);
  ExecOptions Opt;
  Opt.Engines = nativeFirst();
  Opt.NativeCacheDir = Dir.Path;

  // Cold: the compiler actually runs.
  RunResult R1 = runKernel(C.Optimized, W1, Opt);
  ASSERT_TRUE(R1.Native) << R1.NativeStatus.str();
  bool Found = false;
  EXPECT_GT(phaseNs(R1.Report, "native-compile", &Found), 0u);
  EXPECT_TRUE(Found);

  // The cache directory now holds the source and the object.
  size_t Cpp = 0, So = 0;
  for (const auto &Ent : std::filesystem::directory_iterator(Dir.Path)) {
    if (Ent.path().extension() == ".cpp")
      ++Cpp;
    if (Ent.path().extension() == ".so")
      ++So;
  }
  EXPECT_EQ(Cpp, 1u);
  EXPECT_EQ(So, 1u);

  // Simulate a fresh process over the warm directory: drop the
  // in-memory handle registry, then prepare the same kernel again. The
  // .so must be reused straight from disk — zero compiler time.
  jit::NativeKernelCache::instance().dropHandles();
  Workload W2 = makeWorkload("ssymv", 5, 1);
  RunResult R2 = runKernel(C.Optimized, W2, Opt);
  ASSERT_TRUE(R2.Native) << R2.NativeStatus.str();
  EXPECT_EQ(phaseNs(R2.Report, "native-compile", &Found), 0u);
  EXPECT_TRUE(Found);
  EXPECT_EQ(Tensor::maxAbsDiff(R2.Out, R1.Out), 0.0);
}

//===----------------------------------------------------------------------===//
// Graceful degradation without a compiler
//===----------------------------------------------------------------------===//

TEST(NativeFallback, DisabledJitFallsBackTyped) {
  Workload WI = makeWorkload("ssymv", 7, 1);
  Workload WN = makeWorkload("ssymv", 7, 1);
  CompileResult C = compileEinsum(WI.E);

  ExecOptions Interp;
  Interp.Engines = {Engine::Interp};
  RunResult RI = runKernel(C.Optimized, WI, Interp);

  setenv("SYSTEC_JIT_DISABLE", "1", 1);
  ExecOptions Opt;
  Opt.Engines = nativeFirst();
  RunResult RN = runKernel(C.Optimized, WN, Opt);
  unsetenv("SYSTEC_JIT_DISABLE");

  // Prepare and run both succeeded; the executor fell back to the rest
  // of the preference list and recorded why as a typed Status.
  EXPECT_FALSE(RN.Native);
  EXPECT_EQ(RN.NativeStatus.code(), ErrCode::ResourceExhausted)
      << RN.NativeStatus.str();
  EXPECT_EQ(Tensor::maxAbsDiff(RN.Out, RI.Out), 0.0);
}

//===----------------------------------------------------------------------===//
// PlanCache keys on the resolved engine list
//===----------------------------------------------------------------------===//

TEST(EngineKeys, ResolvedListKeysPlans) {
  Workload W = makeWorkload("ssymv", 3, 1);
  CompileResult C = compileEinsum(W.E);
  std::map<std::string, Tensor *> B;
  for (auto &[Name, T] : W.Inputs)
    B[Name] = &T;
  Tensor Out = Tensor::dense(W.OutDims, 0.0);
  B[W.E.Output->tensorName()] = &Out;

  ExecOptions Legacy; // both deprecated booleans default on
  ExecOptions Typed;
  Typed.Engines = {Engine::Blocked, Engine::Fused, Engine::Interp};
  ExecOptions Normalized; // native dropped (not first) -> same as Typed
  Normalized.Engines = {Engine::Blocked, Engine::Fused, Engine::Native,
                        Engine::Interp};
  ExecOptions NativeOpt;
  NativeOpt.Engines = nativeFirst();

  const std::string KLegacy = PlanCache::makeKey(W.E, B, Legacy);
  const std::string KTyped = PlanCache::makeKey(W.E, B, Typed);
  const std::string KNorm = PlanCache::makeKey(W.E, B, Normalized);
  const std::string KNative = PlanCache::makeKey(W.E, B, NativeOpt);

  // Equivalent requests share one plan; native-first is distinct.
  EXPECT_EQ(KLegacy, KTyped);
  EXPECT_EQ(KTyped, KNorm);
  EXPECT_NE(KNative, KLegacy);
  EXPECT_NE(KLegacy.find("engines=blocked>fused>interp"),
            std::string::npos);
  EXPECT_NE(KNative.find("engines=native>fused>interp"), std::string::npos);

  // The .so cache directory is a per-request knob, never a key field.
  ExecOptions Dir = NativeOpt;
  Dir.NativeCacheDir = "/nonexistent/elsewhere";
  EXPECT_EQ(PlanCache::makeKey(W.E, B, Dir), KNative);

  // The executor's options summary renders the same resolved list.
  EXPECT_NE(
      execOptionsSummary(Normalized).find("engines=blocked>fused>interp"),
      std::string::npos);
}

//===----------------------------------------------------------------------===//
// Rebind: engine agreement plus native repatching
//===----------------------------------------------------------------------===//

TEST(NativeRebind, EngineMismatchIsTyped) {
  SKIP_WITHOUT_COMPILER();
  Workload W = makeWorkload("ssymv", 13, 1);
  CompileResult C = compileEinsum(W.E);
  ExecOptions Opt;
  Opt.Engines = nativeFirst();
  Tensor Out = Tensor::dense(W.OutDims, 0.0);
  Executor E(C.Optimized, Opt);
  for (auto &[Name, T] : W.Inputs)
    E.bind(Name, &T);
  E.bind(W.E.Output->tensorName(), &Out);
  ASSERT_TRUE(E.tryPrepare().ok());

  std::map<std::string, Tensor *> Same;
  for (auto &[Name, T] : W.Inputs)
    Same[Name] = &T;
  Same[W.E.Output->tensorName()] = &Out;

  ExecOptions Different; // resolves to fused>interp
  Status S = E.rebind(Same, Different);
  EXPECT_EQ(S.code(), ErrCode::InvalidArgument);
  EXPECT_NE(S.str().find("engine mismatch"), std::string::npos) << S.str();
}

TEST(NativeRebind, ReboundTensorsRunNatively) {
  SKIP_WITHOUT_COMPILER();
  Workload W1 = makeWorkload("ssymv", 17, 1);
  CompileResult C = compileEinsum(W1.E);

  ExecOptions Opt;
  Opt.Engines = nativeFirst();
  Tensor Out = Tensor::dense(W1.OutDims, 0.0);
  Executor E(C.Optimized, Opt);
  for (auto &[Name, T] : W1.Inputs)
    E.bind(Name, &T);
  E.bind(W1.E.Output->tensorName(), &Out);
  ASSERT_TRUE(E.tryPrepare().ok());
  ASSERT_TRUE(E.usesNativeEngine()) << E.nativeStatus().str();
  ASSERT_TRUE(E.tryRun().ok());

  // Rebind to a same-structure copy of the inputs with fresh values
  // (same seed, fresh generation) and a zeroed output: the native body
  // marshals operand pointers per call, so the rebound run must see the
  // new tensors.
  Workload W1b = makeWorkload("ssymv", 17, 1);
  for (auto &[Name, T] : W1b.Inputs)
    for (double &V : T.vals())
      V *= 2.0;
  Tensor Out2 = Tensor::dense(W1.OutDims, 0.0);
  std::map<std::string, Tensor *> NewB;
  for (auto &[Name, T] : W1b.Inputs)
    NewB[Name] = &T;
  NewB[W1.E.Output->tensorName()] = &Out2;
  obs::ExecReport Rep;
  Status S = E.rebind(NewB, Opt);
  ASSERT_TRUE(S.ok()) << S.str();
  ASSERT_TRUE(E.tryRun(&Rep).ok());
  bool Found = false;
  EXPECT_EQ(phaseNs(Rep, "native-compile", &Found), 0u);
  EXPECT_TRUE(Found);

  // Reference: interpreter over the same doubled inputs.
  ExecOptions Interp;
  Interp.Engines = {Engine::Interp};
  Workload WRef = makeWorkload("ssymv", 17, 1);
  for (auto &[Name, T] : WRef.Inputs)
    for (double &V : T.vals())
      V *= 2.0;
  RunResult RI = runKernel(C.Optimized, WRef, Interp);
  EXPECT_EQ(Tensor::maxAbsDiff(Out2, RI.Out), 0.0);
}

//===----------------------------------------------------------------------===//
// Emitted source is exposed for diagnostics and compile checks
//===----------------------------------------------------------------------===//

TEST(NativeSource, ExposedAfterPrepare) {
  SKIP_WITHOUT_COMPILER();
  Workload W = makeWorkload("syprd", 19, 1);
  CompileResult C = compileEinsum(W.E);
  ExecOptions Opt;
  Opt.Engines = nativeFirst();
  Tensor Out = Tensor::dense(W.OutDims, 0.0);
  Executor E(C.Optimized, Opt);
  for (auto &[Name, T] : W.Inputs)
    E.bind(Name, &T);
  E.bind(W.E.Output->tensorName(), &Out);
  ASSERT_TRUE(E.tryPrepare().ok());
  ASSERT_TRUE(E.usesNativeEngine()) << E.nativeStatus().str();
  EXPECT_NE(E.nativeSource().find("systec_native_run"), std::string::npos);
  EXPECT_NE(E.nativeSource().find("systec_ntensor"), std::string::npos);
}
