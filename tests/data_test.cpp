//===- tests/data_test.cpp ------------------------------------*- C++ -*-===//
///
/// Workload generator tests: exact symmetry of generated tensors,
/// nonzero counts, the Table 2 suite, and structured workloads.
///
//===----------------------------------------------------------------------===//

#include "data/Generators.h"
#include "symmetry/Partition.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace systec;

TEST(Generators, SymmetricMatrixIsExactlySymmetric) {
  Rng R(1);
  Tensor A = generateSymmetricTensor(2, 50, 200, R, TensorFormat::csf(2));
  A.forEach([&A](const std::vector<int64_t> &C, double V) {
    EXPECT_EQ(A.at({C[1], C[0]}), V);
  });
}

/// Property sweep: symmetry of generated order-n tensors under every
/// permutation of a random sample of coordinates.
class SymmetricGen : public ::testing::TestWithParam<unsigned> {};

TEST_P(SymmetricGen, InvariantUnderPermutations) {
  const unsigned Order = GetParam();
  Rng R(2);
  Tensor A = generateSymmetricTensor(Order, 10, 60, R,
                                     TensorFormat::csf(Order));
  Partition Full = Partition::full(Order);
  A.forEach([&](const std::vector<int64_t> &C, double V) {
    std::vector<int64_t> P = C;
    std::sort(P.begin(), P.end());
    do {
      EXPECT_EQ(A.at(P), V);
    } while (std::next_permutation(P.begin(), P.end()));
    EXPECT_EQ(A.at(Full.canonicalize(C)), V);
  });
}

INSTANTIATE_TEST_SUITE_P(Orders, SymmetricGen,
                         ::testing::Values(2u, 3u, 4u, 5u));

TEST(Generators, SymmetricTensorStoredCountMatchesOrbits) {
  Rng R(3);
  Tensor A = generateSymmetricTensor(3, 12, 50, R, TensorFormat::csf(3));
  // Stored count equals the sum of orbit sizes over canonical entries.
  Partition Full = Partition::full(3);
  uint64_t FromOrbits = 0;
  A.forEach([&](const std::vector<int64_t> &C, double) {
    if (Full.isCanonical(C))
      FromOrbits += Full.orbitSize(C);
  });
  EXPECT_EQ(FromOrbits, A.storedCount());
}

TEST(Generators, SparseMatrixNnzApproximate) {
  Rng R(4);
  Tensor A = generateSparseMatrix(200, 200, 1000, R, TensorFormat::csf(2));
  // Collisions make it slightly less than requested.
  EXPECT_LE(A.storedCount(), 1000u);
  EXPECT_GE(A.storedCount(), 950u);
}

TEST(Generators, SymmetrizeMatrixAddsTranspose) {
  Rng R(5);
  Tensor A = generateSparseMatrix(30, 30, 60, R, TensorFormat::csf(2));
  Tensor S = symmetrizeMatrix(A);
  S.forEach([&S](const std::vector<int64_t> &C, double V) {
    EXPECT_EQ(S.at({C[1], C[0]}), V);
  });
  A.forEach([&](const std::vector<int64_t> &C, double V) {
    EXPECT_EQ(S.at(C), V + A.at({C[1], C[0]}));
  });
}

TEST(Generators, BandedSymmetric) {
  Rng R(6);
  Tensor A = generateBandedSymmetric(20, 2, R, TensorFormat::csf(2));
  A.forEach([](const std::vector<int64_t> &C, double) {
    EXPECT_LE(std::abs(C[0] - C[1]), 2);
  });
  A.forEach([&A](const std::vector<int64_t> &C, double V) {
    EXPECT_EQ(A.at({C[1], C[0]}), V);
  });
}

TEST(Generators, DenseMatrixShapeAndRange) {
  Rng R(7);
  Tensor B = generateDenseMatrix(8, 5, R);
  EXPECT_EQ(B.storedCount(), 40u);
  for (double V : B.vals()) {
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Suite, TableTwoContents) {
  const std::vector<MatrixSpec> &Suite = vuducSuite();
  ASSERT_EQ(Suite.size(), 30u);
  // Spot-check entries against Table 2.
  EXPECT_EQ(Suite[0].Name, "bayer02");
  EXPECT_EQ(Suite[0].Dimension, 13935);
  EXPECT_EQ(Suite[0].Nonzeros, 63679);
  auto Finan = std::find_if(Suite.begin(), Suite.end(),
                            [](const MatrixSpec &S) {
                              return S.Name == "finan512";
                            });
  ASSERT_NE(Finan, Suite.end());
  EXPECT_EQ(Finan->Dimension, 74752);
  EXPECT_EQ(Finan->Nonzeros, 596992);
}

TEST(Suite, BuildMatchesSpecApproximately) {
  Rng R(8);
  MatrixSpec Spec{"test", 500, 4000};
  Tensor A = buildSuiteMatrix(Spec, R);
  EXPECT_EQ(A.dim(0), 500);
  EXPECT_EQ(A.dim(1), 500);
  // A + A' lands near the requested count.
  EXPECT_GT(A.storedCount(), Spec.Nonzeros * 0.85);
  EXPECT_LT(A.storedCount(), Spec.Nonzeros * 1.15);
  // And is symmetric.
  A.forEach([&A](const std::vector<int64_t> &C, double V) {
    EXPECT_EQ(A.at({C[1], C[0]}), V);
  });
}
