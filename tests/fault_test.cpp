//===- tests/fault_test.cpp - Fault-injection robustness tests -*- C++ -*-===//
///
/// \file
/// The hardened-execution contract under corrupted input: every fault
/// class of tests/FaultInjection.h, applied to otherwise-valid fuzz and
/// corpus tensors, must be rejected with a typed Status — by
/// Tensor::validate(Deep) directly, and by Executor::tryPrepare with
/// ValidateInputs=Deep across {interpreter, fused, blocked} x
/// Threads {1, 4}. No abort, no crash, no sanitizer report (this test
/// carries the "fault" ctest label and runs under ASan/UBSan in CI).
/// Also pins the cooperative cancellation/deadline semantics: aborted
/// runs return Cancelled / DeadlineExceeded, restore their outputs, and
/// surface the reason in ExecReport::AbortReason.
///
//===----------------------------------------------------------------------===//

#include "FaultInjection.h"
#include "FuzzHarness.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace systec;
using namespace systec::fault;
using namespace systec::fuzzharness;

namespace {

/// 8x8 matrix with a fixed multi-coordinate pattern, buildable in every
/// two-level format — the deterministic corpus guaranteeing each fault
/// class a site regardless of what the fuzz seeds generate.
Tensor makeMatrix(TensorFormat F) {
  Coo C({8, 8});
  for (int64_t I = 0; I < 8; ++I)
    for (int64_t J = 0; J < 8; ++J)
      if ((I + 2 * J) % 3 == 0)
        C.add({I, J}, static_cast<double>(1 + I + 8 * J));
  return Tensor::fromCoo(std::move(C), std::move(F));
}

std::vector<std::pair<std::string, Tensor>> corpusTensors() {
  using LK = LevelKind;
  std::vector<std::pair<std::string, Tensor>> Out;
  Out.emplace_back("d(s)", makeMatrix(TensorFormat{{LK::Dense, LK::Sparse}}));
  Out.emplace_back("s(s)", makeMatrix(TensorFormat{{LK::Sparse, LK::Sparse}}));
  Out.emplace_back("d(r)",
                   makeMatrix(TensorFormat{{LK::Dense, LK::RunLength}}));
  Out.emplace_back("d(b)", makeMatrix(TensorFormat{{LK::Dense, LK::Banded}}));
  Out.emplace_back("s(b)", makeMatrix(TensorFormat{{LK::Sparse, LK::Banded}}));
  return Out;
}

struct EngineCfg {
  const char *Name;
  bool Micro;
  bool Blocking;
};
constexpr EngineCfg Engines[] = {{"interp", false, false},
                                 {"fused", true, false},
                                 {"blocked", true, true}};

} // namespace

//===----------------------------------------------------------------------===//
// Validator-level rejection
//===----------------------------------------------------------------------===//

TEST(FaultInjection, ValidatorRejectsEveryCorruption) {
  std::map<Fault, int> Applied;
  auto Sweep = [&](const Tensor &Pristine, const std::string &Tag) {
    {
      Status S = Pristine.validate(ValidationLevel::Deep);
      ASSERT_TRUE(S.ok()) << Tag << ": pristine tensor rejected: " << S.str();
    }
    for (Fault F : allFaults()) {
      Tensor Broken = Pristine;
      std::optional<std::string> Site = injectFault(Broken, F);
      if (!Site)
        continue;
      SCOPED_TRACE(Tag + ": " + faultName(F) + ": " + *Site);
      Status S = Broken.validate(ValidationLevel::Deep);
      EXPECT_FALSE(S.ok()) << "corruption accepted";
      EXPECT_EQ(S.code(), ErrCode::InvalidTensor);
      EXPECT_FALSE(S.message().empty());
      ++Applied[F];
    }
  };
  for (const auto &[Tag, T] : corpusTensors())
    Sweep(T, "corpus " + Tag);
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    FuzzCase F = makeCase(Seed);
    for (const auto &[Name, T] : F.Inputs)
      Sweep(T, "seed " + std::to_string(Seed) + " " + Name);
  }
  for (Fault F : allFaults())
    EXPECT_GT(Applied[F], 0) << faultName(F) << " never found a site";
}

TEST(FaultInjection, ShallowTierCatchesSizeFaultsOnly) {
  const Tensor Pristine =
      makeMatrix(TensorFormat{{LevelKind::Dense, LevelKind::Sparse}});

  Tensor EndpointBroken = Pristine;
  ASSERT_TRUE(injectFault(EndpointBroken, Fault::PtrOutOfRange));
  EXPECT_FALSE(EndpointBroken.validate(ValidationLevel::Shallow).ok());

  Tensor Truncated = Pristine;
  ASSERT_TRUE(injectFault(Truncated, Fault::ValsTruncated));
  EXPECT_FALSE(Truncated.validate(ValidationLevel::Shallow).ok());

  // Per-fiber coordinate order is deliberately a Deep-tier check: the
  // Shallow tier is O(levels) and never walks the arrays.
  Tensor Unsorted = Pristine;
  ASSERT_TRUE(injectFault(Unsorted, Fault::CrdUnsorted));
  EXPECT_TRUE(Unsorted.validate(ValidationLevel::Shallow).ok());
  EXPECT_FALSE(Unsorted.validate(ValidationLevel::Deep).ok());
}

//===----------------------------------------------------------------------===//
// Executor-level rejection across engines and thread counts
//===----------------------------------------------------------------------===//

TEST(FaultInjection, ExecutorRejectsCorruptedOperandsAcrossEngines) {
  int Checked = 0;
  for (uint64_t Seed : {3u, 7u, 11u, 19u}) {
    FuzzCase Base = makeCase(Seed);
    SCOPED_TRACE(caseTrace(Base));
    CompileResult R = compileEinsum(Base.E);
    for (Fault F : allFaults()) {
      // One corrupted operand per fault class suffices; find an input
      // offering a site.
      for (auto &[Name, Pristine] : Base.Inputs) {
        Tensor Broken = Pristine;
        std::optional<std::string> Site = injectFault(Broken, F);
        if (!Site)
          continue;
        for (const EngineCfg &E : Engines) {
          for (unsigned Threads : {1u, 4u}) {
            SCOPED_TRACE(std::string(faultName(F)) + " on " + Name + " [" +
                         E.Name + " threads=" + std::to_string(Threads) +
                         "]: " + *Site);
            ExecOptions O;
            O.EnableMicroKernels = E.Micro;
            O.EnableBlocking = E.Blocking;
            O.Threads = Threads;
            O.ValidateInputs = ValidationLevel::Deep;
            Tensor Out = Tensor::dense(Base.OutDims, 0.0);
            Out.setAllValues(Base.OutInit);
            Executor Ex(R.Naive, O);
            for (auto &[BindName, BindT] : Base.Inputs)
              Ex.bind(BindName, BindName == Name ? &Broken : &BindT);
            Ex.bind("O", &Out);
            Status S = Ex.tryPrepare();
            ASSERT_FALSE(S.ok()) << "corrupted operand accepted";
            EXPECT_EQ(S.code(), ErrCode::InvalidTensor);
            // The context chain names the offending tensor.
            EXPECT_NE(S.str().find("'" + Name + "'"), std::string::npos)
                << S.str();
            ++Checked;
          }
        }
        break;
      }
    }
  }
  // Every seed offers at least the always-applicable value faults on
  // all six engine/thread cells.
  EXPECT_GE(Checked, 4 * 2 * 6);
}

//===----------------------------------------------------------------------===//
// Cancellation and deadlines
//===----------------------------------------------------------------------===//

TEST(HardenedExecution, PreCancelledTokenAbortsAndRestoresOutput) {
  for (unsigned Threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(Threads));
    FuzzCase F = makeCase(5);
    CompileResult R = compileEinsum(F.E);
    Tensor Out = Tensor::dense(F.OutDims, 0.0);
    Out.setAllValues(F.OutInit);
    const std::vector<double> Before = Out.vals();

    CancelToken Tok;
    Tok.cancel();
    ExecOptions O;
    O.Threads = Threads;
    O.Cancel = &Tok;
    Executor Ex(R.Naive, O);
    for (auto &[Name, T] : F.Inputs)
      Ex.bind(Name, &T);
    Ex.bind("O", &Out);
    {
      Status S = Ex.tryPrepare();
      ASSERT_TRUE(S.ok()) << S.str();
    }
    Status S = Ex.tryRunBody();
    ASSERT_FALSE(S.ok());
    EXPECT_EQ(S.code(), ErrCode::Cancelled);
    EXPECT_EQ(Ex.lastReport().AbortReason, "cancelled");
    EXPECT_EQ(Out.vals(), Before) << "partial writes not discarded";

    // The token is reusable: reset and the same executor completes.
    Tok.reset();
    Status S2 = Ex.tryRun();
    EXPECT_TRUE(S2.ok()) << S2.str();
    EXPECT_TRUE(Ex.lastReport().AbortReason.empty());
  }
}

TEST(HardenedExecution, GenerousDeadlineCompletes) {
  FuzzCase F = makeCase(8);
  CompileResult R = compileEinsum(F.E);
  ExecOptions O;
  O.DeadlineMs = 60000;
  Tensor Out = run(R.Naive, F, O);
  FuzzCase F2 = makeCase(8);
  Tensor Ref = run(R.Naive, F2, ExecOptions());
  EXPECT_EQ(Out.vals(), Ref.vals());
}

TEST(HardenedExecution, TightDeadlineEitherCompletesOrAbortsCleanly) {
  // A 1 ms deadline on a small kernel is a race by construction; the
  // contract is that both outcomes are clean — completion, or a typed
  // DeadlineExceeded with the output restored.
  FuzzCase F = makeCase(13);
  CompileResult R = compileEinsum(F.E);
  Tensor Out = Tensor::dense(F.OutDims, 0.0);
  Out.setAllValues(F.OutInit);
  const std::vector<double> Before = Out.vals();
  ExecOptions O;
  O.DeadlineMs = 1;
  Executor Ex(R.Naive, O);
  for (auto &[Name, T] : F.Inputs)
    Ex.bind(Name, &T);
  Ex.bind("O", &Out);
  ASSERT_TRUE(Ex.tryPrepare().ok());
  Status S = Ex.tryRunBody();
  if (!S.ok()) {
    EXPECT_EQ(S.code(), ErrCode::DeadlineExceeded);
    EXPECT_EQ(Ex.lastReport().AbortReason, "deadline-exceeded");
    EXPECT_EQ(Out.vals(), Before);
  } else {
    EXPECT_TRUE(Ex.lastReport().AbortReason.empty());
  }
}

TEST(HardenedExecution, MemoryBudgetDegradesWithoutChangingResults) {
  // A one-byte budget vetoes every privatized accumulator; the loop
  // degrades to the inner disjoint-write parallelization (or runs
  // sequentially) with bit-identical results on quantized data.
  FuzzCase F1 = makeCase(9);
  FuzzCase F2 = makeCase(9);
  CompileResult R = compileEinsum(F1.E);
  ExecOptions Unrestricted;
  Unrestricted.Threads = 4;
  ExecOptions Budgeted = Unrestricted;
  Budgeted.MemoryBudgetBytes = 1;
  Tensor Ref = run(R.Naive, F1, Unrestricted);
  Tensor Out = run(R.Naive, F2, Budgeted);
  EXPECT_EQ(Out.vals(), Ref.vals());
}

TEST(HardenedExecution, MalformedKernelInputsReturnTypedStatus) {
  // The Status surface of the other API boundaries: einsum syntax and
  // COO staging.
  Expected<Einsum> Bad = tryParseEinsum("bad", "O[i,j] += A[i,k * B[k,j]");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), ErrCode::InvalidArgument);

  Coo C({3, 3});
  C.add({2, 5}, 1.0); // column 5 outside a 3x3 extent
  Expected<Tensor> T = Tensor::tryFromCoo(std::move(C), TensorFormat::csf(2));
  ASSERT_FALSE(T.ok());
  EXPECT_EQ(T.status().code(), ErrCode::InvalidArgument);

  // An unbound operand surfaces from tryPrepare, not an abort.
  FuzzCase F = makeCase(4);
  CompileResult R = compileEinsum(F.E);
  Tensor Out = Tensor::dense(F.OutDims, 0.0);
  Executor Ex(R.Naive, ExecOptions());
  Ex.bind("O", &Out); // inputs deliberately left unbound
  Status S = Ex.tryPrepare();
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrCode::UnboundTensor);
}
