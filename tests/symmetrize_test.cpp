//===- tests/symmetrize_test.cpp ------------------------------*- C++ -*-===//
///
/// Tests for the symmetrization stage (paper Section 4.1) against the
/// paper's worked examples: Figure 2 (SSYMV), Listings 4-5 (SYPRD),
/// Listing 1 (TTM), Listing 6 (MTTKRP), and the counting identities
/// |S_P|E| = n!/prod(run!).
///
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "core/Symmetrize.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace systec;

namespace {

SymKernel symmetrizeKernel(const Einsum &E) {
  return symmetrize(E, analyzeSymmetry(E));
}

/// Total assignments (with multiplicity) in a block.
unsigned totalForms(const SymBlock &B) {
  unsigned N = 0;
  for (const FormStmt &F : B.Forms)
    N += F.Mult;
  return N;
}

/// Finds the block whose exact condition prints as \p CondStr.
const SymBlock *findBlock(const SymKernel &SK, const std::string &CondStr) {
  for (const SymBlock &B : SK.Blocks)
    if (B.Exact.str() == CondStr)
      return &B;
  return nullptr;
}

std::set<std::string> formKeys(const SymBlock &B) {
  std::set<std::string> Keys;
  for (const FormStmt &F : B.Forms)
    Keys.insert(F.key());
  return Keys;
}

} // namespace

TEST(Symmetrize, SsymvMatchesFigure2) {
  SymKernel SK = symmetrizeKernel(makeSsymv());
  ASSERT_EQ(SK.Blocks.size(), 2u);

  const SymBlock *Off = findBlock(SK, "i < j");
  ASSERT_NE(Off, nullptr);
  EXPECT_TRUE(Off->isOffDiagonal());
  std::set<std::string> Keys = formKeys(*Off);
  EXPECT_TRUE(Keys.count("y[i] <- A[i, j] * x[j]"));
  EXPECT_TRUE(Keys.count("y[j] <- A[i, j] * x[i]"));

  const SymBlock *Diag = findBlock(SK, "i == j");
  ASSERT_NE(Diag, nullptr);
  ASSERT_EQ(Diag->Forms.size(), 1u);
  EXPECT_EQ(Diag->Forms[0].key(), "y[i] <- A[i, j] * x[j]");
}

TEST(Symmetrize, SyprdMatchesListing4) {
  SymKernel SK = symmetrizeKernel(makeSyprd());
  ASSERT_EQ(SK.Blocks.size(), 2u);
  const SymBlock *Off = findBlock(SK, "i < j");
  ASSERT_NE(Off, nullptr);
  // Listing 4: two equivalent assignments off-diagonal (one normal form
  // emitted twice), one on the diagonal.
  EXPECT_EQ(totalForms(*Off), 2u);
  EXPECT_EQ(Off->Forms.size(), 1u); // both collapse to one normal form
  const SymBlock *Diag = findBlock(SK, "i == j");
  ASSERT_NE(Diag, nullptr);
  EXPECT_EQ(totalForms(*Diag), 1u);
}

TEST(Symmetrize, ChainConditionCoversAllChains) {
  SymKernel SK = symmetrizeKernel(makeMttkrp(4));
  ASSERT_EQ(SK.ChainAtoms.size(), 3u);
  EXPECT_EQ(SK.ChainAtoms[0].str(), "i <= k");
  EXPECT_EQ(SK.ChainAtoms[1].str(), "k <= l");
  EXPECT_EQ(SK.ChainAtoms[2].str(), "l <= m");
}

TEST(Symmetrize, BlockCountIsCompositions) {
  // 2^(n-1) equivalence groups for a single chain of n indices.
  EXPECT_EQ(symmetrizeKernel(makeSsymv()).Blocks.size(), 2u);
  EXPECT_EQ(symmetrizeKernel(makeMttkrp(3)).Blocks.size(), 4u);
  EXPECT_EQ(symmetrizeKernel(makeMttkrp(4)).Blocks.size(), 8u);
  EXPECT_EQ(symmetrizeKernel(makeMttkrp(5)).Blocks.size(), 16u);
}

TEST(Symmetrize, BlockTotalsMatchUniquePermutationCounts) {
  // Every block performs |S_P|E| assignments (paper Section 3.1:
  // n!/m! per diagonal).
  SymKernel SK = symmetrizeKernel(makeMttkrp(3));
  std::map<std::string, unsigned> Expect{
      {"i < k && k < l", 6},
      {"i == k && k < l", 3},
      {"i < k && k == l", 3},
      {"i == k && k == l", 1},
  };
  for (const SymBlock &B : SK.Blocks) {
    auto It = Expect.find(B.Exact.str());
    ASSERT_NE(It, Expect.end()) << "unexpected block " << B.Exact.str();
    EXPECT_EQ(totalForms(B), It->second) << B.Exact.str();
  }
}

TEST(Symmetrize, Mttkrp3OffDiagonalMatchesListing6) {
  // Listing 6 lines 4-10: three distinct forms, each twice.
  SymKernel SK = symmetrizeKernel(makeMttkrp(3));
  const SymBlock *Off = findBlock(SK, "i < k && k < l");
  ASSERT_NE(Off, nullptr);
  ASSERT_EQ(Off->Forms.size(), 3u);
  for (const FormStmt &F : Off->Forms)
    EXPECT_EQ(F.Mult, 2u);
  std::set<std::string> Keys = formKeys(*Off);
  EXPECT_TRUE(Keys.count("C[i, j] <- A[i, k, l] * B[k, j] * B[l, j]"));
  EXPECT_TRUE(Keys.count("C[k, j] <- A[i, k, l] * B[i, j] * B[l, j]"));
  EXPECT_TRUE(Keys.count("C[l, j] <- A[i, k, l] * B[i, j] * B[k, j]"));
}

TEST(Symmetrize, Mttkrp3DiagonalsAreDiversified) {
  // The diagonal blocks share the off-diagonal support (Listing 7's
  // merged diagonal handling), thanks to equality-aware redistribution.
  SymKernel SK = symmetrizeKernel(makeMttkrp(3));
  std::set<std::string> OffKeys =
      formKeys(*findBlock(SK, "i < k && k < l"));
  const SymBlock *D1 = findBlock(SK, "i == k && k < l");
  const SymBlock *D2 = findBlock(SK, "i < k && k == l");
  ASSERT_NE(D1, nullptr);
  ASSERT_NE(D2, nullptr);
  EXPECT_EQ(formKeys(*D1), OffKeys);
  EXPECT_EQ(formKeys(*D2), OffKeys);
  for (const FormStmt &F : D1->Forms)
    EXPECT_EQ(F.Mult, 1u);
}

TEST(Symmetrize, Mttkrp3FullDiagonalSingleForm) {
  SymKernel SK = symmetrizeKernel(makeMttkrp(3));
  const SymBlock *Full = findBlock(SK, "i == k && k == l");
  ASSERT_NE(Full, nullptr);
  ASSERT_EQ(Full->Forms.size(), 1u);
  EXPECT_EQ(Full->Forms[0].key(),
            "C[i, j] <- A[i, k, l] * B[k, j] * B[l, j]");
}

TEST(Symmetrize, TtmMatchesListing1) {
  SymKernel SK = symmetrizeKernel(makeTtm());
  // Off-diagonal block: the six transpositions (Listing 1 lines 3-10).
  const SymBlock *Off = findBlock(SK, "j < k && k < l");
  ASSERT_NE(Off, nullptr);
  std::set<std::string> Keys = formKeys(*Off);
  EXPECT_EQ(Keys.size(), 6u);
  EXPECT_TRUE(Keys.count("C[i, j, l] <- A[j, k, l] * B[k, i]"));
  EXPECT_TRUE(Keys.count("C[i, j, k] <- A[j, k, l] * B[l, i]"));
  EXPECT_TRUE(Keys.count("C[i, k, l] <- A[j, k, l] * B[j, i]"));
  EXPECT_TRUE(Keys.count("C[i, k, j] <- A[j, k, l] * B[l, i]"));
  EXPECT_TRUE(Keys.count("C[i, l, k] <- A[j, k, l] * B[j, i]"));
  EXPECT_TRUE(Keys.count("C[i, l, j] <- A[j, k, l] * B[k, i]"));

  // Diagonal j == k (Listing 1 lines 11-15).
  const SymBlock *D1 = findBlock(SK, "j == k && k < l");
  ASSERT_NE(D1, nullptr);
  std::set<std::string> D1Keys = formKeys(*D1);
  EXPECT_EQ(D1Keys.size(), 3u);
  EXPECT_TRUE(D1Keys.count("C[i, j, l] <- A[j, k, l] * B[k, i]"));
  EXPECT_TRUE(D1Keys.count("C[i, j, k] <- A[j, k, l] * B[l, i]"));
  EXPECT_TRUE(D1Keys.count("C[i, l, k] <- A[j, k, l] * B[j, i]"));

  // Diagonal k == l (Listing 1 lines 16-20).
  const SymBlock *D2 = findBlock(SK, "j < k && k == l");
  ASSERT_NE(D2, nullptr);
  std::set<std::string> D2Keys = formKeys(*D2);
  EXPECT_EQ(D2Keys.size(), 3u);
  EXPECT_TRUE(D2Keys.count("C[i, j, l] <- A[j, k, l] * B[k, i]"));
  EXPECT_TRUE(D2Keys.count("C[i, k, l] <- A[j, k, l] * B[j, i]"));
  EXPECT_TRUE(D2Keys.count("C[i, k, j] <- A[j, k, l] * B[l, i]"));

  // Full diagonal (Listing 1 lines 21-22).
  const SymBlock *Full = findBlock(SK, "j == k && k == l");
  ASSERT_NE(Full, nullptr);
  ASSERT_EQ(Full->Forms.size(), 1u);
  EXPECT_EQ(Full->Forms[0].key(), "C[i, j, l] <- A[j, k, l] * B[k, i]");
}

TEST(Symmetrize, SsyrkBothTriangleWrites) {
  SymKernel SK = symmetrizeKernel(makeSsyrk());
  const SymBlock *Off = findBlock(SK, "i < j");
  ASSERT_NE(Off, nullptr);
  std::set<std::string> Keys = formKeys(*Off);
  EXPECT_TRUE(Keys.count("C[i, j] <- A[i, k] * A[j, k]"));
  EXPECT_TRUE(Keys.count("C[j, i] <- A[i, k] * A[j, k]"));
}

TEST(Symmetrize, Mttkrp5OffDiagonalMultiplicity) {
  // 5-d: five forms each with multiplicity 4! = 24 (the 1/4!
  // computation saving of Section 5.2.6).
  SymKernel SK = symmetrizeKernel(makeMttkrp(5));
  const SymBlock *Off =
      findBlock(SK, "i < k && k < l && l < m && m < n");
  ASSERT_NE(Off, nullptr);
  EXPECT_EQ(Off->Forms.size(), 5u);
  for (const FormStmt &F : Off->Forms)
    EXPECT_EQ(F.Mult, 24u);
}

TEST(Symmetrize, TotalAssignmentsAcrossBlocksIsNFactorialPerBlock) {
  // Sum over blocks of |S_P|E| equals sum over equivalence groups,
  // which for n=4 is sum over compositions of 4!/prod(run!) = 75? No:
  // each block's total is its own |S_P|E|; verify against the
  // combinatorial formula directly.
  SymKernel SK = symmetrizeKernel(makeMttkrp(4));
  unsigned Sum = 0;
  for (const SymBlock &B : SK.Blocks)
    Sum += totalForms(B);
  // Compositions of 4: 24+12+12+12+6+4+4... compute independently:
  // (1,1,1,1)=24 (1,1,2)=12 (1,2,1)=12 (2,1,1)=12 (2,2)=6 (1,3)=4
  // (3,1)=4 (4)=1 -> 75.
  EXPECT_EQ(Sum, 75u);
}

TEST(Symmetrize, NoChainsSingleBlock) {
  Einsum E = parseEinsum("spmm", "C[i,j] += A[i,k] * B[k,j]");
  E.LoopOrder = {"j", "k", "i"};
  SymKernel SK = symmetrizeKernel(E);
  ASSERT_EQ(SK.Blocks.size(), 1u);
  EXPECT_TRUE(SK.Blocks[0].Exact.isAlways());
  EXPECT_EQ(SK.Blocks[0].Forms.size(), 1u);
  EXPECT_TRUE(SK.ChainAtoms.empty());
}

TEST(Symmetrize, PartialSymmetryProductBlocks) {
  // Two chains of two indices: 2x2 equivalence-group combinations.
  Einsum E = parseEinsum("p4", "y[] += A[i,j,k,l]");
  E.LoopOrder = {"l", "k", "j", "i"};
  E.declare("A", TensorFormat::dense(4));
  E.setSymmetry("A", Partition::parse(4, "{0,1}{2,3}"));
  SymKernel SK = symmetrizeKernel(E);
  EXPECT_EQ(SK.Blocks.size(), 4u);
  unsigned Sum = 0;
  for (const SymBlock &B : SK.Blocks)
    Sum += totalForms(B);
  // (2,2): 4; (2,1)+(1,2): 2+2; (1,1): 1 -> total 9.
  EXPECT_EQ(Sum, 9u);
}

TEST(Symmetrize, StrRendersBlocks) {
  SymKernel SK = symmetrizeKernel(makeSsymv());
  std::string S = SK.str();
  EXPECT_NE(S.find("block if i < j"), std::string::npos);
  EXPECT_NE(S.find("block if i == j"), std::string::npos);
}
