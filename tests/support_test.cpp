//===- tests/support_test.cpp ---------------------------------*- C++ -*-===//

#include "support/Counters.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace systec;

TEST(StringUtils, JoinEmpty) { EXPECT_EQ(join({}, ", "), ""); }

TEST(StringUtils, JoinSingle) { EXPECT_EQ(join({"a"}, ", "), "a"); }

TEST(StringUtils, JoinMany) {
  EXPECT_EQ(join({"i", "j", "k"}, ", "), "i, j, k");
}

TEST(StringUtils, JoinAnyInts) {
  EXPECT_EQ(joinAny(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
}

TEST(StringUtils, FormatDoubleInteger) {
  EXPECT_EQ(formatDouble(2.0), "2");
  EXPECT_EQ(formatDouble(-17.0), "-17");
  EXPECT_EQ(formatDouble(0.0), "0");
}

TEST(StringUtils, FormatDoubleFraction) {
  EXPECT_EQ(formatDouble(0.5), "0.5");
}

TEST(StringUtils, FormatDoubleInfinity) {
  EXPECT_EQ(formatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(formatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, SplitAndTrim) {
  std::vector<std::string> Out = splitAndTrim(" a, b ,c ", ',');
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0], "a");
  EXPECT_EQ(Out[1], "b");
  EXPECT_EQ(Out[2], "c");
}

TEST(StringUtils, SplitKeepsEmptyPieces) {
  std::vector<std::string> Out = splitAndTrim("a,,b", ',');
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[1], "");
}

TEST(Random, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.nextIndex(1000), B.nextIndex(1000));
}

TEST(Random, IndexInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextIndex(17);
    EXPECT_GE(V, 0);
    EXPECT_LT(V, 17);
  }
}

TEST(Random, DoubleInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble(2.0, 3.0);
    EXPECT_GE(V, 2.0);
    EXPECT_LT(V, 3.0);
  }
}

TEST(Counters, ResetClearsAll) {
  counters().SparseReads = 5;
  counters().Reductions = 7;
  counters().reset();
  EXPECT_EQ(counters().SparseReads, 0u);
  EXPECT_EQ(counters().Reductions, 0u);
  EXPECT_EQ(counters().ScalarOps, 0u);
  EXPECT_EQ(counters().OutputWrites, 0u);
}

TEST(Counters, EnableDisable) {
  setCountersEnabled(false);
  EXPECT_FALSE(countersEnabled());
  setCountersEnabled(true);
  EXPECT_TRUE(countersEnabled());
}
