//===- tests/support_test.cpp ---------------------------------*- C++ -*-===//

#include "support/Counters.h"
#include "support/Error.h"
#include "support/Random.h"
#include "support/Status.h"
#include "support/StringUtils.h"
#include "tensor/Tensor.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

using namespace systec;

TEST(StringUtils, JoinEmpty) { EXPECT_EQ(join({}, ", "), ""); }

TEST(StringUtils, JoinSingle) { EXPECT_EQ(join({"a"}, ", "), "a"); }

TEST(StringUtils, JoinMany) {
  EXPECT_EQ(join({"i", "j", "k"}, ", "), "i, j, k");
}

TEST(StringUtils, JoinAnyInts) {
  EXPECT_EQ(joinAny(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
}

TEST(StringUtils, FormatDoubleInteger) {
  EXPECT_EQ(formatDouble(2.0), "2");
  EXPECT_EQ(formatDouble(-17.0), "-17");
  EXPECT_EQ(formatDouble(0.0), "0");
}

TEST(StringUtils, FormatDoubleFraction) {
  EXPECT_EQ(formatDouble(0.5), "0.5");
}

TEST(StringUtils, FormatDoubleInfinity) {
  EXPECT_EQ(formatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(formatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, SplitAndTrim) {
  std::vector<std::string> Out = splitAndTrim(" a, b ,c ", ',');
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0], "a");
  EXPECT_EQ(Out[1], "b");
  EXPECT_EQ(Out[2], "c");
}

TEST(StringUtils, SplitKeepsEmptyPieces) {
  std::vector<std::string> Out = splitAndTrim("a,,b", ',');
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[1], "");
}

TEST(Random, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.nextIndex(1000), B.nextIndex(1000));
}

TEST(Random, IndexInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextIndex(17);
    EXPECT_GE(V, 0);
    EXPECT_LT(V, 17);
  }
}

TEST(Random, DoubleInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble(2.0, 3.0);
    EXPECT_GE(V, 2.0);
    EXPECT_LT(V, 3.0);
  }
}

TEST(Counters, ResetClearsAll) {
  counters().SparseReads = 5;
  counters().Reductions = 7;
  counters().reset();
  EXPECT_EQ(counters().SparseReads, 0u);
  EXPECT_EQ(counters().Reductions, 0u);
  EXPECT_EQ(counters().ScalarOps, 0u);
  EXPECT_EQ(counters().OutputWrites, 0u);
}

TEST(Counters, EnableDisable) {
  setCountersEnabled(false);
  EXPECT_FALSE(countersEnabled());
  setCountersEnabled(true);
  EXPECT_TRUE(countersEnabled());
}

//===----------------------------------------------------------------------===//
// Status / Expected (support/Status.h)
//===----------------------------------------------------------------------===//

TEST(Status, SuccessCarriesNothing) {
  Status S = Status::success();
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.code(), ErrCode::Ok);
  EXPECT_EQ(S.message(), "");
  EXPECT_TRUE(S.context().empty());
  EXPECT_EQ(S.str(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status S = Status::error(ErrCode::InvalidTensor, "ptr not monotone");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrCode::InvalidTensor);
  EXPECT_EQ(S.message(), "ptr not monotone");
  EXPECT_EQ(S.str(), "invalid-tensor: ptr not monotone");
}

TEST(Status, ContextChainsOutermostFirst) {
  // withContext prepends, so a status threaded up a call stack renders
  // like one: outermost frame first, root message last.
  Status S = Status::error(ErrCode::InvalidTensor, "bad level")
                 .withContext("tensor 'A'")
                 .withContext("kernel 'ssymv'");
  ASSERT_EQ(S.context().size(), 2u);
  EXPECT_EQ(S.context()[0], "kernel 'ssymv'");
  EXPECT_EQ(S.context()[1], "tensor 'A'");
  EXPECT_EQ(S.str(), "invalid-tensor: kernel 'ssymv': tensor 'A': bad level");
}

TEST(Status, ContextOnSuccessIsNoOp) {
  Status S = Status::success().withContext("kernel 'x'");
  EXPECT_TRUE(S.ok());
  EXPECT_TRUE(S.context().empty());
}

TEST(Status, MoveTransfersPayload) {
  Status A = Status::error(ErrCode::Cancelled, "stop");
  Status B = std::move(A);
  EXPECT_FALSE(B.ok());
  EXPECT_EQ(B.code(), ErrCode::Cancelled);
  EXPECT_TRUE(A.ok()) << "moved-from status must read as success";
}

TEST(Status, ErrCodeNamesAreStable) {
  // The names are API: tests match codes by name and
  // ExecReport::AbortReason surfaces them verbatim.
  EXPECT_STREQ(errCodeName(ErrCode::Ok), "ok");
  EXPECT_STREQ(errCodeName(ErrCode::InvalidTensor), "invalid-tensor");
  EXPECT_STREQ(errCodeName(ErrCode::Cancelled), "cancelled");
  EXPECT_STREQ(errCodeName(ErrCode::DeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(errCodeName(ErrCode::ResourceExhausted), "resource-exhausted");
}

TEST(Expected, HoldsValue) {
  Expected<int> E = 42;
  ASSERT_TRUE(E.ok());
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(*E, 42);
  EXPECT_EQ(E.value(), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> E = Status::error(ErrCode::InvalidArgument, "nope");
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.status().code(), ErrCode::InvalidArgument);
  Status S = E.takeStatus();
  EXPECT_EQ(S.code(), ErrCode::InvalidArgument);
  EXPECT_EQ(S.message(), "nope");
}

TEST(Expected, MoveOnlyPayloadWorks) {
  Expected<std::unique_ptr<int>> E = std::make_unique<int>(7);
  ASSERT_TRUE(E.ok());
  std::unique_ptr<int> P = std::move(*E);
  EXPECT_EQ(*P, 7);
}

TEST(CancelTokenApi, CancelAndResetRoundTrip) {
  CancelToken T;
  EXPECT_FALSE(T.cancelled());
  T.cancel();
  EXPECT_TRUE(T.cancelled());
  T.cancel(); // idempotent
  EXPECT_TRUE(T.cancelled());
  T.reset();
  EXPECT_FALSE(T.cancelled());
}

//===----------------------------------------------------------------------===//
// Abort boundary: the fatalError/unreachable paths that deliberately
// remain non-recoverable (tool input and internal invariants) must
// still die loudly — with the message on stderr — never return or
// corrupt state. The recoverable twins of the fromCoo/parseEinsum
// deaths are covered in fault_test.cpp via tryFromCoo/tryParseEinsum.
//===----------------------------------------------------------------------===//

#if GTEST_HAS_DEATH_TEST

TEST(AbortBoundaryDeathTest, FatalErrorDies) {
  EXPECT_DEATH(fatalError("boom message"), "boom message");
}

TEST(AbortBoundaryDeathTest, UnreachableDies) {
  EXPECT_DEATH(unreachable("impossible state"), "impossible state");
}

TEST(AbortBoundaryDeathTest, FromCooFormatOrderMismatchDies) {
  EXPECT_DEATH(
      {
        Coo C({3, 3});
        C.add({0, 0}, 1.0);
        Tensor::fromCoo(std::move(C), TensorFormat::csf(3));
      },
      "order");
}

TEST(AbortBoundaryDeathTest, ParseEinsumSyntaxErrorDies) {
  EXPECT_DEATH(parseEinsum("bad", "O[i += A[i"), "");
}

#endif // GTEST_HAS_DEATH_TEST
