//===- tests/passes_test.cpp ----------------------------------*- C++ -*-===//
///
/// Tests for the optimization passes of paper Section 4.2, pass by
/// pass, against the paper's worked examples.
///
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "core/Passes.h"
#include "core/Symmetrize.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <set>

using namespace systec;

namespace {

SymKernel symmetrized(const Einsum &E) {
  return symmetrize(E, analyzeSymmetry(E));
}

const SymBlock *findBlock(const SymKernel &SK, const std::string &CondStr) {
  for (const SymBlock &B : SK.Blocks)
    if (B.Exact.str() == CondStr)
      return &B;
  return nullptr;
}

unsigned totalForms(const SymKernel &SK) {
  unsigned N = 0;
  for (const SymBlock &B : SK.Blocks)
    N += static_cast<unsigned>(B.Forms.size());
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// 4.2.7 Distributive assignment grouping
//===----------------------------------------------------------------------===//

TEST(DistributiveGrouping, SyprdFactorTwo) {
  // Listing 4 -> Listing 5: two equivalent updates become one with a
  // factor of 2.
  SymKernel SK = symmetrized(makeSyprd());
  passDistributiveGrouping(SK);
  const SymBlock *Off = findBlock(SK, "i < j");
  ASSERT_NE(Off, nullptr);
  ASSERT_EQ(Off->Forms.size(), 1u);
  EXPECT_EQ(Off->Forms[0].Mult, 2u);
  const SymBlock *Diag = findBlock(SK, "i == j");
  ASSERT_NE(Diag, nullptr);
  EXPECT_EQ(Diag->Forms[0].Mult, 1u);
}

TEST(DistributiveGrouping, Mttkrp5FactorTwentyFour) {
  SymKernel SK = symmetrized(makeMttkrp(5));
  passDistributiveGrouping(SK);
  const SymBlock *Off =
      findBlock(SK, "i < k && k < l && l < m && m < n");
  ASSERT_NE(Off, nullptr);
  for (const FormStmt &F : Off->Forms)
    EXPECT_EQ(F.Mult, 24u);
}

//===----------------------------------------------------------------------===//
// 4.2.2 Visible output restriction
//===----------------------------------------------------------------------===//

TEST(VisibleOutput, SsyrkKeepsCanonicalHalf) {
  SymKernel SK = symmetrized(makeSsyrk());
  passVisibleOutputRestriction(SK);
  EXPECT_TRUE(SK.RestrictedOutput);
  const SymBlock *Off = findBlock(SK, "i < j");
  ASSERT_NE(Off, nullptr);
  ASSERT_EQ(Off->Forms.size(), 1u);
  EXPECT_EQ(Off->Forms[0].Out->str(), "C[i, j]");
}

TEST(VisibleOutput, TtmMatchesListing3) {
  // Listing 2 -> Listing 3: six off-diagonal assignments reduce to the
  // three writing the canonical triangle of C.
  SymKernel SK = symmetrized(makeTtm());
  passVisibleOutputRestriction(SK);
  const SymBlock *Off = findBlock(SK, "j < k && k < l");
  ASSERT_NE(Off, nullptr);
  std::set<std::string> Outs;
  for (const FormStmt &F : Off->Forms)
    Outs.insert(F.Out->str());
  std::set<std::string> Expect{"C[i, j, l]", "C[i, j, k]", "C[i, k, l]"};
  EXPECT_EQ(Outs, Expect);
}

TEST(VisibleOutput, TtmDiagonalKeepsEqualWrites) {
  // With j == k, C[i,j,k] has equal trailing coordinates: canonical,
  // kept; C[i,l,k] is strictly descending: dropped.
  SymKernel SK = symmetrized(makeTtm());
  passVisibleOutputRestriction(SK);
  const SymBlock *D1 = findBlock(SK, "j == k && k < l");
  ASSERT_NE(D1, nullptr);
  std::set<std::string> Outs;
  for (const FormStmt &F : D1->Forms)
    Outs.insert(F.Out->str());
  EXPECT_TRUE(Outs.count("C[i, j, l]"));
  EXPECT_TRUE(Outs.count("C[i, j, k]"));
  EXPECT_FALSE(Outs.count("C[i, l, k]"));
}

TEST(VisibleOutput, NoOpWithoutOutputSymmetry) {
  SymKernel SK = symmetrized(makeSsymv());
  unsigned Before = totalForms(SK);
  passVisibleOutputRestriction(SK);
  EXPECT_EQ(totalForms(SK), Before);
  EXPECT_FALSE(SK.RestrictedOutput);
}

//===----------------------------------------------------------------------===//
// 4.2.1 Common tensor access elimination
//===----------------------------------------------------------------------===//

TEST(CommonAccess, SsymvHoistsSharedRead) {
  // Figure 2: `a = A[i,j]` reused by both updates.
  SymKernel SK = symmetrized(makeSsymv());
  passCommonAccessElimination(SK);
  const SymBlock *Off = findBlock(SK, "i < j");
  ASSERT_NE(Off, nullptr);
  ASSERT_EQ(Off->Defs.size(), 1u);
  EXPECT_EQ(Off->Defs[0]->str(0), "t_A_i_j = A[i, j]\n");
  for (const FormStmt &F : Off->Forms)
    EXPECT_NE(F.Rhs->str().find("t_A_i_j"), std::string::npos);
}

TEST(CommonAccess, SingleUseNotHoisted) {
  SymKernel SK = symmetrized(makeSsymv());
  passCommonAccessElimination(SK);
  const SymBlock *Diag = findBlock(SK, "i == j");
  ASSERT_NE(Diag, nullptr);
  EXPECT_TRUE(Diag->Defs.empty());
}

TEST(CommonAccess, MttkrpHoistsFactorReads) {
  // Listing 7: A and all three B rows are hoisted in the off-diagonal
  // block.
  SymKernel SK = symmetrized(makeMttkrp(3));
  passDistributiveGrouping(SK);
  passCommonAccessElimination(SK);
  const SymBlock *Off = findBlock(SK, "i < k && k < l");
  ASSERT_NE(Off, nullptr);
  EXPECT_EQ(Off->Defs.size(), 4u); // A, B[i,:], B[k,:], B[l,:]
}

//===----------------------------------------------------------------------===//
// 4.2.4 Consolidate conditional blocks
//===----------------------------------------------------------------------===//

TEST(Consolidate, MergesIdenticalDiagonalBlocks) {
  // The two single-pair MTTKRP diagonal blocks carry identical forms
  // after redistribution, so they consolidate into one block with the
  // union condition (Listing 7 lines 11-15).
  SymKernel SK = symmetrized(makeMttkrp(3));
  passDistributiveGrouping(SK);
  passConsolidateBlocks(SK);
  EXPECT_EQ(SK.Blocks.size(), 3u);
  const SymBlock *Merged =
      findBlock(SK, "(i < k && k == l) || (i == k && k < l)");
  ASSERT_NE(Merged, nullptr);
  EXPECT_EQ(Merged->Forms.size(), 3u);
}

TEST(Consolidate, KeepsDistinctBlocksApart) {
  // TTM's diagonal blocks have different supports and must survive.
  SymKernel SK = symmetrized(makeTtm());
  passConsolidateBlocks(SK);
  EXPECT_EQ(SK.Blocks.size(), 4u);
}

//===----------------------------------------------------------------------===//
// 4.2.6 Group assignments across branches
//===----------------------------------------------------------------------===//

TEST(GroupAcross, SsymvMatchesPaperExample) {
  // Paper 4.2.6: y[i] += A[i,j]*x[j] is shared by the i<j and i==j
  // blocks; grouping emits it once under i <= j.
  SymKernel SK = symmetrized(makeSsymv());
  passGroupAcrossBranches(SK, /*AcrossDiagonal=*/true);
  const SymBlock *Grouped = findBlock(SK, "i <= j");
  ASSERT_NE(Grouped, nullptr);
  ASSERT_EQ(Grouped->Forms.size(), 1u);
  EXPECT_EQ(Grouped->Forms[0].key(), "y[i] <- A[i, j] * x[j]");
  const SymBlock *Rest = findBlock(SK, "i < j");
  ASSERT_NE(Rest, nullptr);
  ASSERT_EQ(Rest->Forms.size(), 1u);
  EXPECT_EQ(Rest->Forms[0].key(), "y[j] <- A[i, j] * x[i]");
}

TEST(GroupAcross, RespectsDiagonalSides) {
  // With AcrossDiagonal=false (diagonal splitting on), off-diagonal and
  // diagonal blocks do not merge.
  SymKernel SK = symmetrized(makeSsymv());
  passGroupAcrossBranches(SK, /*AcrossDiagonal=*/false);
  EXPECT_EQ(findBlock(SK, "i <= j"), nullptr);
}

//===----------------------------------------------------------------------===//
// 4.2.5 Simplicial lookup table
//===----------------------------------------------------------------------===//

TEST(SimplicialLut, EqualFactorsBecomePlainMultiplicity) {
  // MTTKRP-3d: both single-pair diagonal blocks have factor 1
  // everywhere; the lookup table degenerates to a plain merge.
  SymKernel SK = symmetrized(makeMttkrp(3));
  passDistributiveGrouping(SK);
  passSimplicialLut(SK);
  const SymBlock *Merged =
      findBlock(SK, "(i < k && k == l) || (i == k && k < l)");
  ASSERT_NE(Merged, nullptr);
  for (const FormStmt &F : Merged->Forms) {
    EXPECT_EQ(F.Factor, nullptr);
    EXPECT_EQ(F.Mult, 1u);
  }
}

TEST(SimplicialLut, Mttkrp4BuildsFactorTable) {
  // 4-d diagonals with unequal multiplicities merge via a lookup table
  // indexed by the equality pattern.
  SymKernel SK = symmetrized(makeMttkrp(4));
  passDistributiveGrouping(SK);
  unsigned Before = static_cast<unsigned>(SK.Blocks.size());
  passSimplicialLut(SK);
  EXPECT_LT(SK.Blocks.size(), Before);
  bool SawLut = false;
  for (const SymBlock &B : SK.Blocks)
    for (const FormStmt &F : B.Forms)
      if (F.Factor) {
        SawLut = true;
        EXPECT_EQ(F.Factor->kind(), ExprKind::Lut);
        EXPECT_EQ(F.Factor->lutBits().size(), 3u);
        EXPECT_EQ(F.Factor->lutTable().size(), 8u);
      }
  EXPECT_TRUE(SawLut);
}

TEST(SimplicialLut, SkipsNonAdditiveReductions) {
  SymKernel SK = symmetrized(makeBellmanFord());
  unsigned Before = static_cast<unsigned>(SK.Blocks.size());
  passSimplicialLut(SK);
  EXPECT_EQ(SK.Blocks.size(), Before);
}

//===----------------------------------------------------------------------===//
// Full pipeline structure
//===----------------------------------------------------------------------===//

TEST(Pipeline, DefaultOptionsSetLoweringFlags) {
  SymKernel SK = symmetrized(makeSsymv());
  runPasses(SK, PipelineOptions());
  EXPECT_TRUE(SK.SplitDiagonal);
  EXPECT_TRUE(SK.Concordize);
  EXPECT_TRUE(SK.UseWorkspaces);
}

TEST(Pipeline, Mttkrp3FinalBlockStructure) {
  // After the full pipeline: one off-diagonal block (three assignments
  // with factor 2), the merged single-pair diagonal block, and the
  // grouped full-diagonal contribution (Listing 7 modulo grouping).
  SymKernel SK = symmetrized(makeMttkrp(3));
  runPasses(SK, PipelineOptions());
  unsigned OffBlocks = 0, DiagBlocks = 0;
  for (const SymBlock &B : SK.Blocks)
    (B.isOffDiagonal() ? OffBlocks : DiagBlocks)++;
  EXPECT_EQ(OffBlocks, 1u);
  EXPECT_GE(DiagBlocks, 1u);
  for (const SymBlock &B : SK.Blocks)
    if (B.isOffDiagonal())
      for (const FormStmt &F : B.Forms)
        EXPECT_EQ(F.Mult, 2u);
}

TEST(Pipeline, AblationFlagsDisablePasses) {
  PipelineOptions Off;
  Off.DistributiveGrouping = false;
  Off.CommonAccessElimination = false;
  Off.ConsolidateBlocks = false;
  Off.GroupAcrossBranches = false;
  Off.SimplicialLut = false;
  SymKernel SK = symmetrized(makeMttkrp(3));
  runPasses(SK, Off);
  // Without grouping the off-diagonal block keeps six assignments.
  const SymBlock *OffB = findBlock(SK, "i < k && k < l");
  ASSERT_NE(OffB, nullptr);
  unsigned Total = 0;
  for (const FormStmt &F : OffB->Forms)
    Total += F.Mult;
  EXPECT_EQ(Total, 6u);
  EXPECT_TRUE(OffB->Defs.empty());
}
